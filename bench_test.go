// Package repro_test is the benchmark harness regenerating every
// quantitative artifact in the paper's evaluation (see DESIGN.md's
// experiment index):
//
//   - BenchmarkFig5: simulation time per workload per configuration
//     (Figure 5's bars; compare ns/op across /baseline, /hgdb, /debug,
//     /debug-hgdb sub-benchmarks).
//   - BenchmarkFig5Activity: the activity-driven scheduling extension —
//     per-edge debugger cost with armed breakpoints on low-activity
//     scenarios (a clock-gated idle core, sparse bursty traffic),
//     delta-scheduled vs exhaustive re-evaluation.
//   - BenchmarkCallbackOverhead: the §4.3 mechanism — cost of the
//     clock-edge callback with no breakpoints inserted.
//   - BenchmarkSymtabSize: the §4.1 statistic (reported as custom
//     metrics: rows and netlist signals, optimized vs debug).
//   - BenchmarkSSA / BenchmarkCompile: compilation-pipeline ablations.
//   - BenchmarkEdgeVsChange: the §3 design choice of evaluating
//     breakpoints only at clock edges rather than on every change.
//   - BenchmarkParallelEval: §3.2's parallel group evaluation.
//
// Run: go test -bench=. -benchmem .
package repro_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/replay"
	"repro/internal/riscv"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// fig5Configs mirrors the paper's four bars per workload.
var fig5Configs = []struct {
	name string
	cfg  bench.Config
}{
	{"baseline", bench.Baseline},
	{"hgdb", bench.BaselineHgdb},
	{"debug", bench.Debug},
	{"debug-hgdb", bench.DebugHgdb},
}

// BenchmarkFig5 regenerates Figure 5. The per-iteration work is one
// full validated execution of the workload (machine construction
// excluded from timing via the harness measuring only the run).
func BenchmarkFig5(b *testing.B) {
	for _, w := range riscv.Workloads() {
		w := w
		for _, c := range fig5Configs {
			c := c
			b.Run(w.Name+"/"+c.name, func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					secs, res, err := bench.RunWorkload(w, c.cfg, 1)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
					_ = secs
				}
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}

// BenchmarkFig5Activity measures the per-edge debugger cost that
// activity-driven scheduling removes, on the two low-activity Figure 5
// scenarios:
//
//   - idle-core: a two-core SoC where hart 1 halts immediately (its
//     registers are clock-gated from then on) while hart 0 spins
//     forever; breakpoints are armed on the idle core only. With
//     delta scheduling their per-edge cost collapses to the dirty-set
//     poll; exhaustive evaluation re-runs every condition each edge.
//   - bursty: a counter whose enable pulses one cycle in 64, with an
//     armed never-true condition — sparse bursty traffic where almost
//     every edge leaves the dependency set untouched.
//
// Compare ns/op and the evals/edge metric across /delta vs
// /exhaustive within a scenario; stop sequences are pinned equal by
// TestDeltaStopEquivalenceRISCV in internal/bench.
func BenchmarkFig5Activity(b *testing.B) {
	schedModes := []struct {
		name       string
		exhaustive bool
	}{{"delta", false}, {"exhaustive", true}}

	b.Run("idle-core", func(b *testing.B) {
		// hart 1 parks immediately; hart 0 keeps toggling registers so
		// the design as a whole stays active.
		prog := riscv.MustAssemble(`
.text
    li sp, 0x20000
    csrrs t0, 0xF14, x0
    bnez t0, park
busy:
    addi t1, t1, 1
    addi t2, t2, 2
    j busy
park:
    ecall
`)
		for _, mode := range schedModes {
			mode := mode
			b.Run(mode.name, func(b *testing.B) {
				m, err := riscv.NewMachine(2, false)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := core.New(vpi.NewSimBackend(m.Sim), m.Table)
				if err != nil {
					b.Fatal(err)
				}
				rt.SetExhaustiveEval(mode.exhaustive)
				rt.SetHandler(func(*core.StopEvent) core.Command { return core.CmdContinue })
				// Arm every conditional statement of the idle core.
				armed := 0
				for _, f := range m.Table.Files() {
					for _, l := range m.Table.Lines(f) {
						for _, bp := range m.Table.BreakpointsAt(f, l) {
							if bp.InstanceName == "SoC.core1" && bp.Enable != "" {
								if _, err := rt.AddBreakpointInstance(f, l, "SoC.core1", "pc == 0xfffc"); err == nil {
									armed++
								}
								break
							}
						}
					}
				}
				if armed == 0 {
					b.Fatal("no breakpoint armed on the idle core")
				}
				for i := range m.Cores {
					if err := m.Load(i, prog); err != nil {
						b.Fatal(err)
					}
				}
				if err := m.Reset(); err != nil {
					b.Fatal(err)
				}
				m.Sim.Run(50) // hart 1 reaches its ecall and gates off
				// Steady-state metrics only: snapshot the counters so
				// warmup evaluations don't pollute evals/edge.
				evals0, _ := rt.Stats()
				skipped0, evaluated0, _ := rt.ActivityStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Sim.Step()
				}
				b.StopTimer()
				evals, _ := rt.Stats()
				skipped, evaluated, _ := rt.ActivityStats()
				b.ReportMetric(float64(evals-evals0)/float64(b.N), "evals/edge")
				b.ReportMetric(float64(skipped-skipped0), "groups-skipped")
				b.ReportMetric(float64(evaluated-evaluated0), "groups-evaluated")
			})
		}
	})

	b.Run("bursty", func(b *testing.B) {
		for _, mode := range schedModes {
			mode := mode
			b.Run(mode.name, func(b *testing.B) {
				s, table := buildCounterBench(b, false)
				rt, err := core.New(vpi.NewSimBackend(s), table)
				if err != nil {
					b.Fatal(err)
				}
				rt.SetExhaustiveEval(mode.exhaustive)
				rt.SetHandler(func(*core.StopEvent) core.Command { return core.CmdContinue })
				files := table.Files()
				lines := table.Lines(files[0])
				if _, err := rt.AddBreakpoint(files[0], lines[0], "count == 70000"); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// One enabled cycle in 64: sparse bursts.
					if i%64 == 0 {
						s.Poke("Counter.en", 1)
					} else if i%64 == 1 {
						s.Poke("Counter.en", 0)
					}
					s.Step()
				}
				b.StopTimer()
				evals, _ := rt.Stats()
				skipped, _, _ := rt.ActivityStats()
				b.ReportMetric(float64(evals)/float64(b.N), "evals/edge")
				b.ReportMetric(float64(skipped), "groups-skipped")
			})
		}
	})
}

// BenchmarkFig5Fused measures the armed-breakpoint per-edge cost that
// whole-schedule fused compilation removes, at the scale the paper's
// Figure 5 debug bars pay it: a many-instance design with 128 armed
// conditional breakpoints (16 instances × 8 conditional statements)
// whose dependencies change every edge, so activity skipping never
// parks anything and the full armed set is evaluated each cycle.
//
// Compare ns/op across /fused (one fused program per edge, contiguous
// ranges over the worker pool), /per-group (PR 4's per-group delta
// path: one snapshot + pool dispatch per group), and /exhaustive (no
// delta, no fusion). Stop sequences are pinned bit-identical by
// TestFusedStopEquivalenceRISCV and the internal/core fused
// differentials; this benchmark only reports cost. The fused shape
// (conditions, CSE segments, shared reads, deduplicated operands) is
// reported as metrics on the /fused run.
func BenchmarkFig5Fused(b *testing.B) {
	for _, mode := range []struct {
		name      string
		configure func(*core.Runtime)
	}{
		{"fused", func(*core.Runtime) {}},
		{"per-group", func(rt *core.Runtime) { rt.SetFusedEval(false) }},
		{"exhaustive", func(rt *core.Runtime) { rt.SetExhaustiveEval(true) }},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			s, rt := buildFig5FusedBench(b)
			mode.configure(rt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh input every edge keeps every condition's
				// dependency set dirty: no park, full armed cost.
				s.Poke("Top.x", uint64(i%255)+1)
				s.Step()
			}
			b.StopTimer()
			evals, _ := rt.Stats()
			b.ReportMetric(float64(evals)/float64(b.N), "evals/edge")
			if stats, ok := rt.FuseInfo(); ok && mode.name == "fused" {
				b.ReportMetric(float64(stats.Conds), "fused-conds")
				b.ReportMetric(float64(stats.SharedSegs), "cse-segs")
				b.ReportMetric(float64(stats.SharedReads), "cse-reads")
				b.ReportMetric(float64(stats.Operands), "operands")
			}
		})
	}
}

// buildFig5FusedBench builds the BenchmarkFig5Fused workload: the
// 16-instance design with 128 armed never-true conditional
// breakpoints. Shared with TestFig5FusedRef, the CI cost gate.
func buildFig5FusedBench(tb testing.TB) (*sim.Simulator, *core.Runtime) {
	const nInst = 16
	const nStmts = 8
	c := generator.NewCircuit("Top")
	child := c.NewModule("Leaf")
	d := child.Input("d", ir.UIntType(8))
	q := child.Output("q", ir.UIntType(8))
	acc := child.RegInit("acc", ir.UIntType(8), child.Lit(0, 8))
	// Nested conditionals: statement j's SSA enable is the chain
	// d[0] && … && d[j], so the instance's 8 enables share nested
	// prefixes — the cross-condition structure the fuser's CSE
	// hoists into the shared prelude.
	var nest func(j int)
	nest = func(j int) {
		if j >= nStmts {
			return
		}
		child.When(d.Bit(j), func() {
			acc.Set(acc.AddMod(child.Lit(uint64(j+1), 8)))
			nest(j + 1)
		})
	}
	nest(0)
	q.Set(acc)
	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	sum := top.Wire("s", ir.UIntType(8))
	sum.Set(top.Lit(0, 8))
	for i := 0; i < nInst; i++ {
		u := top.Instance("u"+string(rune('a'+i)), child)
		u.IO("d").Set(x)
		sum.Set(sum.AddMod(u.IO("q")))
	}
	y.Set(sum)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		tb.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		tb.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		tb.Fatal(err)
	}
	s := sim.New(nl)
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		tb.Fatal(err)
	}
	// Arm every conditional Leaf statement across all instances, each
	// with a never-true user condition sharing structure with its
	// siblings (same source per statement across the 16 instances, a
	// common "acc"-over-the-same-slot shape within each instance).
	armed := 0
	stmt := 0
	for _, f := range table.Files() {
		for _, l := range table.Lines(f) {
			bps := table.BreakpointsAt(f, l)
			if len(bps) == 0 || bps[0].Enable == "" {
				continue
			}
			// The first clause is identical across the instance's 8
			// statements and reads the same acc slot, so the fuser
			// hoists it once per instance; the second clause keeps
			// each condition distinct. mod-13 can never equal 77, so
			// no stop fires and the runs measure pure armed cost.
			cond := fmt.Sprintf("acc %% 13 == 77 && acc[3:0] != %d", stmt)
			ids, err := rt.AddBreakpoint(f, l, cond)
			if err != nil {
				tb.Fatal(err)
			}
			armed += len(ids)
			stmt++
		}
	}
	if armed < 100 {
		tb.Fatalf("armed %d breakpoints, want 100+", armed)
	}
	rt.SetHandler(func(*core.StopEvent) core.Command { return core.CmdContinue })
	return s, rt
}

// buildCounterNetlist makes a small design for microbenchmarks.
func buildCounterBench(b *testing.B, debug bool) (*sim.Simulator, *symtab.Table) {
	b.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(16))
	count := m.RegInit("count", ir.UIntType(16), m.Lit(0, 16))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 16)))
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), debug)
	if err != nil {
		b.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	return sim.New(nl), table
}

// BenchmarkCallbackOverhead isolates the §4.3 claim's mechanism: the
// per-cycle cost of hgdb's clock callback when no breakpoint is
// inserted, versus no callback at all, versus an armed breakpoint whose
// condition never fires.
func BenchmarkCallbackOverhead(b *testing.B) {
	b.Run("no-hgdb", func(b *testing.B) {
		s, _ := buildCounterBench(b, false)
		s.Poke("Counter.en", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("hgdb-attached", func(b *testing.B) {
		s, table := buildCounterBench(b, false)
		rt, err := core.New(vpi.NewSimBackend(s), table)
		if err != nil {
			b.Fatal(err)
		}
		rt.SetHandler(func(*core.StopEvent) core.Command { return core.CmdContinue })
		s.Poke("Counter.en", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("armed-never-hit", func(b *testing.B) {
		s, table := buildCounterBench(b, false)
		rt, err := core.New(vpi.NewSimBackend(s), table)
		if err != nil {
			b.Fatal(err)
		}
		rt.SetHandler(func(*core.StopEvent) core.Command { return core.CmdContinue })
		files := table.Files()
		if len(files) == 0 {
			b.Fatal("no files")
		}
		lines := table.Lines(files[0])
		// Condition is never true: evaluated every matching cycle, no
		// stop.
		if _, err := rt.AddBreakpoint(files[0], lines[0], "count == 70000"); err != nil {
			b.Fatal(err)
		}
		s.Poke("Counter.en", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
}

// BenchmarkCompiledEval measures one clock edge's worth of condition
// evaluation for a 100-breakpoint workload, comparing the seed's
// tree-walk path (one GetValue per signal reference per breakpoint,
// AST interpretation) against the compiled pipeline (one batched read
// of the deduplicated dependency union, then zero-alloc register
// program execution). This is the mechanism behind the scheduler's
// per-edge refactor; the compiled form must be at least 2x faster.
func BenchmarkCompiledEval(b *testing.B) {
	const nBPs = 100
	setup := func(b *testing.B) (vpi.Interface, []expr.Node, []*expr.Program) {
		s, _ := buildCounterBench(b, false)
		s.Poke("Counter.en", 1)
		s.Run(3)
		nodes := make([]expr.Node, nBPs)
		progs := make([]*expr.Program, nBPs)
		for i := 0; i < nBPs; i++ {
			src := fmt.Sprintf("(count + %d) %% 7 == %d && count[3:0] != %d || out >= %d",
				i, i%7, i%16, i%8)
			n, err := expr.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			p, err := expr.Compile(n)
			if err != nil {
				b.Fatal(err)
			}
			nodes[i], progs[i] = n, p
		}
		return vpi.NewSimBackend(s), nodes, progs
	}
	toPath := func(name string) string { return "Counter." + name }

	b.Run("tree-walk", func(b *testing.B) {
		backend, nodes, _ := setup(b)
		resolver := expr.ResolverFunc(func(name string) (eval.Value, error) {
			return backend.GetValue(toPath(name))
		})
		hits := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, n := range nodes {
				v, err := n.Eval(resolver)
				if err != nil {
					b.Fatal(err)
				}
				if v.IsTrue() {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("no condition ever hit")
		}
	})
	b.Run("compiled", func(b *testing.B) {
		backend, _, progs := setup(b)
		// Mirror the core scheduler: deduplicated union of every
		// program's dependencies, prefetched once per edge; each program
		// gathers operands by precomputed slot.
		slotOf := map[string]int{}
		var union []string
		slots := make([][]int, len(progs))
		for k, p := range progs {
			slots[k] = make([]int, len(p.Deps))
			for i, d := range p.Deps {
				path := toPath(d)
				s, ok := slotOf[path]
				if !ok {
					s = len(union)
					slotOf[path] = s
					union = append(union, path)
				}
				slots[k][i] = s
			}
		}
		var m eval.Machine
		opbuf := make([]eval.Value, 8)
		vals := make([]eval.Value, len(union))
		hits := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vpi.ReadBatchInto(backend, union, vals); err != nil {
				b.Fatal(err)
			}
			for k, p := range progs {
				ops := opbuf[:len(p.Deps)]
				for j, s := range slots[k] {
					ops[j] = vals[s]
				}
				v, err := p.Exec(&m, ops)
				if err != nil {
					b.Fatal(err)
				}
				if v.IsTrue() {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("no condition ever hit")
		}
	})
}

// BenchmarkSymtabSize reports the §4.1 statistic as metrics.
func BenchmarkSymtabSize(b *testing.B) {
	b.Run("soc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt, err := riscv.NewMachine(1, false)
			if err != nil {
				b.Fatal(err)
			}
			dbg, err := riscv.NewMachine(1, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(opt.Table.TotalRows()), "rows-opt")
			b.ReportMetric(float64(dbg.Table.TotalRows()), "rows-debug")
			b.ReportMetric(float64(opt.Sim.Netlist().NumSignals()), "signals-opt")
			b.ReportMetric(float64(dbg.Sim.Netlist().NumSignals()), "signals-debug")
		}
	})
}

// BenchmarkCompile measures the full pipeline (Algorithm 1 included) on
// the SoC, optimized vs debug.
func BenchmarkCompile(b *testing.B) {
	for _, mode := range []struct {
		name  string
		debug bool
	}{{"optimized", false}, {"debug", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				circ, err := riscv.BuildSoC(1, "RV32Core", "SoC")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := passes.Compile(circ, mode.debug); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSSA isolates the Listing 1 → Listing 2 transform on a
// synthetic module with many conditional assignments.
func BenchmarkSSA(b *testing.B) {
	build := func() *ir.Circuit {
		c := generator.NewCircuit("S")
		m := c.NewModule("S")
		data := m.Input("data", ir.UIntType(64))
		out := m.Output("out", ir.UIntType(8))
		sum := m.Wire("sum", ir.UIntType(8))
		sum.Set(m.Lit(0, 8))
		for i := 0; i < 64; i++ {
			i := i
			m.When(data.Bit(i), func() {
				sum.Set(sum.AddMod(m.Lit(uint64(i), 8)))
			})
		}
		out.Set(sum)
		return c.MustBuild()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := passes.NewCompilation(build(), false)
		for _, p := range []passes.Pass{
			&passes.LowerAggregates{}, &passes.Annotate{}, &passes.SSA{},
		} {
			if err := p.Run(comp); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEdgeVsChange quantifies the §3 design decision: checking
// breakpoints once per clock edge versus on every signal value change
// (what a naive value-callback implementation would do). The per-change
// variant pays the change-tracking snapshot plus one check per changed
// signal per cycle.
func BenchmarkEdgeVsChange(b *testing.B) {
	checkCost := func(s *sim.Simulator) func() {
		return func() {
			// Stand-in for one breakpoint evaluation.
			s.Peek("Counter.count")
		}
	}
	b.Run("per-edge", func(b *testing.B) {
		s, _ := buildCounterBench(b, false)
		check := checkCost(s)
		s.OnClockEdge(func(uint64) { check() })
		s.Poke("Counter.en", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("per-change", func(b *testing.B) {
		s, _ := buildCounterBench(b, false)
		check := checkCost(s)
		s.OnChange(func(*rtl.Signal, eval.Value) { check() })
		s.Poke("Counter.en", 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
}

// --- Trace index & checkpointed replay (§3.3 replay backend) ---
//
// The workload for the three benchmarks below is a real generated
// RISC-V trace: the full optimized SoC running the vvadd kernel with
// every signal recorded. The benchmarks compare the seed trace path
// (vcd.Parse eager timelines + binary-search replay) against the
// streaming block store (vcd.ParseStore + checkpointed replay.Engine)
// on three axes: parse memory, value-at-time latency, and reverse-step
// latency. DESIGN.md "Trace index & checkpointing" records reference
// numbers.

var (
	replayTraceOnce sync.Once
	replayTraceData []byte
	replayTraceErr  error
)

// riscvTraceVCD records the vvadd workload on the one-core optimized
// SoC once per process and returns the VCD text.
func riscvTraceVCD(b *testing.B) []byte {
	b.Helper()
	replayTraceOnce.Do(func() {
		m, err := riscv.NewMachine(1, false)
		if err != nil {
			replayTraceErr = err
			return
		}
		var w *riscv.Workload
		for _, cand := range riscv.Workloads() {
			if cand.Name == "vvadd" {
				w = cand
			}
		}
		if w == nil {
			replayTraceErr = fmt.Errorf("vvadd workload not found")
			return
		}
		var buf bytes.Buffer
		rec := vcd.NewRecorder(m.Sim, &buf)
		if _, err := m.RunProgram(w.Prog, w.MaxCycles); err != nil {
			replayTraceErr = err
			return
		}
		if err := rec.Flush(); err != nil {
			replayTraceErr = err
			return
		}
		replayTraceData = buf.Bytes()
	})
	if replayTraceErr != nil {
		b.Fatal(replayTraceErr)
	}
	return replayTraceData
}

// BenchmarkTraceParse measures parsing the RISC-V trace. Allocation
// volume (B/op with -benchmem) is the peak-memory comparison; the
// retained change-data footprint is reported as the data-bytes metric —
// 16 bytes per change in eager per-signal slices vs the store's varint
// blocks plus sparse per-signal block index.
func BenchmarkTraceParse(b *testing.B) {
	data := riscvTraceVCD(b)
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			tr, err := vcd.Parse(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				retained := 0
				changes := 0
				for _, name := range tr.SignalNames() {
					ts, _ := tr.Signal(name)
					retained += ts.NumChanges() * 16
					changes += ts.NumChanges()
				}
				b.ReportMetric(float64(retained), "data-bytes")
				b.ReportMetric(float64(changes), "changes")
			}
		}
	})
	b.Run("store", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(st.IndexBytes()), "data-bytes")
				b.ReportMetric(float64(st.NumChanges()), "changes")
			}
		}
	})
}

// BenchmarkStoreOpen pins the disk-backed store's reason to exist:
// opening a pre-indexed trace reads the header and metadata sections
// only — no VCD text scan, no block decode — so open latency and
// resident memory are compared directly against ParseStore rebuilding
// the same index from text. The resident-bytes metric is the retained
// change-data footprint right after open (for the disk store: block
// directory plus an empty cache; blocks stay on disk until queried).
// DESIGN.md records reference numbers; the acceptance bar is >=10x
// faster open with lower resident memory.
func BenchmarkStoreOpen(b *testing.B) {
	data := riscvTraceVCD(b)
	dir := b.TempDir()
	vcdPath := filepath.Join(dir, "trace.vcd")
	storePath := filepath.Join(dir, "trace.hgdbstore")
	if err := os.WriteFile(vcdPath, data, 0o644); err != nil {
		b.Fatal(err)
	}
	stats, err := vcd.IndexFile(vcdPath, storePath, vcd.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("parse-vcd", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(st.IndexBytes()), "resident-bytes")
			}
		}
	})
	b.Run("open-store", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(stats.Bytes)
		for i := 0; i < b.N; i++ {
			st, err := vcd.OpenStoreFile(storePath, vcd.OpenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(float64(st.IndexBytes()), "resident-bytes")
			}
			st.Close()
		}
	})
	// Guard against benchmarking a broken open: the opened store must
	// answer a probe query identically to the parsed one.
	mem, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	disk, err := vcd.OpenStoreFile(storePath, vcd.OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	for _, name := range traceQuerySet(mem.SignalNames()) {
		ms, _ := mem.Signal(name)
		ds, ok := disk.Signal(name)
		if !ok {
			b.Fatalf("opened store missing %s", name)
		}
		for _, tm := range []uint64{0, mem.MaxTime / 2, mem.MaxTime} {
			if got, want := ds.ValueAt(tm), ms.ValueAt(tm); got != want {
				b.Fatalf("%s@%d: disk %d, mem %d", name, tm, got, want)
			}
		}
	}
}

// traceQuerySet picks a deterministic spread of signals for value
// queries: every 7th signal name, which mixes hot (clock, pc) and cold
// scopes.
func traceQuerySet(names []string) []string {
	var out []string
	for i := 0; i < len(names); i += 7 {
		out = append(out, names[i])
	}
	return out
}

// BenchmarkTraceValueAt measures random-access value-at-time queries:
// the eager binary search, the store's lazy path (sparse block index +
// one block decode), and the store after materializing the query set
// (identical binary search, decoded on demand).
func BenchmarkTraceValueAt(b *testing.B) {
	data := riscvTraceVCD(b)
	tr, err := vcd.Parse(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	names := traceQuerySet(tr.SignalNames())
	maxT := tr.MaxTime
	// xorshift keeps query times deterministic without pulling in rand.
	next := uint64(0x9E3779B97F4A7C15)
	rnd := func() uint64 {
		next ^= next << 13
		next ^= next >> 7
		next ^= next << 17
		return next
	}
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ts, _ := tr.Signal(names[i%len(names)])
			ts.ValueAt(rnd() % (maxT + 1))
		}
	})
	st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("store-lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ts, _ := st.Signal(names[i%len(names)])
			ts.ValueAt(rnd() % (maxT + 1))
		}
	})
	b.Run("store-materialized", func(b *testing.B) {
		st.Materialize(names...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts, _ := st.Signal(names[i%len(names)])
			ts.ValueAt(rnd() % (maxT + 1))
		}
	})
}

// BenchmarkReplayReverseStep measures sequential reverse stepping — the
// debugger's reverse-execution inner loop — at increasing trace depths:
// each op is one StepBackward plus a full-state signal read. The store
// engine's checkpointed restore averages O(checkpoint interval / 2)
// records per step regardless of depth; the same engine with
// checkpoints disabled replays from t=0 every step (O(t)), and the
// eager seed engine answers by binary search but pays the eager parse
// to exist at all. Compare /t25 vs /t50 vs /t100 (percent of trace
// depth) within each backend: checkpointed stays flat, no-checkpoint
// scales linearly.
func BenchmarkReplayReverseStep(b *testing.B) {
	data := riscvTraceVCD(b)
	tr, err := vcd.Parse(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	// A mid-hierarchy register that is not in any dependency union, so
	// reading it exercises full-state reconstruction on the store.
	probe := "SoC.core0.pc"
	if _, ok := tr.Signal(probe); !ok {
		b.Fatalf("probe signal %s not in trace", probe)
	}
	depths := []struct {
		name string
		frac uint64 // rewind depth t = MaxTime / frac
	}{{"t25", 4}, {"t50", 2}, {"t100", 1}}
	engines := []struct {
		name string
		make func(b *testing.B) *replay.Engine
	}{
		{"seed", func(b *testing.B) *replay.Engine {
			t2, err := vcd.Parse(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			return replay.New(t2)
		}},
		{"checkpointed", func(b *testing.B) *replay.Engine {
			st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			return replay.NewStore(st)
		}},
		{"no-checkpoint", func(b *testing.B) *replay.Engine {
			st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			// An interval beyond the trace end means every backward
			// seek restores the time-0 state and replays forward — the
			// un-checkpointed block-store baseline.
			return replay.NewStore(st, replay.WithCheckpointInterval(st.MaxTime+1))
		}},
	}
	for _, eng := range engines {
		for _, d := range depths {
			b.Run(eng.name+"/"+d.name, func(b *testing.B) {
				e := eng.make(b)
				tm := e.MaxTime() / d.frac
				if tm == 0 {
					b.Skip("trace too short")
				}
				// Warm: a forward read at depth populates checkpoints.
				e.SetTime(tm)
				if _, err := e.GetValue(probe); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if e.Time() == 0 {
						e.SetTime(tm)
					}
					e.StepBackward()
					if _, err := e.GetValue(probe); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelEval measures the §3.2 parallel group evaluation on
// a many-instance design where every instance hits the same line.
func BenchmarkParallelEval(b *testing.B) {
	buildMany := func(n int) (*sim.Simulator, *core.Runtime, string, int) {
		c := generator.NewCircuit("Top")
		child := c.NewModule("Leaf")
		d := child.Input("d", ir.UIntType(8))
		q := child.Output("q", ir.UIntType(8))
		acc := child.RegInit("acc", ir.UIntType(8), child.Lit(0, 8))
		child.When(d.Bit(0), func() {
			acc.Set(acc.AddMod(d))
		})
		q.Set(acc)
		top := c.NewModule("Top")
		x := top.Input("x", ir.UIntType(8))
		y := top.Output("y", ir.UIntType(8))
		sum := top.Wire("s", ir.UIntType(8))
		sum.Set(top.Lit(0, 8))
		for i := 0; i < n; i++ {
			u := top.Instance("u"+string(rune('a'+i)), child)
			u.IO("d").Set(x)
			sum.Set(sum.AddMod(u.IO("q")))
		}
		y.Set(sum)
		comp, err := passes.Compile(c.MustBuild(), false)
		if err != nil {
			b.Fatal(err)
		}
		table, err := symtab.Build(comp)
		if err != nil {
			b.Fatal(err)
		}
		nl, err := rtl.Elaborate(comp.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		s := sim.New(nl)
		rt, err := core.New(vpi.NewSimBackend(s), table)
		if err != nil {
			b.Fatal(err)
		}
		// The accumulate line is the only conditional breakpoint in the
		// Leaf module's file list.
		var file string
		var line int
		for _, f := range table.Files() {
			for _, l := range table.Lines(f) {
				for _, bp := range table.BreakpointsAt(f, l) {
					if bp.Enable != "" {
						file, line = f, l
					}
				}
			}
		}
		return s, rt, file, line
	}
	for _, n := range []int{2, 8, 16} {
		n := n
		b.Run(string(rune('0'+n/10))+string(rune('0'+n%10))+"-instances", func(b *testing.B) {
			s, rt, file, line := buildMany(n)
			if _, err := rt.AddBreakpoint(file, line, ""); err != nil {
				b.Fatal(err)
			}
			stops := 0
			rt.SetHandler(func(ev *core.StopEvent) core.Command {
				stops += len(ev.Threads)
				return core.CmdContinue
			})
			s.Poke("Top.x", 3) // odd: every instance hits each cycle
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			if stops == 0 {
				b.Fatal("no threads evaluated")
			}
		})
	}
}
