package core

import (
	"errors"
	"fmt"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/val"
	"repro/internal/vpi"
)

// Watchpoint is a data breakpoint: the simulation stops when the
// watched expression's value changes between clock edges. This extends
// the paper's breakpoint emulation with the other classic source-level
// debugging primitive; it rides the same clock-edge callback and the
// same stable-state guarantee.
type Watchpoint struct {
	ID int
	// Instance scopes name resolution (symtab-relative path).
	Instance string
	// Expr is the watched expression source.
	Expr string

	node expr.Node // tree-walk reference form
	// Compiled pipeline state, mirroring insertedBP: the expression as
	// a register program, its dependency paths in prog.Deps order, the
	// dependencies' prefetch-cache slots, and evaluation scratch.
	prog    *expr.Program
	paths   []string
	pathOf  map[string]string // name → sim path, for tree-walk fallback
	slots   []int
	machine eval.Machine
	opbuf   []eval.Value

	// last is the previous value in the four-state plane; two-state
	// results are lifted into it so the change compare is uniform
	// across the compiled, tree-walk, and general paths.
	last  val.Bits
	armed bool
	// fusedID is this watch's condition id in the whole-schedule fused
	// program, or -1 when the watch rides the per-watch path (unfusable
	// dependencies, or fusion unavailable). Set by rebuildFused under
	// rt.mu; read on the simulation goroutine.
	fusedID int
	// canSkip marks the watch evaluation as provably redundant: the
	// last evaluation succeeded with every dependency slot readable,
	// and no dependency has changed at a cache refresh since — so the
	// watched value cannot have moved and re-evaluating it cannot hit.
	// Maintained by ensurePrefetch/checkWatches on the simulation
	// goroutine, reset on every dependency-union rebuild.
	canSkip bool
}

// AddWatch registers a watchpoint on an expression evaluated in an
// instance context; it stops on any value change. The expression is
// compiled once here and its dependencies resolve through the same
// chain breakpoint conditions use (resolveSourceName), so watchpoints
// and breakpoints see identical names.
func (rt *Runtime) AddWatch(instance, source string) (int, error) {
	n, prog, err := expr.ParseCompile(source)
	if err != nil {
		return 0, err
	}
	// A nil program means the expression only runs on the general
	// four-state evaluator; its dependencies come from the AST instead.
	deps := expr.Names(n)
	if prog != nil {
		deps = prog.Deps
	}
	w := &Watchpoint{
		Instance: instance,
		Expr:     source,
		node:     n,
		prog:     prog,
		paths:    make([]string, len(deps)),
		pathOf:   make(map[string]string, len(deps)),
		fusedID:  -1,
	}
	for i, name := range deps {
		path, verified := rt.resolveSourceName(-1, instance, name)
		if !verified {
			// Unlike a deferred breakpoint condition, a watch must
			// resolve at add time: probe the absolute path now. A
			// four-state read error still proves the signal exists.
			if _, err := rt.backend.GetValue(path); err != nil && !errors.Is(err, vpi.ErrFourState) {
				return 0, fmt.Errorf("core: watch: cannot resolve %q in %s", name, instance)
			}
		}
		w.paths[i] = path
		w.pathOf[name] = path
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nextWatch++
	w.ID = rt.nextWatch
	rt.watches = append(rt.watches, w)
	rt.markDepsDirty()
	return w.ID, nil
}

// RemoveWatch deletes a watchpoint by id.
func (rt *Runtime) RemoveWatch(id int) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, w := range rt.watches {
		if w.ID == id {
			rt.watches = append(rt.watches[:i], rt.watches[i+1:]...)
			rt.markDepsDirty()
			return true
		}
	}
	return false
}

// Watches lists active watchpoints.
func (rt *Runtime) Watches() []*Watchpoint {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Watchpoint, len(rt.watches))
	copy(out, rt.watches)
	return out
}

// eval executes the compiled watch program against the per-cycle
// prefetch cache; on an operand-fetch failure the tree-walk reference
// decides, and when that fails too (x/z bits, >64-bit signals) the
// general four-state evaluator is the final authority — the same
// degradation chain as evalBP. Watches run on the simulation
// goroutine only.
func (w *Watchpoint) eval(rt *Runtime) (val.Bits, error) {
	if w.prog != nil && !rt.generalEval.Load() {
		v, err := rt.execCompiled(w.prog, w.paths, w.slots, &w.machine, &w.opbuf)
		if err == nil {
			return v.ToBits(), nil
		}
		v, err = w.node.Eval(expr.ResolverFunc(func(name string) (eval.Value, error) {
			if full, ok := w.pathOf[name]; ok {
				return rt.backend.GetValue(full)
			}
			return eval.Value{}, fmt.Errorf("core: watch: unresolved %q", name)
		}))
		if err == nil {
			return v.ToBits(), nil
		}
	}
	return expr.EvalBits(w.node, expr.BitsResolverFunc(func(name string) (val.Bits, error) {
		if full, ok := w.pathOf[name]; ok {
			return vpi.ReadBits(rt.backend, full)
		}
		return val.Bits{}, fmt.Errorf("core: watch: unresolved %q", name)
	}))
}

// watchSlotsOK reports whether every dependency of the watch sits in a
// currently-readable prefetch slot — the eligibility condition for
// skipping it at clean edges.
func (rt *Runtime) watchSlotsOK(w *Watchpoint) bool {
	if len(w.slots) != len(w.paths) {
		return false // union rebuild pending; stay conservative
	}
	for _, s := range w.slots {
		if s < 0 || s >= len(rt.prefetchOK) || !rt.prefetchOK[s] {
			return false
		}
	}
	return true
}

// checkWatches runs at each clock edge before the breakpoint schedule;
// it returns a stop event when any watched value changed.
func (rt *Runtime) checkWatches(time uint64) *StopEvent {
	// Prefetch (and any pending union rebuild) before snapshotting, so
	// a concurrent RemoveWatch can never leave a snapshotted watch with
	// slots indexing rebuilt arrays (see evaluateGroup).
	rt.ensurePrefetch(time)
	rt.mu.Lock()
	watches := rt.watches
	rt.mu.Unlock()
	delta := rt.deltaOn()
	// When the fused schedule is live, watch expressions were computed by
	// the same whole-schedule program run (rebuildFused appends them
	// after the breakpoint conditions); consume those values instead of
	// re-executing each watch. A poisoned fused result (resOK false)
	// falls back to the exact per-watch path.
	var fs *fusedState
	if delta {
		fs = rt.fusedReady(time)
	}
	var ev *StopEvent
	for _, w := range watches {
		if delta && w.canSkip {
			// Every dependency is clean since the last successful
			// evaluation: the watched value is unchanged, so this edge
			// cannot produce a hit.
			continue
		}
		var b val.Bits
		var err error
		if fs != nil && w.fusedID >= 0 && fs.resOK[w.fusedID] {
			b = fs.results[w.fusedID].ToBits()
		} else {
			b, err = w.eval(rt)
		}
		if err != nil {
			w.canSkip = false
			continue
		}
		if delta {
			w.canSkip = rt.watchSlotsOK(w)
		}
		if !w.armed {
			w.armed = true
			w.last = b
			continue
		}
		if !b.CaseEq(w.last) || b.Width != w.last.Width {
			if ev == nil {
				ev = &StopEvent{Time: time, File: "<watch>", Watch: []WatchHit{}}
			}
			hit := WatchHit{
				ID:       w.ID,
				Instance: w.Instance,
				Expr:     w.Expr,
				Old:      w.last.V0,
				New:      b.V0,
			}
			// Values the uint64 fields cannot carry faithfully (x/z
			// bits, >64-bit magnitudes) travel as rendered literals.
			if w.last.HasX() || b.HasX() || w.last.IsWide() || b.IsWide() {
				hit.OldDisplay = w.last.String()
				hit.NewDisplay = b.String()
			}
			ev.Watch = append(ev.Watch, hit)
			w.last = b
		}
	}
	return ev
}

// WatchHit reports one triggered watchpoint.
type WatchHit struct {
	ID       int    `json:"id"`
	Instance string `json:"instance"`
	Expr     string `json:"expr"`
	Old      uint64 `json:"old"`
	New      uint64 `json:"new"`
	// OldDisplay/NewDisplay carry Verilog-literal renderings when the
	// values have x/z bits or exceed 64 bits; empty for plain two-state
	// values, keeping their frames byte-identical to the old encoding.
	OldDisplay string `json:"old_display,omitempty"`
	NewDisplay string `json:"new_display,omitempty"`
}
