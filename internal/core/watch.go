package core

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/expr"
)

// Watchpoint is a data breakpoint: the simulation stops when the
// watched expression's value changes between clock edges. This extends
// the paper's breakpoint emulation with the other classic source-level
// debugging primitive; it rides the same clock-edge callback and the
// same stable-state guarantee.
type Watchpoint struct {
	ID int
	// Instance scopes name resolution (symtab-relative path).
	Instance string
	// Expr is the watched expression source.
	Expr string

	node  expr.Node
	paths map[string]string
	last  eval.Value
	armed bool
}

// AddWatch registers a watchpoint on an expression evaluated in an
// instance context; it stops on any value change.
func (rt *Runtime) AddWatch(instance, source string) (int, error) {
	n, err := expr.Parse(source)
	if err != nil {
		return 0, err
	}
	w := &Watchpoint{
		Instance: instance,
		Expr:     source,
		node:     n,
		paths:    map[string]string{},
	}
	// Resolve names with the generator-variable chain, falling back to
	// instance-local RTL and absolute paths.
	for _, name := range expr.Names(n) {
		if rtlPath, err := rt.table.ResolveInstanceVar(instance, name); err == nil {
			w.paths[name] = rt.remap.ToSim(rtlPath)
			continue
		}
		local := rt.remap.ToSim(instance + "." + name)
		if _, err := rt.backend.GetValue(local); err == nil {
			w.paths[name] = local
			continue
		}
		if _, err := rt.backend.GetValue(name); err == nil {
			w.paths[name] = name
			continue
		}
		return 0, fmt.Errorf("core: watch: cannot resolve %q in %s", name, instance)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nextWatch++
	w.ID = rt.nextWatch
	rt.watches = append(rt.watches, w)
	return w.ID, nil
}

// RemoveWatch deletes a watchpoint by id.
func (rt *Runtime) RemoveWatch(id int) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, w := range rt.watches {
		if w.ID == id {
			rt.watches = append(rt.watches[:i], rt.watches[i+1:]...)
			return true
		}
	}
	return false
}

// Watches lists active watchpoints.
func (rt *Runtime) Watches() []*Watchpoint {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Watchpoint, len(rt.watches))
	copy(out, rt.watches)
	return out
}

func (w *Watchpoint) eval(rt *Runtime) (eval.Value, error) {
	return w.node.Eval(expr.ResolverFunc(func(name string) (eval.Value, error) {
		if full, ok := w.paths[name]; ok {
			return rt.backend.GetValue(full)
		}
		return eval.Value{}, fmt.Errorf("core: watch: unresolved %q", name)
	}))
}

// checkWatches runs at each clock edge before the breakpoint schedule;
// it returns a stop event when any watched value changed.
func (rt *Runtime) checkWatches(time uint64) *StopEvent {
	rt.mu.Lock()
	watches := rt.watches
	rt.mu.Unlock()
	var ev *StopEvent
	for _, w := range watches {
		v, err := w.eval(rt)
		if err != nil {
			continue
		}
		if !w.armed {
			w.armed = true
			w.last = v
			continue
		}
		if v != w.last {
			if ev == nil {
				ev = &StopEvent{Time: time, File: "<watch>", Watch: []WatchHit{}}
			}
			ev.Watch = append(ev.Watch, WatchHit{
				ID:       w.ID,
				Instance: w.Instance,
				Expr:     w.Expr,
				Old:      w.last.Bits,
				New:      v.Bits,
			})
			w.last = v
		}
	}
	return ev
}

// WatchHit reports one triggered watchpoint.
type WatchHit struct {
	ID       int    `json:"id"`
	Instance string `json:"instance"`
	Expr     string `json:"expr"`
	Old      uint64 `json:"old"`
	New      uint64 `json:"new"`
}
