package core

import (
	"errors"
	"sync"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/vpi"
)

// This file is the runtime half of the compiled condition pipeline. At
// insertion time every breakpoint/watch condition is compiled to a flat
// register program (expr.Compile) and its signal dependencies are
// resolved to simulator paths. At each clock edge the scheduler makes
// one batched backend read covering the union of every armed
// condition's dependencies (vpi.ReadBatch), caches the values for the
// cycle, and executes the compiled programs against the cache on a
// persistent worker pool — replacing the seed's tree-walk + one
// GetValue per signal per breakpoint + one goroutine spawned per group
// member per edge.

// workerPool is a fixed set of evaluation goroutines that lives for the
// runtime's lifetime. The scheduler dispatches each breakpoint group's
// members onto it (§3.2's parallel evaluation) without the per-edge
// goroutine spawn cost.
type workerPool struct {
	// mu serializes job submission against close, so a Detach issued
	// from a stop handler (or another goroutine) mid-edge can never
	// race a send onto the closed channel; once closed, parallel
	// degrades to inline execution.
	mu      sync.Mutex
	size    int
	started bool
	closed  bool
	jobs    chan poolJob
}

type poolJob struct {
	fn func(int)
	i  int
	wg *sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	// Workers spawn lazily on the first multi-member group, so runtimes
	// that never evaluate parallel groups (or are dropped without
	// Detach) hold no goroutines.
	return &workerPool{size: n, jobs: make(chan poolJob, 4*n)}
}

func (p *workerPool) worker() {
	for j := range p.jobs {
		j.fn(j.i)
		j.wg.Done()
	}
}

// parallel runs fn(0)..fn(n-1) across the pool plus the calling
// goroutine and returns when every call has completed. Only the
// simulation goroutine (the clock-edge callback) may call it.
func (p *workerPool) parallel(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if n <= 2 {
		// Small batches run inline: the channel round-trip plus WaitGroup
		// wake-up costs more than a second condition evaluation, so
		// two-member groups (the common pair-instance case) stay on the
		// simulation goroutine.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if !p.started {
		p.started = true
		for i := 0; i < p.size; i++ {
			go p.worker()
		}
	}
	wg.Add(n - 1)
	for i := 1; i < n; i++ {
		p.jobs <- poolJob{fn: fn, i: i, wg: &wg}
	}
	p.mu.Unlock()
	fn(0)
	wg.Wait()
}

// close shuts the workers down; idempotent. Workers drain any jobs
// already submitted (closing the channel lets the range loops consume
// the buffer first), and later parallel calls run inline.
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		if p.started {
			close(p.jobs)
		}
	}
	p.mu.Unlock()
}

// resolveSourceName resolves a source-level identifier to a simulator
// path using the same chain for breakpoint conditions and watchpoints:
// breakpoint-scoped variable (when bpID >= 0) → generator/instance
// variable → instance-local RTL name → absolute path as written. The
// second return value reports whether the path was verified against the
// symbol table or backend; an unverified name is returned as-is for the
// caller to probe or defer to evaluation time.
func (rt *Runtime) resolveSourceName(bpID int64, instance, name string) (string, bool) {
	if bpID >= 0 {
		if rtlPath, err := rt.table.ResolveScopedVar(bpID, name); err == nil {
			return rt.remap.ToSim(rtlPath), true
		}
	}
	if rtlPath, err := rt.table.ResolveInstanceVar(instance, name); err == nil {
		return rt.remap.ToSim(rtlPath), true
	}
	local := rt.remap.ToSim(instance + "." + name)
	// A four-state read error proves the signal exists; its value just
	// routes through the general evaluator instead of the prefetch
	// cache.
	if _, err := rt.backend.GetValue(local); err == nil || errors.Is(err, vpi.ErrFourState) {
		return local, true
	}
	return name, false
}

// markDepsDirty schedules a dependency-union rebuild before the next
// prefetch. Callers must hold rt.mu.
func (rt *Runtime) markDepsDirty() { rt.depsDirty = true }

// rebuildDeps recomputes the union of every armed condition's simulator
// paths and assigns each program dependency its slot in the prefetched
// value slice. Runs on the simulation goroutine.
func (rt *Runtime) rebuildDeps() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.depUnion = rt.depUnion[:0]
	slotOf := make(map[string]int)
	slot := func(path string) int {
		s, ok := slotOf[path]
		if !ok {
			s = len(rt.depUnion)
			slotOf[path] = s
			rt.depUnion = append(rt.depUnion, path)
		}
		return s
	}
	// verified == nil means every path was confirmed at arm time; an
	// unverified path gets slot -1 (kept out of the union, probed per
	// evaluation) so it cannot fail the batched read for everyone else.
	assign := func(paths []string, verified []bool) []int {
		if len(paths) == 0 {
			return nil
		}
		slots := make([]int, len(paths))
		for i, p := range paths {
			if verified != nil && !verified[i] {
				slots[i] = -1
				continue
			}
			slots[i] = slot(p)
		}
		return slots
	}
	// Rebuild the activity-scheduling indexes alongside the slots: the
	// slot→group inverted index (dirt propagation), each group's slot
	// list (skip eligibility), armed-member counts, and the clean-miss
	// flags — all reset, so the first edge after any breakpoint change
	// evaluates everything.
	rt.groupArmed = make([]int, len(rt.allGroups))
	rt.groupStatic = make([]bool, len(rt.allGroups))
	rt.groupSlots = make([][]int32, len(rt.allGroups))
	rt.groupSkip = make([]bool, len(rt.allGroups))
	for i := range rt.groupStatic {
		rt.groupStatic[i] = true
	}
	addGroupSlots := func(gi int, slots []int) bool {
		ok := true
		for _, s := range slots {
			if s < 0 {
				// Unverified dependency, probed per evaluation: the
				// group's misses can never be proven stable.
				ok = false
				continue
			}
			rt.groupSlots[gi] = append(rt.groupSlots[gi], int32(s))
		}
		return ok
	}
	for _, ibp := range rt.inserted {
		ibp.enableSlots = assign(ibp.enablePaths, ibp.enableVerified)
		ibp.condSlots = assign(ibp.condPaths, ibp.condVerified)
		gi, ok := rt.groupIdx[ibp.key()]
		if !ok {
			continue // not a schedulable statement; never evaluated
		}
		rt.groupArmed[gi]++
		if !addGroupSlots(gi, ibp.enableSlots) || !addGroupSlots(gi, ibp.condSlots) ||
			ibp.generalOnly() {
			// generalOnly: the condition's dependencies are invisible to
			// the slot machinery (no compiled program), so its misses can
			// never be proven stable.
			rt.groupStatic[gi] = false
		}
	}
	for _, w := range rt.watches {
		w.slots = assign(w.paths, nil)
		w.canSkip = false
	}
	// Invert only after every slot is assigned — watch assignment above
	// still extends the union.
	rt.slotGroups = make([][]int32, len(rt.depUnion))
	for gi, slots := range rt.groupSlots {
		for _, s := range slots {
			rt.slotGroups[s] = append(rt.slotGroups[s], int32(gi))
		}
	}
	rt.slotWatches = make([][]*Watchpoint, len(rt.depUnion))
	for _, w := range rt.watches {
		for _, s := range w.slots {
			rt.slotWatches[s] = append(rt.slotWatches[s], w)
		}
	}
	rt.prefetched = make([]eval.Value, len(rt.depUnion))
	rt.prefetchOK = make([]bool, len(rt.depUnion))
	rt.prefetchValid = false
	rt.diffBase = false
	if cap(rt.changedBuf) < len(rt.depUnion) {
		rt.changedBuf = make([]bool, len(rt.depUnion))
	}
	if cap(rt.incoming) < len(rt.depUnion) {
		rt.incoming = make([]eval.Value, len(rt.depUnion))
	}
	// Advise capable backends of the per-cycle read set: a replay block
	// store materializes exactly these signals' timelines, so the
	// batched read below never decodes trace blocks or moves replay
	// state mid-schedule.
	if p, ok := rt.backend.(vpi.Prefetcher); ok && len(rt.depUnion) > 0 {
		p.Prefetch(rt.depUnion)
	}
	// Register the union as the backend's dirty-set watch list. Always
	// re-registered (even empty) so a stale list cannot linger; the
	// first poll after registration reports everything changed.
	if rt.reporter != nil {
		rt.reporter.TrackChanges(rt.depUnion)
	}
	// Recompile the whole-schedule fused program against the fresh slot
	// assignment (fused.go); its skip state resets with the union, so the
	// first edge after any breakpoint change evaluates everything.
	rt.rebuildFused()
}

// ensurePrefetch makes the per-cycle value cache current for time t:
// a batched backend read of the dependency union, instead of one
// GetValue per signal per breakpoint per edge. Values are cached per
// (cycle, signal); re-entry at the same time (further groups, the
// watch pass) hits the cache. When the backend reports per-edge signal
// activity (vpi.ChangeReporter), only the reported-dirty slots are
// re-read; every refreshed slot is diffed against its previous value
// and actual changes clear the clean-miss flags of the groups and
// watches depending on it. Runs on the simulation goroutine.
func (rt *Runtime) ensurePrefetch(t uint64) {
	rt.mu.Lock()
	dirty := rt.depsDirty
	rt.depsDirty = false
	rt.mu.Unlock()
	if dirty {
		rt.rebuildDeps()
	}
	if rt.prefetchValid && rt.prefetchTime == t {
		return
	}
	// hadValues: the cache holds an earlier value snapshot of this
	// union generation (only a dependency rebuild discards it), so a
	// delta report can bound what to re-read and value diffs against it
	// are meaningful. A mid-edge invalidation (stop handler returned,
	// SetTime rewound) clears only prefetchValid — the snapshot is
	// still the set of values every parked group was last evaluated
	// against, exactly the baseline the diff must use: handler pokes
	// and rewinds surface as value differences (or a reporter dirt /
	// cannot-bound verdict) and un-park precisely the affected groups.
	hadValues := rt.diffBase
	rt.prefetchTime = t
	rt.prefetchValid = true
	if len(rt.depUnion) == 0 {
		return
	}
	if rt.deltaOn() && rt.reporter != nil {
		// Poll once per refresh. The report window spans since the
		// previous poll, which is never later than the cache's last
		// refresh, so a clean verdict always covers the cached value's
		// lifetime.
		changed := rt.changedBuf[:len(rt.depUnion)]
		if rt.reporter.ChangedInto(changed) && hadValues {
			rt.dirtySlots = rt.dirtySlots[:0]
			for i := range changed {
				if changed[i] || !rt.prefetchOK[i] {
					rt.dirtySlots = append(rt.dirtySlots, i)
				}
			}
			rt.statPartial.Add(1)
			rt.refreshSlots(rt.dirtySlots)
			return
		}
	}
	rt.refreshAll(hadValues)
}

// refreshAll re-reads the whole dependency union, diffing each slot
// against the previous snapshot (when one exists) to clear clean-miss
// flags only for dependencies that actually moved.
func (rt *Runtime) refreshAll(hadValues bool) {
	in := rt.incoming[:len(rt.depUnion)]
	if err := vpi.ReadBatchInto(rt.backend, rt.depUnion, in); err == nil {
		for i := range in {
			rt.commitSlot(i, in[i], true, hadValues)
		}
		rt.diffBase = true
		return
	}
	// A path in the union failed (e.g. a condition naming a signal that
	// only resolves as an absolute path, or not at all). Fall back to
	// per-path reads so one bad name cannot starve every other
	// breakpoint; evaluations touching the missing slot fail per-eval,
	// exactly like the tree-walk reference.
	for i, p := range rt.depUnion {
		v, err := rt.backend.GetValue(p)
		rt.commitSlot(i, v, err == nil, hadValues)
	}
	rt.diffBase = true
}

// refreshSlots re-reads only the given union slots (the delta-bounded
// dirty set plus previously failed reads); clean slots keep their
// cached values, which the reporter contract guarantees are current.
func (rt *Runtime) refreshSlots(slots []int) {
	if len(slots) == 0 {
		return
	}
	if cap(rt.pathBuf) < len(slots) {
		rt.pathBuf = make([]string, len(slots))
		rt.valBuf = make([]eval.Value, len(slots))
	}
	paths, vals := rt.pathBuf[:len(slots)], rt.valBuf[:len(slots)]
	for k, s := range slots {
		paths[k] = rt.depUnion[s]
	}
	if err := vpi.ReadBatchInto(rt.backend, paths, vals); err == nil {
		for k, s := range slots {
			rt.commitSlot(s, vals[k], true, true)
		}
		return
	}
	for k, s := range slots {
		v, err := rt.backend.GetValue(paths[k])
		rt.commitSlot(s, v, err == nil, true)
	}
}

// commitSlot stores one refreshed union value. A slot whose value
// actually differs from the cached one (or whose read failed, or that
// has no valid baseline) dirties every group and watch depending on
// it: their last-miss verdicts no longer provably hold.
func (rt *Runtime) commitSlot(i int, v eval.Value, ok, hadValues bool) {
	if !hadValues || !ok || !rt.prefetchOK[i] || v != rt.prefetched[i] {
		rt.markSlotDirty(i)
	}
	rt.prefetched[i] = v
	rt.prefetchOK[i] = ok
}

// markSlotDirty clears the clean-miss flags of everything depending on
// union slot i.
func (rt *Runtime) markSlotDirty(i int) {
	for _, gi := range rt.slotGroups[i] {
		rt.groupSkip[gi] = false
	}
	for _, w := range rt.slotWatches[i] {
		w.canSkip = false
	}
	rt.fused.fusedUnpark(i)
}

// noteGroupMiss records that group gi was evaluated with no hits. When
// the group is skip-eligible — every armed member's dependencies are
// verified, slotted, and currently readable — the miss provably holds
// until one of those dependencies changes, and the scheduler may skip
// the group at clean edges.
func (rt *Runtime) noteGroupMiss(gi int) {
	if !rt.groupStatic[gi] {
		return
	}
	for _, s := range rt.groupSlots[gi] {
		if !rt.prefetchOK[s] {
			return
		}
	}
	rt.groupSkip[gi] = true
}

// invalidatePrefetch drops the cycle cache; called after the stop
// handler returns, since the user may have deposited values or changed
// the breakpoint set while the simulation was paused. The fused results
// derive from the cache, so they fall with it: the next consumer
// re-runs the fused program over the refetched slots (handler deposits
// surface as slot diffs there, un-parking exactly the affected
// conditions).
func (rt *Runtime) invalidatePrefetch() {
	rt.prefetchValid = false
	if fs := rt.fused; fs != nil {
		fs.valid = false
	}
}

// fetchDep returns dependency i of a compiled program, preferring the
// prefetched cycle cache and falling back to a direct backend read for
// dependencies outside the union (step-mode candidates) or failed
// slots.
func (rt *Runtime) fetchDep(paths []string, slots []int, i int) (eval.Value, error) {
	if slots != nil {
		// The bounds check is defensive: slot assignments are rebuilt
		// only before members are snapshotted, but a stale slot must
		// degrade to a direct read, never an out-of-range panic.
		if s := slots[i]; s >= 0 && s < len(rt.prefetchOK) && rt.prefetchOK[s] {
			return rt.prefetched[s], nil
		}
	}
	return rt.backend.GetValue(paths[i])
}

// execCompiled gathers a program's operands (cache-first) into the
// caller's scratch buffer and executes it on the caller's machine. It
// is the single evaluation path for breakpoint and watch conditions;
// callers own machine/buf exclusively for the duration (each group
// member is evaluated by exactly one pool worker per edge, watches run
// on the simulation goroutine), so no locking is needed.
func (rt *Runtime) execCompiled(prog *expr.Program, paths []string, slots []int, m *eval.Machine, buf *[]eval.Value) (eval.Value, error) {
	n := len(prog.Deps)
	if cap(*buf) < n {
		*buf = make([]eval.Value, n)
	}
	ops := (*buf)[:n]
	for i := range ops {
		v, err := rt.fetchDep(paths, slots, i)
		if err != nil {
			return eval.Value{}, err
		}
		ops[i] = v
	}
	return prog.Exec(m, ops)
}

// execProg evaluates one of the breakpoint's compiled conditions with
// its private scratch.
func (ibp *insertedBP) execProg(rt *Runtime, prog *expr.Program, paths []string, slots []int) (eval.Value, error) {
	return rt.execCompiled(prog, paths, slots, &ibp.machine, &ibp.opbuf)
}
