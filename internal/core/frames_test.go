package core

import (
	"sort"
	"testing"
)

// TestStructureNumericIndexOrder pins the ordering fix for flattened
// vector elements: bracketed indices sort numerically (v[2] < v[10]),
// not lexicographically (v[10] < v[2]). DAP variable expansion renders
// Structure's child order directly, so this is user-visible.
func TestStructureNumericIndexOrder(t *testing.T) {
	vars := []Variable{
		{Name: "v[10].bits", Value: 10},
		{Name: "v[2].bits", Value: 2},
		{Name: "v[0].bits", Value: 0},
		{Name: "v[1].bits", Value: 1},
		{Name: "io.valid", Value: 1},
	}
	tree := Structure(vars)
	// splitDots keeps bracketed indices attached to their segment, so
	// each v[N] is its own top-level node alongside io.
	want := []string{"io", "v[0]", "v[1]", "v[2]", "v[10]"}
	if len(tree) != len(want) {
		t.Fatalf("top-level nodes = %d, want %d", len(tree), len(want))
	}
	for i, w := range want {
		if got := tree[i].Name; got != w {
			t.Fatalf("node %d = %q, want %q (indices must order numerically)", i, got, w)
		}
	}
	for _, sv := range tree[1:] {
		if len(sv.Children) != 1 || sv.Children[0].Name != "bits" {
			t.Fatalf("%s children = %+v, want one leaf 'bits'", sv.Name, sv.Children)
		}
	}
}

// TestNaturalLess pins the comparator itself, including the totality
// tie-breaks for different spellings of the same number.
func TestNaturalLess(t *testing.T) {
	ordered := []string{
		"a", "a[0]", "a[1]", "a[2]", "a[10]", "a[11]", "b",
		"v2", "v10", "w[1].x", "w[1].y", "w[2].x",
	}
	for i := range ordered {
		for j := range ordered {
			got := naturalLess(ordered[i], ordered[j])
			if want := i < j; got != want {
				t.Errorf("naturalLess(%q, %q) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
	// Equal-value different-spelling pairs stay a strict weak order.
	if naturalLess("a07", "a7") == naturalLess("a7", "a07") {
		t.Fatal("naturalLess is not antisymmetric on 07 vs 7")
	}
	// sortVars uses the same comparator.
	vars := []Variable{{Name: "r[10]"}, {Name: "r[9]"}, {Name: "r[1]"}}
	sortVars(vars)
	if !sort.SliceIsSorted(vars, func(i, j int) bool { return naturalLess(vars[i].Name, vars[j].Name) }) ||
		vars[0].Name != "r[1]" || vars[1].Name != "r[9]" || vars[2].Name != "r[10]" {
		t.Fatalf("sortVars order = %v", []string{vars[0].Name, vars[1].Name, vars[2].Name})
	}
}
