package core

import (
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

// TestDebugInsideForeignTestbench is the §3.4 scenario end to end: the
// generated IP is compiled on its own (the symbol table only knows its
// relative hierarchy), then instantiated inside a hand-written
// testbench the generator never saw. hgdb must locate the IP by
// instance-name matching and remap every breakpoint, frame variable,
// and enable condition through the testbench prefix.
func TestDebugInsideForeignTestbench(t *testing.T) {
	// --- The generated IP: symbols extracted from THIS circuit. ---
	buildIP := func() (*ir.Circuit, *symtab.Table, int) {
		c := generator.NewCircuit("Filter")
		m := c.NewModule("Filter")
		din := m.Input("din", ir.UIntType(8))
		dout := m.Output("dout", ir.UIntType(8))
		accum := m.RegInit("accum", ir.UIntType(8), m.Lit(0, 8))
		var line int
		m.When(din.Gt(m.Lit(100, 8)), func() {
			accum.Set(accum.AddMod(m.Lit(1, 8)))
			line = hereLine() - 1
		})
		dout.Set(accum)
		comp, err := passes.Compile(c.MustBuild(), false)
		if err != nil {
			t.Fatal(err)
		}
		table, err := symtab.Build(comp)
		if err != nil {
			t.Fatal(err)
		}
		return comp.Circuit, table, line
	}
	ipCirc, table, accLine := buildIP()

	// --- The foreign testbench: wraps the lowered IP two levels deep
	// under a different instance name ("dut"). Built directly in IR, as
	// an externally-supplied Verilog testbench would be. ---
	ipMod := ipCirc.Module("Filter")
	wrapper := &ir.Module{
		Name: "Wrapper",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			{Name: "in", Dir: ir.Input, Tpe: ir.UIntType(8)},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(8)},
		},
		Body: []ir.Stmt{
			&ir.DefInstance{Name: "dut", Module: "Filter"},
			&ir.Connect{Loc: ir.SubField{E: ir.Ref{Name: "dut"}, Name: "clock"}, Value: ir.Ref{Name: "clock"}},
			&ir.Connect{Loc: ir.SubField{E: ir.Ref{Name: "dut"}, Name: "reset"}, Value: ir.Ref{Name: "reset"}},
			&ir.Connect{Loc: ir.SubField{E: ir.Ref{Name: "dut"}, Name: "din"}, Value: ir.Ref{Name: "in"}},
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.SubField{E: ir.Ref{Name: "dut"}, Name: "dout"}},
		},
	}
	harness := &ir.Module{
		Name: "TestHarness",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			{Name: "stimulus", Dir: ir.Input, Tpe: ir.UIntType(8)},
			{Name: "observed", Dir: ir.Output, Tpe: ir.UIntType(8)},
		},
		Body: []ir.Stmt{
			&ir.DefInstance{Name: "wrap", Module: "Wrapper"},
			&ir.Connect{Loc: ir.SubField{E: ir.Ref{Name: "wrap"}, Name: "clock"}, Value: ir.Ref{Name: "clock"}},
			&ir.Connect{Loc: ir.SubField{E: ir.Ref{Name: "wrap"}, Name: "reset"}, Value: ir.Ref{Name: "reset"}},
			&ir.Connect{Loc: ir.SubField{E: ir.Ref{Name: "wrap"}, Name: "in"}, Value: ir.Ref{Name: "stimulus"}},
			&ir.Connect{Loc: ir.Ref{Name: "observed"}, Value: ir.SubField{E: ir.Ref{Name: "wrap"}, Name: "out"}},
		},
	}
	full := &ir.Circuit{Main: "TestHarness", Modules: []*ir.Module{harness, wrapper, ipMod}}
	nl, err := rtl.Elaborate(full)
	if err != nil {
		t.Fatalf("elaborate testbench: %v", err)
	}
	s := sim.New(nl)

	// --- Attach hgdb: the runtime must find Filter at
	// TestHarness.wrap.dut via module-name matching. ---
	rt, err := New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatalf("runtime in testbench: %v", err)
	}
	if rt.Remap().Prefix() != "TestHarness.wrap.dut" {
		t.Fatalf("remap prefix = %s", rt.Remap().Prefix())
	}

	if _, err := rt.AddBreakpoint("testbench_test.go", accLine, "accum == 2"); err != nil {
		t.Fatal(err)
	}
	var stopVals []uint64
	rt.SetHandler(func(ev *StopEvent) Command {
		for _, v := range ev.Threads[0].Locals {
			if v.Name == "accum" {
				stopVals = append(stopVals, v.Value)
				// Frame variables must carry full testbench paths.
				if v.RTL != "TestHarness.wrap.dut.accum" {
					t.Errorf("frame RTL path = %s", v.RTL)
				}
			}
		}
		return CmdContinue
	})

	s.Reset("TestHarness.reset", 1)
	s.Poke("TestHarness.stimulus", 200) // > 100: accumulate each cycle
	s.Run(6)

	if len(stopVals) != 1 || stopVals[0] != 2 {
		t.Fatalf("conditional stop values = %v, want [2]", stopVals)
	}
	// Watch expressions resolve through the remap too.
	v, err := rt.Evaluate("Filter", "accum")
	if err != nil {
		t.Fatalf("Evaluate through remap: %v", err)
	}
	if v.Bits != 6 {
		t.Fatalf("accum after run = %d, want 6", v.Bits)
	}
}

// TestStepAcrossCycleBoundary: a forward step at the last statement of
// a cycle must stop at the first enabled statement of the next cycle.
func TestStepAcrossCycleBoundary(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddBreakpoint("core_test.go", d.incLine, "")
	var stops []struct {
		line int
		time uint64
	}
	count := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops = append(stops, struct {
			line int
			time uint64
		}{ev.Line, ev.Time})
		count++
		if count >= 4 {
			return CmdDetach
		}
		return CmdStep
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Reset("Counter.reset", 1)
	d.sim.Run(4)
	if len(stops) < 3 {
		t.Fatalf("stops = %v", stops)
	}
	// Some consecutive stop pair must span a cycle boundary.
	crossed := false
	for i := 1; i < len(stops); i++ {
		if stops[i].time > stops[i-1].time {
			crossed = true
		}
	}
	if !crossed {
		t.Fatalf("stepping never crossed a cycle: %v", stops)
	}
}

// TestInterruptNext: the asynchronous pause primitive stops at the next
// evaluated statement even with no breakpoints inserted.
func TestInterruptNext(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	stops := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops++
		return CmdDetach
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(3)
	if stops != 0 {
		t.Fatal("stopped without pause")
	}
	rt2, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	stops2 := 0
	rt2.SetHandler(func(ev *StopEvent) Command {
		if !ev.StepStop {
			t.Error("pause stop not marked as step stop")
		}
		stops2++
		return CmdContinue
	})
	rt2.InterruptNext()
	d.sim.Run(2)
	if stops2 == 0 {
		t.Fatal("pause produced no stop")
	}
}
