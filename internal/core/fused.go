package core

import (
	"repro/internal/eval"
	"repro/internal/expr"
)

// This file wires whole-schedule fused condition compilation into the
// scheduler. Every dependency-union rebuild also rebuilds ONE fused
// program (expr.Fuse) covering each armed breakpoint condition and
// watchpoint expression whose dependencies are verified and slotted;
// at each forward, non-stepping clock edge the scheduler executes that
// program once — shared CSE prelude on the simulation goroutine, the
// per-condition segments partitioned into contiguous ranges across the
// worker pool — and the group walk merely consumes per-condition
// results, with no per-group locking, snapshotting or pool dispatch.
//
// PR 4's activity skip becomes a packed bitmap over fused condition
// ids, published lock-free (an epoch-swapped double buffer behind an
// atomic pointer) so pool workers read it without taking rt.mu.
// Anything the fused fast path cannot prove — an unverified
// dependency, a failed operand fetch, a poisoned shared segment —
// falls back to the exact per-condition path (evalBP), so fused
// scheduling is bit-identical to per-group evaluation; reverse
// scheduling and stepping use the per-group path entirely.

// fusedMask is one published skip bitmap: bit ci set means fused
// condition ci is a provable miss this edge and the workers must not
// re-evaluate it. Double-buffered and published via an atomic pointer;
// the epoch counts publishes (diagnostics only).
type fusedMask struct {
	epoch uint64
	bits  []uint64
}

// maskedBit reads one condition's bit from a published mask.
func (m *fusedMask) maskedBit(ci int32) bool {
	return m.bits[ci>>6]&(1<<(uint32(ci)&63)) != 0
}

// fusedState is the per-union-generation fused schedule: the compiled
// program, its membership maps, and the per-edge execution buffers.
// All fields are simulation-goroutine state except the buffers workers
// are handed read-only (opsVals, shVals, ...) or write at disjoint
// indexes (results, resOK).
type fusedState struct {
	sched *expr.FusedSchedule

	// conds maps fused condition id -> armed breakpoint, for ids below
	// watchBase; ids at and above watchBase are watchpoint values in
	// rt.watches order of the fusable subset.
	conds     []*insertedBP
	watchBase int

	// groupConds / groupExtra partition each group's armed members into
	// fused condition ids and unfusable members (evaluated by evalBP
	// during consumption), indexed like rt.allGroups.
	groupConds [][]int32
	groupExtra [][]*insertedBP

	// slotConds inverts each condition's operand closure onto the
	// dependency union: commitSlot clears the skip flags of every
	// condition that could observe the changed slot.
	slotConds [][]int32

	// condSkip marks provable misses (breakpoint conditions only);
	// parked counts the set flags so a fully-idle edge skips execution
	// outright.
	condSkip []bool
	parked   int

	// Per-edge execution buffers.
	opsVals []eval.Value
	opsOK   []bool
	shVals  []eval.Value
	shOK    []bool
	results []eval.Value
	resOK   []bool

	// machines are the per-chunk executors; chunk k runs the contiguous
	// condition range [k*perChunk, (k+1)*perChunk). execChunk is the
	// worker closure, built once per rebuild so dispatching it each edge
	// does not allocate.
	machines  []eval.FusedMachine
	chunks    int
	perChunk  int
	execChunk func(k int)

	valid bool
	time  uint64
}

// fusedChunkMin is the smallest condition range worth a pool dispatch.
const fusedChunkMin = 32

// slotsFused reports whether a compiled program's dependencies are all
// verified and slotted in the prefetch union — the fusability condition.
func slotsFused(prog *expr.Program, slots []int) bool {
	if prog == nil {
		return true
	}
	if len(slots) != len(prog.Deps) {
		return false
	}
	for _, s := range slots {
		if s < 0 {
			return false
		}
	}
	return true
}

// rebuildFused recompiles the fused schedule from the current armed
// set. Runs under rt.mu from rebuildDeps, after slot assignment.
func (rt *Runtime) rebuildFused() {
	fs := &fusedState{
		groupConds: make([][]int32, len(rt.allGroups)),
		groupExtra: make([][]*insertedBP, len(rt.allGroups)),
	}
	var fconds []expr.FusedCondition
	for gi, g := range rt.allGroups {
		for _, cand := range g.bps {
			armed, ok := rt.inserted[cand.bp.ID]
			if !ok {
				continue
			}
			if !armed.generalOnly() &&
				slotsFused(armed.enableProg, armed.enableSlots) &&
				slotsFused(armed.condProg, armed.condSlots) {
				fs.groupConds[gi] = append(fs.groupConds[gi], int32(len(fconds)))
				fconds = append(fconds, expr.FusedCondition{
					Enable:      armed.enableProg,
					Cond:        armed.condProg,
					EnableSlots: armed.enableSlots,
					CondSlots:   armed.condSlots,
				})
				fs.conds = append(fs.conds, armed)
			} else {
				fs.groupExtra[gi] = append(fs.groupExtra[gi], armed)
			}
		}
	}
	fs.watchBase = len(fconds)
	// Watchpoint value expressions ride the same program as extra
	// conditions; checkWatches consumes their values instead of truth.
	for _, w := range rt.watches {
		w.fusedID = -1
		if w.prog == nil || !slotsFused(w.prog, w.slots) {
			continue
		}
		w.fusedID = len(fconds)
		fconds = append(fconds, expr.FusedCondition{Cond: w.prog, CondSlots: w.slots})
	}
	if len(fconds) == 0 {
		rt.fused = nil
		return
	}
	sched, err := expr.Fuse(fconds)
	if err != nil {
		// A condition the fuser cannot compile leaves the whole schedule
		// on the per-group path; correctness never depends on fusion.
		rt.fused = nil
		return
	}
	fs.sched = sched
	n := len(sched.Prog.Conds)
	fs.opsVals = make([]eval.Value, len(sched.Slots))
	fs.opsOK = make([]bool, len(sched.Slots))
	fs.shVals = make([]eval.Value, sched.Prog.NumShared)
	fs.shOK = make([]bool, sched.Prog.NumShared)
	fs.results = make([]eval.Value, n)
	fs.resOK = make([]bool, n)
	fs.condSkip = make([]bool, n)
	fs.slotConds = make([][]int32, len(rt.depUnion))
	for ci, clo := range sched.OpClosures {
		for _, op := range clo {
			s := sched.Slots[op]
			fs.slotConds[s] = append(fs.slotConds[s], int32(ci))
		}
	}
	fs.chunks = (n + fusedChunkMin - 1) / fusedChunkMin
	if max := rt.pool.size + 1; fs.chunks > max {
		fs.chunks = max
	}
	if fs.chunks < 1 {
		fs.chunks = 1
	}
	fs.perChunk = (n + fs.chunks - 1) / fs.chunks
	fs.machines = make([]eval.FusedMachine, fs.chunks)
	fs.execChunk = func(k int) {
		from := k * fs.perChunk
		to := from + fs.perChunk
		if to > n {
			to = n
		}
		if from >= to {
			return
		}
		// The skip set is read through the atomic publish, not rt.mu.
		mask := rt.fusedSkip.Load()
		fs.machines[k].ExecConds(&sched.Prog, fs.opsVals, fs.opsOK, fs.shVals, fs.shOK,
			from, to, mask.bits, fs.results, fs.resOK)
	}
	rt.fused = fs
}

// fusedOn reports whether the fused fast path is enabled (it also
// requires activity-driven scheduling: SetExhaustiveEval(true) is the
// everything-off differential baseline).
func (rt *Runtime) fusedOn() bool {
	return !rt.fusedOff.Load() && rt.deltaOn() && !rt.generalEval.Load()
}

// fusedReady returns the fused state with results current for time t,
// executing the fused program if this edge has not run it yet (or a
// stop handler invalidated the previous run). Returns nil when the
// fast path is unavailable. Callers must have run ensurePrefetch(t).
func (rt *Runtime) fusedReady(t uint64) *fusedState {
	if !rt.fusedOn() {
		return nil
	}
	fs := rt.fused
	if fs == nil {
		return nil
	}
	if fs.valid && fs.time == t {
		return fs
	}
	rt.runFused(fs, t)
	return fs
}

// runFused executes the whole fused schedule once: gather operands from
// the prefetch cache, publish the skip bitmap, run the shared prelude,
// then the condition segments across the worker pool in contiguous
// ranges.
func (rt *Runtime) runFused(fs *fusedState, t uint64) {
	sched := fs.sched
	if fs.parked == fs.watchBase && fs.watchBase == len(fs.resOK) {
		// Every breakpoint condition is a parked provable miss and no
		// watch rides the program: the idle edge needs no execution at
		// all, only the mask for the group walk to consume.
		rt.publishFusedMask(fs)
		fs.valid, fs.time = true, t
		return
	}
	for k, s := range sched.Slots {
		fs.opsVals[k] = rt.prefetched[s]
		fs.opsOK[k] = rt.prefetchOK[s]
	}
	rt.publishFusedMask(fs)
	fs.machines[0].ExecShared(&sched.Prog, fs.opsVals, fs.opsOK, fs.shVals, fs.shOK)
	rt.pool.parallel(fs.chunks, fs.execChunk)
	fs.valid, fs.time = true, t
	// Account evaluated breakpoint conditions and park fresh provable
	// misses: a condition that evaluated sound-and-false stays skipped
	// until a slot in its operand closure moves (markSlotDirty).
	evaluated := 0
	for ci := 0; ci < fs.watchBase; ci++ {
		if fs.condSkip[ci] {
			continue
		}
		evaluated++
		if fs.resOK[ci] && !fs.results[ci].IsTrue() {
			fs.condSkip[ci] = true
			fs.parked++
		}
	}
	if evaluated > 0 {
		rt.mu.Lock()
		rt.evalCount += uint64(evaluated)
		rt.mu.Unlock()
	}
	rt.statFusedRuns.Add(1)
}

// publishFusedMask packs the current skip flags into the inactive mask
// buffer and publishes it with an atomic pointer swap. Workers of this
// edge load the fresh pointer; a straggler holding the previous edge's
// pointer (impossible once parallel() returned, but harmless) sees the
// other, untouched buffer.
func (rt *Runtime) publishFusedMask(fs *fusedState) {
	words := (len(fs.resOK) + 63) / 64
	buf := &rt.maskBufs[rt.maskFlip&1]
	rt.maskFlip++
	if cap(buf.bits) < words {
		buf.bits = make([]uint64, words)
	}
	buf.bits = buf.bits[:words]
	for i := range buf.bits {
		buf.bits[i] = 0
	}
	// Only breakpoint conditions are maskable; watch values always
	// recompute (their own canSkip check lives in checkWatches).
	for ci := 0; ci < fs.watchBase; ci++ {
		if fs.condSkip[ci] {
			buf.bits[ci>>6] |= 1 << (uint(ci) & 63)
		}
	}
	rt.maskEpoch++
	buf.epoch = rt.maskEpoch
	rt.fusedSkip.Store(buf)
}

// fusedGroupEval consumes one group's fused results: masked conditions
// are provable misses, sound results decide directly, poisoned results
// and unfusable members fall back to the exact per-condition path.
func (rt *Runtime) fusedGroupEval(fs *fusedState, gi int) []*insertedBP {
	mask := rt.fusedSkip.Load()
	var hits []*insertedBP
	evaluated := 0
	fallback := 0
	for _, ci := range fs.groupConds[gi] {
		if mask.maskedBit(ci) {
			continue
		}
		evaluated++
		if !fs.resOK[ci] {
			fallback++
			if rt.evalBP(fs.conds[ci]) {
				hits = append(hits, fs.conds[ci])
			}
			continue
		}
		if fs.results[ci].IsTrue() {
			hits = append(hits, fs.conds[ci])
		}
	}
	for _, ibp := range fs.groupExtra[gi] {
		evaluated++
		fallback++
		if rt.evalBP(ibp) {
			hits = append(hits, ibp)
		}
	}
	if fallback > 0 {
		rt.mu.Lock()
		rt.evalCount += uint64(fallback)
		rt.mu.Unlock()
	}
	if evaluated > 0 {
		rt.statEvaluated.Add(1)
	} else {
		rt.statSkipped.Add(1)
	}
	// A hit condition stays hot by construction: hits never set
	// condSkip, so they re-evaluate at every edge until a dependency
	// moves or the user resumes past them.
	return hits
}

// fusedUnpark clears the skip flags of every fused condition whose
// operand closure includes union slot i; called from markSlotDirty.
func (fs *fusedState) fusedUnpark(i int) {
	if fs == nil || i >= len(fs.slotConds) {
		return
	}
	for _, ci := range fs.slotConds[i] {
		if fs.condSkip[ci] {
			fs.condSkip[ci] = false
			fs.parked--
		}
	}
}
