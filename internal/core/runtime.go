// Package core implements the hgdb debugger runtime — the paper's
// breakpoint emulation layer (§3.2, Figure 2): breakpoint insertion
// against the symbol table, the Figure 2 scheduling loop executed
// inside the simulator's clock-edge callback, parallel condition
// evaluation of breakpoint groups, source-level stack frame
// reconstruction with structured variables (§3.4), concurrent
// instances presented as threads (Figure 4), watchpoints, and
// intra-cycle plus (on replay backends) full reverse debugging (§3.2).
//
// Conditions compile once at insertion time to register bytecode
// (expr.Compile → eval.Machine) and each edge issues one batched read
// of the armed dependency union; on backends implementing
// vpi.Prefetcher (the replay block store) that union is advised ahead
// of time so per-cycle reads stay off cold trace state. See DESIGN.md.
package core

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/symtab"
	"repro/internal/val"
	"repro/internal/vpi"
)

// Command tells the runtime how to proceed after a stop.
type Command int

const (
	// CmdContinue resumes until the next inserted breakpoint hits.
	CmdContinue Command = iota
	// CmdStep stops at the next source statement whose enable condition
	// holds, whether or not a breakpoint is inserted there (step-over).
	CmdStep
	// CmdReverseStep steps to the previous enabled source statement,
	// reversing the intra-cycle schedule; at the cycle boundary the
	// backend's SetTime is used when available (§3.2).
	CmdReverseStep
	// CmdDetach removes the runtime from the simulation; the design
	// runs freely afterwards.
	CmdDetach
)

func (c Command) String() string {
	switch c {
	case CmdContinue:
		return "continue"
	case CmdStep:
		return "step"
	case CmdReverseStep:
		return "reverse-step"
	case CmdDetach:
		return "detach"
	}
	return fmt.Sprintf("Command(%d)", int(c))
}

// Variable is one reconstructed variable value in a frame.
type Variable struct {
	// Name is the source-level (dotted) name, e.g. "io.out.bits".
	Name string `json:"name"`
	// Value is the current bits.
	Value uint64 `json:"value"`
	// Width is the signal width.
	Width int `json:"width"`
	// RTL is the full simulator path the value was fetched from.
	RTL string `json:"rtl"`
	// Unknown marks a variable whose backend read failed (a replay gap,
	// an optimized-away net). The variable is still emitted — frames
	// keep a deterministic shape — with Value/Width zero and this flag
	// set, and the marker travels the wire unchanged (core.StopEvent is
	// the protocol's stop payload).
	Unknown bool `json:"unknown,omitempty"`
	// X marks the unknown (x/z) bits of the low value word, VPI
	// aval/bval style: an X bit set means that position is not a known
	// 0/1, and the corresponding Value bit then distinguishes x (0)
	// from z (1). Two-state values leave it zero, so their wire frames
	// are byte-identical to the pre-four-state encoding.
	X uint64 `json:"x,omitempty"`
	// Hi/XHi extend the value and x planes beyond 64 bits (words 1..,
	// little-endian). Empty for values that fit one word.
	Hi  []uint64 `json:"hi,omitempty"`
	XHi []uint64 `json:"xhi,omitempty"`
}

// SetBits stores a four-state value into the variable's wire fields.
// The encoding is normalized — an all-zero x plane is dropped — so
// equal values always serialize identically regardless of how their
// val.Bits were built.
func (v *Variable) SetBits(b val.Bits) {
	v.Value = b.V0
	v.X = b.X0
	v.Width = b.Width
	v.Hi, v.XHi = nil, nil
	if b.IsWide() {
		v.Hi = append([]uint64(nil), b.VH...)
		for _, w := range b.XH {
			if w != 0 {
				v.XHi = append([]uint64(nil), b.XH...)
				break
			}
		}
	}
}

// BitsValue reconstructs the four-state value from the wire fields.
// Fields that arrived over the wire are normalized (masked to Width)
// rather than trusted.
func (v *Variable) BitsValue() val.Bits {
	if len(v.Hi) == 0 && len(v.XHi) == 0 {
		return val.FromPlanes([]uint64{v.Value}, []uint64{v.X}, v.Width)
	}
	vw := append([]uint64{v.Value}, v.Hi...)
	xw := append([]uint64{v.X}, v.XHi...)
	return val.FromPlanes(vw, xw, v.Width)
}

// HasX reports whether any bit of the value is x or z.
func (v *Variable) HasX() bool {
	if v.X != 0 {
		return true
	}
	for _, w := range v.XHi {
		if w != 0 {
			return true
		}
	}
	return false
}

// Display renders the variable for a human: decimal for known ≤64-bit
// values (what the debugger always showed), Verilog-style sized
// literals ("8'b1x0z", "128'hdead...") for four-state or wide ones,
// and "<unknown>" for failed reads.
func (v *Variable) Display() string {
	if v.Unknown {
		return "<unknown>"
	}
	return v.BitsValue().String()
}

// EqualValue reports whether two variables carry bit-identical value
// planes (shape — name, RTL path, width — is compared separately; see
// proto's sameShape).
func (v *Variable) EqualValue(o *Variable) bool {
	return v.Value == o.Value && v.X == o.X && v.Unknown == o.Unknown &&
		wordsEqual(v.Hi, o.Hi) && wordsEqual(v.XHi, o.XHi)
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Thread is one concurrent hardware instance stopped at a source
// location (paper Fig. 4 B).
type Thread struct {
	// BreakpointID identifies the symtab breakpoint row.
	BreakpointID int64 `json:"breakpoint_id"`
	// Instance is the symtab-relative instance path.
	Instance string `json:"instance"`
	// Locals are the scope variables reconstructed for the frame.
	Locals []Variable `json:"locals"`
	// Generator are the instance-level generator variables.
	Generator []Variable `json:"generator"`
}

// StopEvent describes one debugger stop.
type StopEvent struct {
	// Time is the simulation time of the stop.
	Time uint64 `json:"time"`
	// File/Line/Col locate the generator source statement.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Threads are the instances that hit the location this cycle.
	Threads []Thread `json:"threads"`
	// Reverse reports whether the stop was reached by reverse
	// execution.
	Reverse bool `json:"reverse"`
	// StepStop reports a stop produced by stepping rather than an
	// inserted breakpoint.
	StepStop bool `json:"step_stop"`
	// Watch carries triggered watchpoints when the stop came from a
	// data breakpoint rather than a source location.
	Watch []WatchHit `json:"watch,omitempty"`
}

// Handler receives stop events and returns the next command. It runs on
// the simulation goroutine: the simulator is paused for as long as the
// handler takes — exactly the paper's model, where hgdb blocks inside
// the clock callback while the user inspects state.
type Handler func(*StopEvent) Command

// insertedBP is one armed emulated breakpoint.
type insertedBP struct {
	bp     symtab.Breakpoint
	enable expr.Node // nil = always enabled; tree-walk reference form
	cond   expr.Node // user condition; nil = none; tree-walk reference
	// paths precomputes name → full simulator path for every identifier
	// the conditions reference, so per-cycle evaluation allocates
	// nothing (the timing-sensitive path of §3.3).
	paths map[string]string

	// Compiled pipeline state: the conditions lowered to register
	// programs at insertion time, their dependency paths aligned with
	// each program's Deps order, and the dependencies' slots in the
	// runtime's per-cycle prefetch cache (-1/nil when not prefetched).
	enableProg  *expr.Program
	condProg    *expr.Program
	enablePaths []string
	condPaths   []string
	enableSlots []int
	condSlots   []int
	// The verified flags mark dependencies whose path resolution was
	// confirmed against the backend at arm time; unverified names stay
	// out of the batched prefetch union so one bad name cannot fail
	// the whole batch, and are probed per evaluation instead.
	enableVerified []bool
	condVerified   []bool
	// Per-member evaluation scratch. A member is evaluated by exactly
	// one worker per edge, so no locking is needed.
	machine eval.Machine
	opbuf   []eval.Value
}

// group is a set of breakpoints sharing one source statement; the
// scheduler evaluates a group's members (instances) in parallel.
type group struct {
	file    string
	line    int
	col     int
	ordinal int
	bps     []*insertedBP
}

func (g *group) key() groupKey {
	return groupKey{file: g.file, line: g.line, ordinal: g.ordinal}
}

type groupKey struct {
	file    string
	line    int
	ordinal int
}

// Runtime is the hgdb debugger runtime.
type Runtime struct {
	backend vpi.Interface
	table   *symtab.Table
	remap   *symtab.Remap

	mu       sync.Mutex
	inserted map[int64]*insertedBP
	handler  Handler

	// stepping state
	stepArmed    bool // stop at the next enabled statement
	reverseArmed bool // schedule in reverse on the next evaluation
	resumeFrom   int  // group index to resume within the current cycle
	detached     bool

	watches   []*Watchpoint
	nextWatch int

	cbID       int
	attached   bool
	evalCount  uint64 // statistics: breakpoint condition evaluations
	stopCount  uint64
	allGroups  []*group // all symtab statements, for stepping
	cycleGuard bool

	// pool evaluates breakpoint group members; it lives for the
	// runtime's lifetime (workers park between edges) instead of
	// spawning goroutines per edge.
	pool *workerPool

	// queries holds pending debugger queries awaiting a drain point
	// with stable simulation state; execMu serializes every job's
	// execution across all drain points so two queries can never touch
	// the unsynchronized backend concurrently; edgeSeen counts clock
	// edges so the idle fallback can tell a quiet simulator from one
	// that came alive mid-grace (see query.go).
	queries  chan *QueryJob
	execMu   sync.Mutex
	edgeSeen atomic.Uint64
	// idleSince memoizes "the simulation was idle at edge count N":
	// holds edgeSeen+1 as observed by the last inline fallback (0 =
	// none), letting later queries skip the idle-grace wait until an
	// edge advances the counter (see query.go).
	idleSince atomic.Uint64

	// Per-cycle prefetch cache (simulation-goroutine state, except
	// depsDirty which rt.mu guards): the union of every armed
	// condition's dependency paths, their batched values for the
	// current cycle, and per-slot fetch success.
	depsDirty     bool
	depUnion      []string
	prefetched    []eval.Value
	prefetchOK    []bool
	prefetchTime  uint64
	prefetchValid bool

	// Activity-driven scheduling state (simulation goroutine only,
	// except the atomics). The scheduler skips any group whose last
	// evaluation produced no hit and whose dependency slots have been
	// clean at every cache refresh since; dirt arrives either from the
	// backend's vpi.ChangeReporter poll (which also lets the refresh
	// re-read only the dirty slots) or from value diffing on a full
	// refresh. See DESIGN.md "Activity-driven scheduling".
	reporter    vpi.ChangeReporter // backend capability; nil if absent
	deltaOff    atomic.Bool        // SetExhaustiveEval escape hatch
	generalEval atomic.Bool        // SetGeneralEval: force four-state tree-walk
	changedBuf  []bool             // reporter poll scratch, aligned with depUnion
	incoming    []eval.Value       // refresh scratch (read-then-diff)
	dirtySlots  []int              // slots to refresh this edge (partial path)
	pathBuf     []string           // partial-refresh path gather scratch
	valBuf      []eval.Value       // partial-refresh value scatter scratch
	diffBase    bool               // prefetched holds values of this union generation

	// Per-group scheduling state, indexed by position in allGroups and
	// rebuilt with the dependency union: the slot→groups inverted
	// index, each group's dependency slots, armed-member counts, the
	// skip-eligibility of each group (every armed member's deps
	// verified and slotted), and the clean-miss flags themselves.
	groupIdx    map[groupKey]int
	slotGroups  [][]int32
	slotWatches [][]*Watchpoint
	groupSlots  [][]int32
	groupArmed  []int
	groupStatic []bool
	groupSkip   []bool

	// Activity statistics (atomic: benchmarks read them cross-routine).
	statSkipped   atomic.Uint64 // armed groups skipped as provably clean misses
	statEvaluated atomic.Uint64 // groups evaluated with at least one member
	statPartial   atomic.Uint64 // cache refreshes bounded by a delta report

	// evaluateGroup scratch (simulation goroutine only).
	memberBuf []*insertedBP
	resultBuf []bool

	// Fused schedule compilation state (see fused.go): the whole-schedule
	// fused program rebuilt with the dependency union, its per-edge skip
	// bitmap published lock-free through fusedSkip (double-buffered in
	// maskBufs), and the SetFusedEval escape hatch.
	fused         *fusedState
	fusedOff      atomic.Bool
	fusedSkip     atomic.Pointer[fusedMask]
	maskBufs      [2]fusedMask
	maskFlip      int
	maskEpoch     uint64
	statFusedRuns atomic.Uint64 // fused whole-schedule executions
}

// New attaches a runtime to a backend and symbol table. The design is
// located inside the simulated hierarchy via instance-name matching.
func New(backend vpi.Interface, table *symtab.Table) (*Runtime, error) {
	remap, err := symtab.NewRemap(backend.Hierarchy(), table)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		backend:  backend,
		table:    table,
		remap:    remap,
		inserted: map[int64]*insertedBP{},
		pool:     newWorkerPool(goruntime.GOMAXPROCS(0)),
		queries:  make(chan *QueryJob, queryQueueDepth),
	}
	rt.allGroups = rt.buildAllGroups()
	rt.groupIdx = make(map[groupKey]int, len(rt.allGroups))
	for i, g := range rt.allGroups {
		rt.groupIdx[g.key()] = i
	}
	if cr, ok := backend.(vpi.ChangeReporter); ok {
		rt.reporter = cr
	}
	// Build the (empty) dependency union and per-group scheduling
	// arrays up front so the scheduler never sees them nil — stepping
	// can run before any breakpoint is armed.
	rt.rebuildDeps()
	rt.cbID = backend.OnClockEdge(rt.onEdge)
	rt.attached = true
	return rt, nil
}

// SetExhaustiveEval disables (on=true) or re-enables activity-driven
// scheduling: with exhaustive evaluation every group is re-evaluated at
// every clock edge, the seed behavior delta scheduling is
// differentially tested against. Call before driving the simulation.
func (rt *Runtime) SetExhaustiveEval(on bool) { rt.deltaOff.Store(on) }

// deltaOn reports whether activity-driven scheduling is active.
func (rt *Runtime) deltaOn() bool { return !rt.deltaOff.Load() }

// SetFusedEval disables (on=false) or re-enables whole-schedule fused
// condition compilation. With fusion off, forward scheduling uses the
// per-group activity-driven path — the comparison baseline fused
// execution is benchmarked against. Call before driving the simulation.
func (rt *Runtime) SetFusedEval(on bool) { rt.fusedOff.Store(!on) }

// SetGeneralEval (on=true) forces every condition through the general
// four-state tree-walk evaluator instead of the compiled two-state
// pipeline — the differential baseline that pins the fast path
// bit-identical to four-state semantics on fully known designs. It
// also suppresses fused execution, which is a two-state specialization
// of the same conditions. Call before driving the simulation.
func (rt *Runtime) SetGeneralEval(on bool) { rt.generalEval.Store(on) }

// FuseInfo reports the current fused schedule's shape: fused condition
// count, CSE shared segments, shared-register reads those segments
// replaced, and deduplicated operand count. ok is false when the fast
// path is unavailable (nothing armed, fusion disabled, or a condition
// the fuser rejected).
func (rt *Runtime) FuseInfo() (stats expr.FuseStats, ok bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.fused == nil || rt.fused.sched == nil {
		return expr.FuseStats{}, false
	}
	return rt.fused.sched.Stats, true
}

// FusedRuns reports how many times the fused whole-schedule program has
// executed (at most once per clock edge plus handler invalidations).
func (rt *Runtime) FusedRuns() uint64 { return rt.statFusedRuns.Load() }

// ActivityStats returns counters for the activity-driven scheduler:
// armed groups skipped as provably-clean misses, groups actually
// evaluated, and cache refreshes that a backend delta report bounded to
// the dirty subset.
func (rt *Runtime) ActivityStats() (skipped, evaluated, partialRefreshes uint64) {
	return rt.statSkipped.Load(), rt.statEvaluated.Load(), rt.statPartial.Load()
}

// buildAllGroups precomputes the absolute ordering of every potential
// breakpoint (§3.2: "Before the simulation starts, we compute the
// absolute ordering of every potential breakpoint").
func (rt *Runtime) buildAllGroups() []*group {
	byKey := map[groupKey]*group{}
	var order []groupKey
	for _, bp := range rt.table.AllBreakpoints() {
		ibp, err := rt.prepare(bp, "")
		if err != nil {
			continue
		}
		g, ok := byKey[ibp.key()]
		if !ok {
			g = &group{file: bp.Filename, line: bp.Line, col: bp.Col, ordinal: bp.Order}
			byKey[ibp.key()] = g
			order = append(order, ibp.key())
		}
		g.bps = append(g.bps, ibp)
	}
	groups := make([]*group, 0, len(order))
	for _, k := range order {
		groups = append(groups, byKey[k])
	}
	sortGroups(groups)
	return groups
}

func sortGroups(groups []*group) {
	sort.SliceStable(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.file != b.file {
			return a.file < b.file
		}
		return a.ordinal < b.ordinal
	})
}

func (ibp *insertedBP) key() groupKey {
	return groupKey{file: ibp.bp.Filename, line: ibp.bp.Line, ordinal: ibp.bp.Order}
}

// generalOnly reports whether any of the breakpoint's conditions parsed
// but did not compile (four-state literals, wide constants): such a
// member evaluates exclusively through the general four-state
// evaluator, its dependencies stay out of the prefetch union, and its
// group can never be proven a clean miss.
func (ibp *insertedBP) generalOnly() bool {
	return (ibp.enable != nil && ibp.enableProg == nil) ||
		(ibp.cond != nil && ibp.condProg == nil)
}

// prepare parses and compiles the enable and user conditions of a
// breakpoint, then resolves every dependency to its simulator path —
// the compile-once half of the pipeline; per-cycle evaluation only
// executes the compiled programs.
func (rt *Runtime) prepare(bp symtab.Breakpoint, userCond string) (*insertedBP, error) {
	ibp := &insertedBP{bp: bp}
	if bp.Enable != "" {
		// ParseCompile shares one immutable (AST, program) pair across
		// the N instances of a generated statement — and across re-arms —
		// instead of recompiling the identical source N times.
		n, p, err := expr.ParseCompile(bp.Enable)
		if err != nil {
			return nil, fmt.Errorf("core: bad enable condition %q: %w", bp.Enable, err)
		}
		ibp.enable, ibp.enableProg = n, p
	}
	if userCond != "" {
		n, p, err := expr.ParseCompile(userCond)
		if err != nil {
			return nil, fmt.Errorf("core: bad breakpoint condition %q: %w", userCond, err)
		}
		ibp.cond, ibp.condProg = n, p
	}
	rt.precomputePaths(ibp)
	return ibp, nil
}

// precomputePaths resolves every identifier in the breakpoint's
// compiled conditions to its full simulator path once, at arm time.
// The dependency lists come from the compiled programs (constant
// folding may eliminate references the raw AST still mentions).
func (rt *Runtime) precomputePaths(ibp *insertedBP) {
	ibp.paths = map[string]string{}
	inst := ibp.bp.InstanceName
	if ibp.enableProg != nil {
		// Enable conditions speak in instance-local RTL names. Probe
		// each mapped path so a signal the backend does not expose
		// (e.g. optimized away) stays out of the batch union.
		ibp.enablePaths = make([]string, len(ibp.enableProg.Deps))
		ibp.enableVerified = make([]bool, len(ibp.enableProg.Deps))
		for i, n := range ibp.enableProg.Deps {
			p := rt.remap.ToSim(inst + "." + n)
			ibp.paths[n] = p
			ibp.enablePaths[i] = p
			// A four-state read error still proves the signal exists —
			// its value just needs the general evaluator, which the
			// per-slot prefetch failure routes to.
			_, err := rt.backend.GetValue(p)
			ibp.enableVerified[i] = err == nil || errors.Is(err, vpi.ErrFourState)
		}
	}
	if ibp.condProg != nil {
		// User conditions speak in source-level names; resolve with the
		// shared scope → generator → local-RTL → absolute chain
		// (watchpoints use the identical chain, see AddWatch).
		ibp.condPaths = make([]string, len(ibp.condProg.Deps))
		ibp.condVerified = make([]bool, len(ibp.condProg.Deps))
		for i, n := range ibp.condProg.Deps {
			if p, done := ibp.paths[n]; done {
				// Shared with the enable condition: inherit its
				// verification result.
				ibp.condPaths[i] = p
				ibp.condVerified[i] = verifiedIn(ibp.enableProg, ibp.enableVerified, n)
				continue
			}
			// Unverified names stay as written and are probed as
			// absolute paths at evaluation time.
			p, ok := rt.resolveSourceName(ibp.bp.ID, inst, n)
			ibp.paths[n] = p
			ibp.condPaths[i] = p
			ibp.condVerified[i] = ok
		}
	}
	// Conditions without a compiled program (general-evaluator-only:
	// four-state literals, wide constants) still get their names
	// resolved through the same chains, so the EvalBits resolver sees
	// the paths the compiled pipeline would have used.
	if ibp.enable != nil && ibp.enableProg == nil {
		for _, n := range expr.Names(ibp.enable) {
			if _, done := ibp.paths[n]; !done {
				ibp.paths[n] = rt.remap.ToSim(inst + "." + n)
			}
		}
	}
	if ibp.cond != nil && ibp.condProg == nil {
		for _, n := range expr.Names(ibp.cond) {
			if _, done := ibp.paths[n]; !done {
				p, _ := rt.resolveSourceName(ibp.bp.ID, inst, n)
				ibp.paths[n] = p
			}
		}
	}
}

// verifiedIn reports whether name is a verified dependency of prog.
func verifiedIn(prog *expr.Program, verified []bool, name string) bool {
	if prog == nil {
		return false
	}
	for i, d := range prog.Deps {
		if d == name {
			return verified[i]
		}
	}
	return false
}

// SetHandler installs the stop handler. Without a handler, hits
// auto-continue.
func (rt *Runtime) SetHandler(h Handler) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.handler = h
}

// AddBreakpoint arms every emulated breakpoint at file:line (one per
// matching statement per instance), with an optional user condition in
// the debugger expression language. It returns the armed breakpoint
// ids.
func (rt *Runtime) AddBreakpoint(file string, line int, cond string) ([]int64, error) {
	bps := rt.table.BreakpointsAt(file, line)
	if len(bps) == 0 {
		return nil, fmt.Errorf("core: no breakpoint at %s:%d", file, line)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var ids []int64
	for _, bp := range bps {
		ibp, err := rt.prepare(bp, cond)
		if err != nil {
			return nil, err
		}
		rt.inserted[bp.ID] = ibp
		ids = append(ids, bp.ID)
	}
	rt.markDepsDirty()
	return ids, nil
}

// AddBreakpointInstance arms breakpoints at file:line for one specific
// instance only — the per-thread breakpoint scoping an IDE offers when
// the user picks a single hardware thread (Fig. 4 B).
func (rt *Runtime) AddBreakpointInstance(file string, line int, instance, cond string) ([]int64, error) {
	bps := rt.table.BreakpointsAt(file, line)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var ids []int64
	for _, bp := range bps {
		if bp.InstanceName != instance {
			continue
		}
		ibp, err := rt.prepare(bp, cond)
		if err != nil {
			return nil, err
		}
		rt.inserted[bp.ID] = ibp
		ids = append(ids, bp.ID)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: no breakpoint at %s:%d in instance %s", file, line, instance)
	}
	rt.markDepsDirty()
	return ids, nil
}

// RemoveBreakpoint disarms all breakpoints at file:line; line <= 0
// disarms the whole file.
func (rt *Runtime) RemoveBreakpoint(file string, line int) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	removed := 0
	for id, ibp := range rt.inserted {
		if ibp.bp.Filename == file && (line <= 0 || ibp.bp.Line == line) {
			delete(rt.inserted, id)
			removed++
		}
	}
	if removed > 0 {
		rt.markDepsDirty()
	}
	return removed
}

// ClearBreakpoints disarms everything.
func (rt *Runtime) ClearBreakpoints() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.inserted = map[int64]*insertedBP{}
	rt.markDepsDirty()
}

// ListBreakpoints returns the armed breakpoints in scheduling order.
func (rt *Runtime) ListBreakpoints() []symtab.Breakpoint {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []symtab.Breakpoint
	for _, ibp := range rt.inserted {
		out = append(out, ibp.bp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InterruptNext arms a step stop at the next evaluated statement
// (asynchronous pause).
func (rt *Runtime) InterruptNext() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.stepArmed = true
}

// Detach removes the clock callback; the simulation runs free.
func (rt *Runtime) Detach() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.attached {
		rt.backend.RemoveCallback(rt.cbID)
		rt.attached = false
		rt.pool.close()
		// Release the backend's dirty-signal tracking: an empty
		// registration disables reporting, so the free-running design
		// stops paying the per-commit change compares for a debugger
		// that is gone.
		if rt.reporter != nil {
			rt.reporter.TrackChanges(nil)
		}
	}
	rt.detached = true
}

// Stats returns (condition evaluations, stops) counters.
func (rt *Runtime) Stats() (evals, stops uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.evalCount, rt.stopCount
}

// Backend exposes the underlying vpi interface (for value get/set
// passthrough in the debugger protocol).
func (rt *Runtime) Backend() vpi.Interface { return rt.backend }

// Table exposes the symbol table.
func (rt *Runtime) Table() *symtab.Table { return rt.table }

// Remap exposes the hierarchy mapping.
func (rt *Runtime) Remap() *symtab.Remap { return rt.remap }
