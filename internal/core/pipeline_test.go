package core

import (
	"fmt"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

// TestCompiledMatchesTreeWalk drives the full runtime and, cycle by
// cycle, cross-checks the compiled pipeline (batched prefetch + program
// execution) against the tree-walk reference evaluator for every armed
// breakpoint.
func TestCompiledMatchesTreeWalk(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count % 7 == 3 && count[2:0] != 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.defLine, "nxt > 40"); err != nil {
		t.Fatal(err)
	}
	d.sim.Poke("Counter.en", 1)
	agreed := 0
	for cycle := 0; cycle < 200; cycle++ {
		rt.ensurePrefetch(d.sim.Time())
		rt.mu.Lock()
		armed := make([]*insertedBP, 0, len(rt.inserted))
		for _, ibp := range rt.inserted {
			armed = append(armed, ibp)
		}
		rt.mu.Unlock()
		for _, ibp := range armed {
			compiled := rt.evalBP(ibp)
			tree := rt.evalBPTree(ibp)
			if compiled != tree {
				t.Fatalf("cycle %d bp %d: compiled=%v tree=%v", cycle, ibp.bp.ID, compiled, tree)
			}
			agreed++
		}
		d.sim.Step()
	}
	if agreed == 0 {
		t.Fatal("no evaluations compared")
	}
}

// TestCompiledBreakpointStops checks end-to-end stop behavior through
// the batched scheduler: a conditional breakpoint fires exactly when
// its condition holds.
func TestCompiledBreakpointStops(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 5"); err != nil {
		t.Fatal(err)
	}
	var hits []uint64
	rt.SetHandler(func(ev *StopEvent) Command {
		for _, th := range ev.Threads {
			for _, v := range th.Locals {
				if v.Name == "count" {
					hits = append(hits, v.Value)
				}
			}
		}
		return CmdContinue
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(20)
	if len(hits) != 1 || hits[0] != 5 {
		t.Fatalf("hits = %v, want [5]", hits)
	}
}

// buildManyInstances makes a design with n leaf instances all hitting
// the same conditional source line, plus the armed runtime.
func buildManyInstances(t *testing.T, n int) (*sim.Simulator, *Runtime) {
	t.Helper()
	c := generator.NewCircuit("Top")
	child := c.NewModule("Leaf")
	din := child.Input("d", ir.UIntType(8))
	q := child.Output("q", ir.UIntType(8))
	acc := child.RegInit("acc", ir.UIntType(8), child.Lit(0, 8))
	child.When(din.Bit(0), func() {
		acc.Set(acc.AddMod(din))
	})
	q.Set(acc)
	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	sum := top.Wire("s", ir.UIntType(8))
	sum.Set(top.Lit(0, 8))
	for i := 0; i < n; i++ {
		u := top.Instance(fmt.Sprintf("u%02d", i), child)
		u.IO("d").Set(x)
		sum.Set(sum.AddMod(u.IO("q")))
	}
	y.Set(sum)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl)
	rt, err := New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatal(err)
	}
	var file string
	var line int
	for _, f := range table.Files() {
		for _, l := range table.Lines(f) {
			for _, bp := range table.BreakpointsAt(f, l) {
				if bp.Enable != "" {
					file, line = f, l
				}
			}
		}
	}
	if _, err := rt.AddBreakpoint(file, line, ""); err != nil {
		t.Fatal(err)
	}
	return s, rt
}

// TestWorkerPoolGroupEvaluation arms one breakpoint across many
// instances and checks every member evaluates (on the persistent pool)
// and stops as one multi-threaded event.
func TestWorkerPoolGroupEvaluation(t *testing.T) {
	const n = 16
	s, rt := buildManyInstances(t, n)
	threads := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		threads += len(ev.Threads)
		return CmdContinue
	})
	s.Poke("Top.x", 3) // odd: every instance's enable holds each cycle
	s.Run(4)
	if threads != 4*n {
		t.Fatalf("threads = %d, want %d", threads, 4*n)
	}
	evals, stops := rt.Stats()
	if evals == 0 || stops != 4 {
		t.Fatalf("stats = (%d evals, %d stops), want (>0, 4)", evals, stops)
	}
}

// TestDetachFromHandlerMidEdge: a handler that calls Detach directly
// (instead of returning CmdDetach) and then continues must not crash
// the scheduler — the closed worker pool degrades to inline
// evaluation for the remainder of the edge.
func TestDetachFromHandlerMidEdge(t *testing.T) {
	s, rt := buildManyInstances(t, 8)
	stops := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops++
		rt.Detach()
		return CmdContinue
	})
	s.Poke("Top.x", 3)
	s.Run(3)
	if stops != 1 {
		t.Fatalf("stops = %d, want 1 (detached after first)", stops)
	}
}

// TestPrefetchInvalidatedAfterHandler: a value deposited while stopped
// must be visible to conditions evaluated later in the same edge.
func TestPrefetchInvalidatedAfterHandler(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	// defLine schedules before incLine within a cycle; poking count while
	// stopped at defLine must affect incLine's condition the same cycle.
	if _, err := rt.AddBreakpoint("core_test.go", d.defLine, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 77"); err != nil {
		t.Fatal(err)
	}
	sawInc := false
	rt.SetHandler(func(ev *StopEvent) Command {
		switch ev.Line {
		case d.defLine:
			if err := rt.Backend().SetValue("Counter.count", 77); err != nil {
				t.Fatalf("set value: %v", err)
			}
		case d.incLine:
			sawInc = true
		}
		return CmdContinue
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(1)
	if !sawInc {
		t.Fatal("condition did not observe the deposited value: stale prefetch")
	}
}

// TestShortCircuitUnresolvableName pins the eager-gather divergence
// fix: a condition whose short-circuited side names an unresolvable
// signal must still hit when the deciding side holds, exactly like the
// tree-walk reference.
func TestShortCircuitUnresolvableName(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count >= 0 || no_such_signal"); err != nil {
		t.Fatal(err)
	}
	stops := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops++
		return CmdContinue
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(3)
	if stops != 3 {
		t.Fatalf("stops = %d, want 3 (short-circuit past the bad name)", stops)
	}
}

// TestUnverifiedDepStaysOutOfBatchUnion pins the union-poisoning fix:
// one condition with an unresolvable name must not force the whole
// prefetch into per-path fallback — the bad name stays out of the
// union, and healthy breakpoints keep hitting.
func TestUnverifiedDepStaysOutOfBatchUnion(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "bogus_xyz > 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.defLine, "count == 2"); err != nil {
		t.Fatal(err)
	}
	stops := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops++
		return CmdContinue
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if stops != 1 {
		t.Fatalf("stops = %d, want 1 (healthy breakpoint unaffected)", stops)
	}
	for _, p := range rt.depUnion {
		if p == "bogus_xyz" {
			t.Fatalf("unverified path %q leaked into the batch union %v", p, rt.depUnion)
		}
	}
	if len(rt.depUnion) == 0 {
		t.Fatal("union empty: batching disabled entirely")
	}
}

// TestWatchAndBreakpointResolveIdentically pins the satellite fix: a
// watch and a breakpoint condition naming the same instance variable
// must resolve to the same simulator path.
func TestWatchAndBreakpointResolveIdentically(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "count"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 1"); err != nil {
		t.Fatal(err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var bpPath string
	for _, ibp := range rt.inserted {
		if len(ibp.condPaths) == 1 {
			bpPath = ibp.condPaths[0]
		}
	}
	w := rt.watches[0]
	if len(w.paths) != 1 || bpPath == "" || w.paths[0] != bpPath {
		t.Fatalf("watch path %v != breakpoint path %q", w.paths, bpPath)
	}
}
