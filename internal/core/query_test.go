package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vpi"
)

// TestQueryWhileRunning drives the simulation from one goroutine and
// issues queries from another: each query must execute at a clock edge
// on the simulation goroutine, observing settled state, with no direct
// backend access from the querying goroutine. Run under -race this is
// the core guarantee the multi-session server builds on.
func TestQueryWhileRunning(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	// No breakpoints armed: queries must still be served off the
	// fast-path edge callback.
	var running atomic.Bool
	running.Store(true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.sim.Poke("Counter.en", 1)
		for running.Load() {
			d.sim.Run(1)
		}
	}()
	defer func() { running.Store(false); <-done }()

	start := time.Now()
	for i := 0; i < 10; i++ {
		var count, tm uint64
		err := rt.RunQuery(5*time.Second, func() {
			v, err := rt.Backend().GetValue("Counter.count")
			if err != nil {
				t.Errorf("get mid-run: %v", err)
				return
			}
			count, tm = v.Bits, rt.Backend().Time()
		})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		// count tracks time while en is held high (modulo the 8-bit
		// wraparound and the reset cycle offset): the query saw a
		// consistent (time, value) pair from a settled edge.
		if uint64(uint8(tm)) != count && uint64(uint8(tm+1)) != count {
			t.Fatalf("query %d: count=%d at time=%d (torn read?)", i, count, tm)
		}
	}
	// The sim never pauses, so every query must have been served off a
	// clock edge — an idle fallback would have eaten the grace period.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("10 mid-run queries took %s — served by fallback, not edges", elapsed)
	}
	running.Store(false)
	<-done
}

// TestQueryIdleFallback: with no simulation activity at all, the
// query must still complete — inline on the caller after the idle
// grace period.
func TestQueryIdleFallback(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	start := time.Now()
	if err := rt.RunQuery(50*time.Millisecond, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("query did not run")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("idle fallback took far longer than the grace period")
	}
	// An edge after the fallback must not re-run the claimed job.
	d.sim.Run(1)
}

// TestQueryAfterDetach: once the runtime detaches, the query surface
// is closed — the free-running design cannot be read safely.
func TestQueryAfterDetach(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	rt.Detach()
	if err := rt.RunQuery(10*time.Millisecond, func() {}); err != ErrDetached {
		t.Fatalf("query after detach: err = %v, want ErrDetached", err)
	}
}

// TestQueryDrainedDuringStop: while the simulation is parked inside a
// stop handler, a handler that services rt.Queries() keeps the query
// surface alive — the pattern the debug server's session loop uses.
func TestQueryDrainedDuringStop(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, ""); err != nil {
		t.Fatal(err)
	}
	resume := make(chan Command)
	stopped := make(chan *StopEvent, 1)
	rt.SetHandler(func(ev *StopEvent) Command {
		stopped <- ev
		for {
			select {
			case cmd := <-resume:
				return cmd
			case job := <-rt.Queries():
				job.Run()
			}
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.sim.Poke("Counter.en", 1)
		d.sim.Run(2)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("no stop")
	}
	// The sim goroutine is parked in the handler; the query must be
	// served promptly by the handler's drain loop, not the idle
	// fallback (the generous grace period would make that visible).
	start := time.Now()
	var v uint64
	if err := rt.RunQuery(30*time.Second, func() {
		val, err := rt.Backend().GetValue("Counter.count")
		if err != nil {
			t.Errorf("get during stop: %v", err)
		}
		v = val.Bits
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("query served after %s — idle fallback instead of stop-loop drain", elapsed)
	}
	if v != 0 {
		t.Fatalf("count at first stop = %d", v)
	}
	resume <- CmdDetach
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation stuck")
	}
}

// TestQueryQueueDoesNotJamWhenIdle regression-tests the inline
// fallback's drain duty: jobs claimed inline must not rot in the
// queue until it permanently fills. More queries than the queue holds
// must all succeed against a forever-idle simulation.
func TestQueryQueueDoesNotJamWhenIdle(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queryQueueDepth+16; i++ {
		if err := rt.RunQuery(time.Millisecond, func() {}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// TestConcurrentIdleQueriesSerialized: several goroutines hitting the
// idle fallback at once must never execute their closures
// concurrently — the shared plain counter would trip -race otherwise.
func TestConcurrentIdleQueriesSerialized(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	total := 0 // deliberately unsynchronized: serialization is the invariant
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := rt.RunQuery(time.Millisecond, func() { total++ }); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if total != workers*perWorker {
		t.Fatalf("total = %d, want %d (lost updates => unserialized execution)", total, workers*perWorker)
	}
}

// TestIdleGraceMemoized: only the first query after quiescence pays
// the idle-grace latency; subsequent queries against a still-idle
// simulation run immediately, and an edge restores the full grace.
func TestIdleGraceMemoized(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	const grace = 200 * time.Millisecond
	if err := rt.RunQuery(grace, func() {}); err != nil { // pays the grace
		t.Fatal(err)
	}
	start := time.Now()
	if err := rt.RunQuery(grace, func() {}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > grace/2 {
		t.Fatalf("second idle query took %s — memoization did not skip the grace", elapsed)
	}
	// An edge invalidates the memo: the next query must go back to
	// waiting for a drain point (and be served by it).
	d.sim.Run(1)
	if err := rt.RunQuery(grace, func() {}); err != nil {
		t.Fatal(err)
	}
}
