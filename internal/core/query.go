package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the runtime's safe query surface for debugger sessions.
// The simulator has no internal locking: touching the backend from a
// connection goroutine while the simulation goroutine is mid-cycle is
// a data race. Instead, queries are enqueued as jobs and executed
// where state is guaranteed stable:
//
//   - while the simulation runs, the clock-edge callback drains the
//     queue at every edge, with combinational state settled — this is
//     what lets an observer session read values mid-run;
//   - while the simulation is parked at a stop, the server's stop loop
//     drains the same queue on the (blocked) simulation goroutine;
//   - while the simulation is idle (never started, or finished), no
//     drainer exists: RunQuery falls back to running the job inline on
//     the caller after an idle grace period, which is safe exactly
//     because nothing else is touching the state.
//
// The grace period only has to outlast one simulation cycle (or stop
// handler dispatch), not bound it: if a drainer claims the job first,
// the inline fallback waits for it instead of double-running.

// ErrDetached is returned for queries issued after the runtime
// detached from the simulation: with the clock callback removed there
// is no drain point, and the free-running design cannot be read safely.
var ErrDetached = errors.New("core: runtime detached, query surface closed")

// queryQueueDepth bounds how many queries may be in flight; beyond it
// RunQuery fails fast rather than queueing unboundedly.
const queryQueueDepth = 256

const (
	jobPending int32 = iota
	jobClaimed
)

// QueryJob is one pending query. The goroutine that claims it runs the
// closure; everyone else waits on Done.
type QueryJob struct {
	rt    *Runtime
	fn    func()
	state atomic.Int32
	done  chan struct{}
}

// Run claims and executes the job; if another goroutine already
// claimed it, Run is a no-op. Execution is serialized across ALL
// drainers (clock edge, stop loop, inline fallback) by the runtime's
// query-execution lock, so two jobs can never touch backend state
// concurrently even when drained from different goroutines.
func (j *QueryJob) Run() {
	if !j.state.CompareAndSwap(jobPending, jobClaimed) {
		return
	}
	defer close(j.done)
	j.rt.execMu.Lock()
	defer j.rt.execMu.Unlock()
	j.fn()
}

// Done is closed once the job has executed.
func (j *QueryJob) Done() <-chan struct{} { return j.done }

// Queries exposes the pending-query channel so a stop handler that
// parks the simulation goroutine (the debug server's session loop) can
// keep serving reads while blocked:
//
//	select {
//	case cmd := <-resume:
//	    return cmd
//	case job := <-rt.Queries():
//	    job.Run()
//	}
func (rt *Runtime) Queries() <-chan *QueryJob { return rt.queries }

// RunQuery executes fn with simulation state guaranteed stable and
// returns once it has run. idleGrace is how long to wait for a drain
// point (clock edge or parked stop loop) before concluding the
// simulation is idle and running fn inline; it must comfortably exceed
// the duration of one simulation cycle.
func (rt *Runtime) RunQuery(idleGrace time.Duration, fn func()) error {
	rt.mu.Lock()
	detached := rt.detached
	rt.mu.Unlock()
	if detached {
		return ErrDetached
	}
	job := &QueryJob{rt: rt, fn: fn, done: make(chan struct{})}
	select {
	case rt.queries <- job:
	default:
		return fmt.Errorf("core: query queue full (%d pending)", queryQueueDepth)
	}
	// Sampled strictly after the enqueue: any bump observed later
	// belongs to an edge whose drain also runs after our enqueue, so
	// that drain is guaranteed to pop our job.
	edgesAtEnqueue := rt.edgeSeen.Load()
	// Memoized idleness: once a query has fallen back inline with the
	// edge counter at this value, later queries skip the grace wait
	// until an edge proves the simulation alive again — so only the
	// first query after quiescence pays the full grace latency.
	if rt.idleSince.Load() == edgesAtEnqueue+1 {
		idleGrace = 0
	}
	select {
	case <-job.done:
		return nil
	case <-time.After(idleGrace):
	}
	// No drainer served us within the grace period. Distinguish "the
	// simulation is idle" from "the simulation came alive just as the
	// grace expired": a clock edge since we enqueued means a live
	// drainer exists (edges bump edgeSeen before draining, and every
	// drain empties the queue), so our job is served — wait for it
	// instead of touching state under a running simulator.
	//
	// Residual window, accepted and documented: a simulation that has
	// produced no edge since the enqueue — because it is about to
	// start, or because the testbench paces cycles slower than the
	// grace period — is indistinguishable from an idle one, and the
	// next Step may begin while the fallback read below is in flight.
	// The exposure is the duration of the inline read itself
	// (microseconds) coinciding with a Step entry, per query; pacing
	// the grace above the testbench's inter-cycle gap removes it.
	// Closing it fully would require the backend to expose its own
	// locking, which in turn deadlocks fallback reads against
	// handlers that park the simulation without draining queries.
	if rt.edgeSeen.Load() != edgesAtEnqueue {
		<-job.done
		return nil
	}
	// Re-check detach before touching state inline — a detached design
	// may still be advancing.
	rt.mu.Lock()
	detached = rt.detached
	rt.mu.Unlock()
	if detached {
		select {
		case <-job.done: // a drainer won the race after all
			return nil
		default:
			return ErrDetached
		}
	}
	// Act as the drainer ourselves: pop and run queued jobs (ours is
	// among them unless a real drainer claimed it first). Popping
	// everything — not just our own job — keeps already-claimed jobs
	// from rotting in the channel until it jams; with an idle
	// simulation this loop is the only thing that empties it. Job
	// execution itself is serialized by execMu (see QueryJob.Run).
drain:
	for {
		select {
		case <-job.done:
			break drain // a real drainer took over; stop inlining
		default:
		}
		select {
		case j := <-rt.queries:
			j.Run()
		default:
			break drain
		}
	}
	// Ours either ran above or was claimed by a concurrent drainer.
	<-job.done
	rt.idleSince.Store(edgesAtEnqueue + 1)
	return nil
}

// drainQueries runs every pending query; called on the simulation
// goroutine at each clock edge with settled state.
func (rt *Runtime) drainQueries() {
	for {
		select {
		case job := <-rt.queries:
			job.Run()
		default:
			return
		}
	}
}
