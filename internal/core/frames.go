package core

import (
	"fmt"
	"sort"

	"repro/internal/eval"
	"repro/internal/expr"
	"repro/internal/val"
	"repro/internal/vpi"
)

// pathResolver resolves through the breakpoint's precomputed path map.
func (ibp *insertedBP) pathResolver(rt *Runtime) expr.Resolver {
	return expr.ResolverFunc(func(name string) (eval.Value, error) {
		if full, ok := ibp.paths[name]; ok {
			return rt.backend.GetValue(full)
		}
		return rt.backend.GetValue(rt.remap.ToSim(ibp.bp.InstanceName + "." + name))
	})
}

// pathBitsResolver is pathResolver's four-state counterpart, used by
// the general evaluator fallback when a condition touches x/z bits or
// a wide signal.
func (ibp *insertedBP) pathBitsResolver(rt *Runtime) expr.BitsResolver {
	return expr.BitsResolverFunc(func(name string) (val.Bits, error) {
		if full, ok := ibp.paths[name]; ok {
			return vpi.ReadBits(rt.backend, full)
		}
		return vpi.ReadBits(rt.backend, rt.remap.ToSim(ibp.bp.InstanceName+"."+name))
	})
}

// buildEvent reconstructs the stack-frame information for every hit
// instance (§3.2 step 3: "we reconstruct the stack frame based on the
// symbol table and then send the result to the user").
func (rt *Runtime) buildEvent(g *group, hits []*insertedBP, time uint64, reverse, stepping bool) *StopEvent {
	ev := &StopEvent{
		Time:     time,
		File:     g.file,
		Line:     g.line,
		Col:      g.col,
		Reverse:  reverse,
		StepStop: stepping,
	}
	for _, ibp := range hits {
		th := Thread{
			BreakpointID: ibp.bp.ID,
			Instance:     ibp.bp.InstanceName,
		}
		for _, b := range rt.table.ScopeVars(ibp.bp.ID) {
			full := rt.remap.ToSim(ibp.bp.InstanceName + "." + b.RTL)
			th.Locals = append(th.Locals, rt.frameVar(b.Name, full))
		}
		if instID, ok := rt.table.InstanceIDByName(ibp.bp.InstanceName); ok {
			for _, b := range rt.table.GeneratorVars(instID) {
				full := rt.remap.ToSim(ibp.bp.InstanceName + "." + b.RTL)
				th.Generator = append(th.Generator, rt.frameVar(b.Name, full))
			}
		}
		sortVars(th.Locals)
		sortVars(th.Generator)
		ev.Threads = append(ev.Threads, th)
	}
	sort.Slice(ev.Threads, func(i, j int) bool { return ev.Threads[i].Instance < ev.Threads[j].Instance })
	return ev
}

func sortVars(vars []Variable) {
	sort.Slice(vars, func(i, j int) bool { return naturalLess(vars[i].Name, vars[j].Name) })
}

// naturalLess orders variable names with digit runs compared
// numerically, so flattened vector elements sort as v[2] < v[10]
// instead of the lexicographic v[10] < v[2] (bracketed indices come
// from aggregate lowering, see passes.flattenType). Non-digit bytes
// compare as usual; equal numeric values with different spellings
// ("07" vs "7") fall back to the raw text so the order stays total.
func naturalLess(a, b string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if isDigit(a[i]) && isDigit(b[j]) {
			ia, jb := i, j
			for ia < len(a) && isDigit(a[ia]) {
				ia++
			}
			for jb < len(b) && isDigit(b[jb]) {
				jb++
			}
			da, db := trimZeros(a[i:ia]), trimZeros(b[j:jb])
			if len(da) != len(db) {
				return len(da) < len(db)
			}
			if da != db {
				return da < db
			}
			i, j = ia, jb
			continue
		}
		if a[i] != b[j] {
			return a[i] < b[j]
		}
		i++
		j++
	}
	if len(a)-i != len(b)-j {
		return len(a)-i < len(b)-j
	}
	return a < b
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func trimZeros(s string) string {
	for len(s) > 1 && s[0] == '0' {
		s = s[1:]
	}
	return s
}

// frameVar reads one frame variable. A failed backend read (a
// transient replay gap, an optimized-away net) does NOT drop the
// variable — that would make frame shapes flutter nondeterministically
// between stops — it emits the variable with the Unknown marker so
// clients can render a placeholder.
func (rt *Runtime) frameVar(name, full string) Variable {
	b, err := vpi.ReadBits(rt.backend, full)
	if err != nil {
		return Variable{Name: name, RTL: full, Unknown: true}
	}
	v := Variable{Name: name, RTL: full}
	v.SetBits(b)
	return v
}

// Evaluate computes a watch expression in the context of an instance
// (source-level names resolve through generator variables).
func (rt *Runtime) Evaluate(instance, src string) (eval.Value, error) {
	n, err := expr.Parse(src)
	if err != nil {
		return eval.Value{}, err
	}
	return n.Eval(expr.ResolverFunc(func(name string) (eval.Value, error) {
		if rtlPath, err := rt.table.ResolveInstanceVar(instance, name); err == nil {
			return rt.backend.GetValue(rt.remap.ToSim(rtlPath))
		}
		if v, err := rt.backend.GetValue(rt.remap.ToSim(instance + "." + name)); err == nil {
			return v, nil
		}
		if v, err := rt.backend.GetValue(name); err == nil {
			return v, nil
		}
		return eval.Value{}, fmt.Errorf("core: cannot resolve %q in %s", name, instance)
	}))
}

// EvaluateBits computes a watch expression with full four-state,
// arbitrary-width semantics — the path the protocol's evaluate request
// uses, so x/z and >64-bit signals render instead of erroring. Name
// resolution follows the same chain as Evaluate.
func (rt *Runtime) EvaluateBits(instance, src string) (val.Bits, error) {
	n, err := expr.Parse(src)
	if err != nil {
		return val.Bits{}, err
	}
	return expr.EvalBits(n, expr.BitsResolverFunc(func(name string) (val.Bits, error) {
		if rtlPath, err := rt.table.ResolveInstanceVar(instance, name); err == nil {
			return vpi.ReadBits(rt.backend, rt.remap.ToSim(rtlPath))
		}
		if b, err := vpi.ReadBits(rt.backend, rt.remap.ToSim(instance+"."+name)); err == nil {
			return b, nil
		}
		if b, err := vpi.ReadBits(rt.backend, name); err == nil {
			return b, nil
		}
		return val.Bits{}, fmt.Errorf("core: cannot resolve %q in %s", name, instance)
	}))
}

// StructuredVars groups flat dotted variables into a tree for display —
// the paper's "reconstruct structured variables from a list of
// flattened RTL signals" (§4.2, dcmp.io as a PortBundle).
type StructuredVar struct {
	Name     string          `json:"name"`
	Leaf     *Variable       `json:"leaf,omitempty"`
	Children []StructuredVar `json:"children,omitempty"`
}

// Structure converts flat variables into a nested tree by splitting
// dotted names.
func Structure(vars []Variable) []StructuredVar {
	type nodeT struct {
		children map[string]*nodeT
		order    []string
		leaf     *Variable
	}
	root := &nodeT{children: map[string]*nodeT{}}
	for i := range vars {
		v := &vars[i]
		parts := splitDots(v.Name)
		cur := root
		for _, p := range parts {
			child, ok := cur.children[p]
			if !ok {
				child = &nodeT{children: map[string]*nodeT{}}
				cur.children[p] = child
				cur.order = append(cur.order, p)
			}
			cur = child
		}
		cur.leaf = v
	}
	sortNames := func(names []string) {
		sort.Slice(names, func(i, j int) bool { return naturalLess(names[i], names[j]) })
	}
	var build func(n *nodeT, name string) StructuredVar
	build = func(n *nodeT, name string) StructuredVar {
		sv := StructuredVar{Name: name, Leaf: n.leaf}
		sortNames(n.order)
		for _, childName := range n.order {
			sv.Children = append(sv.Children, build(n.children[childName], childName))
		}
		return sv
	}
	var out []StructuredVar
	sortNames(root.order)
	for _, name := range root.order {
		out = append(out, build(root.children[name], name))
	}
	return out
}

// splitDots splits a dotted path, keeping bracketed indices attached to
// their segment ("v[3].x" → ["v[3]", "x"]).
func splitDots(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
