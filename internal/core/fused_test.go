package core

import (
	"bytes"
	"testing"

	"repro/internal/replay"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// These tests pin the fused whole-schedule path (fused.go) to the
// per-group and exhaustive evaluators bit for bit, across the cases
// where the fused cache could go stale: handler-poked values, mid-run
// breakpoint changes, and reverse scheduling.

// TestFusedSchedulingMatchesPerGroupAndExhaustive is the three-way
// differential on the bursty counter scenario: fused (the default),
// per-group delta (SetFusedEval(false)), and exhaustive evaluation must
// produce identical stop sequences — and the fused run must actually
// have executed the fused program and skipped idle work.
func TestFusedSchedulingMatchesPerGroupAndExhaustive(t *testing.T) {
	exhaustive, _ := runCounterWith(t, func(rt *Runtime) { rt.SetExhaustiveEval(true) })
	perGroup, _ := runCounterWith(t, func(rt *Runtime) { rt.SetFusedEval(false) })
	fused, rt := runCounterWith(t, func(*Runtime) {})
	if len(exhaustive) == 0 {
		t.Fatal("scenario produced no stops; test is vacuous")
	}
	if len(perGroup) != len(exhaustive) || len(fused) != len(exhaustive) {
		t.Fatalf("stop counts differ: fused=%d per-group=%d exhaustive=%d",
			len(fused), len(perGroup), len(exhaustive))
	}
	for i := range exhaustive {
		if fused[i] != exhaustive[i] {
			t.Fatalf("stop %d differs:\nfused:      %+v\nexhaustive: %+v", i, fused[i], exhaustive[i])
		}
		if perGroup[i] != exhaustive[i] {
			t.Fatalf("stop %d differs:\nper-group:  %+v\nexhaustive: %+v", i, perGroup[i], exhaustive[i])
		}
	}
	if rt.FusedRuns() == 0 {
		t.Fatal("fused whole-schedule program never executed")
	}
	if _, ok := rt.FuseInfo(); !ok {
		t.Fatal("no fused schedule was built")
	}
	if skipped, _, _ := rt.ActivityStats(); skipped == 0 {
		t.Fatal("fused run skipped nothing on the idle stretches")
	}
}

// TestFusedHandlerPokeDirtyPropagation: a value the paused user
// deposits from the stop handler must un-park the fused conditions
// depending on it — with en frozen low the breakpoint parks as a
// provable miss, and it can only ever stop if the handler's poke of en
// propagates through the fused skip state.
func TestFusedHandlerPokeDirtyPropagation(t *testing.T) {
	run := func(configure func(*Runtime)) []stopSig {
		d := buildCounterDesign(t, false)
		rt, err := New(vpi.NewSimBackend(d.sim), d.table)
		if err != nil {
			t.Fatal(err)
		}
		configure(rt)
		// en stays low: count is frozen at 0 and the condition parks as
		// a provable miss after the first edge.
		if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 3"); err != nil {
			t.Fatal(err)
		}
		var stops []stopSig
		poked := false
		rt.SetHandler(func(ev *StopEvent) Command {
			stops = append(stops, signature(ev))
			if ev.StepStop && !poked {
				poked = true
				d.sim.Poke("Counter.en", 1)
			}
			return CmdContinue
		})
		d.sim.Reset("Counter.reset", 1)
		d.sim.Run(10) // idle: the armed condition parks
		rt.InterruptNext()
		d.sim.Run(8)
		return stops
	}
	exhaustive := run(func(rt *Runtime) { rt.SetExhaustiveEval(true) })
	fused := run(func(*Runtime) {})
	if len(fused) != len(exhaustive) {
		t.Fatalf("stop counts differ: fused=%d exhaustive=%d", len(fused), len(exhaustive))
	}
	hit := false
	for i := range exhaustive {
		if fused[i] != exhaustive[i] {
			t.Fatalf("stop %d differs:\nfused:      %+v\nexhaustive: %+v", i, fused[i], exhaustive[i])
		}
		if !fused[i].stepStop {
			hit = true
		}
	}
	if !hit {
		t.Fatal("poked condition never hit: handler dirt did not propagate")
	}
}

// TestFusedMidRunRearm: changing the breakpoint set from inside a stop
// handler rebuilds the fused schedule mid-run; the re-armed set must
// stop identically to exhaustive evaluation (and the removed
// breakpoint must stay silent).
func TestFusedMidRunRearm(t *testing.T) {
	run := func(configure func(*Runtime)) []stopSig {
		d := buildCounterDesign(t, false)
		rt, err := New(vpi.NewSimBackend(d.sim), d.table)
		if err != nil {
			t.Fatal(err)
		}
		configure(rt)
		if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 2"); err != nil {
			t.Fatal(err)
		}
		var stops []stopSig
		rearmed := false
		rt.SetHandler(func(ev *StopEvent) Command {
			stops = append(stops, signature(ev))
			if !rearmed {
				rearmed = true
				if _, err := rt.AddBreakpoint("core_test.go", d.defLine, "count == 4"); err != nil {
					t.Error(err)
				}
				rt.RemoveBreakpoint("core_test.go", d.incLine)
			}
			return CmdContinue
		})
		d.sim.Reset("Counter.reset", 1)
		d.sim.Poke("Counter.en", 1)
		d.sim.Run(12)
		return stops
	}
	exhaustive := run(func(rt *Runtime) { rt.SetExhaustiveEval(true) })
	fused := run(func(*Runtime) {})
	if len(exhaustive) < 2 {
		t.Fatalf("re-armed breakpoint never stopped: %+v", exhaustive)
	}
	if len(fused) != len(exhaustive) {
		t.Fatalf("stop counts differ: fused=%d exhaustive=%d", len(fused), len(exhaustive))
	}
	for i := range exhaustive {
		if fused[i] != exhaustive[i] {
			t.Fatalf("stop %d differs:\nfused:      %+v\nexhaustive: %+v", i, fused[i], exhaustive[i])
		}
	}
}

// TestFusedReverseMatchesExhaustive: reverse scheduling falls back to
// the per-group path; with fusion enabled the whole reverse walk (which
// interleaves SetTime rewinds with forward fused state) must still be
// bit-identical to exhaustive evaluation.
func TestFusedReverseMatchesExhaustive(t *testing.T) {
	run := func(configure func(*Runtime)) []stopSig {
		d, data := recordCounterTrace(t)
		st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{BlockSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		eng := replay.NewStore(st, replay.WithCheckpointInterval(2))
		rt, err := New(eng, d.table)
		if err != nil {
			t.Fatal(err)
		}
		configure(rt)
		if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 6"); err != nil {
			t.Fatal(err)
		}
		var stops []stopSig
		rt.SetHandler(func(ev *StopEvent) Command {
			stops = append(stops, signature(ev))
			if ev.Time <= 2 {
				return CmdDetach
			}
			return CmdReverseStep
		})
		for eng.StepForward() && len(stops) == 0 {
		}
		return stops
	}
	exhaustive := run(func(rt *Runtime) { rt.SetExhaustiveEval(true) })
	fused := run(func(*Runtime) {})
	if len(exhaustive) < 2 {
		t.Fatalf("reverse walk too short: %+v", exhaustive)
	}
	if len(fused) != len(exhaustive) {
		t.Fatalf("stop counts differ: fused=%d exhaustive=%d", len(fused), len(exhaustive))
	}
	for i := range exhaustive {
		if fused[i] != exhaustive[i] {
			t.Fatalf("stop %d differs:\nfused:      %+v\nexhaustive: %+v", i, fused[i], exhaustive[i])
		}
	}
}
