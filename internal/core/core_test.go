package core

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/replay"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

func hereLine() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:1])
	f, _ := frames.Next()
	return f.Line
}

// testDesign bundles a compiled design with the lines of interest.
type testDesign struct {
	sim     *sim.Simulator
	table   *symtab.Table
	incLine int // counter increment line
	defLine int // default assignment line
}

// buildCounterDesign: a counter with a default wire assignment and a
// conditional increment — two schedulable statements.
func buildCounterDesign(t *testing.T, debug bool) *testDesign {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	nxt := m.Wire("nxt", ir.UIntType(8))
	var defLine, incLine int
	nxt.Set(count)
	defLine = hereLine() - 1
	m.When(en, func() {
		nxt.Set(count.AddMod(m.Lit(1, 8)))
		incLine = hereLine() - 1
	})
	count.Set(nxt)
	out.Set(count)

	comp, err := passes.Compile(c.MustBuild(), debug)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		t.Fatalf("symtab: %v", err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return &testDesign{sim: sim.New(nl), table: table, incLine: incLine, defLine: defLine}
}

func TestBreakpointHitWithFrames(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	ids, err := rt.AddBreakpoint("core_test.go", d.incLine, "")
	if err != nil {
		t.Fatalf("add breakpoint: %v", err)
	}
	if len(ids) != 1 {
		t.Fatalf("armed %d bps", len(ids))
	}
	var events []*StopEvent
	rt.SetHandler(func(ev *StopEvent) Command {
		events = append(events, ev)
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	// Two cycles disabled: the enable condition (en) is false, so no
	// stop despite the breakpoint being armed.
	d.sim.Run(2)
	if len(events) != 0 {
		t.Fatalf("stops while disabled: %d", len(events))
	}
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(3)
	if len(events) != 3 {
		t.Fatalf("stops = %d, want 3", len(events))
	}
	ev := events[0]
	if ev.File != "core_test.go" || ev.Line != d.incLine {
		t.Fatalf("stop at %s:%d, want core_test.go:%d", ev.File, ev.Line, d.incLine)
	}
	if len(ev.Threads) != 1 {
		t.Fatalf("threads = %d", len(ev.Threads))
	}
	locals := map[string]uint64{}
	for _, v := range ev.Threads[0].Locals {
		locals[v.Name] = v.Value
	}
	// gdb stop-before semantics: en was low through reset and the two
	// disabled cycles, so the first enabled edge still sees count=0.
	if got, ok := locals["count"]; !ok || got != 0 {
		t.Fatalf("locals[count] = %d (ok=%v), locals=%v", got, ok, locals)
	}
	// Subsequent stops observe the incremented values.
	for i, want := range []uint64{0, 1, 2} {
		for _, v := range events[i].Threads[0].Locals {
			if v.Name == "count" && v.Value != want {
				t.Fatalf("stop %d: count = %d, want %d", i, v.Value, want)
			}
		}
	}
	_ = ids
}

func TestConditionalBreakpoint(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 5"); err != nil {
		t.Fatalf("conditional bp: %v", err)
	}
	var stops []uint64
	rt.SetHandler(func(ev *StopEvent) Command {
		for _, v := range ev.Threads[0].Locals {
			if v.Name == "count" {
				stops = append(stops, v.Value)
			}
		}
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(20)
	if len(stops) != 1 || stops[0] != 5 {
		t.Fatalf("conditional stops = %v, want [5]", stops)
	}
	// Malformed user condition rejected.
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count =="); err == nil {
		t.Fatal("bad condition accepted")
	}
}

func TestFastPathNoBreakpoints(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	rt.SetHandler(func(ev *StopEvent) Command { fired++; return CmdContinue })
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(100)
	if fired != 0 {
		t.Fatalf("stops with no breakpoints: %d", fired)
	}
	evals, stops := rt.Stats()
	if evals != 0 || stops != 0 {
		t.Fatalf("fast path did work: evals=%d stops=%d", evals, stops)
	}
}

func TestStepOver(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddBreakpoint("core_test.go", d.defLine, "")
	var lines []int
	steps := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		lines = append(lines, ev.Line)
		if steps < 2 {
			steps++
			return CmdStep
		}
		return CmdDetach
	})
	d.sim.Poke("Counter.en", 1)
	d.sim.Reset("Counter.reset", 1)
	d.sim.Run(3)
	// First stop at the default assignment, then stepping reaches the
	// increment line (its enable holds since en=1), then the register
	// update statement or next cycle's default.
	if len(lines) < 3 {
		t.Fatalf("stops = %v", lines)
	}
	if lines[0] != d.defLine {
		t.Fatalf("first stop at %d, want %d", lines[0], d.defLine)
	}
	if lines[1] != d.incLine {
		t.Fatalf("step reached %d, want %d", lines[1], d.incLine)
	}
}

func TestIntraCycleReverseStep(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddBreakpoint("core_test.go", d.incLine, "")
	var lines []int
	first := true
	rt.SetHandler(func(ev *StopEvent) Command {
		lines = append(lines, ev.Line)
		if first {
			first = false
			return CmdReverseStep // go back to the previous statement
		}
		return CmdDetach
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(2)
	if len(lines) != 2 {
		t.Fatalf("stops = %v", lines)
	}
	if lines[0] != d.incLine || lines[1] != d.defLine {
		t.Fatalf("reverse step went %d -> %d, want %d -> %d",
			lines[0], lines[1], d.incLine, d.defLine)
	}
}

func TestDetachStopsDebugging(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddBreakpoint("core_test.go", d.incLine, "")
	stops := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops++
		return CmdDetach
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if stops != 1 {
		t.Fatalf("stops after detach = %d", stops)
	}
}

func TestRemoveAndListBreakpoints(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddBreakpoint("core_test.go", d.incLine, "")
	rt.AddBreakpoint("core_test.go", d.defLine, "")
	if got := len(rt.ListBreakpoints()); got != 2 {
		t.Fatalf("listed = %d", got)
	}
	if n := rt.RemoveBreakpoint("core_test.go", d.incLine); n != 1 {
		t.Fatalf("removed = %d", n)
	}
	if got := len(rt.ListBreakpoints()); got != 1 {
		t.Fatalf("listed after remove = %d", got)
	}
	rt.ClearBreakpoints()
	if got := len(rt.ListBreakpoints()); got != 0 {
		t.Fatalf("listed after clear = %d", got)
	}
	if _, err := rt.AddBreakpoint("nope.go", 1, ""); err == nil {
		t.Fatal("bogus location accepted")
	}
}

// buildDualCoreDesign makes a two-instance design whose accumulate
// statement is a shared breakpoint line (one "thread" per core).
func buildDualCoreDesign(t *testing.T) (*sim.Simulator, *symtab.Table, int) {
	t.Helper()
	c := generator.NewCircuit("Top")
	core := c.NewModule("Core")
	dIn := core.Input("d", ir.UIntType(8))
	q := core.Output("q", ir.UIntType(8))
	acc := core.RegInit("acc", ir.UIntType(8), core.Lit(0, 8))
	var accLine int
	core.When(dIn.Bit(0), func() {
		acc.Set(acc.AddMod(dIn))
		accLine = hereLine() - 1
	})
	q.Set(acc)

	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	u0 := top.Instance("u0", core)
	u1 := top.Instance("u1", core)
	u0.IO("d").Set(x)
	u1.IO("d").Set(x) // both get the same input -> both hit together
	y.Set(u0.IO("q").AddMod(u1.IO("q")))

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(nl), table, accLine
}

func TestDualCoreThreads(t *testing.T) {
	s, table, accLine := buildDualCoreDesign(t)
	rt, err := New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatal(err)
	}
	rt.AddBreakpoint("core_test.go", accLine, "")
	var events []*StopEvent
	rt.SetHandler(func(ev *StopEvent) Command {
		events = append(events, ev)
		return CmdContinue
	})
	s.Reset("Top.reset", 1)
	s.Poke("Top.x", 3) // odd -> both cores enabled
	s.Run(1)
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	if len(events[0].Threads) != 2 {
		t.Fatalf("threads = %d, want 2 (Fig. 4 B)", len(events[0].Threads))
	}
	if events[0].Threads[0].Instance != "Top.u0" || events[0].Threads[1].Instance != "Top.u1" {
		t.Fatalf("thread instances = %s, %s",
			events[0].Threads[0].Instance, events[0].Threads[1].Instance)
	}
}

func TestReplayReverseAcrossCycles(t *testing.T) {
	// Record a trace, then reverse-debug it.
	d := buildCounterDesign(t, false)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(d.sim, &buf)
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := vcd.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eng := replay.New(tr)
	rt, err := New(eng, d.table)
	if err != nil {
		t.Fatalf("runtime over replay: %v", err)
	}
	rt.AddBreakpoint("core_test.go", d.incLine, "")
	var stops []struct {
		time  uint64
		count uint64
	}
	rt.SetHandler(func(ev *StopEvent) Command {
		var cnt uint64
		for _, v := range ev.Threads[0].Locals {
			if v.Name == "count" {
				cnt = v.Value
			}
		}
		stops = append(stops, struct{ time, count uint64 }{ev.Time, cnt})
		// Keep reverse-stepping until execution crosses the cycle
		// boundary (intra-cycle steps first, then SetTime rewinds).
		if len(stops) < 8 && ev.Time == stops[0].time {
			return CmdReverseStep
		}
		return CmdDetach
	})
	// Jump into the middle of the trace and fire the schedule there.
	eng.SetTime(5)
	eng.StepForward() // evaluates at t=6
	if len(stops) < 2 {
		t.Fatalf("stops = %+v", stops)
	}
	last := stops[len(stops)-1]
	if last.time >= stops[0].time {
		t.Fatalf("reverse never crossed the cycle boundary: %+v", stops)
	}
	if last.count >= stops[0].count {
		t.Fatalf("reverse did not observe earlier state: %+v", stops)
	}
}

// TestReplayReverseAcrossCyclesCheckpointed is the block-store twin of
// TestReplayReverseAcrossCycles: the same reverse schedule, driven
// through the checkpointed engine. It also checks the Prefetcher wiring
// — arming the breakpoint must materialize the dependency union in the
// store — and that crossing cycle boundaries backwards left restore
// points behind.
func TestReplayReverseAcrossCyclesCheckpointed(t *testing.T) {
	d := buildCounterDesign(t, false)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(d.sim, &buf)
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := vcd.ParseStore(&buf, vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := replay.NewStore(st, replay.WithCheckpointInterval(2))
	rt, err := New(eng, d.table)
	if err != nil {
		t.Fatalf("runtime over checkpointed replay: %v", err)
	}
	rt.AddBreakpoint("core_test.go", d.incLine, "")
	var stops []struct {
		time  uint64
		count uint64
	}
	rt.SetHandler(func(ev *StopEvent) Command {
		var cnt uint64
		for _, v := range ev.Threads[0].Locals {
			if v.Name == "count" {
				cnt = v.Value
			}
		}
		stops = append(stops, struct{ time, count uint64 }{ev.Time, cnt})
		if len(stops) < 8 && ev.Time == stops[0].time {
			return CmdReverseStep
		}
		return CmdDetach
	})
	eng.SetTime(5)
	eng.StepForward() // evaluates at t=6
	if len(stops) < 2 {
		t.Fatalf("stops = %+v", stops)
	}
	last := stops[len(stops)-1]
	if last.time >= stops[0].time {
		t.Fatalf("reverse never crossed the cycle boundary: %+v", stops)
	}
	if last.count >= stops[0].count {
		t.Fatalf("reverse did not observe earlier state: %+v", stops)
	}
	// The enable condition's dependency union was advised via Prefetch
	// at arm time; its signals must be materialized in the store.
	if sig, ok := st.Signal("Counter.en"); !ok || !sig.Materialized() {
		t.Fatalf("dependency signal not materialized via Prefetch (ok=%v)", ok)
	}
	// Frame reconstruction read unmaterialized locals at each stop,
	// which syncs replay state and drops checkpoints on the way.
	if eng.Checkpoints() == 0 {
		t.Fatal("no checkpoints created by reverse schedule")
	}
}

func TestEvaluateWatchExpression(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(7)
	d.sim.Settle()
	v, err := rt.Evaluate("Counter", "count + 1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Bits != 8 {
		t.Fatalf("watch = %d, want 8", v.Bits)
	}
	if _, err := rt.Evaluate("Counter", "ghost + 1"); err == nil {
		t.Fatal("unknown name evaluated")
	}
}

func TestStructureVariables(t *testing.T) {
	vars := []Variable{
		{Name: "io.out.bits", Value: 5},
		{Name: "io.out.valid", Value: 1},
		{Name: "io.in", Value: 2},
		{Name: "count", Value: 9},
	}
	tree := Structure(vars)
	if len(tree) != 2 { // count, io
		t.Fatalf("roots = %d", len(tree))
	}
	if tree[0].Name != "count" || tree[0].Leaf == nil || tree[0].Leaf.Value != 9 {
		t.Fatalf("count node = %+v", tree[0])
	}
	io := tree[1]
	if io.Name != "io" || len(io.Children) != 2 {
		t.Fatalf("io node = %+v", io)
	}
	var outNode *StructuredVar
	for i := range io.Children {
		if io.Children[i].Name == "out" {
			outNode = &io.Children[i]
		}
	}
	if outNode == nil || len(outNode.Children) != 2 {
		t.Fatalf("io.out = %+v", outNode)
	}
}

func TestDebugModeFramesRicher(t *testing.T) {
	// In debug mode every SSA temp survives, so frames carry at least
	// as many variables.
	countLocals := func(debug bool) int {
		d := buildCounterDesign(t, debug)
		rt, err := New(vpi.NewSimBackend(d.sim), d.table)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddBreakpoint("core_test.go", d.incLine, "")
		total := 0
		rt.SetHandler(func(ev *StopEvent) Command {
			total = len(ev.Threads[0].Locals)
			return CmdDetach
		})
		d.sim.Reset("Counter.reset", 1)
		d.sim.Poke("Counter.en", 1)
		d.sim.Run(2)
		return total
	}
	opt := countLocals(false)
	dbg := countLocals(true)
	if dbg < opt {
		t.Fatalf("debug locals (%d) < optimized locals (%d)", dbg, opt)
	}
	if opt == 0 {
		t.Fatal("no locals in optimized frames")
	}
}
