package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/eval"
	"repro/internal/replay"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// stopSig is the full observable identity of one stop, used to pin
// delta scheduling to exhaustive evaluation bit for bit.
type stopSig struct {
	time     uint64
	file     string
	line     int
	reverse  bool
	stepStop bool
	threads  string
	watches  string
}

func signature(ev *StopEvent) stopSig {
	sig := stopSig{
		time: ev.Time, file: ev.File, line: ev.Line,
		reverse: ev.Reverse, stepStop: ev.StepStop,
	}
	for _, th := range ev.Threads {
		sig.threads += fmt.Sprintf("%s#%d;", th.Instance, th.BreakpointID)
		for _, v := range th.Locals {
			sig.threads += fmt.Sprintf("%s=%d/%v,", v.Name, v.Value, v.Unknown)
		}
	}
	for _, wh := range ev.Watch {
		sig.watches += fmt.Sprintf("%d:%s:%d->%d;", wh.ID, wh.Expr, wh.Old, wh.New)
	}
	return sig
}

// runCounterScenario drives one fresh counter simulation with a bursty
// enable pattern (mostly idle, short active bursts) under the given
// scheduling mode and returns every stop signature.
func runCounterScenario(t *testing.T, exhaustive bool) ([]stopSig, *Runtime) {
	t.Helper()
	return runCounterWith(t, func(rt *Runtime) { rt.SetExhaustiveEval(exhaustive) })
}

// runCounterWith is the configurable form: the callback picks the
// scheduling mode (exhaustive / per-group / fused) before arming.
func runCounterWith(t *testing.T, configure func(*Runtime)) ([]stopSig, *Runtime) {
	t.Helper()
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	configure(rt)
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.defLine, "count == 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "count[1]"); err != nil {
		t.Fatal(err)
	}
	var stops []stopSig
	rt.SetHandler(func(ev *StopEvent) Command {
		stops = append(stops, signature(ev))
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	// Bursty activity: short enabled windows separated by long idle
	// stretches where every dependency signal is frozen.
	for burst := 0; burst < 4; burst++ {
		d.sim.Poke("Counter.en", 1)
		d.sim.Run(3)
		d.sim.Poke("Counter.en", 0)
		d.sim.Run(20)
	}
	return stops, rt
}

// TestDeltaSchedulingMatchesExhaustive pins the tentpole contract: the
// activity-driven scheduler produces the identical stop sequence —
// times, locations, hit instances, frame values, watch hits — as
// re-evaluating every group at every edge, while actually skipping
// work on the idle stretches.
func TestDeltaSchedulingMatchesExhaustive(t *testing.T) {
	exhaustive, _ := runCounterScenario(t, true)
	delta, rt := runCounterScenario(t, false)
	if len(exhaustive) == 0 {
		t.Fatal("scenario produced no stops; test is vacuous")
	}
	if len(delta) != len(exhaustive) {
		t.Fatalf("stop counts differ: delta=%d exhaustive=%d", len(delta), len(exhaustive))
	}
	for i := range delta {
		if delta[i] != exhaustive[i] {
			t.Fatalf("stop %d differs:\ndelta:      %+v\nexhaustive: %+v", i, delta[i], exhaustive[i])
		}
	}
	skipped, evaluated, _ := rt.ActivityStats()
	if skipped == 0 {
		t.Fatal("delta run skipped nothing; activity scheduling inert")
	}
	if evaluated == 0 {
		t.Fatal("delta run evaluated nothing")
	}
}

// TestDeltaSkipsIdleEdges checks the quantitative claim on the sim
// backend: with the enable signal frozen low, the armed group's
// dependencies are clean and per-edge evaluation stops entirely.
func TestDeltaSkipsIdleEdges(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 200"); err != nil {
		t.Fatal(err)
	}
	rt.SetHandler(func(ev *StopEvent) Command { return CmdContinue })
	d.sim.Reset("Counter.reset", 1)
	d.sim.Run(5) // settle the first-edge full evaluations
	evalsBefore, _ := rt.Stats()
	d.sim.Run(50) // en=0 throughout: all deps frozen
	evalsAfter, _ := rt.Stats()
	if evalsAfter != evalsBefore {
		t.Fatalf("idle stretch still evaluated conditions: %d -> %d", evalsBefore, evalsAfter)
	}
	// The moment activity returns, evaluation resumes.
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(2)
	evalsResumed, _ := rt.Stats()
	if evalsResumed == evalsAfter {
		t.Fatal("activity did not resume evaluation")
	}
}

// TestDeltaStepAlwaysEvaluates: stepping disables every skip, so a
// step stop lands on the next enabled statement even when its group
// was parked as a clean miss.
func TestDeltaStepAlwaysEvaluates(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 200"); err != nil {
		t.Fatal(err)
	}
	stops := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		stops++
		if !ev.StepStop {
			t.Errorf("expected step stop, got %+v", ev)
		}
		return CmdDetach
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Run(10) // park the armed group as a clean miss
	rt.InterruptNext()
	d.sim.Run(2)
	if stops != 1 {
		t.Fatalf("step stops = %d, want 1", stops)
	}
}

// recordCounterTrace records the counter with a phased enable (off,
// then on) so reverse execution crosses cycles with different enable
// values.
func recordCounterTrace(t *testing.T) (*testDesign, []byte) {
	t.Helper()
	d := buildCounterDesign(t, false)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(d.sim, &buf)
	d.sim.Reset("Counter.reset", 1)
	d.sim.Run(3) // en=0: increment line disabled
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return d, buf.Bytes()
}

// TestReverseRewindInvalidatesPrefetch is the regression test for the
// cross-cycle rewind bug: schedule's SetTime(t-1) success path must
// invalidate the per-edge prefetch cache, so condition and enable
// evaluation at the rewound cycles reads that cycle's values, never
// values fetched before the rewind. Observable contract: while
// reverse-stepping across many cycles, the increment statement may
// only produce stops at cycles where the recorded enable was actually
// high.
func TestReverseRewindInvalidatesPrefetch(t *testing.T) {
	d, data := recordCounterTrace(t)
	st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := replay.NewStore(st, replay.WithCheckpointInterval(2))
	rt, err := New(eng, d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 6"); err != nil {
		t.Fatal(err)
	}
	enSig, ok := st.Signal("Counter.en")
	if !ok {
		t.Fatal("Counter.en not in trace")
	}
	type stop struct {
		time uint64
		line int
	}
	var stops []stop
	rt.SetHandler(func(ev *StopEvent) Command {
		stops = append(stops, stop{ev.Time, ev.Line})
		if ev.Time <= 2 { // rewound into the disabled phase
			return CmdDetach
		}
		return CmdReverseStep
	})
	// Drive forward until the conditional stop, then let the handler
	// reverse all the way back into the disabled phase.
	for eng.StepForward() && len(stops) == 0 {
	}
	if len(stops) < 2 {
		t.Fatalf("reverse walk too short: %+v", stops)
	}
	if stops[0].line != d.incLine {
		t.Fatalf("first stop at line %d, want increment line %d", stops[0].line, d.incLine)
	}
	for _, s := range stops[1:] {
		if s.line == d.incLine && enSig.ValueAt(s.time) == 0 {
			t.Fatalf("stale evaluation: increment line stopped at t=%d where en=0 (stops=%+v)",
				s.time, stops)
		}
	}
	// The walk must genuinely have crossed into the disabled phase.
	last := stops[len(stops)-1]
	if last.time > 2 {
		t.Fatalf("reverse never reached the disabled phase: %+v", stops)
	}
}

// flakyBackend wraps a backend and fails reads of selected paths —
// the transient replay gap scenario. Embedding the interface (not the
// concrete type) deliberately hides batch/prefetch capabilities, so
// the runtime's conservative fallbacks are exercised too.
type flakyBackend struct {
	vpi.Interface
	fail map[string]bool
}

func (f *flakyBackend) GetValue(p string) (eval.Value, error) {
	if f.fail[p] {
		return eval.Value{}, errors.New("transient gap")
	}
	return f.Interface.GetValue(p)
}

// TestFrameUnknownValueMarker: a frame variable whose backend read
// fails is emitted with the Unknown marker instead of silently
// disappearing, and the frame keeps the same shape as a healthy run.
func TestFrameUnknownValueMarker(t *testing.T) {
	shape := func(fail map[string]bool) (names []string, unknown map[string]bool) {
		d := buildCounterDesign(t, false)
		fb := &flakyBackend{Interface: vpi.NewSimBackend(d.sim), fail: fail}
		rt, err := New(fb, d.table)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.AddBreakpoint("core_test.go", d.incLine, ""); err != nil {
			t.Fatal(err)
		}
		unknown = map[string]bool{}
		rt.SetHandler(func(ev *StopEvent) Command {
			for _, v := range ev.Threads[0].Locals {
				names = append(names, v.Name)
				unknown[v.Name] = v.Unknown
			}
			return CmdDetach
		})
		d.sim.Reset("Counter.reset", 1)
		d.sim.Poke("Counter.en", 1)
		d.sim.Run(2)
		return names, unknown
	}

	healthy, healthyUnknown := shape(nil)
	if len(healthy) == 0 {
		t.Fatal("no locals in healthy run")
	}
	for n, u := range healthyUnknown {
		if u {
			t.Fatalf("healthy run marked %s unknown", n)
		}
	}
	// Fail the first local's RTL path and re-run.
	d := buildCounterDesign(t, false)
	rtProbe, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	vars := rtProbe.Table().ScopeVars(rtProbe.Table().BreakpointsAt("core_test.go", d.incLine)[0].ID)
	if len(vars) == 0 {
		t.Fatal("no scope vars")
	}
	failPath := rtProbe.Remap().ToSim("Counter." + vars[0].RTL)
	failName := vars[0].Name

	flaky, flakyUnknown := shape(map[string]bool{failPath: true})
	if len(flaky) != len(healthy) {
		t.Fatalf("frame shape changed under read failure: %v vs %v", flaky, healthy)
	}
	if !flakyUnknown[failName] {
		t.Fatalf("failed variable %s not marked unknown: %v", failName, flakyUnknown)
	}
}
