package core

import (
	"repro/internal/expr"
	"repro/internal/val"
)

// onEdge is the clock-edge callback: the entire Figure 2 scheduling
// loop. The first check is the fast path the paper's overhead argument
// rests on — with no breakpoints inserted and no step pending, the
// callback returns immediately and the simulator pays only the cost of
// the call itself.
func (rt *Runtime) onEdge(time uint64) {
	// Serve any queries debugger sessions queued since the last edge:
	// observers read values mid-run here, with combinational state
	// settled, instead of racing the simulator from their own
	// goroutines (see query.go). The edge counter bumps first so an
	// idle-fallback caller racing this edge knows a live drainer
	// exists and waits instead of running inline.
	rt.edgeSeen.Add(1)
	rt.drainQueries()

	rt.mu.Lock()
	stepping := rt.stepArmed
	reverse := rt.reverseArmed
	hasBPs := len(rt.inserted) > 0
	hasWatches := len(rt.watches) > 0
	handler := rt.handler
	detached := rt.detached
	rt.mu.Unlock()

	if detached || handler == nil {
		return
	}
	if !hasBPs && !stepping && !hasWatches {
		return // fast exit: no breakpoint left to schedule
	}
	if hasWatches {
		if ev := rt.checkWatches(time); ev != nil {
			rt.mu.Lock()
			rt.stopCount++
			rt.mu.Unlock()
			cmd := handler(ev)
			rt.invalidatePrefetch()
			switch cmd {
			case CmdDetach:
				rt.Detach()
				return
			case CmdStep:
				stepping = true
			case CmdReverseStep:
				stepping, reverse = true, true
			}
		}
	}
	if !hasBPs && !stepping {
		return
	}

	start := 0
	if reverse {
		start = len(rt.allGroups) - 1
	}
	rt.schedule(time, start, stepping, reverse, handler)
}

// schedule walks breakpoint groups in the pre-computed order (or its
// reverse), evaluates each group's members in parallel, and blocks in
// the handler on hits. Reverse scheduling that falls off the beginning
// of a cycle re-enters the previous cycle when the backend supports
// SetTime (trace replay), giving full reverse debugging.
func (rt *Runtime) schedule(time uint64, start int, stepping, reverse bool, handler Handler) {
	t := time
	i := start
	for {
		if i < 0 || i >= len(rt.allGroups) {
			// Fetch-next-breakpoints returned "done" for this cycle.
			if reverse && i < 0 && t > 0 {
				// Reverse past the cycle boundary: rewind time if the
				// backend can. The per-edge value cache was fetched
				// before the rewind and must not survive it: times
				// alias after SetTime, and serving pre-rewind values at
				// the rewound time would evaluate conditions against
				// the wrong cycle.
				if err := rt.backend.SetTime(t - 1); err == nil {
					rt.invalidatePrefetch()
					t--
					i = len(rt.allGroups) - 1
					continue
				}
			}
			break
		}
		g := rt.allGroups[i]
		// Activity-driven skip: outside stepping, a group with no armed
		// member can never hit, and a group whose last evaluation was a
		// provable miss with all dependency slots clean since
		// (ensurePrefetch maintains the flags) must miss again —
		// skipping it is bit-identical to evaluating it. Stepping
		// always evaluates everything.
		var hits []*insertedBP
		usedFused := false
		if !stepping && rt.deltaOn() {
			rt.ensurePrefetch(t)
			if rt.groupArmed[i] == 0 {
				i = next(i, reverse)
				continue
			}
			// Fused fast path (fused.go): the whole schedule's conditions
			// ran as one program when this edge's cache was refreshed;
			// the walk just consumes per-condition results. Reverse
			// scheduling stays on the per-group path — its mid-walk
			// SetTime rewinds re-run per group anyway, so fusion would
			// re-execute the whole schedule per rewound group.
			if !reverse {
				if fs := rt.fusedReady(t); fs != nil {
					hits = rt.fusedGroupEval(fs, i)
					usedFused = true
				}
			}
			if !usedFused && rt.groupSkip[i] {
				rt.statSkipped.Add(1)
				i = next(i, reverse)
				continue
			}
		}
		if !usedFused {
			hits = rt.evaluateGroup(g, stepping, t)
		}
		if len(hits) == 0 {
			if !usedFused && !stepping && rt.deltaOn() {
				rt.noteGroupMiss(i)
			}
			i = next(i, reverse)
			continue
		}
		// A hit group stays hot: its condition holds and must re-stop
		// at every edge until a dependency moves or the user resumes
		// past it.
		rt.groupSkip[i] = false
		event := rt.buildEvent(g, hits, t, reverse, stepping)
		rt.mu.Lock()
		rt.stopCount++
		rt.mu.Unlock()
		cmd := handler(event)
		// The paused user may have deposited values or changed the
		// breakpoint set; refetch before evaluating further groups.
		rt.invalidatePrefetch()
		switch cmd {
		case CmdDetach:
			rt.Detach()
			rt.setStep(false, false)
			return
		case CmdContinue:
			stepping, reverse = false, false
			i = next(i, false)
		case CmdStep:
			stepping, reverse = true, false
			i = next(i, false)
		case CmdReverseStep:
			stepping, reverse = true, true
			i = next(i, true)
		default:
			stepping, reverse = false, false
			i = next(i, false)
		}
		rt.mu.Lock()
		hasBPs := len(rt.inserted) > 0
		rt.mu.Unlock()
		if !stepping && !hasBPs {
			break
		}
	}
	// Carry stepping state into the next cycle: a forward step that ran
	// off the end of this cycle stops at the first enabled statement of
	// the next; an un-rewindable reverse step stays armed so the user
	// still gets a stop (documented live-simulation limitation).
	rt.setStep(stepping, reverse && stepping)
}

func next(i int, reverse bool) int {
	if reverse {
		return i - 1
	}
	return i + 1
}

func (rt *Runtime) setStep(step, reverse bool) {
	rt.mu.Lock()
	rt.stepArmed = step
	rt.reverseArmed = reverse
	rt.mu.Unlock()
}

// evaluateGroup evaluates all candidate breakpoints of one source
// statement in parallel (§3.2 step 2) and returns the members that hit.
// Members run as compiled programs against the per-cycle prefetched
// value cache, dispatched onto the persistent worker pool.
func (rt *Runtime) evaluateGroup(g *group, stepping bool, t uint64) []*insertedBP {
	// Refresh the cache (and any pending dependency-union rebuild)
	// BEFORE snapshotting members: a rebuild reassigns every inserted
	// breakpoint's cache slots, so it must never run between selecting
	// a member and evaluating it (a breakpoint removed concurrently by
	// a connection goroutine would otherwise be evaluated with slots
	// indexing the rebuilt, possibly shorter, arrays).
	rt.ensurePrefetch(t)
	// Select members: inserted breakpoints always; when stepping, every
	// potential breakpoint participates.
	rt.mu.Lock()
	members := rt.memberBuf[:0]
	for _, cand := range g.bps {
		if armed, ok := rt.inserted[cand.bp.ID]; ok {
			members = append(members, armed)
		} else if stepping {
			members = append(members, cand)
		}
	}
	rt.memberBuf = members
	rt.evalCount += uint64(len(members))
	rt.mu.Unlock()
	if len(members) == 0 {
		return nil
	}
	rt.statEvaluated.Add(1)

	if cap(rt.resultBuf) < len(members) {
		rt.resultBuf = make([]bool, len(members))
	}
	results := rt.resultBuf[:len(members)]
	if len(members) == 1 {
		results[0] = rt.evalBP(members[0])
	} else {
		rt.pool.parallel(len(members), func(k int) {
			results[k] = rt.evalBP(members[k])
		})
	}
	var hits []*insertedBP
	for idx, ok := range results {
		if ok {
			hits = append(hits, members[idx])
		}
	}
	return hits
}

// evalBP checks one breakpoint: SSA enable condition AND user
// condition, both executed as compiled register programs over operands
// resolved at arm time and prefetched for the cycle. Compiled execution
// gathers operands eagerly, so a dependency that cannot be fetched
// fails it even when the tree-walk would short-circuit past that
// reference; on error the tree-walk reference decides, keeping the two
// paths semantically identical. When the two-state tree-walk also
// fails — an operand carries x/z bits or exceeds 64 bits — the general
// four-state evaluator is the final authority: the breakpoint hits
// only when the condition is definitely true (x is not a hit, matching
// Verilog's `if`).
func (rt *Runtime) evalBP(ibp *insertedBP) bool {
	if rt.generalEval.Load() {
		return rt.evalBPBits(ibp)
	}
	if ibp.enable != nil {
		if ibp.enableProg == nil {
			// Parsed but not compilable (four-state constructs): the
			// general evaluator is the only path.
			if !rt.condTruthBits(ibp, ibp.enable) {
				return false
			}
		} else {
			v, err := ibp.execProg(rt, ibp.enableProg, ibp.enablePaths, ibp.enableSlots)
			if err != nil {
				v, err = ibp.enable.Eval(ibp.pathResolver(rt))
			}
			if err != nil {
				if !rt.condTruthBits(ibp, ibp.enable) {
					return false
				}
			} else if !v.IsTrue() {
				return false
			}
		}
	}
	if ibp.cond != nil {
		if ibp.condProg == nil {
			if !rt.condTruthBits(ibp, ibp.cond) {
				return false
			}
		} else {
			v, err := ibp.execProg(rt, ibp.condProg, ibp.condPaths, ibp.condSlots)
			if err != nil {
				v, err = ibp.cond.Eval(ibp.pathResolver(rt))
			}
			if err != nil {
				if !rt.condTruthBits(ibp, ibp.cond) {
					return false
				}
			} else if !v.IsTrue() {
				return false
			}
		}
	}
	return true
}

// condTruthBits evaluates one condition tree with the general
// four-state evaluator and reports whether it is definitely true.
func (rt *Runtime) condTruthBits(ibp *insertedBP, n expr.Node) bool {
	b, err := expr.EvalBits(n, ibp.pathBitsResolver(rt))
	return err == nil && b.Truth() == val.True
}

// evalBPBits is the all-general form of evalBP: both conditions walked
// by the four-state evaluator, hits requiring definite truth. It is
// the SetGeneralEval baseline the compiled pipeline is differentially
// pinned against.
func (rt *Runtime) evalBPBits(ibp *insertedBP) bool {
	if ibp.enable != nil && !rt.condTruthBits(ibp, ibp.enable) {
		return false
	}
	if ibp.cond != nil && !rt.condTruthBits(ibp, ibp.cond) {
		return false
	}
	return true
}

// evalBPTree is the tree-walk reference implementation of evalBP,
// retained for differential testing of the compiled pipeline.
func (rt *Runtime) evalBPTree(ibp *insertedBP) bool {
	resolver := ibp.pathResolver(rt)
	if ibp.enable != nil {
		v, err := ibp.enable.Eval(resolver)
		if err != nil || !v.IsTrue() {
			return false
		}
	}
	if ibp.cond != nil {
		v, err := ibp.cond.Eval(resolver)
		if err != nil || !v.IsTrue() {
			return false
		}
	}
	return true
}
