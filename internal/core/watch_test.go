package core

import (
	"bytes"
	"testing"

	"repro/internal/replay"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

func TestWatchpointFiresOnChange(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.AddWatch("Counter", "count")
	if err != nil {
		t.Fatalf("AddWatch: %v", err)
	}
	var hits []WatchHit
	rt.SetHandler(func(ev *StopEvent) Command {
		hits = append(hits, ev.Watch...)
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	// Two idle cycles: count holds, no watch hits.
	d.sim.Run(2)
	if len(hits) != 0 {
		t.Fatalf("watch fired while value held: %v", hits)
	}
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(3)
	// Pre-edge observation: the first enabled edge still sees count=0;
	// the next two edges see the increments.
	if len(hits) != 2 {
		t.Fatalf("watch hits = %d, want 2", len(hits))
	}
	// Old/new values track the counter.
	if hits[0].New != hits[0].Old+1 {
		t.Fatalf("hit = %+v", hits[0])
	}
	if hits[0].Expr != "count" || hits[0].Instance != "Counter" {
		t.Fatalf("hit metadata = %+v", hits[0])
	}
	// Removal stops it.
	if !rt.RemoveWatch(id) {
		t.Fatal("RemoveWatch failed")
	}
	if rt.RemoveWatch(id) {
		t.Fatal("double remove succeeded")
	}
	d.sim.Run(3)
	if len(hits) != 2 {
		t.Fatalf("watch fired after removal: %d", len(hits))
	}
}

func TestWatchpointExpression(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	// Watch a derived expression: fires only when bit 2 toggles.
	if _, err := rt.AddWatch("Counter", "count[2]"); err != nil {
		t.Fatal(err)
	}
	toggles := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		toggles += len(ev.Watch)
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(16)
	// Edges observe pre-edge counts 0..15; bit 2 transitions at counts
	// 4, 8, and 12 -> exactly 3 visible toggles.
	if toggles != 3 {
		t.Fatalf("toggles = %d, want 3", toggles)
	}
	if len(rt.Watches()) != 1 {
		t.Fatalf("watches = %d", len(rt.Watches()))
	}
}

func TestWatchpointErrors(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "ghost_signal"); err == nil {
		t.Fatal("unresolvable watch accepted")
	}
	if _, err := rt.AddWatch("Counter", "count +"); err == nil {
		t.Fatal("malformed watch accepted")
	}
}

// TestWatchHitThenStepMidEdge: a watch handler returning CmdStep must
// produce a step stop within the same clock edge (the watch pass runs
// before the breakpoint schedule), at the first enabled statement.
func TestWatchHitThenStepMidEdge(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "count"); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		time     uint64
		line     int
		watch    bool
		stepStop bool
	}
	var events []ev
	rt.SetHandler(func(e *StopEvent) Command {
		events = append(events, ev{e.Time, e.Line, len(e.Watch) > 0, e.StepStop})
		if len(e.Watch) > 0 {
			return CmdStep
		}
		return CmdDetach
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(4)
	if len(events) != 2 {
		t.Fatalf("events = %+v, want watch hit then step stop", events)
	}
	if !events[0].watch || events[1].watch {
		t.Fatalf("event kinds wrong: %+v", events)
	}
	if !events[1].stepStop {
		t.Fatalf("second stop not a step stop: %+v", events)
	}
	if events[1].time != events[0].time {
		t.Fatalf("step left the edge: watch at t=%d, step at t=%d", events[0].time, events[1].time)
	}
	if events[1].line != d.defLine {
		t.Fatalf("step stopped at line %d, want first statement %d", events[1].line, d.defLine)
	}
}

// TestWatchHitThenReverseStepMidEdge: on a replay backend, a watch
// handler returning CmdReverseStep schedules in reverse — the stop is
// marked Reverse, lands on the last enabled statement of the cycle,
// and cross-cycle rewinding keeps working from a watch-initiated stop.
func TestWatchHitThenReverseStepMidEdge(t *testing.T) {
	d := buildCounterDesign(t, false)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(d.sim, &buf)
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := vcd.ParseStore(&buf, vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := replay.NewStore(st)
	rt, err := New(eng, d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "count"); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		time    uint64
		watch   bool
		reverse bool
		step    bool
	}
	var events []ev
	rt.SetHandler(func(e *StopEvent) Command {
		events = append(events, ev{e.Time, len(e.Watch) > 0, e.Reverse, e.StepStop})
		// Keep reversing until execution crosses the cycle boundary.
		if e.Time < events[0].time || len(events) > 10 {
			return CmdDetach
		}
		return CmdReverseStep
	})
	eng.SetTime(5)
	eng.StepForward() // edge at t=6: first sample arms the watch
	eng.StepForward() // edge at t=7: count changed, watch fires
	if len(events) < 3 {
		t.Fatalf("events = %+v", events)
	}
	if !events[0].watch {
		t.Fatalf("first stop not a watch hit: %+v", events)
	}
	if !events[1].reverse || !events[1].step {
		t.Fatalf("reverse step from watch not marked reverse+step: %+v", events)
	}
	if events[1].time != events[0].time {
		t.Fatalf("first reverse stop left the edge early: %+v", events)
	}
	// Continued reversing must eventually cross the cycle boundary.
	crossed := false
	for _, e := range events[1:] {
		if e.time < events[0].time {
			crossed = true
		}
	}
	if !crossed {
		t.Fatalf("reverse from watch never crossed a cycle boundary: %+v", events)
	}
}

// TestWatchStepCarriedAcrossCycles: stepping armed at the end of one
// cycle survives the watch stop that opens the next cycle (answered
// with CmdContinue) and still lands its step stop at the first
// statement of that cycle — stepping state is carried across both the
// cycle boundary and intervening watch stops.
func TestWatchStepCarriedAcrossCycles(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "count"); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		time  uint64
		watch bool
		step  bool
		line  int
	}
	var events []ev
	steps := 0
	rt.SetHandler(func(e *StopEvent) Command {
		events = append(events, ev{e.Time, len(e.Watch) > 0, e.StepStop, e.Line})
		if len(e.Watch) > 0 {
			// Watch stops between steps must not cancel the armed step.
			return CmdContinue
		}
		steps++
		if steps >= 5 {
			return CmdDetach
		}
		return CmdStep
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	rt.InterruptNext() // arm a step with no breakpoints inserted
	d.sim.Run(5)

	var stepStops []ev
	for _, e := range events {
		if e.step {
			stepStops = append(stepStops, e)
		}
	}
	if len(stepStops) < 3 {
		t.Fatalf("step stops = %+v", events)
	}
	// Stepping must have crossed at least one cycle boundary, and the
	// crossing step stop must have been preceded — same edge — by a
	// watch stop it survived.
	crossed := false
	for i, e := range events {
		if !e.step || i == 0 {
			continue
		}
		prevStep := -1
		for j := i - 1; j >= 0; j-- {
			if events[j].step {
				prevStep = j
				break
			}
		}
		if prevStep < 0 || events[prevStep].time >= e.time {
			continue
		}
		crossed = true
		sawWatch := false
		for j := prevStep + 1; j < i; j++ {
			if events[j].watch && events[j].time == e.time {
				sawWatch = true
			}
		}
		if !sawWatch {
			t.Fatalf("cycle-crossing step at t=%d had no intervening watch stop: %+v", e.time, events)
		}
		if e.line != d.defLine {
			t.Fatalf("carried step landed at line %d, want first statement %d", e.line, d.defLine)
		}
	}
	if !crossed {
		t.Fatalf("stepping never crossed a cycle boundary: %+v", events)
	}
}

// TestWatchDetach: CmdDetach from a watch stop must silence the
// runtime permanently even though the watched value keeps changing.
func TestWatchDetach(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "count"); err != nil {
		t.Fatal(err)
	}
	// An armed (never-true) breakpoint rides along: detach must silence
	// the whole runtime, not just the watch pass.
	if _, err := rt.AddBreakpoint("core_test.go", d.incLine, "count == 200"); err != nil {
		t.Fatal(err)
	}
	stops := 0
	rt.SetHandler(func(e *StopEvent) Command {
		stops++
		if len(e.Watch) == 0 {
			t.Errorf("expected only the watch stop, got %+v", e)
		}
		return CmdDetach
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(10)
	if stops != 1 {
		t.Fatalf("stops after watch detach = %d, want 1", stops)
	}
}

func TestInstanceScopedBreakpoint(t *testing.T) {
	// Reuse the dual-core design from core_test.
	s, table, accLine := buildDualCoreDesign(t)
	rt, err := New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatal(err)
	}
	// Arm only core u1.
	ids, err := rt.AddBreakpointInstance("core_test.go", accLine, "Top.u1", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("armed %d", len(ids))
	}
	var instances []string
	rt.SetHandler(func(ev *StopEvent) Command {
		for _, th := range ev.Threads {
			instances = append(instances, th.Instance)
		}
		return CmdContinue
	})
	s.Reset("Top.reset", 1)
	s.Poke("Top.x", 3)
	s.Run(2)
	if len(instances) != 2 {
		t.Fatalf("stops = %v", instances)
	}
	for _, inst := range instances {
		if inst != "Top.u1" {
			t.Fatalf("stopped in wrong instance %s", inst)
		}
	}
	// Unknown instance rejected.
	if _, err := rt.AddBreakpointInstance("core_test.go", accLine, "Top.zz", ""); err == nil {
		t.Fatal("bogus instance accepted")
	}
}
