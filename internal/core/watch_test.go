package core

import (
	"testing"

	"repro/internal/vpi"
)

func TestWatchpointFiresOnChange(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	id, err := rt.AddWatch("Counter", "count")
	if err != nil {
		t.Fatalf("AddWatch: %v", err)
	}
	var hits []WatchHit
	rt.SetHandler(func(ev *StopEvent) Command {
		hits = append(hits, ev.Watch...)
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	// Two idle cycles: count holds, no watch hits.
	d.sim.Run(2)
	if len(hits) != 0 {
		t.Fatalf("watch fired while value held: %v", hits)
	}
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(3)
	// Pre-edge observation: the first enabled edge still sees count=0;
	// the next two edges see the increments.
	if len(hits) != 2 {
		t.Fatalf("watch hits = %d, want 2", len(hits))
	}
	// Old/new values track the counter.
	if hits[0].New != hits[0].Old+1 {
		t.Fatalf("hit = %+v", hits[0])
	}
	if hits[0].Expr != "count" || hits[0].Instance != "Counter" {
		t.Fatalf("hit metadata = %+v", hits[0])
	}
	// Removal stops it.
	if !rt.RemoveWatch(id) {
		t.Fatal("RemoveWatch failed")
	}
	if rt.RemoveWatch(id) {
		t.Fatal("double remove succeeded")
	}
	d.sim.Run(3)
	if len(hits) != 2 {
		t.Fatalf("watch fired after removal: %d", len(hits))
	}
}

func TestWatchpointExpression(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	// Watch a derived expression: fires only when bit 2 toggles.
	if _, err := rt.AddWatch("Counter", "count[2]"); err != nil {
		t.Fatal(err)
	}
	toggles := 0
	rt.SetHandler(func(ev *StopEvent) Command {
		toggles += len(ev.Watch)
		return CmdContinue
	})
	d.sim.Reset("Counter.reset", 1)
	d.sim.Poke("Counter.en", 1)
	d.sim.Run(16)
	// Edges observe pre-edge counts 0..15; bit 2 transitions at counts
	// 4, 8, and 12 -> exactly 3 visible toggles.
	if toggles != 3 {
		t.Fatalf("toggles = %d, want 3", toggles)
	}
	if len(rt.Watches()) != 1 {
		t.Fatalf("watches = %d", len(rt.Watches()))
	}
}

func TestWatchpointErrors(t *testing.T) {
	d := buildCounterDesign(t, false)
	rt, err := New(vpi.NewSimBackend(d.sim), d.table)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddWatch("Counter", "ghost_signal"); err == nil {
		t.Fatal("unresolvable watch accepted")
	}
	if _, err := rt.AddWatch("Counter", "count +"); err == nil {
		t.Fatal("malformed watch accepted")
	}
}

func TestInstanceScopedBreakpoint(t *testing.T) {
	// Reuse the dual-core design from core_test.
	s, table, accLine := buildDualCoreDesign(t)
	rt, err := New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatal(err)
	}
	// Arm only core u1.
	ids, err := rt.AddBreakpointInstance("core_test.go", accLine, "Top.u1", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("armed %d", len(ids))
	}
	var instances []string
	rt.SetHandler(func(ev *StopEvent) Command {
		for _, th := range ev.Threads {
			instances = append(instances, th.Instance)
		}
		return CmdContinue
	})
	s.Reset("Top.reset", 1)
	s.Poke("Top.x", 3)
	s.Run(2)
	if len(instances) != 2 {
		t.Fatalf("stops = %v", instances)
	}
	for _, inst := range instances {
		if inst != "Top.u1" {
			t.Fatalf("stopped in wrong instance %s", inst)
		}
	}
	// Unknown instance rejected.
	if _, err := rt.AddBreakpointInstance("core_test.go", accLine, "Top.zz", ""); err == nil {
		t.Fatal("bogus instance accepted")
	}
}
