package proto

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// randStop builds a random but realistic stop event: a handful of
// instances, each with locals/generator variables whose names, paths
// and widths are drawn from a small pool so consecutive stops share
// frame shapes (the case delta encoding exists for).
func randStop(rng *rand.Rand, time uint64) *core.StopEvent {
	ev := &core.StopEvent{
		Time:     time,
		File:     fmt.Sprintf("design_%d.go", rng.Intn(3)),
		Line:     10 + rng.Intn(40),
		Col:      rng.Intn(8),
		Reverse:  rng.Intn(8) == 0,
		StepStop: rng.Intn(8) == 0,
	}
	nThreads := rng.Intn(4)
	for t := 0; t < nThreads; t++ {
		th := core.Thread{
			BreakpointID: int64(rng.Intn(5) + 1),
			Instance:     fmt.Sprintf("Top.u%d", t),
		}
		for v := 0; v < rng.Intn(6); v++ {
			vr := core.Variable{
				Name:    fmt.Sprintf("v%d", v),
				RTL:     fmt.Sprintf("Top.u%d.v%d", t, v),
				Value:   rng.Uint64() >> uint(rng.Intn(64)),
				Width:   1 + rng.Intn(64),
				Unknown: rng.Intn(10) == 0,
			}
			randPlanes(rng, &vr)
			th.Locals = append(th.Locals, vr)
		}
		for v := 0; v < rng.Intn(3); v++ {
			th.Generator = append(th.Generator, core.Variable{
				Name:  fmt.Sprintf("g%d", v),
				RTL:   fmt.Sprintf("Top.u%d.g%d", t, v),
				Value: rng.Uint64() >> uint(rng.Intn(64)),
				Width: 1 + rng.Intn(32),
			})
		}
		ev.Threads = append(ev.Threads, th)
	}
	for w := 0; w < rng.Intn(3); w++ {
		hit := core.WatchHit{
			ID: w + 1, Instance: "Top", Expr: fmt.Sprintf("w%d", w),
			Old: rng.Uint64() % 100, New: rng.Uint64() % 100,
		}
		if rng.Intn(4) == 0 {
			hit.OldDisplay = fmt.Sprintf("8'b1x0z%d", rng.Intn(2))
			hit.NewDisplay = fmt.Sprintf("128'h%x", rng.Uint64())
		}
		ev.Watch = append(ev.Watch, hit)
	}
	return ev
}

// randPlanes sometimes upgrades a variable to four-state and/or wide:
// a nonzero low-word x plane, extra value words, and occasionally an x
// plane over the high words too. Kept rare enough that most frames are
// still plain two-state (the dominant wire shape).
func randPlanes(rng *rand.Rand, v *core.Variable) {
	switch rng.Intn(6) {
	case 0: // four-state, <= 64 bits
		v.X = 1 + rng.Uint64()>>uint(1+rng.Intn(63))
	case 1: // wide two-state
		words := 1 + rng.Intn(3)
		v.Width = 64*words + 1 + rng.Intn(64)
		for i := 0; i < words; i++ {
			v.Hi = append(v.Hi, rng.Uint64())
		}
	case 2: // wide four-state
		v.Width = 128
		v.Hi = []uint64{rng.Uint64()}
		v.X = rng.Uint64()
		v.XHi = []uint64{1 + rng.Uint64()>>1}
	}
}

// mutateStop derives a plausible successor stop: same frame shapes,
// some values changed — the common stop-to-stop evolution — with an
// occasional shape change (thread added/removed, variable renamed) to
// exercise the full-thread fallback.
func mutateStop(rng *rand.Rand, base *core.StopEvent) *core.StopEvent {
	raw, _ := json.Marshal(base)
	var next core.StopEvent
	json.Unmarshal(raw, &next)
	next.Time = base.Time + uint64(rng.Intn(10)+1)
	for t := range next.Threads {
		th := &next.Threads[t]
		for v := range th.Locals {
			if rng.Intn(2) == 0 {
				th.Locals[v].Value = rng.Uint64() >> uint(rng.Intn(64))
			}
			if rng.Intn(16) == 0 {
				th.Locals[v].Unknown = !th.Locals[v].Unknown
			}
			if rng.Intn(8) == 0 { // x bits drifting in/out
				th.Locals[v].X ^= rng.Uint64() >> uint(rng.Intn(64))
			}
			if rng.Intn(8) == 0 && len(th.Locals[v].Hi) > 0 {
				th.Locals[v].Hi[0] = rng.Uint64()
			}
		}
		for v := range th.Generator {
			if rng.Intn(3) == 0 {
				th.Generator[v].Value = rng.Uint64() >> uint(rng.Intn(64))
			}
		}
	}
	switch rng.Intn(8) {
	case 0: // drop a thread
		if len(next.Threads) > 0 {
			next.Threads = next.Threads[1:]
		}
	case 1: // add a thread with a fresh shape
		next.Threads = append(next.Threads, core.Thread{
			BreakpointID: 99, Instance: "Top.new",
			Locals: []core.Variable{{Name: "fresh", RTL: "Top.new.fresh", Value: 7, Width: 8}},
		})
	case 2: // rename a variable (shape change → full-thread fallback)
		if len(next.Threads) > 0 && len(next.Threads[0].Locals) > 0 {
			next.Threads[0].Locals[0].Name += "_renamed"
		}
	}
	return &next
}

// canonStop nils out empty slices in place: the stop payload's slice
// fields have no omitempty, so a JSON round trip alone does not erase
// the nil-vs-empty distinction and comparisons must not hinge on it.
func canonStop(ev *core.StopEvent) *core.StopEvent {
	if len(ev.Threads) == 0 {
		ev.Threads = nil
	}
	if len(ev.Watch) == 0 {
		ev.Watch = nil
	}
	for i := range ev.Threads {
		if len(ev.Threads[i].Locals) == 0 {
			ev.Threads[i].Locals = nil
		}
		if len(ev.Threads[i].Generator) == 0 {
			ev.Threads[i].Generator = nil
		}
	}
	return ev
}

// normalizeWire puts a stop event through the JSON wire encoding and
// canonicalizes empty slices, so both sides of a comparison lose the
// same representation-only distinctions a real delivery loses.
func normalizeWire(t *testing.T, ev *core.StopEvent) *core.StopEvent {
	t.Helper()
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var out core.StopEvent
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return canonStop(&out)
}

// TestStopDeltaRoundTrip is the delta-frame differential: for >100
// randomized stop successions, applying the delta to the base must
// reconstruct the full next frame bit-exactly — including through the
// JSON wire form the client actually receives.
func TestStopDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		base := randStop(rng, uint64(10+i))
		next := mutateStop(rng, base)
		d := DiffStop(42, base, next)

		// Direct apply.
		got, err := ApplyStop(base, d)
		if err != nil {
			t.Fatalf("case %d: apply: %v", i, err)
		}
		want := normalizeWire(t, next)
		if !reflect.DeepEqual(normalizeWire(t, got), want) {
			t.Fatalf("case %d: direct apply mismatch:\n got %+v\nwant %+v", i, got, next)
		}

		// Through the JSON wire form (what a delta session decodes).
		raw, err := json.Marshal(&Event{Type: "stop", Seq: 43, Delta: d})
		if err != nil {
			t.Fatal(err)
		}
		var onWire Event
		if err := json.Unmarshal(raw, &onWire); err != nil {
			t.Fatal(err)
		}
		got2, err := ApplyStop(normalizeWire(t, base), onWire.Delta)
		if err != nil {
			t.Fatalf("case %d: wire apply: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeWire(t, got2), want) {
			t.Fatalf("case %d: wire apply mismatch:\n got %+v\nwant %+v", i, got2, next)
		}

		// Through the binary wire form.
		bin := EncodeBinaryEvent(&Event{Type: "stop", Seq: 43, Delta: d})
		dec, err := DecodeBinaryFrame(bin)
		if err != nil {
			t.Fatalf("case %d: binary decode: %v", i, err)
		}
		got3, err := ApplyStop(normalizeWire(t, base), dec.Delta)
		if err != nil {
			t.Fatalf("case %d: binary apply: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeWire(t, got3), want) {
			t.Fatalf("case %d: binary apply mismatch:\n got %+v\nwant %+v", i, got3, next)
		}
	}
}

// TestStopDeltaIsSmaller sanity-checks the reason deltas exist: for a
// value-only change, the delta wire form must be much smaller than the
// full frame. This is deterministic (no timing), so it can pin the
// acceptance ratio.
func TestStopDeltaIsSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var base *core.StopEvent
	for base == nil || len(base.Threads) < 2 {
		base = randStop(rng, 100)
	}
	next := normalizeWire(t, base)
	next.Time = base.Time + 2
	// Touch one value per thread: the realistic sparse-change stop.
	for ti := range next.Threads {
		if len(next.Threads[ti].Locals) > 0 {
			next.Threads[ti].Locals[0].Value++
		}
	}
	fullJSON, _ := json.Marshal(&Event{Type: "stop", Seq: 9, Stop: next})
	d := DiffStop(8, base, next)
	deltaJSON, _ := json.Marshal(&Event{Type: "stop", Seq: 9, Delta: d})
	deltaBin := EncodeBinaryEvent(&Event{Type: "stop", Seq: 9, Delta: d})
	if len(deltaJSON)*2 >= len(fullJSON) {
		t.Fatalf("delta JSON %dB not <1/2 of full %dB", len(deltaJSON), len(fullJSON))
	}
	if len(deltaBin)*5 >= len(fullJSON) {
		t.Fatalf("delta binary %dB not <1/5 of full JSON %dB", len(deltaBin), len(fullJSON))
	}
}

// TestStopDeltaMalformed pins the defensive paths: a delta referencing
// threads or variables the base does not have must fail apply, never
// panic or fabricate state.
func TestStopDeltaMalformed(t *testing.T) {
	base := &core.StopEvent{
		Time: 5,
		Threads: []core.Thread{{
			BreakpointID: 1, Instance: "Top.u0",
			Locals: []core.Variable{{Name: "a", RTL: "Top.u0.a", Width: 8}},
		}},
	}
	cases := []struct {
		name string
		d    *StopDelta
	}{
		{"base index out of range", &StopDelta{Threads: []ThreadDelta{{Base: 5}}}},
		{"patch index out of range", &StopDelta{Threads: []ThreadDelta{{
			Base: 1, Locals: []VarPatch{{Index: 3, Value: 1}},
		}}}},
		{"neither base nor full", &StopDelta{Threads: []ThreadDelta{{}}}},
	}
	for _, tc := range cases {
		if _, err := ApplyStop(base, tc.d); err == nil {
			t.Errorf("%s: apply succeeded", tc.name)
		}
	}
	// Delta against a base the client does not hold.
	if _, err := ApplyStop(nil, &StopDelta{Threads: []ThreadDelta{{Base: 1}}}); err == nil {
		t.Error("apply against nil base succeeded")
	}
}
