package proto

import (
	"fmt"

	"repro/internal/core"
)

// Delta stop frames. At production fan-out most of a stop broadcast's
// bytes are the reconstructed stack frames — variable names, RTL paths
// and widths that are identical from stop to stop. A session that
// acknowledges stop frames (the "ack" request) lets the server encode
// the next stop as a StopDelta against the acknowledged snapshot: the
// frame shape (names, paths, widths, thread order) is inherited from
// the base and only changed values travel. The state machine is:
//
//	full ──ack(S)──▶ delta-vs-S ──ack(S')──▶ delta-vs-S' ─ ...
//	  ▲                                          │
//	  └────────── ack gap / base evicted ◀───────┘
//
// The server falls back to a full frame whenever it no longer holds
// the session's acked snapshot (the session lagged past the history
// window, never acked, or reset with ack 0) — a delta is only ever
// encoded against a base the client has confirmed holding, so apply
// can never be attempted against the wrong snapshot.

// StopDelta encodes one stop event against an acknowledged base stop.
// Scalar header fields are carried in full (they are a handful of
// bytes); the thread list — the bulk — is encoded per thread as either
// a patch against a matching base thread or a full thread.
type StopDelta struct {
	// BaseSeq is the broadcast sequence number of the acknowledged stop
	// this delta applies to.
	BaseSeq uint64 `json:"base"`
	// Full header of the new stop (small, never delta-encoded).
	Time     uint64 `json:"time"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Reverse  bool   `json:"reverse,omitempty"`
	StepStop bool   `json:"step_stop,omitempty"`
	// Watch hits are carried in full: they are value-bearing and small.
	Watch []core.WatchHit `json:"watch,omitempty"`
	// Threads has one entry per thread of the NEW stop, in order.
	Threads []ThreadDelta `json:"threads,omitempty"`
}

// ThreadDelta encodes one thread of the new stop.
type ThreadDelta struct {
	// Base is the index of the shape-identical thread in the base
	// stop's Threads plus one; 0 means no usable base (Full is set).
	Base int `json:"base,omitempty"`
	// Full is the complete thread when no base thread matched (new
	// instance, changed frame shape).
	Full *core.Thread `json:"full,omitempty"`
	// Locals/Generator patch changed variables by index into the base
	// thread's slices; untouched indices are inherited verbatim.
	Locals    []VarPatch `json:"locals,omitempty"`
	Generator []VarPatch `json:"gen,omitempty"`
}

// VarPatch overwrites the value of one inherited variable. The
// four-state fields mirror core.Variable: X is the unknown-bit plane
// of the low word, Hi/XHi extend both planes past 64 bits. All empty
// for two-state values, whose patches are byte-identical to the old
// encoding.
type VarPatch struct {
	Index   int      `json:"i"`
	Value   uint64   `json:"v"`
	Unknown bool     `json:"u,omitempty"`
	X       uint64   `json:"x,omitempty"`
	Hi      []uint64 `json:"hi,omitempty"`
	XHi     []uint64 `json:"xhi,omitempty"`
}

// sameShape reports whether a variable slot can be patched (everything
// but the value bits is identical).
func sameShape(a, b *core.Variable) bool {
	return a.Name == b.Name && a.RTL == b.RTL && a.Width == b.Width
}

// diffVars returns value patches for next against base, or ok=false
// when the shapes diverge (length or any name/path/width differs) and
// the thread must travel in full.
func diffVars(base, next []core.Variable) (patches []VarPatch, ok bool) {
	if len(base) != len(next) {
		return nil, false
	}
	for i := range next {
		if !sameShape(&base[i], &next[i]) {
			return nil, false
		}
		if !base[i].EqualValue(&next[i]) {
			patches = append(patches, VarPatch{
				Index: i, Value: next[i].Value, Unknown: next[i].Unknown,
				X: next[i].X, Hi: next[i].Hi, XHi: next[i].XHi,
			})
		}
	}
	return patches, true
}

// DiffStop encodes next as a delta against base (the stop the session
// acknowledged as broadcast seq baseSeq). It never fails: threads
// without a usable base travel in full inside the delta.
func DiffStop(baseSeq uint64, base, next *core.StopEvent) *StopDelta {
	d := &StopDelta{
		BaseSeq:  baseSeq,
		Time:     next.Time,
		File:     next.File,
		Line:     next.Line,
		Col:      next.Col,
		Reverse:  next.Reverse,
		StepStop: next.StepStop,
		Watch:    next.Watch,
	}
	for ti := range next.Threads {
		nt := &next.Threads[ti]
		td := ThreadDelta{}
		// Threads are sorted by instance on both sides; match by
		// breakpoint id + instance, scanning from the same index first
		// (the common case is an identical thread list).
		bi := -1
		if ti < len(base.Threads) && base.Threads[ti].Instance == nt.Instance &&
			base.Threads[ti].BreakpointID == nt.BreakpointID {
			bi = ti
		} else {
			for j := range base.Threads {
				if base.Threads[j].Instance == nt.Instance &&
					base.Threads[j].BreakpointID == nt.BreakpointID {
					bi = j
					break
				}
			}
		}
		if bi >= 0 {
			bt := &base.Threads[bi]
			lp, lok := diffVars(bt.Locals, nt.Locals)
			gp, gok := diffVars(bt.Generator, nt.Generator)
			if lok && gok {
				td.Base = bi + 1
				td.Locals = lp
				td.Generator = gp
			}
		}
		if td.Base == 0 {
			full := *nt
			td.Full = &full
		}
		d.Threads = append(d.Threads, td)
	}
	return d
}

// applyVars copies base and applies patches. Patches out of range make
// the delta malformed.
func applyVars(base []core.Variable, patches []VarPatch) ([]core.Variable, error) {
	if len(base) == 0 && len(patches) == 0 {
		return nil, nil
	}
	out := make([]core.Variable, len(base))
	copy(out, base)
	for _, p := range patches {
		if p.Index < 0 || p.Index >= len(out) {
			return nil, fmt.Errorf("proto: variable patch index %d out of range (%d vars)", p.Index, len(out))
		}
		out[p.Index].Value = p.Value
		out[p.Index].Unknown = p.Unknown
		out[p.Index].X = p.X
		out[p.Index].Hi = p.Hi
		out[p.Index].XHi = p.XHi
	}
	return out, nil
}

// ApplyStop reconstructs the full stop event a delta encodes, given the
// base stop the client holds (its last acknowledged frame). The result
// is bit-exact with the stop the server diffed — pinned by the
// round-trip differential tests.
func ApplyStop(base *core.StopEvent, d *StopDelta) (*core.StopEvent, error) {
	ev := &core.StopEvent{
		Time:     d.Time,
		File:     d.File,
		Line:     d.Line,
		Col:      d.Col,
		Reverse:  d.Reverse,
		StepStop: d.StepStop,
		Watch:    d.Watch,
	}
	for i := range d.Threads {
		td := &d.Threads[i]
		if td.Base == 0 {
			if td.Full == nil {
				return nil, fmt.Errorf("proto: thread delta %d has neither base nor full thread", i)
			}
			ev.Threads = append(ev.Threads, *td.Full)
			continue
		}
		if base == nil {
			return nil, fmt.Errorf("proto: thread delta %d references a base stop the client does not hold", i)
		}
		bi := td.Base - 1
		if bi < 0 || bi >= len(base.Threads) {
			return nil, fmt.Errorf("proto: thread delta %d base index %d out of range (%d threads)", i, bi, len(base.Threads))
		}
		bt := &base.Threads[bi]
		locals, err := applyVars(bt.Locals, td.Locals)
		if err != nil {
			return nil, err
		}
		gen, err := applyVars(bt.Generator, td.Generator)
		if err != nil {
			return nil, err
		}
		ev.Threads = append(ev.Threads, core.Thread{
			BreakpointID: bt.BreakpointID,
			Instance:     bt.Instance,
			Locals:       locals,
			Generator:    gen,
		})
	}
	return ev, nil
}
