package proto

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder —
// the first thing the server runs on every message a client sends.
// Invariants: no panic, errors only for malformed/unknown input, and
// any accepted request survives a marshal/decode round trip intact
// (the dispatcher must see exactly what the client sent).
func FuzzDecodeRequest(f *testing.F) {
	// Seed with the protocol's real traffic: one of each request the
	// client library produces, plus near-miss malformed variants.
	seeds := []string{
		`{"type":"breakpoint","action":"add","filename":"server_test.go","line":38,"condition":"count == 2","token":"1"}`,
		`{"type":"breakpoint","action":"remove","filename":"server_test.go","line":38,"token":"2"}`,
		`{"type":"breakpoint","action":"list","token":"3"}`,
		`{"type":"breakpoint","action":"clear","token":"4"}`,
		`{"type":"command","command":"continue","token":"5"}`,
		`{"type":"command","command":"reverse-step","token":"6"}`,
		`{"type":"command","command":"pause","token":"7"}`,
		`{"type":"evaluate","instance":"Counter","expression":"count + 10","token":"8"}`,
		`{"type":"get-value","path":"Counter.count","token":"9"}`,
		`{"type":"set-value","path":"Counter.en","value":1,"token":"10"}`,
		`{"type":"info","topic":"status","token":"11"}`,
		`{"type":"info","topic":"lines","filename":"adder.go","token":"12"}`,
		`{"type":"watch","action":"add","instance":"Counter","expression":"count","token":"13"}`,
		`{"type":"watch","action":"remove","watch_id":1,"token":"14"}`,
		`{"type":"session","action":"list","token":"15"}`,
		`{"type":"session","action":"release","token":"16"}`,
		`{"type":"session","action":"claim","token":"17"}`,
		`{"type":"runtimes","action":"list","token":"18"}`,
		`{"type":"runtimes","action":"launch","spec":{"name":"c0","kind":"sim","design":"counter","debug":true},"token":"19"}`,
		`{"type":"runtimes","action":"launch","spec":{"kind":"replay","vcd":"trace.vcd","symtab":"trace.symtab"},"token":"20"}`,
		`{"type":"runtimes","action":"evict","runtime":"rt-3","token":"21"}`,
		`{"type":"runtimes","action":"launch","spec":null,"token":"22"}`,
		`{"type":"runtimes","action":"launch","spec":{"kind":42}}`,
		`{"type":"warp"}`,
		`{"token":"18"}`,
		`{"type":42}`,
		`{"type":"info","line":"not-a-number"}`,
		`{`,
		``,
		`null`,
		`[]`,
		`"info"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			if req != nil {
				t.Fatalf("error %v with non-nil request %+v", err, req)
			}
			return
		}
		if req.Type == "" || !knownRequestTypes[req.Type] {
			t.Fatalf("decoder accepted type %q", req.Type)
		}
		// Round trip: what the dispatcher replies to must re-encode to
		// an equivalent request.
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not marshal: %v", err)
		}
		back, err := DecodeRequest(raw)
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", raw, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("round trip changed request: %+v != %+v", req, back)
		}
	})
}
