package proto

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// binNormalize round-trips an event through JSON so both sides of a
// binary round-trip comparison share the same nil-vs-empty slice
// conventions (the binary decoder, like the JSON one, yields nil for
// empty lists).
func binNormalize(t *testing.T, ev *Event) *Event {
	t.Helper()
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stop != nil {
		canonStop(out.Stop)
	}
	return &out
}

func TestBinaryRoundTripStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		ev := &Event{
			Type: "stop",
			Seq:  uint64(i + 1),
			Emit: int64(1_700_000_000_000_000_000 + i),
			Stop: randStop(rng, uint64(100+i)),
		}
		frame := EncodeBinaryEvent(ev)
		dec, err := DecodeBinaryFrame(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want, got := binNormalize(t, ev), binNormalize(t, dec)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestBinaryRoundTripDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		base := randStop(rng, uint64(10+i))
		next := mutateStop(rng, base)
		ev := &Event{
			Type:  "stop",
			Seq:   uint64(i + 2),
			Emit:  12345,
			Delta: DiffStop(uint64(i+1), base, next),
		}
		frame := EncodeBinaryEvent(ev)
		dec, err := DecodeBinaryFrame(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		want, got := binNormalize(t, ev), binNormalize(t, dec)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestBinaryRoundTripGeneric(t *testing.T) {
	cases := []*Event{
		{Type: "welcome", Seq: 1, SessionID: 7, Role: RoleObserver,
			Controller: 3, Peers: 4, Top: "Top", Mode: "replay",
			Files: 12, Reverse: true},
		{Type: "attach", Seq: 9, SessionID: 8, Controller: 3, Peers: 5},
		{Type: "goodbye", Seq: 10, SessionID: 8, Controller: 3, Peers: 4},
		{Type: "control", Seq: 11, Controller: 8, Reason: "release"},
		{Type: "resume", Seq: 12, Emit: 999, Command: "step"},
	}
	for _, ev := range cases {
		frame := EncodeBinaryEvent(ev)
		dec, err := DecodeBinaryFrame(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", ev.Type, err)
		}
		want, got := binNormalize(t, ev), binNormalize(t, dec)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", ev.Type, got, want)
		}
	}
}

// TestBinaryDecodeRejects pins the defensive paths a fuzzer would find:
// truncation, bad header, hostile counts, trailing garbage.
func TestBinaryDecodeRejects(t *testing.T) {
	good := EncodeBinaryEvent(&Event{Type: "stop", Seq: 3, Stop: &core.StopEvent{
		Time: 9, File: "a.go", Line: 4,
		Threads: []core.Thread{{BreakpointID: 1, Instance: "Top",
			Locals: []core.Variable{{Name: "x", RTL: "Top.x", Value: 1, Width: 8}}}},
	}})

	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short", []byte{binMagic, binVersion}},
		{"bad magic", append([]byte{0x00}, good[1:]...)},
		{"bad version", append([]byte{binMagic, 0x7F}, good[2:]...)},
		{"bad kind", append([]byte{binMagic, binVersion, 0x7F}, good[3:]...)},
		{"truncated body", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte{}, good...), 0xFF)},
		// kindStop with a huge thread count and no bytes to back it.
		{"hostile count", []byte{binMagic, binVersion, kindStop,
			1, 0, 5, 0, // seq, emit, time, file=""
			1, 0, 0, // line, col, flags
			0,                            // watch count
			0xFF, 0xFF, 0xFF, 0xFF, 0x7F, // thread count ~ 2^34
		}},
		// generic frame claiming type "stop" (must use kindStop).
		{"generic stop", EncodeBinaryEvent(&Event{Type: "stop"})},
	}
	for _, tc := range cases {
		if _, err := DecodeBinaryFrame(tc.frame); err == nil {
			t.Errorf("%s: decode succeeded on malformed frame", tc.name)
		}
	}

	// Every truncation of a valid frame must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeBinaryFrame(good[:cut]); err == nil {
			t.Errorf("truncation at %d decoded successfully", cut)
		}
	}
}

// FuzzDecodeBinaryFrame hammers the attacker-facing decoder. Seeds are
// realistic frames of every kind — the same shapes the load harness
// captures from live broadcast traffic — so the fuzzer starts from
// structurally valid inputs and mutates toward the edge cases.
func FuzzDecodeBinaryFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(13))
	// Full stops of assorted sizes.
	for i := 0; i < 4; i++ {
		f.Add(EncodeBinaryEvent(&Event{
			Type: "stop", Seq: uint64(i + 1), Emit: int64(i) * 1e9,
			Stop: randStop(rng, uint64(50*i)),
		}))
	}
	// Deltas, including full-thread fallbacks.
	for i := 0; i < 4; i++ {
		base := randStop(rng, uint64(10*i))
		f.Add(EncodeBinaryEvent(&Event{
			Type: "stop", Seq: uint64(i + 10), Emit: 77,
			Delta: DiffStop(uint64(i+9), base, mutateStop(rng, base)),
		}))
	}
	// Generic lifecycle events.
	f.Add(EncodeBinaryEvent(&Event{Type: "welcome", Seq: 1, SessionID: 2,
		Role: RoleController, Top: "Top", Mode: "live", Files: 3}))
	f.Add(EncodeBinaryEvent(&Event{Type: "resume", Seq: 4, Command: "continue"}))
	f.Add(EncodeBinaryEvent(&Event{Type: "goodbye", Seq: 5, SessionID: 9, Peers: 1}))
	// Hub frames (binary v3): the control-session greeting with the
	// registry size, and runtime-routed lifecycle events carrying the
	// registry id of the runtime the session is attached to.
	f.Add(EncodeBinaryEvent(&Event{Type: "hub-welcome", Seq: 1, Runtimes: 24}))
	f.Add(EncodeBinaryEvent(&Event{Type: "welcome", Seq: 1, SessionID: 3,
		Role: RoleObserver, Top: "Counter", Mode: "replay", Files: 2, Runtime: "rt-7"}))
	f.Add(EncodeBinaryEvent(&Event{Type: "goodbye", Seq: 8, SessionID: 3,
		Reason: "shutdown", Runtime: "rt-7"}))
	// Four-state / wide payloads — the v2 flag-byte encodings: low-word
	// x planes, >64-bit values with and without x planes, rendered
	// watch-hit displays.
	f.Add(EncodeBinaryEvent(&Event{Type: "stop", Seq: 20, Emit: 3, Stop: &core.StopEvent{
		Time: 40, File: "wide.go", Line: 7,
		Threads: []core.Thread{{BreakpointID: 2, Instance: "Top",
			Locals: []core.Variable{
				{Name: "st", RTL: "Top.st", Value: 0b100, X: 0b010, Width: 8},
				{Name: "bus", RTL: "Top.bus", Value: 1, Hi: []uint64{0xdead, 1}, Width: 130},
				{Name: "bx", RTL: "Top.bx", X: 1, Hi: []uint64{5}, XHi: []uint64{1 << 63}, Width: 128},
			}}},
		Watch: []core.WatchHit{{ID: 1, Expr: "st", Old: 4, New: 6,
			OldDisplay: "8'b0000001x", NewDisplay: "8'b00000110"}},
	}}))
	{
		base := randStop(rng, 200)
		next := mutateStop(rng, base)
		if len(next.Threads) > 0 && len(next.Threads[0].Locals) > 0 {
			next.Threads[0].Locals[0].X = 0xF0 // force a plane patch
		}
		f.Add(EncodeBinaryEvent(&Event{Type: "stop", Seq: 21, Emit: 4,
			Delta: DiffStop(20, base, next)}))
	}
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{binMagic, binVersion, kindStop})

	f.Fuzz(func(t *testing.T, frame []byte) {
		ev, err := DecodeBinaryFrame(frame)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// event (the codec is canonical for decoded values).
		frame2 := EncodeBinaryEvent(ev)
		ev2, err := DecodeBinaryFrame(frame2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		raw1, _ := json.Marshal(ev)
		raw2, _ := json.Marshal(ev2)
		if string(raw1) != string(raw2) {
			t.Fatalf("re-encode not canonical:\n first %s\nsecond %s", raw1, raw2)
		}
	})
}
