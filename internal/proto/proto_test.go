package proto

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestOKResponse(t *testing.T) {
	resp, err := OK("42", map[string]int{"x": 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Token != "42" {
		t.Fatalf("resp = %+v", resp)
	}
	var data map[string]int
	if err := json.Unmarshal(resp.Data, &data); err != nil || data["x"] != 7 {
		t.Fatalf("data = %v, %v", data, err)
	}
	// Nil payload allowed.
	resp2, err := OK("1", nil)
	if err != nil || len(resp2.Data) != 0 {
		t.Fatalf("nil payload: %+v, %v", resp2, err)
	}
}

func TestErrorResponse(t *testing.T) {
	resp := Error("7", "bad %s: %d", "thing", 3)
	if resp.Status != "error" || resp.Reason != "bad thing: 3" || resp.Token != "7" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestParseCommand(t *testing.T) {
	cases := map[string]core.Command{
		"continue":     core.CmdContinue,
		"step":         core.CmdStep,
		"reverse-step": core.CmdReverseStep,
		"detach":       core.CmdDetach,
	}
	for s, want := range cases {
		got, err := ParseCommand(s)
		if err != nil || got != want {
			t.Errorf("ParseCommand(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCommand("warp"); err == nil {
		t.Fatal("unknown command parsed")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		Type: "breakpoint", Action: "add", Token: "9",
		Filename: "core.go", Line: 42, Condition: "x == 1",
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Fatalf("round trip: %+v != %+v", back, req)
	}
	// Omitted fields stay off the wire.
	if strings.Contains(string(raw), "instance") {
		t.Fatalf("empty fields serialized: %s", raw)
	}
}

func TestEventWithStop(t *testing.T) {
	ev := Event{Type: "stop", Stop: &core.StopEvent{
		Time: 5, File: "a.go", Line: 10,
		Threads: []core.Thread{{Instance: "Top.u0", Locals: []core.Variable{
			{Name: "x", Value: 3, Width: 8},
		}}},
	}}
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Stop == nil || back.Stop.Threads[0].Locals[0].Value != 3 {
		t.Fatalf("stop round trip: %+v", back.Stop)
	}
}
