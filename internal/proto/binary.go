package proto

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Binary wire encoding. Sessions that negotiate `enc=binary` at attach
// receive broadcast events as length-prefixed binary frames instead of
// JSON text: every integer is a uvarint, every string is a uvarint
// length prefix followed by its bytes, and booleans pack into flag
// bytes. Requests and responses stay JSON text — they are low-rate and
// per-session; the binary path exists for the one payload that is
// written N times per simulation stop.
//
// Frame layout:
//
//	byte 0: magic 0xB5
//	byte 1: version (1 or 2)
//	byte 2: kind — kindStop | kindDelta | kindGeneric
//	...     kind-specific body (see encode/decode pairs below)
//
// Version 2 grew the four-state value plane: variables and value
// patches carry a flags byte with optional x-plane and high-word
// payloads, and watch hits carry optional rendered display strings.
// Version 3 grew the hub routing fields on generic frames: the
// runtime id a session is attached to (welcome/goodbye behind a hub)
// and the registry size (hub-welcome). Stop and delta frames are
// unchanged from version 2. The encoder always emits version 3; the
// decoder accepts versions 1 and 2 too (their layouts are strict
// subsets), so a newer client can still read a stream recorded by an
// older server.
//
// The codec is attacker-facing (a malicious server could feed a client
// arbitrary frames), so DecodeBinaryFrame bounds every count before
// allocating and is fuzzed (FuzzDecodeBinaryFrame) with seeds captured
// from real harness traffic.

const (
	binMagic   = 0xB5
	binVersion = 3

	kindStop    = 1 // full stop event
	kindDelta   = 2 // delta stop event
	kindGeneric = 3 // welcome/attach/goodbye/control/resume
)

// Variable/patch flag bits (version ≥ 2).
const (
	varUnknown = 1 << 0 // backend read failed
	varHasX    = 1 << 1 // x-plane low word follows
	varWide    = 1 << 2 // high value words follow
	varWideX   = 1 << 3 // high x-plane words follow
)

// Decode caps: no legitimate frame comes close, and a hostile header
// must not force a huge allocation.
const (
	maxBinThreads = 1 << 16
	maxBinVars    = 1 << 20
	maxBinWatch   = 1 << 16
	maxBinString  = 1 << 20
	// maxBinWords caps one value's high-word planes: 2^16 bits (the
	// expression language's literal ceiling) is 1024 words.
	maxBinWords = 1 << 10
)

// --- encode primitives ---

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// --- decode primitives (cursor-based) ---

type binReader struct {
	buf []byte
	off int
	ver byte
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("proto: truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) int() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("proto: integer %d overflows", v)
	}
	return int(v), nil
}

func (r *binReader) count(max int, what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("proto: %s count %d exceeds %d", what, v, max)
	}
	// A count can never exceed the bytes remaining: every counted item
	// is at least one byte, so this rejects absurd counts before any
	// allocation sized by them.
	if v > uint64(len(r.buf)-r.off) {
		return 0, fmt.Errorf("proto: %s count %d exceeds remaining frame", what, v)
	}
	return int(v), nil
}

func (r *binReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxBinString || n > uint64(len(r.buf)-r.off) {
		return "", fmt.Errorf("proto: string length %d exceeds remaining frame", n)
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("proto: truncated frame at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *binReader) bool() (bool, error) {
	b, err := r.byte()
	return b != 0, err
}

// --- variables, threads, watch hits ---

// valueFlags computes the v2 flags byte for one value plane.
func valueFlags(unknown bool, x uint64, hi, xhi []uint64) byte {
	var flags byte
	if unknown {
		flags |= varUnknown
	}
	if x != 0 {
		flags |= varHasX
	}
	if len(hi) > 0 {
		flags |= varWide
	}
	if len(xhi) > 0 {
		flags |= varWideX
	}
	return flags
}

func appendWords(dst []byte, words []uint64) []byte {
	dst = appendUvarint(dst, uint64(len(words)))
	for _, w := range words {
		dst = appendUvarint(dst, w)
	}
	return dst
}

func (r *binReader) words() ([]uint64, error) {
	n, err := r.count(maxBinWords, "plane word")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// appendValuePlanes writes the optional four-state payload a flags
// byte announced.
func appendValuePlanes(dst []byte, flags byte, x uint64, hi, xhi []uint64) []byte {
	if flags&varHasX != 0 {
		dst = appendUvarint(dst, x)
	}
	if flags&varWide != 0 {
		dst = appendWords(dst, hi)
	}
	if flags&varWideX != 0 {
		dst = appendWords(dst, xhi)
	}
	return dst
}

func (r *binReader) valuePlanes(flags byte) (x uint64, hi, xhi []uint64, err error) {
	if flags&varHasX != 0 {
		if x, err = r.uvarint(); err != nil {
			return 0, nil, nil, err
		}
	}
	if flags&varWide != 0 {
		if hi, err = r.words(); err != nil {
			return 0, nil, nil, err
		}
	}
	if flags&varWideX != 0 {
		if xhi, err = r.words(); err != nil {
			return 0, nil, nil, err
		}
	}
	return x, hi, xhi, nil
}

func appendVar(dst []byte, v *core.Variable) []byte {
	dst = appendString(dst, v.Name)
	dst = appendString(dst, v.RTL)
	dst = appendUvarint(dst, v.Value)
	dst = appendUvarint(dst, uint64(v.Width))
	flags := valueFlags(v.Unknown, v.X, v.Hi, v.XHi)
	dst = append(dst, flags)
	return appendValuePlanes(dst, flags, v.X, v.Hi, v.XHi)
}

func (r *binReader) variable() (core.Variable, error) {
	var v core.Variable
	var err error
	if v.Name, err = r.string(); err != nil {
		return v, err
	}
	if v.RTL, err = r.string(); err != nil {
		return v, err
	}
	if v.Value, err = r.uvarint(); err != nil {
		return v, err
	}
	if v.Width, err = r.int(); err != nil {
		return v, err
	}
	if r.ver < 2 {
		v.Unknown, err = r.bool()
		return v, err
	}
	flags, err := r.byte()
	if err != nil {
		return v, err
	}
	v.Unknown = flags&varUnknown != 0
	v.X, v.Hi, v.XHi, err = r.valuePlanes(flags)
	return v, err
}

func appendVarList(dst []byte, vars []core.Variable) []byte {
	dst = appendUvarint(dst, uint64(len(vars)))
	for i := range vars {
		dst = appendVar(dst, &vars[i])
	}
	return dst
}

func (r *binReader) varList() ([]core.Variable, error) {
	n, err := r.count(maxBinVars, "variable")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]core.Variable, n)
	for i := range out {
		if out[i], err = r.variable(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func appendThread(dst []byte, th *core.Thread) []byte {
	dst = appendUvarint(dst, uint64(th.BreakpointID))
	dst = appendString(dst, th.Instance)
	dst = appendVarList(dst, th.Locals)
	return appendVarList(dst, th.Generator)
}

func (r *binReader) thread() (core.Thread, error) {
	var th core.Thread
	id, err := r.uvarint()
	if err != nil {
		return th, err
	}
	th.BreakpointID = int64(id)
	if th.Instance, err = r.string(); err != nil {
		return th, err
	}
	if th.Locals, err = r.varList(); err != nil {
		return th, err
	}
	th.Generator, err = r.varList()
	return th, err
}

func appendWatch(dst []byte, hits []core.WatchHit) []byte {
	dst = appendUvarint(dst, uint64(len(hits)))
	for i := range hits {
		h := &hits[i]
		dst = appendUvarint(dst, uint64(h.ID))
		dst = appendString(dst, h.Instance)
		dst = appendString(dst, h.Expr)
		dst = appendUvarint(dst, h.Old)
		dst = appendUvarint(dst, h.New)
		dst = appendString(dst, h.OldDisplay)
		dst = appendString(dst, h.NewDisplay)
	}
	return dst
}

func (r *binReader) watch() ([]core.WatchHit, error) {
	n, err := r.count(maxBinWatch, "watch hit")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]core.WatchHit, n)
	for i := range out {
		h := &out[i]
		if h.ID, err = r.int(); err != nil {
			return nil, err
		}
		if h.Instance, err = r.string(); err != nil {
			return nil, err
		}
		if h.Expr, err = r.string(); err != nil {
			return nil, err
		}
		if h.Old, err = r.uvarint(); err != nil {
			return nil, err
		}
		if h.New, err = r.uvarint(); err != nil {
			return nil, err
		}
		if r.ver < 2 {
			continue
		}
		if h.OldDisplay, err = r.string(); err != nil {
			return nil, err
		}
		if h.NewDisplay, err = r.string(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- stop events ---

func appendStopHeader(dst []byte, seq uint64, emit int64, time uint64, file string, line, col int, reverse, step bool) []byte {
	dst = appendUvarint(dst, seq)
	dst = appendUvarint(dst, uint64(emit))
	dst = appendUvarint(dst, time)
	dst = appendString(dst, file)
	dst = appendUvarint(dst, uint64(line))
	dst = appendUvarint(dst, uint64(col))
	var flags byte
	if reverse {
		flags |= 1
	}
	if step {
		flags |= 2
	}
	return append(dst, flags)
}

func appendStop(dst []byte, ev *Event) []byte {
	st := ev.Stop
	dst = appendStopHeader(dst, ev.Seq, ev.Emit, st.Time, st.File, st.Line, st.Col, st.Reverse, st.StepStop)
	dst = appendWatch(dst, st.Watch)
	dst = appendUvarint(dst, uint64(len(st.Threads)))
	for i := range st.Threads {
		dst = appendThread(dst, &st.Threads[i])
	}
	return dst
}

func (r *binReader) stop() (*Event, error) {
	ev := &Event{Type: "stop", Stop: &core.StopEvent{}}
	st := ev.Stop
	var err error
	if ev.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	emit, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ev.Emit = int64(emit)
	if st.Time, err = r.uvarint(); err != nil {
		return nil, err
	}
	if st.File, err = r.string(); err != nil {
		return nil, err
	}
	if st.Line, err = r.int(); err != nil {
		return nil, err
	}
	if st.Col, err = r.int(); err != nil {
		return nil, err
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	st.Reverse = flags&1 != 0
	st.StepStop = flags&2 != 0
	if st.Watch, err = r.watch(); err != nil {
		return nil, err
	}
	n, err := r.count(maxBinThreads, "thread")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		th, err := r.thread()
		if err != nil {
			return nil, err
		}
		st.Threads = append(st.Threads, th)
	}
	return ev, nil
}

// --- delta stop events ---

func appendDelta(dst []byte, ev *Event) []byte {
	d := ev.Delta
	dst = appendStopHeader(dst, ev.Seq, ev.Emit, d.Time, d.File, d.Line, d.Col, d.Reverse, d.StepStop)
	dst = appendUvarint(dst, d.BaseSeq)
	dst = appendWatch(dst, d.Watch)
	dst = appendUvarint(dst, uint64(len(d.Threads)))
	for i := range d.Threads {
		td := &d.Threads[i]
		dst = appendUvarint(dst, uint64(td.Base))
		if td.Base == 0 {
			dst = appendThread(dst, td.Full)
			continue
		}
		dst = appendPatches(dst, td.Locals)
		dst = appendPatches(dst, td.Generator)
	}
	return dst
}

func appendPatches(dst []byte, patches []VarPatch) []byte {
	dst = appendUvarint(dst, uint64(len(patches)))
	for _, p := range patches {
		dst = appendUvarint(dst, uint64(p.Index))
		dst = appendUvarint(dst, p.Value)
		flags := valueFlags(p.Unknown, p.X, p.Hi, p.XHi)
		dst = append(dst, flags)
		dst = appendValuePlanes(dst, flags, p.X, p.Hi, p.XHi)
	}
	return dst
}

func (r *binReader) patches() ([]VarPatch, error) {
	n, err := r.count(maxBinVars, "patch")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]VarPatch, n)
	for i := range out {
		p := &out[i]
		if p.Index, err = r.int(); err != nil {
			return nil, err
		}
		if p.Value, err = r.uvarint(); err != nil {
			return nil, err
		}
		if r.ver < 2 {
			if p.Unknown, err = r.bool(); err != nil {
				return nil, err
			}
			continue
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		p.Unknown = flags&varUnknown != 0
		if p.X, p.Hi, p.XHi, err = r.valuePlanes(flags); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *binReader) delta() (*Event, error) {
	ev := &Event{Type: "stop", Delta: &StopDelta{}}
	d := ev.Delta
	var err error
	if ev.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	emit, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ev.Emit = int64(emit)
	if d.Time, err = r.uvarint(); err != nil {
		return nil, err
	}
	if d.File, err = r.string(); err != nil {
		return nil, err
	}
	if d.Line, err = r.int(); err != nil {
		return nil, err
	}
	if d.Col, err = r.int(); err != nil {
		return nil, err
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	d.Reverse = flags&1 != 0
	d.StepStop = flags&2 != 0
	if d.BaseSeq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if d.Watch, err = r.watch(); err != nil {
		return nil, err
	}
	n, err := r.count(maxBinThreads, "thread delta")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var td ThreadDelta
		if td.Base, err = r.int(); err != nil {
			return nil, err
		}
		if td.Base == 0 {
			th, err := r.thread()
			if err != nil {
				return nil, err
			}
			td.Full = &th
		} else {
			if td.Locals, err = r.patches(); err != nil {
				return nil, err
			}
			if td.Generator, err = r.patches(); err != nil {
				return nil, err
			}
		}
		d.Threads = append(d.Threads, td)
	}
	return ev, nil
}

// --- generic events (welcome/attach/goodbye/control/resume) ---

func appendGeneric(dst []byte, ev *Event) []byte {
	dst = appendString(dst, ev.Type)
	dst = appendUvarint(dst, ev.Seq)
	dst = appendUvarint(dst, uint64(ev.Emit))
	dst = appendUvarint(dst, uint64(ev.SessionID))
	dst = appendUvarint(dst, uint64(ev.Controller))
	dst = appendUvarint(dst, uint64(ev.Peers))
	dst = appendUvarint(dst, uint64(ev.Files))
	dst = appendString(dst, ev.Role)
	dst = appendString(dst, ev.Reason)
	dst = appendString(dst, ev.Top)
	dst = appendString(dst, ev.Mode)
	dst = appendString(dst, ev.Command)
	dst = appendBool(dst, ev.Reverse)
	// Version 3: hub routing fields.
	dst = appendString(dst, ev.Runtime)
	return appendUvarint(dst, uint64(ev.Runtimes))
}

func (r *binReader) generic() (*Event, error) {
	ev := &Event{}
	var err error
	if ev.Type, err = r.string(); err != nil {
		return nil, err
	}
	if ev.Type == "" || ev.Type == "stop" {
		return nil, fmt.Errorf("proto: generic frame with type %q", ev.Type)
	}
	if ev.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	emit, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ev.Emit = int64(emit)
	sid, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ev.SessionID = int64(sid)
	ctl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ev.Controller = int64(ctl)
	if ev.Peers, err = r.int(); err != nil {
		return nil, err
	}
	if ev.Files, err = r.int(); err != nil {
		return nil, err
	}
	if ev.Role, err = r.string(); err != nil {
		return nil, err
	}
	if ev.Reason, err = r.string(); err != nil {
		return nil, err
	}
	if ev.Top, err = r.string(); err != nil {
		return nil, err
	}
	if ev.Mode, err = r.string(); err != nil {
		return nil, err
	}
	if ev.Command, err = r.string(); err != nil {
		return nil, err
	}
	if ev.Reverse, err = r.bool(); err != nil {
		return nil, err
	}
	if r.ver < 3 {
		return ev, nil
	}
	if ev.Runtime, err = r.string(); err != nil {
		return nil, err
	}
	ev.Runtimes, err = r.int()
	return ev, err
}

// EncodeBinaryEvent encodes one event as a binary frame. The event
// kind is chosen from the payload: Stop → kindStop, Delta → kindDelta,
// anything else → kindGeneric.
func EncodeBinaryEvent(ev *Event) []byte {
	// Typical stop frames are a few hundred bytes; start with room.
	dst := make([]byte, 0, 256)
	dst = append(dst, binMagic, binVersion)
	switch {
	case ev.Stop != nil:
		dst = append(dst, kindStop)
		return appendStop(dst, ev)
	case ev.Delta != nil:
		dst = append(dst, kindDelta)
		return appendDelta(dst, ev)
	default:
		dst = append(dst, kindGeneric)
		return appendGeneric(dst, ev)
	}
}

// DecodeBinaryFrame parses one binary frame back into an event. Every
// count and length is validated against the remaining frame before any
// allocation it sizes; trailing garbage is rejected.
func DecodeBinaryFrame(frame []byte) (*Event, error) {
	if len(frame) < 3 {
		return nil, fmt.Errorf("proto: binary frame of %d bytes is too short", len(frame))
	}
	if frame[0] != binMagic {
		return nil, fmt.Errorf("proto: bad binary frame magic %#x", frame[0])
	}
	if frame[1] < 1 || frame[1] > binVersion {
		return nil, fmt.Errorf("proto: unsupported binary frame version %d", frame[1])
	}
	r := &binReader{buf: frame, off: 3, ver: frame[1]}
	var ev *Event
	var err error
	switch frame[2] {
	case kindStop:
		ev, err = r.stop()
	case kindDelta:
		ev, err = r.delta()
	case kindGeneric:
		ev, err = r.generic()
	default:
		return nil, fmt.Errorf("proto: unknown binary frame kind %d", frame[2])
	}
	if err != nil {
		return nil, err
	}
	if r.off != len(frame) {
		return nil, fmt.Errorf("proto: %d trailing bytes after binary frame", len(frame)-r.off)
	}
	return ev, nil
}
