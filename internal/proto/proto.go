// Package proto defines the JSON debugging protocol spoken between the
// hgdb runtime and debugger clients over WebSocket — the paper's
// "RPC-based debugging protocol similar to the gdb remote protocol"
// (§3.5). Every request carries a token echoed in its response; stop
// events arrive unsolicited whenever a breakpoint hits.
package proto

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/val"
)

// Request is a client → runtime message.
type Request struct {
	// Type selects the operation: "breakpoint", "command", "evaluate",
	// "get-value", "set-value", "info", "watch", "session", "ack",
	// "runtimes" (hub control sessions only).
	Type string `json:"type"`
	// Token is echoed in the response for matching. "ack" requests are
	// fire-and-forget: they carry no token and get no response.
	Token string `json:"token,omitempty"`

	// breakpoint fields (Action: add | remove | clear | list);
	// session fields (Action: list | release | claim)
	Action    string `json:"action,omitempty"`
	Filename  string `json:"filename,omitempty"`
	Line      int    `json:"line,omitempty"`
	Condition string `json:"condition,omitempty"`

	// command field: continue | step | reverse-step | detach | pause
	Command string `json:"command,omitempty"`

	// evaluate fields
	Instance   string `json:"instance,omitempty"`
	Expression string `json:"expression,omitempty"`

	// value fields
	Path  string `json:"path,omitempty"`
	Value uint64 `json:"value,omitempty"`

	// info field: files | lines | instances | status
	Topic string `json:"topic,omitempty"`

	// watch fields (Action: add | remove | list; Expression + Instance
	// for add, WatchID for remove)
	WatchID int `json:"watch_id,omitempty"`

	// AckSeq acknowledges receipt of the stop event broadcast with that
	// sequence number ("ack" requests). The server may encode later
	// stops as deltas against the acknowledged snapshot; AckSeq 0
	// resets the session to full frames (client-requested resync).
	AckSeq uint64 `json:"ack_seq,omitempty"`

	// runtimes fields (Action: list | launch | evict), valid on hub
	// control sessions. Runtime names the target runtime for evict;
	// Spec describes the runtime to launch.
	Runtime string       `json:"runtime,omitempty"`
	Spec    *RuntimeSpec `json:"spec,omitempty"`
}

// RuntimeSpec describes one runtime for the hub's registry to launch:
// either a live simulation of a packaged design or a replay of a
// recorded trace (raw VCD text or a pre-indexed store file).
type RuntimeSpec struct {
	// Name is the requested runtime id; the hub generates one when
	// empty and rejects a launch whose name is already registered.
	Name string `json:"name,omitempty"`
	// Kind selects the backend: "sim" (live simulation) or "replay".
	Kind string `json:"kind"`
	// Design names the packaged design for sim runtimes ("counter",
	// "fpu"); Debug selects the unoptimized build.
	Design string `json:"design,omitempty"`
	Debug  bool   `json:"debug,omitempty"`
	// VCD/Symtab locate the trace and symbol table for replay runtimes.
	// The symbol table loads through the hub's shared content-keyed
	// cache, so N replays of the same design parse it once.
	VCD    string `json:"vcd,omitempty"`
	Symtab string `json:"symtab,omitempty"`
}

// Runtime lifecycle states, surfaced in RuntimeInfo listings. A
// runtime is launching while its backend is being built, serving once
// its session manager accepts attaches, draining from the moment an
// evict begins until its sessions have flushed their goodbyes, and
// dead once its simulation goroutine has exited and its resources
// (including shared symbol-table references) are released.
const (
	RuntimeLaunching = "launching"
	RuntimeServing   = "serving"
	RuntimeDraining  = "draining"
	RuntimeDead      = "dead"
)

// RuntimeInfo is the wire form of one registered runtime, returned by
// the "runtimes" request's "list" action and by "launch".
type RuntimeInfo struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`  // "sim" | "replay"
	State string `json:"state"` // launching | serving | draining | dead
	// Top/Mode mirror the runtime's welcome payload; Reverse reports
	// whether the backend supports reverse execution.
	Top     string `json:"top,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Reverse bool   `json:"reverse,omitempty"`
	// Source echoes where the runtime came from (design name or trace
	// path).
	Source string `json:"source,omitempty"`
	// Sessions is the number of attached debugger sessions; Controller
	// is the session currently holding control (0 = vacant).
	Sessions   int   `json:"sessions"`
	Controller int64 `json:"controller,omitempty"`
	// UptimeSec is how long the runtime has been registered.
	UptimeSec float64 `json:"uptime_sec,omitempty"`
	// SymtabShared reports that the runtime's symbol table came out of
	// the hub's shared cache as a hit (another runtime had already
	// loaded identical content).
	SymtabShared bool `json:"symtab_shared,omitempty"`
}

// Response is a runtime → client reply.
type Response struct {
	Type   string          `json:"type"` // always "response"
	Token  string          `json:"token,omitempty"`
	Status string          `json:"status"` // ok | error
	Reason string          `json:"reason,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// Event is an unsolicited runtime → client message. Broadcast kinds:
//
//   - "welcome": sent to a session right after it attaches; carries its
//     id and role plus the design summary.
//   - "attach"/"goodbye": a peer session joined/left (SessionID is the
//     peer; Controller reflects any resulting handoff).
//   - "control": control of the runtime moved to session Controller
//     (Reason: "release" | "disconnect" | "claim" | "shutdown").
//   - "stop": a breakpoint/watch/step stop; delivered to every session.
//     Carries either the full Stop payload or a Delta against the
//     session's last-acknowledged stop (sessions that negotiated delta
//     frames at attach).
//   - "resume": the simulation left a stop (Command says how). Together
//     with "stop" these form the sim-state event class: a session's
//     queue holds at most one pending sim-state event — a newer one
//     supersedes it (coalescing), so a slow observer always sees the
//     latest coherent state rather than an arbitrary surviving prefix.
//   - "hub-welcome": sent to a hub control session right after it
//     attaches to a hub endpoint without naming a runtime; carries the
//     registry size. The session then speaks the "runtimes"
//     list/launch/evict request family.
//   - "disconnect": synthesized locally by the client library when the
//     connection dies — it never travels on the wire.
//
// Seq orders broadcasts: every session observes the same subsequence
// of an identical, strictly increasing sequence (a slow session may
// coalesce or drop events under backpressure, never reorder them).
type Event struct {
	Type string          `json:"type"`
	Seq  uint64          `json:"seq,omitempty"`
	Stop *core.StopEvent `json:"stop,omitempty"`
	// Delta replaces Stop on sessions that negotiated delta frames: the
	// stop is encoded against the session's last-acked snapshot (see
	// StopDelta). Exactly one of Stop/Delta is set on a stop event.
	Delta *StopDelta `json:"delta,omitempty"`
	// Emit is the server wall clock (UnixNano) when the broadcast was
	// encoded — stamped once per broadcast, shared by every recipient.
	// Load harnesses in the same process use it to measure delivery
	// latency; it is advisory otherwise (clocks may differ).
	Emit int64 `json:"emit,omitempty"`
	// Command reports how the simulation resumed ("resume" events):
	// continue | step | reverse-step | detach.
	Command string `json:"command,omitempty"`
	// Welcome payload
	Top   string `json:"top,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Files int    `json:"files,omitempty"`
	// Reverse reports (in the welcome event) whether the backend can
	// travel backwards in time — true on replay, false on a live
	// simulation. Clients use it to gate reverse-execution UI (the DAP
	// adapter's supportsStepBack capability).
	Reverse bool `json:"reverse,omitempty"`
	// Session payload
	SessionID  int64  `json:"session,omitempty"`
	Role       string `json:"role,omitempty"`
	Controller int64  `json:"controller,omitempty"`
	Peers      int    `json:"peers,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// Runtime is the registry id of the runtime this session is
	// attached to — stamped on welcome and goodbye events by servers
	// running behind a hub, so a client can verify its attach was
	// routed to the runtime it asked for. Empty on standalone servers.
	Runtime string `json:"runtime,omitempty"`
	// Runtimes is the registry size ("hub-welcome" events).
	Runtimes int `json:"runtimes,omitempty"`
}

// Session roles. Exactly one attached session holds control (may
// resume the simulation and mutate state); every other session is an
// observer with read-only access.
const (
	RoleController = "controller"
	RoleObserver   = "observer"
)

// SessionInfo is the wire form of one attached session, returned by
// the "session" request's "list" action.
type SessionInfo struct {
	ID   int64  `json:"id"`
	Role string `json:"role"`
	// Dropped counts broadcast events discarded for this session under
	// backpressure (its outbound queue was full and nothing could be
	// coalesced).
	Dropped uint64 `json:"dropped,omitempty"`
	// Coalesced counts queued events superseded by a newer event of the
	// same class before the session's writer got to them.
	Coalesced uint64 `json:"coalesced,omitempty"`
	// Encoding is the negotiated wire encoding: "json" or "binary".
	Encoding string `json:"encoding,omitempty"`
	// Delta reports whether the session negotiated delta stop frames.
	Delta bool `json:"delta,omitempty"`
	// DeltaFrames/FullFrames count how the session's stop broadcasts
	// were encoded; BytesSent is the payload bytes its writer put on
	// the wire.
	DeltaFrames uint64 `json:"delta_frames,omitempty"`
	FullFrames  uint64 `json:"full_frames,omitempty"`
	BytesSent   uint64 `json:"bytes_sent,omitempty"`
}

// knownRequestTypes is the closed set DecodeRequest accepts.
var knownRequestTypes = map[string]bool{
	"breakpoint": true, "command": true, "evaluate": true,
	"get-value": true, "set-value": true, "info": true,
	"watch": true, "session": true, "ack": true, "runtimes": true,
}

// DecodeRequest parses and validates one wire request. The type must
// be present and known; everything else is operation-specific and left
// to the dispatcher.
func DecodeRequest(raw []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, fmt.Errorf("proto: bad request: %w", err)
	}
	if req.Type == "" {
		return nil, fmt.Errorf("proto: request missing type")
	}
	if !knownRequestTypes[req.Type] {
		return nil, fmt.Errorf("proto: unknown request type %q", req.Type)
	}
	return &req, nil
}

// OK builds a success response with a JSON payload.
func OK(token string, payload any) (*Response, error) {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	return &Response{Type: "response", Token: token, Status: "ok", Data: raw}, nil
}

// Error builds an error response.
func Error(token, format string, args ...any) *Response {
	return &Response{
		Type:   "response",
		Token:  token,
		Status: "error",
		Reason: fmt.Sprintf(format, args...),
	}
}

// ParseCommand converts the wire command to a core.Command.
func ParseCommand(s string) (core.Command, error) {
	switch s {
	case "continue":
		return core.CmdContinue, nil
	case "step":
		return core.CmdStep, nil
	case "reverse-step":
		return core.CmdReverseStep, nil
	case "detach":
		return core.CmdDetach, nil
	}
	return 0, fmt.Errorf("proto: unknown command %q", s)
}

// CommandString is the inverse of ParseCommand, used to stamp "resume"
// broadcasts with the command that resumed the simulation.
func CommandString(cmd core.Command) string {
	switch cmd {
	case core.CmdContinue:
		return "continue"
	case core.CmdStep:
		return "step"
	case core.CmdReverseStep:
		return "reverse-step"
	case core.CmdDetach:
		return "detach"
	}
	return "continue"
}

// BreakpointInfo is the wire form of an armed breakpoint.
type BreakpointInfo struct {
	ID        int64  `json:"id"`
	Filename  string `json:"filename"`
	Line      int    `json:"line"`
	Instance  string `json:"instance"`
	Enable    string `json:"enable,omitempty"`
	EnableSrc string `json:"enable_src,omitempty"`
}

// ValueInfo is the wire form of an evaluated value. Time reports the
// simulation time the value was captured at — for an observer reading
// mid-run, that is the clock edge the query executed on. Display
// carries a rendered Verilog-style literal ("8'b1x0z", "128'hdead…")
// when the value has x/z bits or exceeds 64 bits — Value then holds
// only the low word's known bits; it is empty for plain two-state
// values, whose frames are unchanged from the two-state protocol.
type ValueInfo struct {
	Value   uint64 `json:"value"`
	Width   int    `json:"width"`
	Time    uint64 `json:"time,omitempty"`
	Display string `json:"display,omitempty"`
}

// ValueInfoOf renders a four-state value for the wire: the low word's
// known bits plus, when the uint64 cannot carry the value faithfully,
// the rendered literal.
func ValueInfoOf(b val.Bits, time uint64) ValueInfo {
	vi := ValueInfo{Value: b.V0, Width: b.Width, Time: time}
	if b.HasX() || b.IsWide() {
		vi.Display = b.String()
	}
	return vi
}
