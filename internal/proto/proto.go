// Package proto defines the JSON debugging protocol spoken between the
// hgdb runtime and debugger clients over WebSocket — the paper's
// "RPC-based debugging protocol similar to the gdb remote protocol"
// (§3.5). Every request carries a token echoed in its response; stop
// events arrive unsolicited whenever a breakpoint hits.
package proto

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// Request is a client → runtime message.
type Request struct {
	// Type selects the operation: "breakpoint", "command", "evaluate",
	// "get-value", "set-value", "info".
	Type string `json:"type"`
	// Token is echoed in the response for matching.
	Token string `json:"token,omitempty"`

	// breakpoint fields
	Action    string `json:"action,omitempty"` // add | remove | clear | list
	Filename  string `json:"filename,omitempty"`
	Line      int    `json:"line,omitempty"`
	Condition string `json:"condition,omitempty"`

	// command field: continue | step | reverse-step | detach | pause
	Command string `json:"command,omitempty"`

	// evaluate fields
	Instance   string `json:"instance,omitempty"`
	Expression string `json:"expression,omitempty"`

	// value fields
	Path  string `json:"path,omitempty"`
	Value uint64 `json:"value,omitempty"`

	// info field: files | lines | instances | status
	Topic string `json:"topic,omitempty"`

	// watch fields (Action: add | remove | list; Expression + Instance
	// for add, WatchID for remove)
	WatchID int `json:"watch_id,omitempty"`
}

// Response is a runtime → client reply.
type Response struct {
	Type   string          `json:"type"` // always "response"
	Token  string          `json:"token,omitempty"`
	Status string          `json:"status"` // ok | error
	Reason string          `json:"reason,omitempty"`
	Data   json.RawMessage `json:"data,omitempty"`
}

// Event is an unsolicited runtime → client message.
type Event struct {
	Type string          `json:"type"` // "stop" | "welcome" | "goodbye"
	Stop *core.StopEvent `json:"stop,omitempty"`
	// Welcome payload
	Top   string `json:"top,omitempty"`
	Mode  string `json:"mode,omitempty"`
	Files int    `json:"files,omitempty"`
}

// OK builds a success response with a JSON payload.
func OK(token string, payload any) (*Response, error) {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	return &Response{Type: "response", Token: token, Status: "ok", Data: raw}, nil
}

// Error builds an error response.
func Error(token, format string, args ...any) *Response {
	return &Response{
		Type:   "response",
		Token:  token,
		Status: "error",
		Reason: fmt.Sprintf(format, args...),
	}
}

// ParseCommand converts the wire command to a core.Command.
func ParseCommand(s string) (core.Command, error) {
	switch s {
	case "continue":
		return core.CmdContinue, nil
	case "step":
		return core.CmdStep, nil
	case "reverse-step":
		return core.CmdReverseStep, nil
	case "detach":
		return core.CmdDetach, nil
	}
	return 0, fmt.Errorf("proto: unknown command %q", s)
}

// BreakpointInfo is the wire form of an armed breakpoint.
type BreakpointInfo struct {
	ID        int64  `json:"id"`
	Filename  string `json:"filename"`
	Line      int    `json:"line"`
	Instance  string `json:"instance"`
	Enable    string `json:"enable,omitempty"`
	EnableSrc string `json:"enable_src,omitempty"`
}

// ValueInfo is the wire form of an evaluated value.
type ValueInfo struct {
	Value uint64 `json:"value"`
	Width int    `json:"width"`
}
