package vcd

// This file is the persistent form of the block store: a versioned
// on-disk format that lets a pre-indexed trace open in O(header) —
// no VCD text scan, no block decode — and be shared read-only by many
// replay engines at once. The layout (see DESIGN.md "Trace index &
// checkpointing"):
//
//	header      fixed 64 bytes: magic, version, counts, section table offset
//	sections    located by a section table of (id, offset, length) entries:
//	  blockDir  per block: uvarint(window delta), uvarint(length), uvarint(crc32)
//	  signals   per signal: name ref, width, change count, sparse block index
//	  strings   deduplicated string table (signal paths, scope names)
//	  hier      instance tree in pre-order, names by string-table ref
//	  blocks    concatenated block record streams (the ParseStore encoding)
//
// Sections are located by the table, so writers are free to choose
// layout order: WriteStore (whole store in memory, io.Writer) puts
// metadata first; IndexFile (streaming ingest) puts block data first
// so blocks can be written while the VCD text is still being scanned,
// and backpatches the header.
//
// OpenStore reads the header and metadata sections only. Block record
// streams stay on disk and load on demand through Store.blockData into
// a byte-bounded LRU; each load is CRC-checked and stream-validated
// before it is published, so a corrupt file poisons the store (Err)
// instead of fabricating change records.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/rtl"
)

const (
	// StoreVersion is the on-disk format version written by this
	// package. Version 2 added the four-state value planes: block
	// records carry an optional unknown-bit word stream and wide
	// (>64-bit) value words, signal rows carry packed last-value
	// planes, and the header records x/z statistics. OpenStore still
	// reads version-1 files (two-state, values masked to 64 bits at
	// index time) and rejects versions newer than this with a clear
	// error rather than misdecoding them.
	StoreVersion = 2
	// storeVersionV1 is the legacy two-state format.
	storeVersionV1 = 1

	headerSize  = 64
	maxSections = 64
	// maxHierDepth bounds scope nesting when decoding a hostile
	// hierarchy section (real designs nest a few dozen deep).
	maxHierDepth = 1024
	// maxSignalWidth bounds declared widths from hostile files.
	maxSignalWidth = 1 << 20

	secBlockDir = 1
	secSignals  = 2
	secStrings  = 3
	secHier     = 4
	secBlocks   = 5

	// DefaultBlockCacheBytes bounds lazily loaded block bytes resident
	// for a disk-opened store.
	DefaultBlockCacheBytes = 64 << 20
	// DefaultTimelineBudget bounds resident materialized timelines
	// (see Store.SetTimelineBudget).
	DefaultTimelineBudget = 256 << 20
)

// storeMagic identifies a store file; the first 8 bytes of the format.
var storeMagic = [8]byte{'h', 'g', 'd', 'b', 's', 't', 'o', 'r'}

// ErrNotStore reports that the input does not start with the store
// magic — it is some other file (for example raw VCD text). Callers
// use it to fall back to ParseStore.
var ErrNotStore = errors.New("vcd: not a store file")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// dirEntry is one block directory row while writing.
type dirEntry struct {
	win    uint64
	length uint32
	crc    uint32
}

// --- encoding helpers ---

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// stringTable deduplicates strings at write time; refs are indices
// into the encoded table.
type stringTable struct {
	idx  map[string]uint64
	list []string
}

func newStringTable() *stringTable {
	return &stringTable{idx: map[string]uint64{}}
}

func (t *stringTable) ref(s string) uint64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := uint64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

func (t *stringTable) encode() []byte {
	b := putUvarint(nil, uint64(len(t.list)))
	for _, s := range t.list {
		b = putUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	return b
}

func encodeBlockDir(dir []dirEntry) []byte {
	var b []byte
	prev := uint64(0)
	for i, e := range dir {
		d := e.win
		if i > 0 {
			d = e.win - prev
		}
		prev = e.win
		b = putUvarint(b, d)
		b = putUvarint(b, uint64(e.length))
		b = putUvarint(b, uint64(e.crc))
	}
	return b
}

func encodeSignals(list []*StoreSignal, strs *stringTable) []byte {
	var b []byte
	for _, ts := range list {
		b = putUvarint(b, strs.ref(ts.Name))
		b = putUvarint(b, uint64(ts.Width))
		b = putUvarint(b, uint64(ts.n))
		b = putUvarint(b, uint64(len(ts.blkIdx)))
		prev := uint32(0)
		for i, bi := range ts.blkIdx {
			d := bi
			if i > 0 {
				d = bi - prev
			}
			prev = bi
			b = putUvarint(b, uint64(d))
		}
		// Last-value planes, one row of nw words per indexed block: an
		// x-plane presence flag, then the value words, then (only when
		// present) the x words. A fully two-state signal costs one flag
		// byte over the v1 encoding.
		if len(ts.blkIdx) > 0 {
			xflag := uint64(0)
			if ts.last.x != nil {
				xflag = 1
			}
			b = putUvarint(b, xflag)
			for _, v := range ts.last.v {
				b = putUvarint(b, v)
			}
			if xflag != 0 {
				for _, x := range ts.last.x {
					b = putUvarint(b, x)
				}
			}
		}
	}
	return b
}

func countHierNodes(n *rtl.InstanceNode) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countHierNodes(c)
	}
	return total
}

func encodeHierNode(b []byte, n *rtl.InstanceNode, strs *stringTable) []byte {
	b = putUvarint(b, strs.ref(n.Name))
	b = putUvarint(b, uint64(len(n.Signals)))
	for _, s := range n.Signals {
		b = putUvarint(b, strs.ref(s))
	}
	b = putUvarint(b, uint64(len(n.Children)))
	for _, c := range n.Children {
		b = encodeHierNode(b, c, strs)
	}
	return b
}

func encodeHier(root *rtl.InstanceNode, strs *stringTable) []byte {
	b := putUvarint(nil, uint64(countHierNodes(root)))
	if root != nil {
		b = encodeHierNode(b, root, strs)
	}
	return b
}

// crcBlocks computes per-block CRCs in parallel: block data dominates
// a large store, and checksumming it is the serialization hot spot.
func crcBlocks(blocks []storeBlock) []dirEntry {
	dir := make([]dirEntry, len(blocks))
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		for i := range blocks {
			dir[i] = dirEntry{
				win:    blocks[i].win,
				length: uint32(len(blocks[i].buf)),
				crc:    crc32.Checksum(blocks[i].buf, crcTable),
			}
		}
		return dir
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				dir[i] = dirEntry{
					win:    blocks[i].win,
					length: uint32(len(blocks[i].buf)),
					crc:    crc32.Checksum(blocks[i].buf, crcTable),
				}
			}
		}()
	}
	for i := range blocks {
		next <- i
	}
	close(next)
	wg.Wait()
	return dir
}

type sectionEntry struct {
	id  uint32
	off uint64
	len uint64
}

func encodeHeader(sectionCount int, sectionTableOff uint64, st *Store, numBlocks int) []byte {
	h := make([]byte, headerSize)
	copy(h[0:8], storeMagic[:])
	binary.LittleEndian.PutUint32(h[8:12], StoreVersion)
	binary.LittleEndian.PutUint32(h[12:16], uint32(sectionCount))
	binary.LittleEndian.PutUint64(h[16:24], sectionTableOff)
	binary.LittleEndian.PutUint64(h[24:32], st.blockSize)
	binary.LittleEndian.PutUint64(h[32:40], st.MaxTime)
	binary.LittleEndian.PutUint32(h[40:44], uint32(len(st.list)))
	binary.LittleEndian.PutUint32(h[44:48], uint32(numBlocks))
	binary.LittleEndian.PutUint64(h[48:56], uint64(st.changes))
	binary.LittleEndian.PutUint32(h[56:60], uint32(st.Stats.XZChanges))
	binary.LittleEndian.PutUint32(h[60:64], uint32(st.Stats.MaxWidth))
	return h
}

func encodeSectionTable(secs []sectionEntry) []byte {
	b := make([]byte, 0, len(secs)*20)
	var tmp [20]byte
	for _, s := range secs {
		binary.LittleEndian.PutUint32(tmp[0:4], s.id)
		binary.LittleEndian.PutUint64(tmp[4:12], s.off)
		binary.LittleEndian.PutUint64(tmp[12:20], s.len)
		b = append(b, tmp[:]...)
	}
	return b
}

// WriteStore serializes a parsed store to w in the on-disk format.
// Layout: header, section table, metadata sections, then block data —
// everything is known up front, so a plain sequential writer works
// (no seeking). Per-block CRCs are computed in parallel.
func WriteStore(w io.Writer, st *Store) error {
	if st.src != nil {
		return fmt.Errorf("vcd: WriteStore: store is already disk-backed")
	}
	dir := crcBlocks(st.blocks)
	strs := newStringTable()
	sigB := encodeSignals(st.list, strs)
	hierB := encodeHier(st.Hierarchy, strs)
	strB := strs.encode()
	dirB := encodeBlockDir(dir)

	blockBytes := uint64(0)
	for i := range st.blocks {
		blockBytes += uint64(len(st.blocks[i].buf))
	}
	secs := make([]sectionEntry, 0, 5)
	off := uint64(headerSize + 5*20)
	add := func(id uint32, n uint64) {
		secs = append(secs, sectionEntry{id: id, off: off, len: n})
		off += n
	}
	add(secBlockDir, uint64(len(dirB)))
	add(secSignals, uint64(len(sigB)))
	add(secStrings, uint64(len(strB)))
	add(secHier, uint64(len(hierB)))
	add(secBlocks, blockBytes)

	for _, chunk := range [][]byte{
		encodeHeader(len(secs), headerSize, st, len(st.blocks)),
		encodeSectionTable(secs),
		dirB, sigB, strB, hierB,
	} {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
	}
	for i := range st.blocks {
		if _, err := w.Write(st.blocks[i].buf); err != nil {
			return err
		}
	}
	return nil
}

// IndexStats summarizes one IndexFile run.
type IndexStats struct {
	Signals int
	Blocks  int
	Changes int
	MaxTime uint64
	// Bytes is the size of the written store file.
	Bytes int64
	Parse ParseStats
}

// IndexFile parses the VCD trace at vcdPath and writes its block store
// to storePath in one streaming pass: completed blocks flow through a
// pipeline — CRC workers checksum them in parallel while a writer
// goroutine appends them to the file in slot order — so block data is
// being written to disk while the text scan is still running and peak
// memory stays at the sparse index plus the pipeline window, not the
// whole store. On error the partial store file is removed.
func IndexFile(vcdPath, storePath string, opts StoreOptions) (*IndexStats, error) {
	in, err := os.Open(vcdPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	out, err := os.Create(storePath)
	if err != nil {
		return nil, err
	}
	stats, err := indexStream(in, out)(opts)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(storePath)
		return nil, err
	}
	return stats, nil
}

// indexStream runs the streaming ingest pipeline from rd into out.
// Returned as a closure so IndexFile's error/cleanup handling stays
// linear.
func indexStream(rd io.Reader, out *os.File) func(StoreOptions) (*IndexStats, error) {
	return func(opts StoreOptions) (*IndexStats, error) {
		bs := opts.BlockSize
		if bs == 0 {
			bs = DefaultBlockSize
		}

		type job struct {
			slot int
			win  uint64
			buf  []byte
			crc  uint32
		}
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		if workers < 1 {
			workers = 1
		}
		jobs := make(chan job, 2*workers)
		done := make(chan job, 2*workers)

		// CRC workers: checksum completed blocks in parallel with the
		// scan and the writer.
		var crcWG sync.WaitGroup
		for w := 0; w < workers; w++ {
			crcWG.Add(1)
			go func() {
				defer crcWG.Done()
				for j := range jobs {
					j.crc = crc32.Checksum(j.buf, crcTable)
					done <- j
				}
			}()
		}

		// Writer: receives checksummed blocks in arbitrary completion
		// order, writes them to the file in slot order starting right
		// after the header, and builds the directory.
		var (
			writerWG  sync.WaitGroup
			dir       []dirEntry
			writeErr  error
			dataBytes uint64
		)
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			pending := map[int]job{}
			next := 0
			offset := int64(headerSize)
			for j := range done {
				pending[j.slot] = j
				for {
					p, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					if writeErr == nil {
						if _, err := out.WriteAt(p.buf, offset); err != nil {
							writeErr = err
						}
					}
					offset += int64(len(p.buf))
					dataBytes += uint64(len(p.buf))
					dir = append(dir, dirEntry{win: p.win, length: uint32(len(p.buf)), crc: p.crc})
					next++
				}
			}
		}()

		g := newStoreIngest(bs, func(slot int, blk storeBlock) {
			jobs <- job{slot: slot, win: blk.win, buf: blk.buf}
		})
		var h hierBuilder
		maxTime, pstats, scanErr := scanVCD(rd, &h, g.events())
		if scanErr == nil {
			g.finish()
		}
		close(jobs)
		crcWG.Wait()
		close(done)
		writerWG.Wait()
		if scanErr != nil {
			return nil, scanErr
		}
		if writeErr != nil {
			return nil, writeErr
		}

		st := g.st
		st.MaxTime = maxTime
		st.Hierarchy = h.root
		st.Stats = pstats

		// Metadata sections follow the block data; the section table
		// follows them; the header is backpatched last.
		strs := newStringTable()
		sigB := encodeSignals(st.list, strs)
		hierB := encodeHier(st.Hierarchy, strs)
		strB := strs.encode()
		dirB := encodeBlockDir(dir)
		off := uint64(headerSize) + dataBytes
		secs := []sectionEntry{{id: secBlocks, off: headerSize, len: dataBytes}}
		for _, sec := range []struct {
			id uint32
			b  []byte
		}{{secBlockDir, dirB}, {secSignals, sigB}, {secStrings, strB}, {secHier, hierB}} {
			if _, err := out.WriteAt(sec.b, int64(off)); err != nil {
				return nil, err
			}
			secs = append(secs, sectionEntry{id: sec.id, off: off, len: uint64(len(sec.b))})
			off += uint64(len(sec.b))
		}
		tableOff := off
		tableB := encodeSectionTable(secs)
		if _, err := out.WriteAt(tableB, int64(tableOff)); err != nil {
			return nil, err
		}
		if _, err := out.WriteAt(encodeHeader(len(secs), tableOff, st, len(dir)), 0); err != nil {
			return nil, err
		}
		return &IndexStats{
			Signals: len(st.list),
			Blocks:  len(dir),
			Changes: st.changes,
			MaxTime: maxTime,
			Bytes:   int64(tableOff) + int64(len(tableB)),
			Parse:   pstats,
		}, nil
	}
}

// --- opening ---

// OpenOptions configures OpenStore.
type OpenOptions struct {
	// BlockCacheBytes bounds resident lazily loaded block bytes (LRU;
	// 0 = DefaultBlockCacheBytes).
	BlockCacheBytes int
}

// byteReader decodes a metadata section with full bounds checking;
// every read failure is sticky.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("vcd: store: bad varint at section byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) str(n uint64) string {
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = fmt.Errorf("vcd: store: string of %d bytes overruns section", n)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

// OpenStore opens a store serialized by WriteStore or IndexFile. Only
// the header and metadata sections are read — O(header + index), never
// the block data, which loads lazily through r with CRC verification.
// The format is treated as hostile input: every count is bounded
// against size before allocation and every reference is validated.
func OpenStore(r io.ReaderAt, size int64, opts OpenOptions) (*Store, error) {
	if size < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is smaller than the header", ErrNotStore, size)
	}
	h := make([]byte, headerSize)
	if _, err := r.ReadAt(h, 0); err != nil {
		return nil, err
	}
	if [8]byte(h[0:8]) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrNotStore)
	}
	version := binary.LittleEndian.Uint32(h[8:12])
	switch {
	case version == storeVersionV1 || version == StoreVersion:
		// v1 (legacy two-state) opens read-only through the v1 record
		// decoder; v2 is current.
	case version > StoreVersion:
		return nil, fmt.Errorf("vcd: store version %d was created by a newer hgdb; this build reads up to version %d — re-index the trace or upgrade", version, StoreVersion)
	default:
		return nil, fmt.Errorf("vcd: store version %d not supported (want %d or %d)", version, storeVersionV1, StoreVersion)
	}
	sectionCount := binary.LittleEndian.Uint32(h[12:16])
	tableOff := binary.LittleEndian.Uint64(h[16:24])
	blockSize := binary.LittleEndian.Uint64(h[24:32])
	maxTime := binary.LittleEndian.Uint64(h[32:40])
	numSignals := binary.LittleEndian.Uint32(h[40:44])
	numBlocks := binary.LittleEndian.Uint32(h[44:48])
	changes := binary.LittleEndian.Uint64(h[48:56])
	// v2 header: x/z change count at 56, widest literal at 60. The v1
	// header stored its masked-wide-change count at 56; a v1 store holds
	// no x/z by construction, so both stats read as zero there (MaxWidth
	// is reconstructed from the declared signal widths below).
	var xz, maxWidth uint32
	if version >= StoreVersion {
		xz = binary.LittleEndian.Uint32(h[56:60])
		maxWidth = binary.LittleEndian.Uint32(h[60:64])
	}
	if blockSize == 0 {
		return nil, fmt.Errorf("vcd: store: zero block size")
	}
	if sectionCount == 0 || sectionCount > maxSections {
		return nil, fmt.Errorf("vcd: store: implausible section count %d", sectionCount)
	}
	if tableOff > uint64(size) || uint64(sectionCount)*20 > uint64(size)-tableOff {
		return nil, fmt.Errorf("vcd: store: section table out of range")
	}
	tableB := make([]byte, sectionCount*20)
	if _, err := r.ReadAt(tableB, int64(tableOff)); err != nil {
		return nil, fmt.Errorf("vcd: store: read section table: %w", err)
	}
	sections := map[uint32]sectionEntry{}
	for i := uint32(0); i < sectionCount; i++ {
		e := sectionEntry{
			id:  binary.LittleEndian.Uint32(tableB[i*20:]),
			off: binary.LittleEndian.Uint64(tableB[i*20+4:]),
			len: binary.LittleEndian.Uint64(tableB[i*20+12:]),
		}
		if e.off > uint64(size) || e.len > uint64(size)-e.off {
			return nil, fmt.Errorf("vcd: store: section %d out of range", e.id)
		}
		sections[e.id] = e
	}
	need := func(id uint32) (sectionEntry, []byte, error) {
		e, ok := sections[id]
		if !ok {
			return e, nil, fmt.Errorf("vcd: store: missing section %d", id)
		}
		b := make([]byte, e.len)
		if _, err := r.ReadAt(b, int64(e.off)); err != nil {
			return e, nil, fmt.Errorf("vcd: store: read section %d: %w", id, err)
		}
		return e, b, nil
	}
	blocksSec, ok := sections[secBlocks]
	if !ok {
		return nil, fmt.Errorf("vcd: store: missing section %d", secBlocks)
	}
	// Every record is at least 3 bytes, every directory entry and
	// signal row at least 3 and 4: reject counts the data cannot hold
	// before allocating for them.
	dirSec, dirB, err := need(secBlockDir)
	if err != nil {
		return nil, err
	}
	if uint64(numBlocks)*3 > dirSec.len {
		return nil, fmt.Errorf("vcd: store: %d blocks cannot fit a %d-byte directory", numBlocks, dirSec.len)
	}
	sigSec, sigB, err := need(secSignals)
	if err != nil {
		return nil, err
	}
	if uint64(numSignals)*4 > sigSec.len {
		return nil, fmt.Errorf("vcd: store: %d signals cannot fit a %d-byte signal section", numSignals, sigSec.len)
	}
	if changes*3 > blocksSec.len {
		return nil, fmt.Errorf("vcd: store: %d changes cannot fit %d block-data bytes", changes, blocksSec.len)
	}
	_, strB, err := need(secStrings)
	if err != nil {
		return nil, err
	}
	_, hierB, err := need(secHier)
	if err != nil {
		return nil, err
	}

	// Strings.
	sr := &byteReader{b: strB}
	nstr := sr.uvarint()
	if nstr > uint64(sr.remaining()) {
		return nil, fmt.Errorf("vcd: store: %d strings cannot fit the string table", nstr)
	}
	strs := make([]string, 0, nstr)
	for i := uint64(0); i < nstr; i++ {
		strs = append(strs, sr.str(sr.uvarint()))
	}
	if sr.err != nil {
		return nil, sr.err
	}

	cacheBytes := opts.BlockCacheBytes
	if cacheBytes <= 0 {
		cacheBytes = DefaultBlockCacheBytes
	}
	st := &Store{
		MaxTime:   maxTime,
		Stats:     ParseStats{XZChanges: int(xz), MaxWidth: int(maxWidth)},
		blockSize: blockSize,
		sigs:      make(map[string]*StoreSignal, numSignals),
		changes:   int(changes),
		v1:        version == storeVersionV1,
		src:       r,
		cache:     newBlockCache(cacheBytes),
	}

	// Block directory: strictly increasing windows, cumulative offsets
	// bounded by the block-data section.
	dr := &byteReader{b: dirB}
	st.blocks = make([]storeBlock, 0, numBlocks)
	maxWin := maxTime / blockSize
	var win, dataOff uint64
	for i := uint32(0); i < numBlocks; i++ {
		d := dr.uvarint()
		length := dr.uvarint()
		crc := dr.uvarint()
		if dr.err != nil {
			return nil, dr.err
		}
		if i == 0 {
			win = d
		} else {
			if d == 0 {
				return nil, fmt.Errorf("vcd: store: duplicate block window at slot %d", i)
			}
			next := win + d
			if next < win {
				return nil, fmt.Errorf("vcd: store: block window overflow at slot %d", i)
			}
			win = next
		}
		if win > maxWin {
			return nil, fmt.Errorf("vcd: store: block window %d past max time %d", win, maxTime)
		}
		if length > uint64(blocksSec.len) || dataOff > blocksSec.len-length {
			return nil, fmt.Errorf("vcd: store: block %d data out of range", i)
		}
		if crc > uint64(^uint32(0)) {
			return nil, fmt.Errorf("vcd: store: block %d crc out of range", i)
		}
		st.blocks = append(st.blocks, storeBlock{
			win:    win,
			off:    int64(blocksSec.off + dataOff),
			length: uint32(length),
			crc:    uint32(crc),
		})
		dataOff += length
	}

	// Signals.
	gr := &byteReader{b: sigB}
	st.list = make([]*StoreSignal, 0, numSignals)
	for i := uint32(0); i < numSignals; i++ {
		nameRef := gr.uvarint()
		width := gr.uvarint()
		n := gr.uvarint()
		k := gr.uvarint()
		if gr.err != nil {
			return nil, gr.err
		}
		if nameRef >= uint64(len(strs)) {
			return nil, fmt.Errorf("vcd: store: signal %d: name ref %d out of range", i, nameRef)
		}
		if width > maxSignalWidth {
			return nil, fmt.Errorf("vcd: store: signal %d: implausible width %d", i, width)
		}
		if n > changes {
			return nil, fmt.Errorf("vcd: store: signal %d: %d changes exceeds the store total %d", i, n, changes)
		}
		if k > uint64(numBlocks) || k > n {
			return nil, fmt.Errorf("vcd: store: signal %d: sparse index of %d blocks is implausible", i, k)
		}
		ts := &StoreSignal{
			Name:  strs[nameRef],
			Width: int(width),
			store: st,
			index: int(i),
			n:     int(n),
		}
		nw := ts.nw()
		ts.last.nw = nw
		if k > 0 {
			ts.blkIdx = make([]uint32, 0, k)
			var prev uint32
			for j := uint64(0); j < k; j++ {
				d := gr.uvarint()
				var bi uint64
				if j == 0 {
					bi = d
				} else {
					if d == 0 {
						return nil, fmt.Errorf("vcd: store: signal %d: sparse index not increasing", i)
					}
					bi = uint64(prev) + d
				}
				if bi >= uint64(numBlocks) {
					return nil, fmt.Errorf("vcd: store: signal %d: block slot %d out of range", i, bi)
				}
				prev = uint32(bi)
				ts.blkIdx = append(ts.blkIdx, uint32(bi))
			}
			if st.v1 {
				// v1 row: one plain value word per indexed block.
				ts.last.v = make([]uint64, 0, k*uint64(nw))
				for j := uint64(0); j < k; j++ {
					w := gr.uvarint()
					ts.last.v = append(ts.last.v, w)
					for p := 1; p < nw; p++ {
						ts.last.v = append(ts.last.v, 0)
					}
				}
			} else {
				// v2 row: x-plane flag, k*nw value words, then (when the
				// flag is set) k*nw x words. Every word is at least one
				// byte, so the row count is bounded against the section
				// before allocation.
				xflag := gr.uvarint()
				if gr.err == nil && xflag > 1 {
					return nil, fmt.Errorf("vcd: store: signal %d: bad x-plane flag %d", i, xflag)
				}
				words := k * uint64(nw)
				if xflag != 0 {
					words *= 2
				}
				if words > uint64(gr.remaining())+1 {
					return nil, fmt.Errorf("vcd: store: signal %d: %d last-value words cannot fit the section", i, words)
				}
				ts.last.v = make([]uint64, 0, k*uint64(nw))
				for j := uint64(0); j < k*uint64(nw); j++ {
					ts.last.v = append(ts.last.v, gr.uvarint())
				}
				if xflag != 0 {
					ts.last.x = make([]uint64, 0, k*uint64(nw))
					for j := uint64(0); j < k*uint64(nw); j++ {
						ts.last.x = append(ts.last.x, gr.uvarint())
					}
				}
			}
			if gr.err != nil {
				return nil, gr.err
			}
		}
		st.list = append(st.list, ts)
		st.sigs[ts.Name] = ts
	}
	st.finalizeLayout()
	if st.v1 {
		// The v1 header had no width statistic; the widest declared
		// signal that actually changed is the faithful reconstruction.
		for _, ts := range st.list {
			if ts.n > 0 && ts.Width > st.Stats.MaxWidth {
				st.Stats.MaxWidth = ts.Width
			}
		}
	}

	// Hierarchy.
	hr := &byteReader{b: hierB}
	nNodes := hr.uvarint()
	if nNodes > uint64(hr.remaining())+1 {
		return nil, fmt.Errorf("vcd: store: %d hierarchy nodes cannot fit the section", nNodes)
	}
	if nNodes > 0 {
		budget := int(nNodes)
		root, err := decodeHierNode(hr, strs, "", 0, &budget)
		if err != nil {
			return nil, err
		}
		st.Hierarchy = root
	}
	if hr.err != nil {
		return nil, hr.err
	}
	return st, nil
}

// decodeHierNode rebuilds one instance subtree; paths derive from the
// scope nesting exactly as the text parser's hierBuilder builds them.
func decodeHierNode(r *byteReader, strs []string, parentPath string, depth int, budget *int) (*rtl.InstanceNode, error) {
	if depth > maxHierDepth {
		return nil, fmt.Errorf("vcd: store: hierarchy deeper than %d", maxHierDepth)
	}
	if *budget <= 0 {
		return nil, fmt.Errorf("vcd: store: hierarchy node count exceeds declared total")
	}
	*budget--
	nameRef := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nameRef >= uint64(len(strs)) {
		return nil, fmt.Errorf("vcd: store: hierarchy name ref %d out of range", nameRef)
	}
	node := &rtl.InstanceNode{Name: strs[nameRef]}
	if parentPath == "" {
		node.Path = node.Name
	} else {
		node.Path = parentPath + "." + node.Name
	}
	nSigs := r.uvarint()
	if nSigs > uint64(r.remaining())+1 {
		return nil, fmt.Errorf("vcd: store: hierarchy signal count overruns section")
	}
	for i := uint64(0); i < nSigs; i++ {
		ref := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		if ref >= uint64(len(strs)) {
			return nil, fmt.Errorf("vcd: store: hierarchy signal ref %d out of range", ref)
		}
		node.Signals = append(node.Signals, strs[ref])
	}
	nChildren := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	if nChildren > uint64(*budget) {
		return nil, fmt.Errorf("vcd: store: hierarchy child count exceeds declared total")
	}
	for i := uint64(0); i < nChildren; i++ {
		c, err := decodeHierNode(r, strs, node.Path, depth+1, budget)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, c)
	}
	return node, nil
}

// OpenStoreFile opens a store file from disk; the returned store owns
// the file handle (release with Close). If the file is not a store
// (for example raw VCD text), the error wraps ErrNotStore.
func OpenStoreFile(path string, opts OpenOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := OpenStore(f, fi.Size(), opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	st.closer = f
	return st, nil
}

// --- lazy block loads ---

// loadBlock fetches a disk store's block record stream: LRU cache hit,
// or a CRC-checked, stream-validated read from the backing file.
func (s *Store) loadBlock(slot int) []byte {
	if buf, ok := s.cache.get(slot); ok {
		return buf
	}
	b := &s.blocks[slot]
	if b.length == 0 {
		return nil
	}
	buf := make([]byte, b.length)
	if _, err := s.src.ReadAt(buf, b.off); err != nil {
		s.setErr(fmt.Errorf("vcd: block %d (window %d): read: %w", slot, b.win, err))
		return nil
	}
	if got := crc32.Checksum(buf, crcTable); got != b.crc {
		s.setErr(fmt.Errorf("vcd: block %d (window %d): crc mismatch (%08x, want %08x)", slot, b.win, got, b.crc))
		return nil
	}
	if err := s.validateBlockStream(slot, buf); err != nil {
		s.setErr(err)
		return nil
	}
	s.cache.put(slot, buf)
	return buf
}

// validateBlockStream fully decodes a freshly loaded block once,
// before publication: varints must be well-formed, signal indices in
// range, and record times inside the block's window. After this check
// every later walk over the cached buffer is on trusted bytes.
func (s *Store) validateBlockStream(slot int, buf []byte) error {
	b := &s.blocks[slot]
	start := b.win * s.blockSize
	end := start + s.blockSize - 1
	if end < start {
		end = ^uint64(0)
	}
	r := blockReader{buf: buf, time: start, v1: s.v1}
	for {
		rec, ok := r.next()
		if !ok {
			break
		}
		r.commit(rec)
		if rec.sig >= len(s.list) {
			return fmt.Errorf("vcd: block %d (window %d): record names signal %d of %d", slot, b.win, rec.sig, len(s.list))
		}
		if rec.time > end {
			return fmt.Errorf("vcd: block %d (window %d): record time %d outside window", slot, b.win, rec.time)
		}
		// A v2 record's plane word count is fixed by the signal's
		// declared width: wide exactly when the signal needs more than
		// one word, and then exactly nw-1 extra words.
		if !s.v1 {
			if want := s.list[rec.sig].nw() - 1; len(rec.vh) != want {
				return fmt.Errorf("vcd: block %d (window %d): record for %d-bit signal %d carries %d extra value words (want %d)",
					slot, b.win, s.list[rec.sig].Width, rec.sig, len(rec.vh), want)
			}
		}
	}
	if r.err != nil {
		return fmt.Errorf("vcd: block %d (window %d): %w", slot, b.win, r.err)
	}
	return nil
}

// blockCache is the byte-bounded LRU over lazily loaded block record
// streams. Returned buffers are immutable and stay valid after
// eviction (readers hold their own reference); the bound is on what
// the cache itself keeps resident.
type blockCache struct {
	mu   sync.Mutex
	max  int
	size int
	ent  map[int]*cacheEntry
	head *cacheEntry // most recent
	tail *cacheEntry // least recent
}

type cacheEntry struct {
	slot       int
	buf        []byte
	prev, next *cacheEntry
}

func newBlockCache(maxBytes int) *blockCache {
	return &blockCache{max: maxBytes, ent: map[int]*cacheEntry{}}
}

func (c *blockCache) bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

func (c *blockCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *blockCache) push(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *blockCache) get(slot int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.ent[slot]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.push(e)
	return e.buf, true
}

func (c *blockCache) put(slot int, buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ent[slot]; ok {
		// Raced with another loader; keep the resident copy.
		c.unlink(e)
		c.push(e)
		return
	}
	e := &cacheEntry{slot: slot, buf: buf}
	c.ent[slot] = e
	c.push(e)
	c.size += len(buf)
	for c.size > c.max && c.tail != nil && c.tail != e {
		old := c.tail
		c.unlink(old)
		delete(c.ent, old.slot)
		c.size -= len(old.buf)
	}
}
