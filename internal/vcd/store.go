package vcd

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/rtl"
)

// This file is the trace index: a streaming, single-pass alternative to
// Parse that emits change records into fixed-size time blocks instead of
// per-signal in-memory slices. Signals are decoded lazily — only the
// debugger's breakpoint/watch dependency set is materialized into
// binary-searchable timelines (Materialize); everything else stays as
// compact varint records until a query or a replay state sweep touches
// it. See DESIGN.md "Trace index & checkpointing" for the format and the
// complexity analysis.

// DefaultBlockSize is the time-window width of one store block. 64
// cycles keeps single-block decodes (the unit of work for a lazy
// value-at-time query) small while amortizing per-block overhead across
// enough records to matter.
const DefaultBlockSize = 64

// StoreOptions configures ParseStore.
type StoreOptions struct {
	// BlockSize is the time-window width of each block (0 = default).
	BlockSize uint64
}

// storeBlock holds every change in one time window
// [win*bs, (win+1)*bs) as a compact record stream: uvarint(signal
// index), uvarint(time delta from the previous record in the block, or
// from the window start for the first), uvarint(value bits). Records
// are in file order, which is non-decreasing time order, so
// last-write-wins replay is correct. Blocks are SPARSE over time: only
// windows containing at least one change exist, in ascending window
// order, so store memory is O(changes) even when timestamps are huge
// (real simulator dumps count timescale units, not cycles — a 1 s run
// at 1 ps timescale ends at #1e12).
type storeBlock struct {
	win uint64 // window index: this block covers [win*bs, (win+1)*bs)
	buf []byte
	// last is the absolute time of the final appended record; parse-time
	// helper for delta encoding.
	last uint64
}

// timeline is a signal's fully decoded change history. It is built
// complete before being published, and immutable afterwards.
type timeline struct {
	times []uint64
	vals  []uint64
}

// StoreSignal is one signal in a block store: always its per-block
// sparse index (which blocks it changed in, and its final value within
// each), plus — only after Materialize — the fully decoded timeline.
type StoreSignal struct {
	Name  string
	Width int

	store *Store
	index int
	n     int // total change count

	// Sparse change runs: blkIdx lists the store's block SLOTS this
	// signal changed in (ascending; a slot resolves to its time window
	// through store.blocks[slot].win); blkLast holds the signal's value
	// after its last change inside that block. Memory is O(blocks
	// touched), not O(changes).
	blkIdx  []uint32
	blkLast []uint64

	// Materialized timeline; nil until Materialize decodes it.
	// Published atomically only once fully built, so readers on other
	// goroutines (the debugger's server connections) either see the
	// complete timeline or fall back to the block index — never a
	// partial decode.
	tl atomic.Pointer[timeline]
}

// Index returns the signal's dense index into replay state arrays.
func (ts *StoreSignal) Index() int { return ts.index }

// NumChanges returns how many value changes were recorded.
func (ts *StoreSignal) NumChanges() int { return ts.n }

// Materialized reports whether the full timeline has been decoded.
func (ts *StoreSignal) Materialized() bool { return ts.tl.Load() != nil }

// ValueAt returns the signal value at time t (the most recent change at
// or before t; zero before the first change). Materialized signals
// answer by binary search over the decoded timeline; unmaterialized
// signals binary-search the sparse block index and decode at most one
// block.
func (ts *StoreSignal) ValueAt(t uint64) uint64 {
	if tl := ts.tl.Load(); tl != nil {
		i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
		if i == 0 {
			return 0
		}
		return tl.vals[i-1]
	}
	b := t / ts.store.blockSize
	// Latest indexed block whose window is at or before b.
	blocks := ts.store.blocks
	k := sort.Search(len(ts.blkIdx), func(i int) bool { return blocks[ts.blkIdx[i]].win > b }) - 1
	if k < 0 {
		return 0
	}
	if slot := int(ts.blkIdx[k]); blocks[slot].win == b {
		if v, ok := ts.store.scanBlockFor(slot, ts.index, t); ok {
			return v
		}
		// Every change of this signal in window b is after t; the
		// previous indexed block's final value rules.
		k--
		if k < 0 {
			return 0
		}
	}
	return ts.blkLast[k]
}

// Store is a parsed VCD file held as a time-blocked change index.
type Store struct {
	Hierarchy *rtl.InstanceNode
	MaxTime   uint64

	blockSize uint64
	sigs      map[string]*StoreSignal
	list      []*StoreSignal // by dense index
	blocks    []storeBlock
	changes   int

	// mu serializes lazy materialization (Materialize may be called
	// from the debugger's arm path while a server goroutine reads other
	// signals).
	mu sync.Mutex
}

// ParseStore reads a VCD stream in a single pass into a block store.
// Peak memory is the compact record encoding (a few bytes per change in
// shared block buffers) plus the per-signal sparse block index — no
// per-signal change slices are built until Materialize asks for them.
func ParseStore(rd io.Reader, opts StoreOptions) (*Store, error) {
	bs := opts.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	st := &Store{blockSize: bs, sigs: map[string]*StoreSignal{}}
	byID := map[string]*StoreSignal{}
	var h hierBuilder
	var scratch [3 * binary.MaxVarintLen64]byte
	maxTime, err := scanVCD(rd, &h, vcdEvents{
		vardecl: func(id string, width int, full, local string) {
			ts := &StoreSignal{Name: full, Width: width, store: st, index: len(st.list)}
			st.sigs[full] = ts
			st.list = append(st.list, ts)
			byID[id] = ts
		},
		change: func(id string, t uint64, bits uint64) {
			ts, ok := byID[id]
			if !ok {
				return
			}
			bits &= eval.Mask(ts.Width)
			win := t / bs
			// Timestamps never decrease, so a new window is always
			// appended after the current last block — empty windows
			// between changes are never allocated.
			slot := len(st.blocks) - 1
			if slot < 0 || st.blocks[slot].win != win {
				st.blocks = append(st.blocks, storeBlock{win: win, last: win * bs})
				slot++
			}
			b := &st.blocks[slot]
			n := binary.PutUvarint(scratch[:], uint64(ts.index))
			n += binary.PutUvarint(scratch[n:], t-b.last)
			n += binary.PutUvarint(scratch[n:], bits)
			b.buf = append(b.buf, scratch[:n]...)
			b.last = t
			st.changes++
			if k := len(ts.blkIdx); k > 0 && int(ts.blkIdx[k-1]) == slot {
				ts.blkLast[k-1] = bits
			} else {
				ts.blkIdx = append(ts.blkIdx, uint32(slot))
				ts.blkLast = append(ts.blkLast, bits)
			}
			ts.n++
		},
	})
	if err != nil {
		return nil, err
	}
	st.MaxTime = maxTime
	st.Hierarchy = h.root
	return st, nil
}

// BlockSize returns the store's time-window width.
func (s *Store) BlockSize() uint64 { return s.blockSize }

// NumBlocks returns how many time blocks the store holds.
func (s *Store) NumBlocks() int { return len(s.blocks) }

// NumChanges returns the total change-record count across all signals.
func (s *Store) NumChanges() int { return s.changes }

// NumSignals returns the number of declared signals (the length replay
// state arrays must have).
func (s *Store) NumSignals() int { return len(s.list) }

// Signal returns a signal by full hierarchical path.
func (s *Store) Signal(path string) (*StoreSignal, bool) {
	ts, ok := s.sigs[path]
	return ts, ok
}

// SignalNames returns all signal paths, sorted.
func (s *Store) SignalNames() []string {
	names := make([]string, 0, len(s.sigs))
	for n := range s.sigs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// record is one decoded change: which signal, at what absolute time,
// to what value, and how many encoded bytes it occupied.
type record struct {
	sig  int
	time uint64
	bits uint64
	size int
}

// blockReader iterates a block's compact record stream. It is the one
// place the record encoding (uvarint signal index, uvarint time delta,
// uvarint value bits, delta base = previous record or window start) is
// decoded; every consumer — lazy point queries, materialization, state
// sweeps — shares it so the format cannot desynchronize between them.
// next decodes without consuming; commit consumes, which is what lets
// ApplyUpTo stop exactly before the first record past its target time.
type blockReader struct {
	buf  []byte
	off  int
	time uint64 // delta base: window start, or a resumed cursor's time
}

// reader returns a blockReader positioned at the start of block slot b.
func (s *Store) reader(b int) blockReader {
	return blockReader{buf: s.blocks[b].buf, time: s.blocks[b].win * s.blockSize}
}

func (r *blockReader) next() (record, bool) {
	if r.off >= len(r.buf) {
		return record{}, false
	}
	si, n1 := binary.Uvarint(r.buf[r.off:])
	dt, n2 := binary.Uvarint(r.buf[r.off+n1:])
	bits, n3 := binary.Uvarint(r.buf[r.off+n1+n2:])
	return record{sig: int(si), time: r.time + dt, bits: bits, size: n1 + n2 + n3}, true
}

func (r *blockReader) commit(rec record) {
	r.off += rec.size
	r.time = rec.time
}

// scanBlockFor decodes block b looking for the last change of signal
// idx at or before t.
func (s *Store) scanBlockFor(b, idx int, t uint64) (uint64, bool) {
	r := s.reader(b)
	var last uint64
	found := false
	for {
		rec, ok := r.next()
		if !ok || rec.time > t {
			break
		}
		r.commit(rec)
		if rec.sig == idx {
			last, found = rec.bits, true
		}
	}
	return last, found
}

// Materialize decodes the full timelines of the named signals so their
// ValueAt queries become binary searches with no block decoding — this
// is the lazy-materialization hook the debugger uses for its
// breakpoint/watch dependency union. Signals already materialized (or
// unknown) are skipped; decoding shares one pass per block across all
// requested signals.
func (s *Store) Materialize(paths ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// byIdx maps signal index → pending timeline, so block decoding is
	// O(records) however many signals the union names; want collects
	// which blocks need decoding at all. Pending timelines stay private
	// to this call until fully built; they are published atomically at
	// the end so concurrent readers never see a partial decode.
	var pend map[*StoreSignal]*timeline
	var byIdx []*timeline
	var want map[uint32]bool
	for _, p := range paths {
		ts, ok := s.sigs[p]
		if !ok || ts.Materialized() {
			continue
		}
		if byIdx == nil {
			// Deferred until a signal actually needs decoding: Prefetch
			// re-advises the whole union on every breakpoint change, and
			// the already-materialized case must stay allocation-free.
			pend = map[*StoreSignal]*timeline{}
			byIdx = make([]*timeline, len(s.list))
			want = map[uint32]bool{}
		} else if _, dup := pend[ts]; dup {
			continue
		}
		// A zero-change signal gets an empty non-nil timeline, which is
		// enough to mark it materialized.
		tl := &timeline{
			times: make([]uint64, 0, ts.n),
			vals:  make([]uint64, 0, ts.n),
		}
		pend[ts] = tl
		byIdx[ts.index] = tl
		for _, bi := range ts.blkIdx {
			want[bi] = true
		}
	}
	if len(pend) == 0 {
		return
	}
	order := make([]uint32, 0, len(want))
	for bi := range want {
		order = append(order, bi)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, bi := range order {
		r := s.reader(int(bi))
		for {
			rec, ok := r.next()
			if !ok {
				break
			}
			r.commit(rec)
			if tl := byIdx[rec.sig]; tl != nil {
				tl.times = append(tl.times, rec.time)
				tl.vals = append(tl.vals, rec.bits)
			}
		}
	}
	for ts, tl := range pend {
		ts.tl.Store(tl)
	}
}

// Cursor is a resumable position in the store's change stream, used by
// replay state sweeps (Store.ApplyUpTo). The zero Cursor is the start
// of the trace.
type Cursor struct {
	// Block is the slot index of the block being read (blocks are
	// sparse over time; slots are in ascending window order).
	Block int
	// Off is the byte offset of the next unread record in that block.
	Off int
	// Time is the absolute time of the last consumed record (the delta
	// base for the next record); block start when Off is 0.
	Time uint64
}

// walkUpTo is the one cursor-advancing record walk: it visits every
// change record with time <= t starting at cursor c and returns the
// advanced cursor. Both replay state sync (ApplyUpTo) and dirty-set
// derivation (ScanChanges) run on it, so the cursor conventions —
// where a partially consumed block leaves Off/Time, when a block is
// abandoned for the next slot — cannot desynchronize between them.
func (s *Store) walkUpTo(c Cursor, t uint64, visit func(rec record)) Cursor {
	for c.Block < len(s.blocks) {
		blockStart := s.blocks[c.Block].win * s.blockSize
		if blockStart > t {
			return c
		}
		if c.Off == 0 {
			c.Time = blockStart
		}
		r := blockReader{buf: s.blocks[c.Block].buf, off: c.Off, time: c.Time}
		for {
			rec, ok := r.next()
			if !ok {
				break
			}
			if rec.time > t {
				c.Off, c.Time = r.off, r.time
				return c
			}
			r.commit(rec)
			visit(rec)
		}
		// Block exhausted; move on only once t covers its whole window,
		// so a later call never skips records that belong to this block.
		// The next slot's window start (possibly far later — blocks are
		// sparse) is picked up at the top of the loop.
		if blockStart+s.blockSize-1 > t {
			c.Off, c.Time = r.off, r.time
			return c
		}
		c.Block++
		c.Off = 0
	}
	return c
}

// ApplyUpTo replays every change with time <= t, starting at cursor c,
// into state (indexed by StoreSignal.Index), and returns the advanced
// cursor. state must have NumSignals elements. Replaying from the zero
// cursor over a zero state reconstructs exact signal values at t;
// resuming from a saved cursor/state pair costs only the records in
// (cursor, t] — the primitive replay checkpointing is built on.
func (s *Store) ApplyUpTo(c Cursor, t uint64, state []uint64) Cursor {
	if len(state) < len(s.list) {
		panic(fmt.Sprintf("vcd: ApplyUpTo state too short: %d < %d", len(state), len(s.list)))
	}
	return s.walkUpTo(c, t, func(rec record) { state[rec.sig] = rec.bits })
}

// ScanChanges invokes fn with the signal index of every change record
// with time in (cursor, t] and returns the advanced cursor. It is
// ApplyUpTo without the state writes: the replay backend uses it to
// derive per-edge dirty-signal sets directly from the block record
// streams — the cost of one forward edge is the records inside it,
// near zero on idle stretches.
func (s *Store) ScanChanges(c Cursor, t uint64, fn func(sig int)) Cursor {
	return s.walkUpTo(c, t, func(rec record) { fn(rec.sig) })
}

// SeekCursor returns a cursor positioned just past every change record
// with time <= t, without replaying state: a binary search over the
// sparse block index plus at most one block decode. The replay
// backend's dirty-set cursor re-anchors here after a backward time
// seek.
func (s *Store) SeekCursor(t uint64) Cursor {
	// First block whose window starts after t; everything before it is
	// at least partially covered.
	i := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].win*s.blockSize > t })
	if i == 0 {
		return Cursor{}
	}
	// Consume records <= t inside the last covered block, reusing the
	// exact cursor conventions of ScanChanges/ApplyUpTo.
	c := Cursor{Block: i - 1}
	return s.ScanChanges(c, t, func(int) {})
}

// NextChangeTime returns the time of the first change record at or
// after cursor c, if any. Replay sync uses it to jump record-free
// stretches (sparse blocks can leave enormous gaps) without touching
// per-boundary state.
func (s *Store) NextChangeTime(c Cursor) (uint64, bool) {
	for c.Block < len(s.blocks) {
		if c.Off == 0 {
			c.Time = s.blocks[c.Block].win * s.blockSize
		}
		r := blockReader{buf: s.blocks[c.Block].buf, off: c.Off, time: c.Time}
		if rec, ok := r.next(); ok {
			return rec.time, true
		}
		c.Block++
		c.Off = 0
	}
	return 0, false
}

// IndexBytes returns the approximate heap footprint of the store's
// change data: block buffers plus the per-signal sparse index, excluding
// materialized timelines. Reported by tools and benchmarks.
func (s *Store) IndexBytes() int {
	total := 0
	for i := range s.blocks {
		total += cap(s.blocks[i].buf)
	}
	for _, ts := range s.list {
		total += cap(ts.blkIdx)*4 + cap(ts.blkLast)*8
	}
	return total
}
