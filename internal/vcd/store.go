package vcd

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rtl"
	"repro/internal/val"
)

// This file is the trace index: a streaming, single-pass alternative to
// Parse that emits change records into fixed-size time blocks instead of
// per-signal in-memory slices. Signals are decoded lazily — only the
// debugger's breakpoint/watch dependency set is materialized into
// binary-searchable timelines (Materialize); everything else stays as
// compact varint records until a query or a replay state sweep touches
// it. See DESIGN.md "Trace index & checkpointing" for the format and the
// complexity analysis.

// DefaultBlockSize is the time-window width of one store block. 64
// cycles keeps single-block decodes (the unit of work for a lazy
// value-at-time query) small while amortizing per-block overhead across
// enough records to matter.
const DefaultBlockSize = 64

// StoreOptions configures ParseStore.
type StoreOptions struct {
	// BlockSize is the time-window width of each block (0 = default).
	BlockSize uint64
}

// storeBlock holds every change in one time window
// [win*bs, (win+1)*bs) as a compact record stream: uvarint(signal
// index), uvarint(time delta from the previous record in the block, or
// from the window start for the first), uvarint(value bits). Records
// are in file order, which is non-decreasing time order, so
// last-write-wins replay is correct. Blocks are SPARSE over time: only
// windows containing at least one change exist, in ascending window
// order, so store memory is O(changes) even when timestamps are huge
// (real simulator dumps count timescale units, not cycles — a 1 s run
// at 1 ps timescale ends at #1e12).
//
// In a parsed store (ParseStore) buf holds the resident record bytes.
// In a disk-backed store (OpenStore) buf stays nil and off/length/crc
// locate and authenticate the record stream in the backing file;
// Store.blockData loads it on demand through a byte-bounded LRU.
type storeBlock struct {
	win uint64 // window index: this block covers [win*bs, (win+1)*bs)
	buf []byte
	// last is the absolute time of the final appended record; parse-time
	// helper for delta encoding.
	last uint64

	// Disk location (OpenStore only).
	off    int64
	length uint32
	crc    uint32
}

// timeline is a signal's fully decoded change history, packed
// four-state planes included. It is built complete before being
// published, and immutable afterwards.
type timeline struct {
	times []uint64
	pl    planeSeq
}

// StoreSignal is one signal in a block store: always its per-block
// sparse index (which blocks it changed in, and its final value within
// each), plus — only after Materialize — the fully decoded timeline.
type StoreSignal struct {
	Name  string
	Width int

	store *Store
	index int
	n     int // total change count
	// gen is the timeline-LRU recency stamp: the Store.tlGen value of
	// the last Materialize call that advised this signal. Guarded by
	// Store.mu.
	gen uint64

	// Sparse change runs: blkIdx lists the store's block SLOTS this
	// signal changed in (ascending; a slot resolves to its time window
	// through store.blocks[slot].win); last holds the signal's packed
	// four-state value after its last change inside that block. Memory
	// is O(blocks touched), not O(changes).
	blkIdx []uint32
	last   planeSeq

	// Materialized timeline; nil until Materialize decodes it.
	// Published atomically only once fully built, so readers on other
	// goroutines (the debugger's server connections) either see the
	// complete timeline or fall back to the block index — never a
	// partial decode.
	tl atomic.Pointer[timeline]
}

// Index returns the signal's dense index into replay state arrays.
func (ts *StoreSignal) Index() int { return ts.index }

// NumChanges returns how many value changes were recorded.
func (ts *StoreSignal) NumChanges() int { return ts.n }

// Materialized reports whether the full timeline has been decoded.
func (ts *StoreSignal) Materialized() bool { return ts.tl.Load() != nil }

// ValueAt returns the signal's two-state value word at time t (the
// most recent change at or before t; zero before the first change).
// Unknown bits read as 0 and bits above 64 are not visible; BitsAt
// returns the full four-state value. Materialized signals answer by
// binary search over the decoded timeline; unmaterialized signals
// binary-search the sparse block index and decode at most one block.
func (ts *StoreSignal) ValueAt(t uint64) uint64 {
	b, ok := ts.lookupAt(t)
	if !ok {
		return 0
	}
	return b.V0
}

// BitsAt returns the signal's full four-state value at time t (known
// zero of the declared width before the first change). The result may
// alias immutable store planes.
func (ts *StoreSignal) BitsAt(t uint64) val.Bits {
	b, ok := ts.lookupAt(t)
	if !ok {
		return val.Bits{Width: maxInt(ts.Width, 1)}
	}
	return b
}

// lookupAt is the shared value-at-time query; ok is false before the
// first change.
func (ts *StoreSignal) lookupAt(t uint64) (val.Bits, bool) {
	width := maxInt(ts.Width, 1)
	if tl := ts.tl.Load(); tl != nil {
		i := sort.Search(len(tl.times), func(i int) bool { return tl.times[i] > t })
		if i == 0 {
			return val.Bits{}, false
		}
		return tl.pl.bits(i-1, width), true
	}
	b := t / ts.store.blockSize
	// Latest indexed block whose window is at or before b.
	blocks := ts.store.blocks
	k := sort.Search(len(ts.blkIdx), func(i int) bool { return blocks[ts.blkIdx[i]].win > b }) - 1
	if k < 0 {
		return val.Bits{}, false
	}
	if slot := int(ts.blkIdx[k]); blocks[slot].win == b {
		if rec, ok := ts.store.scanBlockFor(slot, ts.index, t); ok {
			return rec.bits(width), true
		}
		// Every change of this signal in window b is after t; the
		// previous indexed block's final value rules.
		k--
		if k < 0 {
			return val.Bits{}, false
		}
	}
	return ts.last.bits(k, width), true
}

// Store is a parsed VCD file held as a time-blocked change index. It
// is built either by ParseStore (all blocks resident) or by OpenStore
// (blocks load lazily from the on-disk format; see diskstore.go).
type Store struct {
	Hierarchy *rtl.InstanceNode
	MaxTime   uint64
	Stats     ParseStats

	blockSize uint64
	sigs      map[string]*StoreSignal
	list      []*StoreSignal // by dense index
	blocks    []storeBlock
	changes   int

	// v1 marks a store opened from a version-1 file: block record
	// streams use the legacy 3-varint two-state encoding (values were
	// masked to their low 64 bits at index time), read-only.
	v1 bool

	// Packed replay-state layout: signal i's planes live at word
	// offset wordOff[i], sigWords(width) words each, stateWords total.
	// Computed once the signal list is final (finalizeLayout).
	wordOff    []int32
	stateWords int

	// Disk backing (OpenStore only): blocks read through src into a
	// byte-bounded LRU cache. closer is the owned file handle, if any.
	src    io.ReaderAt
	cache  *blockCache
	closer io.Closer

	// failure is the sticky first decode/IO error. Record streams are
	// hostile-input surfaces once blocks come from disk: a corrupt
	// stream stops the walk that found it and poisons the store rather
	// than fabricating records. Checked via Err.
	failure atomic.Pointer[storeError]

	// mu serializes lazy materialization (Materialize may be called
	// from the debugger's arm path while a server goroutine reads other
	// signals) and guards the timeline-LRU bookkeeping below.
	mu sync.Mutex
	// tlGen counts Materialize calls; tlBudget bounds the total bytes
	// of resident materialized timelines (0 = DefaultTimelineBudget).
	tlGen    uint64
	tlBudget int
}

type storeError struct{ err error }

// setErr records the first decode/IO error; later errors keep the
// original (most diagnostic) one.
func (s *Store) setErr(err error) {
	s.failure.CompareAndSwap(nil, &storeError{err: err})
}

// Err returns the sticky first block decode or IO error, if any. Once
// set, record walks stop at the corrupt block instead of fabricating
// records; callers serving values should surface it.
func (s *Store) Err() error {
	if e := s.failure.Load(); e != nil {
		return e.err
	}
	return nil
}

// Close releases the backing file of a disk-opened store. It is a
// no-op for parsed stores.
func (s *Store) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// finalizeLayout computes the packed replay-state layout; called once
// the signal list is final (end of parse, or open).
func (s *Store) finalizeLayout() {
	s.wordOff = make([]int32, len(s.list))
	off := 0
	for i, ts := range s.list {
		s.wordOff[i] = int32(off)
		off += ts.nw()
	}
	s.stateWords = off
}

// nw returns the signal's per-entry plane word count.
func (ts *StoreSignal) nw() int { return sigWords(maxInt(ts.Width, 1)) }

// State is a full packed signal-state array: every signal's value and
// unknown-bit planes at one instant, laid out per Store.finalizeLayout.
// Build with NewState, advance with ApplyUpTo, read with StateBits.
type State struct {
	V, X []uint64
}

// NewState allocates a zeroed state array sized for the store.
func (s *Store) NewState() *State {
	return &State{V: make([]uint64, s.stateWords), X: make([]uint64, s.stateWords)}
}

// Zero resets the state to all-known zero.
func (st *State) Zero() {
	for i := range st.V {
		st.V[i] = 0
		st.X[i] = 0
	}
}

// CopyFrom overwrites st with src (same store layout).
func (st *State) CopyFrom(src *State) {
	copy(st.V, src.V)
	copy(st.X, src.X)
}

// Clone returns an independent copy of the state.
func (st *State) Clone() *State {
	c := &State{V: make([]uint64, len(st.V)), X: make([]uint64, len(st.X))}
	c.CopyFrom(st)
	return c
}

// StateBits reads one signal's four-state value out of a state array.
// The result is an independent copy — later ApplyUpTo sweeps over the
// same state cannot mutate it.
func (s *Store) StateBits(st *State, ts *StoreSignal) val.Bits {
	off, nw := int(s.wordOff[ts.index]), ts.nw()
	return val.FromPlanes(st.V[off:off+nw], st.X[off:off+nw], maxInt(ts.Width, 1))
}

// storeIngest is the shared single-pass ingest core behind ParseStore
// and IndexFile: it encodes change events into block record streams
// and maintains the per-signal sparse index. Completed blocks are
// handed to emit in slot order — ParseStore keeps them resident,
// IndexFile streams them to disk while the parse continues.
type storeIngest struct {
	bs      uint64
	st      *Store
	byID    map[string]*StoreSignal
	scratch []byte // reusable record-encoding buffer
	cur     storeBlock
	have    bool
	slot    int // index the current block will get when emitted
	emit    func(slot int, blk storeBlock)
}

func newStoreIngest(bs uint64, emit func(slot int, blk storeBlock)) *storeIngest {
	return &storeIngest{
		bs:   bs,
		st:   &Store{blockSize: bs, sigs: map[string]*StoreSignal{}},
		byID: map[string]*StoreSignal{},
		emit: emit,
	}
}

func (g *storeIngest) events() vcdEvents {
	return vcdEvents{vardecl: g.vardecl, change: g.change}
}

func (g *storeIngest) vardecl(id string, width int, full, local string) {
	ts := &StoreSignal{Name: full, Width: width, store: g.st, index: len(g.st.list)}
	ts.last.nw = ts.nw()
	g.st.sigs[full] = ts
	g.st.list = append(g.st.list, ts)
	g.byID[id] = ts
}

// appendRecord encodes one v2 change record:
//
//	uvarint(sig<<2 | hasX | wide<<1)  header: signal index + plane flags
//	uvarint(dt)                       time delta from the block cursor
//	uvarint(value word 0)
//	[uvarint(x word 0)]               if hasX
//	if wide: uvarint(k), k value words, then (if hasX) k x words
//
// A fully known narrow change — the overwhelmingly common case — costs
// exactly the three varints the v1 format did.
func appendRecord(dst []byte, sig int, dt uint64, b val.Bits) []byte {
	hasX := b.HasX()
	wide := b.Words() > 1
	head := uint64(sig) << 2
	if hasX {
		head |= 1
	}
	if wide {
		head |= 2
	}
	dst = putUvarint(dst, head)
	dst = putUvarint(dst, dt)
	dst = putUvarint(dst, b.Word(0))
	if hasX {
		dst = putUvarint(dst, b.XWord(0))
	}
	if wide {
		k := b.Words() - 1
		dst = putUvarint(dst, uint64(k))
		for i := 1; i <= k; i++ {
			dst = putUvarint(dst, b.Word(i))
		}
		if hasX {
			for i := 1; i <= k; i++ {
				dst = putUvarint(dst, b.XWord(i))
			}
		}
	}
	return dst
}

func (g *storeIngest) change(id string, t uint64, lit string) {
	ts, ok := g.byID[id]
	if !ok {
		return
	}
	b, perr := val.ParseVCD(lit, maxInt(ts.Width, 1))
	if perr != nil {
		return // unreachable: the scanner validated the literal
	}
	win := t / g.bs
	// Timestamps never decrease (enforced by scanVCD), so a new window
	// always follows the current one — empty windows between changes
	// are never allocated.
	if !g.have {
		g.cur = storeBlock{win: win, last: win * g.bs}
		g.have = true
	} else if g.cur.win != win {
		g.emit(g.slot, g.cur)
		g.slot++
		g.cur = storeBlock{win: win, last: win * g.bs}
	}
	g.scratch = appendRecord(g.scratch[:0], ts.index, t-g.cur.last, b)
	g.cur.buf = append(g.cur.buf, g.scratch...)
	g.cur.last = t
	g.st.changes++
	if k := len(ts.blkIdx); k > 0 && int(ts.blkIdx[k-1]) == g.slot {
		ts.last.setLast(b)
	} else {
		ts.blkIdx = append(ts.blkIdx, uint32(g.slot))
		ts.last.appendBits(b)
	}
	ts.n++
}

// finish emits the final partially filled block.
func (g *storeIngest) finish() {
	if g.have {
		g.emit(g.slot, g.cur)
		g.slot++
		g.have = false
	}
}

// ParseStore reads a VCD stream in a single pass into a block store.
// Peak memory is the compact record encoding (a few bytes per change in
// shared block buffers) plus the per-signal sparse block index — no
// per-signal change slices are built until Materialize asks for them.
func ParseStore(rd io.Reader, opts StoreOptions) (*Store, error) {
	bs := opts.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	var g *storeIngest
	g = newStoreIngest(bs, func(_ int, blk storeBlock) {
		g.st.blocks = append(g.st.blocks, blk)
	})
	var h hierBuilder
	maxTime, stats, err := scanVCD(rd, &h, g.events())
	if err != nil {
		return nil, err
	}
	g.finish()
	st := g.st
	st.MaxTime = maxTime
	st.Hierarchy = h.root
	st.Stats = stats
	st.finalizeLayout()
	return st, nil
}

// BlockSize returns the store's time-window width.
func (s *Store) BlockSize() uint64 { return s.blockSize }

// NumBlocks returns how many time blocks the store holds.
func (s *Store) NumBlocks() int { return len(s.blocks) }

// NumChanges returns the total change-record count across all signals.
func (s *Store) NumChanges() int { return s.changes }

// NumSignals returns the number of declared signals (the length replay
// state arrays must have).
func (s *Store) NumSignals() int { return len(s.list) }

// Signal returns a signal by full hierarchical path.
func (s *Store) Signal(path string) (*StoreSignal, bool) {
	ts, ok := s.sigs[path]
	return ts, ok
}

// SignalNames returns all signal paths, sorted.
func (s *Store) SignalNames() []string {
	names := make([]string, 0, len(s.sigs))
	for n := range s.sigs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// record is one decoded change: which signal, at what absolute time,
// to what four-state value, and how many encoded bytes it occupied.
// The planes are raw words: v0/x0 hold bits 0..63, vh/xh (nil for
// narrow or fully known records) the rest. The width comes from the
// signal declaration, not the record.
type record struct {
	sig    int
	time   uint64
	v0, x0 uint64
	vh, xh []uint64
	size   int
}

// bits assembles the record's value at the signal's declared width.
func (rec record) bits(width int) val.Bits {
	b := val.Bits{Width: width, V0: rec.v0, X0: rec.x0, VH: rec.vh, XH: rec.xh}
	if width <= 64 {
		b.VH, b.XH = nil, nil
	}
	return b
}

// maxPlaneWords bounds a hostile record's declared extra-word count
// (maxSignalWidth bits of planes).
const maxPlaneWords = maxSignalWidth / 64

// blockReader iterates a block's compact record stream. It is the one
// place the record encoding (see appendRecord; v1 streams are the
// legacy three-varint form) is decoded; every consumer — lazy point
// queries, materialization, state sweeps — shares it so the format
// cannot desynchronize between them. next decodes without consuming;
// commit consumes, which is what lets ApplyUpTo stop exactly before
// the first record past its target time.
//
// The stream is a hostile-input surface once blocks come from disk:
// next validates every varint's byte count and bounds every declared
// word count, so a truncated or corrupt buffer yields a decode error
// (in r.err) instead of fabricated records or a zero-size record that
// would stop commit from advancing.
type blockReader struct {
	buf  []byte
	off  int
	time uint64 // delta base: window start, or a resumed cursor's time
	v1   bool   // legacy three-varint record format
	err  error
}

// blockData returns block slot b's record bytes. Parsed stores answer
// from the resident buffer; disk stores consult the LRU cache and load
// (CRC-checked and stream-validated) from the backing file on a miss.
// A load or validation failure poisons the store (Err) and returns nil
// — the walk sees an empty block and stops fabricating nothing.
func (s *Store) blockData(b int) []byte {
	if s.src == nil {
		return s.blocks[b].buf
	}
	return s.loadBlock(b)
}

// reader returns a blockReader positioned at the start of block slot b.
func (s *Store) reader(b int) blockReader {
	return blockReader{buf: s.blockData(b), time: s.blocks[b].win * s.blockSize, v1: s.v1}
}

var errCorruptRecord = fmt.Errorf("vcd: corrupt block record stream")

// uv decodes one uvarint at offset off, accumulating the record size.
func (r *blockReader) uv(off *int, what string) (uint64, bool) {
	v, n := binary.Uvarint(r.buf[*off:])
	if n <= 0 {
		r.err = fmt.Errorf("%w: bad %s varint at byte %d", errCorruptRecord, what, *off)
		return 0, false
	}
	*off += n
	return v, true
}

func (r *blockReader) next() (record, bool) {
	if r.err != nil || r.off >= len(r.buf) {
		return record{}, false
	}
	off := r.off
	head, ok := r.uv(&off, "signal index")
	if !ok {
		return record{}, false
	}
	dt, ok := r.uv(&off, "time delta")
	if !ok {
		return record{}, false
	}
	v0, ok := r.uv(&off, "value")
	if !ok {
		return record{}, false
	}
	if r.v1 {
		return record{sig: int(head), time: r.time + dt, v0: v0, size: off - r.off}, true
	}
	rec := record{sig: int(head >> 2), time: r.time + dt, v0: v0}
	hasX := head&1 != 0
	wide := head&2 != 0
	if hasX {
		if rec.x0, ok = r.uv(&off, "x plane"); !ok {
			return record{}, false
		}
	}
	if wide {
		k, ok := r.uv(&off, "word count")
		if !ok {
			return record{}, false
		}
		if k == 0 || k > maxPlaneWords {
			r.err = fmt.Errorf("%w: implausible %d extra value words at byte %d", errCorruptRecord, k, r.off)
			return record{}, false
		}
		rec.vh = make([]uint64, k)
		for i := range rec.vh {
			if rec.vh[i], ok = r.uv(&off, "value word"); !ok {
				return record{}, false
			}
		}
		if hasX {
			rec.xh = make([]uint64, k)
			for i := range rec.xh {
				if rec.xh[i], ok = r.uv(&off, "x word"); !ok {
					return record{}, false
				}
			}
		}
	}
	rec.size = off - r.off
	return rec, true
}

func (r *blockReader) commit(rec record) {
	r.off += rec.size
	r.time = rec.time
}

// fail records a reader's decode error against the store, positioned
// with the block slot it came from.
func (s *Store) fail(b int, err error) {
	s.setErr(fmt.Errorf("vcd: block %d (window %d): %w", b, s.blocks[b].win, err))
}

// scanBlockFor decodes block b looking for the last change of signal
// idx at or before t.
func (s *Store) scanBlockFor(b, idx int, t uint64) (record, bool) {
	r := s.reader(b)
	var last record
	found := false
	for {
		rec, ok := r.next()
		if !ok || rec.time > t {
			break
		}
		r.commit(rec)
		if rec.sig == idx {
			last, found = rec, true
		}
	}
	if r.err != nil {
		s.fail(b, r.err)
	}
	return last, found
}

// Materialize decodes the full timelines of the named signals so their
// ValueAt queries become binary searches with no block decoding — this
// is the lazy-materialization hook the debugger uses for its
// breakpoint/watch dependency union. Signals already materialized (or
// unknown) are skipped; decoding shares one pass per block across all
// requested signals.
func (s *Store) Materialize(paths ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tlGen++
	// byIdx maps signal index → pending timeline, so block decoding is
	// O(records) however many signals the union names; want collects
	// which blocks need decoding at all. Pending timelines stay private
	// to this call until fully built; they are published atomically at
	// the end so concurrent readers never see a partial decode.
	var pend map[*StoreSignal]*timeline
	var byIdx []*timeline
	var want map[uint32]bool
	for _, p := range paths {
		ts, ok := s.sigs[p]
		if !ok {
			continue
		}
		// Recency touch for the timeline LRU: every advised signal —
		// already materialized or about to be — belongs to the current
		// dependency union and is the last to be evicted.
		ts.gen = s.tlGen
		if ts.Materialized() {
			continue
		}
		if byIdx == nil {
			// Deferred until a signal actually needs decoding: Prefetch
			// re-advises the whole union on every breakpoint change, and
			// the already-materialized case must stay allocation-free.
			pend = map[*StoreSignal]*timeline{}
			byIdx = make([]*timeline, len(s.list))
			want = map[uint32]bool{}
		} else if _, dup := pend[ts]; dup {
			continue
		}
		// A zero-change signal gets an empty non-nil timeline, which is
		// enough to mark it materialized.
		tl := &timeline{times: make([]uint64, 0, ts.n)}
		tl.pl.nw = ts.nw()
		tl.pl.v = make([]uint64, 0, ts.n*tl.pl.nw)
		pend[ts] = tl
		byIdx[ts.index] = tl
		for _, bi := range ts.blkIdx {
			want[bi] = true
		}
	}
	if len(pend) == 0 {
		s.evictTimelines()
		return
	}
	order := make([]uint32, 0, len(want))
	for bi := range want {
		order = append(order, bi)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, bi := range order {
		r := s.reader(int(bi))
		for {
			rec, ok := r.next()
			if !ok {
				break
			}
			r.commit(rec)
			if rec.sig < len(byIdx) {
				if tl := byIdx[rec.sig]; tl != nil {
					tl.times = append(tl.times, rec.time)
					tl.pl.appendBits(rec.bits(maxInt(s.list[rec.sig].Width, 1)))
				}
			}
		}
		if r.err != nil {
			// Poison and abort: publishing a partial timeline would make
			// ValueAt silently answer from truncated history.
			s.fail(int(bi), r.err)
			return
		}
	}
	for ts, tl := range pend {
		ts.tl.Store(tl)
	}
	s.evictTimelines()
}

// timelineBytes is a timeline's resident footprint (8 B time per
// change plus the packed value/x planes).
func timelineBytes(tl *timeline) int { return 8*len(tl.times) + tl.pl.byteSize() }

// SetTimelineBudget bounds the total bytes of resident materialized
// timelines (0 restores DefaultTimelineBudget). When a Materialize
// call pushes the resident set over the budget, the least recently
// advised timelines are dropped back to block-index form — their
// ValueAt queries fall back to lazy block decodes — so the resident
// set stays flat however many signals successive dependency unions
// name.
func (s *Store) SetTimelineBudget(bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tlBudget = bytes
}

// TimelineBytes returns the resident footprint of all materialized
// timelines.
func (s *Store) TimelineBytes() int {
	total := 0
	for _, ts := range s.list {
		if tl := ts.tl.Load(); tl != nil {
			total += timelineBytes(tl)
		}
	}
	return total
}

// evictTimelines enforces the timeline budget, called with mu held at
// the end of Materialize. Eviction is LRU over advise generations:
// signals from older dependency unions go first; current-union
// signals are evicted only if the union alone exceeds the budget.
func (s *Store) evictTimelines() {
	budget := s.tlBudget
	if budget <= 0 {
		budget = DefaultTimelineBudget
	}
	total := 0
	var resident []*StoreSignal
	for _, ts := range s.list {
		if tl := ts.tl.Load(); tl != nil {
			total += timelineBytes(tl)
			resident = append(resident, ts)
		}
	}
	if total <= budget {
		return
	}
	sort.Slice(resident, func(i, j int) bool {
		if resident[i].gen != resident[j].gen {
			return resident[i].gen < resident[j].gen
		}
		return resident[i].index < resident[j].index
	})
	for _, ts := range resident {
		if total <= budget {
			break
		}
		tl := ts.tl.Swap(nil)
		if tl != nil {
			total -= timelineBytes(tl)
		}
	}
}

// Cursor is a resumable position in the store's change stream, used by
// replay state sweeps (Store.ApplyUpTo). The zero Cursor is the start
// of the trace.
type Cursor struct {
	// Block is the slot index of the block being read (blocks are
	// sparse over time; slots are in ascending window order).
	Block int
	// Off is the byte offset of the next unread record in that block.
	Off int
	// Time is the absolute time of the last consumed record (the delta
	// base for the next record); block start when Off is 0.
	Time uint64
}

// walkUpTo is the one cursor-advancing record walk: it visits every
// change record with time <= t starting at cursor c and returns the
// advanced cursor. Both replay state sync (ApplyUpTo) and dirty-set
// derivation (ScanChanges) run on it, so the cursor conventions —
// where a partially consumed block leaves Off/Time, when a block is
// abandoned for the next slot — cannot desynchronize between them.
func (s *Store) walkUpTo(c Cursor, t uint64, visit func(rec record)) Cursor {
	for c.Block < len(s.blocks) {
		blockStart := s.blocks[c.Block].win * s.blockSize
		if blockStart > t {
			return c
		}
		if c.Off == 0 {
			c.Time = blockStart
		}
		r := blockReader{buf: s.blockData(c.Block), off: c.Off, time: c.Time, v1: s.v1}
		for {
			rec, ok := r.next()
			if !ok {
				break
			}
			if rec.time > t {
				c.Off, c.Time = r.off, r.time
				return c
			}
			r.commit(rec)
			visit(rec)
		}
		if r.err != nil {
			// Corrupt stream: poison the store and stop the walk where
			// it stands rather than inventing records past the damage.
			s.fail(c.Block, r.err)
			c.Off, c.Time = r.off, r.time
			return c
		}
		// Block exhausted; move on only once t covers its whole window,
		// so a later call never skips records that belong to this block.
		// The next slot's window start (possibly far later — blocks are
		// sparse) is picked up at the top of the loop.
		if blockStart+s.blockSize-1 > t {
			c.Off, c.Time = r.off, r.time
			return c
		}
		c.Block++
		c.Off = 0
	}
	return c
}

// ApplyUpTo replays every change with time <= t, starting at cursor c,
// into the packed state planes (build with NewState, read with
// StateBits), and returns the advanced cursor. Replaying from the zero
// cursor over a zero state reconstructs exact signal values at t;
// resuming from a saved cursor/state pair costs only the records in
// (cursor, t] — the primitive replay checkpointing is built on.
func (s *Store) ApplyUpTo(c Cursor, t uint64, state *State) Cursor {
	if len(state.V) < s.stateWords || len(state.X) < s.stateWords {
		panic(fmt.Sprintf("vcd: ApplyUpTo state too short: %d/%d words < %d",
			len(state.V), len(state.X), s.stateWords))
	}
	return s.walkUpTo(c, t, func(rec record) {
		// rec.sig is validated against the signal list before a block is
		// published (validateBlockStream / trusted parse), so the offset
		// lookup is in range; word counts are clamped to the declared
		// width so a record can never spill into a neighbor's span.
		off, nw := int(s.wordOff[rec.sig]), s.list[rec.sig].nw()
		state.V[off] = rec.v0
		state.X[off] = rec.x0
		for i := 1; i < nw; i++ {
			var v, x uint64
			if i-1 < len(rec.vh) {
				v = rec.vh[i-1]
			}
			if i-1 < len(rec.xh) {
				x = rec.xh[i-1]
			}
			state.V[off+i] = v
			state.X[off+i] = x
		}
	})
}

// ScanChanges invokes fn with the signal index of every change record
// with time in (cursor, t] and returns the advanced cursor. It is
// ApplyUpTo without the state writes: the replay backend uses it to
// derive per-edge dirty-signal sets directly from the block record
// streams — the cost of one forward edge is the records inside it,
// near zero on idle stretches.
func (s *Store) ScanChanges(c Cursor, t uint64, fn func(sig int)) Cursor {
	return s.walkUpTo(c, t, func(rec record) { fn(rec.sig) })
}

// SeekCursor returns a cursor positioned just past every change record
// with time <= t, without replaying state: a binary search over the
// sparse block index plus at most one block decode. The replay
// backend's dirty-set cursor re-anchors here after a backward time
// seek.
func (s *Store) SeekCursor(t uint64) Cursor {
	// First block whose window starts after t; everything before it is
	// at least partially covered.
	i := sort.Search(len(s.blocks), func(i int) bool { return s.blocks[i].win*s.blockSize > t })
	if i == 0 {
		return Cursor{}
	}
	// Consume records <= t inside the last covered block, reusing the
	// exact cursor conventions of ScanChanges/ApplyUpTo.
	c := Cursor{Block: i - 1}
	return s.ScanChanges(c, t, func(int) {})
}

// NextChangeTime returns the time of the first change record at or
// after cursor c, if any. Replay sync uses it to jump record-free
// stretches (sparse blocks can leave enormous gaps) without touching
// per-boundary state.
func (s *Store) NextChangeTime(c Cursor) (uint64, bool) {
	for c.Block < len(s.blocks) {
		if c.Off == 0 {
			c.Time = s.blocks[c.Block].win * s.blockSize
		}
		r := blockReader{buf: s.blockData(c.Block), off: c.Off, time: c.Time, v1: s.v1}
		if rec, ok := r.next(); ok {
			return rec.time, true
		}
		if r.err != nil {
			s.fail(c.Block, r.err)
			return 0, false
		}
		c.Block++
		c.Off = 0
	}
	return 0, false
}

// IndexBytes returns the approximate heap footprint of the store's
// change data: resident block buffers (for a disk store, the block
// directory plus whatever the LRU cache currently holds) plus the
// per-signal sparse index, excluding materialized timelines. Reported
// by tools and benchmarks.
func (s *Store) IndexBytes() int {
	total := 0
	if s.src == nil {
		for i := range s.blocks {
			total += cap(s.blocks[i].buf)
		}
	} else {
		total += len(s.blocks) * 32 // directory entries
		total += s.cache.bytes()
	}
	for _, ts := range s.list {
		total += cap(ts.blkIdx)*4 + ts.last.byteSize()
	}
	return total
}
