// Package vcd implements writing and parsing of Value Change Dump
// traces. The paper's replay backend consumes VCD files — which carry
// design hierarchy but no definition information (§3.3) — so the parser
// reconstructs an instance tree from $scope nesting and per-signal
// change timelines that support value-at-time queries for reverse
// debugging.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/eval"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/val"
)

// idCode converts a dense index into a VCD identifier code (printable
// ASCII 33..126, base 94).
func idCode(n int) string {
	var b []byte
	for {
		b = append(b, byte('!'+n%94))
		n /= 94
		if n == 0 {
			break
		}
	}
	return string(b)
}

// Recorder streams a simulation into VCD text as the simulator runs.
type Recorder struct {
	w       *bufio.Writer
	ids     map[string]string // full signal path -> id code
	widths  map[string]int
	curTime uint64
	started bool
	err     error
}

// NewRecorder attaches to a simulator and writes the VCD header for its
// entire hierarchy. Value changes stream out as the simulation steps.
func NewRecorder(s *sim.Simulator, out io.Writer) *Recorder {
	r := &Recorder{
		w:      bufio.NewWriter(out),
		ids:    map[string]string{},
		widths: map[string]int{},
	}
	nl := s.Netlist()
	fmt.Fprintf(r.w, "$date\n  repro hgdb trace\n$end\n$version\n  repro vcd 1.0\n$end\n$timescale 1ns $end\n")
	n := 0
	var writeScope func(node *rtl.InstanceNode)
	writeScope = func(node *rtl.InstanceNode) {
		fmt.Fprintf(r.w, "$scope module %s $end\n", node.Name)
		for _, local := range node.Signals {
			full := node.Path + "." + local
			sig, ok := nl.Signal(full)
			if !ok {
				continue
			}
			id := idCode(n)
			n++
			r.ids[full] = id
			r.widths[full] = sig.Width
			fmt.Fprintf(r.w, "$var wire %d %s %s $end\n", sig.Width, id, local)
		}
		for _, c := range node.Children {
			writeScope(c)
		}
		fmt.Fprintf(r.w, "$upscope $end\n")
	}
	writeScope(nl.Hierarchy)
	fmt.Fprintf(r.w, "$enddefinitions $end\n$dumpvars\n")
	s.OnChange(func(sig *rtl.Signal, v eval.Value) {
		r.change(s.Time(), sig, v)
	})
	return r
}

func (r *Recorder) change(t uint64, sig *rtl.Signal, v eval.Value) {
	if r.err != nil {
		return
	}
	id, ok := r.ids[sig.Name]
	if !ok {
		return
	}
	if r.started && t != r.curTime {
		fmt.Fprintf(r.w, "#%d\n", t)
		r.curTime = t
	}
	if !r.started {
		r.started = true
		r.curTime = t
		if t != 0 {
			fmt.Fprintf(r.w, "#%d\n", t)
		}
	}
	if sig.Width == 1 {
		_, r.err = fmt.Fprintf(r.w, "%d%s\n", v.Bits&1, id)
		return
	}
	_, r.err = fmt.Fprintf(r.w, "b%s %s\n", strconv.FormatUint(v.Bits, 2), id)
}

// Flush completes the trace.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// TraceSignal is one signal's change timeline, held as packed
// four-state planes (value words plus a lazily tracked unknown-bit
// plane; see planeSeq).
type TraceSignal struct {
	Name  string // full hierarchical path
	Width int
	times []uint64
	pl    planeSeq
}

// ValueAt returns the signal's two-state value word at time t (the
// most recent change at or before t; zero before the first change).
// Unknown bits read as 0 and bits above 64 are not visible — callers
// that need the full four-state value use BitsAt.
func (ts *TraceSignal) ValueAt(t uint64) uint64 {
	i := sort.Search(len(ts.times), func(i int) bool { return ts.times[i] > t })
	if i == 0 {
		return 0
	}
	return ts.pl.word0(i - 1)
}

// BitsAt returns the signal's full four-state value at time t (known
// zero of the declared width before the first change). The result
// aliases the immutable timeline.
func (ts *TraceSignal) BitsAt(t uint64) val.Bits {
	i := sort.Search(len(ts.times), func(i int) bool { return ts.times[i] > t })
	if i == 0 {
		return val.Bits{Width: maxInt(ts.Width, 1)}
	}
	return ts.pl.bits(i-1, maxInt(ts.Width, 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumChanges returns how many value changes were recorded.
func (ts *TraceSignal) NumChanges() int { return len(ts.times) }

// ChangeCountAt returns how many changes were recorded at or before
// time t. It is a change stamp: two instants with equal counts bracket
// no change record, so the signal's value is identical at both — which
// is how the replay backend derives per-edge dirty sets from an eager
// timeline without re-reading values.
func (ts *TraceSignal) ChangeCountAt(t uint64) int {
	return sort.Search(len(ts.times), func(i int) bool { return ts.times[i] > t })
}

// ParseStats counts events on the parse path that change what the
// trace representation holds. Both Parse and ParseStore fill it.
type ParseStats struct {
	// XZChanges counts value changes carrying at least one x or z bit.
	// Four-state changes are stored exactly (the unknown-bit plane);
	// the count tells tools and users how much of the trace is
	// unknown-at-reset territory.
	XZChanges int
	// MaxWidth is the widest change literal seen, in bits. Arbitrary
	// widths are stored exactly — nothing is masked — so this is a
	// trace-shape statistic, not a loss report.
	MaxWidth int
}

// Trace is a parsed VCD file.
type Trace struct {
	Signals   map[string]*TraceSignal
	Hierarchy *rtl.InstanceNode
	MaxTime   uint64
	Stats     ParseStats
}

// Signal returns a signal timeline by full path.
func (t *Trace) Signal(path string) (*TraceSignal, bool) {
	s, ok := t.Signals[path]
	return s, ok
}

// SignalNames returns all signal paths, sorted.
func (t *Trace) SignalNames() []string {
	var names []string
	for n := range t.Signals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// vcdEvents receives the parsed elements of a VCD stream in file order.
// scanVCD drives it; Parse (eager per-signal timelines) and ParseStore
// (streaming block store) are both thin sinks over the same scanner, so
// the two trace representations can never drift on syntax handling.
type vcdEvents struct {
	// vardecl declares a signal: its id code, bit width, full
	// hierarchical path, and scope-local name.
	vardecl func(id string, width int, full, local string)
	// change reports one value change for a declared id at absolute
	// time t (#time markers never decrease, so t is non-decreasing
	// across calls). lit is the raw MSB-first literal — characters
	// from 01xXzZ, already validated by the scanner — NOT yet
	// extended or truncated to the signal's declared width (sinks
	// apply val.ParseVCD against the width they declared).
	change func(id string, t uint64, lit string)
}

// hierBuilder reconstructs the instance tree from $scope nesting.
type hierBuilder struct {
	scopes []string
	nodes  []*rtl.InstanceNode
	root   *rtl.InstanceNode
}

func (h *hierBuilder) enter(name string) {
	h.scopes = append(h.scopes, name)
	node := &rtl.InstanceNode{Name: name, Path: strings.Join(h.scopes, ".")}
	if len(h.nodes) == 0 {
		h.root = node
	} else {
		parent := h.nodes[len(h.nodes)-1]
		parent.Children = append(parent.Children, node)
	}
	h.nodes = append(h.nodes, node)
}

func (h *hierBuilder) exit() {
	if len(h.scopes) > 0 {
		h.scopes = h.scopes[:len(h.scopes)-1]
		h.nodes = h.nodes[:len(h.nodes)-1]
	}
}

func (h *hierBuilder) declare(local string) (full string) {
	full = local
	if len(h.scopes) > 0 {
		full = strings.Join(h.scopes, ".") + "." + local
	}
	if len(h.nodes) > 0 {
		node := h.nodes[len(h.nodes)-1]
		node.Signals = append(node.Signals, local)
	}
	return full
}

// maxLineBytes caps one VCD line. Vector changes carry one binary
// digit per bus bit, so very wide buses produce very long lines; 64
// MiB admits multi-megabit vectors while still bounding a hostile
// unterminated stream.
const maxLineBytes = 64 << 20

// scanVCD reads a VCD stream line by line, maintaining scope nesting
// in h and dispatching declarations and value changes to ev; the
// current time and the maximum timestamp seen are tracked here, in the
// one place both parsers share, and the latter is returned. Only the
// constructs produced by Recorder and common simulators are supported:
// $scope/$var/$upscope nesting, scalar and binary vector changes, and
// #time markers. #time markers must be non-decreasing — that is the
// vcdEvents.change contract ParseStore's delta encoding depends on —
// and a regression is rejected with a positioned error.
func scanVCD(rd io.Reader, h *hierBuilder, ev vcdEvents) (maxTime uint64, stats ParseStats, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	inDefs := true
	var curTime uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$scope"):
			f := strings.Fields(line)
			if len(f) < 3 {
				return 0, stats, fmt.Errorf("vcd: line %d: malformed scope line %q", lineNo, line)
			}
			h.enter(f[2])
		case strings.HasPrefix(line, "$upscope"):
			h.exit()
		case strings.HasPrefix(line, "$var"):
			// $var wire <width> <id> <name> [...] $end
			f := strings.Fields(line)
			if len(f) < 5 {
				return 0, stats, fmt.Errorf("vcd: line %d: malformed var line %q", lineNo, line)
			}
			width, err := strconv.Atoi(f[2])
			if err != nil || width < 0 {
				return 0, stats, fmt.Errorf("vcd: line %d: bad width in %q", lineNo, line)
			}
			id, local := f[3], f[4]
			ev.vardecl(id, width, h.declare(local), local)
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(line, "$"):
			// Skip other directives ($date/$version/$timescale/$dumpvars).
			continue
		case line[0] == '#':
			t, err := strconv.ParseUint(line[1:], 10, 64)
			if err != nil {
				return 0, stats, fmt.Errorf("vcd: line %d: bad timestamp %q", lineNo, line)
			}
			if t < curTime {
				// A regressed timestamp would make ParseStore's time-delta
				// encoding underflow and silently corrupt the block record
				// stream; reject it where the position is still known.
				return 0, stats, fmt.Errorf("vcd: line %d: timestamp #%d went backwards (previous #%d)",
					lineNo, t, curTime)
			}
			curTime = t
			if t > maxTime {
				maxTime = t
			}
		case line[0] == 'b' || line[0] == 'B':
			if inDefs {
				continue
			}
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				return 0, stats, fmt.Errorf("vcd: line %d: malformed vector change %q", lineNo, line)
			}
			raw := line[1:sp]
			if raw == "" {
				return 0, stats, fmt.Errorf("vcd: line %d: empty vector value %q", lineNo, line)
			}
			// Validate digits here (the one place with a line number) so
			// sinks can parse the literal infallibly; count four-state
			// and width statistics in the same pass.
			hasXZ := false
			for i := 0; i < len(raw); i++ {
				switch raw[i] {
				case '0', '1':
				case 'x', 'X', 'z', 'Z':
					hasXZ = true
				default:
					return 0, stats, fmt.Errorf("vcd: line %d: bad vector value %q", lineNo, line)
				}
			}
			if hasXZ {
				stats.XZChanges++
			}
			if len(raw) > stats.MaxWidth {
				stats.MaxWidth = len(raw)
			}
			ev.change(strings.TrimSpace(line[sp+1:]), curTime, raw)
		case line[0] == '0' || line[0] == '1' || line[0] == 'x' || line[0] == 'z' ||
			line[0] == 'X' || line[0] == 'Z':
			if inDefs {
				continue
			}
			if line[0] != '0' && line[0] != '1' {
				stats.XZChanges++
			}
			if stats.MaxWidth < 1 {
				stats.MaxWidth = 1
			}
			ev.change(line[1:], curTime, line[:1])
		}
	}
	return maxTime, stats, sc.Err()
}

// Parse reads a VCD stream into eagerly materialized per-signal
// timelines: every signal's complete change history in memory. Memory
// scales with the total number of changes in the file; for large traces
// where only a subset of signals will be inspected, prefer ParseStore.
func Parse(rd io.Reader) (*Trace, error) {
	tr := &Trace{Signals: map[string]*TraceSignal{}}
	byID := map[string]*TraceSignal{}
	var h hierBuilder
	maxTime, stats, err := scanVCD(rd, &h, vcdEvents{
		vardecl: func(id string, width int, full, local string) {
			ts := &TraceSignal{Name: full, Width: width}
			ts.pl.nw = sigWords(maxInt(width, 1))
			tr.Signals[full] = ts
			byID[id] = ts
		},
		change: func(id string, t uint64, lit string) {
			ts, ok := byID[id]
			if !ok {
				return
			}
			b, perr := val.ParseVCD(lit, maxInt(ts.Width, 1))
			if perr != nil {
				return // unreachable: the scanner validated the literal
			}
			ts.times = append(ts.times, t)
			ts.pl.appendBits(b)
		},
	})
	if err != nil {
		return nil, err
	}
	tr.MaxTime = maxTime
	tr.Hierarchy = h.root
	tr.Stats = stats
	return tr, nil
}
