package vcd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/rtl"
	"repro/internal/val"
)

// writeOpen round-trips a parsed store through the on-disk format.
func writeOpen(t testing.TB, st *Store, opts OpenOptions) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteStore(&buf, st); err != nil {
		t.Fatalf("WriteStore: %v", err)
	}
	ds, err := OpenStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()), opts)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return ds
}

func flattenHier(n *rtl.InstanceNode) []string {
	if n == nil {
		return nil
	}
	out := []string{n.Path}
	out = append(out, n.Signals...)
	for _, c := range n.Children {
		out = append(out, flattenHier(c)...)
	}
	return out
}

// diffStores asserts two stores answer bit-identically: metadata,
// hierarchy, lazy point queries, materialized queries, and state
// sweeps.
func diffStores(t *testing.T, mem, disk *Store, label string) {
	t.Helper()
	if disk.MaxTime != mem.MaxTime {
		t.Fatalf("%s: MaxTime disk %d, mem %d", label, disk.MaxTime, mem.MaxTime)
	}
	if disk.NumSignals() != mem.NumSignals() || disk.NumBlocks() != mem.NumBlocks() ||
		disk.NumChanges() != mem.NumChanges() {
		t.Fatalf("%s: shape disk %d/%d/%d, mem %d/%d/%d", label,
			disk.NumSignals(), disk.NumBlocks(), disk.NumChanges(),
			mem.NumSignals(), mem.NumBlocks(), mem.NumChanges())
	}
	if disk.Stats != mem.Stats {
		t.Fatalf("%s: stats disk %+v, mem %+v", label, disk.Stats, mem.Stats)
	}
	a, b := flattenHier(mem.Hierarchy), flattenHier(disk.Hierarchy)
	if len(a) != len(b) {
		t.Fatalf("%s: hierarchy size disk %d, mem %d", label, len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: hierarchy[%d] disk %q, mem %q", label, i, b[i], a[i])
		}
	}
	names := mem.SignalNames()
	// Sample times around every occupied block window (timestamps are
	// sparse — 1e9-scale gaps are normal, so never stride over MaxTime)
	// plus an even spread across the whole range.
	bs := mem.BlockSize()
	timeSet := map[uint64]bool{0: true, mem.MaxTime: true}
	for i := range mem.blocks {
		start := mem.blocks[i].win * bs
		for _, tm := range []uint64{start, start + 1, start + bs/2, start + bs - 1, start + bs} {
			if tm <= mem.MaxTime {
				timeSet[tm] = true
			}
		}
		if start > 0 {
			timeSet[start-1] = true
		}
	}
	for i := uint64(0); i < 64; i++ {
		timeSet[mem.MaxTime/64*i] = true
	}
	times := make([]uint64, 0, len(timeSet))
	for tm := range timeSet {
		times = append(times, tm)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, name := range names {
		ms, _ := mem.Signal(name)
		ds, ok := disk.Signal(name)
		if !ok {
			t.Fatalf("%s: disk missing %q", label, name)
		}
		if ds.Width != ms.Width || ds.Index() != ms.Index() || ds.NumChanges() != ms.NumChanges() {
			t.Fatalf("%s: %s meta disk %d/%d/%d, mem %d/%d/%d", label, name,
				ds.Width, ds.Index(), ds.NumChanges(), ms.Width, ms.Index(), ms.NumChanges())
		}
		for _, tm := range times {
			if got, want := ds.ValueAt(tm), ms.ValueAt(tm); got != want {
				t.Fatalf("%s: %s@%d disk %d, mem %d", label, name, tm, got, want)
			}
		}
	}
	// State sweeps share cursors across the two stores.
	memState := mem.NewState()
	diskState := disk.NewState()
	var mc, dc Cursor
	for _, tm := range times {
		if tm < mc.Time {
			continue
		}
		mc = mem.ApplyUpTo(mc, tm, memState)
		dc = disk.ApplyUpTo(dc, tm, diskState)
		if mc != dc {
			t.Fatalf("%s: cursor @%d disk %+v, mem %+v", label, tm, dc, mc)
		}
		for i := range memState.V {
			if memState.V[i] != diskState.V[i] || memState.X[i] != diskState.X[i] {
				t.Fatalf("%s: state word %d @%d disk %d/%d, mem %d/%d", label, i, tm,
					diskState.V[i], diskState.X[i], memState.V[i], memState.X[i])
			}
		}
		if sm, sd := mem.SeekCursor(tm), disk.SeekCursor(tm); sm != sd {
			t.Fatalf("%s: SeekCursor(%d) disk %+v, mem %+v", label, tm, sd, sm)
		}
	}
	// Materialized answers must also match.
	disk.Materialize(names...)
	for _, name := range names {
		ms, _ := mem.Signal(name)
		ds, _ := disk.Signal(name)
		for _, tm := range times {
			if got, want := ds.ValueAt(tm), ms.ValueAt(tm); got != want {
				t.Fatalf("%s: materialized %s@%d disk %d, mem %d", label, name, tm, got, want)
			}
		}
	}
	if err := disk.Err(); err != nil {
		t.Fatalf("%s: store poisoned: %v", label, err)
	}
}

// TestStoreRoundTrip is the primary disk-vs-memory differential on a
// real recorded design: the opened store must be bit-identical to the
// parsed store it was written from.
func TestStoreRoundTrip(t *testing.T) {
	data := recordDesign(t, 300)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	disk := writeOpen(t, mem, OpenOptions{})
	diffStores(t, mem, disk, "roundtrip")
}

// TestWriteStoreRejectsDiskStore: re-serializing an opened store is not
// supported (its blocks are not resident); the writer must say so.
func TestWriteStoreRejectsDiskStore(t *testing.T) {
	data := recordDesign(t, 20)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	disk := writeOpen(t, mem, OpenOptions{})
	if err := WriteStore(&bytes.Buffer{}, disk); err == nil {
		t.Fatal("WriteStore accepted a disk-backed store")
	}
}

// xorshift is the deterministic PRNG used for random-trace generation.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// randomVCD generates a syntactically valid trace with random signal
// widths, sparse timestamps, and wide/x-state vectors.
func randomVCD(rng *xorshift) []byte {
	var sb strings.Builder
	nsig := int(rng.next()%12) + 1
	sb.WriteString("$scope module top $end\n")
	widths := make([]int, nsig)
	for i := 0; i < nsig; i++ {
		widths[i] = int(rng.next()%80) + 1 // some wider than 64
		fmt.Fprintf(&sb, "$var wire %d %s s%d $end\n", widths[i], idCode(i), i)
	}
	sb.WriteString("$upscope $end\n$enddefinitions $end\n")
	tm := uint64(0)
	steps := int(rng.next() % 200)
	for s := 0; s < steps; s++ {
		fmt.Fprintf(&sb, "#%d\n", tm)
		nch := int(rng.next()%uint64(nsig)) + 1
		for c := 0; c < nch; c++ {
			i := int(rng.next() % uint64(nsig))
			if widths[i] == 1 {
				fmt.Fprintf(&sb, "%d%s\n", rng.next()&1, idCode(i))
				continue
			}
			var bits strings.Builder
			for b := 0; b < widths[i]; b++ {
				switch rng.next() % 6 {
				case 0:
					bits.WriteByte('x')
				case 1:
					bits.WriteByte('z')
				default:
					bits.WriteByte(byte('0' + rng.next()&1))
				}
			}
			fmt.Fprintf(&sb, "b%s %s\n", bits.String(), idCode(i))
		}
		// Mostly small hops, occasionally a huge sparse gap.
		if rng.next()%20 == 0 {
			tm += rng.next() % 1e9
		} else {
			tm += rng.next()%5 + 1
		}
	}
	return []byte(sb.String())
}

// TestDiskMemoryDifferentialRandom fuzzes the round trip with random
// traces: whatever ParseStore builds, WriteStore+OpenStore must
// reproduce bit-identically.
func TestDiskMemoryDifferentialRandom(t *testing.T) {
	rng := xorshift(0x9E3779B97F4A7C15)
	for i := 0; i < 25; i++ {
		data := randomVCD(&rng)
		bs := uint64(1) << (rng.next()%8 + 1) // 2..256
		mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: bs})
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		disk := writeOpen(t, mem, OpenOptions{})
		diffStores(t, mem, disk, fmt.Sprintf("random-%d(bs=%d)", i, bs))
	}
}

// TestIndexFile checks the streaming ingest path: indexing a VCD file
// must produce a store identical to ParseStore over the same text, and
// report honest stats.
func TestIndexFile(t *testing.T) {
	data := recordDesign(t, 250)
	dir := t.TempDir()
	vcdPath := filepath.Join(dir, "trace.vcd")
	storePath := filepath.Join(dir, "trace.hgdbstore")
	if err := os.WriteFile(vcdPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := IndexFile(vcdPath, storePath, StoreOptions{BlockSize: 16})
	if err != nil {
		t.Fatalf("IndexFile: %v", err)
	}
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Signals != mem.NumSignals() || stats.Blocks != mem.NumBlocks() ||
		stats.Changes != mem.NumChanges() || stats.MaxTime != mem.MaxTime {
		t.Fatalf("IndexStats %+v vs store %d/%d/%d/%d", stats,
			mem.NumSignals(), mem.NumBlocks(), mem.NumChanges(), mem.MaxTime)
	}
	fi, err := os.Stat(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != stats.Bytes {
		t.Fatalf("stats.Bytes = %d, file is %d", stats.Bytes, fi.Size())
	}
	disk, err := OpenStoreFile(storePath, OpenOptions{})
	if err != nil {
		t.Fatalf("OpenStoreFile: %v", err)
	}
	defer disk.Close()
	diffStores(t, mem, disk, "indexfile")

	// A malformed VCD must not leave a partial store file behind.
	badVCD := filepath.Join(dir, "bad.vcd")
	badStore := filepath.Join(dir, "bad.hgdbstore")
	if err := os.WriteFile(badVCD, []byte("$enddefinitions $end\n#5\n#3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := IndexFile(badVCD, badStore, StoreOptions{}); err == nil {
		t.Fatal("IndexFile accepted a regressed-timestamp trace")
	}
	if _, err := os.Stat(badStore); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial store file left behind: %v", err)
	}

	// Opening raw VCD text as a store must report ErrNotStore (the
	// hgdb-replay sniff-and-fallback contract).
	if _, err := OpenStoreFile(vcdPath, OpenOptions{}); !errors.Is(err, ErrNotStore) {
		t.Fatalf("raw VCD open error = %v, want ErrNotStore", err)
	}
}

// TestBlockCacheEviction pins the block LRU byte bound: with a cache
// smaller than the trace, repeated point queries across many blocks
// stay correct while resident cache bytes never exceed the bound.
func TestBlockCacheEviction(t *testing.T) {
	data := recordDesign(t, 300)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Largest single block sets the floor for a useful bound.
	maxBlock := 0
	for i := range mem.blocks {
		if len(mem.blocks[i].buf) > maxBlock {
			maxBlock = len(mem.blocks[i].buf)
		}
	}
	disk := writeOpen(t, mem, OpenOptions{BlockCacheBytes: 2 * maxBlock})
	tr := mem
	names := tr.SignalNames()
	rng := xorshift(42)
	for q := 0; q < 2000; q++ {
		name := names[rng.next()%uint64(len(names))]
		tm := rng.next() % (tr.MaxTime + 1)
		ms, _ := tr.Signal(name)
		ds, _ := disk.Signal(name)
		if got, want := ds.ValueAt(tm), ms.ValueAt(tm); got != want {
			t.Fatalf("%s@%d = %d, want %d", name, tm, got, want)
		}
		if got := disk.cache.bytes(); got > 2*maxBlock {
			t.Fatalf("cache bytes %d over bound %d", got, 2*maxBlock)
		}
	}
	if disk.cache.bytes() == 0 {
		t.Fatal("cache never held a block")
	}
	if err := disk.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptBlockPoisons flips bytes in the block-data region and
// checks the failure mode the decoder hardening bought: queries
// terminate (no fabricated records, no infinite loop) and the store
// reports a sticky error instead of silently serving garbage.
func TestCorruptBlockPoisons(t *testing.T) {
	data := recordDesign(t, 100)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, mem); err != nil {
		t.Fatal(err)
	}
	// WriteStore puts block data last; stomp a span near the end so
	// several blocks are damaged.
	raw := buf.Bytes()
	for i := len(raw) - 64; i < len(raw); i++ {
		raw[i] ^= 0xA5
	}
	disk, err := OpenStore(bytes.NewReader(raw), int64(len(raw)), OpenOptions{})
	if err != nil {
		// Also acceptable: damage reached metadata and open refused.
		return
	}
	state := disk.NewState()
	disk.ApplyUpTo(Cursor{}, disk.MaxTime, state) // must terminate
	for _, name := range disk.SignalNames() {
		ds, _ := disk.Signal(name)
		for tm := uint64(0); tm <= disk.MaxTime; tm += 5 {
			ds.ValueAt(tm)
		}
	}
	disk.Materialize(disk.SignalNames()...)
	if disk.Err() == nil {
		t.Fatal("corrupt block data went undetected")
	}
}

// TestBlockReaderHostile pins the decoder validation directly: corrupt
// varint streams must stop with an error, never fabricate records or
// loop forever (a zero-size record once made commit stop advancing).
func TestBlockReaderHostile(t *testing.T) {
	hostile := [][]byte{
		{0x80},                         // unterminated varint
		{0x01, 0x80},                   // good sig, unterminated delta
		{0x01, 0x01, 0x80},             // good sig+delta, unterminated bits
		bytes.Repeat([]byte{0x80}, 32), // run of continuation bytes
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // uvarint overflow
	}
	for i, buf := range hostile {
		r := blockReader{buf: buf}
		steps := 0
		for {
			rec, ok := r.next()
			if !ok {
				break
			}
			r.commit(rec)
			if steps++; steps > len(buf) {
				t.Fatalf("case %d: reader did not terminate", i)
			}
		}
		if r.err == nil && r.off < len(buf) {
			t.Fatalf("case %d: stopped early without error", i)
		}
	}
	// A valid v2 stream still decodes cleanly.
	var good []byte
	good = binary.AppendUvarint(good, 3<<2) // head: sig 3, known, narrow
	good = binary.AppendUvarint(good, 7)    // delta
	good = binary.AppendUvarint(good, 99)   // value word
	r := blockReader{buf: good, time: 100}
	rec, ok := r.next()
	if !ok || r.err != nil || rec.sig != 3 || rec.time != 107 || rec.v0 != 99 || rec.x0 != 0 {
		t.Fatalf("valid stream misdecoded: %+v ok=%v err=%v", rec, ok, r.err)
	}
	// And the legacy v1 three-varint form through the v1 reader.
	var v1good []byte
	v1good = binary.AppendUvarint(v1good, 3)
	v1good = binary.AppendUvarint(v1good, 7)
	v1good = binary.AppendUvarint(v1good, 99)
	r = blockReader{buf: v1good, time: 100, v1: true}
	rec, ok = r.next()
	if !ok || r.err != nil || rec.sig != 3 || rec.time != 107 || rec.v0 != 99 {
		t.Fatalf("valid v1 stream misdecoded: %+v ok=%v err=%v", rec, ok, r.err)
	}
	// A four-state wide record round-trips through appendRecord.
	b, err := val.ParseVCD("1x"+strings.Repeat("01", 40), 82)
	if err != nil {
		t.Fatal(err)
	}
	enc := appendRecord(nil, 5, 9, b)
	r = blockReader{buf: enc, time: 100}
	rec, ok = r.next()
	if !ok || r.err != nil || rec.sig != 5 || rec.time != 109 {
		t.Fatalf("wide record misdecoded: %+v ok=%v err=%v", rec, ok, r.err)
	}
	if got := rec.bits(82); !got.CaseEq(b) {
		t.Fatalf("wide record value = %s, want %s", got.String(), b.String())
	}
}

// TestOpenStoreHostile mutates a valid store's header and metadata in
// targeted ways; every mutation must be rejected at open (or at worst
// poison the store on first touch), never panic, hang, or over-allocate.
func TestOpenStoreHostile(t *testing.T) {
	data := recordDesign(t, 60)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, mem); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	put32 := func(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }
	put64 := func(b []byte, off int, v uint64) { binary.LittleEndian.PutUint64(b[off:], v) }
	cases := []struct {
		name     string
		mutate   func(b []byte) []byte
		notStore bool // must report ErrNotStore specifically
	}{
		{"empty", func(b []byte) []byte { return nil }, true},
		{"short", func(b []byte) []byte { return b[:headerSize-1] }, true},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, true},
		{"bad version", func(b []byte) []byte { put32(b, 8, 99); return b }, false},
		{"zero block size", func(b []byte) []byte { put64(b, 24, 0); return b }, false},
		{"section count bomb", func(b []byte) []byte { put32(b, 12, 1<<30); return b }, false},
		{"section table past EOF", func(b []byte) []byte { put64(b, 16, uint64(len(b))); return b }, false},
		{"signal count bomb", func(b []byte) []byte { put32(b, 40, 1<<31); return b }, false},
		{"block count bomb", func(b []byte) []byte { put32(b, 44, 1<<31); return b }, false},
		{"change count bomb", func(b []byte) []byte { put64(b, 48, 1<<62); return b }, false},
		{"truncated metadata", func(b []byte) []byte { return b[:headerSize+40] }, false},
		{"truncated blocks", func(b []byte) []byte { return b[:len(b)-len(b)/4] }, false},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), valid...))
		st, err := OpenStore(bytes.NewReader(b), int64(len(b)), OpenOptions{})
		if tc.notStore {
			if !errors.Is(err, ErrNotStore) {
				t.Fatalf("%s: err = %v, want ErrNotStore", tc.name, err)
			}
			continue
		}
		if err == nil {
			// truncated-blocks keeps metadata intact when sections precede
			// data; the damage must then surface as a sticky error on
			// first touch, not as fabricated values.
			state := st.NewState()
			st.ApplyUpTo(Cursor{}, st.MaxTime, state)
			if st.Err() == nil {
				t.Fatalf("%s: opened and served without error", tc.name)
			}
			continue
		}
		if errors.Is(err, ErrNotStore) {
			t.Fatalf("%s: misclassified as not-a-store: %v", tc.name, err)
		}
	}
}

// FuzzOpenStore throws hostile bytes at the full open + query path.
// Any input may be rejected; accepted inputs must be served without
// panics, hangs, or unbounded allocation, and corruption discovered
// lazily must poison the store rather than fabricate history.
func FuzzOpenStore(f *testing.F) {
	// Seeds: a valid store, a truncation, a bit flip, raw VCD text.
	data := recordDesign(f, 40)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 8})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, mem); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add(data)
	f.Add([]byte("hgdbstor"))
	// Four-state + >64-bit seed: x at reset on a 128-bit bus, mixed
	// x/z vectors later — exercises the v2 mask-plane record paths.
	fourState := []byte("$scope module top $end\n" +
		"$var wire 8 ! st $end\n" +
		"$var wire 128 \" bus $end\n" +
		"$upscope $end\n$enddefinitions $end\n" +
		"#0\nbxxxxxxxx !\nb" + strings.Repeat("x", 128) + " \"\n" +
		"#4\nb1x0z1010 !\nb1" + strings.Repeat("0", 126) + "1 \"\n" +
		"#9\nb10101010 !\nb" + strings.Repeat("10", 64) + " \"\n")
	memX, err := ParseStore(bytes.NewReader(fourState), StoreOptions{BlockSize: 4})
	if err != nil {
		f.Fatal(err)
	}
	var bufX bytes.Buffer
	if err := WriteStore(&bufX, memX); err != nil {
		f.Fatal(err)
	}
	f.Add(bufX.Bytes())
	f.Add(fourState)
	// Legacy version-1 file — the read-only compatibility path.
	f.Add(buildV1Store(f))
	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := OpenStore(bytes.NewReader(b), int64(len(b)), OpenOptions{BlockCacheBytes: 1 << 16})
		if err != nil {
			return
		}
		// Bounded exercise of every read path.
		names := st.SignalNames()
		if len(names) > 16 {
			names = names[:16]
		}
		times := []uint64{0, 1, st.BlockSize(), st.BlockSize() * 3, st.MaxTime}
		for _, name := range names {
			ts, _ := st.Signal(name)
			for _, tm := range times {
				ts.ValueAt(tm)
			}
		}
		state := st.NewState()
		var cur Cursor
		for _, tm := range times {
			if tm < cur.Time {
				continue
			}
			cur = st.ApplyUpTo(cur, tm, state)
			st.SeekCursor(tm)
			st.NextChangeTime(cur)
		}
		st.Materialize(names...)
		for _, name := range names {
			ts, _ := st.Signal(name)
			ts.ValueAt(st.MaxTime)
		}
	})
}

// buildV1Store hand-assembles a legacy version-1 store file: two-state
// three-varint records, plain single-word last-value rows, no x/z
// header statistics. It is the compatibility fixture for the files an
// older hgdb-index wrote before the four-state format bump.
func buildV1Store(t testing.TB) []byte {
	t.Helper()
	// Signals: top.a (8 bits, changes at t=0→1 and t=5→9) and
	// top.b (1 bit, change at t=0→1). One 16-tick block, window 0.
	blockData := []byte{}
	blockData = binary.AppendUvarint(blockData, 0) // sig 0
	blockData = binary.AppendUvarint(blockData, 0) // t=0
	blockData = binary.AppendUvarint(blockData, 1) // v=1
	blockData = binary.AppendUvarint(blockData, 1) // sig 1
	blockData = binary.AppendUvarint(blockData, 0) // t=0
	blockData = binary.AppendUvarint(blockData, 1) // v=1
	blockData = binary.AppendUvarint(blockData, 0) // sig 0
	blockData = binary.AppendUvarint(blockData, 5) // t=5
	blockData = binary.AppendUvarint(blockData, 9) // v=9

	blockDir := []byte{}
	blockDir = binary.AppendUvarint(blockDir, 0) // window 0
	blockDir = binary.AppendUvarint(blockDir, uint64(len(blockData)))
	blockDir = binary.AppendUvarint(blockDir, uint64(crc32.Checksum(blockData, crcTable)))

	// Strings: 0="top.a", 1="top.b", 2="top".
	strTab := []byte{}
	names := []string{"top.a", "top.b", "top"}
	strTab = binary.AppendUvarint(strTab, uint64(len(names)))
	for _, s := range names {
		strTab = binary.AppendUvarint(strTab, uint64(len(s)))
		strTab = append(strTab, s...)
	}

	// v1 signal rows: name ref, width, change count, sparse index, then
	// one plain last-value word per indexed block.
	signals := []byte{}
	signals = binary.AppendUvarint(signals, 0) // top.a
	signals = binary.AppendUvarint(signals, 8)
	signals = binary.AppendUvarint(signals, 2)
	signals = binary.AppendUvarint(signals, 1) // one indexed block
	signals = binary.AppendUvarint(signals, 0) // block slot 0
	signals = binary.AppendUvarint(signals, 9) // last value in block
	signals = binary.AppendUvarint(signals, 1) // top.b
	signals = binary.AppendUvarint(signals, 1)
	signals = binary.AppendUvarint(signals, 1)
	signals = binary.AppendUvarint(signals, 1)
	signals = binary.AppendUvarint(signals, 0)
	signals = binary.AppendUvarint(signals, 1)

	// Hierarchy: one node "top" owning both signals.
	hier := []byte{}
	hier = binary.AppendUvarint(hier, 1) // node count
	hier = binary.AppendUvarint(hier, 2) // name ref "top"
	hier = binary.AppendUvarint(hier, 2) // two signals
	hier = binary.AppendUvarint(hier, 0)
	hier = binary.AppendUvarint(hier, 1)
	hier = binary.AppendUvarint(hier, 0) // no children

	secs := []struct {
		id   uint32
		data []byte
	}{
		{secBlockDir, blockDir},
		{secSignals, signals},
		{secStrings, strTab},
		{secHier, hier},
		{secBlocks, blockData},
	}
	tableOff := uint64(headerSize)
	dataOff := tableOff + uint64(len(secs)*20)
	var table, body []byte
	for _, s := range secs {
		var tmp [20]byte
		binary.LittleEndian.PutUint32(tmp[0:4], s.id)
		binary.LittleEndian.PutUint64(tmp[4:12], dataOff)
		binary.LittleEndian.PutUint64(tmp[12:20], uint64(len(s.data)))
		table = append(table, tmp[:]...)
		body = append(body, s.data...)
		dataOff += uint64(len(s.data))
	}

	h := make([]byte, headerSize)
	copy(h[0:8], storeMagic[:])
	binary.LittleEndian.PutUint32(h[8:12], storeVersionV1)
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(secs)))
	binary.LittleEndian.PutUint64(h[16:24], tableOff)
	binary.LittleEndian.PutUint64(h[24:32], 16) // block size
	binary.LittleEndian.PutUint64(h[32:40], 5)  // max time
	binary.LittleEndian.PutUint32(h[40:44], 2)  // signals
	binary.LittleEndian.PutUint32(h[44:48], 1)  // blocks
	binary.LittleEndian.PutUint64(h[48:56], 3)  // changes
	// h[56:64]: the v1 masked-wide-change statistic; left zero.
	return append(append(h, table...), body...)
}

// TestOpenStoreV1Legacy pins backwards compatibility: a version-1
// (two-state) store file still opens read-only and serves correct
// values through every query path, with MaxWidth reconstructed from
// the declared widths.
func TestOpenStoreV1Legacy(t *testing.T) {
	raw := buildV1Store(t)
	st, err := OpenStore(bytes.NewReader(raw), int64(len(raw)), OpenOptions{})
	if err != nil {
		t.Fatalf("OpenStore(v1): %v", err)
	}
	if !st.v1 {
		t.Fatal("v1 store not flagged as legacy")
	}
	a, ok := st.Signal("top.a")
	if !ok {
		t.Fatal("top.a missing")
	}
	if got := a.ValueAt(0); got != 1 {
		t.Fatalf("a@0 = %d, want 1", got)
	}
	if got := a.ValueAt(5); got != 9 {
		t.Fatalf("a@5 = %d, want 9", got)
	}
	if b := a.BitsAt(5); b.HasX() || b.Width != 8 || b.V0 != 9 {
		t.Fatalf("a@5 bits = %s", b.String())
	}
	state := st.NewState()
	st.ApplyUpTo(Cursor{}, st.MaxTime, state)
	if got := st.StateBits(state, a); got.V0 != 9 {
		t.Fatalf("state a = %s, want 9", got.String())
	}
	if st.Stats.XZChanges != 0 {
		t.Fatalf("v1 store reports %d x/z changes", st.Stats.XZChanges)
	}
	if st.Stats.MaxWidth != 8 {
		t.Fatalf("v1 MaxWidth = %d, want 8 (reconstructed from widths)", st.Stats.MaxWidth)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenStoreNewerVersion pins forward negotiation: a store stamped
// with a future format version must fail with the explicit
// newer-version error, not a generic corruption message and never a
// misdecode.
func TestOpenStoreNewerVersion(t *testing.T) {
	data := recordDesign(t, 20)
	mem, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, mem); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[8:12], StoreVersion+1)
	_, err = OpenStore(bytes.NewReader(raw), int64(len(raw)), OpenOptions{})
	if err == nil {
		t.Fatal("newer-version store opened")
	}
	if errors.Is(err, ErrNotStore) {
		t.Fatalf("newer version misclassified as not-a-store: %v", err)
	}
	for _, want := range []string{"newer", fmt.Sprintf("version %d", StoreVersion+1)} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}
