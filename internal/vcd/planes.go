package vcd

import "repro/internal/val"

// planeSeq is an append-only sequence of packed four-state values of a
// fixed word width: entry i's value plane is v[i*nw:(i+1)*nw]. The X
// plane is tracked lazily — x stays nil until an entry actually
// carries unknown bits, so fully two-state signals (the common case)
// pay nothing for four-state support. Entries handed back out of bits
// alias the packed storage; a planeSeq must therefore be treated as
// immutable once any Bits built from it may still be live (timelines
// already promise exactly that).
type planeSeq struct {
	nw int
	v  []uint64
	x  []uint64 // nil until an entry has unknown bits; then len(v)
}

// sigWords returns the per-entry word count for a declared width.
func sigWords(width int) int {
	if width <= 64 {
		return 1
	}
	return (width + 63) / 64
}

// length returns the number of entries.
func (p *planeSeq) length() int { return len(p.v) / p.nw }

// grow ensures the X plane exists (zero-filled for prior entries).
func (p *planeSeq) growX() {
	if p.x == nil {
		p.x = make([]uint64, len(p.v), cap(p.v))
	}
}

// appendBits adds one entry.
func (p *planeSeq) appendBits(b val.Bits) {
	hasX := b.HasX()
	if hasX {
		p.growX()
	}
	for i := 0; i < p.nw; i++ {
		p.v = append(p.v, b.Word(i))
	}
	if p.x != nil {
		for i := 0; i < p.nw; i++ {
			p.x = append(p.x, b.XWord(i))
		}
	}
}

// setLast overwrites the final entry (the ingest's same-block
// last-value update).
func (p *planeSeq) setLast(b val.Bits) {
	if b.HasX() {
		p.growX()
	}
	off := len(p.v) - p.nw
	for i := 0; i < p.nw; i++ {
		p.v[off+i] = b.Word(i)
	}
	if p.x != nil {
		for i := 0; i < p.nw; i++ {
			p.x[off+i] = b.XWord(i)
		}
	}
}

// word0 returns entry i's low value word — the two-state legacy view.
func (p *planeSeq) word0(i int) uint64 { return p.v[i*p.nw] }

// bits returns entry i as a val.Bits of the given width, aliasing the
// packed planes (no copy).
func (p *planeSeq) bits(i, width int) val.Bits {
	b := val.Bits{Width: width, V0: p.v[i*p.nw]}
	if p.nw > 1 {
		b.VH = p.v[i*p.nw+1 : (i+1)*p.nw]
	}
	if p.x != nil {
		b.X0 = p.x[i*p.nw]
		if p.nw > 1 {
			b.XH = p.x[i*p.nw+1 : (i+1)*p.nw]
		}
	}
	return b
}

// byteSize returns the heap footprint of the packed planes.
func (p *planeSeq) byteSize() int { return 8 * (cap(p.v) + cap(p.x)) }
