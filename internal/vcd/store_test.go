package vcd

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// recordDesign simulates a two-level design (top counter plus two child
// accumulators) for n cycles and returns the VCD text. Multiple scopes
// and widths exercise hierarchy reconstruction and vector changes.
func recordDesign(t testing.TB, n int) []byte {
	t.Helper()
	c := generator.NewCircuit("Top")
	leaf := c.NewModule("Leaf")
	d := leaf.Input("d", ir.UIntType(8))
	q := leaf.Output("q", ir.UIntType(8))
	acc := leaf.RegInit("acc", ir.UIntType(8), leaf.Lit(0, 8))
	leaf.When(d.Bit(0), func() {
		acc.Set(acc.AddMod(d))
	})
	q.Set(acc)
	top := c.NewModule("Top")
	en := top.Input("en", ir.UIntType(1))
	out := top.Output("out", ir.UIntType(16))
	count := top.RegInit("count", ir.UIntType(16), top.Lit(0, 16))
	top.When(en, func() {
		count.Set(count.AddMod(top.Lit(1, 16)))
	})
	u0 := top.Instance("u0", leaf)
	u1 := top.Instance("u1", leaf)
	u0.IO("d").Set(count.Bits(7, 0))
	u1.IO("d").Set(count.Bits(8, 1))
	out.Set(count.AddMod(count.AddMod(u0.IO("q").Cat(u1.IO("q")))))
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl)
	var buf bytes.Buffer
	rec := NewRecorder(s, &buf)
	if err := s.Reset("Top.reset", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Poke("Top.en", 1); err != nil {
		t.Fatal(err)
	}
	s.Run(n)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreMatchesEagerParse is the parser-level differential: every
// signal's value at every time must be identical between the eager
// per-signal timelines and the block store, queried lazily (block
// decode), again after materialization, and via ApplyUpTo state sweeps.
func TestStoreMatchesEagerParse(t *testing.T) {
	data := recordDesign(t, 300)
	tr, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Block size 16 forces many blocks; 300 cycles crosses plenty of
	// boundaries.
	st, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxTime != tr.MaxTime {
		t.Fatalf("MaxTime: store %d, eager %d", st.MaxTime, tr.MaxTime)
	}
	names := tr.SignalNames()
	storeNames := st.SignalNames()
	if len(names) != len(storeNames) {
		t.Fatalf("signal count: store %d, eager %d", len(storeNames), len(names))
	}
	check := func(phase string) {
		for _, name := range names {
			es, _ := tr.Signal(name)
			ss, ok := st.Signal(name)
			if !ok {
				t.Fatalf("%s: store missing signal %q", phase, name)
			}
			if ss.NumChanges() != es.NumChanges() {
				t.Fatalf("%s: %s changes: store %d, eager %d",
					phase, name, ss.NumChanges(), es.NumChanges())
			}
			for tm := uint64(0); tm <= tr.MaxTime; tm++ {
				if got, want := ss.ValueAt(tm), es.ValueAt(tm); got != want {
					t.Fatalf("%s: %s@%d = %d, want %d", phase, name, tm, got, want)
				}
			}
		}
	}
	check("lazy")
	// Materialize a subset, then everything; answers must not change.
	st.Materialize(names[0], names[len(names)/2])
	if s, _ := st.Signal(names[0]); !s.Materialized() {
		t.Fatal("signal not materialized")
	}
	check("partial")
	st.Materialize(names...)
	check("materialized")
}

// TestStoreApplyUpTo checks cursor-resumed state sweeps against eager
// per-signal queries: replaying in arbitrary forward increments must
// land on the exact signal values at every stop.
func TestStoreApplyUpTo(t *testing.T) {
	data := recordDesign(t, 200)
	tr, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	state := st.NewState()
	var cur Cursor
	// Irregular hop sizes: within-block, block-exact, multi-block.
	var at uint64
	for _, hop := range []uint64{1, 2, 5, 8, 3, 16, 1, 40, 7, 64, 13} {
		at += hop
		if at > st.MaxTime {
			at = st.MaxTime
		}
		cur = st.ApplyUpTo(cur, at, state)
		for _, name := range tr.SignalNames() {
			es, _ := tr.Signal(name)
			ss, _ := st.Signal(name)
			if got, want := st.StateBits(state, ss).V0, es.ValueAt(at); got != want {
				t.Fatalf("state[%s]@%d = %d, want %d", name, at, got, want)
			}
		}
	}
}

// TestStoreHierarchy checks the scope tree matches the eager parser's.
func TestStoreHierarchy(t *testing.T) {
	data := recordDesign(t, 10)
	tr, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ParseStore(bytes.NewReader(data), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var flatten func(n *rtl.InstanceNode) []string
	flatten = func(n *rtl.InstanceNode) []string {
		if n == nil {
			return nil
		}
		out := []string{n.Path}
		out = append(out, n.Signals...)
		for _, c := range n.Children {
			out = append(out, flatten(c)...)
		}
		return out
	}
	a, b := flatten(tr.Hierarchy), flatten(st.Hierarchy)
	if len(a) != len(b) {
		t.Fatalf("hierarchy size: eager %d, store %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hierarchy[%d]: eager %q, store %q", i, a[i], b[i])
		}
	}
	if st.NumBlocks() == 0 || st.NumChanges() == 0 || st.IndexBytes() == 0 {
		t.Fatalf("store stats empty: blocks=%d changes=%d bytes=%d",
			st.NumBlocks(), st.NumChanges(), st.IndexBytes())
	}
}

// TestCursorWindowBoundaries pins the cursor conventions of the shared
// walk (walkUpTo) at exact block-window edges — the times where an
// off-by-one between "partially covered" and "exhausted" block
// handling would corrupt resumed sweeps. For every boundary-adjacent
// time: SeekCursor must equal the cursor a from-zero ScanChanges walk
// produces, resumed ApplyUpTo sweeps must match fresh ones, and
// NextChangeTime must report the first record past the cursor.
func TestCursorWindowBoundaries(t *testing.T) {
	data := recordDesign(t, 120)
	tr, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	const bs = 16
	st, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	// Change times, for NextChangeTime's expected answers.
	changed := map[uint64]bool{}
	var changeTimes []uint64
	for _, name := range tr.SignalNames() {
		es, _ := tr.Signal(name)
		for tm := range es.times {
			if !changed[es.times[tm]] {
				changed[es.times[tm]] = true
				changeTimes = append(changeTimes, es.times[tm])
			}
		}
	}
	sort.Slice(changeTimes, func(i, j int) bool { return changeTimes[i] < changeTimes[j] })
	firstAfter := func(tm uint64) (uint64, bool) {
		i := sort.Search(len(changeTimes), func(i int) bool { return changeTimes[i] > tm })
		if i == len(changeTimes) {
			return 0, false
		}
		return changeTimes[i], true
	}

	var times []uint64
	for win := uint64(0); win*bs <= st.MaxTime+bs; win++ {
		for _, tm := range []uint64{win * bs, win*bs + bs - 1} {
			times = append(times, tm)
			if tm > 0 {
				times = append(times, tm-1)
			}
		}
	}
	state := st.NewState()
	fresh := st.NewState()
	var cur Cursor
	var prev uint64
	for _, tm := range times {
		if tm < prev {
			continue
		}
		prev = tm
		// Resumed sweep vs fresh sweep vs eager truth.
		cur = st.ApplyUpTo(cur, tm, state)
		fresh.Zero()
		freshCur := st.ApplyUpTo(Cursor{}, tm, fresh)
		for _, name := range tr.SignalNames() {
			es, _ := tr.Signal(name)
			ss, _ := st.Signal(name)
			want := es.ValueAt(tm)
			if st.StateBits(state, ss).V0 != want || st.StateBits(fresh, ss).V0 != want {
				t.Fatalf("sweep @%d %s: resumed %d, fresh %d, want %d",
					tm, name, st.StateBits(state, ss).V0, st.StateBits(fresh, ss).V0, want)
			}
		}
		// SeekCursor must land exactly where the walks landed.
		if sk := st.SeekCursor(tm); sk != freshCur {
			t.Fatalf("SeekCursor(%d) = %+v, walk cursor %+v", tm, sk, freshCur)
		}
		if cur != freshCur {
			t.Fatalf("resumed cursor @%d = %+v, fresh %+v", tm, cur, freshCur)
		}
		// NextChangeTime from the advanced cursor: first change > tm.
		nt, ok := st.NextChangeTime(cur)
		wantNT, wantOK := firstAfter(tm)
		if ok != wantOK || (ok && nt != wantNT) {
			t.Fatalf("NextChangeTime after %d = %d,%v, want %d,%v", tm, nt, ok, wantNT, wantOK)
		}
	}
}

// TestZeroChangeSignal pins behavior for declared-but-never-changed
// signals: every query answers zero, sweeps leave their slot zero, and
// materialization marks them done with an empty timeline.
func TestZeroChangeSignal(t *testing.T) {
	src := `$scope module top $end
$var wire 8 ! quiet $end
$var wire 1 " clk $end
$upscope $end
$enddefinitions $end
#0
1"
#100
0"
`
	st, err := ParseStore(bytes.NewReader([]byte(src)), StoreOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := st.Signal("top.quiet")
	if !ok {
		t.Fatal("zero-change signal not declared")
	}
	if ts.NumChanges() != 0 {
		t.Fatalf("NumChanges = %d", ts.NumChanges())
	}
	for _, tm := range []uint64{0, 1, 50, 100} {
		if ts.ValueAt(tm) != 0 {
			t.Fatalf("ValueAt(%d) != 0", tm)
		}
	}
	state := st.NewState()
	st.ApplyUpTo(Cursor{}, st.MaxTime, state)
	if b := st.StateBits(state, ts); b.V0 != 0 || b.HasX() {
		t.Fatalf("sweep wrote %s into zero-change slot", b.String())
	}
	st.Materialize("top.quiet")
	if !ts.Materialized() {
		t.Fatal("zero-change signal not materialized")
	}
	if ts.ValueAt(50) != 0 {
		t.Fatal("materialized zero-change signal nonzero")
	}
}

// TestTimelineLRUBudget pins the materialized-timeline byte bound:
// when successive dependency unions push the resident set over the
// budget, the least recently advised timelines drop back to
// block-index form — and answers do not change.
func TestTimelineLRUBudget(t *testing.T) {
	data := recordDesign(t, 300)
	st, err := ParseStore(bytes.NewReader(data), StoreOptions{BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	names := st.SignalNames()
	if len(names) < 4 {
		t.Fatalf("need >= 4 signals, have %d", len(names))
	}
	// Budget that fits roughly half the signals' timelines.
	total := 0
	for _, n := range names {
		ss, _ := st.Signal(n)
		total += 16 * ss.NumChanges()
	}
	st.SetTimelineBudget(total / 2)

	half := len(names) / 2
	st.Materialize(names[:half]...)
	st.Materialize(names[half:]...)
	if got := st.TimelineBytes(); got > total/2 {
		t.Fatalf("TimelineBytes = %d, budget %d", got, total/2)
	}
	// The most recent union survives preferentially: at least one of the
	// second batch must be resident, and evicted signals still answer.
	resident := 0
	for _, n := range names[half:] {
		ss, _ := st.Signal(n)
		if ss.Materialized() {
			resident++
		}
	}
	if resident == 0 {
		t.Fatal("entire most-recent union evicted")
	}
	for _, n := range names {
		es, _ := tr.Signal(n)
		ss, _ := st.Signal(n)
		for tm := uint64(0); tm <= st.MaxTime; tm += 7 {
			if got, want := ss.ValueAt(tm), es.ValueAt(tm); got != want {
				t.Fatalf("post-eviction %s@%d = %d, want %d", n, tm, got, want)
			}
		}
	}
	// Re-advising an evicted union re-materializes it.
	st.SetTimelineBudget(0)
	st.Materialize(names...)
	for _, n := range names {
		ss, _ := st.Signal(n)
		if !ss.Materialized() {
			t.Fatalf("%s not rematerialized under default budget", n)
		}
	}
}

// TestStoreSparseTimestamps pins the sparse-block property: real
// simulator dumps count timescale units, not cycles, so timestamps can
// be enormous (#1e12 for a 1 s run at 1 ps) with huge empty gaps.
// Block memory must scale with changes, not with MaxTime/blockSize,
// and queries inside and across the gaps must agree with the eager
// parser.
func TestStoreSparseTimestamps(t *testing.T) {
	const trace = `$scope module Top $end
$var wire 1 ! a $end
$var wire 8 " v $end
$upscope $end
$enddefinitions $end
#0
1!
b101 "
#70
0!
#1000000000000
1!
b11 "
#1000000000100
0!
`
	st, err := ParseStore(bytes.NewReader([]byte(trace)), StoreOptions{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Windows touched: 0, 1 (t=70), 15625000000 (t=1e12), and t=1e12+100
	// lands in the next window — 4 non-empty blocks, not ~1.5e10.
	if got := st.NumBlocks(); got != 4 {
		t.Fatalf("NumBlocks = %d, want 4 (sparse)", got)
	}
	if st.IndexBytes() > 1<<12 {
		t.Fatalf("IndexBytes = %d, want tiny for 6 changes", st.IndexBytes())
	}
	tr, err := Parse(bytes.NewReader([]byte(trace)))
	if err != nil {
		t.Fatal(err)
	}
	times := []uint64{0, 1, 69, 70, 71, 1000, 999999999999, 1000000000000,
		1000000000050, 1000000000100, st.MaxTime}
	check := func(phase string) {
		for _, name := range []string{"Top.a", "Top.v"} {
			es, _ := tr.Signal(name)
			ss, _ := st.Signal(name)
			for _, tm := range times {
				if got, want := ss.ValueAt(tm), es.ValueAt(tm); got != want {
					t.Fatalf("%s: %s@%d = %d, want %d", phase, name, tm, got, want)
				}
			}
		}
	}
	check("lazy")
	// State sweeps must step across the gap without visiting it.
	state := st.NewState()
	var cur Cursor
	for _, tm := range times {
		cur = st.ApplyUpTo(cur, tm, state)
		for _, name := range []string{"Top.a", "Top.v"} {
			es, _ := tr.Signal(name)
			ss, _ := st.Signal(name)
			if got, want := st.StateBits(state, ss).V0, es.ValueAt(tm); got != want {
				t.Fatalf("sweep: %s@%d = %d, want %d", name, tm, got, want)
			}
		}
	}
	st.Materialize("Top.a", "Top.v")
	check("materialized")
}
