package vcd

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/val"
)

func buildAndSim(t *testing.T) *sim.Simulator {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(nl)
}

func recordTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	s := buildAndSim(t)
	var buf bytes.Buffer
	rec := NewRecorder(s, &buf)
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	s.Run(10)
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return &buf
}

func TestRecorderHeader(t *testing.T) {
	buf := recordTrace(t)
	text := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module Counter $end",
		"$enddefinitions $end",
		"$var wire 8 ",
		"$var wire 1 ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in VCD:\n%s", want, text[:400])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	buf := recordTrace(t)
	tr, err := Parse(buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ts, ok := tr.Signal("Counter.count")
	if !ok {
		t.Fatalf("count not in trace; have %v", tr.SignalNames())
	}
	if ts.Width != 8 {
		t.Fatalf("count width = %d", ts.Width)
	}
	// After 1 reset cycle + enable, count at time 1+k is k (commits at
	// end of each enabled cycle).
	if got := ts.ValueAt(tr.MaxTime); got == 0 {
		t.Fatalf("final count = %d, want nonzero", got)
	}
	// Monotone counting: value at t+1 >= value at t for our run.
	var prev uint64
	for tm := uint64(0); tm <= tr.MaxTime; tm++ {
		v := ts.ValueAt(tm)
		if v < prev {
			t.Fatalf("count decreased: %d -> %d at t=%d", prev, v, tm)
		}
		prev = v
	}
	if tr.Hierarchy == nil || tr.Hierarchy.Name != "Counter" {
		t.Fatalf("hierarchy = %+v", tr.Hierarchy)
	}
}

func TestValueAtBeforeFirstChange(t *testing.T) {
	ts := &TraceSignal{Name: "x", Width: 4}
	if ts.ValueAt(100) != 0 {
		t.Fatal("empty timeline not zero")
	}
	ts.times = []uint64{5, 10}
	ts.pl.nw = 1
	ts.pl.v = []uint64{3, 7}
	cases := []struct{ t, want uint64 }{{0, 0}, {4, 0}, {5, 3}, {9, 3}, {10, 7}, {100, 7}}
	for _, c := range cases {
		if got := ts.ValueAt(c.t); got != c.want {
			t.Errorf("ValueAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if ts.NumChanges() != 2 {
		t.Fatalf("NumChanges = %d", ts.NumChanges())
	}
}

func TestParseHandlesXZStates(t *testing.T) {
	src := `$scope module top $end
$var wire 4 ! sig $end
$upscope $end
$enddefinitions $end
#0
bx0z1 !
#1
b1010 !
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ts, _ := tr.Signal("top.sig")
	// Full four-state round trip: x and z survive the parse verbatim.
	if got := ts.BitsAt(0).String(); got != "4'bx0z1" {
		t.Fatalf("four-state value at 0 = %s, want 4'bx0z1", got)
	}
	if !ts.BitsAt(0).HasX() {
		t.Fatal("x/z bits lost")
	}
	if ts.ValueAt(1) != 0b1010 {
		t.Fatalf("value at 1 = %b", ts.ValueAt(1))
	}
	if b := ts.BitsAt(1); b.HasX() {
		t.Fatalf("known value at 1 reports unknown bits: %s", b.String())
	}
	if tr.Stats.XZChanges != 1 {
		t.Fatalf("Stats.XZChanges = %d, want 1", tr.Stats.XZChanges)
	}
}

func TestParseScalarChanges(t *testing.T) {
	src := `$scope module top $end
$var wire 1 ! clk $end
$upscope $end
$enddefinitions $end
#0
0!
#1
1!
#2
0!
`
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := tr.Signal("top.clk")
	if ts.ValueAt(0) != 0 || ts.ValueAt(1) != 1 || ts.ValueAt(2) != 0 {
		t.Fatal("scalar timeline wrong")
	}
	if tr.MaxTime != 2 {
		t.Fatalf("MaxTime = %d", tr.MaxTime)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"$scope module\n",          // malformed scope
		"$var wire x ! sig $end\n", // bad width
		"$enddefinitions $end\n#zz\n",
		"$scope module t $end\n$var wire 1 ! s $end\n$enddefinitions $end\n#0\nbxy !\n",
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted malformed VCD %q", src)
		}
	}
}

// TestTimeRegressionRejected pins the scanVCD timestamp contract: a
// regressed #time marker must fail the parse with a positioned error,
// not flow into ParseStore where the time-delta encoding would
// underflow and silently corrupt the block record stream.
func TestTimeRegressionRejected(t *testing.T) {
	src := `$scope module top $end
$var wire 1 ! clk $end
$upscope $end
$enddefinitions $end
#0
1!
#5
0!
#3
1!
`
	for name, parse := range map[string]func() error{
		"Parse": func() error { _, err := Parse(strings.NewReader(src)); return err },
		"ParseStore": func() error {
			_, err := ParseStore(strings.NewReader(src), StoreOptions{BlockSize: 4})
			return err
		},
	} {
		err := parse()
		if err == nil {
			t.Fatalf("%s accepted a regressed timestamp", name)
		}
		// The error must point at the offending line (line 9: "#3").
		if !strings.Contains(err.Error(), "line 9") || !strings.Contains(err.Error(), "backwards") {
			t.Fatalf("%s: unpositioned regression error: %v", name, err)
		}
	}
	// Equal timestamps are legal (repeated #t markers appear in real
	// dumps) and must still parse.
	ok := strings.Replace(src, "#3", "#5", 1)
	if _, err := Parse(strings.NewReader(ok)); err != nil {
		t.Fatalf("repeated timestamp rejected: %v", err)
	}
}

// TestWideVectorFullWidth pins the four-state wide-bus semantics: a
// vector change wider than 64 bits is stored at full width (no masking)
// and reads back bit-exact through BitsAt, while the legacy two-state
// ValueAt view still exposes its low 64 bits.
func TestWideVectorFullWidth(t *testing.T) {
	// 100-bit vector: 36 high bits set, low 64 bits a known pattern.
	high := strings.Repeat("1", 36)
	low := "1010" + strings.Repeat("0", 56) + "1101"
	src := `$scope module top $end
$var wire 100 ! bus $end
$var wire 1 " clk $end
$upscope $end
$enddefinitions $end
#0
b` + high + low + ` !
0"
#1
b101 !
`
	want, err := strconv.ParseUint(low, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	wantBits, err := val.ParseVCD(high+low, 100)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("wide vector aborted parse: %v", err)
	}
	ts, _ := tr.Signal("top.bus")
	if got := ts.ValueAt(0); got != want {
		t.Fatalf("wide vector low bits = %#x, want %#x", got, want)
	}
	if got := ts.BitsAt(0); !got.CaseEq(wantBits) {
		t.Fatalf("wide vector = %s, want %s", got.String(), wantBits.String())
	}
	if got := ts.ValueAt(1); got != 0b101 {
		t.Fatalf("narrow follow-up = %#x", got)
	}
	if tr.Stats.XZChanges != 0 || tr.Stats.MaxWidth != 100 {
		t.Fatalf("Stats = %+v, want XZChanges 0, MaxWidth 100", tr.Stats)
	}
	st, err := ParseStore(strings.NewReader(src), StoreOptions{})
	if err != nil {
		t.Fatalf("wide vector aborted store parse: %v", err)
	}
	ss, _ := st.Signal("top.bus")
	if got := ss.ValueAt(0); got != want {
		t.Fatalf("store wide vector low bits = %#x, want %#x", got, want)
	}
	if got := ss.BitsAt(0); !got.CaseEq(wantBits) {
		t.Fatalf("store wide vector = %s, want %s", got.String(), wantBits.String())
	}
	if st.Stats.XZChanges != 0 || st.Stats.MaxWidth != 100 {
		t.Fatalf("store Stats = %+v, want XZChanges 0, MaxWidth 100", st.Stats)
	}
	// And through the disk round trip, both lazily and materialized.
	disk := writeOpen(t, st, OpenOptions{})
	ds, _ := disk.Signal("top.bus")
	if got := ds.BitsAt(0); !got.CaseEq(wantBits) {
		t.Fatalf("disk wide vector = %s, want %s", got.String(), wantBits.String())
	}
	disk.Materialize("top.bus")
	if got := ds.BitsAt(0); !got.CaseEq(wantBits) {
		t.Fatalf("materialized disk wide vector = %s, want %s", got.String(), wantBits.String())
	}
}

// TestVeryLongLines pins the scanner buffer fix: a single change line
// for a multi-megabit bus blows bufio.Scanner's default 64 KiB token
// cap and used to kill the whole trace.
func TestVeryLongLines(t *testing.T) {
	const wideBits = 2 << 20 // one 2 Mib vector change = a ~2 MiB line
	var sb strings.Builder
	sb.WriteString("$scope module top $end\n")
	fmt.Fprintf(&sb, "$var wire %d ! bus $end\n", wideBits)
	sb.WriteString("$upscope $end\n$enddefinitions $end\n#0\nb")
	sb.WriteString(strings.Repeat("0", wideBits-64))
	sb.WriteString("1" + strings.Repeat("0", 62) + "1")
	sb.WriteString(" !\n#1\nb11 !\n")
	tr, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("long line killed parse: %v", err)
	}
	ts, _ := tr.Signal("top.bus")
	if got := ts.ValueAt(0); got != 1<<63|1 {
		t.Fatalf("long-line value = %#x", got)
	}
	// The value keeps its full declared width, with the bits above the
	// low word known zero.
	if b := ts.BitsAt(0); b.Width != wideBits || b.HasX() {
		t.Fatalf("wide value lost width: %d bits, hasX=%v", b.Width, b.HasX())
	}
	if got := ts.ValueAt(1); got != 0b11 {
		t.Fatalf("follow-up value = %#x", got)
	}
	if tr.Stats.MaxWidth != wideBits {
		t.Fatalf("Stats.MaxWidth = %d, want %d", tr.Stats.MaxWidth, wideBits)
	}
}

func TestIDCode(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, ch := range id {
			if ch < '!' || ch > '~' {
				t.Fatalf("non-printable id char %q", id)
			}
		}
	}
}
