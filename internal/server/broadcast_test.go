package server

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// fanoutServer builds a bare server with n directly-registered
// sessions (no sockets, no writer goroutines), so broadcast encoding
// can be measured deterministically: frames pile up in the queues and
// nothing else allocates.
func fanoutServer(n int) (*Server, []*Session) {
	s := &Server{sessions: map[int64]*Session{}}
	sessions := make([]*Session, n)
	for i := range sessions {
		sess := newSession(s, nil, int64(i+1), proto.RoleObserver)
		sessions[i] = sess
		s.sessions[sess.ID] = sess
		s.order = append(s.order, sess.ID)
	}
	return s, sessions
}

func fanoutStop(time uint64) *core.StopEvent {
	ev := &core.StopEvent{Time: time, File: "design.go", Line: 42}
	for i := 0; i < 4; i++ {
		ev.Threads = append(ev.Threads, core.Thread{
			BreakpointID: 1, Instance: "Top.lane_" + string(rune('a'+i)),
			Locals: []core.Variable{
				{Name: "state", RTL: "Top.state", Value: time % 7, Width: 3},
				{Name: "count", RTL: "Top.count", Value: time, Width: 32},
				{Name: "valid", RTL: "Top.valid", Value: time % 2, Width: 1},
			},
		})
	}
	return ev
}

// lastQueued returns the newest queued frame bytes of one session.
func lastQueued(t *testing.T, sess *Session) []byte {
	t.Helper()
	sess.qmu.Lock()
	defer sess.qmu.Unlock()
	if len(sess.q) == 0 {
		t.Fatal("session queue empty")
	}
	return sess.q[len(sess.q)-1].msg
}

// TestBroadcastSharedFrame pins the encode-once contract: one
// broadcast hands every session literally the same byte slice, not an
// equal copy.
func TestBroadcastSharedFrame(t *testing.T) {
	s, sessions := fanoutServer(50)
	s.mu.Lock()
	s.broadcastLocked(&proto.Event{Type: "attach", SessionID: 99})
	s.mu.Unlock()
	first := lastQueued(t, sessions[0])
	for _, sess := range sessions[1:] {
		msg := lastQueued(t, sess)
		if &msg[0] != &first[0] {
			t.Fatal("sessions received distinct copies of one broadcast")
		}
	}
	// Same for stop broadcasts through the delta-aware path.
	s.mu.Lock()
	s.broadcastStopLocked(fanoutStop(7))
	s.mu.Unlock()
	first = lastQueued(t, sessions[0])
	for _, sess := range sessions[1:] {
		msg := lastQueued(t, sess)
		if &msg[0] != &first[0] {
			t.Fatal("sessions received distinct copies of one stop broadcast")
		}
	}
}

// TestBroadcastEncodeOnceAllocs is the alloc-pinned half of the
// acceptance criterion: per stop broadcast, the shared-frame path must
// allocate at least 5x less than the per-session-encode baseline at
// the same fan-out. Deterministic — counts allocations, not time.
func TestBroadcastEncodeOnceAllocs(t *testing.T) {
	const observers = 100
	measure := func(perSession bool) float64 {
		s, _ := fanoutServer(observers)
		s.perSessionEncode = perSession
		ev := fanoutStop(1) // built outside: only broadcast cost is measured
		return testing.AllocsPerRun(50, func() {
			s.mu.Lock()
			s.broadcastStopLocked(ev)
			s.mu.Unlock()
			// Drain so queues stay flat (coalescing keeps them at one
			// entry anyway; popping allocates nothing).
			for _, id := range s.order {
				s.sessions[id].pop()
			}
		})
	}
	shared := measure(false)
	baseline := measure(true)
	t.Logf("allocs per stop broadcast at %d observers: shared=%.1f baseline=%.1f (%.1fx)",
		observers, shared, baseline, baseline/shared)
	if baseline < 5*shared {
		t.Fatalf("shared-frame broadcast allocates %.1f/stop vs baseline %.1f — less than the required 5x margin",
			shared, baseline)
	}

	// Same margin in allocated bytes, not just allocation count.
	measureBytes := func(perSession bool) float64 {
		s, _ := fanoutServer(observers)
		s.perSessionEncode = perSession
		ev := fanoutStop(1)
		const rounds = 50
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < rounds; i++ {
			s.mu.Lock()
			s.broadcastStopLocked(ev)
			s.mu.Unlock()
			for _, id := range s.order {
				s.sessions[id].pop()
			}
		}
		runtime.ReadMemStats(&after)
		return float64(after.TotalAlloc-before.TotalAlloc) / rounds
	}
	sharedB := measureBytes(false)
	baselineB := measureBytes(true)
	t.Logf("bytes allocated per stop broadcast at %d observers: shared=%.0f baseline=%.0f (%.1fx)",
		observers, sharedB, baselineB, baselineB/sharedB)
	if baselineB < 5*sharedB {
		t.Fatalf("shared-frame broadcast allocates %.0fB/stop vs baseline %.0fB — less than the required 5x margin",
			sharedB, baselineB)
	}
}

// TestBroadcastDeltaSharing pins the delta fan-out: sessions that
// acked the same base share one delta frame, the delta is ≥5x smaller
// than the baseline full JSON frame, and the per-session frame
// counters record the encoding split.
func TestBroadcastDeltaSharing(t *testing.T) {
	s, sessions := fanoutServer(10)
	// Half the sessions negotiated binary+delta; the rest are legacy.
	for _, sess := range sessions[:5] {
		sess.binary = true
		sess.delta = true
	}
	base := fanoutStop(100)
	s.mu.Lock()
	s.broadcastStopLocked(base)
	baseSeq := s.seq
	s.mu.Unlock()
	for _, sess := range sessions {
		if got := sess.fullFrames.Load(); got != 1 {
			t.Fatalf("session %d fullFrames = %d after first stop", sess.ID, got)
		}
		sess.pop()
		// Delta sessions ack the stop (normally the client does this).
		if sess.delta {
			sess.lastAck.Store(baseSeq)
		}
	}

	next := fanoutStop(110)
	s.mu.Lock()
	s.broadcastStopLocked(next)
	s.mu.Unlock()

	fullJSON := lastQueued(t, sessions[9]) // legacy session: full JSON frame
	deltaBin := lastQueued(t, sessions[0]) // delta session: shared binary delta
	for _, sess := range sessions[1:5] {
		msg := lastQueued(t, sess)
		if &msg[0] != &deltaBin[0] {
			t.Fatal("delta sessions with one acked base received distinct frames")
		}
		if sess.deltaFrames.Load() != 1 || sess.fullFrames.Load() != 1 {
			t.Fatalf("session %d frames = %d delta / %d full",
				sess.ID, sess.deltaFrames.Load(), sess.fullFrames.Load())
		}
	}
	if len(deltaBin)*5 > len(fullJSON) {
		t.Fatalf("delta frame %dB not ≥5x smaller than full JSON %dB", len(deltaBin), len(fullJSON))
	}
	// The delta must reconstruct the exact broadcast stop.
	dec, err := proto.DecodeBinaryFrame(deltaBin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := proto.ApplyStop(base, dec.Delta)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(next)
	gotJSON, _ := json.Marshal(got)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("delta reconstruction mismatch:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestBroadcastAckGapResync pins the resync rule: a session whose ack
// fell out of the stop history window (or acked a future/unknown seq)
// gets a full frame, never a bogus delta.
func TestBroadcastAckGapResync(t *testing.T) {
	old := stopHistoryDepth
	stopHistoryDepth = 4
	defer func() { stopHistoryDepth = old }()

	s, sessions := fanoutServer(1)
	sess := sessions[0]
	sess.delta = true
	s.mu.Lock()
	s.broadcastStopLocked(fanoutStop(1))
	firstSeq := s.seq
	s.mu.Unlock()
	sess.pop()

	// An ack for a seq the server never retained (gap) forces a full
	// frame.
	sess.lastAck.Store(firstSeq + 999)
	s.mu.Lock()
	s.broadcastStopLocked(fanoutStop(2))
	s.mu.Unlock()
	if d, f := sess.deltaFrames.Load(), sess.fullFrames.Load(); d != 0 || f != 2 {
		t.Fatalf("frames after gap ack = %d delta / %d full, want 0/2", d, f)
	}

	// An acked base that falls out of the history window forces a full
	// frame too: broadcast past the depth while the ack stays stale,
	// then decode the newest queued frame — it must carry a full Stop.
	sess.lastAck.Store(firstSeq)
	s.mu.Lock()
	for i := uint64(3); i <= 3+uint64(stopHistoryDepth)+1; i++ {
		s.broadcastStopLocked(fanoutStop(i))
	}
	s.mu.Unlock()
	var last proto.Event
	if err := json.Unmarshal(lastQueued(t, sess), &last); err != nil {
		t.Fatal(err)
	}
	if last.Stop == nil || last.Delta != nil {
		t.Fatalf("frame after base eviction = %+v, want a full stop", last)
	}

	// Ack within the window: deltas resume.
	s.mu.Lock()
	lastSeq := s.seq
	s.mu.Unlock()
	sess.lastAck.Store(lastSeq)
	before := sess.deltaFrames.Load()
	s.mu.Lock()
	s.broadcastStopLocked(fanoutStop(99))
	s.mu.Unlock()
	if got := sess.deltaFrames.Load(); got != before+1 {
		t.Fatalf("deltaFrames = %d after re-ack, want %d", got, before+1)
	}
}
