package server

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vpi"
)

func hereLine() int {
	var pcs [1]uintptr
	runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:1])
	f, _ := frames.Next()
	return f.Line
}

// startServerFull builds a counter design and serves it, returning
// the listen address, the simulator, the breakpointable line, and the
// server itself. Additional clients may dial the address to form a
// multi-session debug setup.
func startServerFull(t *testing.T) (string, *sim.Simulator, int, *Server) {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	var incLine int
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
		incLine = hereLine() - 1
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl)
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(rt, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, s, incLine, srv
}

// startServerAddr is startServerFull without the server handle.
func startServerAddr(t *testing.T) (string, *sim.Simulator, int) {
	t.Helper()
	addr, s, incLine, _ := startServerFull(t)
	return addr, s, incLine
}

// dialClient attaches one debugger session and consumes its welcome.
func dialClient(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ev, err := cl.WaitEvent("welcome", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Top != "Counter" || ev.SessionID == 0 || ev.Role == "" {
		t.Fatalf("welcome = %+v", ev)
	}
	return cl
}

// startServer builds a counter design, serves it, and returns an
// attached client plus the simulator and breakpointable line.
func startServer(t *testing.T) (*client.Client, *sim.Simulator, int) {
	t.Helper()
	addr, s, incLine := startServerAddr(t)
	return dialClient(t, addr), s, incLine
}

func TestEndToEndBreakpointSession(t *testing.T) {
	cl, s, incLine := startServer(t)

	ids, err := cl.AddBreakpoint("server_test.go", incLine, "")
	if err != nil {
		t.Fatalf("add breakpoint: %v", err)
	}
	if len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	// Run the simulation on its own goroutine — it will block at the
	// breakpoint until we send a command.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Reset("Counter.reset", 1)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()

	stop, err := cl.WaitStop(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stop.File != "server_test.go" || stop.Line != incLine {
		t.Fatalf("stop at %s:%d", stop.File, stop.Line)
	}
	if len(stop.Threads) != 1 || stop.Threads[0].Instance != "Counter" {
		t.Fatalf("threads = %+v", stop.Threads)
	}

	// While paused, inspect values through the protocol.
	v, err := cl.GetValue("Counter.count")
	if err != nil {
		t.Fatalf("get-value: %v", err)
	}
	if v.Value != 0 {
		t.Fatalf("count at first stop = %d", v.Value)
	}
	ev, err := cl.Evaluate("Counter", "count + 10")
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if ev.Value != 10 {
		t.Fatalf("evaluate = %d", ev.Value)
	}

	// Resume through the remaining stops.
	for i := 0; i < 3; i++ {
		if err := cl.Command("continue"); err != nil {
			t.Fatalf("continue %d: %v", i, err)
		}
		if i < 2 {
			if _, err := cl.WaitStop(5 * time.Second); err != nil {
				t.Fatalf("stop %d: %v", i+1, err)
			}
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation did not finish")
	}
}

func TestListRemoveAndInfo(t *testing.T) {
	cl, _, incLine := startServer(t)
	if _, err := cl.AddBreakpoint("server_test.go", incLine, "count == 2"); err != nil {
		t.Fatal(err)
	}
	infos, err := cl.ListBreakpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Line != incLine {
		t.Fatalf("list = %+v", infos)
	}
	// Info topics.
	filesRaw, err := cl.Info("files", "")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	json.Unmarshal(filesRaw, &files)
	if len(files) != 1 || files[0] != "server_test.go" {
		t.Fatalf("files = %v", files)
	}
	instRaw, _ := cl.Info("instances", "")
	var insts []string
	json.Unmarshal(instRaw, &insts)
	if len(insts) != 1 || insts[0] != "Counter" {
		t.Fatalf("instances = %v", insts)
	}
	statusRaw, _ := cl.Info("status", "")
	var status map[string]any
	json.Unmarshal(statusRaw, &status)
	if status["mode"] != "optimized" {
		t.Fatalf("status = %v", status)
	}
	// Remove.
	n, err := cl.RemoveBreakpoint("server_test.go", incLine)
	if err != nil || n != 1 {
		t.Fatalf("remove = %d, %v", n, err)
	}
	if err := cl.ClearBreakpoints(); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cl, _, _ := startServer(t)
	if _, err := cl.AddBreakpoint("ghost.go", 1, ""); err == nil {
		t.Fatal("bogus breakpoint accepted")
	}
	if err := cl.Command("continue"); err == nil {
		t.Fatal("continue while running accepted")
	}
	if err := cl.Command("warp"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := cl.GetValue("no.such.signal"); err == nil {
		t.Fatal("unknown signal accepted")
	}
	if _, err := cl.Info("nonsense", ""); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestSetValueThroughProtocol(t *testing.T) {
	cl, s, _ := startServer(t)
	if err := cl.SetValue("Counter.count", 42); err != nil {
		t.Fatalf("set-value: %v", err)
	}
	v, err := s.Peek("Counter.count")
	if err != nil || v.Bits != 42 {
		t.Fatalf("count = %d, %v", v.Bits, err)
	}
	// Relative path form.
	if err := cl.SetValue("Counter.en", 1); err != nil {
		t.Fatal(err)
	}
}

func TestStepCommandOverProtocol(t *testing.T) {
	cl, s, incLine := startServer(t)
	if _, err := cl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(2)
	}()
	if _, err := cl.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cl.Command("step"); err != nil {
		t.Fatal(err)
	}
	// Stepping stops at the next statement (the out connect has no
	// valid locator, so the next stop is next cycle's increment).
	stop, err := cl.WaitStop(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !stop.StepStop && stop.Line != incLine {
		t.Fatalf("step stop = %+v", stop)
	}
	cl.Command("detach")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation stuck")
	}
}

func TestWatchOverProtocol(t *testing.T) {
	cl, s, _ := startServer(t)
	id, err := cl.AddWatch("Counter", "count")
	if err != nil {
		t.Fatalf("AddWatch: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()
	stop, err := cl.WaitStop(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(stop.Watch) == 0 {
		t.Fatalf("stop without watch hits: %+v", stop)
	}
	if stop.Watch[0].New != stop.Watch[0].Old+1 {
		t.Fatalf("watch hit = %+v", stop.Watch[0])
	}
	if err := cl.Command("continue"); err != nil {
		t.Fatal(err)
	}
	// Drain remaining stops so the simulation can finish.
	for {
		st, err := cl.WaitStop(2 * time.Second)
		if err != nil {
			break
		}
		_ = st
		if err := cl.Command("continue"); err != nil {
			break
		}
	}
	<-done
	if err := cl.RemoveWatch(id); err != nil {
		t.Fatalf("RemoveWatch: %v", err)
	}
	if err := cl.RemoveWatch(id); err == nil {
		t.Fatal("double remove accepted")
	}
}
