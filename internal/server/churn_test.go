package server

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
)

// TestObserverChurnUnderBroadcastStorm is the soak for the broadcast
// path: a controller steps the simulation through a breakpoint storm
// while hundreds of observer lifecycles (attach, a few requests,
// sometimes a reconnect, detach) churn the session table mid-broadcast.
// Pinned invariants: the controller never loses a stop (stops counted
// == cycles simulated), the session table shrinks back to just the
// controller when the churn ends (no stale session leaks), and the
// server shuts down cleanly. Run under -race in CI.
func TestObserverChurnUnderBroadcastStorm(t *testing.T) {
	lifecycles := 500
	workers := 50
	if testing.Short() {
		lifecycles, workers = 100, 20
	}

	addr, s, incLine, srv := startServerFull(t)
	ctrl := dialClient(t, addr)
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatalf("add breakpoint: %v", err)
	}

	// The simulation goroutine steps one cycle at a time — each cycle
	// hits the breakpoint once — until the churn has finished.
	var churnDone atomic.Bool
	var cycles atomic.Uint64
	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		s.Reset("Counter.reset", 1)
		s.Poke("Counter.en", 1)
		for !churnDone.Load() {
			s.Run(1)
			cycles.Add(1)
		}
	}()

	// Observer churn: workers cycle through attach / request / detach
	// lifecycles, randomizing the wire negotiation and occasionally
	// reconnecting mid-life to exercise teardown racing re-attach.
	errs := make(chan error, lifecycles)
	var remaining atomic.Int64
	remaining.Store(int64(lifecycles))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 1))
			for remaining.Add(-1) >= 0 {
				obs, err := client.DialOpts(addr, client.Options{
					Binary: rng.Intn(2) == 0,
					Delta:  rng.Intn(2) == 0,
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := obs.WaitEvent("welcome", 5*time.Second); err != nil {
					obs.Close()
					errs <- err
					return
				}
				switch rng.Intn(3) {
				case 0:
					if _, err := obs.Sessions(); err != nil {
						obs.Close()
						errs <- err
						return
					}
				case 1:
					// Soak in the stop storm for a moment; a timeout is
					// fine — the sim may be between stops.
					obs.WaitStop(50 * time.Millisecond)
				case 2:
					if err := obs.Reconnect(); err != nil {
						obs.Close()
						errs <- err
						return
					}
					if _, err := obs.WaitEvent("welcome", 5*time.Second); err != nil {
						obs.Close()
						errs <- err
						return
					}
				}
				obs.Close()
			}
		}(w)
	}

	// Controller stepping loop: answer every stop with a continue. The
	// sim goroutine only exits after its final continue is consumed, so
	// when simDone closes every stop has been counted.
	var stops uint64
	ctrlDone := make(chan struct{})
	go func() {
		defer close(ctrlDone)
		for {
			if _, err := ctrl.WaitStop(2 * time.Second); err != nil {
				select {
				case <-simDone:
					return
				default:
					errs <- err
					return
				}
			}
			stops++
			if err := ctrl.Command("continue"); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	churnDone.Store(true)
	select {
	case <-simDone:
	case <-time.After(30 * time.Second):
		t.Fatal("simulation did not finish after churn ended")
	}
	select {
	case <-ctrlDone:
	case <-time.After(30 * time.Second):
		t.Fatal("controller stepping loop did not finish")
	}
	close(errs)
	for err := range errs {
		t.Errorf("churn worker: %v", err)
	}

	if got := cycles.Load(); stops != got {
		t.Fatalf("controller saw %d stops for %d simulated cycles — stops were lost", stops, got)
	}
	if cycles.Load() == 0 {
		t.Fatal("simulation never stepped during the churn")
	}
	t.Logf("churn: %d observer lifecycles across %d workers, %d controller stops, 0 lost",
		lifecycles, workers, stops)

	// All observers are gone: the session table must drain back to just
	// the controller — no stale sessions pinned by dead connections.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ids := srv.SessionIDs(); len(ids) == 1 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("stale sessions leaked after churn: %v", ids)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctrl.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
}
