// Package server exposes an hgdb runtime over the WebSocket debugging
// protocol: it owns the bridge between the simulation thread (where the
// runtime's handler blocks on a stop) and the connected debugger
// client, matching the architecture of Figure 1 — the runtime sits
// inside the simulator; debugger tools attach over RPC.
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/ws"
)

// Server bridges one hgdb runtime to debugger clients.
type Server struct {
	rt *core.Runtime

	mu      sync.Mutex
	client  *ws.Conn
	pending chan core.Command // non-nil while stopped at a breakpoint
	ln      net.Listener
	httpSrv *http.Server
	log     *log.Logger
}

// New wires a server to a runtime. The runtime's handler is replaced:
// stops are forwarded to the connected client and the simulation blocks
// until the client answers with a command. With no client connected,
// stops auto-continue.
func New(rt *core.Runtime, logger *log.Logger) *Server {
	s := &Server{rt: rt, log: logger}
	rt.SetHandler(s.onStop)
	return s
}

// Runtime returns the wrapped runtime.
func (s *Server) Runtime() *core.Runtime { return s.rt }

// onStop runs on the simulation goroutine.
func (s *Server) onStop(ev *core.StopEvent) core.Command {
	s.mu.Lock()
	client := s.client
	if client == nil {
		s.mu.Unlock()
		return core.CmdContinue
	}
	resume := make(chan core.Command, 1)
	s.pending = resume
	s.mu.Unlock()

	msg, err := json.Marshal(proto.Event{Type: "stop", Stop: ev})
	if err == nil {
		err = client.WriteText(msg)
	}
	if err != nil {
		s.logf("server: dropping client: %v", err)
		s.dropClient()
		return core.CmdContinue
	}
	cmd := <-resume
	s.mu.Lock()
	s.pending = nil
	s.mu.Unlock()
	return cmd
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

func (s *Server) dropClient() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.client != nil {
		s.client.Close()
		s.client = nil
	}
	if s.pending != nil {
		s.pending <- core.CmdContinue
		s.pending = nil
	}
}

// Listen starts serving the debugging protocol on addr
// (host:port). It returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleWS)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.dropClient()
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.client != nil {
		s.mu.Unlock()
		msg, _ := json.Marshal(proto.Error("", "another debugger is already attached"))
		conn.WriteText(msg)
		conn.Close()
		return
	}
	s.client = conn
	s.mu.Unlock()

	welcome, _ := json.Marshal(proto.Event{
		Type:  "welcome",
		Top:   s.rt.Table().Top(),
		Mode:  s.rt.Table().Mode(),
		Files: len(s.rt.Table().Files()),
	})
	conn.WriteText(welcome)

	for {
		raw, err := conn.ReadText()
		if err != nil {
			s.logf("server: client gone: %v", err)
			s.dropClient()
			return
		}
		var req proto.Request
		if err := json.Unmarshal(raw, &req); err != nil {
			s.reply(conn, proto.Error("", "bad request: %v", err))
			continue
		}
		s.reply(conn, s.dispatch(&req))
	}
}

func (s *Server) reply(conn *ws.Conn, resp *proto.Response) {
	msg, err := json.Marshal(resp)
	if err != nil {
		return
	}
	conn.WriteText(msg)
}

// dispatch executes one request. It runs on the connection goroutine —
// never on the simulation goroutine — so value queries work while the
// simulator is paused at a stop.
func (s *Server) dispatch(req *proto.Request) *proto.Response {
	switch req.Type {
	case "breakpoint":
		return s.handleBreakpoint(req)
	case "command":
		return s.handleCommand(req)
	case "evaluate":
		v, err := s.rt.Evaluate(req.Instance, req.Expression)
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, err := proto.OK(req.Token, proto.ValueInfo{Value: v.Bits, Width: v.Width})
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		return resp
	case "get-value":
		v, err := s.rt.Backend().GetValue(req.Path)
		if err != nil {
			// Try symtab-relative paths too.
			v, err = s.rt.Backend().GetValue(s.rt.Remap().ToSim(req.Path))
		}
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, _ := proto.OK(req.Token, proto.ValueInfo{Value: v.Bits, Width: v.Width})
		return resp
	case "set-value":
		err := s.rt.Backend().SetValue(req.Path, req.Value)
		if err != nil {
			err = s.rt.Backend().SetValue(s.rt.Remap().ToSim(req.Path), req.Value)
		}
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, _ := proto.OK(req.Token, nil)
		return resp
	case "info":
		return s.handleInfo(req)
	case "watch":
		return s.handleWatch(req)
	}
	return proto.Error(req.Token, "unknown request type %q", req.Type)
}

func (s *Server) handleWatch(req *proto.Request) *proto.Response {
	switch req.Action {
	case "add":
		id, err := s.rt.AddWatch(req.Instance, req.Expression)
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, _ := proto.OK(req.Token, map[string]any{"id": id})
		return resp
	case "remove":
		if !s.rt.RemoveWatch(req.WatchID) {
			return proto.Error(req.Token, "no watchpoint %d", req.WatchID)
		}
		resp, _ := proto.OK(req.Token, nil)
		return resp
	case "list":
		type wire struct {
			ID       int    `json:"id"`
			Instance string `json:"instance"`
			Expr     string `json:"expr"`
		}
		var out []wire
		for _, w := range s.rt.Watches() {
			out = append(out, wire{ID: w.ID, Instance: w.Instance, Expr: w.Expr})
		}
		resp, _ := proto.OK(req.Token, out)
		return resp
	}
	return proto.Error(req.Token, "unknown watch action %q", req.Action)
}

func (s *Server) handleBreakpoint(req *proto.Request) *proto.Response {
	switch req.Action {
	case "add":
		ids, err := s.rt.AddBreakpoint(req.Filename, req.Line, req.Condition)
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, _ := proto.OK(req.Token, map[string]any{"ids": ids})
		return resp
	case "remove":
		n := s.rt.RemoveBreakpoint(req.Filename, req.Line)
		resp, _ := proto.OK(req.Token, map[string]any{"removed": n})
		return resp
	case "clear":
		s.rt.ClearBreakpoints()
		resp, _ := proto.OK(req.Token, nil)
		return resp
	case "list":
		var infos []proto.BreakpointInfo
		for _, bp := range s.rt.ListBreakpoints() {
			infos = append(infos, proto.BreakpointInfo{
				ID: bp.ID, Filename: bp.Filename, Line: bp.Line,
				Instance: bp.InstanceName, Enable: bp.Enable, EnableSrc: bp.EnableSrc,
			})
		}
		resp, _ := proto.OK(req.Token, infos)
		return resp
	}
	return proto.Error(req.Token, "unknown breakpoint action %q", req.Action)
}

func (s *Server) handleCommand(req *proto.Request) *proto.Response {
	if req.Command == "pause" {
		s.rt.InterruptNext()
		resp, _ := proto.OK(req.Token, nil)
		return resp
	}
	cmd, err := proto.ParseCommand(req.Command)
	if err != nil {
		return proto.Error(req.Token, "%v", err)
	}
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	if pending == nil {
		return proto.Error(req.Token, "not stopped at a breakpoint")
	}
	pending <- cmd
	resp, _ := proto.OK(req.Token, nil)
	return resp
}

func (s *Server) handleInfo(req *proto.Request) *proto.Response {
	switch req.Topic {
	case "files":
		resp, _ := proto.OK(req.Token, s.rt.Table().Files())
		return resp
	case "lines":
		resp, _ := proto.OK(req.Token, s.rt.Table().Lines(req.Filename))
		return resp
	case "instances":
		resp, _ := proto.OK(req.Token, s.rt.Table().Instances())
		return resp
	case "status":
		evals, stops := s.rt.Stats()
		resp, _ := proto.OK(req.Token, map[string]any{
			"time":  s.rt.Backend().Time(),
			"evals": evals,
			"stops": stops,
			"mode":  s.rt.Table().Mode(),
		})
		return resp
	}
	return proto.Error(req.Token, "unknown info topic %q", req.Topic)
}

// String describes the server.
func (s *Server) String() string {
	if s.ln == nil {
		return "hgdb server (not listening)"
	}
	return fmt.Sprintf("hgdb server on %s", s.ln.Addr())
}
