// Package server exposes an hgdb runtime over the WebSocket debugging
// protocol — the bridge between the simulation thread (where the
// runtime's handler blocks on a stop) and attached debugger clients,
// matching the architecture of Figure 1: the runtime sits inside the
// simulator; debugger tools attach over RPC.
//
// The server is a session manager: any number of debugger clients
// attach concurrently to the one runtime. Each session has an id, a
// role, and its own backpressured outbound queue drained by a writer
// goroutine (a slow observer coalesces broadcast events to the latest
// coherent state instead of stalling the simulation; see session.go
// and broadcast.go for the fan-out machinery). Exactly one session
// holds control — it
// alone may resume the simulation or mutate state — arbitrated
// first-attach-owns, handed off on explicit release or disconnect.
// Every other session is an observer: it receives the same broadcast
// stop/attach/goodbye/control events and may run read-only requests
// (evaluate, get-value, info) even while the simulation is running;
// those execute through the runtime's clock-edge query queue, never
// racing the scheduler.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/vpi"
	"repro/internal/ws"
)

// queryGrace is how long state queries wait for a drain point (clock
// edge or parked stop loop) before concluding the simulation is idle;
// see core.Runtime.RunQuery.
var queryGrace = 250 * time.Millisecond

// Server bridges one hgdb runtime to any number of debugger sessions.
type Server struct {
	rt *core.Runtime

	mu          sync.Mutex
	sessions    map[int64]*Session
	order       []int64 // attach order; also control succession order
	controller  int64   // session holding control; 0 = vacant
	nextSID     int64
	seq         uint64            // broadcast event sequence
	pending     chan core.Command // non-nil while stopped at a breakpoint
	currentStop *core.StopEvent   // the stop being served while pending != nil
	closing     bool

	// stopHist retains recent stop broadcasts as delta bases (see
	// broadcast.go); perSessionEncode switches the benchmark baseline
	// that re-marshals every event per session.
	stopHist         []stopRecord
	perSessionEncode bool

	// reverse records whether the backend supports SetTime (replay),
	// probed once at construction; advertised in welcome events and the
	// status topic so clients can gate reverse-execution features.
	reverse bool

	// runtimeID is the registry id this server is known by when it
	// runs behind a hub; stamped on welcome/goodbye events so clients
	// can verify routing. Empty for standalone servers.
	runtimeID string

	ln      net.Listener
	httpSrv *http.Server
	log     *log.Logger
}

// New wires a server to a runtime. The runtime's handler is replaced:
// stops are broadcast to every attached session and the simulation
// blocks until the controlling session answers with a command —
// serving queued state queries from other sessions while it waits.
// With no session attached, stops auto-continue.
func New(rt *core.Runtime, logger *log.Logger) *Server {
	s := &Server{
		rt:       rt,
		sessions: map[int64]*Session{},
		log:      logger,
		// A backend that accepts a seek to the current time can seek
		// anywhere: live simulators refuse (vpi.ErrNotSupported), replay
		// engines accept. Probed here, before the simulation runs.
		reverse: rt.Backend().SetTime(rt.Backend().Time()) == nil,
	}
	rt.SetHandler(s.onStop)
	return s
}

// Runtime returns the wrapped runtime.
func (s *Server) Runtime() *core.Runtime { return s.rt }

// SetRuntimeID names this server in a hub registry: welcome and
// shutdown goodbye events carry the id so clients can verify their
// attach was routed to the runtime they asked for. Set before the
// first attach.
func (s *Server) SetRuntimeID(id string) {
	s.mu.Lock()
	s.runtimeID = id
	s.mu.Unlock()
}

// SessionCount returns the number of attached sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// onStop runs on the simulation goroutine: broadcast the stop to all
// sessions, then block until the controller resumes — meanwhile
// serving the runtime's query queue so observers can still read state.
func (s *Server) onStop(ev *core.StopEvent) core.Command {
	s.mu.Lock()
	if len(s.sessions) == 0 || s.closing {
		s.mu.Unlock()
		return core.CmdContinue
	}
	resume := make(chan core.Command, 1)
	s.pending = resume
	s.currentStop = ev
	// Broadcast the stop. A sim-state enqueue always lands (it
	// supersedes any queued state event rather than competing for
	// space), so the controller's load-bearing copy — the simulation
	// is about to park on that session's command — can only be lost to
	// a dead connection. Such a controller forfeits control: it is
	// dropped (outside the lock), which hands control to an informed
	// session or auto-continues.
	controllerID := s.controller
	s.broadcastStopLocked(ev)
	stopLost := false
	if ctl := s.sessions[controllerID]; ctl != nil && ctl.dead.Load() {
		stopLost = true
	}
	s.mu.Unlock()
	if stopLost {
		s.dropSession(controllerID, "stop event undeliverable (connection dead)")
	}

	for {
		select {
		case cmd := <-resume:
			return cmd
		case job := <-s.rt.Queries():
			job.Run()
		}
	}
}

// sendResume hands the stopped simulation its next command and tells
// every session the simulation left the stop (the "resume" half of the
// sim-state event class — without it, coalescing a stop away could
// leave a slow observer believing the sim is still parked). Callers
// hold s.mu. The buffered send cannot block: pending is cleared on
// every send, so each resume channel sees at most one.
func (s *Server) sendResumeLocked(cmd core.Command) bool {
	if s.pending == nil {
		return false
	}
	s.pending <- cmd
	s.pending = nil
	s.currentStop = nil
	s.broadcastLocked(&proto.Event{
		Type: "resume", Command: proto.CommandString(cmd),
	})
	return true
}

// broadcastLocked stamps the event with the next sequence number and
// enqueues it to every session. Callers hold s.mu. Enqueues never
// block (slow sessions coalesce or drop), so holding the lock is fine.
func (s *Server) broadcastLocked(ev *proto.Event) {
	s.broadcastExceptLocked(ev, 0)
}

// broadcastExceptLocked is broadcastLocked minus one recipient: the
// event is encoded once per wire encoding and consumes one sequence
// number no matter how many sessions receive it, preserving the
// invariant that every session observes a subsequence of the same
// stream.
func (s *Server) broadcastExceptLocked(ev *proto.Event, exclude int64) {
	s.seq++
	ev.Seq = s.seq
	ev.Emit = time.Now().UnixNano()
	f := newFrame(ev)
	for _, id := range s.order {
		if id == exclude {
			continue
		}
		s.enqueueFrameLocked(s.sessions[id], f)
	}
}

// sendEventLocked stamps and enqueues an event to one session,
// keeping its Seq consistent with the broadcast stream. Callers hold
// s.mu.
func (s *Server) sendEventLocked(sess *Session, ev *proto.Event) {
	s.seq++
	ev.Seq = s.seq
	ev.Emit = time.Now().UnixNano()
	s.enqueueFrameLocked(sess, newFrame(ev))
}

// Listen starts serving the debugging protocol on addr
// (host:port). It returns the bound address (useful with ":0").
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Shutdown drains this server's sessions gracefully and nothing else:
// it stops accepting new sessions, resumes a simulation parked at a
// stop (so the simulation goroutine can observe its own cancellation
// instead of deadlocking on a commander that will never come), sends
// every session a goodbye, and waits for each writer to flush its
// queue and complete the close handshake — bounded by ctx, one shared
// deadline for all writers, so shutdown latency is the slowest
// session, not the sum over wedged ones.
//
// Shutdown is the per-runtime half of Close: it never touches the
// listener or HTTP machinery, so a hub evicting one runtime can drain
// that runtime's sessions without tearing down siblings sharing the
// endpoint. Idempotent; returns ctx.Err() if any writer failed to
// drain in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	s.sendResumeLocked(core.CmdContinue)
	drained := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		sess := s.sessions[id]
		s.sendEventLocked(sess, &proto.Event{
			Type: "goodbye", SessionID: sess.ID, Reason: "shutdown",
			Runtime: s.runtimeID,
		})
		sess.signalQuit()
		drained = append(drained, sess)
	}
	s.sessions = map[int64]*Session{}
	s.order = nil
	s.controller = 0
	s.mu.Unlock()

	var err error
	for _, sess := range drained {
		select {
		case <-sess.writerDone:
		case <-ctx.Done():
			s.logf("server: session %d writer did not drain", sess.ID)
			err = ctx.Err()
		}
	}
	return err
}

// Close shuts the whole server process down: Shutdown with the
// default drain deadline, then the listener.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*sessionWriteTimeout)
	s.Shutdown(ctx)
	cancel()
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

// attach registers a new connection as a session: the first attach
// (or any attach while control is vacant) becomes the controller,
// everyone else an observer. The wire negotiation (binary encoding,
// delta stop frames) comes from the upgrade URL's query parameters.
// Returns nil if the server is closing.
func (s *Server) attach(conn *ws.Conn, binary, delta bool) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil
	}
	s.nextSID++
	role := proto.RoleObserver
	if s.controller == 0 {
		role = proto.RoleController
	}
	sess := newSession(s, conn, s.nextSID, role)
	sess.binary = binary
	sess.delta = delta
	if role == proto.RoleController {
		s.controller = sess.ID
	}
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	go sess.writeLoop()

	s.sendEventLocked(sess, &proto.Event{
		Type:       "welcome",
		SessionID:  sess.ID,
		Role:       role,
		Controller: s.controller,
		Peers:      len(s.sessions),
		Top:        s.rt.Table().Top(),
		Mode:       s.rt.Table().Mode(),
		Files:      len(s.rt.Table().Files()),
		Reverse:    s.reverse,
		Runtime:    s.runtimeID,
	})
	// A session attaching while the simulation is parked at a stop
	// must learn about it — it may be promoted to controller later and
	// would otherwise command a simulator it believes is running.
	if s.currentStop != nil {
		s.replayStopLocked(sess, s.currentStop)
	}
	// Tell everyone else a peer arrived.
	s.broadcastExceptLocked(&proto.Event{
		Type: "attach", SessionID: sess.ID, Role: role,
		Controller: s.controller, Peers: len(s.sessions),
	}, sess.ID)
	return sess
}

// dropSession removes a session: hands control to the oldest
// surviving session if the controller left, auto-continues a stopped
// simulation that just lost its last possible commander, and tells
// the remaining sessions. Idempotent.
func (s *Server) dropSession(id int64, reason string) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	s.logf("server: session %d dropped: %s", id, reason)
	delete(s.sessions, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	wasController := s.controller == id
	if wasController {
		s.promoteLocked(0)
	}
	if len(s.sessions) == 0 || (wasController && s.controller == 0) {
		// Nobody can issue continue anymore: a stopped simulation must
		// not deadlock waiting for a commander that will never come.
		// Control stays vacant with sessions attached only when every
		// candidate was too backlogged to take the stop replay — none
		// of them knows the sim is parked, so resume it.
		s.sendResumeLocked(core.CmdContinue)
	}
	s.broadcastLocked(&proto.Event{
		Type: "goodbye", SessionID: id,
		Controller: s.controller, Peers: len(s.sessions),
		Reason: reason,
	})
	if wasController && s.controller != 0 {
		s.broadcastLocked(&proto.Event{
			Type: "control", Controller: s.controller, Reason: "disconnect",
		})
	}
	s.mu.Unlock()
	sess.signalQuit()
}

// ServeHTTP accepts one debugger connection: it upgrades the request
// to WebSocket, attaches a session, and runs its request loop until
// the connection dies. Exported (the Server is an http.Handler) so a
// hub can route upgrade requests from a shared listener to the
// runtime the URL names — the server behaves identically whether it
// owns the listener (Listen) or sits behind one endpoint among many
// sibling runtimes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Wire negotiation rides the upgrade URL: ?enc=binary selects the
	// length-prefixed binary event encoding, ?delta=1 opts into
	// delta-encoded stop frames (the client must then ack stops).
	q := r.URL.Query()
	binary := q.Get("enc") == "binary"
	delta := q.Get("delta") == "1" || q.Get("delta") == "true"
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	conn.SetWriteTimeout(sessionWriteTimeout)
	sess := s.attach(conn, binary, delta)
	if sess == nil {
		msg, _ := json.Marshal(proto.Error("", "server is shutting down"))
		conn.WriteText(msg)
		conn.Close()
		return
	}

	// Request loop (this goroutine is the session's reader).
	for {
		raw, err := conn.ReadText()
		if err != nil {
			s.dropSession(sess.ID, fmt.Sprintf("read: %v", err))
			return
		}
		req, err := proto.DecodeRequest(raw)
		if err != nil {
			// Echo the token when the JSON was parseable enough to
			// carry one, so the client's round trip fails immediately
			// instead of timing out on an unmatchable response.
			var head struct {
				Token string `json:"token"`
			}
			json.Unmarshal(raw, &head)
			s.reply(sess, proto.Error(head.Token, "%v", err))
			continue
		}
		if resp := s.dispatch(sess, req); resp != nil {
			s.reply(sess, resp)
		}
	}
}

func (s *Server) reply(sess *Session, resp *proto.Response) {
	msg, err := json.Marshal(resp)
	if err != nil {
		return
	}
	sess.enqueueResponse(msg)
}

// promoteLocked moves control to the oldest session in attach order,
// skipping exclude; with no candidate, control goes vacant. It is the
// single implementation of the succession policy, shared by
// disconnect handoff and explicit release. Returns the new controller
// id (0 = vacant). Callers hold s.mu.
func (s *Server) promoteLocked(exclude int64) int64 {
	s.controller = 0
	for _, id := range s.order {
		if id == exclude {
			continue
		}
		heir := s.sessions[id]
		// A session promoted while the simulation is parked at a stop
		// must know about it — its own copy of the broadcast may have
		// been coalesced away, and the sim now waits on this session's
		// command. The replay is load-bearing; a sim-state enqueue
		// always lands, so only a candidate whose connection is already
		// dead is skipped (the next in line is tried). A duplicate stop
		// is cosmetic; a missing one wedges the simulation.
		if heir.dead.Load() {
			continue
		}
		if s.currentStop != nil && !s.replayStopLocked(heir, s.currentStop) {
			continue
		}
		heir.role = proto.RoleController
		s.controller = heir.ID
		break
	}
	return s.controller
}

// controlErrorLocked builds the denial response for a session without
// control. Callers hold s.mu and have already found sess not to be
// the controller.
func (s *Server) controlErrorLocked(sess *Session, token string) *proto.Response {
	if s.controller == 0 {
		return proto.Error(token, "control required (vacant — send {\"type\":\"session\",\"action\":\"claim\"})")
	}
	return proto.Error(token, "control required (held by session %d, you are session %d)",
		s.controller, sess.ID)
}

// requireControl returns an error response when sess does not hold
// control, nil when it does. Note the check alone is advisory — a
// concurrent transfer can land right after it. Actions that must be
// atomic with the check use withControl or re-check at execution time.
func (s *Server) requireControl(sess *Session, token string) *proto.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.controller == sess.ID {
		return nil
	}
	return s.controlErrorLocked(sess, token)
}

// withControl runs fn while holding s.mu with sess verified as the
// controller — the check and the action are one critical section, so
// a control transfer can never interleave. Only for fast runtime
// bookkeeping (fn must not block).
func (s *Server) withControl(sess *Session, token string, fn func() *proto.Response) *proto.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.controller != sess.ID {
		return s.controlErrorLocked(sess, token)
	}
	return fn()
}

// runQuery executes fn with simulation state guaranteed stable (see
// core.Runtime.RunQuery) and returns its response.
func (s *Server) runQuery(token string, fn func() *proto.Response) *proto.Response {
	var resp *proto.Response
	if err := s.rt.RunQuery(queryGrace, func() { resp = fn() }); err != nil {
		return proto.Error(token, "%v", err)
	}
	return resp
}

// controlledQuery is runQuery for control-gated mutations: a fast
// pre-check rejects non-controllers before queueing, and the check is
// repeated inside the job because control may move while it waits for
// a drain point.
func (s *Server) controlledQuery(sess *Session, token string, fn func() *proto.Response) *proto.Response {
	if resp := s.requireControl(sess, token); resp != nil {
		return resp
	}
	return s.runQuery(token, func() *proto.Response {
		if resp := s.requireControl(sess, token); resp != nil {
			return resp
		}
		return fn()
	})
}

// dispatch executes one request on the session's reader goroutine.
// Requests that touch simulation state run through the runtime's
// query queue; requests that only touch runtime bookkeeping (which
// has its own locking) run inline.
func (s *Server) dispatch(sess *Session, req *proto.Request) *proto.Response {
	switch req.Type {
	case "breakpoint":
		return s.handleBreakpoint(sess, req)
	case "command":
		return s.handleCommand(sess, req)
	case "evaluate":
		return s.runQuery(req.Token, func() *proto.Response {
			// Four-state evaluation: identical to the two-state result on
			// fully known designs, and renders x/z and >64-bit values
			// instead of erroring.
			b, err := s.rt.EvaluateBits(req.Instance, req.Expression)
			if err != nil {
				return proto.Error(req.Token, "%v", err)
			}
			resp, err := proto.OK(req.Token, proto.ValueInfoOf(b, s.rt.Backend().Time()))
			if err != nil {
				return proto.Error(req.Token, "%v", err)
			}
			return resp
		})
	case "get-value":
		return s.runQuery(req.Token, func() *proto.Response {
			b, err := vpi.ReadBits(s.rt.Backend(), req.Path)
			if err != nil {
				// Try symtab-relative paths too.
				b, err = vpi.ReadBits(s.rt.Backend(), s.rt.Remap().ToSim(req.Path))
			}
			if err != nil {
				return proto.Error(req.Token, "%v", err)
			}
			resp, _ := proto.OK(req.Token, proto.ValueInfoOf(b, s.rt.Backend().Time()))
			return resp
		})
	case "set-value":
		return s.controlledQuery(sess, req.Token, func() *proto.Response {
			err := s.rt.Backend().SetValue(req.Path, req.Value)
			if err != nil {
				err = s.rt.Backend().SetValue(s.rt.Remap().ToSim(req.Path), req.Value)
			}
			if err != nil {
				return proto.Error(req.Token, "%v", err)
			}
			resp, _ := proto.OK(req.Token, nil)
			return resp
		})
	case "info":
		return s.handleInfo(req)
	case "watch":
		return s.handleWatch(sess, req)
	case "session":
		return s.handleSession(sess, req)
	case "ack":
		// Fire-and-forget: record the newest snapshot the client holds
		// so later stop broadcasts can be delta-encoded against it.
		// AckSeq 0 is a client-requested resync back to full frames.
		sess.lastAck.Store(req.AckSeq)
		return nil
	}
	return proto.Error(req.Token, "unknown request type %q", req.Type)
}

// handleSession implements the session-management surface: listing
// attached sessions and moving control between them.
func (s *Server) handleSession(sess *Session, req *proto.Request) *proto.Response {
	switch req.Action {
	case "list":
		s.mu.Lock()
		infos := make([]proto.SessionInfo, 0, len(s.order))
		for _, id := range s.order {
			o := s.sessions[id]
			enc := "json"
			if o.binary {
				enc = "binary"
			}
			infos = append(infos, proto.SessionInfo{
				ID: o.ID, Role: o.role,
				Dropped:     o.dropped.Load(),
				Coalesced:   o.coalesced.Load(),
				Encoding:    enc,
				Delta:       o.delta,
				DeltaFrames: o.deltaFrames.Load(),
				FullFrames:  o.fullFrames.Load(),
				BytesSent:   o.conn.BytesWritten(),
			})
		}
		s.mu.Unlock()
		resp, _ := proto.OK(req.Token, infos)
		return resp
	case "release":
		s.mu.Lock()
		if s.controller != sess.ID {
			resp := s.controlErrorLocked(sess, req.Token)
			s.mu.Unlock()
			return resp
		}
		sess.role = proto.RoleObserver
		// Hand off to the oldest other session; with none, control
		// goes vacant and the next attach (or claim) takes it.
		newController := s.promoteLocked(sess.ID)
		s.broadcastLocked(&proto.Event{
			Type: "control", Controller: newController, Reason: "release",
		})
		s.mu.Unlock()
		resp, _ := proto.OK(req.Token, map[string]any{"controller": newController})
		return resp
	case "claim":
		s.mu.Lock()
		if s.controller != 0 && s.controller != sess.ID {
			id := s.controller
			s.mu.Unlock()
			return proto.Error(req.Token, "control is held by session %d", id)
		}
		sess.role = proto.RoleController
		s.controller = sess.ID
		s.broadcastLocked(&proto.Event{
			Type: "control", Controller: s.controller, Reason: "claim",
		})
		s.mu.Unlock()
		resp, _ := proto.OK(req.Token, map[string]any{"controller": sess.ID})
		return resp
	}
	return proto.Error(req.Token, "unknown session action %q", req.Action)
}

// Controller returns the session id currently holding control (0 =
// vacant).
func (s *Server) Controller() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.controller
}

// SessionIDs returns a snapshot of attached session ids in attach
// order.
func (s *Server) SessionIDs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.order))
	copy(out, s.order)
	return out
}

func (s *Server) handleWatch(sess *Session, req *proto.Request) *proto.Response {
	switch req.Action {
	case "add":
		// AddWatch probes the backend to resolve names: query queue.
		return s.controlledQuery(sess, req.Token, func() *proto.Response {
			id, err := s.rt.AddWatch(req.Instance, req.Expression)
			if err != nil {
				return proto.Error(req.Token, "%v", err)
			}
			resp, _ := proto.OK(req.Token, map[string]any{"id": id})
			return resp
		})
	case "remove":
		return s.withControl(sess, req.Token, func() *proto.Response {
			if !s.rt.RemoveWatch(req.WatchID) {
				return proto.Error(req.Token, "no watchpoint %d", req.WatchID)
			}
			resp, _ := proto.OK(req.Token, nil)
			return resp
		})
	case "list":
		type wire struct {
			ID       int    `json:"id"`
			Instance string `json:"instance"`
			Expr     string `json:"expr"`
		}
		var out []wire
		for _, w := range s.rt.Watches() {
			out = append(out, wire{ID: w.ID, Instance: w.Instance, Expr: w.Expr})
		}
		resp, _ := proto.OK(req.Token, out)
		return resp
	}
	return proto.Error(req.Token, "unknown watch action %q", req.Action)
}

func (s *Server) handleBreakpoint(sess *Session, req *proto.Request) *proto.Response {
	switch req.Action {
	case "add":
		// AddBreakpoint probes the backend while resolving condition
		// dependencies: query queue.
		return s.controlledQuery(sess, req.Token, func() *proto.Response {
			ids, err := s.rt.AddBreakpoint(req.Filename, req.Line, req.Condition)
			if err != nil {
				return proto.Error(req.Token, "%v", err)
			}
			resp, _ := proto.OK(req.Token, map[string]any{"ids": ids})
			return resp
		})
	case "remove":
		return s.withControl(sess, req.Token, func() *proto.Response {
			n := s.rt.RemoveBreakpoint(req.Filename, req.Line)
			resp, _ := proto.OK(req.Token, map[string]any{"removed": n})
			return resp
		})
	case "clear":
		return s.withControl(sess, req.Token, func() *proto.Response {
			s.rt.ClearBreakpoints()
			resp, _ := proto.OK(req.Token, nil)
			return resp
		})
	case "list":
		var infos []proto.BreakpointInfo
		for _, bp := range s.rt.ListBreakpoints() {
			infos = append(infos, proto.BreakpointInfo{
				ID: bp.ID, Filename: bp.Filename, Line: bp.Line,
				Instance: bp.InstanceName, Enable: bp.Enable, EnableSrc: bp.EnableSrc,
			})
		}
		resp, _ := proto.OK(req.Token, infos)
		return resp
	}
	return proto.Error(req.Token, "unknown breakpoint action %q", req.Action)
}

func (s *Server) handleCommand(sess *Session, req *proto.Request) *proto.Response {
	if req.Command == "pause" {
		return s.withControl(sess, req.Token, func() *proto.Response {
			s.rt.InterruptNext()
			resp, _ := proto.OK(req.Token, nil)
			return resp
		})
	}
	cmd, err := proto.ParseCommand(req.Command)
	if err != nil {
		return proto.Error(req.Token, "%v", err)
	}
	// Control check and resume are one critical section: a session
	// that lost control a moment ago must not resume the simulation
	// out from under the new controller.
	return s.withControl(sess, req.Token, func() *proto.Response {
		if !s.sendResumeLocked(cmd) {
			return proto.Error(req.Token, "not stopped at a breakpoint")
		}
		resp, _ := proto.OK(req.Token, nil)
		return resp
	})
}

func (s *Server) handleInfo(req *proto.Request) *proto.Response {
	switch req.Topic {
	case "files":
		resp, _ := proto.OK(req.Token, s.rt.Table().Files())
		return resp
	case "lines":
		resp, _ := proto.OK(req.Token, s.rt.Table().Lines(req.Filename))
		return resp
	case "instances":
		resp, _ := proto.OK(req.Token, s.rt.Table().Instances())
		return resp
	case "status":
		// Time lives in simulation state: query queue.
		return s.runQuery(req.Token, func() *proto.Response {
			evals, stops := s.rt.Stats()
			resp, _ := proto.OK(req.Token, map[string]any{
				"time":    s.rt.Backend().Time(),
				"evals":   evals,
				"stops":   stops,
				"mode":    s.rt.Table().Mode(),
				"reverse": s.reverse,
			})
			return resp
		})
	}
	return proto.Error(req.Token, "unknown info topic %q", req.Topic)
}

// String describes the server.
func (s *Server) String() string {
	if s.ln == nil {
		return "hgdb server (not listening)"
	}
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return fmt.Sprintf("hgdb server on %s (%d sessions)", s.ln.Addr(), n)
}
