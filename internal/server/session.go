package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ws"
)

// Tunables for session I/O. Variables (not constants) so tests can
// tighten them; set before Listen.
var (
	// outQueueDepth is each session's outbound queue capacity. When a
	// slow session's queue is full, broadcast events are dropped for
	// that session (counted) instead of blocking the simulation.
	outQueueDepth = 64
	// sessionWriteTimeout bounds every frame write to a session.
	sessionWriteTimeout = 10 * time.Second
	// responseTimeout bounds how long a request handler waits to
	// enqueue a response into a full queue before declaring the
	// session dead.
	responseTimeout = 5 * time.Second
	// pingInterval is the keepalive cadence on idle session links.
	pingInterval = 15 * time.Second
)

// Session is one attached debugger client. The server goroutines
// touching it are: the reader (request loop), the writer (outbound
// queue drain + keepalive), and any goroutine broadcasting events.
type Session struct {
	// ID is unique per server, assigned at attach in increasing order;
	// the attach order is also the control succession order.
	ID int64

	srv  *Server
	conn *ws.Conn

	// role is guarded by srv.mu (arbitration is server-global state).
	role string

	// out carries marshaled frames to the writer goroutine. Never
	// closed; teardown is signaled on quit so enqueuers can never hit
	// a closed channel.
	out chan []byte

	// quit closes (once) when the session is dropped; the writer
	// flushes what is already queued and closes the connection.
	quit     chan struct{}
	quitOnce sync.Once

	// dropped counts broadcast events discarded under backpressure.
	dropped atomic.Uint64
	// dead flips when the writer hits an I/O error: frames are
	// discarded from then on, but the queue keeps draining so
	// enqueuers never block.
	dead atomic.Bool

	// writerDone closes when the writer goroutine has flushed the
	// queue and closed the connection — the drain point for graceful
	// shutdown.
	writerDone chan struct{}
}

func newSession(srv *Server, conn *ws.Conn, id int64, role string) *Session {
	return &Session{
		ID:         id,
		srv:        srv,
		conn:       conn,
		role:       role,
		out:        make(chan []byte, outQueueDepth),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
}

// signalQuit asks the writer to flush and exit; idempotent.
func (sess *Session) signalQuit() {
	sess.quitOnce.Do(func() { close(sess.quit) })
}

// tryEnqueue queues a frame if the session's queue has room,
// reporting success; a failure is counted as a drop. Never blocks.
func (sess *Session) tryEnqueue(msg []byte) bool {
	select {
	case sess.out <- msg:
		return true
	default:
		sess.dropped.Add(1)
		return false
	}
}

// enqueueEvent queues a broadcast frame, dropping it (and counting the
// drop) when the session is not keeping up. Never blocks: the
// simulation goroutine broadcasts stop events from inside the clock
// callback, and one wedged observer must not stall the design.
func (sess *Session) enqueueEvent(msg []byte) {
	sess.tryEnqueue(msg)
}

// enqueueResponse queues a reply to a request this session made.
// Responses are never dropped — the client's request loop is stalled
// without one — but a session that cannot absorb its own response
// within the timeout is declared dead. Returns false if the session
// is gone.
func (sess *Session) enqueueResponse(msg []byte) bool {
	select {
	case sess.out <- msg:
		return true
	case <-sess.quit:
		return false
	case <-time.After(responseTimeout):
		sess.srv.dropSession(sess.ID, "response queue wedged")
		return false
	}
}

// write sends one frame, marking the session dead (and dropping it)
// on I/O failure. The conn's write deadline guarantees the call
// returns even against a wedged peer.
func (sess *Session) write(msg []byte) {
	if sess.dead.Load() {
		return
	}
	if err := sess.conn.WriteText(msg); err != nil {
		sess.dead.Store(true)
		sess.srv.dropSession(sess.ID, "write: "+err.Error())
	}
}

// writeLoop is the session's writer goroutine: it drains the outbound
// queue, pings the peer when idle, and — once quit is signaled —
// flushes what remains and runs the (bounded) close handshake.
func (sess *Session) writeLoop() {
	defer close(sess.writerDone)
	ticker := time.NewTicker(pingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-sess.quit:
			for {
				select {
				case msg := <-sess.out:
					sess.write(msg)
				default:
					sess.conn.Close()
					return
				}
			}
		case msg := <-sess.out:
			sess.write(msg)
		case <-ticker.C:
			if sess.dead.Load() {
				continue
			}
			if err := sess.conn.Ping(nil); err != nil {
				sess.dead.Store(true)
				sess.srv.dropSession(sess.ID, "keepalive: "+err.Error())
			}
		}
	}
}
