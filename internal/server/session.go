package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ws"
)

// Tunables for session I/O. Variables (not constants) so tests can
// tighten them; set before Listen.
var (
	// outQueueDepth is each session's outbound queue capacity for
	// broadcast events. Sim-state events (stop/resume) coalesce to one
	// queued entry and never count against it; peer/control events
	// coalesce within their class once the queue is full, and drop only
	// when there is nothing of their class to supersede.
	outQueueDepth = 64
	// responseQueueHardCap bounds the whole queue including responses;
	// a session that pipelines requests faster than its link drains
	// replies is declared dead rather than growing without bound.
	responseQueueHardCap = 1024
	// sessionWriteTimeout bounds every frame write to a session.
	sessionWriteTimeout = 10 * time.Second
	// pingInterval is the keepalive cadence on idle session links.
	pingInterval = 15 * time.Second
)

// eventClass buckets outbound frames for the coalescing policy. The
// queue preserves arrival order; coalescing removes a superseded entry
// and appends its replacement at the tail, so what survives is always
// a subsequence of the broadcast stream — never a reordering.
type eventClass uint8

const (
	// classResponse: request replies and the welcome frame. Never
	// coalesced, never dropped (a client round trip hangs without its
	// reply); a queue over the hard cap kills the session instead.
	classResponse eventClass = iota
	// classState: stop/resume — the simulation state events. A newer
	// state event always supersedes a queued one: a slow observer sees
	// the latest coherent state, not an arbitrary surviving prefix.
	classState
	// classPeer: attach/goodbye peer-roster events. Coalesce only under
	// queue pressure — each carries the current roster counters, so the
	// newest subsumes the rest.
	classPeer
	// classControl: control-transfer events. Coalesce only under
	// pressure; the newest names the current controller.
	classControl
)

// outEntry is one queued outbound frame, already encoded for this
// session's negotiated wire encoding.
type outEntry struct {
	cls    eventClass
	msg    []byte
	binary bool // write as a binary ws frame
}

// Session is one attached debugger client. The server goroutines
// touching it are: the reader (request loop), the writer (outbound
// queue drain + keepalive), and any goroutine broadcasting events.
type Session struct {
	// ID is unique per server, assigned at attach in increasing order;
	// the attach order is also the control succession order.
	ID int64

	srv  *Server
	conn *ws.Conn

	// role is guarded by srv.mu (arbitration is server-global state).
	role string

	// binary/delta record the wire negotiation made at attach
	// (?enc=binary, ?delta=1); immutable afterwards.
	binary bool
	delta  bool

	// lastAck is the newest broadcast seq the client acknowledged
	// holding ("ack" requests); stop broadcasts may be delta-encoded
	// against it. 0 = no acked base (full frames).
	lastAck atomic.Uint64

	// q is the outbound coalescing queue (guarded by qmu); notify has
	// capacity 1 and wakes the writer when the queue goes non-empty.
	qmu    sync.Mutex
	q      []outEntry
	notify chan struct{}

	// quit closes (once) when the session is dropped; the writer
	// flushes what is already queued and closes the connection.
	quit     chan struct{}
	quitOnce sync.Once

	// dropped counts broadcast events discarded under backpressure
	// (nothing of their class was queued to supersede); coalesced
	// counts queued events superseded by a newer same-class event.
	dropped   atomic.Uint64
	coalesced atomic.Uint64
	// deltaFrames/fullFrames count how this session's stop broadcasts
	// were encoded.
	deltaFrames atomic.Uint64
	fullFrames  atomic.Uint64
	// dead flips when the writer hits an I/O error: frames are
	// discarded from then on, but the queue keeps draining so
	// enqueuers never block.
	dead atomic.Bool

	// writerDone closes when the writer goroutine has flushed the
	// queue and closed the connection — the drain point for graceful
	// shutdown.
	writerDone chan struct{}
}

func newSession(srv *Server, conn *ws.Conn, id int64, role string) *Session {
	return &Session{
		ID:         id,
		srv:        srv,
		conn:       conn,
		role:       role,
		notify:     make(chan struct{}, 1),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
}

// signalQuit asks the writer to flush and exit; idempotent.
func (sess *Session) signalQuit() {
	sess.quitOnce.Do(func() { close(sess.quit) })
}

// wake nudges the writer; the 1-slot channel makes it level-triggered.
func (sess *Session) wake() {
	select {
	case sess.notify <- struct{}{}:
	default:
	}
}

// removeNewestLocked deletes the newest queued entry of class cls,
// reporting whether one existed. Callers hold qmu.
func (sess *Session) removeNewestLocked(cls eventClass) bool {
	for i := len(sess.q) - 1; i >= 0; i-- {
		if sess.q[i].cls == cls {
			sess.q = append(sess.q[:i], sess.q[i+1:]...)
			return true
		}
	}
	return false
}

// enqueue applies the coalescing policy and queues one frame. It never
// blocks (broadcasts run inside the simulator's clock callback, often
// under s.mu) and reports whether the frame was queued or superseded
// into the queue — false only for a pressure drop with nothing to
// supersede.
func (sess *Session) enqueue(e outEntry) bool {
	sess.qmu.Lock()
	switch e.cls {
	case classState:
		// A queued sim-state event is always superseded: delete it and
		// append the newer one at the tail (subsequence order holds).
		// At most one state entry is ever queued, so a state enqueue
		// always succeeds — a controller's stop cannot be shed.
		if sess.removeNewestLocked(classState) {
			sess.coalesced.Add(1)
		}
		sess.q = append(sess.q, e)
	case classPeer, classControl:
		if len(sess.q) >= outQueueDepth {
			// Under pressure the newest same-class entry is superseded
			// in place of growth; with none queued the event is shed.
			if !sess.removeNewestLocked(e.cls) {
				sess.qmu.Unlock()
				sess.dropped.Add(1)
				return false
			}
			sess.coalesced.Add(1)
		}
		sess.q = append(sess.q, e)
	default: // classResponse — never coalesced, never dropped
		sess.q = append(sess.q, e)
	}
	sess.qmu.Unlock()
	sess.wake()
	return true
}

// enqueueResponse queues a reply to a request this session made.
// Responses are never coalesced or dropped — the client's request loop
// is stalled without one — but a session that pipelines requests
// faster than its link drains replies is declared dead rather than
// growing the queue without bound. Must not be called under s.mu.
func (sess *Session) enqueueResponse(msg []byte) {
	sess.enqueue(outEntry{cls: classResponse, msg: msg})
	sess.qmu.Lock()
	wedged := len(sess.q) > responseQueueHardCap
	sess.qmu.Unlock()
	if wedged {
		sess.srv.dropSession(sess.ID, "response queue wedged")
	}
}

// pop removes the queue head. ok=false means empty.
func (sess *Session) pop() (outEntry, bool) {
	sess.qmu.Lock()
	defer sess.qmu.Unlock()
	if len(sess.q) == 0 {
		return outEntry{}, false
	}
	e := sess.q[0]
	// Slide rather than reslice so the backing array is reused and old
	// frames do not pin memory via a marching slice head.
	copy(sess.q, sess.q[1:])
	sess.q[len(sess.q)-1] = outEntry{}
	sess.q = sess.q[:len(sess.q)-1]
	return e, true
}

// write sends one frame, marking the session dead (and dropping it)
// on I/O failure. The conn's write deadline guarantees the call
// returns even against a wedged peer.
func (sess *Session) write(e outEntry) {
	if sess.dead.Load() {
		return
	}
	var err error
	if e.binary {
		err = sess.conn.WriteBinary(e.msg)
	} else {
		err = sess.conn.WriteText(e.msg)
	}
	if err != nil {
		sess.dead.Store(true)
		sess.srv.dropSession(sess.ID, "write: "+err.Error())
	}
}

// drain writes queued frames until the queue is empty.
func (sess *Session) drain() {
	for {
		e, ok := sess.pop()
		if !ok {
			return
		}
		sess.write(e)
	}
}

// writeLoop is the session's writer goroutine: it drains the outbound
// queue, pings the peer when idle, and — once quit is signaled —
// flushes what remains and runs the (bounded) close handshake.
func (sess *Session) writeLoop() {
	defer close(sess.writerDone)
	ticker := time.NewTicker(pingInterval)
	defer ticker.Stop()
	for {
		select {
		case <-sess.quit:
			sess.drain()
			sess.conn.Close()
			return
		case <-sess.notify:
			sess.drain()
		case <-ticker.C:
			if sess.dead.Load() {
				continue
			}
			if err := sess.conn.Ping(nil); err != nil {
				sess.dead.Store(true)
				sess.srv.dropSession(sess.ID, "keepalive: "+err.Error())
			}
		}
	}
}
