package server

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/proto"
)

// Coalescing-semantics tests: the queue policy must collapse any
// interleaving of stop/resume/goodbye traffic to a state equivalent to
// delivering every event — the delivered stream is a subsequence of
// the enqueued stream, responses all survive in order, and the final
// sim-state event delivered is the final one enqueued.

// tagMsg encodes (class, id) into a frame payload the tests can parse
// back out of delivered entries.
func tagMsg(cls eventClass, id int) []byte {
	return []byte(fmt.Sprintf("%d:%d", cls, id))
}

func tagID(t *testing.T, msg []byte) int {
	t.Helper()
	for i, b := range msg {
		if b == ':' {
			id, err := strconv.Atoi(string(msg[i+1:]))
			if err != nil {
				t.Fatalf("bad tag %q: %v", msg, err)
			}
			return id
		}
	}
	t.Fatalf("untagged frame %q", msg)
	return 0
}

// coalesceHarness drives one Session queue directly and mirrors a
// full-delivery model alongside it.
type coalesceHarness struct {
	sess *Session

	nextID   int
	enqByCls map[eventClass][]int // ids enqueued per class, in order
	accepted map[int]bool         // enqueue returned true
	deliver  []int                // ids popped, in pop order
	delivCls map[int]eventClass
}

func newCoalesceHarness() *coalesceHarness {
	return &coalesceHarness{
		sess:     newSession(&Server{}, nil, 1, proto.RoleObserver),
		enqByCls: map[eventClass][]int{},
		accepted: map[int]bool{},
		delivCls: map[int]eventClass{},
	}
}

func (h *coalesceHarness) enqueue(cls eventClass) int {
	h.nextID++
	id := h.nextID
	h.enqByCls[cls] = append(h.enqByCls[cls], id)
	h.accepted[id] = h.sess.enqueue(outEntry{cls: cls, msg: tagMsg(cls, id)})
	h.delivCls[id] = cls
	return id
}

func (h *coalesceHarness) popOne(t *testing.T) bool {
	e, ok := h.sess.pop()
	if !ok {
		return false
	}
	h.deliver = append(h.deliver, tagID(t, e.msg))
	return true
}

func (h *coalesceHarness) drainAll(t *testing.T) {
	for h.popOne(t) {
	}
}

// check asserts the equivalence properties after a full drain.
func (h *coalesceHarness) check(t *testing.T, label string) {
	t.Helper()
	// Delivered ids strictly increase: the surviving stream is a
	// subsequence of the enqueued stream, never a reordering.
	for i := 1; i < len(h.deliver); i++ {
		if h.deliver[i] <= h.deliver[i-1] {
			t.Fatalf("%s: delivery reordered: %v", label, h.deliver)
		}
	}
	// Every response survives, in order.
	var gotResp []int
	for _, id := range h.deliver {
		if h.delivCls[id] == classResponse {
			gotResp = append(gotResp, id)
		}
	}
	if want := h.enqByCls[classResponse]; fmt.Sprint(gotResp) != fmt.Sprint(want) {
		t.Fatalf("%s: responses delivered %v, enqueued %v", label, gotResp, want)
	}
	// The final sim-state event delivered is the final one enqueued:
	// a fully-drained observer holds the same state as one that saw
	// every event.
	if states := h.enqByCls[classState]; len(states) > 0 {
		wantLast := states[len(states)-1]
		gotLast := -1
		for _, id := range h.deliver {
			if h.delivCls[id] == classState {
				gotLast = id
			}
		}
		if gotLast != wantLast {
			t.Fatalf("%s: final state delivered = %d, want %d (delivered %v)",
				label, gotLast, wantLast, h.deliver)
		}
	}
	// Same terminal rule for peer and control classes: their newest
	// enqueued event, when accepted, must be delivered.
	for _, cls := range []eventClass{classPeer, classControl} {
		ids := h.enqByCls[cls]
		if len(ids) == 0 {
			continue
		}
		last := ids[len(ids)-1]
		if !h.accepted[last] {
			continue // shed under pressure with nothing to supersede
		}
		found := false
		for _, id := range h.deliver {
			if id == last {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: newest accepted class-%d event %d not delivered (%v)",
				label, cls, last, h.deliver)
		}
	}
	// Conservation: every enqueue is delivered, coalesced away, or
	// counted dropped.
	total := 0
	for _, ids := range h.enqByCls {
		total += len(ids)
	}
	got := len(h.deliver) + int(h.sess.coalesced.Load()) + int(h.sess.dropped.Load())
	if total != got {
		t.Fatalf("%s: %d enqueued but delivered+coalesced+dropped = %d+%d+%d",
			label, total, len(h.deliver), h.sess.coalesced.Load(), h.sess.dropped.Load())
	}
}

// TestCoalesceInterleavingsExhaustive enumerates every schedule of
// length 6 over {stop, resume, goodbye, drain-one} — 4096 interleavings
// — and pins that each collapses to the full-delivery state. No queue
// pressure here (depth 64 vs ≤6 events), so every goodbye must also
// survive verbatim.
func TestCoalesceInterleavingsExhaustive(t *testing.T) {
	const length = 6
	ops := []byte{'S', 'C', 'G', 'D'} // stop, resume (continue), goodbye, drain one
	total := 1
	for i := 0; i < length; i++ {
		total *= len(ops)
	}
	for n := 0; n < total; n++ {
		sched := make([]byte, length)
		for i, v := 0, n; i < length; i, v = i+1, v/len(ops) {
			sched[i] = ops[v%len(ops)]
		}
		h := newCoalesceHarness()
		for _, op := range sched {
			switch op {
			case 'S', 'C':
				h.enqueue(classState)
			case 'G':
				h.enqueue(classPeer)
			case 'D':
				h.popOne(t)
			}
		}
		h.drainAll(t)
		label := string(sched)
		h.check(t, label)
		// With no pressure, peer events never coalesce or drop: every
		// goodbye is delivered.
		var gotPeers []int
		for _, id := range h.deliver {
			if h.delivCls[id] == classPeer {
				gotPeers = append(gotPeers, id)
			}
		}
		if fmt.Sprint(gotPeers) != fmt.Sprint(h.enqByCls[classPeer]) {
			t.Fatalf("%s: goodbyes delivered %v, enqueued %v (no pressure, none may coalesce)",
				label, gotPeers, h.enqByCls[classPeer])
		}
	}
}

// TestCoalesceRandomSchedules is the property-style half: 150
// randomized schedules mixing all four classes with interleaved
// partial drains, run against a tiny queue so the pressure paths
// (in-class coalesce, shed-with-nothing-to-supersede) are exercised.
func TestCoalesceRandomSchedules(t *testing.T) {
	oldDepth := outQueueDepth
	outQueueDepth = 8
	defer func() { outQueueDepth = oldDepth }()

	classes := []eventClass{
		classState, classState, classState, // state-heavy, like a stop storm
		classPeer, classControl, classResponse,
	}
	for schedule := 0; schedule < 150; schedule++ {
		rng := rand.New(rand.NewSource(int64(schedule)*7919 + 17))
		h := newCoalesceHarness()
		steps := 50 + rng.Intn(200)
		for i := 0; i < steps; i++ {
			if rng.Intn(4) == 0 {
				for j := rng.Intn(5); j > 0; j-- {
					if !h.popOne(t) {
						break
					}
				}
				continue
			}
			h.enqueue(classes[rng.Intn(len(classes))])
		}
		h.drainAll(t)
		h.check(t, fmt.Sprintf("schedule %d", schedule))
		// State enqueues must never be shed: at most one is queued at a
		// time, so acceptance is unconditional.
		for _, id := range h.enqByCls[classState] {
			if !h.accepted[id] {
				t.Fatalf("schedule %d: state event %d rejected — stops must never shed", schedule, id)
			}
		}
	}
}
