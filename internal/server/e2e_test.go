package server

import (
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
	"repro/internal/ws"
)

// This file is the end-to-end protocol harness for multi-client debug
// sessions: a real runtime behind a real listener, several clients
// attached through internal/client, scripted breakpoints, and
// assertions over broadcast ordering, control arbitration, observer
// reads mid-run, and teardown. CI runs the whole package under -race;
// these tests are the reason.

// collectStop waits for the next stop event on a client and returns
// the full proto event (with its broadcast sequence number).
func collectStop(t *testing.T, cl *client.Client) *proto.Event {
	t.Helper()
	ev, err := cl.WaitEvent("stop", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestMultiClientSession is the acceptance scenario: three clients on
// one runtime — every session receives the same broadcast stops in
// the same order, only the controller can resume or mutate, observers
// read state mid-run, and control hands off on release.
func TestMultiClientSession(t *testing.T) {
	addr, s, incLine := startServerAddr(t)
	ctrl := dialClient(t, addr)
	obs1 := dialClient(t, addr)
	obs2 := dialClient(t, addr)

	// --- Arbitration: first attach owns control. ---
	if ctrl.Role() != proto.RoleController {
		t.Fatalf("first client role = %q", ctrl.Role())
	}
	for i, obs := range []*client.Client{obs1, obs2} {
		if obs.Role() != proto.RoleObserver {
			t.Fatalf("observer %d role = %q", i, obs.Role())
		}
		if obs.Controller() != ctrl.SessionID() {
			t.Fatalf("observer %d sees controller %d, want %d", i, obs.Controller(), ctrl.SessionID())
		}
	}
	infos, err := ctrl.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Role != proto.RoleController ||
		infos[1].Role != proto.RoleObserver || infos[2].Role != proto.RoleObserver {
		t.Fatalf("session list = %+v", infos)
	}

	// --- Only the controller mutates. ---
	if _, err := obs1.AddBreakpoint("server_test.go", incLine, ""); err == nil {
		t.Fatal("observer armed a breakpoint")
	}
	if err := obs1.SetValue("Counter.count", 7); err == nil {
		t.Fatal("observer deposited a value")
	}
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatalf("controller add breakpoint: %v", err)
	}

	// --- Broadcast: every session gets the same stops, same order. ---
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()
	const stops = 3
	seqs := make([][]uint64, 3)
	times := make([][]uint64, 3)
	for hit := 0; hit < stops; hit++ {
		for ci, cl := range []*client.Client{ctrl, obs1, obs2} {
			ev := collectStop(t, cl)
			if ev.Stop.File != "server_test.go" || ev.Stop.Line != incLine {
				t.Fatalf("client %d stop %d at %s:%d", ci, hit, ev.Stop.File, ev.Stop.Line)
			}
			seqs[ci] = append(seqs[ci], ev.Seq)
			times[ci] = append(times[ci], ev.Stop.Time)
		}
		// While stopped: observers may read, not resume.
		if hit == 0 {
			v, err := obs1.GetValue("Counter.count")
			if err != nil {
				t.Fatalf("observer get-value at stop: %v", err)
			}
			if v.Value != 0 {
				t.Fatalf("count at first stop = %d", v.Value)
			}
			if err := obs2.Command("continue"); err == nil {
				t.Fatal("observer resumed the simulation")
			}
		}
		if err := ctrl.Command("continue"); err != nil {
			t.Fatalf("controller continue %d: %v", hit, err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation did not finish")
	}
	for ci := 1; ci < 3; ci++ {
		for h := 0; h < stops; h++ {
			if seqs[ci][h] != seqs[0][h] || times[ci][h] != times[0][h] {
				t.Fatalf("client %d stop %d = (seq %d, t %d), client 0 saw (seq %d, t %d)",
					ci, h, seqs[ci][h], times[ci][h], seqs[0][h], times[0][h])
			}
		}
	}
	for ci := range seqs {
		for h := 1; h < stops; h++ {
			if seqs[ci][h] <= seqs[ci][h-1] {
				t.Fatalf("client %d saw non-increasing seqs %v", ci, seqs[ci])
			}
		}
	}

	// --- Observer reads while the simulation is running. ---
	if _, err := ctrl.RemoveBreakpoint("server_test.go", incLine); err != nil {
		t.Fatal(err)
	}
	var running atomic.Bool
	running.Store(true)
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		for running.Load() {
			s.Run(1)
		}
	}()
	first, err := obs1.GetValue("Counter.count")
	if err != nil {
		t.Fatalf("observer get-value mid-run: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	second, err := obs2.Evaluate("Counter", "count + 256")
	if err != nil {
		t.Fatalf("observer evaluate mid-run: %v", err)
	}
	if second.Value < 256 {
		t.Fatalf("evaluate mid-run = %d, want >= 256", second.Value)
	}
	if second.Time <= first.Time {
		t.Fatalf("mid-run capture times did not advance: %d then %d", first.Time, second.Time)
	}
	if err := ctrl.SetValue("Counter.en", 0); err != nil {
		t.Fatalf("controller set-value mid-run: %v", err)
	}
	running.Store(false)
	select {
	case <-runDone:
	case <-time.After(5 * time.Second):
		t.Fatal("free-running simulation stuck")
	}

	// --- Release hands control to the oldest observer. ---
	if err := ctrl.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	ev, err := obs1.WaitEvent("control", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Controller != obs1.SessionID() || ev.Reason != "release" {
		t.Fatalf("control event = %+v (obs1 is %d)", ev, obs1.SessionID())
	}
	if _, err := ctrl.WaitEvent("control", 2*time.Second); err != nil {
		t.Fatalf("old controller missed the control broadcast: %v", err)
	}
	if ctrl.Role() != proto.RoleObserver || obs1.Role() != proto.RoleController {
		t.Fatalf("roles after release: old=%q new=%q", ctrl.Role(), obs1.Role())
	}
	if err := ctrl.SetValue("Counter.count", 1); err == nil {
		t.Fatal("released controller still mutates")
	}
	if err := obs1.SetValue("Counter.count", 1); err != nil {
		t.Fatalf("promoted controller cannot mutate: %v", err)
	}
}

// TestControllerDropDuringStopAutoContinues: the sole session drops
// while the simulation is blocked inside onStop. The runtime must
// auto-continue instead of deadlocking the simulator forever.
func TestControllerDropDuringStopAutoContinues(t *testing.T) {
	addr, s, incLine := startServerAddr(t)
	ctrl := dialClient(t, addr)
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()
	if _, err := ctrl.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Drop the only commander mid-stop. Auto-continue must carry the
	// simulation through this and every later breakpoint hit.
	ctrl.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation deadlocked after controller disconnect during stop")
	}
}

// TestControllerDropDuringStopPromotesObserver: with an observer
// still attached, dropping the controller mid-stop hands control over
// instead of auto-continuing — the promoted session decides.
func TestControllerDropDuringStopPromotesObserver(t *testing.T) {
	addr, s, incLine := startServerAddr(t)
	ctrl := dialClient(t, addr)
	obs := dialClient(t, addr)
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()
	if _, err := ctrl.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	ev, err := obs.WaitEvent("control", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Controller != obs.SessionID() || ev.Reason != "disconnect" {
		t.Fatalf("control event = %+v (observer is %d)", ev, obs.SessionID())
	}
	if obs.Role() != proto.RoleController {
		t.Fatalf("observer role after promotion = %q", obs.Role())
	}
	// The simulation must still be parked at the stop: continue (from
	// the promoted session) is what resumes it. If the server had
	// wrongly auto-continued, this command would fail with "not
	// stopped".
	if err := obs.Command("continue"); err != nil {
		t.Fatalf("promoted controller continue: %v", err)
	}
	for {
		if _, err := obs.WaitStop(2 * time.Second); err != nil {
			break
		}
		if err := obs.Command("continue"); err != nil {
			break
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation stuck after promotion")
	}
}

// TestSlowObserverDoesNotBlockSimulation: an observer that never
// reads its socket must not stall the simulation — stop broadcasts
// drop at its queue instead of blocking the clock callback.
func TestSlowObserverDoesNotBlockSimulation(t *testing.T) {
	addr, s, incLine := startServerAddr(t)
	ctrl := dialClient(t, addr)
	// Raw connection that completes the handshake and then never
	// reads: the worst-behaved observer possible.
	wedged, err := ws.Dial("ws://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	if _, err := ctrl.WaitEvent("attach", 2*time.Second); err != nil {
		t.Fatalf("no attach broadcast for the wedged observer: %v", err)
	}
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatal(err)
	}
	const cycles = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(cycles)
	}()
	for i := 0; i < cycles; i++ {
		if _, err := ctrl.WaitStop(5 * time.Second); err != nil {
			t.Fatalf("stop %d: %v", i, err)
		}
		if err := ctrl.Command("continue"); err != nil {
			t.Fatalf("continue %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("simulation blocked behind a wedged observer")
	}
}

// TestEventBackpressureCoalescePolicy pins the queue policy itself:
// with no writer draining, enqueues never block — sim-state events
// coalesce to the single newest one, peer events coalesce within
// their class once the queue is full, and drops happen only with
// nothing of the same class to supersede.
func TestEventBackpressureCoalescePolicy(t *testing.T) {
	sess := newSession(nil, nil, 1, proto.RoleObserver)
	const storm = 500
	start := time.Now()
	for i := 0; i < storm; i++ {
		if !sess.enqueue(outEntry{cls: classState, msg: []byte{byte(i)}}) {
			t.Fatal("sim-state enqueue failed (must always land)")
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("enqueue blocked for %s", elapsed)
	}
	if got := sess.coalesced.Load(); got != storm-1 {
		t.Fatalf("coalesced = %d, want %d", got, storm-1)
	}
	if len(sess.q) != 1 || sess.q[0].msg[0] != byte((storm-1)%256) {
		t.Fatalf("queue = %d entries, head %v (want 1 entry, the newest)", len(sess.q), sess.q[0].msg)
	}
	// Peer chatter fills the remaining depth, then supersedes in place.
	for i := 0; i < outQueueDepth+10; i++ {
		sess.enqueue(outEntry{cls: classPeer, msg: []byte{byte(i)}})
	}
	if len(sess.q) > outQueueDepth+1 {
		t.Fatalf("queue grew to %d (> depth %d)", len(sess.q), outQueueDepth)
	}
	if got := sess.dropped.Load(); got != 0 {
		t.Fatalf("dropped = %d with peer entries available to supersede", got)
	}
	// A new sim-state event still lands even with the queue at depth.
	if !sess.enqueue(outEntry{cls: classState, msg: []byte{0xFF}}) {
		t.Fatal("sim-state enqueue failed on a full queue")
	}
	// Drops only occur when there is nothing of the class to supersede:
	// a control event into a queue full of responses/peers it cannot
	// touch... first drain peers to build a pure-response queue.
	resp := newSession(nil, nil, 2, proto.RoleObserver)
	for i := 0; i < outQueueDepth; i++ {
		resp.enqueue(outEntry{cls: classResponse, msg: []byte("r")})
	}
	if resp.enqueue(outEntry{cls: classControl, msg: []byte("c")}) {
		t.Fatal("control event landed with nothing to supersede in a full queue")
	}
	if got := resp.dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestGracefulShutdownDrainsSessions: Close sends every session a
// goodbye, flushes the queues, and completes the close handshake.
func TestGracefulShutdownDrainsSessions(t *testing.T) {
	addr, _, _, srv := startServerFull(t)
	a := dialClient(t, addr)
	b := dialClient(t, addr)
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for name, cl := range map[string]*client.Client{"a": a, "b": b} {
		if _, err := cl.WaitEvent("goodbye", 5*time.Second); err != nil {
			t.Fatalf("client %s: %v", name, err)
		}
		if _, err := cl.WaitEvent("disconnect", 5*time.Second); err != nil {
			t.Fatalf("client %s after goodbye: %v", name, err)
		}
	}
}

// TestClientReconnect: after losing its connection, a client can
// re-attach to the same endpoint and gets a fresh session.
func TestClientReconnect(t *testing.T) {
	addr, _, _ := startServerAddr(t)
	cl := dialClient(t, addr)
	firstID := cl.SessionID()
	cl.Close()
	if _, err := cl.WaitEvent("disconnect", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reconnect(); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	ev, err := cl.WaitEvent("welcome", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.SessionID == firstID || ev.SessionID == 0 {
		t.Fatalf("reconnect session id = %d (first was %d)", ev.SessionID, firstID)
	}
	// The fresh session is alone, so it holds control again.
	if cl.Role() != proto.RoleController {
		t.Fatalf("role after reconnect = %q", cl.Role())
	}
	if _, err := cl.Sessions(); err != nil {
		t.Fatalf("request on reconnected session: %v", err)
	}
}

// TestDisconnectSentinelSurvivesFullEventBuffer: a client whose Events
// buffer is saturated with unread broadcasts must still learn that the
// connection died — the sentinel evicts an old event instead of being
// dropped.
func TestDisconnectSentinelSurvivesFullEventBuffer(t *testing.T) {
	addr, _, _ := startServerAddr(t)
	cl := dialClient(t, addr)
	// Saturate cl's event buffer (cap 16) with attach/goodbye chatter
	// it never reads.
	for i := 0; i < 12; i++ {
		peer, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := peer.WaitEvent("welcome", 2*time.Second); err != nil {
			t.Fatal(err)
		}
		peer.Close()
	}
	cl.Close()
	if _, err := cl.WaitEvent("disconnect", 5*time.Second); err != nil {
		t.Fatalf("disconnect sentinel lost in a full buffer: %v", err)
	}
}

// TestReconnectNotSabotagedByStaleTeardown: a reconnect racing the old
// read loop's teardown must keep its fresh waiters and must not see a
// stale disconnect event afterwards.
func TestReconnectNotSabotagedByStaleTeardown(t *testing.T) {
	addr, _, _ := startServerAddr(t)
	cl := dialClient(t, addr)
	for i := 0; i < 5; i++ {
		if err := cl.Reconnect(); err != nil {
			t.Fatalf("reconnect %d: %v", i, err)
		}
		if _, err := cl.WaitEvent("welcome", 5*time.Second); err != nil {
			t.Fatalf("welcome after reconnect %d: %v", i, err)
		}
		// Requests on the fresh generation must round-trip: a stale
		// teardown wiping the new waiting map would hang this.
		if _, err := cl.Sessions(); err != nil {
			t.Fatalf("sessions after reconnect %d: %v", i, err)
		}
	}
}

// TestBadRequestEchoesToken: a request with an unknown type (or
// otherwise failing decode) must still carry the client's token in
// the error response — otherwise the client cannot match it and hangs
// out its full round-trip timeout.
func TestBadRequestEchoesToken(t *testing.T) {
	addr, _, _ := startServerAddr(t)
	conn, err := ws.Dial("ws://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteText([]byte(`{"type":"warp","token":"9"}`)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		raw, err := conn.ReadText()
		if err != nil {
			t.Fatal(err)
		}
		var resp proto.Response
		if json.Unmarshal(raw, &resp) != nil || resp.Type != "response" {
			continue // skip welcome and other events
		}
		if resp.Token != "9" || resp.Status != "error" {
			t.Fatalf("bad-request response = %+v", resp)
		}
		return
	}
	t.Fatal("no response to the malformed request")
}

// TestEventDemuxKeepsInterleavedEvents pins the client's event
// dispatcher: waiting for stops must not consume (and silently drop)
// interleaved session events, and a Subscription must observe its
// types in broadcast order. Before the demux, WaitStop discarded every
// non-stop event it skipped — any multiplexing consumer (the DAP event
// pump) lost attach/control traffic that arrived between stops.
func TestEventDemuxKeepsInterleavedEvents(t *testing.T) {
	addr, s, incLine := startServerAddr(t)
	ctrl := dialClient(t, addr)
	sub := ctrl.Subscribe(8, "stop")
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(2)
	}()
	if _, err := ctrl.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// A peer attaches while we are parked: its attach broadcast lands
	// on ctrl's stream before the next stop.
	obs := dialClient(t, addr)
	if err := ctrl.Command("continue"); err != nil {
		t.Fatal(err)
	}
	// Consuming the second stop must not eat the attach event queued
	// before it.
	if _, err := ctrl.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Command("continue"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation did not finish")
	}
	ev, err := ctrl.WaitEvent("attach", 2*time.Second)
	if err != nil {
		t.Fatalf("attach event was dropped by the stop waits: %v", err)
	}
	if ev.SessionID != obs.SessionID() {
		t.Fatalf("attach event = %+v, want peer %d", ev, obs.SessionID())
	}
	// The typed subscription saw exactly the stops, in seq order.
	var seqs []uint64
	for i := 0; i < 2; i++ {
		select {
		case sev := <-sub.C:
			if sev.Type != "stop" {
				t.Fatalf("subscription delivered %q", sev.Type)
			}
			seqs = append(seqs, sev.Seq)
		case <-time.After(2 * time.Second):
			t.Fatalf("subscription saw %d stops, want 2", i)
		}
	}
	if seqs[1] <= seqs[0] {
		t.Fatalf("subscription seqs out of order: %v", seqs)
	}
	sub.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("closed subscription still delivers")
	}
}

// TestLateAttacherSeesCurrentStop: a session that attaches while the
// simulation is parked at a stop receives that stop right after its
// welcome — so if it is later promoted to controller it knows the
// simulator is waiting for a command.
func TestLateAttacherSeesCurrentStop(t *testing.T) {
	addr, s, incLine := startServerAddr(t)
	ctrl := dialClient(t, addr)
	if _, err := ctrl.AddBreakpoint("server_test.go", incLine, ""); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Poke("Counter.en", 1)
		s.Run(3)
	}()
	if _, err := ctrl.WaitStop(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Attach while parked: the newcomer must see the in-progress stop.
	late := dialClient(t, addr)
	stop, err := late.WaitStop(5 * time.Second)
	if err != nil {
		t.Fatalf("late attacher saw no stop: %v", err)
	}
	if stop.File != "server_test.go" || stop.Line != incLine {
		t.Fatalf("late attacher stop = %s:%d", stop.File, stop.Line)
	}
	// Promotion path: controller drops, the late attacher inherits a
	// parked simulator it knows about, and resumes it.
	ctrl.Close()
	if _, err := late.WaitEvent("control", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := late.Command("continue"); err != nil {
		t.Fatalf("promoted late attacher continue: %v", err)
	}
	for {
		if _, err := late.WaitStop(2 * time.Second); err != nil {
			break
		}
		if err := late.Command("continue"); err != nil {
			break
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation stuck")
	}
}
