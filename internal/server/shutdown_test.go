package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/client"
)

// TestShutdownDuringStop is the eviction-during-stop regression test
// for the factored per-runtime Shutdown: a hub evicting a runtime
// whose simulation is parked at a breakpoint must resume it (so the
// simulation goroutine can exit), deliver goodbyes to every session,
// and leave sibling servers in the same process untouched.
func TestShutdownDuringStop(t *testing.T) {
	addrA, simA, lineA, srvA := startServerFull(t)
	addrB, _, lineB, _ := startServerFull(t) // the sibling

	ctrlA := dialClient(t, addrA)
	obsA := dialClient(t, addrA)
	ctrlB := dialClient(t, addrB)

	if _, err := ctrlA.AddBreakpoint("server_test.go", lineA, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrlB.AddBreakpoint("server_test.go", lineB, ""); err != nil {
		t.Fatal(err)
	}

	// Park runtime A at a stop: the sim goroutine blocks inside the
	// server's stop handler waiting for the controller's command.
	simDone := make(chan struct{})
	go func() {
		defer close(simDone)
		simA.Poke("Counter.en", 1)
		simA.Run(2)
	}()
	if _, err := ctrlA.WaitStop(5 * time.Second); err != nil {
		t.Fatalf("runtime A never stopped: %v", err)
	}

	// Evict runtime A mid-stop. Shutdown must auto-continue the parked
	// simulation and drain both sessions' goodbyes within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during stop: %v", err)
	}
	select {
	case <-simDone:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation stayed parked after Shutdown (resume not delivered)")
	}
	for name, cl := range map[string]*client.Client{"controller": ctrlA, "observer": obsA} {
		ev, err := cl.WaitEvent("goodbye", 5*time.Second)
		if err != nil {
			t.Fatalf("%s: no goodbye after eviction: %v", name, err)
		}
		if ev.Reason != "shutdown" {
			t.Fatalf("%s: goodbye reason = %q", name, ev.Reason)
		}
	}

	// Shutdown is idempotent and must not wedge on an already-drained
	// server.
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// The sibling is untouched: its session still round-trips and its
	// breakpoints are still armed.
	infos, err := ctrlB.ListBreakpoints()
	if err != nil {
		t.Fatalf("sibling request after eviction: %v", err)
	}
	if len(infos) == 0 {
		t.Fatal("sibling lost its breakpoints")
	}
	if got := ctrlB.Role(); got != "controller" {
		t.Fatalf("sibling controller role = %q", got)
	}
}

// TestShutdownDeadline pins the ctx contract: a wedged writer cannot
// hold Shutdown past the caller's deadline.
func TestShutdownDeadline(t *testing.T) {
	_, _, _, srv := startServerFull(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with no sessions: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shutdown took %v with nothing to drain", d)
	}
}
