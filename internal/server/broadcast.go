package server

// This file is the broadcast fan-out path: every event is encoded at
// most once per wire encoding (JSON text, optional binary) no matter
// how many sessions receive it, and stop events are additionally
// delta-encoded against each session's last-acknowledged snapshot —
// sessions that acked the same base share the same delta frame. All
// encoding happens under s.mu, so a frame's byte slices are immutable
// once handed to session queues.

import (
	"encoding/json"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
)

// stopHistoryDepth bounds how many past stop broadcasts the server
// retains as delta bases. A session whose last ack fell out of the
// window resyncs with a full frame.
var stopHistoryDepth = 64

// frame is one broadcast event with lazily memoized encodings. Both
// accessors run under s.mu only; the returned slices are shared by
// every recipient and must never be mutated.
type frame struct {
	ev   *proto.Event
	json []byte
	bin  []byte
}

func newFrame(ev *proto.Event) *frame { return &frame{ev: ev} }

func (f *frame) jsonBytes() []byte {
	if f.json == nil {
		b, err := json.Marshal(f.ev)
		if err != nil {
			return nil
		}
		f.json = b
	}
	return f.json
}

func (f *frame) binBytes() []byte {
	if f.bin == nil {
		f.bin = proto.EncodeBinaryEvent(f.ev)
	}
	return f.bin
}

// bytesFor returns the frame in the session's negotiated encoding. In
// the per-session-encode baseline (benchmarks) every call re-marshals,
// reproducing the pre-coalescing broadcast cost.
func (s *Server) bytesFor(f *frame, sess *Session) []byte {
	if s.perSessionEncode {
		b, err := json.Marshal(f.ev)
		if err != nil {
			return nil
		}
		return b
	}
	if sess.binary {
		return f.binBytes()
	}
	return f.jsonBytes()
}

// SetPerSessionEncode switches the server into the baseline broadcast
// mode benchmarks compare against: every session re-marshals each
// event (the behavior before shared frames) and stop events are never
// delta-encoded. Not for production use.
func (s *Server) SetPerSessionEncode(on bool) {
	s.mu.Lock()
	s.perSessionEncode = on
	s.mu.Unlock()
}

// classOf maps an event type to its coalescing class.
func classOf(typ string) eventClass {
	switch typ {
	case "stop", "resume":
		return classState
	case "attach", "goodbye":
		return classPeer
	case "control":
		return classControl
	}
	return classResponse // welcome and anything load-bearing
}

// enqueueFrameLocked hands one shared frame to one session in its
// negotiated encoding. Callers hold s.mu.
func (s *Server) enqueueFrameLocked(sess *Session, f *frame) bool {
	msg := s.bytesFor(f, sess)
	if msg == nil {
		return false
	}
	return sess.enqueue(outEntry{
		cls:    classOf(f.ev.Type),
		msg:    msg,
		binary: sess.binary && !s.perSessionEncode,
	})
}

// recordStopLocked appends a stop to the delta-base history, evicting
// past the window. Callers hold s.mu.
func (s *Server) recordStopLocked(seq uint64, ev *core.StopEvent) {
	s.stopHist = append(s.stopHist, stopRecord{seq: seq, stop: ev})
	if len(s.stopHist) > stopHistoryDepth {
		// Slide in place; the slice stays one allocation.
		n := copy(s.stopHist, s.stopHist[len(s.stopHist)-stopHistoryDepth:])
		s.stopHist = s.stopHist[:n]
	}
}

// stopBaseLocked finds a retained stop by broadcast seq.
func (s *Server) stopBaseLocked(seq uint64) *core.StopEvent {
	if seq == 0 {
		return nil
	}
	for i := len(s.stopHist) - 1; i >= 0; i-- {
		if s.stopHist[i].seq == seq {
			return s.stopHist[i].stop
		}
		if s.stopHist[i].seq < seq {
			break
		}
	}
	return nil
}

// stopRecord is one retained stop broadcast (a delta base candidate).
type stopRecord struct {
	seq  uint64
	stop *core.StopEvent
}

// broadcastStopLocked broadcasts one stop event: a single sequence
// number and emit stamp, one shared full frame, and one shared delta
// frame per distinct acked base among delta sessions. Returns the
// stamped seq. Callers hold s.mu.
func (s *Server) broadcastStopLocked(ev *core.StopEvent) uint64 {
	s.seq++
	seq := s.seq
	emit := time.Now().UnixNano()
	full := newFrame(&proto.Event{Type: "stop", Seq: seq, Emit: emit, Stop: ev})
	// deltas memoizes one frame per acked base seq: with N observers
	// stopped on the same cadence they typically share one base, so the
	// diff and both encodings happen once, not N times.
	var deltas map[uint64]*frame
	for _, id := range s.order {
		sess := s.sessions[id]
		f := full
		if sess.delta && !s.perSessionEncode {
			if ack := sess.lastAck.Load(); ack > 0 && ack < seq {
				if base := s.stopBaseLocked(ack); base != nil {
					df, ok := deltas[ack]
					if !ok {
						df = newFrame(&proto.Event{
							Type: "stop", Seq: seq, Emit: emit,
							Delta: proto.DiffStop(ack, base, ev),
						})
						if deltas == nil {
							deltas = map[uint64]*frame{}
						}
						deltas[ack] = df
					}
					f = df
				}
			}
		}
		if s.enqueueFrameLocked(sess, f) {
			if f == full {
				sess.fullFrames.Add(1)
			} else {
				sess.deltaFrames.Add(1)
			}
		}
	}
	s.recordStopLocked(seq, ev)
	return seq
}

// replayStopLocked sends the parked stop to one session (attach while
// stopped, promotion) as a full frame with a fresh seq, through the
// same accounting as a broadcast. Callers hold s.mu.
func (s *Server) replayStopLocked(sess *Session, ev *core.StopEvent) bool {
	s.seq++
	f := newFrame(&proto.Event{
		Type: "stop", Seq: s.seq, Emit: time.Now().UnixNano(), Stop: ev,
	})
	if !s.enqueueFrameLocked(sess, f) {
		return false
	}
	sess.fullFrames.Add(1)
	s.recordStopLocked(s.seq, ev)
	return true
}
