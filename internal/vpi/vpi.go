// Package vpi defines the paper's unified simulator interface (§3.3): a
// minimum set of primitives — get value, get hierarchy and clock
// information, clock-edge callbacks, get/set time, set value — that
// every backend (live simulator, trace replay) implements. hgdb's
// runtime is written only against this interface, which is what makes
// it simulator-agnostic; in the paper the same role is played by a
// small, universally supported subset of the Verilog Procedural
// Interface.
package vpi

import (
	"errors"
	"fmt"

	"repro/internal/eval"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// ErrNotSupported is returned by optional primitives a backend does not
// implement (e.g. SetValue on a trace file, SetTime on a live run).
var ErrNotSupported = errors.New("vpi: operation not supported by this backend")

// Interface is the unified simulator interface.
type Interface interface {
	// GetValue returns the current value of a signal by full
	// hierarchical name. Essential for breakpoint emulation and frame
	// reconstruction.
	GetValue(path string) (eval.Value, error)

	// Hierarchy returns the design instance tree. Used to locate
	// generated IP inside the full testbench.
	Hierarchy() *rtl.InstanceNode

	// ClockName returns the full hierarchical name of the primary
	// clock, so the runtime knows which edge pauses the design.
	ClockName() string

	// OnClockEdge registers a callback invoked at each positive clock
	// edge with combinational state settled; returns a removal id.
	OnClockEdge(cb func(time uint64)) int

	// RemoveCallback removes a clock-edge callback.
	RemoveCallback(id int)

	// Time returns the current simulation time (cycles).
	Time() uint64

	// SetTime moves simulation time (optional; replay backends only —
	// this is what enables full reverse debugging).
	SetTime(t uint64) error

	// SetValue deposits a value into the design (optional; live
	// simulation only).
	SetValue(path string, v uint64) error
}

// BatchReader is an optional backend capability: fetch many signal
// values in one call. The debugger's clock-edge callback reads the
// union of every inserted breakpoint's dependencies each cycle; doing
// that through one batched call instead of one GetValue round trip per
// signal per breakpoint is what keeps the per-cycle overhead flat as
// breakpoints accumulate (§4.3). On a real VPI transport each GetValue
// is an IPC round trip, so the capability matters even more there.
type BatchReader interface {
	// GetValues returns the current value of each path, in order.
	GetValues(paths []string) ([]eval.Value, error)
}

// BatchReaderInto is an optional refinement of BatchReader for callers
// that reuse a destination buffer across calls — the debugger's
// per-edge prefetch runs every cycle for the simulation's lifetime, so
// it must not allocate a result slice per edge.
type BatchReaderInto interface {
	// GetValuesInto writes the current value of each path into dst
	// (which must be at least len(paths) long).
	GetValuesInto(paths []string, dst []eval.Value) error
}

// Prefetcher is an optional backend capability: the debugger advises
// the backend which signal paths it will read every cycle (the union of
// every armed breakpoint/watch condition's dependencies) so the backend
// can prepare. A live simulator ignores the hint; the replay block
// store materializes exactly those signals' timelines, keeping
// per-cycle condition evaluation off the undecoded trace index. The
// hint is advisory — reads outside the advised set must still work.
type Prefetcher interface {
	// Prefetch advises the per-cycle read set. The slice is owned by
	// the caller; implementations must not retain it.
	Prefetch(paths []string)
}

// ChangeReporter is an optional backend capability: per-edge signal
// activity reporting, the foundation of activity-driven scheduling.
// The debugger registers the signal paths it reads every cycle (the
// union of every armed condition's dependencies); at each clock edge it
// asks which of them may have changed since the previous poll, and
// skips re-evaluating condition groups whose dependencies are all
// clean. Hardware signals are mostly idle, so this turns the per-edge
// breakpoint cost from O(armed conditions) into O(signal activity).
//
// The contract is conservative in one direction only: implementations
// may over-report (a signal marked changed that did not change costs a
// wasted re-evaluation) but must never under-report — a tracked path
// whose value differs between two ChangedInto calls must be reported
// changed, or the debugger would miss stops. The capability assumes a
// single consumer: TrackChanges replaces any previous registration, and
// each ChangedInto consumes the pending report.
type ChangeReporter interface {
	// TrackChanges registers the paths to report on, replacing any
	// previous set. The slice is owned by the caller; implementations
	// must copy what they need. Paths the backend cannot resolve are
	// permanently reported as changed (the caller treats them
	// conservatively anyway).
	TrackChanges(paths []string)

	// ChangedInto fills dst[i] (aligned with the registered path slice,
	// which must be at least as long) with whether tracked path i may
	// have changed since the previous ChangedInto call — or since
	// TrackChanges for the first call, which reports every path
	// changed. The return value says whether the backend could bound
	// the change set at all: false means the caller must assume every
	// signal changed (nothing is registered, or time moved backwards
	// or discontinuously since the last poll).
	ChangedInto(dst []bool) bool
}

// ReadBatch reads many signals through the backend's native batch
// primitive when it implements BatchReader, falling back to one
// GetValue call per path otherwise. Any unknown path fails the whole
// batch; callers that tolerate partial results must probe individually.
func ReadBatch(b Interface, paths []string) ([]eval.Value, error) {
	out := make([]eval.Value, len(paths))
	if err := ReadBatchInto(b, paths, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBatchInto is ReadBatch with a caller-owned destination buffer,
// preferring the backend's allocation-free BatchReaderInto form.
func ReadBatchInto(b Interface, paths []string, dst []eval.Value) error {
	if len(dst) < len(paths) {
		return fmt.Errorf("vpi: batch destination too short: %d < %d", len(dst), len(paths))
	}
	if bi, ok := b.(BatchReaderInto); ok {
		return bi.GetValuesInto(paths, dst)
	}
	if br, ok := b.(BatchReader); ok {
		vals, err := br.GetValues(paths)
		if err != nil {
			return err
		}
		copy(dst, vals)
		return nil
	}
	for i, p := range paths {
		v, err := b.GetValue(p)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// SimBackend adapts the live simulator to the unified interface.
type SimBackend struct {
	Sim *sim.Simulator
}

var (
	_ Interface       = (*SimBackend)(nil)
	_ BatchReader     = (*SimBackend)(nil)
	_ BatchReaderInto = (*SimBackend)(nil)
	_ ChangeReporter  = (*SimBackend)(nil)
)

// NewSimBackend wraps a live simulator.
func NewSimBackend(s *sim.Simulator) *SimBackend { return &SimBackend{Sim: s} }

// GetValue implements Interface.
func (b *SimBackend) GetValue(path string) (eval.Value, error) {
	return b.Sim.Peek(path)
}

// GetValues implements BatchReader with the simulator's native batched
// peek.
func (b *SimBackend) GetValues(paths []string) ([]eval.Value, error) {
	out := make([]eval.Value, len(paths))
	if err := b.Sim.PeekBatch(paths, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetValuesInto implements BatchReaderInto without allocating.
func (b *SimBackend) GetValuesInto(paths []string, dst []eval.Value) error {
	return b.Sim.PeekBatch(paths, dst)
}

// TrackChanges implements ChangeReporter with the simulator's native
// dirty-signal tracking.
func (b *SimBackend) TrackChanges(paths []string) { b.Sim.TrackChanges(paths) }

// ChangedInto implements ChangeReporter.
func (b *SimBackend) ChangedInto(dst []bool) bool { return b.Sim.ChangedInto(dst) }

// Hierarchy implements Interface.
func (b *SimBackend) Hierarchy() *rtl.InstanceNode { return b.Sim.Netlist().Hierarchy }

// ClockName implements Interface.
func (b *SimBackend) ClockName() string {
	return b.Sim.Netlist().Top + ".clock"
}

// OnClockEdge implements Interface.
func (b *SimBackend) OnClockEdge(cb func(time uint64)) int {
	return b.Sim.OnClockEdge(cb)
}

// RemoveCallback implements Interface.
func (b *SimBackend) RemoveCallback(id int) { b.Sim.RemoveCallback(id) }

// Time implements Interface.
func (b *SimBackend) Time() uint64 { return b.Sim.Time() }

// SetTime implements Interface; live simulation cannot move backwards.
func (b *SimBackend) SetTime(uint64) error {
	return fmt.Errorf("%w: live simulation cannot seek in time", ErrNotSupported)
}

// SetValue implements Interface.
func (b *SimBackend) SetValue(path string, v uint64) error {
	sig, ok := b.Sim.Netlist().Signal(path)
	if !ok {
		return fmt.Errorf("vpi: unknown signal %q", path)
	}
	if sig.Kind == rtl.KindReg {
		return b.Sim.PokeReg(path, v)
	}
	return b.Sim.Poke(path, v)
}
