// Package vpi defines the paper's unified simulator interface (§3.3): a
// minimum set of primitives — get value, get hierarchy and clock
// information, clock-edge callbacks, get/set time, set value — that
// every backend (live simulator, trace replay) implements. hgdb's
// runtime is written only against this interface, which is what makes
// it simulator-agnostic; in the paper the same role is played by a
// small, universally supported subset of the Verilog Procedural
// Interface.
package vpi

import (
	"errors"
	"fmt"

	"repro/internal/eval"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// ErrNotSupported is returned by optional primitives a backend does not
// implement (e.g. SetValue on a trace file, SetTime on a live run).
var ErrNotSupported = errors.New("vpi: operation not supported by this backend")

// Interface is the unified simulator interface.
type Interface interface {
	// GetValue returns the current value of a signal by full
	// hierarchical name. Essential for breakpoint emulation and frame
	// reconstruction.
	GetValue(path string) (eval.Value, error)

	// Hierarchy returns the design instance tree. Used to locate
	// generated IP inside the full testbench.
	Hierarchy() *rtl.InstanceNode

	// ClockName returns the full hierarchical name of the primary
	// clock, so the runtime knows which edge pauses the design.
	ClockName() string

	// OnClockEdge registers a callback invoked at each positive clock
	// edge with combinational state settled; returns a removal id.
	OnClockEdge(cb func(time uint64)) int

	// RemoveCallback removes a clock-edge callback.
	RemoveCallback(id int)

	// Time returns the current simulation time (cycles).
	Time() uint64

	// SetTime moves simulation time (optional; replay backends only —
	// this is what enables full reverse debugging).
	SetTime(t uint64) error

	// SetValue deposits a value into the design (optional; live
	// simulation only).
	SetValue(path string, v uint64) error
}

// SimBackend adapts the live simulator to the unified interface.
type SimBackend struct {
	Sim *sim.Simulator
}

var _ Interface = (*SimBackend)(nil)

// NewSimBackend wraps a live simulator.
func NewSimBackend(s *sim.Simulator) *SimBackend { return &SimBackend{Sim: s} }

// GetValue implements Interface.
func (b *SimBackend) GetValue(path string) (eval.Value, error) {
	return b.Sim.Peek(path)
}

// Hierarchy implements Interface.
func (b *SimBackend) Hierarchy() *rtl.InstanceNode { return b.Sim.Netlist().Hierarchy }

// ClockName implements Interface.
func (b *SimBackend) ClockName() string {
	return b.Sim.Netlist().Top + ".clock"
}

// OnClockEdge implements Interface.
func (b *SimBackend) OnClockEdge(cb func(time uint64)) int {
	return b.Sim.OnClockEdge(cb)
}

// RemoveCallback implements Interface.
func (b *SimBackend) RemoveCallback(id int) { b.Sim.RemoveCallback(id) }

// Time implements Interface.
func (b *SimBackend) Time() uint64 { return b.Sim.Time() }

// SetTime implements Interface; live simulation cannot move backwards.
func (b *SimBackend) SetTime(uint64) error {
	return fmt.Errorf("%w: live simulation cannot seek in time", ErrNotSupported)
}

// SetValue implements Interface.
func (b *SimBackend) SetValue(path string, v uint64) error {
	sig, ok := b.Sim.Netlist().Signal(path)
	if !ok {
		return fmt.Errorf("vpi: unknown signal %q", path)
	}
	if sig.Kind == rtl.KindReg {
		return b.Sim.PokeReg(path, v)
	}
	return b.Sim.Poke(path, v)
}
