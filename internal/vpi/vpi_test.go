package vpi

import (
	"errors"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
)

func makeBackend(t *testing.T) *SimBackend {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return NewSimBackend(sim.New(nl))
}

func TestFivePrimitives(t *testing.T) {
	b := makeBackend(t)

	// Primitive 1: get signal value.
	v, err := b.GetValue("Counter.count")
	if err != nil || v.Bits != 0 {
		t.Fatalf("GetValue = %v, %v", v, err)
	}
	if _, err := b.GetValue("Counter.nope"); err == nil {
		t.Fatal("unknown signal accepted")
	}

	// Primitive 2: design hierarchy and clock information.
	h := b.Hierarchy()
	if h == nil || h.Name != "Counter" {
		t.Fatalf("hierarchy = %+v", h)
	}
	if b.ClockName() != "Counter.clock" {
		t.Fatalf("clock = %s", b.ClockName())
	}

	// Primitive 3: clock-edge callbacks.
	fired := 0
	id := b.OnClockEdge(func(uint64) { fired++ })
	b.Sim.Run(3)
	if fired != 3 {
		t.Fatalf("callback fired %d times", fired)
	}
	b.RemoveCallback(id)
	b.Sim.Run(1)
	if fired != 3 {
		t.Fatal("callback fired after removal")
	}

	// Primitive 4: get (and for replay backends, set) time.
	if b.Time() != 4 {
		t.Fatalf("time = %d", b.Time())
	}
	if err := b.SetTime(0); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("live SetTime = %v, want ErrNotSupported", err)
	}

	// Primitive 5: set signal value.
	if err := b.SetValue("Counter.en", 1); err != nil {
		t.Fatal(err)
	}
	b.Sim.Run(2)
	v, _ = b.GetValue("Counter.count")
	if v.Bits != 2 {
		t.Fatalf("count after poke = %d", v.Bits)
	}
	// Register deposit path.
	if err := b.SetValue("Counter.count", 99); err != nil {
		t.Fatal(err)
	}
	v, _ = b.GetValue("Counter.count")
	if v.Bits != 99 {
		t.Fatalf("deposited count = %d", v.Bits)
	}
	if err := b.SetValue("Counter.ghost", 1); err == nil {
		t.Fatal("unknown signal poked")
	}
}
