package vpi

import (
	"errors"

	"repro/internal/val"
)

// ErrFourState is returned by GetValue (and the batch readers) when a
// signal's current value cannot be lowered onto the two-state fast
// path — it has x/z bits or is wider than 64 bits. Callers that can
// handle the general representation read the signal again through
// ReadBits; the debugger's compiled condition pipeline instead treats
// the slot as unreadable, which routes the affected conditions to the
// four-state tree-walk evaluator.
var ErrFourState = errors.New("vpi: value has unknown bits or exceeds 64 bits")

// BitsReader is an optional backend capability: read a signal's full
// four-state, arbitrary-width value. Backends whose native value plane
// is four-state (trace replay over real simulator dumps, a real VPI
// transport) implement it; two-state backends (the builtin RTL
// simulator) are covered by the ReadBits fallback, which lifts their
// known uint64 values losslessly.
type BitsReader interface {
	// GetBits returns the current four-state value of a signal by full
	// hierarchical name.
	GetBits(path string) (val.Bits, error)
}

// ReadBits reads a signal's four-state value through the backend's
// native BitsReader capability when present, else by lifting the
// two-state GetValue result. It never returns ErrFourState.
func ReadBits(b Interface, path string) (val.Bits, error) {
	if br, ok := b.(BitsReader); ok {
		return br.GetBits(path)
	}
	v, err := b.GetValue(path)
	if err != nil {
		return val.Bits{}, err
	}
	return v.ToBits(), nil
}

// GetBits implements BitsReader for the live simulator by lifting its
// two-state registers — the simulator is the fast specialization and
// never holds x/z.
func (b *SimBackend) GetBits(path string) (val.Bits, error) {
	v, err := b.Sim.Peek(path)
	if err != nil {
		return val.Bits{}, err
	}
	return v.ToBits(), nil
}

var _ BitsReader = (*SimBackend)(nil)
