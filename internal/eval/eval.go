// Package eval implements bit-accurate evaluation of IR primitive
// operations on up-to-64-bit values. It is shared by the constant
// propagation pass, the RTL simulator, and the debugger's expression
// evaluator, so all three agree exactly on arithmetic semantics.
package eval

import (
	"fmt"

	"repro/internal/ir"
)

// Value is a fixed-width two's-complement bit vector (width 1..64).
// Bits above Width are always zero.
type Value struct {
	Bits   uint64
	Width  int
	Signed bool
}

// Mask returns the bit mask for a width.
func Mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Make builds a Value, truncating bits to the width.
func Make(bits uint64, width int, signed bool) Value {
	return Value{Bits: bits & Mask(width), Width: width, Signed: signed}
}

// FromConst converts an IR literal.
func FromConst(c ir.Const) Value { return Make(c.Value, c.Width, c.Signed) }

// Int returns the numeric value: sign-extended for signed values.
func (v Value) Int() int64 {
	if !v.Signed || v.Width == 0 {
		return int64(v.Bits)
	}
	signBit := uint64(1) << uint(v.Width-1)
	if v.Bits&signBit != 0 {
		return int64(v.Bits | ^Mask(v.Width))
	}
	return int64(v.Bits)
}

// Uint returns the raw (zero-extended) bits.
func (v Value) Uint() uint64 { return v.Bits }

// IsTrue reports whether the value is non-zero.
func (v Value) IsTrue() bool { return v.Bits != 0 }

func (v Value) String() string {
	if v.Signed {
		return fmt.Sprintf("%d", v.Int())
	}
	return fmt.Sprintf("%d", v.Bits)
}

// boolVal converts a condition to a 1-bit value.
func boolVal(b bool) Value {
	if b {
		return Value{Bits: 1, Width: 1}
	}
	return Value{Width: 1}
}

// Prim evaluates one primitive operation. Result width rules mirror
// ir.TypeEnv exactly; deviations between the two are test failures.
func Prim(op ir.PrimOp, params []int, args []Value) (Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("eval: %s expects %d args, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem:
		if err := need(2); err != nil {
			return Value{}, err
		}
		a, b := args[0], args[1]
		signed := a.Signed
		switch op {
		case ir.OpAdd:
			w := maxInt(a.Width, b.Width) + 1
			if signed {
				return Make(uint64(a.Int()+b.Int()), w, true), nil
			}
			return Make(a.Bits+b.Bits, w, false), nil
		case ir.OpSub:
			w := maxInt(a.Width, b.Width) + 1
			if signed {
				return Make(uint64(a.Int()-b.Int()), w, true), nil
			}
			return Make(a.Bits-b.Bits, w, false), nil
		case ir.OpMul:
			w := a.Width + b.Width
			if signed {
				return Make(uint64(a.Int()*b.Int()), w, true), nil
			}
			return Make(a.Bits*b.Bits, w, false), nil
		case ir.OpDiv:
			w := a.Width
			if signed {
				w++
			}
			if b.Bits == 0 {
				// Division by zero yields zero, a common simulator
				// convention that avoids killing long runs.
				return Make(0, w, signed), nil
			}
			if signed {
				return Make(uint64(a.Int()/b.Int()), w, true), nil
			}
			return Make(a.Bits/b.Bits, w, false), nil
		default: // OpRem
			w := minInt(a.Width, b.Width)
			if b.Bits == 0 {
				return Make(0, w, signed), nil
			}
			if signed {
				return Make(uint64(a.Int()%b.Int()), w, true), nil
			}
			return Make(a.Bits%b.Bits, w, false), nil
		}
	case ir.OpLt, ir.OpLeq, ir.OpGt, ir.OpGeq:
		if err := need(2); err != nil {
			return Value{}, err
		}
		a, b := args[0], args[1]
		var lt, eq bool
		if a.Signed {
			lt, eq = a.Int() < b.Int(), a.Int() == b.Int()
		} else {
			lt, eq = a.Bits < b.Bits, a.Bits == b.Bits
		}
		switch op {
		case ir.OpLt:
			return boolVal(lt), nil
		case ir.OpLeq:
			return boolVal(lt || eq), nil
		case ir.OpGt:
			return boolVal(!lt && !eq), nil
		default:
			return boolVal(!lt), nil
		}
	case ir.OpEq, ir.OpNeq:
		if err := need(2); err != nil {
			return Value{}, err
		}
		eq := args[0].Bits == args[1].Bits
		if op == ir.OpNeq {
			return boolVal(!eq), nil
		}
		return boolVal(eq), nil
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		if err := need(2); err != nil {
			return Value{}, err
		}
		w := maxInt(args[0].Width, args[1].Width)
		switch op {
		case ir.OpAnd:
			return Make(args[0].Bits&args[1].Bits, w, false), nil
		case ir.OpOr:
			return Make(args[0].Bits|args[1].Bits, w, false), nil
		default:
			return Make(args[0].Bits^args[1].Bits, w, false), nil
		}
	case ir.OpNot:
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Make(^args[0].Bits, args[0].Width, false), nil
	case ir.OpNeg:
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Make(uint64(-args[0].Int()), args[0].Width+1, true), nil
	case ir.OpShl:
		if err := need(1); err != nil {
			return Value{}, err
		}
		n := params[0]
		w := args[0].Width + n
		if w > 64 {
			return Value{}, fmt.Errorf("eval: shl result width %d exceeds 64", w)
		}
		return Make(args[0].Bits<<uint(n), w, args[0].Signed), nil
	case ir.OpShr:
		if err := need(1); err != nil {
			return Value{}, err
		}
		n := params[0]
		w := args[0].Width - n
		if w < 1 {
			w = 1
		}
		if args[0].Signed {
			return Make(uint64(args[0].Int()>>uint(minInt(n, 63))), w, true), nil
		}
		return Make(args[0].Bits>>uint(minInt(n, 63)), w, false), nil
	case ir.OpDshl:
		if err := need(2); err != nil {
			return Value{}, err
		}
		w := args[0].Width + (1 << uint(args[1].Width)) - 1
		if w > 64 {
			w = 64
		}
		sh := args[1].Bits
		if sh >= 64 {
			return Make(0, w, args[0].Signed), nil
		}
		return Make(args[0].Bits<<sh, w, args[0].Signed), nil
	case ir.OpDshr:
		if err := need(2); err != nil {
			return Value{}, err
		}
		sh := args[1].Bits
		if args[0].Signed {
			if sh >= 64 {
				sh = 63
			}
			return Make(uint64(args[0].Int()>>sh), args[0].Width, true), nil
		}
		if sh >= 64 {
			return Make(0, args[0].Width, false), nil
		}
		return Make(args[0].Bits>>sh, args[0].Width, false), nil
	case ir.OpCat:
		if err := need(2); err != nil {
			return Value{}, err
		}
		w := args[0].Width + args[1].Width
		if w > 64 {
			return Value{}, fmt.Errorf("eval: cat result width %d exceeds 64", w)
		}
		return Make(args[0].Bits<<uint(args[1].Width)|args[1].Bits, w, false), nil
	case ir.OpBits:
		if err := need(1); err != nil {
			return Value{}, err
		}
		hi, lo := params[0], params[1]
		if lo < 0 || hi < lo || hi >= args[0].Width {
			return Value{}, fmt.Errorf("eval: bits(%d, %d) out of range for width %d", hi, lo, args[0].Width)
		}
		return Make(args[0].Bits>>uint(lo), hi-lo+1, false), nil
	case ir.OpHead:
		if err := need(1); err != nil {
			return Value{}, err
		}
		n := params[0]
		return Make(args[0].Bits>>uint(args[0].Width-n), n, false), nil
	case ir.OpTail:
		if err := need(1); err != nil {
			return Value{}, err
		}
		n := params[0]
		w := args[0].Width - n
		if w < 1 {
			w = 1
		}
		return Make(args[0].Bits, w, false), nil
	case ir.OpAndR:
		if err := need(1); err != nil {
			return Value{}, err
		}
		return boolVal(args[0].Bits == Mask(args[0].Width)), nil
	case ir.OpOrR:
		if err := need(1); err != nil {
			return Value{}, err
		}
		return boolVal(args[0].Bits != 0), nil
	case ir.OpXorR:
		if err := need(1); err != nil {
			return Value{}, err
		}
		n := 0
		for b := args[0].Bits; b != 0; b &= b - 1 {
			n++
		}
		return boolVal(n%2 == 1), nil
	case ir.OpPad:
		if err := need(1); err != nil {
			return Value{}, err
		}
		w := maxInt(args[0].Width, params[0])
		if args[0].Signed {
			return Make(uint64(args[0].Int()), w, true), nil
		}
		return Make(args[0].Bits, w, false), nil
	case ir.OpAsUInt:
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Make(args[0].Bits, args[0].Width, false), nil
	case ir.OpAsSInt:
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Make(args[0].Bits, args[0].Width, true), nil
	}
	return Value{}, fmt.Errorf("eval: unknown primop %v", op)
}

// Mux selects t when cond is non-zero, f otherwise, widening to the
// larger operand.
func Mux(cond, t, f Value) Value {
	w := maxInt(t.Width, f.Width)
	if cond.IsTrue() {
		return Make(t.Bits, w, t.Signed)
	}
	return Make(f.Bits, w, t.Signed)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
