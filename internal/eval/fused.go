package eval

// This file implements the execution half of whole-schedule fused
// condition compilation: every armed breakpoint/watch condition of a
// debug session compiled into ONE register program (a MultiProg), run
// once per clock edge instead of once per condition group. The fuser
// (internal/expr) performs cross-condition CSE — subexpressions shared
// between conditions (same structure over the same operand slots) are
// hoisted into shared prelude segments computed once — and the
// scheduler partitions the per-condition segments into contiguous
// ranges across its worker pool.
//
// Error isolation is per segment: the segments of a fused program share
// one register file but are otherwise independent, so an evaluation
// error (a width-overflow prim, a failed operand read) poisons only the
// segment it occurs in plus the conditions that read the poisoned
// shared register — those conditions report !ok and the scheduler falls
// back to the exact per-condition path, keeping fused scheduling
// bit-identical to per-group evaluation.

// Segment is one independently executable slice of a fused program:
// Code[Start:End) computes one value into the Result register. Ops
// lists the operand slots the segment reads directly (ISig), Deps the
// shared-segment indexes it reads (IMov from a register below
// NumShared); both are the executor's poisoning inputs — a segment
// whose operand failed to fetch or whose shared dependency is poisoned
// must not run.
type Segment struct {
	Start, End int
	Result     uint16
	Ops        []uint16
	Deps       []uint16
}

// MultiProg is a fused multi-condition program. Registers
// [0, NumShared) hold the results of the shared (CSE) segments, in
// segment order — Shared[i] writes register i; the remaining registers
// are per-segment scratch. Shared segments must be dependency-ordered:
// a segment may only read shared registers of earlier segments.
type MultiProg struct {
	Code        []Instr
	NumRegs     int
	NumShared   int
	NumOperands int
	// Shared are the CSE prelude segments, run once per edge on the
	// scheduling goroutine before any condition executes.
	Shared []Segment
	// Conds are the per-condition segments; Conds[i] computes condition
	// i's value. Any contiguous range can run on any goroutine given a
	// private FusedMachine and the prelude's shared values.
	Conds []Segment
}

// FusedMachine executes fused programs. Like Machine it owns a reusable
// register file, so steady-state execution allocates nothing, and it is
// not safe for concurrent use — the scheduler gives each worker range
// its own machine and copies the prelude's shared values in.
type FusedMachine struct {
	regs []Value
	args [2]Value
}

func (m *FusedMachine) ensure(p *MultiProg) []Value {
	if cap(m.regs) < p.NumRegs {
		m.regs = make([]Value, p.NumRegs)
	}
	return m.regs[:p.NumRegs]
}

// segOK reports whether a segment's inputs are all sound: every operand
// it reads fetched successfully and every shared register it reads was
// computed by an unpoisoned segment.
func segOK(seg *Segment, opsOK, sharedOK []bool) bool {
	for _, o := range seg.Ops {
		if !opsOK[o] {
			return false
		}
	}
	for _, d := range seg.Deps {
		if !sharedOK[d] {
			return false
		}
	}
	return true
}

// ExecShared runs the shared prelude segments in order, writing each
// segment's value into sharedVals and its soundness into sharedOK (both
// at least NumShared long). A poisoned segment — failed operand, failed
// dependency, or an execution error — leaves sharedOK false and later
// segments reading it are poisoned transitively; independent segments
// still run. Call once per edge before any ExecConds.
func (m *FusedMachine) ExecShared(p *MultiProg, operands []Value, opsOK []bool, sharedVals []Value, sharedOK []bool) {
	regs := m.ensure(p)
	for i := range p.Shared {
		seg := &p.Shared[i]
		if !segOK(seg, opsOK, sharedOK) {
			sharedOK[i] = false
			continue
		}
		if err := runCode(p.Code, seg.Start, seg.End, regs, operands, &m.args); err != nil {
			sharedOK[i] = false
			continue
		}
		sharedVals[i] = regs[seg.Result]
		sharedOK[i] = true
	}
}

// ExecConds runs condition segments [from, to), writing results[i] and
// resultOK[i] for each condition i in the range. skip is an optional
// packed bitmap over condition ids (bit i set = condition i is provably
// unchanged since its last miss): skipped conditions are not executed
// and their result entries are left untouched — the scheduler's own
// skip state decides what a masked condition means. A condition with a
// failed operand, a poisoned shared dependency, or an execution error
// reports resultOK false; the caller must then evaluate it by the exact
// per-condition path. sharedVals/sharedOK come from ExecShared;
// distinct machines may execute disjoint ranges concurrently as long as
// results/resultOK writes land in disjoint indexes.
func (m *FusedMachine) ExecConds(p *MultiProg, operands []Value, opsOK []bool, sharedVals []Value, sharedOK []bool, from, to int, skip []uint64, results []Value, resultOK []bool) {
	regs := m.ensure(p)
	copy(regs[:p.NumShared], sharedVals[:p.NumShared])
	for ci := from; ci < to; ci++ {
		if skip != nil && skip[ci>>6]&(1<<(uint(ci)&63)) != 0 {
			continue
		}
		seg := &p.Conds[ci]
		if !segOK(seg, opsOK, sharedOK) {
			resultOK[ci] = false
			continue
		}
		if err := runCode(p.Code, seg.Start, seg.End, regs, operands, &m.args); err != nil {
			resultOK[ci] = false
			continue
		}
		results[ci] = regs[seg.Result]
		resultOK[ci] = true
	}
}
