package eval

import (
	"testing"

	"repro/internal/ir"
)

func TestMachineBasicProgram(t *testing.T) {
	// (op0 + op1) == 12
	p := &Prog{
		Code: []Instr{
			{Kind: ISig, Dst: 0, A: 0},
			{Kind: ISig, Dst: 1, A: 1},
			{Kind: IPrim2, Op: ir.OpAdd, Dst: 0, A: 0, B: 1},
			{Kind: IConst, Dst: 1, Const: Make(12, 4, false)},
			{Kind: IPrim2, Op: ir.OpEq, Dst: 0, A: 0, B: 1},
		},
		NumRegs:     2,
		NumOperands: 2,
	}
	var m Machine
	v, err := m.Exec(p, []Value{Make(5, 8, false), Make(7, 8, false)})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsTrue() || v.Width != 1 {
		t.Fatalf("got %#v, want true/1-bit", v)
	}
}

func TestMachineJumps(t *testing.T) {
	// op0 ? 3 : 5 via conditional jumps.
	p := &Prog{
		Code: []Instr{
			{Kind: ISig, Dst: 0, A: 0},
			{Kind: IJumpIfFalse, A: 0, P0: 4},
			{Kind: IConst, Dst: 0, Const: Make(3, 3, false)},
			{Kind: IJump, P0: 5},
			{Kind: IConst, Dst: 0, Const: Make(5, 3, false)},
		},
		NumRegs:     1,
		NumOperands: 1,
	}
	var m Machine
	for _, c := range []struct {
		in   Value
		want uint64
	}{{Make(1, 1, false), 3}, {Make(0, 1, false), 5}} {
		v, err := m.Exec(p, []Value{c.in})
		if err != nil {
			t.Fatal(err)
		}
		if v.Bits != c.want {
			t.Fatalf("cond=%v: got %d, want %d", c.in.Bits, v.Bits, c.want)
		}
	}
}

func TestMachineShortOperands(t *testing.T) {
	p := &Prog{Code: []Instr{{Kind: ISig, Dst: 0, A: 0}}, NumRegs: 1, NumOperands: 1}
	var m Machine
	if _, err := m.Exec(p, nil); err == nil {
		t.Fatal("expected error for missing operands")
	}
}

// TestMachineReuseGrowsRegisters checks a machine can execute programs
// of different register pressure back to back.
func TestMachineReuseGrowsRegisters(t *testing.T) {
	small := &Prog{Code: []Instr{{Kind: IConst, Dst: 0, Const: Make(1, 1, false)}}, NumRegs: 1}
	big := &Prog{
		Code: []Instr{
			{Kind: IConst, Dst: 7, Const: Make(9, 4, false)},
			{Kind: IMov, Dst: 0, A: 7},
		},
		NumRegs: 8,
	}
	var m Machine
	if v, err := m.Exec(small, nil); err != nil || v.Bits != 1 {
		t.Fatalf("small: %v %#v", err, v)
	}
	if v, err := m.Exec(big, nil); err != nil || v.Bits != 9 {
		t.Fatalf("big: %v %#v", err, v)
	}
	if v, err := m.Exec(small, nil); err != nil || v.Bits != 1 {
		t.Fatalf("small again: %v %#v", err, v)
	}
}
