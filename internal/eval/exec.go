package eval

import (
	"fmt"

	"repro/internal/ir"
)

// This file implements the execution half of the compiled condition
// pipeline: a flat register-based instruction set that expression
// compilers (internal/expr) lower into, and a Machine that executes it
// with zero heap allocations per run. The debugger's clock-edge
// callback re-evaluates every inserted breakpoint condition each cycle,
// so this is the hottest code in the system (§3.2, §4.3 of the paper).

// InstrKind discriminates compiled instructions.
type InstrKind uint8

const (
	// IConst writes the instruction's Const operand to Dst.
	IConst InstrKind = iota
	// ISig writes operand slot A (a pre-fetched signal value) to Dst.
	ISig
	// IPrim1 applies the unary primitive Op to register A.
	IPrim1
	// IPrim2 applies the binary primitive Op to registers A and B.
	IPrim2
	// ILogNot writes the 1-bit logical negation of register A.
	ILogNot
	// IBool normalizes register A to a 1-bit truth value.
	IBool
	// IBits extracts bits P0..P1 (hi..lo) of register A, zero-extending
	// past the operand width — the expression language's forgiving
	// bit-slice semantics.
	IBits
	// ICapW re-makes register A as unsigned with width min(width, P0).
	ICapW
	// IMov copies register A to Dst.
	IMov
	// IJump sets the program counter to P0.
	IJump
	// IJumpIfTrue jumps to P0 when register A is non-zero.
	IJumpIfTrue
	// IJumpIfFalse jumps to P0 when register A is zero.
	IJumpIfFalse
)

// Instr is one compiled instruction. Operands A and B name registers
// (for ISig, A is an operand slot instead); Dst is the destination
// register. P0/P1 carry immediate parameters: bit ranges for IBits, the
// width cap for ICapW, and jump targets for the jump forms.
type Instr struct {
	Kind  InstrKind
	Op    ir.PrimOp
	Dst   uint16
	A, B  uint16
	P0    int
	P1    int
	Const Value
}

// Prog is a compiled register program. Result names the register
// holding the final value after the last instruction retires.
type Prog struct {
	Code        []Instr
	NumRegs     int
	NumOperands int
	Result      uint16
}

// Machine executes compiled programs against a caller-provided operand
// slice. The register file is owned by the machine and reused across
// runs, so steady-state execution performs zero heap allocations. A
// Machine is not safe for concurrent use; give each evaluator goroutine
// its own.
type Machine struct {
	regs []Value
	args [2]Value
}

// Exec runs a program. operands[i] must hold the current value of the
// program's i-th signal dependency; the compiler that produced the
// program defines that ordering (expr.Program.Deps).
func (m *Machine) Exec(p *Prog, operands []Value) (Value, error) {
	if len(operands) < p.NumOperands {
		return Value{}, fmt.Errorf("eval: program needs %d operands, got %d", p.NumOperands, len(operands))
	}
	if cap(m.regs) < p.NumRegs {
		m.regs = make([]Value, p.NumRegs)
	}
	regs := m.regs[:p.NumRegs]
	if err := runCode(p.Code, 0, len(p.Code), regs, operands, &m.args); err != nil {
		return Value{}, err
	}
	return regs[p.Result], nil
}

// runCode interprets code[from:to) against a register file and operand
// slice. Jump targets are absolute instruction indexes; compilers must
// keep them inside the executed range. Shared by Machine.Exec (whole
// program) and FusedMachine (one segment of a fused program).
func runCode(code []Instr, from, to int, regs, operands []Value, args *[2]Value) error {
	for pc := from; pc < to; {
		in := &code[pc]
		switch in.Kind {
		case IConst:
			regs[in.Dst] = in.Const
		case ISig:
			regs[in.Dst] = operands[in.A]
		case IPrim1:
			args[0] = regs[in.A]
			v, err := Prim(in.Op, nil, args[:1])
			if err != nil {
				return err
			}
			regs[in.Dst] = v
		case IPrim2:
			args[0], args[1] = regs[in.A], regs[in.B]
			v, err := Prim(in.Op, nil, args[:2])
			if err != nil {
				return err
			}
			regs[in.Dst] = v
		case ILogNot:
			regs[in.Dst] = boolVal(!regs[in.A].IsTrue())
		case IBool:
			regs[in.Dst] = boolVal(regs[in.A].IsTrue())
		case IBits:
			v := regs[in.A]
			regs[in.Dst] = Make(v.Bits>>uint(in.P1), in.P0-in.P1+1, false)
		case ICapW:
			v := regs[in.A]
			regs[in.Dst] = Make(v.Bits, minInt(v.Width, in.P0), false)
		case IMov:
			regs[in.Dst] = regs[in.A]
		case IJump:
			pc = in.P0
			continue
		case IJumpIfTrue:
			if regs[in.A].IsTrue() {
				pc = in.P0
				continue
			}
		case IJumpIfFalse:
			if !regs[in.A].IsTrue() {
				pc = in.P0
				continue
			}
		default:
			return fmt.Errorf("eval: unknown instruction kind %d", in.Kind)
		}
		pc++
	}
	return nil
}
