package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func mustPrim(t *testing.T, op ir.PrimOp, params []int, args ...Value) Value {
	t.Helper()
	v, err := Prim(op, params, args)
	if err != nil {
		t.Fatalf("Prim(%s): %v", op, err)
	}
	return v
}

func TestBasicArithmetic(t *testing.T) {
	a := Make(200, 8, false)
	b := Make(100, 8, false)
	if v := mustPrim(t, ir.OpAdd, nil, a, b); v.Bits != 300 || v.Width != 9 {
		t.Fatalf("add = %v", v)
	}
	hundred := uint64(100)
	twoHundred := uint64(200)
	if v := mustPrim(t, ir.OpSub, nil, b, a); v.Bits != (hundred-twoHundred)&Mask(9) || v.Width != 9 {
		t.Fatalf("sub = %v", v)
	}
	if v := mustPrim(t, ir.OpMul, nil, a, b); v.Bits != 20000 || v.Width != 16 {
		t.Fatalf("mul = %v", v)
	}
	if v := mustPrim(t, ir.OpDiv, nil, a, b); v.Bits != 2 {
		t.Fatalf("div = %v", v)
	}
	if v := mustPrim(t, ir.OpRem, nil, a, b); v.Bits != 0 {
		t.Fatalf("rem = %v", v)
	}
	// Division by zero yields zero, not a crash.
	if v := mustPrim(t, ir.OpDiv, nil, a, Make(0, 8, false)); v.Bits != 0 {
		t.Fatalf("div by zero = %v", v)
	}
	if v := mustPrim(t, ir.OpRem, nil, a, Make(0, 8, false)); v.Bits != 0 {
		t.Fatalf("rem by zero = %v", v)
	}
}

func TestSignedArithmetic(t *testing.T) {
	negOne := Make(0xFF, 8, true)
	two := Make(2, 8, true)
	if negOne.Int() != -1 {
		t.Fatalf("sign read = %d", negOne.Int())
	}
	if v := mustPrim(t, ir.OpAdd, nil, negOne, two); v.Int() != 1 {
		t.Fatalf("-1 + 2 = %d", v.Int())
	}
	if v := mustPrim(t, ir.OpMul, nil, negOne, two); v.Int() != -2 {
		t.Fatalf("-1 * 2 = %d", v.Int())
	}
	minus7 := uint64(0xF9) // -7 in 8-bit two's complement
	if v := mustPrim(t, ir.OpDiv, nil, Make(minus7, 8, true), two); v.Int() != -3 {
		t.Fatalf("-7 / 2 = %d", v.Int())
	}
	if v := mustPrim(t, ir.OpLt, nil, negOne, two); !v.IsTrue() {
		t.Fatal("-1 < 2 is false")
	}
	u1 := Make(0xFF, 8, false)
	if v := mustPrim(t, ir.OpLt, nil, u1, Make(2, 8, false)); v.IsTrue() {
		t.Fatal("255 < 2 is true")
	}
}

func TestComparisons(t *testing.T) {
	a, b := Make(5, 4, false), Make(9, 4, false)
	checks := []struct {
		op   ir.PrimOp
		want bool
	}{
		{ir.OpLt, true}, {ir.OpLeq, true}, {ir.OpGt, false}, {ir.OpGeq, false},
		{ir.OpEq, false}, {ir.OpNeq, true},
	}
	for _, c := range checks {
		if v := mustPrim(t, c.op, nil, a, b); v.IsTrue() != c.want {
			t.Errorf("%s(5, 9) = %v, want %v", c.op, v.IsTrue(), c.want)
		}
	}
	if v := mustPrim(t, ir.OpEq, nil, a, a); !v.IsTrue() {
		t.Fatal("eq(5,5) false")
	}
}

func TestBitwise(t *testing.T) {
	a, b := Make(0b1100, 4, false), Make(0b1010, 4, false)
	if v := mustPrim(t, ir.OpAnd, nil, a, b); v.Bits != 0b1000 {
		t.Fatalf("and = %b", v.Bits)
	}
	if v := mustPrim(t, ir.OpOr, nil, a, b); v.Bits != 0b1110 {
		t.Fatalf("or = %b", v.Bits)
	}
	if v := mustPrim(t, ir.OpXor, nil, a, b); v.Bits != 0b0110 {
		t.Fatalf("xor = %b", v.Bits)
	}
	if v := mustPrim(t, ir.OpNot, nil, a); v.Bits != 0b0011 {
		t.Fatalf("not = %b", v.Bits)
	}
}

func TestShifts(t *testing.T) {
	a := Make(0b101, 3, false)
	if v := mustPrim(t, ir.OpShl, []int{2}, a); v.Bits != 0b10100 || v.Width != 5 {
		t.Fatalf("shl = %v", v)
	}
	if v := mustPrim(t, ir.OpShr, []int{1}, a); v.Bits != 0b10 || v.Width != 2 {
		t.Fatalf("shr = %v", v)
	}
	// Arithmetic right shift for signed.
	s := Make(0b100, 3, true) // -4
	if v := mustPrim(t, ir.OpDshr, nil, s, Make(1, 2, false)); v.Int() != -2 {
		t.Fatalf("signed dshr = %d", v.Int())
	}
	if v := mustPrim(t, ir.OpDshl, nil, a, Make(2, 3, false)); v.Bits != 0b10100 {
		t.Fatalf("dshl = %v", v)
	}
	// Oversized dynamic shift amounts zero out (unsigned).
	if v := mustPrim(t, ir.OpDshr, nil, Make(0xFFFF, 16, false), Make(63, 6, false)); v.Bits != 0 {
		t.Fatalf("big dshr = %v", v)
	}
}

func TestCatBitsHeadTail(t *testing.T) {
	a, b := Make(0b11, 2, false), Make(0b01, 2, false)
	if v := mustPrim(t, ir.OpCat, nil, a, b); v.Bits != 0b1101 || v.Width != 4 {
		t.Fatalf("cat = %v", v)
	}
	w := Make(0b110101, 6, false)
	if v := mustPrim(t, ir.OpBits, []int{4, 2}, w); v.Bits != 0b101 || v.Width != 3 {
		t.Fatalf("bits = %v", v)
	}
	if v := mustPrim(t, ir.OpHead, []int{2}, w); v.Bits != 0b11 {
		t.Fatalf("head = %v", v)
	}
	if v := mustPrim(t, ir.OpTail, []int{2}, w); v.Bits != 0b0101 || v.Width != 4 {
		t.Fatalf("tail = %v", v)
	}
	if _, err := Prim(ir.OpBits, []int{8, 0}, []Value{w}); err == nil {
		t.Fatal("out-of-range bits accepted")
	}
}

func TestReductions(t *testing.T) {
	if v := mustPrim(t, ir.OpAndR, nil, Make(0b111, 3, false)); !v.IsTrue() {
		t.Fatal("andr(111) false")
	}
	if v := mustPrim(t, ir.OpAndR, nil, Make(0b101, 3, false)); v.IsTrue() {
		t.Fatal("andr(101) true")
	}
	if v := mustPrim(t, ir.OpOrR, nil, Make(0, 3, false)); v.IsTrue() {
		t.Fatal("orr(0) true")
	}
	if v := mustPrim(t, ir.OpXorR, nil, Make(0b111, 3, false)); !v.IsTrue() {
		t.Fatal("xorr(111) != 1")
	}
	if v := mustPrim(t, ir.OpXorR, nil, Make(0b11, 2, false)); v.IsTrue() {
		t.Fatal("xorr(11) != 0")
	}
}

func TestPadAndCasts(t *testing.T) {
	s := Make(0b1000, 4, true) // -8
	padded := mustPrim(t, ir.OpPad, []int{8}, s)
	if padded.Int() != -8 || padded.Width != 8 {
		t.Fatalf("signed pad = %v (%d)", padded, padded.Int())
	}
	u := Make(0b1000, 4, false)
	zp := mustPrim(t, ir.OpPad, []int{8}, u)
	if zp.Bits != 8 {
		t.Fatalf("unsigned pad = %v", zp)
	}
	asS := mustPrim(t, ir.OpAsSInt, nil, u)
	if asS.Int() != -8 {
		t.Fatalf("asSInt = %d", asS.Int())
	}
	asU := mustPrim(t, ir.OpAsUInt, nil, s)
	if asU.Bits != 8 || asU.Signed {
		t.Fatalf("asUInt = %v", asU)
	}
}

func TestMuxHelper(t *testing.T) {
	t1 := Make(7, 4, false)
	f1 := Make(2, 8, false)
	if v := Mux(Make(1, 1, false), t1, f1); v.Bits != 7 || v.Width != 8 {
		t.Fatalf("mux true = %v", v)
	}
	if v := Mux(Make(0, 1, false), t1, f1); v.Bits != 2 {
		t.Fatalf("mux false = %v", v)
	}
}

func TestNeg(t *testing.T) {
	v := mustPrim(t, ir.OpNeg, nil, Make(5, 4, false))
	if v.Int() != -5 || v.Width != 5 {
		t.Fatalf("neg(5) = %v (%d)", v, v.Int())
	}
}

// Property: eval result widths agree with ir.TypeEnv width rules for
// binary ops on random operands.
func TestWidthAgreementProperty(t *testing.T) {
	m := &ir.Module{Name: "P", Ports: []ir.Port{
		{Name: "a", Dir: ir.Input, Tpe: ir.UIntType(8)},
		{Name: "b", Dir: ir.Input, Tpe: ir.UIntType(8)},
	}}
	env := ir.NewTypeEnv(nil, m)
	ops := []ir.PrimOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpLt, ir.OpEq, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCat}
	f := func(x, y uint8, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		a := Make(uint64(x), 8, false)
		b := Make(uint64(y), 8, false)
		got, err := Prim(op, nil, []Value{a, b})
		if err != nil {
			return false
		}
		tt, err := env.TypeOf(ir.NewPrim(op, ir.Ref{Name: "a"}, ir.Ref{Name: "b"}))
		if err != nil {
			return false
		}
		return got.Width == ir.GroundOf(tt).Width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: values never carry bits above their width.
func TestMaskInvariantProperty(t *testing.T) {
	f := func(x, y uint64, w8 uint8) bool {
		w := int(w8%16) + 1
		a := Make(x, w, false)
		b := Make(y, w, false)
		for _, op := range []ir.PrimOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpXor, ir.OpNot} {
			var args []Value
			if op == ir.OpNot {
				args = []Value{a}
			} else {
				args = []Value{a, b}
			}
			v, err := Prim(op, nil, args)
			if err != nil {
				return false
			}
			if v.Bits&^Mask(v.Width) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
