package eval

import (
	"testing"

	"repro/internal/ir"
)

// fusedFixture hand-builds a small fused program, independent of the
// expr fuser:
//
//	shared 0: s = op0 + op1
//	cond 0:   s == 12
//	cond 1:   s != op2
//	cond 2:   op2 == 3   (independent of the shared segment)
func fusedFixture() *MultiProg {
	return &MultiProg{
		Code: []Instr{
			// shared segment 0 at scratch register 1, moved into shared
			// register 0
			{Kind: ISig, Dst: 1, A: 0},
			{Kind: ISig, Dst: 2, A: 1},
			{Kind: IPrim2, Op: ir.OpAdd, Dst: 1, A: 1, B: 2},
			{Kind: IMov, Dst: 0, A: 1},
			// cond 0
			{Kind: IConst, Dst: 1, Const: Make(12, 8, false)},
			{Kind: IPrim2, Op: ir.OpEq, Dst: 1, A: 0, B: 1},
			// cond 1
			{Kind: ISig, Dst: 1, A: 2},
			{Kind: IPrim2, Op: ir.OpNeq, Dst: 1, A: 0, B: 1},
			// cond 2
			{Kind: ISig, Dst: 1, A: 2},
			{Kind: IConst, Dst: 2, Const: Make(3, 8, false)},
			{Kind: IPrim2, Op: ir.OpEq, Dst: 1, A: 1, B: 2},
		},
		NumRegs:     3,
		NumShared:   1,
		NumOperands: 3,
		Shared: []Segment{
			{Start: 0, End: 4, Result: 0, Ops: []uint16{0, 1}},
		},
		Conds: []Segment{
			{Start: 4, End: 6, Result: 1, Deps: []uint16{0}},
			{Start: 6, End: 8, Result: 1, Ops: []uint16{2}, Deps: []uint16{0}},
			{Start: 8, End: 11, Result: 1, Ops: []uint16{2}},
		},
	}
}

func runFixture(p *MultiProg, operands []Value, opsOK []bool, skip []uint64) ([]Value, []bool) {
	var m FusedMachine
	sharedVals := make([]Value, p.NumShared)
	sharedOK := make([]bool, p.NumShared)
	results := make([]Value, len(p.Conds))
	resultOK := make([]bool, len(p.Conds))
	m.ExecShared(p, operands, opsOK, sharedVals, sharedOK)
	m.ExecConds(p, operands, opsOK, sharedVals, sharedOK, 0, len(p.Conds), skip, results, resultOK)
	return results, resultOK
}

func TestFusedProgramValues(t *testing.T) {
	p := fusedFixture()
	ops := []Value{Make(5, 8, false), Make(7, 8, false), Make(3, 8, false)}
	results, ok := runFixture(p, ops, []bool{true, true, true}, nil)
	want := []bool{true, true, true} // 12==12, 12!=3, 3==3
	for i := range want {
		if !ok[i] {
			t.Fatalf("cond %d not ok", i)
		}
		if results[i].IsTrue() != want[i] {
			t.Fatalf("cond %d = %v, want %v", i, results[i].IsTrue(), want[i])
		}
	}
}

// TestFusedPoisonIsolation: a failed operand poisons the shared segment
// reading it and, transitively, the conditions depending on that shared
// register — while an independent condition stays sound.
func TestFusedPoisonIsolation(t *testing.T) {
	p := fusedFixture()
	ops := []Value{{}, Make(7, 8, false), Make(3, 8, false)}
	_, ok := runFixture(p, ops, []bool{false, true, true}, nil)
	if ok[0] || ok[1] {
		t.Fatalf("conds reading the poisoned shared segment reported ok: %v", ok)
	}
	if !ok[2] {
		t.Fatal("independent cond poisoned")
	}
}

// TestFusedSkipBitmapUntouched: a masked condition must not execute and
// must leave its result entries exactly as the caller set them.
func TestFusedSkipBitmapUntouched(t *testing.T) {
	p := fusedFixture()
	ops := []Value{Make(5, 8, false), Make(7, 8, false), Make(3, 8, false)}
	results, ok := runFixture(p, ops, []bool{true, true, true}, []uint64{0b010})
	if ok[1] {
		t.Fatal("masked cond executed")
	}
	if (results[1] != Value{}) {
		t.Fatalf("masked cond wrote a result: %#v", results[1])
	}
	if !ok[0] || !ok[2] {
		t.Fatalf("unmasked conds not evaluated: %v", ok)
	}
}

// TestFusedExecZeroAllocs is the hot-loop guard: steady-state fused
// execution — prelude plus every condition segment, with a skip bitmap
// present — must not allocate.
func TestFusedExecZeroAllocs(t *testing.T) {
	p := fusedFixture()
	ops := []Value{Make(5, 8, false), Make(7, 8, false), Make(3, 8, false)}
	opsOK := []bool{true, true, true}
	skip := []uint64{0b100}
	var m FusedMachine
	sharedVals := make([]Value, p.NumShared)
	sharedOK := make([]bool, p.NumShared)
	results := make([]Value, len(p.Conds))
	resultOK := make([]bool, len(p.Conds))
	// Warm the register file outside the measured runs.
	m.ExecShared(p, ops, opsOK, sharedVals, sharedOK)
	allocs := testing.AllocsPerRun(200, func() {
		m.ExecShared(p, ops, opsOK, sharedVals, sharedOK)
		m.ExecConds(p, ops, opsOK, sharedVals, sharedOK, 0, len(p.Conds), skip, results, resultOK)
	})
	if allocs != 0 {
		t.Fatalf("fused execution allocates %.1f per edge, want 0", allocs)
	}
}
