package eval

import "repro/internal/val"

// This file is the bridge between the two-state fast path (Value, the
// ≤64-bit known-bits representation the compiled and fused evaluators
// run on) and the four-state general plane (val.Bits). The fast path
// is a compile-time-selected specialization: values that are fully
// known and at most 64 bits wide convert losslessly in both
// directions, and anything else is routed to the general evaluator.

// ToBits lifts a two-state Value into the four-state plane. The
// conversion is exact: every bit is known.
func (v Value) ToBits() val.Bits { return val.FromUint64(v.Bits, v.Width) }

// FromBits lowers a four-state value onto the two-state fast path.
// ok is false when the value has unknown bits or is wider than 64 —
// the cases only the general path can represent.
func FromBits(b val.Bits) (Value, bool) {
	if b.Width > 64 {
		return Value{}, false
	}
	u, ok := b.AsUint64()
	if !ok {
		return Value{}, false
	}
	return Make(u, b.Width, false), true
}
