package ir

import "fmt"

// TypeEnv resolves names to declared types within one module. Passes
// build it once per module and use it to type expressions.
type TypeEnv struct {
	types   map[string]Type
	mems    map[string]*DefMem
	circuit *Circuit
	modules map[string]string // instance name -> module name
}

// NewTypeEnv builds the type environment of m within circuit c.
// c may be nil when the module has no instances.
func NewTypeEnv(c *Circuit, m *Module) *TypeEnv {
	env := &TypeEnv{
		types:   make(map[string]Type),
		mems:    make(map[string]*DefMem),
		circuit: c,
		modules: make(map[string]string),
	}
	for _, p := range m.Ports {
		env.types[p.Name] = p.Tpe
	}
	WalkStmts(m.Body, func(s Stmt) {
		switch d := s.(type) {
		case *DefWire:
			env.types[d.Name] = d.Tpe
		case *DefReg:
			env.types[d.Name] = d.Tpe
		case *DefMem:
			env.mems[d.Name] = d
		case *DefInstance:
			env.modules[d.Name] = d.Module
		}
	})
	// Nodes depend on expression types; resolve them by sweeping to a
	// fixpoint so declaration order does not matter. Nodes left untyped
	// after the fixpoint participate in a combinational cycle or
	// reference undeclared names; their uses will fail with a clear
	// error.
	for {
		progressed := false
		WalkStmts(m.Body, func(s Stmt) {
			d, ok := s.(*DefNode)
			if !ok {
				return
			}
			if _, done := env.types[d.Name]; done {
				return
			}
			t, err := env.TypeOf(d.Value)
			if err == nil {
				env.types[d.Name] = t
				progressed = true
			}
		})
		if !progressed {
			break
		}
	}
	return env
}

// Declare records an additional name/type binding (used by passes that
// synthesize temporaries).
func (env *TypeEnv) Declare(name string, t Type) { env.types[name] = t }

// Lookup returns the declared type of a name.
func (env *TypeEnv) Lookup(name string) (Type, bool) {
	t, ok := env.types[name]
	return t, ok
}

// TypeOf computes the type of an expression.
func (env *TypeEnv) TypeOf(e Expr) (Type, error) {
	switch x := e.(type) {
	case Ref:
		if t, ok := env.types[x.Name]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("ir: undeclared reference %q", x.Name)
	case Const:
		if x.Signed {
			return SIntType(x.Width), nil
		}
		return UIntType(x.Width), nil
	case SubField:
		// Instance port access: inst.port
		if ref, ok := x.E.(Ref); ok {
			if modName, isInst := env.modules[ref.Name]; isInst && env.circuit != nil {
				child := env.circuit.Module(modName)
				if child == nil {
					return nil, fmt.Errorf("ir: instance %q references unknown module %q", ref.Name, modName)
				}
				p, ok := child.PortByName(x.Name)
				if !ok {
					return nil, fmt.Errorf("ir: module %q has no port %q", modName, x.Name)
				}
				return p.Tpe, nil
			}
		}
		base, err := env.TypeOf(x.E)
		if err != nil {
			return nil, err
		}
		b, ok := base.(Bundle)
		if !ok {
			return nil, fmt.Errorf("ir: subfield .%s of non-bundle %s", x.Name, base)
		}
		f, ok := b.FieldByName(x.Name)
		if !ok {
			return nil, fmt.Errorf("ir: bundle has no field %q", x.Name)
		}
		return f.Type, nil
	case SubIndex:
		base, err := env.TypeOf(x.E)
		if err != nil {
			return nil, err
		}
		v, ok := base.(Vec)
		if !ok {
			return nil, fmt.Errorf("ir: subindex of non-vec %s", base)
		}
		if x.Index < 0 || x.Index >= v.Len {
			return nil, fmt.Errorf("ir: index %d out of range for %s", x.Index, v)
		}
		return v.Elem, nil
	case SubAccess:
		base, err := env.TypeOf(x.E)
		if err != nil {
			return nil, err
		}
		v, ok := base.(Vec)
		if !ok {
			return nil, fmt.Errorf("ir: subaccess of non-vec %s", base)
		}
		return v.Elem, nil
	case MemRead:
		mem, ok := env.mems[x.Mem]
		if !ok {
			return nil, fmt.Errorf("ir: read of undeclared memory %q", x.Mem)
		}
		return mem.Tpe, nil
	case Mux:
		t, err := env.TypeOf(x.T)
		if err != nil {
			return nil, err
		}
		f, err := env.TypeOf(x.F)
		if err != nil {
			return nil, err
		}
		tg, tok := t.(Ground)
		fg, fok := f.(Ground)
		if tok && fok {
			w := tg.Width
			if fg.Width > w {
				w = fg.Width
			}
			kind := tg.Kind
			return Ground{Kind: kind, Width: w}, nil
		}
		return t, nil
	case Prim:
		return env.primType(x)
	}
	return nil, fmt.Errorf("ir: cannot type %T", e)
}

// WidthOf returns the bit width of a ground-typed expression.
func (env *TypeEnv) WidthOf(e Expr) (int, error) {
	t, err := env.TypeOf(e)
	if err != nil {
		return 0, err
	}
	g, ok := t.(Ground)
	if !ok {
		return 0, fmt.Errorf("ir: expression %s has aggregate type %s", e, t)
	}
	return g.Width, nil
}

func (env *TypeEnv) primType(p Prim) (Type, error) {
	argG := make([]Ground, len(p.Args))
	for i, a := range p.Args {
		t, err := env.TypeOf(a)
		if err != nil {
			return nil, err
		}
		g, ok := t.(Ground)
		if !ok {
			return nil, fmt.Errorf("ir: primop %s on aggregate operand %s", p.Op, a)
		}
		argG[i] = g
	}
	need := func(n int) error {
		if len(argG) != n {
			return fmt.Errorf("ir: primop %s expects %d args, got %d", p.Op, n, len(argG))
		}
		return nil
	}
	maxW := func(a, b Ground) int {
		if a.Width > b.Width {
			return a.Width
		}
		return b.Width
	}
	switch p.Op {
	case OpAdd, OpSub:
		if err := need(2); err != nil {
			return nil, err
		}
		return Ground{Kind: argG[0].Kind, Width: maxW(argG[0], argG[1]) + 1}, nil
	case OpMul:
		if err := need(2); err != nil {
			return nil, err
		}
		return Ground{Kind: argG[0].Kind, Width: argG[0].Width + argG[1].Width}, nil
	case OpDiv:
		if err := need(2); err != nil {
			return nil, err
		}
		w := argG[0].Width
		if argG[0].Kind == SInt {
			w++
		}
		return Ground{Kind: argG[0].Kind, Width: w}, nil
	case OpRem:
		if err := need(2); err != nil {
			return nil, err
		}
		w := argG[0].Width
		if argG[1].Width < w {
			w = argG[1].Width
		}
		return Ground{Kind: argG[0].Kind, Width: w}, nil
	case OpLt, OpLeq, OpGt, OpGeq, OpEq, OpNeq:
		if err := need(2); err != nil {
			return nil, err
		}
		return UIntType(1), nil
	case OpAnd, OpOr, OpXor:
		if err := need(2); err != nil {
			return nil, err
		}
		return UIntType(maxW(argG[0], argG[1])), nil
	case OpNot:
		if err := need(1); err != nil {
			return nil, err
		}
		return UIntType(argG[0].Width), nil
	case OpNeg:
		if err := need(1); err != nil {
			return nil, err
		}
		return SIntType(argG[0].Width + 1), nil
	case OpShl:
		if err := need(1); err != nil {
			return nil, err
		}
		return Ground{Kind: argG[0].Kind, Width: argG[0].Width + p.Params[0]}, nil
	case OpShr:
		if err := need(1); err != nil {
			return nil, err
		}
		w := argG[0].Width - p.Params[0]
		if w < 1 {
			w = 1
		}
		return Ground{Kind: argG[0].Kind, Width: w}, nil
	case OpDshl:
		if err := need(2); err != nil {
			return nil, err
		}
		extra := (1 << argG[1].Width) - 1
		w := argG[0].Width + extra
		if w > 64 {
			w = 64
		}
		return Ground{Kind: argG[0].Kind, Width: w}, nil
	case OpDshr:
		if err := need(2); err != nil {
			return nil, err
		}
		return argG[0], nil
	case OpCat:
		if err := need(2); err != nil {
			return nil, err
		}
		return UIntType(argG[0].Width + argG[1].Width), nil
	case OpBits:
		if err := need(1); err != nil {
			return nil, err
		}
		if len(p.Params) != 2 {
			return nil, fmt.Errorf("ir: bits expects [hi, lo] params")
		}
		hi, lo := p.Params[0], p.Params[1]
		if lo < 0 || hi < lo || hi >= argG[0].Width {
			return nil, fmt.Errorf("ir: bits(%d, %d) out of range for width %d", hi, lo, argG[0].Width)
		}
		return UIntType(hi - lo + 1), nil
	case OpHead:
		if err := need(1); err != nil {
			return nil, err
		}
		return UIntType(p.Params[0]), nil
	case OpTail:
		if err := need(1); err != nil {
			return nil, err
		}
		w := argG[0].Width - p.Params[0]
		if w < 1 {
			w = 1
		}
		return UIntType(w), nil
	case OpAndR, OpOrR, OpXorR:
		if err := need(1); err != nil {
			return nil, err
		}
		return UIntType(1), nil
	case OpPad:
		if err := need(1); err != nil {
			return nil, err
		}
		w := argG[0].Width
		if p.Params[0] > w {
			w = p.Params[0]
		}
		return Ground{Kind: argG[0].Kind, Width: w}, nil
	case OpAsUInt:
		if err := need(1); err != nil {
			return nil, err
		}
		return UIntType(argG[0].Width), nil
	case OpAsSInt:
		if err := need(1); err != nil {
			return nil, err
		}
		return SIntType(argG[0].Width), nil
	}
	return nil, fmt.Errorf("ir: unknown primop %v", p.Op)
}
