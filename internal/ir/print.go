package ir

import (
	"fmt"
	"io"
	"strings"
)

// Print writes a FIRRTL-like textual rendering of the circuit to w.
// The format is for humans and golden tests; it is not re-parsed.
func Print(w io.Writer, c *Circuit) {
	fmt.Fprintf(w, "circuit %s :\n", c.Main)
	for _, m := range c.Modules {
		PrintModule(w, m, "  ")
	}
}

// PrintModule writes a single module with the given indentation prefix.
func PrintModule(w io.Writer, m *Module, indent string) {
	fmt.Fprintf(w, "%smodule %s :\n", indent, m.Name)
	for _, p := range m.Ports {
		fmt.Fprintf(w, "%s  %s %s : %s\n", indent, p.Dir, p.Name, p.Tpe)
	}
	printStmts(w, m.Body, indent+"  ")
}

func printStmts(w io.Writer, body []Stmt, indent string) {
	for _, s := range body {
		printStmt(w, s, indent)
	}
}

func printStmt(w io.Writer, s Stmt, indent string) {
	loc := ""
	if s.Locator().Valid() {
		loc = " @[" + s.Locator().String() + "]"
	}
	switch d := s.(type) {
	case *DefWire:
		fmt.Fprintf(w, "%swire %s : %s%s\n", indent, d.Name, d.Tpe, loc)
	case *DefReg:
		if d.Init != nil {
			fmt.Fprintf(w, "%sreg %s : %s, reset => %s%s\n", indent, d.Name, d.Tpe, d.Init, loc)
		} else {
			fmt.Fprintf(w, "%sreg %s : %s%s\n", indent, d.Name, d.Tpe, loc)
		}
	case *DefNode:
		fmt.Fprintf(w, "%snode %s = %s%s\n", indent, d.Name, d.Value, loc)
	case *DefMem:
		fmt.Fprintf(w, "%smem %s : %s[%d]%s\n", indent, d.Name, d.Tpe, d.Depth, loc)
	case *MemWrite:
		fmt.Fprintf(w, "%swrite %s[%s] <= %s when %s%s\n", indent, d.Mem, d.Addr, d.Data, d.En, loc)
	case *Connect:
		fmt.Fprintf(w, "%s%s <= %s%s\n", indent, d.Loc, d.Value, loc)
	case *When:
		fmt.Fprintf(w, "%swhen %s :%s\n", indent, d.Cond, loc)
		printStmts(w, d.Then, indent+"  ")
		if len(d.Else) > 0 {
			fmt.Fprintf(w, "%selse :\n", indent)
			printStmts(w, d.Else, indent+"  ")
		}
	case *DefInstance:
		fmt.Fprintf(w, "%sinst %s of %s%s\n", indent, d.Name, d.Module, loc)
	default:
		fmt.Fprintf(w, "%s<unknown stmt %T>\n", indent, s)
	}
}

// CircuitString renders the whole circuit to a string.
func CircuitString(c *Circuit) string {
	var sb strings.Builder
	Print(&sb, c)
	return sb.String()
}
