package ir

import "fmt"

// Info is a source locator pointing back at the generator program that
// produced an IR node. It fills the role DWARF line records play for
// software debuggers: hgdb maps Info values to breakpoints.
type Info struct {
	File string
	Line int
	Col  int
}

// NoInfo is the zero locator used for synthesized statements.
var NoInfo = Info{}

// Valid reports whether the locator points at real source.
func (i Info) Valid() bool { return i.File != "" && i.Line > 0 }

func (i Info) String() string {
	if !i.Valid() {
		return "<unknown>"
	}
	if i.Col > 0 {
		return fmt.Sprintf("%s:%d:%d", i.File, i.Line, i.Col)
	}
	return fmt.Sprintf("%s:%d", i.File, i.Line)
}

// Stmt is the interface implemented by all IR statements.
type Stmt interface {
	stmtNode()
	// Locator returns the source locator attached to the statement.
	Locator() Info
}

// DefWire declares a named wire of the given type. Wires obey
// last-connect semantics until ExpandWhens rewrites them into
// single-assignment nodes.
type DefWire struct {
	Name string
	Tpe  Type
	Info Info
}

func (s *DefWire) stmtNode()     {}
func (s *DefWire) Locator() Info { return s.Info }

// DefReg declares a clocked register. Init, when non-nil, is the
// synchronous reset value; the register resets when the module reset is
// asserted.
type DefReg struct {
	Name string
	Tpe  Type
	Init Expr // nil means no reset value
	Info Info
}

func (s *DefReg) stmtNode()     {}
func (s *DefReg) Locator() Info { return s.Info }

// DefNode binds a name to the value of an expression. Nodes are
// single-assignment by construction.
type DefNode struct {
	Name  string
	Value Expr
	Info  Info
}

func (s *DefNode) stmtNode()     {}
func (s *DefNode) Locator() Info { return s.Info }

// DefMem declares a memory with combinational reads (via MemRead
// expressions) and synchronous writes (via MemWrite statements).
type DefMem struct {
	Name  string
	Tpe   Ground // element type
	Depth int
	Info  Info
}

func (s *DefMem) stmtNode()     {}
func (s *DefMem) Locator() Info { return s.Info }

// MemWrite performs a synchronous write of Data at Addr when En is
// non-zero at the clock edge.
type MemWrite struct {
	Mem  string
	Addr Expr
	Data Expr
	En   Expr
	Info Info
}

func (s *MemWrite) stmtNode()     {}
func (s *MemWrite) Locator() Info { return s.Info }

// Connect drives Loc with Value. Under High-form last-connect
// semantics, later connects (conditionally) override earlier ones.
type Connect struct {
	Loc   Expr
	Value Expr
	Info  Info
}

func (s *Connect) stmtNode()     {}
func (s *Connect) Locator() Info { return s.Info }

// When executes Then when Cond is non-zero and Else otherwise; it is
// the IR form of the generator's When/Otherwise construct and the
// carrier of breakpoint enable conditions.
type When struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Info Info
}

func (s *When) stmtNode()     {}
func (s *When) Locator() Info { return s.Info }

// DefInstance instantiates a child module under the given name. The
// instance's ports are referenced as SubField(Ref(name), port).
type DefInstance struct {
	Name   string
	Module string
	Info   Info
}

func (s *DefInstance) stmtNode()     {}
func (s *DefInstance) Locator() Info { return s.Info }

// WalkStmts invokes fn on every statement in body, recursing into When
// branches, parents first.
func WalkStmts(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		if w, ok := s.(*When); ok {
			WalkStmts(w.Then, fn)
			WalkStmts(w.Else, fn)
		}
	}
}
