package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGroundTypes(t *testing.T) {
	u := UIntType(8)
	if u.BitWidth() != 8 || u.Signed() {
		t.Fatalf("UIntType(8) = %v", u)
	}
	s := SIntType(16)
	if !s.Signed() || s.String() != "SInt<16>" {
		t.Fatalf("SIntType(16) = %v (%s)", s, s)
	}
	if ClockType().String() != "Clock" {
		t.Fatalf("clock string = %s", ClockType())
	}
	if ResetType().Width != 1 {
		t.Fatalf("reset width = %d", ResetType().Width)
	}
}

func TestBundleAndVec(t *testing.T) {
	b := Bundle{Fields: []Field{
		{Name: "valid", Type: UIntType(1)},
		{Name: "bits", Type: UIntType(32)},
		{Name: "ready", Flip: true, Type: UIntType(1)},
	}}
	if b.BitWidth() != 34 {
		t.Fatalf("bundle width = %d, want 34", b.BitWidth())
	}
	if f, ok := b.FieldByName("bits"); !ok || f.Type.BitWidth() != 32 {
		t.Fatalf("FieldByName(bits) = %v, %v", f, ok)
	}
	if _, ok := b.FieldByName("missing"); ok {
		t.Fatal("found nonexistent field")
	}
	if !strings.Contains(b.String(), "flip ready") {
		t.Fatalf("bundle string missing flip: %s", b)
	}
	v := Vec{Elem: UIntType(8), Len: 4}
	if v.BitWidth() != 32 || v.String() != "UInt<8>[4]" {
		t.Fatalf("vec = %v (%s)", v, v)
	}
}

func TestTypesEqual(t *testing.T) {
	a := Bundle{Fields: []Field{{Name: "x", Type: UIntType(4)}}}
	b := Bundle{Fields: []Field{{Name: "x", Type: UIntType(4)}}}
	c := Bundle{Fields: []Field{{Name: "x", Type: UIntType(5)}}}
	if !TypesEqual(a, b) {
		t.Fatal("identical bundles unequal")
	}
	if TypesEqual(a, c) {
		t.Fatal("different widths equal")
	}
	if TypesEqual(a, UIntType(4)) {
		t.Fatal("bundle equal to ground")
	}
	if !TypesEqual(Vec{Elem: UIntType(1), Len: 2}, Vec{Elem: UIntType(1), Len: 2}) {
		t.Fatal("identical vecs unequal")
	}
}

func TestExprString(t *testing.T) {
	e := Prim{Op: OpAdd, Args: []Expr{Ref{Name: "a"}, ConstUInt(3, 8)}}
	if e.String() != "add(a, UInt<8>(3))" {
		t.Fatalf("prim string = %s", e)
	}
	m := Mux{Cond: Ref{Name: "sel"}, T: Ref{Name: "x"}, F: Ref{Name: "y"}}
	if m.String() != "mux(sel, x, y)" {
		t.Fatalf("mux string = %s", m)
	}
	sf := SubField{E: Ref{Name: "io"}, Name: "out"}
	if sf.String() != "io.out" {
		t.Fatalf("subfield string = %s", sf)
	}
	si := SubIndex{E: Ref{Name: "v"}, Index: 2}
	if si.String() != "v[2]" {
		t.Fatalf("subindex string = %s", si)
	}
	bits := NewPrimP(OpBits, []int{7, 0}, Ref{Name: "w"})
	if bits.String() != "bits(w, 7, 0)" {
		t.Fatalf("bits string = %s", bits)
	}
	mr := MemRead{Mem: "regfile", Addr: Ref{Name: "rs1"}}
	if mr.String() != "regfile[rs1]" {
		t.Fatalf("memread string = %s", mr)
	}
}

func TestConstBool(t *testing.T) {
	if ConstBool(true).Value != 1 || ConstBool(false).Value != 0 {
		t.Fatal("ConstBool wrong")
	}
	if ConstBool(true).Width != 1 {
		t.Fatal("ConstBool width != 1")
	}
}

func TestWalkAndMapExpr(t *testing.T) {
	e := Mux{
		Cond: Ref{Name: "c"},
		T:    Prim{Op: OpAdd, Args: []Expr{Ref{Name: "a"}, Ref{Name: "b"}}},
		F:    ConstUInt(0, 8),
	}
	count := 0
	WalkExpr(e, func(Expr) { count++ })
	if count != 6 {
		t.Fatalf("WalkExpr visited %d nodes, want 6", count)
	}
	refs := RefsIn(e)
	if len(refs) != 3 {
		t.Fatalf("RefsIn = %v", refs)
	}
	// Rename every ref by appending a suffix.
	mapped := MapExpr(e, func(sub Expr) Expr {
		if r, ok := sub.(Ref); ok {
			return Ref{Name: r.Name + "_0"}
		}
		return sub
	})
	want := "mux(c_0, add(a_0, b_0), UInt<8>(0))"
	if mapped.String() != want {
		t.Fatalf("MapExpr = %s, want %s", mapped, want)
	}
	// Original untouched.
	if e.String() != "mux(c, add(a, b), UInt<8>(0))" {
		t.Fatalf("MapExpr mutated original: %s", e)
	}
}

func TestInfoString(t *testing.T) {
	if NoInfo.Valid() {
		t.Fatal("NoInfo is valid")
	}
	i := Info{File: "fpu.go", Line: 42}
	if !i.Valid() || i.String() != "fpu.go:42" {
		t.Fatalf("info = %s", i)
	}
	j := Info{File: "fpu.go", Line: 42, Col: 7}
	if j.String() != "fpu.go:42:7" {
		t.Fatalf("info with col = %s", j)
	}
}

func buildTestCircuit() *Circuit {
	child := &Module{
		Name: "Child",
		Ports: []Port{
			{Name: "in", Dir: Input, Tpe: UIntType(8)},
			{Name: "out", Dir: Output, Tpe: UIntType(8)},
		},
		Body: []Stmt{
			&Connect{Loc: Ref{Name: "out"}, Value: Ref{Name: "in"}},
		},
	}
	top := &Module{
		Name: "Top",
		Ports: []Port{
			{Name: "clock", Dir: Input, Tpe: ClockType()},
			{Name: "x", Dir: Input, Tpe: UIntType(8)},
			{Name: "y", Dir: Output, Tpe: UIntType(8)},
		},
		Body: []Stmt{
			&DefInstance{Name: "c0", Module: "Child"},
			&Connect{Loc: SubField{E: Ref{Name: "c0"}, Name: "in"}, Value: Ref{Name: "x"}},
			&Connect{Loc: Ref{Name: "y"}, Value: SubField{E: Ref{Name: "c0"}, Name: "out"}},
		},
	}
	return &Circuit{Main: "Top", Modules: []*Module{top, child}}
}

func TestCircuitValidate(t *testing.T) {
	c := buildTestCircuit()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	// Missing main.
	bad := &Circuit{Main: "Nope", Modules: c.Modules}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing main accepted")
	}
	// Duplicate declaration.
	dup := &Module{
		Name: "Dup",
		Body: []Stmt{
			&DefWire{Name: "w", Tpe: UIntType(1)},
			&DefWire{Name: "w", Tpe: UIntType(1)},
		},
	}
	bad2 := &Circuit{Main: "Dup", Modules: []*Module{dup}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("duplicate declaration accepted")
	}
	// Unknown instance target.
	orphan := &Module{
		Name: "Orphan",
		Body: []Stmt{&DefInstance{Name: "u", Module: "Ghost"}},
	}
	bad3 := &Circuit{Main: "Orphan", Modules: []*Module{orphan}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("unknown instance module accepted")
	}
}

func TestInstanceGraph(t *testing.T) {
	c := buildTestCircuit()
	g := c.InstanceGraph()
	if len(g["Top"]) != 1 || g["Top"][0].Module != "Child" || g["Top"][0].Instance != "c0" {
		t.Fatalf("instance graph = %v", g)
	}
	if len(g["Child"]) != 0 {
		t.Fatalf("child has instances: %v", g["Child"])
	}
}

func TestAddModuleReplaces(t *testing.T) {
	c := buildTestCircuit()
	replacement := &Module{Name: "Child"}
	c.AddModule(replacement)
	if len(c.Modules) != 2 {
		t.Fatalf("AddModule duplicated: %d modules", len(c.Modules))
	}
	if c.Module("Child") != replacement {
		t.Fatal("AddModule did not replace")
	}
	extra := &Module{Name: "New"}
	c.AddModule(extra)
	if len(c.Modules) != 3 {
		t.Fatal("AddModule did not append new module")
	}
}

func TestPrintCircuit(t *testing.T) {
	c := buildTestCircuit()
	s := CircuitString(c)
	for _, want := range []string{"circuit Top :", "module Top :", "inst c0 of Child", "c0.in <= x", "module Child :"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printed circuit missing %q:\n%s", want, s)
		}
	}
}

func TestTypeEnvBasics(t *testing.T) {
	c := buildTestCircuit()
	env := NewTypeEnv(c, c.MainModule())
	tt, err := env.TypeOf(SubField{E: Ref{Name: "c0"}, Name: "out"})
	if err != nil {
		t.Fatalf("TypeOf instance port: %v", err)
	}
	if tt.BitWidth() != 8 {
		t.Fatalf("instance port width = %d", tt.BitWidth())
	}
	if _, err := env.TypeOf(Ref{Name: "ghost"}); err == nil {
		t.Fatal("undeclared ref typed")
	}
}

func TestPrimTypeRules(t *testing.T) {
	m := &Module{Name: "M", Ports: []Port{
		{Name: "a", Dir: Input, Tpe: UIntType(8)},
		{Name: "b", Dir: Input, Tpe: UIntType(4)},
		{Name: "s", Dir: Input, Tpe: SIntType(8)},
	}}
	env := NewTypeEnv(nil, m)
	cases := []struct {
		e     Expr
		width int
		kind  GroundKind
	}{
		{NewPrim(OpAdd, Ref{"a"}, Ref{"b"}), 9, UInt},
		{NewPrim(OpSub, Ref{"a"}, Ref{"a"}), 9, UInt},
		{NewPrim(OpMul, Ref{"a"}, Ref{"b"}), 12, UInt},
		{NewPrim(OpDiv, Ref{"a"}, Ref{"b"}), 8, UInt},
		{NewPrim(OpDiv, Ref{"s"}, Ref{"s"}), 9, SInt},
		{NewPrim(OpRem, Ref{"a"}, Ref{"b"}), 4, UInt},
		{NewPrim(OpLt, Ref{"a"}, Ref{"b"}), 1, UInt},
		{NewPrim(OpEq, Ref{"a"}, Ref{"b"}), 1, UInt},
		{NewPrim(OpAnd, Ref{"a"}, Ref{"b"}), 8, UInt},
		{NewPrim(OpNot, Ref{"a"}), 8, UInt},
		{NewPrim(OpNeg, Ref{"a"}), 9, SInt},
		{NewPrimP(OpShl, []int{2}, Ref{"a"}), 10, UInt},
		{NewPrimP(OpShr, []int{3}, Ref{"a"}), 5, UInt},
		{NewPrim(OpCat, Ref{"a"}, Ref{"b"}), 12, UInt},
		{NewPrimP(OpBits, []int{3, 1}, Ref{"a"}), 3, UInt},
		{NewPrim(OpOrR, Ref{"a"}), 1, UInt},
		{NewPrimP(OpPad, []int{16}, Ref{"b"}), 16, UInt},
		{NewPrim(OpAsSInt, Ref{"a"}), 8, SInt},
		{NewPrim(OpAsUInt, Ref{"s"}), 8, UInt},
	}
	for _, tc := range cases {
		tt, err := env.TypeOf(tc.e)
		if err != nil {
			t.Fatalf("TypeOf(%s): %v", tc.e, err)
		}
		g := GroundOf(tt)
		if g.Width != tc.width || g.Kind != tc.kind {
			t.Errorf("TypeOf(%s) = %s, want %s<%d>", tc.e, g, tc.kind, tc.width)
		}
	}
	// Error cases.
	if _, err := env.TypeOf(NewPrimP(OpBits, []int{9, 0}, Ref{"a"})); err == nil {
		t.Fatal("out-of-range bits accepted")
	}
	if _, err := env.TypeOf(NewPrim(OpAdd, Ref{"a"})); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

// Property: MapExpr with the identity function reproduces the same
// rendered expression for arbitrary expression shapes.
func TestMapExprIdentityProperty(t *testing.T) {
	f := func(names []string, depth uint8) bool {
		e := genExpr(names, int(depth)%4, 0)
		mapped := MapExpr(e, func(x Expr) Expr { return x })
		return mapped.String() == e.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// genExpr deterministically builds a nested expression from a name pool.
func genExpr(names []string, depth, salt int) Expr {
	name := func(i int) string {
		if len(names) == 0 {
			return "x"
		}
		n := names[(i+salt)%len(names)]
		if n == "" {
			return "x"
		}
		return n
	}
	if depth <= 0 {
		return Ref{Name: name(0)}
	}
	return Mux{
		Cond: Ref{Name: name(1)},
		T:    NewPrim(OpAdd, genExpr(names, depth-1, salt+1), ConstUInt(uint64(depth), 8)),
		F:    genExpr(names, depth-1, salt+2),
	}
}
