package ir

import (
	"fmt"
	"strings"
)

// RenderInfix renders an expression in C-like infix syntax, the format
// stored in the symbol table's enable-condition column and understood by
// the debugger's expression evaluator (internal/expr). Every operator it
// emits can be parsed back by that package.
func RenderInfix(e Expr) string {
	switch x := e.(type) {
	case Ref:
		return x.Name
	case Const:
		if x.Signed {
			// Render as the signed numeric value.
			v := x.Value
			if x.Width < 64 && v&(uint64(1)<<uint(x.Width-1)) != 0 {
				return fmt.Sprintf("%d", int64(v|^((uint64(1)<<uint(x.Width))-1)))
			}
			return fmt.Sprintf("%d", int64(v))
		}
		return fmt.Sprintf("%d", x.Value)
	case SubField:
		return RenderInfix(x.E) + "." + x.Name
	case SubIndex:
		return fmt.Sprintf("%s[%d]", RenderInfix(x.E), x.Index)
	case SubAccess:
		return fmt.Sprintf("%s[%s]", RenderInfix(x.E), RenderInfix(x.Index))
	case MemRead:
		return fmt.Sprintf("%s[%s]", x.Mem, RenderInfix(x.Addr))
	case Mux:
		return fmt.Sprintf("(%s ? %s : %s)", RenderInfix(x.Cond), RenderInfix(x.T), RenderInfix(x.F))
	case Prim:
		return renderPrimInfix(x)
	}
	return e.String()
}

var infixOps = map[PrimOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpLt: "<", OpLeq: "<=", OpGt: ">", OpGeq: ">=", OpEq: "==", OpNeq: "!=",
	OpAnd: "&", OpOr: "|", OpXor: "^",
	OpDshl: "<<", OpDshr: ">>",
}

func renderPrimInfix(p Prim) string {
	if sym, ok := infixOps[p.Op]; ok && len(p.Args) == 2 {
		return fmt.Sprintf("(%s %s %s)", RenderInfix(p.Args[0]), sym, RenderInfix(p.Args[1]))
	}
	switch p.Op {
	case OpNot:
		return "(~" + RenderInfix(p.Args[0]) + ")"
	case OpNeg:
		return "(-" + RenderInfix(p.Args[0]) + ")"
	case OpShl:
		return fmt.Sprintf("(%s << %d)", RenderInfix(p.Args[0]), p.Params[0])
	case OpShr:
		return fmt.Sprintf("(%s >> %d)", RenderInfix(p.Args[0]), p.Params[0])
	case OpBits:
		return fmt.Sprintf("%s[%d:%d]", RenderInfix(p.Args[0]), p.Params[0], p.Params[1])
	case OpCat, OpAndR, OpOrR, OpXorR, OpPad, OpAsUInt, OpAsSInt, OpHead, OpTail:
		// Function-call style for ops without an infix form.
		var args []string
		for _, a := range p.Args {
			args = append(args, RenderInfix(a))
		}
		for _, prm := range p.Params {
			args = append(args, fmt.Sprintf("%d", prm))
		}
		return fmt.Sprintf("%s(%s)", p.Op, strings.Join(args, ", "))
	}
	return p.String()
}
