package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is the interface implemented by all IR expressions.
type Expr interface {
	exprNode()
	// String renders the expression in a FIRRTL-like textual form. The
	// rendering is stable and is used both for diagnostics and as the
	// canonical key for common sub-expression elimination.
	String() string
}

// Ref names a wire, node, register, port, or (after lowering) any ground
// signal in the enclosing module.
type Ref struct {
	Name string
}

func (r Ref) exprNode()      {}
func (r Ref) String() string { return r.Name }

// SubField selects a named field of a bundle-typed expression.
type SubField struct {
	E    Expr
	Name string
}

func (s SubField) exprNode()      {}
func (s SubField) String() string { return s.E.String() + "." + s.Name }

// SubIndex selects a statically known element of a vector-typed
// expression.
type SubIndex struct {
	E     Expr
	Index int
}

func (s SubIndex) exprNode()      {}
func (s SubIndex) String() string { return fmt.Sprintf("%s[%d]", s.E.String(), s.Index) }

// SubAccess selects a dynamically addressed element of a vector-typed
// expression. Lowering turns reads into mux trees and writes into
// per-element enables.
type SubAccess struct {
	E     Expr
	Index Expr
}

func (s SubAccess) exprNode()      {}
func (s SubAccess) String() string { return fmt.Sprintf("%s[%s]", s.E.String(), s.Index.String()) }

// Const is an integer literal with an explicit width and signedness.
type Const struct {
	Value  uint64
	Width  int
	Signed bool
}

func (c Const) exprNode() {}
func (c Const) String() string {
	k := "UInt"
	if c.Signed {
		k = "SInt"
	}
	return fmt.Sprintf("%s<%d>(%d)", k, c.Width, c.Value)
}

// ConstUInt returns an unsigned literal of the given width.
func ConstUInt(v uint64, width int) Const { return Const{Value: v, Width: width} }

// ConstBool returns a 1-bit literal: 1 when v is true, 0 otherwise.
func ConstBool(v bool) Const {
	if v {
		return Const{Value: 1, Width: 1}
	}
	return Const{Value: 0, Width: 1}
}

// PrimOp enumerates the primitive operations of the IR.
type PrimOp int

const (
	OpAdd PrimOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpEq
	OpNeq
	OpAnd
	OpOr
	OpXor
	OpNot // bitwise complement
	OpNeg // arithmetic negation
	OpShl // static left shift, shamt in Params[0]
	OpShr // static right shift, shamt in Params[0]
	OpDshl
	OpDshr
	OpCat
	OpBits // bit extract, Params = [hi, lo]
	OpHead // Params = [n]
	OpTail // Params = [n]
	OpAndR
	OpOrR
	OpXorR
	OpPad // Params = [width]
	OpAsUInt
	OpAsSInt
)

var primOpNames = map[PrimOp]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpLt: "lt", OpLeq: "leq", OpGt: "gt", OpGeq: "geq", OpEq: "eq", OpNeq: "neq",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not", OpNeg: "neg",
	OpShl: "shl", OpShr: "shr", OpDshl: "dshl", OpDshr: "dshr",
	OpCat: "cat", OpBits: "bits", OpHead: "head", OpTail: "tail",
	OpAndR: "andr", OpOrR: "orr", OpXorR: "xorr", OpPad: "pad",
	OpAsUInt: "asUInt", OpAsSInt: "asSInt",
}

func (op PrimOp) String() string {
	if s, ok := primOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("primop(%d)", int(op))
}

// Prim applies a primitive operation to argument expressions, with
// static integer parameters (shift amounts, bit ranges, pad widths).
type Prim struct {
	Op     PrimOp
	Args   []Expr
	Params []int
}

func (p Prim) exprNode() {}
func (p Prim) String() string {
	var sb strings.Builder
	sb.WriteString(p.Op.String())
	sb.WriteString("(")
	for i, a := range p.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	for _, prm := range p.Params {
		sb.WriteString(", ")
		sb.WriteString(strconv.Itoa(prm))
	}
	sb.WriteString(")")
	return sb.String()
}

// Mux selects T when Cond is non-zero and F otherwise.
type Mux struct {
	Cond Expr
	T    Expr
	F    Expr
}

func (m Mux) exprNode() {}
func (m Mux) String() string {
	return fmt.Sprintf("mux(%s, %s, %s)", m.Cond.String(), m.T.String(), m.F.String())
}

// MemRead is a combinational read of a memory defined with DefMem.
type MemRead struct {
	Mem  string
	Addr Expr
}

func (m MemRead) exprNode()      {}
func (m MemRead) String() string { return fmt.Sprintf("%s[%s]", m.Mem, m.Addr.String()) }

// NewPrim is a convenience constructor for Prim expressions.
func NewPrim(op PrimOp, args ...Expr) Prim { return Prim{Op: op, Args: args} }

// NewPrimP constructs a Prim with static parameters.
func NewPrimP(op PrimOp, params []int, args ...Expr) Prim {
	return Prim{Op: op, Args: args, Params: params}
}

// WalkExpr invokes fn on e and every sub-expression of e, parents first.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case SubField:
		WalkExpr(x.E, fn)
	case SubIndex:
		WalkExpr(x.E, fn)
	case SubAccess:
		WalkExpr(x.E, fn)
		WalkExpr(x.Index, fn)
	case Prim:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case Mux:
		WalkExpr(x.Cond, fn)
		WalkExpr(x.T, fn)
		WalkExpr(x.F, fn)
	case MemRead:
		WalkExpr(x.Addr, fn)
	}
}

// MapExpr rebuilds e bottom-up, replacing every sub-expression with
// fn(sub). fn receives an expression whose children have already been
// mapped.
func MapExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case SubField:
		return fn(SubField{E: MapExpr(x.E, fn), Name: x.Name})
	case SubIndex:
		return fn(SubIndex{E: MapExpr(x.E, fn), Index: x.Index})
	case SubAccess:
		return fn(SubAccess{E: MapExpr(x.E, fn), Index: MapExpr(x.Index, fn)})
	case Prim:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = MapExpr(a, fn)
		}
		return fn(Prim{Op: x.Op, Args: args, Params: x.Params})
	case Mux:
		return fn(Mux{Cond: MapExpr(x.Cond, fn), T: MapExpr(x.T, fn), F: MapExpr(x.F, fn)})
	case MemRead:
		return fn(MemRead{Mem: x.Mem, Addr: MapExpr(x.Addr, fn)})
	default:
		return fn(e)
	}
}

// RefsIn collects the names of all Refs appearing in e.
func RefsIn(e Expr) []string {
	var out []string
	WalkExpr(e, func(sub Expr) {
		if r, ok := sub.(Ref); ok {
			out = append(out, r.Name)
		}
	})
	return out
}
