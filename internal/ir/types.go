// Package ir defines a FIRRTL-like intermediate representation for
// hardware generator frameworks. Designs enter the IR in "High" form
// (aggregate types, when-blocks, last-connect semantics) carrying source
// locators that point back at the generator program, and are lowered by
// the passes in internal/passes into a ground-typed, single-assignment
// "Low" form suitable for simulation and RTL emission.
package ir

import (
	"fmt"
	"strings"
)

// GroundKind enumerates the scalar type kinds of the IR.
type GroundKind int

const (
	// UInt is an unsigned integer of a fixed width.
	UInt GroundKind = iota
	// SInt is a two's-complement signed integer of a fixed width.
	SInt
	// ClockKind is a clock signal (width 1, not usable in arithmetic).
	ClockKind
	// ResetKind is a synchronous reset signal (width 1).
	ResetKind
)

func (k GroundKind) String() string {
	switch k {
	case UInt:
		return "UInt"
	case SInt:
		return "SInt"
	case ClockKind:
		return "Clock"
	case ResetKind:
		return "Reset"
	}
	return fmt.Sprintf("GroundKind(%d)", int(k))
}

// Type is the interface implemented by all IR types. High-form types
// include aggregates (Bundle, Vec); Low-form designs use only Ground.
type Type interface {
	// BitWidth returns the total number of bits occupied by a value of
	// this type (the sum of field widths for aggregates).
	BitWidth() int
	// String renders the type in FIRRTL-like notation.
	String() string
	typeNode()
}

// Ground is a scalar type: an unsigned/signed integer, clock, or reset.
type Ground struct {
	Kind  GroundKind
	Width int
}

// UIntType returns the unsigned integer type of the given width.
func UIntType(width int) Ground { return Ground{Kind: UInt, Width: width} }

// SIntType returns the signed integer type of the given width.
func SIntType(width int) Ground { return Ground{Kind: SInt, Width: width} }

// ClockType returns the clock type.
func ClockType() Ground { return Ground{Kind: ClockKind, Width: 1} }

// ResetType returns the synchronous reset type.
func ResetType() Ground { return Ground{Kind: ResetKind, Width: 1} }

// BitWidth implements Type.
func (g Ground) BitWidth() int { return g.Width }

func (g Ground) String() string {
	switch g.Kind {
	case ClockKind:
		return "Clock"
	case ResetKind:
		return "Reset"
	default:
		return fmt.Sprintf("%s<%d>", g.Kind, g.Width)
	}
}

func (Ground) typeNode() {}

// Signed reports whether the ground type is a signed integer.
func (g Ground) Signed() bool { return g.Kind == SInt }

// Field is one named member of a Bundle. Flip reverses the direction of
// the field relative to the bundle (used for ready/valid style ports).
type Field struct {
	Name string
	Flip bool
	Type Type
}

// Bundle is a record type grouping named fields, the IR analog of a
// Chisel Bundle.
type Bundle struct {
	Fields []Field
}

// BitWidth implements Type.
func (b Bundle) BitWidth() int {
	total := 0
	for _, f := range b.Fields {
		total += f.Type.BitWidth()
	}
	return total
}

func (b Bundle) String() string {
	var sb strings.Builder
	sb.WriteString("{")
	for i, f := range b.Fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		if f.Flip {
			sb.WriteString("flip ")
		}
		sb.WriteString(f.Name)
		sb.WriteString(": ")
		sb.WriteString(f.Type.String())
	}
	sb.WriteString("}")
	return sb.String()
}

func (Bundle) typeNode() {}

// FieldByName returns the field with the given name and whether it was
// found.
func (b Bundle) FieldByName(name string) (Field, bool) {
	for _, f := range b.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Vec is a fixed-length homogeneous vector type.
type Vec struct {
	Elem Type
	Len  int
}

// BitWidth implements Type.
func (v Vec) BitWidth() int { return v.Elem.BitWidth() * v.Len }

func (v Vec) String() string { return fmt.Sprintf("%s[%d]", v.Elem.String(), v.Len) }

func (Vec) typeNode() {}

// IsGround reports whether t is a scalar (non-aggregate) type.
func IsGround(t Type) bool {
	_, ok := t.(Ground)
	return ok
}

// GroundOf returns t as a Ground type, panicking when t is an aggregate.
// It is used by Low-form consumers after aggregate lowering.
func GroundOf(t Type) Ground {
	g, ok := t.(Ground)
	if !ok {
		panic(fmt.Sprintf("ir: expected ground type, got %s", t))
	}
	return g
}

// TypesEqual reports structural equality between two types.
func TypesEqual(a, b Type) bool {
	switch at := a.(type) {
	case Ground:
		bt, ok := b.(Ground)
		return ok && at == bt
	case Vec:
		bt, ok := b.(Vec)
		return ok && at.Len == bt.Len && TypesEqual(at.Elem, bt.Elem)
	case Bundle:
		bt, ok := b.(Bundle)
		if !ok || len(at.Fields) != len(bt.Fields) {
			return false
		}
		for i := range at.Fields {
			af, bf := at.Fields[i], bt.Fields[i]
			if af.Name != bf.Name || af.Flip != bf.Flip || !TypesEqual(af.Type, bf.Type) {
				return false
			}
		}
		return true
	}
	return false
}
