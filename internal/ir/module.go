package ir

import (
	"fmt"
	"sort"
)

// Direction is the direction of a module port.
type Direction int

const (
	// Input ports are driven by the environment.
	Input Direction = iota
	// Output ports are driven by the module.
	Output
)

func (d Direction) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Port is a module boundary signal. Aggregate-typed ports are flattened
// by the LowerAggregates pass.
type Port struct {
	Name string
	Dir  Direction
	Tpe  Type
	Info Info
}

// Module is one hardware module: a port list and a statement body.
type Module struct {
	Name  string
	Ports []Port
	Body  []Stmt
	// Attrs carries pass-to-pass annotations keyed by attribute name.
	// The Annotate/Collect passes of Algorithm 1 use it to persist
	// DontTouch marks and symbol annotations across optimization.
	Attrs map[string]string
}

// PortByName returns the port with the given name and whether it exists.
func (m *Module) PortByName(name string) (Port, bool) {
	for _, p := range m.Ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// Circuit is a complete design: a set of modules and the name of the
// top-level (main) module.
type Circuit struct {
	Main    string
	Modules []*Module
}

// Module returns the module with the given name, or nil when absent.
func (c *Circuit) Module(name string) *Module {
	for _, m := range c.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MainModule returns the top-level module, or nil when the circuit is
// inconsistent.
func (c *Circuit) MainModule() *Module { return c.Module(c.Main) }

// AddModule appends m, replacing any existing module of the same name.
func (c *Circuit) AddModule(m *Module) {
	for i, old := range c.Modules {
		if old.Name == m.Name {
			c.Modules[i] = m
			return
		}
	}
	c.Modules = append(c.Modules, m)
}

// Validate performs structural sanity checks: the main module exists,
// instance targets resolve, and names within each module are unique.
func (c *Circuit) Validate() error {
	if c.MainModule() == nil {
		return fmt.Errorf("ir: main module %q not found", c.Main)
	}
	for _, m := range c.Modules {
		seen := map[string]Info{}
		declare := func(name string, info Info) error {
			if prev, ok := seen[name]; ok {
				return fmt.Errorf("ir: module %s: %q redeclared at %s (previous at %s)", m.Name, name, info, prev)
			}
			seen[name] = info
			return nil
		}
		for _, p := range m.Ports {
			if err := declare(p.Name, p.Info); err != nil {
				return err
			}
		}
		var err error
		WalkStmts(m.Body, func(s Stmt) {
			if err != nil {
				return
			}
			switch d := s.(type) {
			case *DefWire:
				err = declare(d.Name, d.Info)
			case *DefReg:
				err = declare(d.Name, d.Info)
			case *DefNode:
				err = declare(d.Name, d.Info)
			case *DefMem:
				err = declare(d.Name, d.Info)
			case *DefInstance:
				if e := declare(d.Name, d.Info); e != nil {
					err = e
				} else if c.Module(d.Module) == nil {
					err = fmt.Errorf("ir: module %s: instance %q references unknown module %q", m.Name, d.Name, d.Module)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// InstanceGraph returns, for each module name, the list of (instance
// name, child module name) pairs it instantiates.
func (c *Circuit) InstanceGraph() map[string][]InstanceEdge {
	g := make(map[string][]InstanceEdge, len(c.Modules))
	for _, m := range c.Modules {
		var edges []InstanceEdge
		WalkStmts(m.Body, func(s Stmt) {
			if inst, ok := s.(*DefInstance); ok {
				edges = append(edges, InstanceEdge{Instance: inst.Name, Module: inst.Module})
			}
		})
		g[m.Name] = edges
	}
	return g
}

// InstanceEdge is one instantiation arc in the module hierarchy.
type InstanceEdge struct {
	Instance string
	Module   string
}

// SortedModuleNames returns module names in lexical order, useful for
// deterministic output.
func (c *Circuit) SortedModuleNames() []string {
	names := make([]string, 0, len(c.Modules))
	for _, m := range c.Modules {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}
