package expr

import (
	"fmt"
	"math/bits"

	"repro/internal/eval"
	"repro/internal/val"
)

// This file is the general four-state evaluator: the tree-walk the
// debugger falls back to when a condition touches an unknown (x/z) or
// wider-than-64-bit signal, or uses a literal only val.Bits can hold.
//
// Bit-identity with the two-state fast path is by construction, not by
// testing alone: every node evaluates its children first, and when all
// of them are fully known and at most 64 bits wide the node applies
// the exact same two-state operator body (applyBin / unaryNode.apply /
// bitsNode.apply) the compiled and tree-walk fast paths use. Only
// subtrees that actually see an X bit or a wide value run the val.Bits
// operators, which follow Verilog X-propagation: bitwise ops are
// per-bit (known 0 dominates &, known 1 dominates |), arithmetic and
// ordered comparisons go whole-result x on any unknown input bit, ==
// is three-valued, and === / !== compare all four states bit-for-bit
// and always produce a known 0/1.

// BitsResolver maps a (possibly dotted) name to its current four-state
// value.
type BitsResolver interface {
	ResolveBits(name string) (val.Bits, error)
}

// BitsResolverFunc adapts a function to the BitsResolver interface.
type BitsResolverFunc func(name string) (val.Bits, error)

// ResolveBits implements BitsResolver.
func (f BitsResolverFunc) ResolveBits(name string) (val.Bits, error) { return f(name) }

// EvalBits evaluates the expression with four-state semantics.
func EvalBits(n Node, r BitsResolver) (val.Bits, error) {
	x, err := n.evalBits(r)
	if err != nil {
		return val.Bits{}, err
	}
	return x.bits(), nil
}

// bval is an evaluation result in one of two domains: the two-state
// fast domain (v, when gen is false) or the general four-state domain
// (b). Nodes stay in the fast domain as long as every operand is fully
// known and ≤64 bits, and promote permanently once anything isn't.
type bval struct {
	v   eval.Value
	b   val.Bits
	gen bool
}

// bits lifts the result into the four-state plane.
func (x bval) bits() val.Bits {
	if x.gen {
		return x.b
	}
	return x.v.ToBits()
}

// truth is the result's Verilog truthiness; fast-domain values are
// always known.
func (x bval) truth() val.Tri {
	if !x.gen {
		if x.v.IsTrue() {
			return val.True
		}
		return val.False
	}
	return x.b.Truth()
}

func two(v eval.Value) bval { return bval{v: v} }
func gen(b val.Bits) bval   { return bval{b: b, gen: true} }
func triVal(t val.Tri) bval {
	if t == val.Undef {
		return gen(val.TriBits(t))
	}
	return two(eval.Make(uint64(t&1), 1, false))
}

func triNot(t val.Tri) val.Tri {
	switch t {
	case val.True:
		return val.False
	case val.False:
		return val.True
	}
	return val.Undef
}

func (n numNode) evalBits(BitsResolver) (bval, error) { return two(n.v), nil }

func (n xnumNode) evalBits(BitsResolver) (bval, error) { return gen(n.b), nil }

func (n nameNode) evalBits(r BitsResolver) (bval, error) {
	b, err := r.ResolveBits(n.name)
	if err != nil {
		return bval{}, err
	}
	if v, ok := eval.FromBits(b); ok {
		return two(v), nil
	}
	return gen(b), nil
}

func (n unaryNode) evalBits(r BitsResolver) (bval, error) {
	x, err := n.x.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	if !x.gen {
		v, err := n.apply(x.v)
		if err != nil {
			return bval{}, err
		}
		return two(v), nil
	}
	switch n.op {
	case "~":
		return gen(x.b.Not()), nil
	case "!":
		return triVal(triNot(x.b.Truth())), nil
	case "-":
		return gen(negBits(x.b)), nil
	}
	return bval{}, fmt.Errorf("expr: unknown unary %q", n.op)
}

// negBits is arithmetic negation in the general domain: whole-result x
// on any unknown bit, otherwise two's complement at width+1 (capped to
// the operand width once at or past 64, matching val's width rules).
func negBits(b val.Bits) val.Bits {
	w := b.Width
	if w < 64 {
		w++
	}
	if b.HasX() {
		return val.Unknown(w)
	}
	return val.FromUint64(0, w).Sub(b).Resize(w)
}

func (n binNode) evalBits(r BitsResolver) (bval, error) {
	// Short-circuit forms use three-valued logic: the right side is
	// skipped only when the left side decides the result outright, so
	// an unresolved (x) left side still evaluates the right in case a
	// dominant known value (0 for &&, 1 for ||) settles it.
	switch n.op {
	case "&&":
		a, err := n.a.evalBits(r)
		if err != nil {
			return bval{}, err
		}
		at := a.truth()
		if at == val.False {
			return two(eval.Make(0, 1, false)), nil
		}
		b, err := n.b.evalBits(r)
		if err != nil {
			return bval{}, err
		}
		switch bt := b.truth(); {
		case bt == val.False:
			return two(eval.Make(0, 1, false)), nil
		case at == val.True && bt == val.True:
			return two(eval.Make(1, 1, false)), nil
		}
		return triVal(val.Undef), nil
	case "||":
		a, err := n.a.evalBits(r)
		if err != nil {
			return bval{}, err
		}
		at := a.truth()
		if at == val.True {
			return two(eval.Make(1, 1, false)), nil
		}
		b, err := n.b.evalBits(r)
		if err != nil {
			return bval{}, err
		}
		switch bt := b.truth(); {
		case bt == val.True:
			return two(eval.Make(1, 1, false)), nil
		case at == val.False && bt == val.False:
			return two(eval.Make(0, 1, false)), nil
		}
		return triVal(val.Undef), nil
	}
	a, err := n.a.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	b, err := n.b.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	if !a.gen && !b.gen {
		v, err := applyBin(n.op, a.v, b.v)
		if err != nil {
			return bval{}, err
		}
		return two(v), nil
	}
	return applyBinBits(n.op, a.bits(), b.bits())
}

// applyBinBits applies a non-short-circuit binary operator in the
// general four-state domain.
func applyBinBits(op string, a, b val.Bits) (bval, error) {
	switch op {
	case "+":
		return gen(a.Add(b)), nil
	case "-":
		return gen(a.Sub(b)), nil
	case "*":
		return gen(mulBits(a, b)), nil
	case "/":
		return gen(divBits(a, b)), nil
	case "%":
		return gen(remBits(a, b)), nil
	case "<", "<=", ">", ">=":
		c, known := a.Cmp(b)
		if !known {
			return triVal(val.Undef), nil
		}
		var t bool
		switch op {
		case "<":
			t = c < 0
		case "<=":
			t = c <= 0
		case ">":
			t = c > 0
		case ">=":
			t = c >= 0
		}
		return triVal(boolTri(t)), nil
	case "==":
		return triVal(a.Eq(b)), nil
	case "!=":
		return triVal(triNot(a.Eq(b))), nil
	case "===":
		return triVal(boolTri(a.CaseEq(b))), nil
	case "!==":
		return triVal(boolTri(!a.CaseEq(b))), nil
	case "&":
		return gen(a.And(b)), nil
	case "|":
		return gen(a.Or(b)), nil
	case "^":
		return gen(a.Xor(b)), nil
	case "<<":
		sh, known := shiftAmount(b)
		if !known {
			return gen(val.Unknown(a.Width)), nil
		}
		return gen(a.Shl(sh)), nil
	case ">>":
		sh, known := shiftAmount(b)
		if !known {
			return gen(val.Unknown(a.Width)), nil
		}
		return gen(a.Shr(sh)), nil
	}
	return bval{}, fmt.Errorf("expr: unknown operator %q", op)
}

func boolTri(t bool) val.Tri {
	if t {
		return val.True
	}
	return val.False
}

// shiftAmount extracts a known shift distance; an x amount makes the
// whole shift unknown, and a wide known magnitude simply shifts
// everything out.
func shiftAmount(b val.Bits) (int, bool) {
	if b.HasX() {
		return 0, false
	}
	v, ok := b.AsUint64()
	if !ok || v > maxLiteralWidth {
		return maxLiteralWidth + 1, true
	}
	return int(v), true
}

// mulBits multiplies in the general domain: whole-result x on any
// unknown bit, exact when both magnitudes fit 64 bits (the product is
// computed at 128 bits), all-x otherwise — true >64-bit magnitudes
// are beyond what the debugger's condition language evaluates.
func mulBits(a, b val.Bits) val.Bits {
	w := a.Width + b.Width
	if w > maxLiteralWidth {
		w = maxLiteralWidth
	}
	av, aok := a.AsUint64()
	bv, bok := b.AsUint64()
	if !aok || !bok {
		return val.Unknown(w)
	}
	hi, lo := bits.Mul64(av, bv)
	return val.FromWords([]uint64{lo, hi}, w)
}

// divBits divides in the general domain: division by zero is x per
// Verilog, as is any unknown or true-wide operand.
func divBits(a, b val.Bits) val.Bits {
	av, aok := a.AsUint64()
	bv, bok := b.AsUint64()
	if !aok || !bok || bv == 0 {
		return val.Unknown(a.Width)
	}
	return val.FromUint64(av/bv, a.Width)
}

// remBits is the remainder in the general domain, at eval's
// min(widths) result width.
func remBits(a, b val.Bits) val.Bits {
	w := minInt(a.Width, b.Width)
	av, aok := a.AsUint64()
	bv, bok := b.AsUint64()
	if !aok || !bok || bv == 0 {
		return val.Unknown(w)
	}
	return val.FromUint64(av%bv, w)
}

func (n ternaryNode) evalBits(r BitsResolver) (bval, error) {
	c, err := n.cond.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	switch c.truth() {
	case val.True:
		return n.t.evalBits(r)
	case val.False:
		return n.f.evalBits(r)
	}
	// Unknown selector: evaluate both arms and keep only the bits they
	// agree on; everything else is x.
	t, err := n.t.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	f, err := n.f.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	return gen(val.Mux(t.bits(), f.bits())), nil
}

func (n bitsNode) evalBits(r BitsResolver) (bval, error) {
	x, err := n.x.evalBits(r)
	if err != nil {
		return bval{}, err
	}
	if !x.gen {
		v, err := n.apply(x.v)
		if err != nil {
			return bval{}, err
		}
		return two(v), nil
	}
	return gen(x.b.Slice(n.hi, n.lo)), nil
}
