package expr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/val"
)

// bitsEnv builds a BitsResolver over a fixed set of signals.
func bitsEnv(m map[string]val.Bits) BitsResolver {
	return BitsResolverFunc(func(name string) (val.Bits, error) {
		b, ok := m[name]
		if !ok {
			return val.Bits{}, fmt.Errorf("unknown signal %q", name)
		}
		return b, nil
	})
}

func mustBits(t *testing.T, lit string, width int) val.Bits {
	t.Helper()
	b, err := val.ParseVCD(lit, width)
	if err != nil {
		t.Fatalf("ParseVCD(%q): %v", lit, err)
	}
	return b
}

func evalBitsStr(t *testing.T, src string, env BitsResolver) val.Bits {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	b, err := EvalBits(n, env)
	if err != nil {
		t.Fatalf("EvalBits(%q): %v", src, err)
	}
	return b
}

func TestEvalBitsXPropagation(t *testing.T) {
	x8 := mustBits(t, "1x0z", 8) // 8'b0000_1x0z
	env := bitsEnv(map[string]val.Bits{
		"x8":   x8,
		"k8":   val.FromUint64(9, 8), // matches x8 on every known bit
		"zero": val.FromUint64(0, 4),
		"one":  val.FromUint64(1, 1),
	})
	cases := []struct {
		src  string
		want val.Bits
	}{
		// Arithmetic goes whole-result x on any unknown input.
		{"x8 + 1", val.Unknown(9)},
		{"x8 - k8", val.Unknown(9)},
		{"-x8", val.Unknown(9)},
		// Bitwise is per-bit: known 0 dominates &, known 1 dominates |.
		{"x8 & 0", val.FromUint64(0, 8)},
		{"x8 & 15", mustBits(t, "1x0x", 8)},
		{"x8 | 15", val.FromUint64(15, 8)},
		{"~x8", mustBits(t, "11110x1x", 8)},
		// Equality is three-valued; case equality always resolves.
		{"x8 == k8", val.Unknown(1)},
		{"x8 == 8'hf0", val.FromUint64(0, 1)}, // known high nibble differs
		{"x8 === 8'b1x0z", val.FromUint64(1, 1)},
		{"x8 !== 8'b1x0z", val.FromUint64(0, 1)},
		{"x8 === k8", val.FromUint64(0, 1)},
		// Truthiness: a dominant known bit decides && / || / ?: even
		// when the other side is x.
		{"x8 && one", val.FromUint64(1, 1)},
		{"x8[2] && one", val.Unknown(1)},
		{"x8[2] && zero", val.FromUint64(0, 1)},
		{"x8[2] || one", val.FromUint64(1, 1)},
		{"x8[2] || zero", val.Unknown(1)},
		// Unknown ternary selector keeps only agreeing bits.
		{"x8[2] ? 12 : 12", val.FromUint64(12, 4)},
		{"x8[2] ? 5 : 4", mustBits(t, "10x", 3)},
		// Ordered comparison with any x is unknown.
		{"x8 < k8", val.Unknown(1)},
		{"zero < k8", val.FromUint64(1, 1)},
		// Shifts: x bits ride along; x amounts poison the result.
		{"x8 << 1", mustBits(t, "0001x0z0", 8)},
		{"x8 >> 3", mustBits(t, "00000001", 8)},
		{"k8 << x8[2]", val.Unknown(8)},
	}
	for _, tc := range cases {
		got := evalBitsStr(t, tc.src, env)
		if !got.CaseEq(tc.want) || got.Width != tc.want.Width {
			t.Errorf("%s = %s (width %d), want %s (width %d)",
				tc.src, got, got.Width, tc.want, tc.want.Width)
		}
	}
}

func TestEvalBitsWideValues(t *testing.T) {
	// 160-bit bus with bit 159 and bit 0 set.
	w160 := val.FromWords([]uint64{1, 0, 1 << 31}, 160)
	env := bitsEnv(map[string]val.Bits{"bus": w160})

	if got := evalBitsStr(t, "bus + 1", env); !got.CaseEq(val.FromWords([]uint64{2, 0, 1 << 31}, 160)) {
		t.Fatalf("bus + 1 = %s", got)
	}
	if got := evalBitsStr(t, "bus[159]", env); !got.CaseEq(val.FromUint64(1, 1)) {
		t.Fatalf("bus[159] = %s", got)
	}
	if got := evalBitsStr(t, "bus[158:64]", env); !got.CaseEq(val.FromUint64(0, 95)) {
		t.Fatalf("bus[158:64] = %s", got)
	}
	lit := "160'h8" + strings.Repeat("0", 38) + "1"
	if got := evalBitsStr(t, "bus === "+lit, env); !got.CaseEq(val.FromUint64(1, 1)) {
		t.Fatalf("bus === %s = %s", lit, got)
	}
	if got := evalBitsStr(t, "bus == 1", env); !got.CaseEq(val.FromUint64(0, 1)) {
		t.Fatalf("bus == 1 = %s", got)
	}
	// True >64-bit magnitudes degrade to x for * and / rather than
	// silently truncating.
	if got := evalBitsStr(t, "bus * 2", env); !got.HasX() {
		t.Fatalf("wide multiply should be unknown, got %s", got)
	}
}

func TestSizedLiterals(t *testing.T) {
	env := bitsEnv(nil)
	cases := []struct {
		src  string
		want val.Bits
	}{
		{"16'hdead", val.FromUint64(0xdead, 16)},
		{"16'hde_ad", val.FromUint64(0xdead, 16)},
		{"4'd12", val.FromUint64(12, 4)},
		{"6'o17", val.FromUint64(0o17, 6)},
		{"8'b1010", val.FromUint64(10, 8)},
		{"8'b1x0z", mustBits(t, "1x0z", 8)},
		{"8'hx", val.Unknown(8)}, // x-extends to the declared width
		{"4'hz", mustBits(t, "zzzz", 4)},
		{"12'hx0", mustBits(t, "xxxxxxxx0000", 12)},
	}
	for _, tc := range cases {
		got := evalBitsStr(t, tc.src, env)
		if !got.CaseEq(tc.want) || got.Width != tc.want.Width {
			t.Errorf("%s = %s (width %d), want %s (width %d)",
				tc.src, got, got.Width, tc.want, tc.want.Width)
		}
	}

	// Known sized literals stay on the two-state path at their declared
	// width.
	n := MustParse("16'hdead")
	v, err := n.Eval(nil)
	if err != nil || v.Bits != 0xdead || v.Width != 16 {
		t.Fatalf("two-state 16'hdead = %v, %v", v, err)
	}

	// Four-state literals parse but are rejected by the two-state
	// evaluator and the compiler, forcing the general path.
	n = MustParse("sig === 8'b1x0z")
	if _, err := n.Eval(ResolverFunc(func(string) (eval.Value, error) {
		return eval.Make(0, 8, false), nil
	})); err == nil {
		t.Fatal("two-state Eval of a four-state literal should error")
	}
	if _, err := Compile(n); err == nil {
		t.Fatal("Compile of a four-state literal should error")
	}

	for _, bad := range []string{"8'b2", "99999999'h0", "8'hgg", "0'd0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestEvalBitsMatchesTwoState is the in-package differential check: on
// fully known ≤64-bit inputs the four-state evaluator must produce
// bit-identical results to the two-state tree-walk, including widths.
func TestEvalBitsMatchesTwoState(t *testing.T) {
	exprs := []string{
		"a + b", "a - b", "a * b", "b / (a | 1)", "b % (a | 1)",
		"a & b", "a | b", "a ^ b", "~a", "-b", "!a",
		"a == b", "a != b", "a === b", "a !== b",
		"a < b", "a <= b", "a > b", "a >= b",
		"a << 3", "a >> 2", "a << b[2:0]",
		"a && b", "a || b", "!a && (b || c)",
		"a ? b : c", "(a & 0xff) == 0x80 ? b + 1 : c - 1",
		"a[7:0] + b[15:8]", "a[31]", "(a + b) * (c & 0xf)",
		"a === 16'hdead", "a[7:0] !== 8'hff",
	}
	rng := rand.New(rand.NewSource(7))
	for _, src := range exprs {
		n := MustParse(src)
		for trial := 0; trial < 50; trial++ {
			vals := map[string]eval.Value{
				"a": eval.Make(rng.Uint64(), 32, false),
				"b": eval.Make(rng.Uint64(), 16, false),
				"c": eval.Make(rng.Uint64(), 64, false),
			}
			want, err := n.Eval(ResolverFunc(func(name string) (eval.Value, error) {
				return vals[name], nil
			}))
			got, gerr := EvalBits(n, BitsResolverFunc(func(name string) (val.Bits, error) {
				return vals[name].ToBits(), nil
			}))
			if (err != nil) != (gerr != nil) {
				t.Fatalf("%s: error mismatch: two-state %v, four-state %v", src, err, gerr)
			}
			if err != nil {
				continue
			}
			if !got.CaseEq(want.ToBits()) || got.Width != want.ToBits().Width {
				t.Fatalf("%s: four-state %s (width %d) != two-state %s (width %d)",
					src, got, got.Width, want, want.Width)
			}
		}
	}
}
