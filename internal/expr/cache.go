package expr

import "sync"

// This file implements the per-condition compile cache. A design with N
// instances of one generated statement arms N breakpoints whose enable
// conditions are the same source string; without the cache each arm
// re-lexes, re-parses, re-folds, re-deduplicates Names and re-compiles
// the identical expression. Parsed nodes and compiled programs are
// immutable, so one cached copy is shared by every breakpoint instance
// (per-instance state — operand slots, resolved paths, machines — lives
// with the caller); re-arming after a breakpoint change then rebuilds
// the schedule from cached programs instead of from source.

// parseCompileCacheLimit bounds the cache; debuggers see a bounded set
// of distinct condition sources (the symbol table's enables plus what
// the user types), so eviction is a rare safety valve, not a policy.
const parseCompileCacheLimit = 4096

var (
	pcMu    sync.Mutex
	pcCache = map[string]*pcEntry{}
	pcHits  uint64
)

type pcEntry struct {
	node Node
	prog *Program
}

// ParseCompile parses and compiles one expression, returning a shared
// immutable (AST, program) pair from the process-wide cache when the
// identical source was compiled before. An expression that parses but
// cannot compile — it uses four-state or >64-bit constructs only the
// general evaluator supports (8'b1x0z literals, wide constants) —
// returns a nil Program: callers run it through EvalBits exclusively.
// Parse errors are not cached.
func ParseCompile(src string) (Node, *Program, error) {
	pcMu.Lock()
	if e, ok := pcCache[src]; ok {
		pcHits++
		pcMu.Unlock()
		return e.node, e.prog, nil
	}
	pcMu.Unlock()
	n, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	p, err := Compile(n)
	if err != nil {
		p = nil // general-evaluator-only expression
	}
	pcMu.Lock()
	if len(pcCache) >= parseCompileCacheLimit {
		pcCache = map[string]*pcEntry{}
	}
	pcCache[src] = &pcEntry{node: n, prog: p}
	pcMu.Unlock()
	return n, p, nil
}

// CacheStats reports (entries, hits) for the parse/compile cache.
func CacheStats() (entries int, hits uint64) {
	pcMu.Lock()
	defer pcMu.Unlock()
	return len(pcCache), pcHits
}
