// Package expr implements the small C-like expression language used by
// the debugger: enable conditions stored in the symbol table (rendered
// by ir.RenderInfix) and user-supplied conditional-breakpoint / watch
// expressions both parse into an AST evaluated against a name resolver
// that fetches live signal values.
package expr

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/eval"
	"repro/internal/ir"
	"repro/internal/val"
)

// Resolver maps a (possibly dotted) name to its current value.
type Resolver interface {
	Resolve(name string) (eval.Value, error)
}

// ResolverFunc adapts a function to the Resolver interface.
type ResolverFunc func(name string) (eval.Value, error)

// Resolve implements Resolver.
func (f ResolverFunc) Resolve(name string) (eval.Value, error) { return f(name) }

// Node is a parsed expression node.
type Node interface {
	// Eval computes the node's value against a resolver.
	Eval(r Resolver) (eval.Value, error)
	// evalBits computes the node's value with four-state semantics (see
	// evalbits.go); subtrees whose operands are all fully known and at
	// most 64 bits wide run through the exact same eval.Prim calls as
	// Eval, so the general path is bit-identical on two-state inputs.
	evalBits(r BitsResolver) (bval, error)
	// Names reports the identifiers the expression references.
	names(into map[string]bool)
	String() string
}

// Names returns the sorted set of identifiers referenced by the node.
func Names(n Node) []string {
	set := map[string]bool{}
	n.names(set)
	var out []string
	for k := range set {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type numNode struct {
	v eval.Value
}

func (n numNode) Eval(Resolver) (eval.Value, error) { return n.v, nil }
func (n numNode) names(map[string]bool)             {}
func (n numNode) String() string                    { return n.v.String() }

// xnumNode is a literal the two-state fast path cannot represent:
// wider than 64 bits or carrying x/z digits (128'hdead_beef, 8'b1x0z).
// Eval and Compile reject it, which routes the whole expression to the
// general four-state evaluator.
type xnumNode struct {
	b val.Bits
}

func (n xnumNode) Eval(Resolver) (eval.Value, error) {
	return eval.Value{}, fmt.Errorf("expr: literal %s needs the four-state evaluator", n.b.String())
}
func (n xnumNode) names(map[string]bool) {}
func (n xnumNode) String() string        { return n.b.String() }

type nameNode struct {
	name string
}

func (n nameNode) Eval(r Resolver) (eval.Value, error) { return r.Resolve(n.name) }
func (n nameNode) names(m map[string]bool)             { m[n.name] = true }
func (n nameNode) String() string                      { return n.name }

type unaryNode struct {
	op string
	x  Node
}

func (n unaryNode) names(m map[string]bool) { n.x.names(m) }
func (n unaryNode) String() string          { return "(" + n.op + n.x.String() + ")" }

func (n unaryNode) Eval(r Resolver) (eval.Value, error) {
	v, err := n.x.Eval(r)
	if err != nil {
		return eval.Value{}, err
	}
	return n.apply(v)
}

// apply is the two-state operator body, shared with the four-state
// evaluator's known-operand specialization.
func (n unaryNode) apply(v eval.Value) (eval.Value, error) {
	switch n.op {
	case "~":
		return eval.Prim(ir.OpNot, nil, []eval.Value{v})
	case "!":
		if v.IsTrue() {
			return eval.Make(0, 1, false), nil
		}
		return eval.Make(1, 1, false), nil
	case "-":
		return eval.Prim(ir.OpNeg, nil, []eval.Value{v})
	}
	return eval.Value{}, fmt.Errorf("expr: unknown unary %q", n.op)
}

type binNode struct {
	op   string
	a, b Node
}

func (n binNode) names(m map[string]bool) { n.a.names(m); n.b.names(m) }
func (n binNode) String() string {
	return "(" + n.a.String() + " " + n.op + " " + n.b.String() + ")"
}

var binOps = map[string]ir.PrimOp{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"<": ir.OpLt, "<=": ir.OpLeq, ">": ir.OpGt, ">=": ir.OpGeq,
	"==": ir.OpEq, "!=": ir.OpNeq,
	// On two-state values case equality coincides with logical equality
	// (there are no x/z bits to distinguish); the four-state evaluator
	// gives === its full bit-for-bit semantics.
	"===": ir.OpEq, "!==": ir.OpNeq,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor,
	"<<": ir.OpDshl, ">>": ir.OpDshr,
}

func (n binNode) Eval(r Resolver) (eval.Value, error) {
	a, err := n.a.Eval(r)
	if err != nil {
		return eval.Value{}, err
	}
	// Short-circuit the logical forms.
	switch n.op {
	case "&&":
		if !a.IsTrue() {
			return eval.Make(0, 1, false), nil
		}
		b, err := n.b.Eval(r)
		if err != nil {
			return eval.Value{}, err
		}
		if b.IsTrue() {
			return eval.Make(1, 1, false), nil
		}
		return eval.Make(0, 1, false), nil
	case "||":
		if a.IsTrue() {
			return eval.Make(1, 1, false), nil
		}
		b, err := n.b.Eval(r)
		if err != nil {
			return eval.Value{}, err
		}
		if b.IsTrue() {
			return eval.Make(1, 1, false), nil
		}
		return eval.Make(0, 1, false), nil
	}
	b, err := n.b.Eval(r)
	if err != nil {
		return eval.Value{}, err
	}
	return applyBin(n.op, a, b)
}

// applyBin applies a non-short-circuit binary operator to two-state
// values. Shared by the tree-walk and the four-state evaluator's
// known-operand specialization so the two stay bit-identical.
func applyBin(opText string, a, b eval.Value) (eval.Value, error) {
	op, ok := binOps[opText]
	if !ok {
		return eval.Value{}, fmt.Errorf("expr: unknown operator %q", opText)
	}
	// Dynamic shifts in this language cap the amount operand at 6 bits
	// worth of magnitude to satisfy eval's width model.
	if op == ir.OpDshl {
		b = eval.Make(b.Bits, minInt(b.Width, 6), false)
	}
	return eval.Prim(op, nil, []eval.Value{a, b})
}

type ternaryNode struct {
	cond, t, f Node
}

func (n ternaryNode) names(m map[string]bool) { n.cond.names(m); n.t.names(m); n.f.names(m) }
func (n ternaryNode) String() string {
	return "(" + n.cond.String() + " ? " + n.t.String() + " : " + n.f.String() + ")"
}

func (n ternaryNode) Eval(r Resolver) (eval.Value, error) {
	c, err := n.cond.Eval(r)
	if err != nil {
		return eval.Value{}, err
	}
	if c.IsTrue() {
		return n.t.Eval(r)
	}
	return n.f.Eval(r)
}

type bitsNode struct {
	x      Node
	hi, lo int
}

func (n bitsNode) names(m map[string]bool) { n.x.names(m) }
func (n bitsNode) String() string {
	if n.hi == n.lo {
		return fmt.Sprintf("%s[%d]", n.x, n.hi)
	}
	return fmt.Sprintf("%s[%d:%d]", n.x, n.hi, n.lo)
}

func (n bitsNode) Eval(r Resolver) (eval.Value, error) {
	v, err := n.x.Eval(r)
	if err != nil {
		return eval.Value{}, err
	}
	return n.apply(v)
}

// apply is the two-state bit-select body, shared with the four-state
// evaluator's known-operand specialization.
func (n bitsNode) apply(v eval.Value) (eval.Value, error) {
	if n.hi >= v.Width {
		// Be forgiving about widths the resolver reports: extract what
		// exists, zero-extend the rest.
		return eval.Make(v.Bits>>uint(n.lo), n.hi-n.lo+1, false), nil
	}
	return eval.Prim(ir.OpBits, []int{n.hi, n.lo}, []eval.Value{v})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parse parses one expression.
func Parse(src string) (Node, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.lex.err; err != nil {
		return nil, err
	}
	n, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if p.lex.peek().kind != tkEOF {
		return nil, fmt.Errorf("expr: unexpected trailing input %q", p.lex.peek().text)
	}
	return n, nil
}

// MustParse is Parse, panicking on error; for statically known inputs.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

// Eval parses and evaluates in one step.
func Eval(src string, r Resolver) (eval.Value, error) {
	n, err := Parse(src)
	if err != nil {
		return eval.Value{}, err
	}
	return n.Eval(r)
}

type parser struct {
	lex *lexer
}

// Precedence climbing, lowest first.
var precedence = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!=", "===", "!=="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseTernary() (Node, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.lex.peek().kind == tkOp && p.lex.peek().text == "?" {
		p.lex.next()
		t, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if tok := p.lex.next(); tok.kind != tkOp || tok.text != ":" {
			return nil, fmt.Errorf("expr: expected ':' in ternary, got %q", tok.text)
		}
		f, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return ternaryNode{cond: cond, t: t, f: f}, nil
	}
	return cond, nil
}

func (p *parser) parseBinary(level int) (Node, error) {
	if level >= len(precedence) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		tok := p.lex.peek()
		if tok.kind != tkOp || !contains(precedence[level], tok.text) {
			return left, nil
		}
		p.lex.next()
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = binNode{op: tok.text, a: left, b: right}
	}
}

func contains(set []string, s string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Node, error) {
	tok := p.lex.peek()
	if tok.kind == tkOp && (tok.text == "~" || tok.text == "!" || tok.text == "-") {
		p.lex.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: tok.text, x: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Node, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.lex.peek()
		if tok.kind != tkOp || tok.text != "[" {
			return base, nil
		}
		p.lex.next()
		hiTok := p.lex.next()
		if hiTok.kind != tkNum {
			return nil, fmt.Errorf("expr: expected bit index, got %q", hiTok.text)
		}
		hi, _ := strconv.Atoi(hiTok.text)
		lo := hi
		if p.lex.peek().kind == tkOp && p.lex.peek().text == ":" {
			p.lex.next()
			loTok := p.lex.next()
			if loTok.kind != tkNum {
				return nil, fmt.Errorf("expr: expected bit index, got %q", loTok.text)
			}
			lo, _ = strconv.Atoi(loTok.text)
		}
		if tok := p.lex.next(); tok.kind != tkOp || tok.text != "]" {
			return nil, fmt.Errorf("expr: expected ']', got %q", tok.text)
		}
		if lo > hi {
			return nil, fmt.Errorf("expr: bit range [%d:%d] reversed", hi, lo)
		}
		base = bitsNode{x: base, hi: hi, lo: lo}
	}
}

func (p *parser) parsePrimary() (Node, error) {
	tok := p.lex.next()
	switch tok.kind {
	case tkNum:
		if tick := strings.IndexByte(tok.text, '\''); tick >= 0 {
			return parseSizedLiteral(tok.text, tick)
		}
		var v uint64
		var err error
		switch {
		case strings.HasPrefix(tok.text, "0x"), strings.HasPrefix(tok.text, "0X"):
			v, err = strconv.ParseUint(tok.text[2:], 16, 64)
		case strings.HasPrefix(tok.text, "0b"), strings.HasPrefix(tok.text, "0B"):
			v, err = strconv.ParseUint(tok.text[2:], 2, 64)
		default:
			v, err = strconv.ParseUint(tok.text, 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q", tok.text)
		}
		// Literals get a compact width so bitwise ops behave naturally.
		w := 1
		for (uint64(1)<<uint(w))-1 < v && w < 64 {
			w++
		}
		return numNode{v: eval.Make(v, w, false)}, nil
	case tkName:
		return nameNode{name: tok.text}, nil
	case tkOp:
		if tok.text == "(" {
			inner, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			if tok := p.lex.next(); tok.kind != tkOp || tok.text != ")" {
				return nil, fmt.Errorf("expr: expected ')', got %q", tok.text)
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("expr: unexpected token %q", tok.text)
}

// maxLiteralWidth bounds declared sized-literal widths so a typo like
// 99999999'h0 cannot allocate unbounded planes.
const maxLiteralWidth = 1 << 16

// parseSizedLiteral parses a Verilog sized literal (8'b1x0z, 16'hdead,
// 4'd12, 6'o17) whose token text has a ' at index tick. Fully known
// values at or below 64 bits become ordinary two-state literals at
// exactly the declared width — so `sig === 8'hff` compares at width 8
// — while wider literals or ones carrying x/z digits become
// four-state literals only the general evaluator accepts.
func parseSizedLiteral(text string, tick int) (Node, error) {
	size, err := strconv.Atoi(strings.ReplaceAll(text[:tick], "_", ""))
	if err != nil || size < 1 || size > maxLiteralWidth {
		return nil, fmt.Errorf("expr: bad size in literal %q", text)
	}
	if tick+2 > len(text)-1 {
		return nil, fmt.Errorf("expr: sized literal %q has no digits", text)
	}
	base := text[tick+1]
	digits := strings.ReplaceAll(text[tick+2:], "_", "")
	if digits == "" {
		return nil, fmt.Errorf("expr: sized literal %q has no digits", text)
	}
	var b val.Bits
	if base == 'd' || base == 'D' {
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad decimal literal %q", text)
		}
		b = val.FromUint64(v, size)
	} else {
		var perDigit int
		switch base {
		case 'b', 'B':
			perDigit = 1
		case 'o', 'O':
			perDigit = 3
		case 'h', 'H':
			perDigit = 4
		default:
			return nil, fmt.Errorf("expr: unknown base %q in literal %q", string(base), text)
		}
		// Expand each digit to its binary form (x/z digits expand to
		// perDigit unknown bits) and let val.ParseVCD apply Verilog
		// left-extension at the declared width.
		var bin strings.Builder
		for i := 0; i < len(digits); i++ {
			c := digits[i]
			if isXZDigit(c) {
				for k := 0; k < perDigit; k++ {
					bin.WriteByte(c | 0x20)
				}
				continue
			}
			d, err := strconv.ParseUint(string(c), 16, 8)
			if err != nil || d >= 1<<perDigit {
				return nil, fmt.Errorf("expr: bad digit %q in literal %q", string(c), text)
			}
			for k := perDigit - 1; k >= 0; k-- {
				if d&(1<<k) != 0 {
					bin.WriteByte('1')
				} else {
					bin.WriteByte('0')
				}
			}
		}
		var perr error
		b, perr = val.ParseVCD(bin.String(), size)
		if perr != nil {
			return nil, perr
		}
	}
	if v, ok := eval.FromBits(b); ok {
		return numNode{v: v}, nil
	}
	return xnumNode{b: b}, nil
}
