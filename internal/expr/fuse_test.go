package expr

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
)

// fuseExec runs a fused schedule against per-slot values and returns
// the per-condition results.
func fuseExec(fs *FusedSchedule, slotVals []eval.Value) (results []eval.Value, ok []bool) {
	operands := make([]eval.Value, len(fs.Slots))
	opsOK := make([]bool, len(fs.Slots))
	for i, s := range fs.Slots {
		operands[i] = slotVals[s]
		opsOK[i] = true
	}
	shVals := make([]eval.Value, fs.Prog.NumShared)
	shOK := make([]bool, fs.Prog.NumShared)
	results = make([]eval.Value, len(fs.Prog.Conds))
	ok = make([]bool, len(fs.Prog.Conds))
	var m eval.FusedMachine
	m.ExecShared(&fs.Prog, operands, opsOK, shVals, shOK)
	m.ExecConds(&fs.Prog, operands, opsOK, shVals, shOK, 0, len(fs.Prog.Conds), nil, results, ok)
	return results, ok
}

// refCond evaluates one fused condition by the exact per-condition
// compiled path: enable, then (only when the enable holds) the user
// condition. The bool reports the combined truth value.
func refCond(c FusedCondition, slotVals []eval.Value, m *eval.Machine) (bool, error) {
	gather := func(p *Program, slots []int) []eval.Value {
		ops := make([]eval.Value, len(p.Deps))
		for i := range ops {
			ops[i] = slotVals[slots[i]]
		}
		return ops
	}
	if c.Enable != nil {
		v, err := c.Enable.Exec(m, gather(c.Enable, c.EnableSlots))
		if err != nil {
			return false, err
		}
		if !v.IsTrue() {
			return false, nil
		}
	}
	if c.Cond != nil {
		v, err := c.Cond.Exec(m, gather(c.Cond, c.CondSlots))
		if err != nil {
			return false, err
		}
		return v.IsTrue(), nil
	}
	return true, nil
}

// compileCond builds a FusedCondition from optional enable/cond ASTs
// and a per-condition name → global slot mapping.
func compileCond(t *testing.T, enable, cond Node, slotOf map[string]int) FusedCondition {
	t.Helper()
	var fc FusedCondition
	mk := func(n Node) (*Program, []int) {
		p, err := Compile(n)
		if err != nil {
			t.Fatalf("compile %s: %v", n, err)
		}
		slots := make([]int, len(p.Deps))
		for i, d := range p.Deps {
			slots[i] = slotOf[d]
		}
		return p, slots
	}
	if enable != nil {
		fc.Enable, fc.EnableSlots = mk(enable)
	}
	if cond != nil {
		fc.Cond, fc.CondSlots = mk(cond)
	}
	return fc
}

// TestFuseDifferential pins the fuser's parity contract against the
// per-condition compiled path over random condition sets: a condition
// the fused program reports sound (ok) must match the reference truth
// value exactly, and a condition whose reference evaluation errors must
// never be reported sound — poisoning may be conservative (a hoisted
// subexpression can fault where the original would have short-circuited
// past it) but must not be optimistic.
func TestFuseDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	names := []string{"a", "b", "c", "d"}
	const numSlots = 6
	sharedTotal := 0
	for trial := 0; trial < 300; trial++ {
		k := 1 + r.Intn(10)
		conds := make([]FusedCondition, k)
		for i := range conds {
			slotOf := map[string]int{}
			for _, n := range names {
				// Small slot pool so structurally equal conditions often
				// land on the same slots and CSE actually fires.
				slotOf[n] = r.Intn(numSlots)
			}
			var enable, cond Node
			if r.Intn(4) != 0 {
				enable = randNode(r, names, 3)
			}
			if r.Intn(2) == 0 {
				cond = randNode(r, names, 3)
			}
			conds[i] = compileCond(t, enable, cond, slotOf)
		}
		fs, err := Fuse(conds)
		if err != nil {
			t.Fatalf("trial %d: fuse: %v", trial, err)
		}
		sharedTotal += fs.Stats.SharedSegs
		for env := 0; env < 3; env++ {
			slotVals := make([]eval.Value, numSlots)
			for s := range slotVals {
				slotVals[s] = eval.Make(r.Uint64(), 1+r.Intn(64), r.Intn(2) == 0)
			}
			results, ok := fuseExec(fs, slotVals)
			var m eval.Machine
			for ci := range conds {
				want, errW := refCond(conds[ci], slotVals, &m)
				if errW != nil {
					if ok[ci] {
						t.Fatalf("trial %d cond %d: reference errs (%v) but fused reports sound %v",
							trial, ci, errW, results[ci])
					}
					continue
				}
				if ok[ci] && results[ci].IsTrue() != want {
					t.Fatalf("trial %d cond %d: fused=%v want=%v", trial, ci, results[ci].IsTrue(), want)
				}
			}
		}
	}
	if sharedTotal == 0 {
		t.Fatal("no shared segments hoisted across any trial; CSE never exercised")
	}
}

// FuzzFuse is the coverage-guided version of TestFuseDifferential: two
// fuzz-chosen condition sources (shared slot pool, so common structure
// fuses) against the per-condition reference. The corpus seeds cover
// the interesting shapes — hoistable common enables, guarded-only
// sharing, ternaries, slices.
func FuzzFuse(f *testing.F) {
	f.Add("(x + y) > 3", "(x + y) < 9", uint64(1))
	f.Add("a == 0 && (b << a) > 1", "a == 1 && (b << a) > 1", uint64(2))
	f.Add("en ? cnt == 5 : cnt == 9", "en && cnt[3:0] != 2", uint64(3))
	f.Add("a % b == 0", "a / b > 1", uint64(4))
	// Sized literals and case equality: two-state sized forms compile
	// (and fuse); four-state / >64-bit literals bail at Compile, seeding
	// the parser side of the corpus.
	f.Add("x === 16'hdead", "x !== 16'hbeef && x > 0", uint64(5))
	f.Add("a === 8'b1x0z", "a == 130'h3deadbeefcafebabe0123456789abcdef0", uint64(6))
	f.Fuzz(func(t *testing.T, src1, src2 string, seed uint64) {
		if len(src1) > 256 || len(src2) > 256 {
			return
		}
		const numSlots = 4
		var conds []FusedCondition
		slotOf := map[string]int{}
		for _, src := range []string{src1, src2} {
			n, err := Parse(src)
			if err != nil {
				return
			}
			p, err := Compile(n)
			if err != nil {
				return
			}
			slots := make([]int, len(p.Deps))
			for i, d := range p.Deps {
				if _, seen := slotOf[d]; !seen {
					slotOf[d] = len(slotOf) % numSlots
				}
				slots[i] = slotOf[d]
			}
			conds = append(conds, FusedCondition{Enable: p, EnableSlots: slots})
		}
		fs, err := Fuse(conds)
		if err != nil {
			t.Fatalf("fuse: %v", err)
		}
		rng := seed
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for env := 0; env < 2; env++ {
			slotVals := make([]eval.Value, numSlots)
			for s := range slotVals {
				slotVals[s] = eval.Make(next(), 1+int(next()%64), next()%2 == 0)
			}
			results, ok := fuseExec(fs, slotVals)
			var m eval.Machine
			for ci := range conds {
				want, errW := refCond(conds[ci], slotVals, &m)
				if errW != nil {
					if ok[ci] {
						t.Fatalf("cond %d (%q/%q): reference errs (%v) but fused sound %v",
							ci, src1, src2, errW, results[ci])
					}
					continue
				}
				if ok[ci] && results[ci].IsTrue() != want {
					t.Fatalf("cond %d (%q/%q): fused=%v want=%v",
						ci, src1, src2, results[ci].IsTrue(), want)
				}
			}
		}
	})
}

// TestFuseCSE checks the sharing rules directly: identical structure
// over identical slots is hoisted once and read everywhere, while
// sibling instances (same structure, different slots) share nothing.
func TestFuseCSE(t *testing.T) {
	slotsA := map[string]int{"x": 0, "y": 1}
	enable := MustParse("(x + y) > 3")
	cond := MustParse("(x + y) < 9")
	same := []FusedCondition{
		compileCond(t, enable, nil, slotsA),
		compileCond(t, enable, cond, slotsA),
	}
	fs, err := Fuse(same)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Stats.SharedSegs == 0 || fs.Stats.SharedReads < 2 {
		t.Fatalf("same-slot conditions should share: %+v", fs.Stats)
	}
	if fs.Stats.Operands != 2 {
		t.Fatalf("operand table should dedup by slot: %+v", fs.Stats)
	}
	slotVals := []eval.Value{eval.Make(2, 8, false), eval.Make(5, 8, false)}
	results, ok := fuseExec(fs, slotVals)
	// x+y = 7: enable true for both; second condition also wants < 9.
	if !ok[0] || !ok[1] || !results[0].IsTrue() || !results[1].IsTrue() {
		t.Fatalf("results = %v ok = %v", results, ok)
	}

	siblings := []FusedCondition{
		compileCond(t, enable, nil, map[string]int{"x": 0, "y": 1}),
		compileCond(t, enable, nil, map[string]int{"x": 2, "y": 3}),
	}
	fs2, err := Fuse(siblings)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Stats.SharedSegs != 0 {
		t.Fatalf("sibling instances over different slots must not share: %+v", fs2.Stats)
	}
}

// TestFuseGuardedNotHoisted checks the short-circuit safety rule: a
// subexpression that only ever occurs behind a guard (&&/|| right side,
// ternary arm) never registers a CSE candidate, so two conditions whose
// only common structure is guarded share nothing. (A twice-unguarded
// WHOLE condition may legitimately be hoisted — its internal
// short-circuit jumps travel with it into the prelude segment.)
func TestFuseGuardedNotHoisted(t *testing.T) {
	slots := map[string]int{"a": 0, "b": 1}
	// (b << a) > 1 appears in both conditions but only on && right
	// sides, and the unguarded left sides differ — nothing may be
	// shared.
	conds := []FusedCondition{
		compileCond(t, MustParse("a == 0 && (b << a) > 1"), nil, slots),
		compileCond(t, MustParse("a == 1 && (b << a) > 1"), nil, slots),
	}
	fs, err := Fuse(conds)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Stats.SharedSegs != 0 {
		t.Fatalf("guarded-only common structure was hoisted: %+v", fs.Stats)
	}
	slotVals := []eval.Value{eval.Make(0, 8, false), eval.Make(3, 8, false)}
	results, ok := fuseExec(fs, slotVals)
	for ci := range conds {
		var m eval.Machine
		want, errW := refCond(conds[ci], slotVals, &m)
		if errW != nil {
			t.Fatalf("cond %d: unexpected reference error %v", ci, errW)
		}
		if !ok[ci] || results[ci].IsTrue() != want {
			t.Fatalf("cond %d: fused=(%v, ok=%v) want=%v", ci, results[ci].IsTrue(), ok[ci], want)
		}
	}
}

// TestFusePoisonIsolation checks per-segment error isolation. Compiled
// expr primitives cannot fault at run time (division by zero yields
// zero, dynamic shifts cap their width), so the poison source is the
// one the scheduler actually sees: a failed operand fetch. A condition
// reading the failed operand — directly or through a shared segment —
// reports unsound; unrelated conditions stay sound.
func TestFusePoisonIsolation(t *testing.T) {
	shared := MustParse("(a + b) > 3") // hoisted: unguarded in two conditions
	conds := []FusedCondition{
		compileCond(t, shared, nil, map[string]int{"a": 0, "b": 1}),
		compileCond(t, shared, MustParse("b == 5"), map[string]int{"a": 0, "b": 1}),
		compileCond(t, MustParse("c == 9"), nil, map[string]int{"c": 2}),
	}
	fs, err := Fuse(conds)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Stats.SharedSegs == 0 {
		t.Fatalf("expected the common enable to be hoisted: %+v", fs.Stats)
	}
	slotVals := []eval.Value{eval.Make(2, 8, false), eval.Make(5, 8, false), eval.Make(9, 8, false)}
	operands := make([]eval.Value, len(fs.Slots))
	opsOK := make([]bool, len(fs.Slots))
	for i, s := range fs.Slots {
		operands[i] = slotVals[s]
		opsOK[i] = s != 0 // slot 0 ("a") failed to fetch
	}
	shVals := make([]eval.Value, fs.Prog.NumShared)
	shOK := make([]bool, fs.Prog.NumShared)
	results := make([]eval.Value, len(fs.Prog.Conds))
	ok := make([]bool, len(fs.Prog.Conds))
	var m eval.FusedMachine
	m.ExecShared(&fs.Prog, operands, opsOK, shVals, shOK)
	m.ExecConds(&fs.Prog, operands, opsOK, shVals, shOK, 0, len(fs.Prog.Conds), nil, results, ok)
	if ok[0] || ok[1] {
		t.Fatalf("conditions reading the failed operand must be poisoned: ok=%v", ok)
	}
	if !ok[2] || !results[2].IsTrue() {
		t.Fatalf("unrelated condition poisoned: ok=%v v=%v", ok[2], results[2])
	}
}

// TestFusedExecZeroAllocs pins the fused hot loop's allocation-free
// property, matching TestExecZeroAllocs for the per-condition machine.
func TestFusedExecZeroAllocs(t *testing.T) {
	slots := map[string]int{"a": 0, "b": 1, "c": 2}
	enable := MustParse("(a + b) % 7 == 3")
	conds := []FusedCondition{
		compileCond(t, enable, MustParse("c > 2"), slots),
		compileCond(t, enable, MustParse("c < 100"), slots),
		compileCond(t, MustParse("(a + b) % 7 != 3"), nil, slots),
	}
	fs, err := Fuse(conds)
	if err != nil {
		t.Fatal(err)
	}
	operands := make([]eval.Value, len(fs.Slots))
	opsOK := make([]bool, len(fs.Slots))
	slotVals := []eval.Value{eval.Make(5, 16, false), eval.Make(12, 16, false), eval.Make(9, 16, false)}
	for i, s := range fs.Slots {
		operands[i], opsOK[i] = slotVals[s], true
	}
	shVals := make([]eval.Value, fs.Prog.NumShared)
	shOK := make([]bool, fs.Prog.NumShared)
	results := make([]eval.Value, len(fs.Prog.Conds))
	ok := make([]bool, len(fs.Prog.Conds))
	var m eval.FusedMachine
	skip := make([]uint64, (len(fs.Prog.Conds)+63)/64)
	allocs := testing.AllocsPerRun(100, func() {
		m.ExecShared(&fs.Prog, operands, opsOK, shVals, shOK)
		m.ExecConds(&fs.Prog, operands, opsOK, shVals, shOK, 0, len(fs.Prog.Conds), skip, results, ok)
	})
	if allocs != 0 {
		t.Fatalf("fused exec allocates %.1f objects per run, want 0", allocs)
	}
}
