package expr

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/eval"
	"repro/internal/ir"
)

// mapResolver resolves names from a fixed table of 32-bit values.
type mapResolver map[string]uint64

func (m mapResolver) Resolve(name string) (eval.Value, error) {
	v, ok := m[name]
	if !ok {
		return eval.Value{}, fmt.Errorf("unknown name %q", name)
	}
	return eval.Make(v, 32, false), nil
}

func evalStr(t *testing.T, src string, r Resolver) eval.Value {
	t.Helper()
	v, err := Eval(src, r)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	r := mapResolver{"a": 10, "b": 3}
	cases := []struct {
		src  string
		want uint64
	}{
		{"a + b", 13},
		{"a - b", 7},
		{"a * b", 30},
		{"a / b", 3},
		{"a % b", 1},
		{"a + b * 2", 16},
		{"(a + b) * 2", 26},
		{"a - b - 2", 5}, // left associative
		{"10 + 0x10", 26},
		{"0b101 + 1", 6},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, r); got.Bits != c.want {
			t.Errorf("%q = %d, want %d", c.src, got.Bits, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	r := mapResolver{"x": 5, "y": 9, "z": 0}
	cases := []struct {
		src  string
		want bool
	}{
		{"x < y", true},
		{"x > y", false},
		{"x <= 5", true},
		{"x >= 6", false},
		{"x == 5", true},
		{"x != 5", false},
		{"x < y && y < 10", true},
		{"x > y || y == 9", true},
		{"!z", true},
		{"!x", false},
		{"z && (1/z) == 1", false}, // short-circuit guards div-by-zero
		{"x == 5 ? 1 : 0", true},
		{"x != 5 ? 1 : 0", false},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, r); got.IsTrue() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got.IsTrue(), c.want)
		}
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	r := mapResolver{"a": 0b1100, "b": 0b1010}
	cases := []struct {
		src  string
		want uint64
	}{
		{"a & b", 0b1000},
		{"a | b", 0b1110},
		{"a ^ b", 0b0110},
		{"a << 2", 0b110000},
		{"a >> 2", 0b11},
		{"a[3]", 1},
		{"a[1]", 0},
		{"a[3:2]", 0b11},
		{"a[3:0]", 0b1100},
		{"~a & 0xF", 0b0011},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src, r); got.Bits != c.want {
			t.Errorf("%q = %#b, want %#b", c.src, got.Bits, c.want)
		}
	}
}

func TestDottedNames(t *testing.T) {
	r := mapResolver{"Top.u0.acc": 42, "io.out.bits": 7}
	if got := evalStr(t, "Top.u0.acc + io.out.bits", r); got.Bits != 49 {
		t.Fatalf("dotted = %d", got.Bits)
	}
	n := MustParse("Top.u0.acc == 42")
	names := Names(n)
	if len(names) != 1 || names[0] != "Top.u0.acc" {
		t.Fatalf("names = %v", names)
	}
}

func TestTernaryNesting(t *testing.T) {
	r := mapResolver{"s": 2}
	got := evalStr(t, "s == 0 ? 10 : s == 1 ? 20 : 30", r)
	if got.Bits != 30 {
		t.Fatalf("nested ternary = %d", got.Bits)
	}
}

func TestRoundTripWithRenderInfix(t *testing.T) {
	// Enable conditions rendered by ir.RenderInfix must parse and
	// evaluate in this language — that contract links the symbol table
	// to the debugger.
	enable := ir.NewPrim(ir.OpAnd,
		ir.Ref{Name: "_T_1"},
		ir.NewPrim(ir.OpNot, ir.Ref{Name: "_T_2"}))
	src := ir.RenderInfix(enable)
	r := mapResolver{"_T_1": 1, "_T_2": 0}
	v, err := Eval(src, r)
	if err != nil {
		t.Fatalf("round trip %q: %v", src, err)
	}
	if !v.IsTrue() {
		t.Fatalf("%q = false, want true", src)
	}
	// Bit-extract rendering round-trips too.
	bit := ir.NewPrimP(ir.OpBits, []int{0, 0}, ir.Ref{Name: "data"})
	src2 := ir.RenderInfix(bit)
	v2, err := Eval(src2, mapResolver{"data": 3})
	if err != nil || v2.Bits != 1 {
		t.Fatalf("%q = %v, %v", src2, v2, err)
	}
	// Mux rendering.
	mux := ir.Mux{Cond: ir.Ref{Name: "c"}, T: ir.ConstUInt(4, 4), F: ir.ConstUInt(9, 4)}
	v3, err := Eval(ir.RenderInfix(mux), mapResolver{"c": 0})
	if err != nil || v3.Bits != 9 {
		t.Fatalf("mux render = %v, %v", v3, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "a[", "a[3:", "a[1:3]", "a ? 1", "@", "1 2", "a b",
		"0xZZ", "? 1 : 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	r := mapResolver{}
	if _, err := Eval("ghost + 1", r); err == nil {
		t.Fatal("unknown name evaluated")
	}
	if _, err := Eval("a[100]", mapResolver{"a": 1}); err != nil {
		// Forgiving width handling: high bits read as zero.
		t.Fatalf("wide bit extract: %v", err)
	}
}

func TestNamesCollection(t *testing.T) {
	n := MustParse("(a & b) | (c ? d : a)")
	names := Names(n)
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if names[i] != want {
			t.Fatalf("names = %v", names)
		}
	}
}

func TestStringRendering(t *testing.T) {
	n := MustParse("a + b * c")
	if n.String() != "(a + (b * c))" {
		t.Fatalf("render = %s", n.String())
	}
	if MustParse("x[3:1]").String() != "x[3:1]" {
		t.Fatalf("bits render = %s", MustParse("x[3:1]").String())
	}
}

// Property: parsing the rendered form of a parsed expression yields the
// same evaluation result (parse/render fixpoint).
func TestParseRenderFixpointProperty(t *testing.T) {
	r := mapResolver{"a": 123, "b": 45}
	exprs := []string{
		"a + b", "a & b | 3", "a == b", "a[7:2] ^ b[4:0]",
		"a < b ? a : b", "~a & 0xFF", "a << 2", "a % (b + 1)",
	}
	f := func(pick uint8) bool {
		src := exprs[int(pick)%len(exprs)]
		n1, err := Parse(src)
		if err != nil {
			return false
		}
		n2, err := Parse(n1.String())
		if err != nil {
			return false
		}
		v1, err1 := n1.Eval(r)
		v2, err2 := n2.Eval(r)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1.Bits == v2.Bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
