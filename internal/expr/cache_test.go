package expr

import (
	"testing"

	"repro/internal/eval"
)

// TestParseCompileCacheShares pins the compile cache's contract: the
// same source returns the same shared Program (so N instances of one
// statement compile once), and the shared program still executes
// correctly.
func TestParseCompileCacheShares(t *testing.T) {
	src := "cache_probe_a + cache_probe_b == 9"
	_, p1, err := ParseCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	_, hitsBefore := CacheStats()
	n2, p2, err := ParseCompile(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second ParseCompile returned a distinct Program; cache missed")
	}
	if _, hits := CacheStats(); hits != hitsBefore+1 {
		t.Fatalf("hit counter did not advance: %d -> %d", hitsBefore, hits)
	}
	// The shared program is usable by independent machines.
	env := envResolver{
		"cache_probe_a": eval.Make(4, 8, false),
		"cache_probe_b": eval.Make(5, 8, false),
	}
	want, err := n2.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	var m eval.Machine
	got, err := execCompiled(t, p2, &m, env)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cached program = %#v, want %#v", got, want)
	}
}

func TestParseCompileCacheErrorsNotCached(t *testing.T) {
	if _, _, err := ParseCompile("1 +"); err == nil {
		t.Fatal("expected parse error")
	}
	entries, _ := CacheStats()
	if _, _, err := ParseCompile("1 +"); err == nil {
		t.Fatal("expected parse error")
	}
	if after, _ := CacheStats(); after != entries {
		t.Fatal("error result was cached")
	}
}
