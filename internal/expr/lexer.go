package expr

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkNum
	tkName
	tkOp
)

type token struct {
	kind tokenKind
	text string
}

type lexer struct {
	toks []token
	pos  int
	err  error
}

// threeCharOps are the case-equality operators, checked before the
// two-character set so "===" never lexes as "==" "=".
var threeCharOps = []string{"===", "!=="}

// twoCharOps are the multi-character operators, checked before single
// characters.
var twoCharOps = []string{"==", "!=", "<=", ">=", "<<", ">>", "&&", "||"}

func newLexer(src string) *lexer {
	lx := &lexer{}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9':
			j := i + 1
			// hex/binary prefixes
			if c == '0' && j < len(src) && (src[j] == 'x' || src[j] == 'X' || src[j] == 'b' || src[j] == 'B') {
				j++
			}
			for j < len(src) && (isHexDigit(src[j]) || src[j] == '_') {
				j++
			}
			// Verilog sized literal: the size run is followed by 'b / 'h /
			// 'd / 'o and digits that may include x/z (8'b1x0z, 16'hdead).
			if j < len(src) && src[j] == '\'' && j+1 < len(src) && isBaseChar(src[j+1]) {
				j += 2
				for j < len(src) && (isHexDigit(src[j]) || src[j] == '_' || isXZDigit(src[j])) {
					j++
				}
			}
			lx.toks = append(lx.toks, token{tkNum, src[i:j]})
			i = j
		case isNameStart(rune(c)):
			j := i + 1
			for j < len(src) && isNamePart(rune(src[j])) {
				j++
			}
			lx.toks = append(lx.toks, token{tkName, src[i:j]})
			i = j
		default:
			matched := false
			if i+2 < len(src) {
				three := src[i : i+3]
				for _, op := range threeCharOps {
					if three == op {
						lx.toks = append(lx.toks, token{tkOp, op})
						i += 3
						matched = true
						break
					}
				}
			}
			if matched {
				continue
			}
			if i+1 < len(src) {
				two := src[i : i+2]
				for _, op := range twoCharOps {
					if two == op {
						lx.toks = append(lx.toks, token{tkOp, op})
						i += 2
						matched = true
						break
					}
				}
			}
			if matched {
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '&', '|', '^', '~', '!',
				'(', ')', '[', ']', '?', ':':
				lx.toks = append(lx.toks, token{tkOp, string(c)})
				i++
			default:
				lx.err = fmt.Errorf("expr: illegal character %q", string(c))
				return lx
			}
		}
	}
	lx.toks = append(lx.toks, token{tkEOF, ""})
	return lx
}

// Dotted identifiers (a.b.c) are names; dots are part of the name so
// hierarchical signal paths parse as single identifiers.
func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '$'
}

func isNamePart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '.'
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// isBaseChar reports a sized-literal base character (after the ').
func isBaseChar(c byte) bool {
	switch c {
	case 'b', 'B', 'h', 'H', 'd', 'D', 'o', 'O':
		return true
	}
	return false
}

// isXZDigit reports an unknown-bit digit inside a sized literal.
func isXZDigit(c byte) bool {
	return c == 'x' || c == 'X' || c == 'z' || c == 'Z'
}

func (lx *lexer) peek() token {
	return lx.toks[lx.pos]
}

func (lx *lexer) next() token {
	t := lx.toks[lx.pos]
	if lx.pos < len(lx.toks)-1 {
		lx.pos++
	}
	return t
}
