package expr

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/ir"
)

// This file lowers parsed expression ASTs into flat register programs
// (eval.Prog). The debugger compiles every breakpoint and watchpoint
// condition once at insertion time and executes the compiled form on
// each clock edge, replacing the tree-walking Node.Eval in the hot loop
// (which remains as the reference implementation — see the differential
// test in compile_test.go).

// Program is a compiled expression: a register program plus the
// deduplicated list of signal dependencies it reads.
type Program struct {
	Prog eval.Prog
	// Deps are the identifiers the expression references, deduplicated
	// and sorted. Exec's operands[i] must hold the current value of
	// Deps[i]; callers prefetch all dependencies in one batched backend
	// read and evaluate with no further signal access.
	Deps []string
	// Folded is the constant-folded AST the program was compiled from —
	// the exact tree the code implements (Deps == Names(Folded)). The
	// schedule fuser recompiles from it so fused code inherits the same
	// folding; it is immutable and safe to share across users.
	Folded Node
}

// Exec runs the compiled program on a machine against pre-fetched
// operand values ordered like Deps.
func (p *Program) Exec(m *eval.Machine, operands []eval.Value) (eval.Value, error) {
	return m.Exec(&p.Prog, operands)
}

// Compile lowers a parsed expression into a register program, folding
// constant subexpressions at compile time. Evaluation semantics are
// bit-exact with Node.Eval, including the short-circuit behavior of
// &&, || and ?: (the skipped side is never executed).
func Compile(n Node) (*Program, error) {
	n = fold(n)
	deps := Names(n)
	c := &compiler{depIdx: make(map[string]int, len(deps))}
	for i, d := range deps {
		c.depIdx[d] = i
	}
	if err := c.compile(n, 0); err != nil {
		return nil, err
	}
	return &Program{
		Prog: eval.Prog{
			Code:        c.code,
			NumRegs:     c.maxReg + 1,
			NumOperands: len(deps),
			Result:      0,
		},
		Deps:   deps,
		Folded: n,
	}, nil
}

// MustCompile is Compile, panicking on error; for statically known
// inputs.
func MustCompile(n Node) *Program {
	p, err := Compile(n)
	if err != nil {
		panic(err)
	}
	return p
}

// fold rewrites constant subexpressions into literals. A subtree with
// no signal references evaluates identically on every cycle, so it is
// evaluated once here; subtrees whose constant evaluation errors are
// left intact so the error surfaces at run time exactly as the
// tree-walk would report it.
func fold(n Node) Node {
	switch t := n.(type) {
	case unaryNode:
		x := fold(t.x)
		return foldConst(unaryNode{op: t.op, x: x})
	case binNode:
		a, b := fold(t.a), fold(t.b)
		return foldConst(binNode{op: t.op, a: a, b: b})
	case ternaryNode:
		cond := fold(t.cond)
		if c, ok := cond.(numNode); ok {
			// Constant selector: the other arm is dead, matching the
			// tree-walk which never evaluates it.
			if c.v.IsTrue() {
				return fold(t.t)
			}
			return fold(t.f)
		}
		return ternaryNode{cond: cond, t: fold(t.t), f: fold(t.f)}
	case bitsNode:
		x := fold(t.x)
		return foldConst(bitsNode{x: x, hi: t.hi, lo: t.lo})
	default:
		return n
	}
}

// foldConst evaluates a node whose children are all literals.
func foldConst(n Node) Node {
	if !childrenConst(n) {
		return n
	}
	v, err := n.Eval(errResolver{})
	if err != nil {
		return n
	}
	return numNode{v: v}
}

func childrenConst(n Node) bool {
	switch t := n.(type) {
	case unaryNode:
		return isConst(t.x)
	case binNode:
		// && and || short-circuit: a constant left side decides the
		// result alone when it terminates evaluation early.
		if a, ok := t.a.(numNode); ok {
			if (t.op == "&&" && !a.v.IsTrue()) || (t.op == "||" && a.v.IsTrue()) {
				return true
			}
		}
		return isConst(t.a) && isConst(t.b)
	case bitsNode:
		return isConst(t.x)
	}
	return false
}

func isConst(n Node) bool {
	_, ok := n.(numNode)
	return ok
}

// errResolver rejects every lookup; constant folding must never reach a
// signal reference.
type errResolver struct{}

func (errResolver) Resolve(name string) (eval.Value, error) {
	return eval.Value{}, fmt.Errorf("expr: constant fold reached signal %q", name)
}

type compiler struct {
	code   []eval.Instr
	depIdx map[string]int
	maxReg int
}

func (c *compiler) emit(in eval.Instr) int {
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *compiler) reg(r int) uint16 {
	if r > c.maxReg {
		c.maxReg = r
	}
	return uint16(r)
}

// patch rewrites the jump target of instruction at pc to the current
// end of the program.
func (c *compiler) patch(pc int) {
	c.code[pc].P0 = len(c.code)
}

// compile emits code leaving the node's value in register dst, using
// registers > dst as scratch (stack-style allocation: the register
// count equals the expression's operand depth).
func (c *compiler) compile(n Node, dst int) error {
	switch t := n.(type) {
	case numNode:
		c.emit(eval.Instr{Kind: eval.IConst, Dst: c.reg(dst), Const: t.v})
	case nameNode:
		idx, ok := c.depIdx[t.name]
		if !ok {
			return fmt.Errorf("expr: compile: unknown dependency %q", t.name)
		}
		c.emit(eval.Instr{Kind: eval.ISig, Dst: c.reg(dst), A: uint16(idx)})
	case unaryNode:
		if err := c.compile(t.x, dst); err != nil {
			return err
		}
		switch t.op {
		case "~":
			c.emit(eval.Instr{Kind: eval.IPrim1, Op: ir.OpNot, Dst: c.reg(dst), A: uint16(dst)})
		case "!":
			c.emit(eval.Instr{Kind: eval.ILogNot, Dst: c.reg(dst), A: uint16(dst)})
		case "-":
			c.emit(eval.Instr{Kind: eval.IPrim1, Op: ir.OpNeg, Dst: c.reg(dst), A: uint16(dst)})
		default:
			return fmt.Errorf("expr: compile: unknown unary %q", t.op)
		}
	case binNode:
		return c.compileBin(t, dst)
	case ternaryNode:
		if err := c.compile(t.cond, dst); err != nil {
			return err
		}
		jElse := c.emit(eval.Instr{Kind: eval.IJumpIfFalse, A: uint16(dst)})
		if err := c.compile(t.t, dst); err != nil {
			return err
		}
		jEnd := c.emit(eval.Instr{Kind: eval.IJump})
		c.patch(jElse)
		if err := c.compile(t.f, dst); err != nil {
			return err
		}
		c.patch(jEnd)
	case bitsNode:
		if err := c.compile(t.x, dst); err != nil {
			return err
		}
		c.emit(eval.Instr{Kind: eval.IBits, Dst: c.reg(dst), A: uint16(dst), P0: t.hi, P1: t.lo})
	default:
		return fmt.Errorf("expr: compile: unknown node type %T", n)
	}
	return nil
}

func (c *compiler) compileBin(t binNode, dst int) error {
	// Short-circuit forms compile to branches so the skipped side is
	// never executed, exactly like the tree-walk.
	switch t.op {
	case "&&":
		if err := c.compile(t.a, dst); err != nil {
			return err
		}
		jFalse := c.emit(eval.Instr{Kind: eval.IJumpIfFalse, A: uint16(dst)})
		if err := c.compile(t.b, dst); err != nil {
			return err
		}
		c.emit(eval.Instr{Kind: eval.IBool, Dst: c.reg(dst), A: uint16(dst)})
		jEnd := c.emit(eval.Instr{Kind: eval.IJump})
		c.patch(jFalse)
		c.emit(eval.Instr{Kind: eval.IConst, Dst: c.reg(dst), Const: eval.Make(0, 1, false)})
		c.patch(jEnd)
		return nil
	case "||":
		if err := c.compile(t.a, dst); err != nil {
			return err
		}
		jTrue := c.emit(eval.Instr{Kind: eval.IJumpIfTrue, A: uint16(dst)})
		if err := c.compile(t.b, dst); err != nil {
			return err
		}
		c.emit(eval.Instr{Kind: eval.IBool, Dst: c.reg(dst), A: uint16(dst)})
		jEnd := c.emit(eval.Instr{Kind: eval.IJump})
		c.patch(jTrue)
		c.emit(eval.Instr{Kind: eval.IConst, Dst: c.reg(dst), Const: eval.Make(1, 1, false)})
		c.patch(jEnd)
		return nil
	}
	op, ok := binOps[t.op]
	if !ok {
		return fmt.Errorf("expr: compile: unknown operator %q", t.op)
	}
	if err := c.compile(t.a, dst); err != nil {
		return err
	}
	if err := c.compile(t.b, dst+1); err != nil {
		return err
	}
	if op == ir.OpDshl {
		// Mirror binNode.Eval: the dynamic-shift amount is capped to 6
		// bits of magnitude to satisfy eval's width model.
		c.emit(eval.Instr{Kind: eval.ICapW, Dst: c.reg(dst + 1), A: uint16(dst + 1), P0: 6})
	}
	c.emit(eval.Instr{Kind: eval.IPrim2, Op: op, Dst: c.reg(dst), A: uint16(dst), B: uint16(dst + 1)})
	return nil
}
