package expr

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/eval"
	"repro/internal/ir"
)

// This file implements the schedule fuser: it compiles the compiled
// conditions of EVERY armed breakpoint and watchpoint into one fused
// eval.MultiProg the debugger executes once per clock edge, instead of
// dispatching each condition group separately. Two things make the
// fused form cheaper than N independent programs:
//
//   - Cross-condition CSE. Subexpressions are canonicalized with their
//     signal names replaced by the caller's operand slot ids (the
//     prefetch-union slots), so two conditions computing the same
//     structure over the same signals — N breakpoints on one statement
//     share the enable prefix of their nested scopes, a user condition
//     repeats part of an enable — value-number to the same key. Keys
//     reached unconditionally by at least two evaluations are hoisted
//     into shared prelude segments computed once per edge.
//
//   - One operand table. Operands are keyed by prefetch slot, so the
//     scheduler gathers each union signal once for the whole schedule
//     rather than once per condition referencing it.
//
// Short-circuit semantics stay bit-exact by construction: only
// subtrees the original evaluation order reaches unconditionally (not
// under an && / || right side or a ternary arm — "unguarded") register
// CSE candidates, guarded occurrences merely read an already-hoisted
// register, and any evaluation error poisons exactly the segments that
// observed it (eval.Segment.Ops/Deps), whose conditions the scheduler
// then re-evaluates by the exact per-condition path. Correctness never
// depends on the CSE heuristic; the heuristic only decides how much
// work is shared.

// FusedCondition is one armed condition handed to the fuser: the
// compiled enable and user-condition programs (either may be nil; both
// nil means "always hits when evaluated") plus, aligned with each
// program's Deps order, the caller's operand slot ids. Every slot must
// be >= 0 — conditions with unresolved dependencies are not fusable and
// stay on the per-condition path.
type FusedCondition struct {
	Enable      *Program
	Cond        *Program
	EnableSlots []int
	CondSlots   []int
}

// FuseStats reports what the fuser shared.
type FuseStats struct {
	// Conds is the number of fused conditions.
	Conds int
	// SharedSegs is the number of CSE segments hoisted into the prelude.
	SharedSegs int
	// SharedReads is the number of subexpression evaluations replaced by
	// a shared-register read (the CSE hit count).
	SharedReads int
	// Operands is the size of the fused operand table (deduplicated
	// across all conditions by prefetch slot).
	Operands int
}

// FusedSchedule is the fuser's output: the fused program, the operand
// table as caller slot ids (operand i reads the caller's Slots[i]), and
// per-condition operand closures — every operand a condition's fused
// evaluation can observe, directly or through shared segments — which
// the scheduler uses for activity masking and poison checks.
type FusedSchedule struct {
	Prog       eval.MultiProg
	Slots      []int
	OpClosures [][]uint16
	Stats      FuseStats
}

// Fuse compiles the conditions into one fused program. Condition i of
// the result is conds[i]; its fused value is truthy exactly when the
// enable condition holds and the user condition holds (each treated as
// true when absent).
func Fuse(conds []FusedCondition) (*FusedSchedule, error) {
	f := &fuser{
		opIdx:   map[int]uint16{},
		count:   map[string]int{},
		reps:    map[string]fuseRep{},
		emitted: map[string]uint16{},
	}
	// Resolve each condition's name → operand-index maps up front; this
	// also populates the shared operand table.
	type condIR struct {
		enable, cond   Node
		enOps, condOps map[string]uint16
	}
	irs := make([]condIR, len(conds))
	for i, c := range conds {
		var ir condIR
		var err error
		if c.Enable != nil {
			ir.enable = c.Enable.Folded
			if ir.enOps, err = f.nameOps(c.Enable, c.EnableSlots); err != nil {
				return nil, fmt.Errorf("expr: fuse cond %d enable: %w", i, err)
			}
		}
		if c.Cond != nil {
			ir.cond = c.Cond.Folded
			if ir.condOps, err = f.nameOps(c.Cond, c.CondSlots); err != nil {
				return nil, fmt.Errorf("expr: fuse cond %d: %w", i, err)
			}
		}
		irs[i] = ir
	}
	// Pass 1: count unguarded occurrences of every non-leaf key. A user
	// condition only evaluates once the enable holds, so its subtrees are
	// guarded whenever an enable exists.
	for _, ir := range irs {
		if ir.enable != nil {
			f.scan(ir.enable, ir.enOps, false)
		}
		if ir.cond != nil {
			f.scan(ir.cond, ir.condOps, ir.enable != nil)
		}
	}
	// Pass 2: select keys worth hoisting (>=2 unconditional evaluations)
	// and order them inner-first so nested shared subexpressions are
	// emitted before the segments that read them.
	type sel struct {
		key   string
		depth int
	}
	var selected []sel
	for key, n := range f.count {
		if n >= 2 {
			selected = append(selected, sel{key, f.reps[key].depth})
		}
	}
	sort.Slice(selected, func(i, j int) bool {
		if selected[i].depth != selected[j].depth {
			return selected[i].depth < selected[j].depth
		}
		return selected[i].key < selected[j].key
	})
	f.numShared = len(selected)
	scratch := f.numShared
	prog := eval.MultiProg{}
	// Pass 3: emit shared prelude segments.
	for i, s := range selected {
		rep := f.reps[s.key]
		seg := eval.Segment{Start: len(f.code), Result: uint16(i)}
		f.reg(i)
		if err := f.fcompile(rep.node, scratch, rep.nameOp); err != nil {
			return nil, err
		}
		f.emit(eval.Instr{Kind: eval.IMov, Dst: uint16(i), A: uint16(f.reg(scratch))})
		seg.End = len(f.code)
		seg.Ops, seg.Deps = f.takeSeg()
		prog.Shared = append(prog.Shared, seg)
		f.emitted[s.key] = uint16(i)
	}
	// Pass 4: emit one segment per condition: enable short-circuits the
	// user condition exactly like the per-condition path (a falsy enable
	// value is itself the — falsy — result).
	for i, ir := range irs {
		seg := eval.Segment{Start: len(f.code), Result: uint16(f.reg(scratch))}
		switch {
		case ir.enable != nil && ir.cond != nil:
			if err := f.fcompile(ir.enable, scratch, irs[i].enOps); err != nil {
				return nil, err
			}
			j := f.emit(eval.Instr{Kind: eval.IJumpIfFalse, A: uint16(scratch)})
			if err := f.fcompile(ir.cond, scratch, irs[i].condOps); err != nil {
				return nil, err
			}
			f.patch(j)
		case ir.enable != nil:
			if err := f.fcompile(ir.enable, scratch, irs[i].enOps); err != nil {
				return nil, err
			}
		case ir.cond != nil:
			if err := f.fcompile(ir.cond, scratch, irs[i].condOps); err != nil {
				return nil, err
			}
		default:
			f.emit(eval.Instr{Kind: eval.IConst, Dst: uint16(scratch), Const: eval.Make(1, 1, false)})
		}
		seg.End = len(f.code)
		seg.Ops, seg.Deps = f.takeSeg()
		prog.Conds = append(prog.Conds, seg)
	}
	if f.maxReg >= 1<<16-1 || len(f.slots) >= 1<<16 {
		return nil, fmt.Errorf("expr: fused program exceeds register file (%d regs, %d operands)", f.maxReg+1, len(f.slots))
	}
	prog.Code = f.code
	prog.NumRegs = f.maxReg + 1
	prog.NumShared = f.numShared
	prog.NumOperands = len(f.slots)
	// Per-condition operand closures: what each condition observes
	// through its own reads plus its (transitive) shared dependencies.
	sharedClo := make([][]uint16, len(prog.Shared))
	for i, seg := range prog.Shared {
		sharedClo[i] = closure(seg, sharedClo)
	}
	closures := make([][]uint16, len(prog.Conds))
	for i, seg := range prog.Conds {
		closures[i] = closure(seg, sharedClo)
	}
	f.stats.Conds = len(conds)
	f.stats.SharedSegs = len(prog.Shared)
	f.stats.Operands = len(f.slots)
	return &FusedSchedule{Prog: prog, Slots: f.slots, OpClosures: closures, Stats: f.stats}, nil
}

// closure unions a segment's direct operand reads with the operand
// closures of the shared segments it depends on. Shared segments only
// reference earlier segments, so one forward pass suffices.
func closure(seg eval.Segment, sharedClo [][]uint16) []uint16 {
	out := make([]uint16, len(seg.Ops))
	copy(out, seg.Ops)
	for _, d := range seg.Deps {
		for _, o := range sharedClo[d] {
			out = addU16(out, o)
		}
	}
	return out
}

type fuseRep struct {
	node   Node
	nameOp map[string]uint16
	depth  int
}

type fuser struct {
	opIdx map[int]uint16 // caller slot -> operand index
	slots []int          // operand index -> caller slot

	count map[string]int
	reps  map[string]fuseRep

	code      []eval.Instr
	maxReg    int
	numShared int
	emitted   map[string]uint16

	segOps  []uint16
	segDeps []uint16

	stats FuseStats
}

// nameOps maps a program's dependency names to fused operand indexes,
// assigning operand-table entries keyed by the caller's slot ids.
func (f *fuser) nameOps(p *Program, slots []int) (map[string]uint16, error) {
	if len(slots) != len(p.Deps) {
		return nil, fmt.Errorf("%d deps but %d slots", len(p.Deps), len(slots))
	}
	m := make(map[string]uint16, len(p.Deps))
	for i, name := range p.Deps {
		s := slots[i]
		if s < 0 {
			return nil, fmt.Errorf("dependency %q has no slot", name)
		}
		idx, ok := f.opIdx[s]
		if !ok {
			idx = uint16(len(f.slots))
			f.opIdx[s] = idx
			f.slots = append(f.slots, s)
		}
		m[name] = idx
	}
	return m, nil
}

// canonKey builds the canonical value-numbering key of a subtree:
// structure plus operand slots, so identical computations over the same
// signals collide across conditions while sibling instances (same
// structure, different signals) stay distinct.
func canonKey(n Node, nameOp map[string]uint16) string {
	switch t := n.(type) {
	case numNode:
		sg := "u"
		if t.v.Signed {
			sg = "s"
		}
		return "#" + strconv.FormatUint(t.v.Bits, 16) + ":" + strconv.Itoa(t.v.Width) + sg
	case nameNode:
		return "s" + strconv.FormatUint(uint64(nameOp[t.name]), 10)
	case unaryNode:
		return "(" + t.op + canonKey(t.x, nameOp) + ")"
	case binNode:
		return "(" + canonKey(t.a, nameOp) + t.op + canonKey(t.b, nameOp) + ")"
	case ternaryNode:
		return "(" + canonKey(t.cond, nameOp) + "?" + canonKey(t.t, nameOp) + ":" + canonKey(t.f, nameOp) + ")"
	case bitsNode:
		return "(" + canonKey(t.x, nameOp) + "[" + strconv.Itoa(t.hi) + ":" + strconv.Itoa(t.lo) + "])"
	}
	return fmt.Sprintf("?%T", n)
}

func nodeDepth(n Node) int {
	switch t := n.(type) {
	case unaryNode:
		return nodeDepth(t.x) + 1
	case binNode:
		return maxInt2(nodeDepth(t.a), nodeDepth(t.b)) + 1
	case ternaryNode:
		return maxInt2(nodeDepth(t.cond), maxInt2(nodeDepth(t.t), nodeDepth(t.f))) + 1
	case bitsNode:
		return nodeDepth(t.x) + 1
	}
	return 0
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// scan counts unguarded evaluations of every non-leaf subtree. guarded
// means the subtree may be skipped by the original short-circuit
// evaluation order (&&/|| right sides, ternary arms) — such positions
// may read shared registers but must not force a hoist by themselves.
func (f *fuser) scan(n Node, nameOp map[string]uint16, guarded bool) {
	switch t := n.(type) {
	case numNode, nameNode:
		return
	case unaryNode:
		f.scan(t.x, nameOp, guarded)
	case binNode:
		f.scan(t.a, nameOp, guarded)
		f.scan(t.b, nameOp, guarded || t.op == "&&" || t.op == "||")
	case ternaryNode:
		f.scan(t.cond, nameOp, guarded)
		f.scan(t.t, nameOp, true)
		f.scan(t.f, nameOp, true)
	case bitsNode:
		f.scan(t.x, nameOp, guarded)
	}
	if guarded {
		return
	}
	key := canonKey(n, nameOp)
	f.count[key]++
	if _, ok := f.reps[key]; !ok {
		f.reps[key] = fuseRep{node: n, nameOp: nameOp, depth: nodeDepth(n)}
	}
}

func (f *fuser) emit(in eval.Instr) int {
	f.code = append(f.code, in)
	return len(f.code) - 1
}

func (f *fuser) reg(r int) int {
	if r > f.maxReg {
		f.maxReg = r
	}
	return r
}

func (f *fuser) patch(pc int) {
	f.code[pc].P0 = len(f.code)
}

// takeSeg returns and resets the current segment's operand/dependency
// accumulators.
func (f *fuser) takeSeg() (ops, deps []uint16) {
	if len(f.segOps) > 0 {
		ops = append([]uint16{}, f.segOps...)
	}
	if len(f.segDeps) > 0 {
		deps = append([]uint16{}, f.segDeps...)
	}
	f.segOps, f.segDeps = f.segOps[:0], f.segDeps[:0]
	return ops, deps
}

func addU16(list []uint16, v uint16) []uint16 {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

// fcompile mirrors compiler.compile with two hooks: names resolve
// through the fused operand table, and any subtree whose key has
// already been hoisted compiles to a single shared-register read —
// guarded occurrences included, since reading a register cannot fault
// and a poisoned source is caught through the segment's Deps.
func (f *fuser) fcompile(n Node, dst int, nameOp map[string]uint16) error {
	switch n.(type) {
	case numNode, nameNode:
	default:
		if len(f.emitted) > 0 {
			if si, ok := f.emitted[canonKey(n, nameOp)]; ok {
				f.emit(eval.Instr{Kind: eval.IMov, Dst: uint16(f.reg(dst)), A: si})
				f.segDeps = addU16(f.segDeps, si)
				f.stats.SharedReads++
				return nil
			}
		}
	}
	switch t := n.(type) {
	case numNode:
		f.emit(eval.Instr{Kind: eval.IConst, Dst: uint16(f.reg(dst)), Const: t.v})
	case nameNode:
		idx, ok := nameOp[t.name]
		if !ok {
			return fmt.Errorf("expr: fuse: unknown dependency %q", t.name)
		}
		f.emit(eval.Instr{Kind: eval.ISig, Dst: uint16(f.reg(dst)), A: idx})
		f.segOps = addU16(f.segOps, idx)
	case unaryNode:
		if err := f.fcompile(t.x, dst, nameOp); err != nil {
			return err
		}
		switch t.op {
		case "~":
			f.emit(eval.Instr{Kind: eval.IPrim1, Op: ir.OpNot, Dst: uint16(f.reg(dst)), A: uint16(dst)})
		case "!":
			f.emit(eval.Instr{Kind: eval.ILogNot, Dst: uint16(f.reg(dst)), A: uint16(dst)})
		case "-":
			f.emit(eval.Instr{Kind: eval.IPrim1, Op: ir.OpNeg, Dst: uint16(f.reg(dst)), A: uint16(dst)})
		default:
			return fmt.Errorf("expr: fuse: unknown unary %q", t.op)
		}
	case binNode:
		return f.fcompileBin(t, dst, nameOp)
	case ternaryNode:
		if err := f.fcompile(t.cond, dst, nameOp); err != nil {
			return err
		}
		jElse := f.emit(eval.Instr{Kind: eval.IJumpIfFalse, A: uint16(dst)})
		if err := f.fcompile(t.t, dst, nameOp); err != nil {
			return err
		}
		jEnd := f.emit(eval.Instr{Kind: eval.IJump})
		f.patch(jElse)
		if err := f.fcompile(t.f, dst, nameOp); err != nil {
			return err
		}
		f.patch(jEnd)
	case bitsNode:
		if err := f.fcompile(t.x, dst, nameOp); err != nil {
			return err
		}
		f.emit(eval.Instr{Kind: eval.IBits, Dst: uint16(f.reg(dst)), A: uint16(dst), P0: t.hi, P1: t.lo})
	default:
		return fmt.Errorf("expr: fuse: unknown node type %T", n)
	}
	return nil
}

func (f *fuser) fcompileBin(t binNode, dst int, nameOp map[string]uint16) error {
	switch t.op {
	case "&&":
		if err := f.fcompile(t.a, dst, nameOp); err != nil {
			return err
		}
		jFalse := f.emit(eval.Instr{Kind: eval.IJumpIfFalse, A: uint16(dst)})
		if err := f.fcompile(t.b, dst, nameOp); err != nil {
			return err
		}
		f.emit(eval.Instr{Kind: eval.IBool, Dst: uint16(f.reg(dst)), A: uint16(dst)})
		jEnd := f.emit(eval.Instr{Kind: eval.IJump})
		f.patch(jFalse)
		f.emit(eval.Instr{Kind: eval.IConst, Dst: uint16(f.reg(dst)), Const: eval.Make(0, 1, false)})
		f.patch(jEnd)
		return nil
	case "||":
		if err := f.fcompile(t.a, dst, nameOp); err != nil {
			return err
		}
		jTrue := f.emit(eval.Instr{Kind: eval.IJumpIfTrue, A: uint16(dst)})
		if err := f.fcompile(t.b, dst, nameOp); err != nil {
			return err
		}
		f.emit(eval.Instr{Kind: eval.IBool, Dst: uint16(f.reg(dst)), A: uint16(dst)})
		jEnd := f.emit(eval.Instr{Kind: eval.IJump})
		f.patch(jTrue)
		f.emit(eval.Instr{Kind: eval.IConst, Dst: uint16(f.reg(dst)), Const: eval.Make(1, 1, false)})
		f.patch(jEnd)
		return nil
	}
	op, ok := binOps[t.op]
	if !ok {
		return fmt.Errorf("expr: fuse: unknown operator %q", t.op)
	}
	if err := f.fcompile(t.a, dst, nameOp); err != nil {
		return err
	}
	if err := f.fcompile(t.b, dst+1, nameOp); err != nil {
		return err
	}
	if op == ir.OpDshl {
		f.emit(eval.Instr{Kind: eval.ICapW, Dst: uint16(f.reg(dst + 1)), A: uint16(dst + 1), P0: 6})
	}
	f.emit(eval.Instr{Kind: eval.IPrim2, Op: op, Dst: uint16(f.reg(dst)), A: uint16(dst), B: uint16(dst + 1)})
	return nil
}
