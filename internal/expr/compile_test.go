package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/eval"
)

// envResolver backs the tree-walk reference with a fixed environment.
type envResolver map[string]eval.Value

func (m envResolver) Resolve(name string) (eval.Value, error) {
	v, ok := m[name]
	if !ok {
		return eval.Value{}, fmt.Errorf("unknown name %q", name)
	}
	return v, nil
}

// execCompiled runs a compiled program against the same environment the
// resolver exposes, feeding operands in Deps order.
func execCompiled(t *testing.T, p *Program, m *eval.Machine, env envResolver) (eval.Value, error) {
	t.Helper()
	ops := make([]eval.Value, len(p.Deps))
	for i, d := range p.Deps {
		v, ok := env[d]
		if !ok {
			t.Fatalf("program depends on unknown name %q", d)
		}
		ops[i] = v
	}
	return p.Exec(m, ops)
}

var diffOps = []string{
	"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=",
	"&", "|", "^", "<<", ">>", "&&", "||",
}

// randNode builds a random expression tree of bounded depth over names.
func randNode(r *rand.Rand, names []string, depth int) Node {
	if depth <= 0 || r.Intn(6) == 0 {
		if r.Intn(3) == 0 {
			w := 1 + r.Intn(12)
			return numNode{v: eval.Make(r.Uint64(), w, false)}
		}
		return nameNode{name: names[r.Intn(len(names))]}
	}
	switch r.Intn(12) {
	case 0:
		ops := []string{"~", "!", "-"}
		return unaryNode{op: ops[r.Intn(len(ops))], x: randNode(r, names, depth-1)}
	case 1:
		// Bit ranges past the operand width exercise the forgiving
		// zero-extension path.
		hi := r.Intn(70)
		lo := r.Intn(hi + 1)
		return bitsNode{x: randNode(r, names, depth-1), hi: hi, lo: lo}
	case 2:
		return ternaryNode{
			cond: randNode(r, names, depth-1),
			t:    randNode(r, names, depth-1),
			f:    randNode(r, names, depth-1),
		}
	default:
		return binNode{
			op: diffOps[r.Intn(len(diffOps))],
			a:  randNode(r, names, depth-1),
			b:  randNode(r, names, depth-1),
		}
	}
}

// TestCompileDifferential asserts the compiled pipeline is bit-exact
// with the tree-walk reference: ~1000 random expressions, each checked
// against several random signal environments with widths 1–64, signed
// and unsigned.
func TestCompileDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260730))
	names := []string{"a", "b", "c", "d", "io_x", "io_y"}
	var m eval.Machine
	for i := 0; i < 1000; i++ {
		n := randNode(r, names, 4)
		p, err := Compile(n)
		if err != nil {
			t.Fatalf("expr %d %s: compile: %v", i, n, err)
		}
		for trial := 0; trial < 4; trial++ {
			env := envResolver{}
			for _, name := range names {
				w := 1 + r.Intn(64)
				env[name] = eval.Make(r.Uint64(), w, r.Intn(2) == 0)
			}
			want, errW := n.Eval(env)
			got, errG := execCompiled(t, p, &m, env)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("expr %d %s: error mismatch: tree=%v compiled=%v", i, n, errW, errG)
			}
			if errW == nil && want != got {
				t.Fatalf("expr %d %s env %v:\n tree     = %#v\n compiled = %#v", i, n, env, want, got)
			}
		}
	}
}

func TestCompileConstantFolding(t *testing.T) {
	cases := []struct {
		src  string
		want eval.Value
	}{
		{"1 + 2", eval.Make(3, 3, false)},
		{"(3 * 4) == 12", eval.Make(1, 1, false)},
		{"0 && a", eval.Make(0, 1, false)}, // short-circuit: a is dead
		{"1 || a", eval.Make(1, 1, false)},
		{"1 ? 7 : a", eval.Make(7, 3, false)},
		{"0 ? a : 5", eval.Make(5, 3, false)},
	}
	var m eval.Machine
	for _, c := range cases {
		p := MustCompile(MustParse(c.src))
		if len(p.Deps) != 0 {
			t.Errorf("%q: deps = %v, want none (folded)", c.src, p.Deps)
		}
		if len(p.Prog.Code) != 1 || p.Prog.Code[0].Kind != eval.IConst {
			t.Errorf("%q: not folded to a single constant: %d instrs", c.src, len(p.Prog.Code))
		}
		got, err := p.Exec(&m, nil)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("%q = %#v, want %#v", c.src, got, c.want)
		}
	}
}

// TestCompileDepsDeduplicated checks the dependency list is the sorted
// set of live signal references.
func TestCompileDepsDeduplicated(t *testing.T) {
	p := MustCompile(MustParse("b + a > a && b < a"))
	if len(p.Deps) != 2 || p.Deps[0] != "a" || p.Deps[1] != "b" {
		t.Fatalf("deps = %v, want [a b]", p.Deps)
	}
}

// TestCompileShortCircuitSkipsDeadSide verifies the compiled && / || /
// ?: never execute the skipped side, matching the tree-walk.
func TestCompileShortCircuitSkipsDeadSide(t *testing.T) {
	// b/0 is well-defined (0) in this language, so detect execution of
	// the dead side structurally: a jump must bypass it.
	var m eval.Machine
	for _, src := range []string{"a == 0 && b > 1", "a != 0 || b > 1", "a ? b : 3"} {
		n := MustParse(src)
		p := MustCompile(n)
		env := envResolver{"a": eval.Make(0, 8, false), "b": eval.Make(5, 8, false)}
		want, _ := n.Eval(env)
		got, err := execCompiled(t, p, &m, env)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if want != got {
			t.Fatalf("%q = %#v, want %#v", src, got, want)
		}
	}
}

// TestExecZeroAllocs pins the pipeline's core property: steady-state
// execution of a compiled program performs no heap allocations.
func TestExecZeroAllocs(t *testing.T) {
	p := MustCompile(MustParse("(a + b) % 7 == 3 && a[3:0] != 2 || c[15:8] > b"))
	var m eval.Machine
	ops := make([]eval.Value, len(p.Deps))
	for i := range ops {
		ops[i] = eval.Make(uint64(i*37+5), 16, false)
	}
	if _, err := p.Exec(&m, ops); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Exec(&m, ops); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Exec allocates %.1f objects per run, want 0", allocs)
	}
}
