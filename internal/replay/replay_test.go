package replay

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// makeVCD records the counter design for 10 cycles and returns the raw
// VCD text, shared by the eager-trace and block-store engine tests.
func makeVCD(t testing.TB) []byte {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl)
	var buf bytes.Buffer
	rec := vcd.NewRecorder(s, &buf)
	s.Reset("Counter.reset", 1)
	s.Poke("Counter.en", 1)
	s.Run(10)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func makeTrace(t testing.TB) *vcd.Trace {
	t.Helper()
	tr, err := vcd.Parse(bytes.NewReader(makeVCD(t)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReplayForwardMatchesRecording(t *testing.T) {
	e := New(makeTrace(t))
	// Walk forward; count increases by one per enabled cycle.
	e.SetTime(2)
	v2, err := e.GetValue("Counter.count")
	if err != nil {
		t.Fatal(err)
	}
	e.SetTime(5)
	v5, _ := e.GetValue("Counter.count")
	if v5.Bits-v2.Bits != 3 {
		t.Fatalf("count delta = %d, want 3 (v2=%d v5=%d)", v5.Bits-v2.Bits, v2.Bits, v5.Bits)
	}
}

func TestReverseTime(t *testing.T) {
	e := New(makeTrace(t))
	e.SetTime(8)
	v8, _ := e.GetValue("Counter.count")
	if !e.StepBackward() {
		t.Fatal("step backward failed")
	}
	v7, _ := e.GetValue("Counter.count")
	if v7.Bits != v8.Bits-1 {
		t.Fatalf("reverse step: %d -> %d", v8.Bits, v7.Bits)
	}
	// Rewind to zero.
	e.SetTime(0)
	if e.StepBackward() {
		t.Fatal("stepped before time zero")
	}
	v0, _ := e.GetValue("Counter.count")
	if v0.Bits != 0 {
		t.Fatalf("count at 0 = %d", v0.Bits)
	}
}

func TestStepForwardStopsAtEnd(t *testing.T) {
	e := New(makeTrace(t))
	e.SetTime(e.MaxTime())
	if e.StepForward() {
		t.Fatal("stepped past end of trace")
	}
	if err := e.SetTime(e.MaxTime() + 1); err == nil {
		t.Fatal("SetTime past end accepted")
	}
}

func TestCallbacksFireOnSteps(t *testing.T) {
	e := New(makeTrace(t))
	var times []uint64
	id := e.OnClockEdge(func(tm uint64) { times = append(times, tm) })
	e.Run(3)
	e.StepBackward()
	if len(times) != 4 {
		t.Fatalf("callbacks fired %d times, want 4", len(times))
	}
	if times[3] != times[2]-1 {
		t.Fatalf("reverse callback time: %v", times)
	}
	e.RemoveCallback(id)
	e.Run(1)
	if len(times) != 4 {
		t.Fatal("callback fired after removal")
	}
}

func TestSetValueUnsupported(t *testing.T) {
	e := New(makeTrace(t))
	err := e.SetValue("Counter.count", 1)
	if !errors.Is(err, vpi.ErrNotSupported) {
		t.Fatalf("err = %v, want ErrNotSupported", err)
	}
}

func TestUnknownSignal(t *testing.T) {
	e := New(makeTrace(t))
	if _, err := e.GetValue("Counter.ghost"); err == nil {
		t.Fatal("unknown signal accepted")
	}
}

func TestHierarchyAndClock(t *testing.T) {
	e := New(makeTrace(t))
	if e.Hierarchy() == nil || e.Hierarchy().Name != "Counter" {
		t.Fatalf("hierarchy = %+v", e.Hierarchy())
	}
	if e.ClockName() != "Counter.clock" {
		t.Fatalf("clock = %s", e.ClockName())
	}
}
