package replay

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rtl"
	"repro/internal/val"
	"repro/internal/vcd"
)

// This file is the checkpointed state machine behind NewStore. The
// block store holds undecoded change records; reconstructing "the value
// of signal X at time t" therefore has two paths:
//
//   - Materialized signals (the debugger's breakpoint/watch dependency
//     union, advised via Prefetch) answer by binary search over their
//     decoded timelines — per-cycle condition evaluation never moves
//     any shared state and stays allocation-free.
//   - Everything else (frame reconstruction at a stop, raw get_value
//     requests) reads from a full signal-state array that is synced to
//     the query time by replaying change records. Forward syncs are
//     incremental; backward syncs restore the nearest value-snapshot
//     checkpoint at or before t and replay forward from there, so a
//     reverse step costs O(checkpoint interval) records instead of
//     O(t) — the difference between usable and unusable reverse
//     debugging on long traces.
//
// Checkpoints are created lazily: whenever a forward sync crosses a
// checkpoint boundary for the first time, the state array and stream
// cursor are snapshotted. Boundaries inside record-free stretches are
// skipped — state cannot change there, so the snapshot before the gap
// serves any seek into it — and backward syncs find the nearest
// existing snapshot by binary search over the sorted checkpoint times.

// DefaultMaxCheckpoints bounds the adaptive checkpoint interval: when
// no explicit interval is configured, the interval is chosen so at most
// this many snapshots exist for the whole trace. Snapshot memory is
// then bounded by 16 B × state words × DefaultMaxCheckpoints (value and
// unknown-bit planes, one word per 64 bits of each signal) while
// reverse seeks still skip all but maxTime/256 of the trace.
const DefaultMaxCheckpoints = 256

// StoreEngineOption configures NewStore.
type StoreEngineOption func(*storeBacking)

// WithCheckpointInterval sets the distance in trace time units between
// value-snapshot checkpoints. Smaller intervals make backward seeks
// cheaper and snapshots more numerous; 0 restores the adaptive default
// (trace length / DefaultMaxCheckpoints, at least one block).
func WithCheckpointInterval(interval uint64) StoreEngineOption {
	return func(sb *storeBacking) { sb.interval = interval }
}

// snapshot is one restore point: the full packed signal-state planes
// and the change-stream cursor at a checkpoint boundary.
type snapshot struct {
	state *vcd.State
	cur   vcd.Cursor
}

// storeBacking implements backing over a vcd.Store.
type storeBacking struct {
	st       *vcd.Store
	interval uint64

	// mu guards the mutable replay state below. Unlike the seed's
	// immutable trace, syncing moves shared state, and the debug server
	// dispatches raw get_value reads on connection goroutines while the
	// simulation goroutine replays — both can land in sync at once.
	// Materialized reads never take the lock; they see an immutable
	// timeline.
	mu sync.Mutex

	// Replay state: the packed four-state planes of every signal at
	// stateTime (laid out by the store; read via StateBits); cur is the
	// stream position just past the last applied record.
	state     *vcd.State
	stateTime uint64
	cur       vcd.Cursor

	// cps maps checkpoint time → snapshot; cpTimes holds the same times
	// sorted ascending so restore can binary-search the nearest one.
	cps     map[uint64]*snapshot
	cpTimes []uint64

	// Dirty-set tracking (vpi.ChangeReporter): trSlot maps signal index
	// → tracked slot, trCur walks the store's change-record stream so a
	// forward poll costs exactly the records since the last poll — the
	// per-block change records the store already holds give the edge's
	// change set for free. A backward or discontinuous move re-anchors
	// the cursor with SeekCursor and reports "cannot bound" once.
	// Tracking state is single-consumer (the debugger runtime polls
	// from the simulation goroutine) and never touches mu-guarded
	// replay state.
	trSlot    []int32
	trIdx     []int // tracked slot -> signal index, -1 unresolved
	trPending []bool
	trAlways  []int // tracked slots with unresolvable paths
	trCur     vcd.Cursor
	trLastT   uint64
	trFresh   bool
	trActive  bool
}

func newStoreBacking(st *vcd.Store, opts ...StoreEngineOption) *storeBacking {
	sb := &storeBacking{
		st:    st,
		state: st.NewState(),
		cps:   map[uint64]*snapshot{},
	}
	for _, o := range opts {
		o(sb)
	}
	if sb.interval == 0 {
		sb.interval = st.MaxTime/DefaultMaxCheckpoints + 1
		if bs := st.BlockSize(); sb.interval < bs {
			sb.interval = bs
		}
	}
	sb.resetToZero()
	return sb
}

// resetToZero puts the replay state at time 0 — which is NOT the zero
// state: a trace's #0 records ($dumpvars initial values in real
// simulator output) must be applied, or every read at t=0 would return
// 0 instead of the recorded initial values.
func (sb *storeBacking) resetToZero() {
	sb.state.Zero()
	sb.cur = sb.st.ApplyUpTo(vcd.Cursor{}, 0, sb.state)
	sb.stateTime = 0
}

func (sb *storeBacking) maxTime() uint64              { return sb.st.MaxTime }
func (sb *storeBacking) hierarchy() *rtl.InstanceNode { return sb.st.Hierarchy }

func (sb *storeBacking) checkpoints() int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return len(sb.cps)
}

func (sb *storeBacking) prefetch(paths []string) { sb.st.Materialize(paths...) }

func (sb *storeBacking) trackChanges(paths []string) {
	if sb.trSlot == nil && len(paths) > 0 {
		sb.trSlot = make([]int32, sb.st.NumSignals())
		for i := range sb.trSlot {
			sb.trSlot[i] = -1
		}
	}
	// Clear the previous registration via its index list, not a sweep
	// of every signal in the trace.
	for _, idx := range sb.trIdx {
		if idx >= 0 {
			sb.trSlot[idx] = -1
		}
	}
	sb.trIdx = sb.trIdx[:0]
	sb.trPending = make([]bool, len(paths))
	sb.trAlways = sb.trAlways[:0]
	for slot, p := range paths {
		ts, ok := sb.st.Signal(p)
		if !ok {
			sb.trIdx = append(sb.trIdx, -1)
			sb.trAlways = append(sb.trAlways, slot)
			continue
		}
		sb.trIdx = append(sb.trIdx, ts.Index())
		sb.trSlot[ts.Index()] = int32(slot)
	}
	sb.trActive = len(paths) > 0
	sb.trFresh = true
}

func (sb *storeBacking) changedInto(t uint64, dst []bool) bool {
	if !sb.trActive || len(dst) < len(sb.trPending) {
		return false
	}
	if sb.trFresh || t < sb.trLastT {
		// First poll after a registration, or time moved backwards:
		// nothing bounds the change set. Re-anchor the cursor at t so
		// the next forward poll scans exactly (t, t'].
		discontinuous := !sb.trFresh
		sb.trFresh = false
		sb.trCur = sb.st.SeekCursor(t)
		sb.trLastT = t
		for i := range sb.trPending {
			sb.trPending[i] = false
			dst[i] = true
		}
		return !discontinuous
	}
	// Forward: every change record in (trLastT, t] names a signal whose
	// value moved; mark the tracked ones.
	sb.trCur = sb.st.ScanChanges(sb.trCur, t, func(sig int) {
		if slot := sb.trSlot[sig]; slot >= 0 {
			sb.trPending[slot] = true
		}
	})
	sb.trLastT = t
	for i, p := range sb.trPending {
		dst[i] = p
		sb.trPending[i] = false
	}
	for _, slot := range sb.trAlways {
		dst[slot] = true
	}
	return true
}

func (sb *storeBacking) bits(path string, t uint64) (val.Bits, error) {
	ts, ok := sb.st.Signal(path)
	if !ok {
		return val.Bits{}, fmt.Errorf("replay: unknown signal %q", path)
	}
	if ts.Materialized() {
		// Lazy fast path: the decoded timeline answers any time without
		// touching the shared state array — lock-free.
		return ts.BitsAt(t), nil
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.sync(t)
	if err := sb.st.Err(); err != nil {
		// A corrupt or unreadable block stopped the walk mid-stream; the
		// state array is only synced up to the damage, so surface the
		// store failure rather than a silently stale value.
		return val.Bits{}, err
	}
	return sb.st.StateBits(sb.state, ts), nil
}

// sync moves the replay state to time t.
func (sb *storeBacking) sync(t uint64) {
	if t == sb.stateTime {
		return
	}
	if t < sb.stateTime {
		sb.restore(t)
	}
	// Forward apply, snapshotting checkpoint boundaries as the sweep
	// crosses them. Record-free stretches (timestamps count timescale
	// units, so real dumps have huge gaps) are jumped in one step with
	// no per-boundary work: state cannot change there, and the snapshot
	// before a gap already serves any backward seek into it. Sweep cost
	// is therefore O(records applied + snapshots taken), never
	// O(t / interval).
	for sb.stateTime < t {
		nt, ok := sb.st.NextChangeTime(sb.cur)
		if !ok || nt > t {
			// No records in (stateTime, t]: values at t are identical.
			sb.stateTime = t
			return
		}
		next := (sb.stateTime/sb.interval + 1) * sb.interval
		if nt > next {
			// Jump the gap: land on the last boundary at or before the
			// next record so the upcoming interval gets its snapshot.
			next = (nt / sb.interval) * sb.interval
		}
		if next > t {
			break
		}
		sb.cur = sb.st.ApplyUpTo(sb.cur, next, sb.state)
		sb.stateTime = next
		if _, ok := sb.cps[next]; !ok {
			sn := &snapshot{state: sb.state.Clone(), cur: sb.cur}
			sb.cps[next] = sn
			// Insert in sorted position: snapshots are usually created in
			// ascending order, but a partial sweep that stops short of a
			// boundary, a later gap-jump past it, and a rewind-and-resweep
			// can create an earlier boundary after later ones — restore's
			// binary search needs cpTimes sorted regardless.
			i := sort.Search(len(sb.cpTimes), func(i int) bool { return sb.cpTimes[i] > next })
			sb.cpTimes = append(sb.cpTimes, 0)
			copy(sb.cpTimes[i+1:], sb.cpTimes[i:])
			sb.cpTimes[i] = next
		}
	}
	if t > sb.stateTime {
		sb.cur = sb.st.ApplyUpTo(sb.cur, t, sb.state)
		sb.stateTime = t
	}
}

// restore rewinds the state to the nearest checkpoint at or before t
// (the time-0 state when none exists yet).
func (sb *storeBacking) restore(t uint64) {
	i := sort.Search(len(sb.cpTimes), func(i int) bool { return sb.cpTimes[i] > t }) - 1
	if i < 0 {
		sb.resetToZero()
		return
	}
	ck := sb.cpTimes[i]
	sn := sb.cps[ck]
	sb.state.CopyFrom(sn.state)
	sb.cur = sn.cur
	sb.stateTime = ck
}
