// Package replay implements the paper's trace-based replay backend: the
// same unified simulator interface as a live simulation, but backed by
// a parsed VCD trace. Because SetTime works in both directions, the
// hgdb runtime can extend intra-cycle reverse debugging to full reverse
// debugging — stepping to previous clock cycles and re-running the
// breakpoint schedule in reverse order (§3.2).
package replay

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/rtl"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// Engine replays a VCD trace behind the vpi.Interface.
type Engine struct {
	trace     *vcd.Trace
	time      uint64
	callbacks map[int]func(uint64)
	cbOrder   []int
	nextCB    int
}

var (
	_ vpi.Interface       = (*Engine)(nil)
	_ vpi.BatchReader     = (*Engine)(nil)
	_ vpi.BatchReaderInto = (*Engine)(nil)
)

// New wraps a parsed trace.
func New(trace *vcd.Trace) *Engine {
	return &Engine{trace: trace, callbacks: map[int]func(uint64){}}
}

// MaxTime returns the final timestamp in the trace.
func (e *Engine) MaxTime() uint64 { return e.trace.MaxTime }

// GetValue implements vpi.Interface: the signal's recorded value at the
// current replay time.
func (e *Engine) GetValue(path string) (eval.Value, error) {
	ts, ok := e.trace.Signal(path)
	if !ok {
		return eval.Value{}, fmt.Errorf("replay: unknown signal %q", path)
	}
	return eval.Make(ts.ValueAt(e.time), ts.Width, false), nil
}

// GetValues implements vpi.BatchReader: one trace lookup pass for the
// whole dependency set at the current replay time.
func (e *Engine) GetValues(paths []string) ([]eval.Value, error) {
	out := make([]eval.Value, len(paths))
	if err := e.GetValuesInto(paths, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetValuesInto implements vpi.BatchReaderInto without allocating.
func (e *Engine) GetValuesInto(paths []string, dst []eval.Value) error {
	if len(dst) < len(paths) {
		return fmt.Errorf("replay: batch destination too short: %d < %d", len(dst), len(paths))
	}
	for i, p := range paths {
		ts, ok := e.trace.Signal(p)
		if !ok {
			return fmt.Errorf("replay: unknown signal %q", p)
		}
		dst[i] = eval.Make(ts.ValueAt(e.time), ts.Width, false)
	}
	return nil
}

// Hierarchy implements vpi.Interface with the scope tree reconstructed
// from the trace (hierarchy only — no definition information, as the
// paper notes for VCD).
func (e *Engine) Hierarchy() *rtl.InstanceNode { return e.trace.Hierarchy }

// ClockName implements vpi.Interface.
func (e *Engine) ClockName() string {
	if e.trace.Hierarchy == nil {
		return "clock"
	}
	return e.trace.Hierarchy.Path + ".clock"
}

// OnClockEdge implements vpi.Interface.
func (e *Engine) OnClockEdge(cb func(time uint64)) int {
	id := e.nextCB
	e.nextCB++
	e.callbacks[id] = cb
	e.cbOrder = append(e.cbOrder, id)
	return id
}

// RemoveCallback implements vpi.Interface.
func (e *Engine) RemoveCallback(id int) {
	delete(e.callbacks, id)
	for i, v := range e.cbOrder {
		if v == id {
			e.cbOrder = append(e.cbOrder[:i], e.cbOrder[i+1:]...)
			break
		}
	}
}

// Time implements vpi.Interface.
func (e *Engine) Time() uint64 { return e.time }

// SetTime implements vpi.Interface — the primitive that unlocks reverse
// debugging. Seeking does not fire edge callbacks; use StepForward and
// StepBackward to emulate clock edges.
func (e *Engine) SetTime(t uint64) error {
	if t > e.trace.MaxTime {
		return fmt.Errorf("replay: time %d beyond end of trace (%d)", t, e.trace.MaxTime)
	}
	e.time = t
	return nil
}

// SetValue implements vpi.Interface; traces are immutable.
func (e *Engine) SetValue(string, uint64) error {
	return fmt.Errorf("%w: cannot set values on a trace file", vpi.ErrNotSupported)
}

func (e *Engine) fire() {
	for _, id := range e.cbOrder {
		if cb, ok := e.callbacks[id]; ok {
			cb(e.time)
		}
	}
}

// StepForward advances one cycle and fires edge callbacks; returns
// false at the end of the trace.
func (e *Engine) StepForward() bool {
	if e.time >= e.trace.MaxTime {
		return false
	}
	e.time++
	e.fire()
	return true
}

// StepBackward rewinds one cycle and fires edge callbacks; returns
// false at time zero.
func (e *Engine) StepBackward() bool {
	if e.time == 0 {
		return false
	}
	e.time--
	e.fire()
	return true
}

// Run advances up to n cycles, stopping at the end of the trace.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		if !e.StepForward() {
			return
		}
	}
}
