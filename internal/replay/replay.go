// Package replay implements the paper's trace-based replay backend: the
// same unified simulator interface as a live simulation, but backed by
// a recorded VCD trace. Because SetTime works in both directions, the
// hgdb runtime can extend intra-cycle reverse debugging to full reverse
// debugging — stepping to previous clock cycles and re-running the
// breakpoint schedule in reverse order (§3.2).
//
// Two trace representations are supported behind one Engine type:
//
//   - New wraps an eagerly parsed vcd.Trace (every signal's full
//     timeline in memory) — simple, and the reference implementation
//     the checkpointed path is differentially tested against.
//   - NewStore wraps a vcd.Store block index: signal timelines decode
//     lazily (Prefetch materializes the debugger's dependency union),
//     and backward SetTime restores the nearest periodic value-snapshot
//     checkpoint then replays forward deltas, making a reverse step
//     O(checkpoint interval) instead of O(t) on undecoded state.
package replay

import (
	"fmt"
	"sync/atomic"

	"repro/internal/eval"
	"repro/internal/rtl"
	"repro/internal/val"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// backing is the trace representation behind an Engine. Implementations
// answer value queries at an arbitrary time; the Engine owns time
// itself, clock-edge callbacks, and the vpi surface.
type backing interface {
	maxTime() uint64
	hierarchy() *rtl.InstanceNode
	// bits returns the signal's recorded four-state value at time t —
	// traces are the one backend whose native value plane really is
	// four-state. The Engine lowers it onto the two-state vpi surface
	// where possible.
	bits(path string, t uint64) (val.Bits, error)
	// prefetch advises which paths will be read every cycle.
	prefetch(paths []string)
	// checkpoints reports how many restore points exist (stats).
	checkpoints() int
	// trackChanges registers the dirty-set watch list and changedInto
	// reports, for each tracked path, whether it may have changed since
	// the previous poll (the vpi.ChangeReporter capability at time t).
	trackChanges(paths []string)
	changedInto(t uint64, dst []bool) bool
}

// Engine replays a VCD trace behind the vpi.Interface.
type Engine struct {
	src backing
	// time is atomic because the debug server dispatches raw reads on
	// connection goroutines while the owning goroutine steps/seeks; a
	// batched read loads it once so one batch sees one instant.
	time      atomic.Uint64
	callbacks map[int]func(uint64)
	cbOrder   []int
	nextCB    int
}

var (
	_ vpi.Interface       = (*Engine)(nil)
	_ vpi.BatchReader     = (*Engine)(nil)
	_ vpi.BatchReaderInto = (*Engine)(nil)
	_ vpi.Prefetcher      = (*Engine)(nil)
	_ vpi.ChangeReporter  = (*Engine)(nil)
	_ vpi.BitsReader      = (*Engine)(nil)
)

// traceBacking adapts an eager vcd.Trace: every query is a binary
// search over the signal's fully materialized timeline.
type traceBacking struct {
	trace *vcd.Trace

	// Dirty-set tracking: per tracked signal, the change count at the
	// last poll time. Equal counts at two instants bracket no change
	// record, so the value is identical — which makes the stamp valid
	// in both time directions (reverse debugging included).
	tracked   []*vcd.TraceSignal // nil entries: unresolved paths
	lastCount []int
	fresh     bool
}

func (tb *traceBacking) maxTime() uint64              { return tb.trace.MaxTime }
func (tb *traceBacking) hierarchy() *rtl.InstanceNode { return tb.trace.Hierarchy }
func (tb *traceBacking) prefetch([]string)            {}
func (tb *traceBacking) checkpoints() int             { return 0 }
func (tb *traceBacking) bits(path string, t uint64) (val.Bits, error) {
	ts, ok := tb.trace.Signal(path)
	if !ok {
		return val.Bits{}, fmt.Errorf("replay: unknown signal %q", path)
	}
	return ts.BitsAt(t), nil
}

func (tb *traceBacking) trackChanges(paths []string) {
	tb.tracked = make([]*vcd.TraceSignal, len(paths))
	tb.lastCount = make([]int, len(paths))
	for i, p := range paths {
		tb.tracked[i], _ = tb.trace.Signal(p)
	}
	tb.fresh = true
}

func (tb *traceBacking) changedInto(t uint64, dst []bool) bool {
	if tb.tracked == nil || len(dst) < len(tb.tracked) {
		return false
	}
	first := tb.fresh
	tb.fresh = false
	for i, ts := range tb.tracked {
		if ts == nil {
			dst[i] = true
			continue
		}
		n := ts.ChangeCountAt(t)
		dst[i] = first || n != tb.lastCount[i]
		tb.lastCount[i] = n
	}
	return true
}

// New wraps an eagerly parsed trace.
func New(trace *vcd.Trace) *Engine {
	return newEngine(&traceBacking{trace: trace})
}

// NewStore wraps a block-store trace index with checkpointed state
// reconstruction; see the package comment and WithCheckpointInterval.
func NewStore(store *vcd.Store, opts ...StoreEngineOption) *Engine {
	return newEngine(newStoreBacking(store, opts...))
}

func newEngine(src backing) *Engine {
	return &Engine{src: src, callbacks: map[int]func(uint64){}}
}

// MaxTime returns the final timestamp in the trace.
func (e *Engine) MaxTime() uint64 { return e.src.maxTime() }

// Checkpoints returns how many value-snapshot restore points the
// backend currently holds (always 0 for eager traces).
func (e *Engine) Checkpoints() int { return e.src.checkpoints() }

// TrackChanges implements vpi.ChangeReporter: registers the dirty-set
// watch list with the trace backend. The eager backend answers polls
// by change-count stamps on its decoded timelines; the block store
// derives the per-edge change set from its change-record streams via a
// resumable cursor.
func (e *Engine) TrackChanges(paths []string) { e.src.trackChanges(paths) }

// ChangedInto implements vpi.ChangeReporter at the current replay time.
func (e *Engine) ChangedInto(dst []bool) bool {
	return e.src.changedInto(e.time.Load(), dst)
}

// Prefetch implements vpi.Prefetcher: the debugger runtime advises the
// set of signal paths it will read every cycle (its breakpoint/watch
// dependency union), and the store backend materializes exactly those
// timelines so per-cycle reads never touch undecoded blocks or move the
// full replay state.
func (e *Engine) Prefetch(paths []string) { e.src.prefetch(paths) }

// GetValue implements vpi.Interface: the signal's recorded value at the
// current replay time, lowered onto the two-state fast path. A value
// that cannot be lowered — x/z bits, or wider than 64 bits — returns an
// error wrapping vpi.ErrFourState; callers that can handle the general
// representation read through GetBits instead.
func (e *Engine) GetValue(path string) (eval.Value, error) {
	b, err := e.src.bits(path, e.time.Load())
	if err != nil {
		return eval.Value{}, err
	}
	v, ok := eval.FromBits(b)
	if !ok {
		return eval.Value{}, fmt.Errorf("%w: %s = %s", vpi.ErrFourState, path, b.String())
	}
	return v, nil
}

// GetBits implements vpi.BitsReader: the signal's full four-state value
// at the current replay time.
func (e *Engine) GetBits(path string) (val.Bits, error) {
	return e.src.bits(path, e.time.Load())
}

// GetValues implements vpi.BatchReader: one trace lookup pass for the
// whole dependency set at the current replay time.
func (e *Engine) GetValues(paths []string) ([]eval.Value, error) {
	out := make([]eval.Value, len(paths))
	if err := e.GetValuesInto(paths, out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetValuesInto implements vpi.BatchReaderInto without allocating.
func (e *Engine) GetValuesInto(paths []string, dst []eval.Value) error {
	if len(dst) < len(paths) {
		return fmt.Errorf("replay: batch destination too short: %d < %d", len(dst), len(paths))
	}
	t := e.time.Load()
	for i, p := range paths {
		b, err := e.src.bits(p, t)
		if err != nil {
			return err
		}
		v, ok := eval.FromBits(b)
		if !ok {
			return fmt.Errorf("%w: %s = %s", vpi.ErrFourState, p, b.String())
		}
		dst[i] = v
	}
	return nil
}

// Hierarchy implements vpi.Interface with the scope tree reconstructed
// from the trace (hierarchy only — no definition information, as the
// paper notes for VCD).
func (e *Engine) Hierarchy() *rtl.InstanceNode { return e.src.hierarchy() }

// ClockName implements vpi.Interface.
func (e *Engine) ClockName() string {
	if e.src.hierarchy() == nil {
		return "clock"
	}
	return e.src.hierarchy().Path + ".clock"
}

// OnClockEdge implements vpi.Interface.
func (e *Engine) OnClockEdge(cb func(time uint64)) int {
	id := e.nextCB
	e.nextCB++
	e.callbacks[id] = cb
	e.cbOrder = append(e.cbOrder, id)
	return id
}

// RemoveCallback implements vpi.Interface.
func (e *Engine) RemoveCallback(id int) {
	delete(e.callbacks, id)
	for i, v := range e.cbOrder {
		if v == id {
			e.cbOrder = append(e.cbOrder[:i], e.cbOrder[i+1:]...)
			break
		}
	}
}

// Time implements vpi.Interface.
func (e *Engine) Time() uint64 { return e.time.Load() }

// SetTime implements vpi.Interface — the primitive that unlocks reverse
// debugging. Seeking does not fire edge callbacks; use StepForward and
// StepBackward to emulate clock edges. On a store backend a backward
// seek costs O(checkpoint interval) trace records, not O(t).
func (e *Engine) SetTime(t uint64) error {
	if t > e.src.maxTime() {
		return fmt.Errorf("replay: time %d beyond end of trace (%d)", t, e.src.maxTime())
	}
	e.time.Store(t)
	return nil
}

// SetValue implements vpi.Interface; traces are immutable.
func (e *Engine) SetValue(string, uint64) error {
	return fmt.Errorf("%w: cannot set values on a trace file", vpi.ErrNotSupported)
}

func (e *Engine) fire() {
	for _, id := range e.cbOrder {
		if cb, ok := e.callbacks[id]; ok {
			cb(e.time.Load())
		}
	}
}

// StepForward advances one cycle and fires edge callbacks; returns
// false at the end of the trace.
func (e *Engine) StepForward() bool {
	t := e.time.Load()
	if t >= e.src.maxTime() {
		return false
	}
	e.time.Store(t + 1)
	e.fire()
	return true
}

// StepBackward rewinds one cycle and fires edge callbacks; returns
// false at time zero.
func (e *Engine) StepBackward() bool {
	t := e.time.Load()
	if t == 0 {
		return false
	}
	e.time.Store(t - 1)
	e.fire()
	return true
}

// Run advances up to n cycles, stopping at the end of the trace.
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		if !e.StepForward() {
			return
		}
	}
}
