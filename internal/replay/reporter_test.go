package replay

import (
	"bytes"
	"testing"

	"repro/internal/vcd"
	"repro/internal/vpi"
)

// reporterEngines builds the eager and store engines over the shared
// counter trace, so every dirty-set contract below is checked against
// both derivations (timeline change-count stamps vs block-record
// cursor scans).
func reporterEngines(t *testing.T) map[string]*Engine {
	t.Helper()
	data := makeVCD(t)
	return map[string]*Engine{
		"eager": New(makeTrace(t)),
		"store": storeEngine(t, data, 3),
	}
}

func TestChangeReporterForward(t *testing.T) {
	for name, e := range reporterEngines(t) {
		t.Run(name, func(t *testing.T) {
			var _ vpi.ChangeReporter = e
			// count changes every enabled cycle; en only at the poke.
			e.TrackChanges([]string{"Counter.count", "Counter.en"})
			dst := make([]bool, 2)
			e.SetTime(4)
			if ok := e.ChangedInto(dst); !ok || !dst[0] || !dst[1] {
				t.Fatalf("first poll = %v ok=%v, want all dirty", dst, ok)
			}
			// One forward cycle: count moved, en did not.
			e.SetTime(5)
			if ok := e.ChangedInto(dst); !ok {
				t.Fatal("forward poll not ok")
			}
			if !dst[0] || dst[1] {
				t.Fatalf("forward delta = %v, want [count dirty, en clean]", dst)
			}
			// Same instant again: nothing changed in the empty window.
			if ok := e.ChangedInto(dst); !ok || dst[0] || dst[1] {
				t.Fatalf("empty-window poll = %v ok=%v, want clean", dst, ok)
			}
		})
	}
}

func TestChangeReporterBackwardCannotBound(t *testing.T) {
	for name, e := range reporterEngines(t) {
		t.Run(name, func(t *testing.T) {
			e.TrackChanges([]string{"Counter.count"})
			dst := make([]bool, 1)
			e.SetTime(6)
			e.ChangedInto(dst)
			// Backward seek. The store cursor cannot scan backwards: it
			// must answer "cannot bound" (the eager stamps can — either
			// verdict is allowed, but a claimed bound must be correct).
			e.SetTime(3)
			ok := e.ChangedInto(dst)
			if ok && !dst[0] {
				t.Fatal("backward move claimed count clean (value differs at t=3 vs t=6)")
			}
			// The poll after re-anchoring must track forward deltas
			// correctly again.
			e.SetTime(4)
			if ok := e.ChangedInto(dst); !ok || !dst[0] {
				t.Fatalf("post-rewind forward delta lost: dirty=%v ok=%v", dst[0], ok)
			}
		})
	}
}

func TestChangeReporterIdleStretch(t *testing.T) {
	for name, e := range reporterEngines(t) {
		t.Run(name, func(t *testing.T) {
			// en is constant after the initial poke: polls across later
			// windows must report it clean.
			e.TrackChanges([]string{"Counter.en"})
			dst := make([]bool, 1)
			e.SetTime(3)
			e.ChangedInto(dst)
			for tm := uint64(4); tm <= 9; tm++ {
				e.SetTime(tm)
				if ok := e.ChangedInto(dst); !ok || dst[0] {
					t.Fatalf("t=%d: idle signal reported dirty=%v ok=%v", tm, dst[0], ok)
				}
			}
		})
	}
}

func TestChangeReporterUnknownPathAndUnregistered(t *testing.T) {
	for name, e := range reporterEngines(t) {
		t.Run(name, func(t *testing.T) {
			dst := make([]bool, 2)
			if ok := e.ChangedInto(dst); ok {
				t.Fatal("unregistered reporter claimed a bound")
			}
			e.TrackChanges([]string{"Counter.ghost", "Counter.en"})
			e.SetTime(3)
			e.ChangedInto(dst)
			e.SetTime(4)
			if ok := e.ChangedInto(dst); !ok || !dst[0] {
				t.Fatalf("unknown path not conservatively dirty: %v ok=%v", dst, ok)
			}
		})
	}
}

// TestChangeReporterMatchesValueDiff is the store-vs-truth property:
// stepping the trace forward cycle by cycle, a signal reported clean
// must have an unchanged value — checked for every signal in the trace
// at once.
func TestChangeReporterMatchesValueDiff(t *testing.T) {
	data := makeVCD(t)
	tr, err := vcd.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	names := tr.SignalNames()
	for engName, e := range reporterEngines(t) {
		t.Run(engName, func(t *testing.T) {
			e.TrackChanges(names)
			dst := make([]bool, len(names))
			e.ChangedInto(dst) // consume registration report
			prev := make([]uint64, len(names))
			for i, n := range names {
				ts, _ := tr.Signal(n)
				prev[i] = ts.ValueAt(e.Time())
			}
			for e.Time() < e.MaxTime() {
				e.SetTime(e.Time() + 1)
				if ok := e.ChangedInto(dst); !ok {
					t.Fatalf("t=%d: forward poll not ok", e.Time())
				}
				for i, n := range names {
					ts, _ := tr.Signal(n)
					cur := ts.ValueAt(e.Time())
					if cur != prev[i] && !dst[i] {
						t.Fatalf("t=%d: %s changed %d->%d but reported clean",
							e.Time(), n, prev[i], cur)
					}
					prev[i] = cur
				}
			}
		})
	}
}
