package replay

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/vcd"
)

// storeEngine parses the raw VCD into a block store and wraps it in a
// checkpointed engine with deliberately tiny blocks and intervals so
// short test traces still cross many boundaries.
func storeEngine(t testing.TB, data []byte, interval uint64) *Engine {
	t.Helper()
	st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(st, WithCheckpointInterval(interval))
}

// TestStoreEngineDifferential is the reverse-SetTime correctness
// contract: across random time jumps (forward and backward), the
// checkpointed store engine must return bit-identical values to the
// seed eager-trace implementation for every signal — with none, some,
// and all signals materialized.
func TestStoreEngineDifferential(t *testing.T) {
	data := makeVCD(t)
	seed := New(makeTrace(t))
	eng := storeEngine(t, data, 3)
	names := func() []string {
		tr, _ := vcd.Parse(bytes.NewReader(data))
		return tr.SignalNames()
	}()

	rng := rand.New(rand.NewSource(42))
	max := seed.MaxTime()
	if max != eng.MaxTime() {
		t.Fatalf("MaxTime: store %d, seed %d", eng.MaxTime(), max)
	}
	compareAll := func(jump int) {
		for _, name := range names {
			want, err := seed.GetValue(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.GetValue(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("jump %d: %s@%d = %v, want %v", jump, name, eng.Time(), got, want)
			}
		}
	}
	for jump := 0; jump < 200; jump++ {
		tm := uint64(rng.Int63n(int64(max + 1)))
		if err := seed.SetTime(tm); err != nil {
			t.Fatal(err)
		}
		if err := eng.SetTime(tm); err != nil {
			t.Fatal(err)
		}
		compareAll(jump)
		switch jump {
		case 66:
			// Materialize part of the signal set mid-run; answers from
			// the lazy binary-search path must agree with state sync.
			eng.Prefetch(names[:len(names)/2])
		case 133:
			eng.Prefetch(names)
		}
	}
	if eng.Checkpoints() == 0 {
		t.Fatal("no checkpoints created across 200 random jumps")
	}
}

// diskStoreEngine round-trips the trace through the on-disk store
// format (WriteStore → OpenStore) before wrapping it in a checkpointed
// engine, with a deliberately tiny block cache so LRU eviction churns
// during the test.
func diskStoreEngine(t testing.TB, data []byte, interval uint64) *Engine {
	t.Helper()
	st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vcd.WriteStore(&buf, st); err != nil {
		t.Fatal(err)
	}
	ds, err := vcd.OpenStore(bytes.NewReader(buf.Bytes()), int64(buf.Len()), vcd.OpenOptions{BlockCacheBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(ds, WithCheckpointInterval(interval))
}

// TestDiskStoreEngineDifferential runs the full replay contract over a
// disk-opened store: random forward/backward jumps, partial and full
// materialization, and checkpointed reverse seeks must all be
// bit-identical to the seed eager-trace engine — proving the replay
// and checkpoint machinery runs unchanged over the on-disk format.
func TestDiskStoreEngineDifferential(t *testing.T) {
	data := makeVCD(t)
	seed := New(makeTrace(t))
	eng := diskStoreEngine(t, data, 3)
	names := func() []string {
		tr, _ := vcd.Parse(bytes.NewReader(data))
		return tr.SignalNames()
	}()
	rng := rand.New(rand.NewSource(7))
	max := seed.MaxTime()
	if max != eng.MaxTime() {
		t.Fatalf("MaxTime: disk store %d, seed %d", eng.MaxTime(), max)
	}
	for jump := 0; jump < 200; jump++ {
		tm := uint64(rng.Int63n(int64(max + 1)))
		if err := seed.SetTime(tm); err != nil {
			t.Fatal(err)
		}
		if err := eng.SetTime(tm); err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			want, err := seed.GetValue(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.GetValue(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("jump %d: %s@%d = %v, want %v", jump, name, eng.Time(), got, want)
			}
		}
		switch jump {
		case 66:
			eng.Prefetch(names[:len(names)/2])
		case 133:
			eng.Prefetch(names)
		}
	}
	if eng.Checkpoints() == 0 {
		t.Fatal("no checkpoints created across 200 random jumps")
	}
}

// TestStoreEngineStepsMatchSeed runs the two engines through the same
// forward/backward step sequence and compares values and callback
// times at every point.
func TestStoreEngineStepsMatchSeed(t *testing.T) {
	data := makeVCD(t)
	seed := New(makeTrace(t))
	eng := storeEngine(t, data, 4)
	var seedTimes, engTimes []uint64
	seed.OnClockEdge(func(tm uint64) { seedTimes = append(seedTimes, tm) })
	eng.OnClockEdge(func(tm uint64) { engTimes = append(engTimes, tm) })
	step := func(fwd bool) {
		var a, b bool
		if fwd {
			a, b = seed.StepForward(), eng.StepForward()
		} else {
			a, b = seed.StepBackward(), eng.StepBackward()
		}
		if a != b {
			t.Fatalf("step(fwd=%v) diverged: seed %v, store %v", fwd, a, b)
		}
		v1, err1 := seed.GetValue("Counter.count")
		v2, err2 := eng.GetValue("Counter.count")
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Fatalf("count@%d: seed %v (%v), store %v (%v)", seed.Time(), v1, err1, v2, err2)
		}
	}
	for _, fwd := range []bool{true, true, true, true, true, false, false, true, false, true} {
		step(fwd)
	}
	if len(seedTimes) != len(engTimes) {
		t.Fatalf("callback counts: seed %d, store %d", len(seedTimes), len(engTimes))
	}
	for i := range seedTimes {
		if seedTimes[i] != engTimes[i] {
			t.Fatalf("callback[%d]: seed %d, store %d", i, seedTimes[i], engTimes[i])
		}
	}
}

// TestStoreEngineBatchZeroAlloc pins the BatchReaderInto contract on
// the store backend: once the dependency union is prefetched
// (materialized), the per-cycle batched read allocates nothing.
func TestStoreEngineBatchZeroAlloc(t *testing.T) {
	eng := storeEngine(t, makeVCD(t), 4)
	paths := []string{"Counter.count", "Counter.out", "Counter.en"}
	eng.Prefetch(paths)
	dst := make([]eval.Value, len(paths))
	eng.SetTime(5)
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.GetValuesInto(paths, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("GetValuesInto allocated %.1f per call, want 0", allocs)
	}
}

// TestStoreEngineInitialValues pins time-zero semantics: real
// simulator output dumps nonzero initial values at #0 ($dumpvars), and
// the store engine must return them — at first read, and again after
// seeking away and back — identically to the seed engine. The repo's
// own Recorder happens to dump zeros at #0, which is why the random
// differential test alone cannot catch this.
func TestStoreEngineInitialValues(t *testing.T) {
	const trace = `$scope module Top $end
$var wire 1 ! rst $end
$var wire 8 " v $end
$upscope $end
$enddefinitions $end
#0
1!
b101 "
#2
0!
b110 "
#4
b111 "
`
	seed := New(func() *vcd.Trace {
		tr, err := vcd.Parse(bytes.NewReader([]byte(trace)))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}())
	eng := storeEngine(t, []byte(trace), 2)
	check := func(when string) {
		for _, tm := range []uint64{0, 1, 2, 3, 4} {
			seed.SetTime(tm)
			eng.SetTime(tm)
			for _, name := range []string{"Top.rst", "Top.v"} {
				want, err := seed.GetValue(name)
				if err != nil {
					t.Fatal(err)
				}
				got, err := eng.GetValue(name)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s: %s@%d = %v, want %v", when, name, tm, got, want)
				}
			}
		}
	}
	check("first pass")
	// Specifically: rst=1, v=5 at t=0 (the reported bug returned 0s).
	eng.SetTime(0)
	if v, _ := eng.GetValue("Top.rst"); v.Bits != 1 {
		t.Fatalf("rst@0 = %d, want 1", v.Bits)
	}
	if v, _ := eng.GetValue("Top.v"); v.Bits != 5 {
		t.Fatalf("v@0 = %d, want 5", v.Bits)
	}
	check("after seeks")
}

// TestStoreEngineSparseGapSync pins sync cost on sparse traces: real
// dumps count timescale units, so a small explicit checkpoint interval
// against a #1e9-long record-free gap must not loop (or snapshot) once
// per boundary. Sweep work is O(records + snapshots actually taken);
// this test hangs for ~a minute if a per-boundary regression returns.
func TestStoreEngineSparseGapSync(t *testing.T) {
	const trace = `$scope module Top $end
$var wire 1 ! a $end
$upscope $end
$enddefinitions $end
#0
1!
#1000000000
0!
`
	st, err := vcd.ParseStore(bytes.NewReader([]byte(trace)), vcd.StoreOptions{BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewStore(st, WithCheckpointInterval(64))
	read := func(tm, want uint64) {
		if err := eng.SetTime(tm); err != nil {
			t.Fatal(err)
		}
		v, err := eng.GetValue("Top.a")
		if err != nil {
			t.Fatal(err)
		}
		if v.Bits != want {
			t.Fatalf("a@%d = %d, want %d", tm, v.Bits, want)
		}
	}
	read(eng.MaxTime(), 0)   // forward across the gap
	read(500000000, 1)       // backward into the gap
	read(eng.MaxTime()-1, 1) // forward again, just before the change
	read(0, 1)               // all the way back
	read(eng.MaxTime(), 0)   // and forward once more
	if n := eng.Checkpoints(); n > 4 {
		t.Fatalf("checkpoints = %d, want a handful (one per interval containing records, one per gap landing)", n)
	}
}

// TestStoreCheckpointOrderInvariant pins the restore lookup's sorted
// invariant: a partial sweep that consumes a record without crossing
// its checkpoint boundary, then a gap-jumping long sweep, then a
// rewind-and-resweep creates an earlier checkpoint AFTER later ones.
// cpTimes must stay sorted so a backward seek still binary-searches to
// the nearest checkpoint instead of silently replaying from t=0.
func TestStoreCheckpointOrderInvariant(t *testing.T) {
	const trace = `$scope module Top $end
$var wire 8 ! v $end
$upscope $end
$enddefinitions $end
#5
b1 !
#95
b10 !
#200
b11 !
`
	st, err := vcd.ParseStore(bytes.NewReader([]byte(trace)), vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	sb := newStoreBacking(st, WithCheckpointInterval(10))
	// sync(7) consumes the t=5 record without snapshotting boundary 10;
	// sync(200) gap-jumps past 10 and snapshots 90/100/200; the rewind
	// and resweep to 25 finally creates checkpoint 10 — out of creation
	// order.
	for _, tm := range []uint64{7, 200, 3, 25} {
		sb.sync(tm)
	}
	for i := 1; i < len(sb.cpTimes); i++ {
		if sb.cpTimes[i-1] >= sb.cpTimes[i] {
			t.Fatalf("cpTimes not sorted: %v", sb.cpTimes)
		}
	}
	// A backward seek to 60 must land on checkpoint 10, not reset to
	// time zero (which would silently degrade reverse seeks to O(t)).
	sb.sync(200)
	sb.restore(60)
	if sb.stateTime != 10 {
		t.Fatalf("restore(60) landed at %d, want checkpoint 10 (cpTimes %v)", sb.stateTime, sb.cpTimes)
	}
	if got, _ := sb.bits("Top.v", 60); got.V0 != 1 {
		t.Fatalf("v@60 = %d, want 1", got.V0)
	}
}

// TestStoreEngineConcurrentReads models the hgdb-replay deployment
// shape: the simulation goroutine sweeps replay state forward and
// backward while server connection goroutines issue raw get_value
// reads and a breakpoint arm materializes the dependency union
// mid-flight. Values must stay bit-identical to the seed engine
// throughout; run with -race to catch reader/sync races.
func TestStoreEngineConcurrentReads(t *testing.T) {
	data := makeVCD(t)
	st, err := vcd.ParseStore(bytes.NewReader(data), vcd.StoreOptions{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	sb := newStoreBacking(st, WithCheckpointInterval(2))
	seed := New(makeTrace(t))
	names := func() []string {
		tr, _ := vcd.Parse(bytes.NewReader(data))
		return tr.SignalNames()
	}()
	max := st.MaxTime
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tm := uint64((i*7 + g*3) % int(max+1))
				name := names[(i+g)%len(names)]
				got, err := sb.bits(name, tm)
				if err != nil {
					t.Error(err)
					return
				}
				ref, ok := seedSignal(seed, name)
				if !ok {
					t.Errorf("seed trace missing %s", name)
					return
				}
				if want := ref.ValueAt(tm); got.V0 != want {
					t.Errorf("%s@%d = %d, want %d", name, tm, got.V0, want)
					return
				}
				if i == 150 && g == 0 {
					sb.prefetch(names[:len(names)/2])
				}
			}
		}(g)
	}
	wg.Wait()
}

// seedSignal resolves a signal on the eager reference engine's trace.
func seedSignal(e *Engine, name string) (*vcd.TraceSignal, bool) {
	return e.src.(*traceBacking).trace.Signal(name)
}

// TestStoreEngineReverseUsesCheckpoints checks the mechanism (not just
// the answers): after a forward sweep, a backward seek restores from a
// snapshot rather than replaying from zero — observable as checkpoint
// population plus correct unmaterialized reads straight after the
// restore.
func TestStoreEngineReverseUsesCheckpoints(t *testing.T) {
	data := makeVCD(t)
	eng := storeEngine(t, data, 2)
	// Forward sweep with an unmaterialized read each cycle populates
	// every boundary snapshot.
	for eng.StepForward() {
		if _, err := eng.GetValue("Counter.count"); err != nil {
			t.Fatal(err)
		}
	}
	want := int(eng.MaxTime() / 2)
	if got := eng.Checkpoints(); got != want {
		t.Fatalf("checkpoints after full sweep = %d, want %d", got, want)
	}
	seed := New(makeTrace(t))
	for tm := int64(eng.MaxTime()); tm >= 0; tm-- {
		eng.SetTime(uint64(tm))
		seed.SetTime(uint64(tm))
		got, err := eng.GetValue("Counter.count")
		if err != nil {
			t.Fatal(err)
		}
		wantV, _ := seed.GetValue("Counter.count")
		if got != wantV {
			t.Fatalf("reverse read@%d = %v, want %v", tm, got, wantV)
		}
	}
}
