package symtab

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/rtl"
)

// buildDualCore makes a top with two instances of a conditional
// accumulator — the multi-instance case that yields breakpoint
// "threads".
func buildDualCore(t *testing.T) (*passes.Compilation, int) {
	t.Helper()
	c := generator.NewCircuit("Top")
	core := c.NewModule("Core")
	d := core.Input("d", ir.UIntType(8))
	q := core.Output("q", ir.UIntType(8))
	acc := core.RegInit("acc", ir.UIntType(8), core.Lit(0, 8))
	var accLine int
	core.When(d.Bit(0), func() {
		acc.Set(acc.AddMod(d)) // breakpoint target line
		accLine = callerLine() - 1
	})
	q.Set(acc)

	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	u0 := top.Instance("u0", core)
	u1 := top.Instance("u1", core)
	u0.IO("d").Set(x)
	u1.IO("d").Set(x.Not())
	y.Set(u0.IO("q").AddMod(u1.IO("q")))

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return comp, accLine
}

func callerLine() int {
	var pcs [1]uintptr
	n := runtimeCallers(2, pcs[:])
	if n == 0 {
		return 0
	}
	return pcLine(pcs[0])
}

func TestBuildAndQueryBreakpoints(t *testing.T) {
	comp, accLine := buildDualCore(t)
	table, err := Build(comp)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// One statement in Core × two instances ⇒ two breakpoints at the
	// line (the "threads" of Fig. 4 B).
	bps := table.BreakpointsAt("symtab_test.go", accLine)
	if len(bps) != 2 {
		t.Fatalf("breakpoints = %d, want 2; all: %+v", len(bps), table.AllBreakpoints())
	}
	names := []string{bps[0].InstanceName, bps[1].InstanceName}
	if names[0] != "Top.u0" || names[1] != "Top.u1" {
		t.Fatalf("instances = %v", names)
	}
	// Both carry the enable condition from the when.
	for _, bp := range bps {
		if bp.Enable == "" {
			t.Fatalf("breakpoint %d missing enable", bp.ID)
		}
	}
	// Unknown location ⇒ empty.
	if got := table.BreakpointsAt("nope.go", 1); len(got) != 0 {
		t.Fatalf("bogus file matched %d", len(got))
	}
}

func TestScopeVarsAndResolution(t *testing.T) {
	comp, accLine := buildDualCore(t)
	table, err := Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	bps := table.BreakpointsAt("symtab_test.go", accLine)
	if len(bps) == 0 {
		t.Fatal("no breakpoints")
	}
	vars := table.ScopeVars(bps[0].ID)
	byName := map[string]string{}
	for _, v := range vars {
		byName[v.Name] = v.RTL
	}
	// The register and the input are visible.
	if byName["acc"] != "acc" || byName["d"] != "d" {
		t.Fatalf("scope vars = %v", byName)
	}
	full, err := table.ResolveScopedVar(bps[0].ID, "acc")
	if err != nil {
		t.Fatal(err)
	}
	if full != "Top.u0.acc" {
		t.Fatalf("resolved = %s", full)
	}
	if _, err := table.ResolveScopedVar(bps[0].ID, "ghost"); err == nil {
		t.Fatal("unknown var resolved")
	}
	if _, err := table.ResolveScopedVar(9999, "acc"); err == nil {
		t.Fatal("unknown breakpoint resolved")
	}
}

func TestGeneratorVars(t *testing.T) {
	comp, _ := buildDualCore(t)
	table, err := Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := table.InstanceIDByName("Top.u1")
	if !ok {
		t.Fatalf("instance Top.u1 missing; have %v", table.Instances())
	}
	gvs := table.GeneratorVars(id)
	found := map[string]bool{}
	for _, gv := range gvs {
		found[gv.Name] = true
	}
	for _, want := range []string{"d", "q", "acc"} {
		if !found[want] {
			t.Fatalf("generator vars missing %q: %v", want, gvs)
		}
	}
	full, err := table.ResolveInstanceVar("Top.u1", "acc")
	if err != nil || full != "Top.u1.acc" {
		t.Fatalf("ResolveInstanceVar = %s, %v", full, err)
	}
	if _, err := table.ResolveInstanceVar("Top.zz", "acc"); err == nil {
		t.Fatal("unknown instance resolved")
	}
}

func TestInstancesAndFiles(t *testing.T) {
	comp, accLine := buildDualCore(t)
	table, _ := Build(comp)
	insts := table.Instances()
	if len(insts) != 3 { // Top, Top.u0, Top.u1
		t.Fatalf("instances = %v", insts)
	}
	files := table.Files()
	if len(files) != 1 || files[0] != "symtab_test.go" {
		t.Fatalf("files = %v", files)
	}
	lines := table.Lines("symtab_test.go")
	foundAcc := false
	for _, l := range lines {
		if l == accLine {
			foundAcc = true
		}
	}
	if !foundAcc {
		t.Fatalf("lines %v missing acc line %d", lines, accLine)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	comp, accLine := buildDualCore(t)
	table, _ := Build(comp)
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Top() != "Top" {
		t.Fatalf("top = %s", loaded.Top())
	}
	if loaded.Mode() != "optimized" {
		t.Fatalf("mode = %s", loaded.Mode())
	}
	before := table.BreakpointsAt("symtab_test.go", accLine)
	after := loaded.BreakpointsAt("symtab_test.go", accLine)
	if len(before) != len(after) {
		t.Fatalf("breakpoints %d -> %d after round trip", len(before), len(after))
	}
	if loaded.TotalRows() != table.TotalRows() {
		t.Fatalf("rows %d -> %d", table.TotalRows(), loaded.TotalRows())
	}
}

func TestDebugModeGrowsSymtab(t *testing.T) {
	// The §4.1 claim: debug mode grows the symbol table (paper ≈30%).
	build := func(debug bool) *Table {
		c := generator.NewCircuit("G")
		m := c.NewModule("G")
		a := m.Input("a", ir.UIntType(8))
		out := m.Output("out", ir.UIntType(8))
		w := m.Wire("w", ir.UIntType(8))
		w.Set(m.Lit(0, 8))
		for i := 0; i < 8; i++ {
			m.When(a.Bit(i), func() {
				w.Set(w.AddMod(m.Lit(uint64(i), 8)))
			})
		}
		// tmp is computed but unused — optimized away in release mode.
		tmp := m.Wire("tmp", ir.UIntType(8))
		tmp.Set(a.Not())
		out.Set(w)
		comp, err := passes.Compile(c.MustBuild(), debug)
		if err != nil {
			t.Fatal(err)
		}
		table, err := Build(comp)
		if err != nil {
			t.Fatal(err)
		}
		return table
	}
	opt := build(false)
	dbg := build(true)
	if dbg.TotalRows() <= opt.TotalRows() {
		t.Fatalf("debug symtab (%d rows) not larger than optimized (%d rows)",
			dbg.TotalRows(), opt.TotalRows())
	}
}

func TestRemapIdentity(t *testing.T) {
	comp, _ := buildDualCore(t)
	table, _ := Build(comp)
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRemap(nl.Hierarchy, table)
	if err != nil {
		t.Fatalf("remap: %v", err)
	}
	if r.ToSim("Top.u0.acc") != "Top.u0.acc" {
		t.Fatalf("identity remap = %s", r.ToSim("Top.u0.acc"))
	}
	back, ok := r.FromSim("Top.u0.acc")
	if !ok || back != "Top.u0.acc" {
		t.Fatalf("FromSim = %s, %v", back, ok)
	}
}

func TestRemapInsideTestbench(t *testing.T) {
	comp, _ := buildDualCore(t)
	table, _ := Build(comp)
	// Simulate a testbench wrapping: TestHarness -> dut (module Top).
	dut := &rtl.InstanceNode{Name: "dut", Module: "Top", Path: "TestHarness.dut",
		Children: []*rtl.InstanceNode{
			{Name: "u0", Module: "Core", Path: "TestHarness.dut.u0"},
			{Name: "u1", Module: "Core", Path: "TestHarness.dut.u1"},
		}}
	harness := &rtl.InstanceNode{Name: "TestHarness", Path: "TestHarness",
		Children: []*rtl.InstanceNode{dut}}
	r, err := NewRemap(harness, table)
	if err != nil {
		t.Fatalf("remap: %v", err)
	}
	if got := r.ToSim("Top.u0.acc"); got != "TestHarness.dut.u0.acc" {
		t.Fatalf("ToSim = %s", got)
	}
	sym, ok := r.FromSim("TestHarness.dut.u1.q")
	if !ok || sym != "Top.u1.q" {
		t.Fatalf("FromSim = %s, %v", sym, ok)
	}
	if _, ok := r.FromSim("TestHarness.other.sig"); ok {
		t.Fatal("outside path mapped")
	}
	if r.Prefix() != "TestHarness.dut" {
		t.Fatalf("prefix = %s", r.Prefix())
	}
}

func TestRemapVCDStyleNoModules(t *testing.T) {
	comp, _ := buildDualCore(t)
	table, _ := Build(comp)
	// VCD hierarchies have no module info; match by instance name and
	// child structure.
	top := &rtl.InstanceNode{Name: "Top", Path: "TB.Top",
		Children: []*rtl.InstanceNode{
			{Name: "u0", Path: "TB.Top.u0"},
			{Name: "u1", Path: "TB.Top.u1"},
		}}
	tb := &rtl.InstanceNode{Name: "TB", Path: "TB", Children: []*rtl.InstanceNode{top}}
	r, err := NewRemap(tb, table)
	if err != nil {
		t.Fatalf("remap: %v", err)
	}
	if got := r.ToSim("Top.u1.acc"); got != "TB.Top.u1.acc" {
		t.Fatalf("ToSim = %s", got)
	}
}

func TestRemapAmbiguous(t *testing.T) {
	comp, _ := buildDualCore(t)
	table, _ := Build(comp)
	mk := func(path string) *rtl.InstanceNode {
		return &rtl.InstanceNode{Name: "dut", Module: "Top", Path: path,
			Children: []*rtl.InstanceNode{
				{Name: "u0", Path: path + ".u0"},
				{Name: "u1", Path: path + ".u1"},
			}}
	}
	root := &rtl.InstanceNode{Name: "TB", Path: "TB",
		Children: []*rtl.InstanceNode{mk("TB.a"), mk("TB.b")}}
	if _, err := NewRemap(root, table); err == nil {
		t.Fatal("ambiguous match accepted")
	}
	// And a hierarchy with no match at all.
	lonely := &rtl.InstanceNode{Name: "X", Path: "X"}
	if _, err := NewRemap(lonely, table); err == nil {
		t.Fatal("missing design accepted")
	}
}

func TestStatsAndRowCounts(t *testing.T) {
	comp, _ := buildDualCore(t)
	table, _ := Build(comp)
	rows := table.NumRows()
	if rows["instance"] != 3 {
		t.Fatalf("instance rows = %d", rows["instance"])
	}
	if rows["breakpoint"] == 0 || rows["variable"] == 0 {
		t.Fatalf("rows = %v", rows)
	}
	if !strings.Contains(table.Stats(), "breakpoint=") {
		t.Fatalf("stats = %s", table.Stats())
	}
}
