package symtab

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// Remap locates the generated design inside a (possibly larger)
// simulated hierarchy and returns a mapper from symbol-table instance
// paths to full simulator paths. This is §3.4's "find the block with
// matching module/signal names": the symbol table only knows the
// relative hierarchy under the generator top; the testbench may have
// wrapped it arbitrarily, but relative structure never changes.
//
// Matching strategy, in order:
//  1. a hierarchy node whose module name equals the symtab top,
//  2. a hierarchy node whose instance name equals the symtab top,
//  3. common-substring matching on instance names (for VCD-style
//     hierarchies with no module information), validated by checking
//     that the symtab's child instance names exist under the candidate.
type Remap struct {
	// nodePath is the full simulator path of the node matching the
	// symtab top.
	nodePath string
	top      string
}

// NewRemap computes the mapping or reports that the design cannot be
// located.
func NewRemap(hier *rtl.InstanceNode, table *Table) (*Remap, error) {
	if hier == nil {
		return nil, fmt.Errorf("symtab: empty hierarchy")
	}
	top := table.Top()
	childNames := topLevelChildren(table)

	var byModule, byName, bySubstring []*rtl.InstanceNode
	hier.Walk(func(n *rtl.InstanceNode) {
		switch {
		case n.Module == top:
			byModule = append(byModule, n)
		case n.Name == top:
			byName = append(byName, n)
		case strings.Contains(n.Name, top) || strings.Contains(top, n.Name):
			bySubstring = append(bySubstring, n)
		}
	})
	candidates := byModule
	if len(candidates) == 0 {
		candidates = byName
	}
	if len(candidates) == 0 {
		candidates = bySubstring
	}
	// Validate candidates structurally: all top-level symtab children
	// must exist under the node.
	var valid []*rtl.InstanceNode
	for _, n := range candidates {
		ok := true
		for _, c := range childNames {
			if n.FindChild(c) == nil {
				ok = false
				break
			}
		}
		if ok {
			valid = append(valid, n)
		}
	}
	if len(valid) == 0 {
		return nil, fmt.Errorf("symtab: cannot locate generated design %q in simulated hierarchy", top)
	}
	if len(valid) > 1 {
		return nil, fmt.Errorf("symtab: design %q matches %d hierarchy nodes; disambiguation required", top, len(valid))
	}
	return &Remap{nodePath: valid[0].Path, top: top}, nil
}

// topLevelChildren extracts the instance names directly under the
// symtab top from recorded instance paths.
func topLevelChildren(table *Table) []string {
	seen := map[string]bool{}
	prefix := table.Top() + "."
	for _, p := range table.Instances() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	var out []string
	for c := range seen {
		out = append(out, c)
	}
	return out
}

// ToSim converts a symtab-relative path ("Top.u0.sig" or "Top.u0") to
// the full simulator path.
func (r *Remap) ToSim(symPath string) string {
	if symPath == r.top {
		return r.nodePath
	}
	if strings.HasPrefix(symPath, r.top+".") {
		return r.nodePath + symPath[len(r.top):]
	}
	// Already instance-relative (no top prefix).
	return r.nodePath + "." + symPath
}

// FromSim converts a full simulator path back to the symtab-relative
// form, returning false when the path is outside the generated design.
func (r *Remap) FromSim(simPath string) (string, bool) {
	if simPath == r.nodePath {
		return r.top, true
	}
	if strings.HasPrefix(simPath, r.nodePath+".") {
		return r.top + simPath[len(r.nodePath):], true
	}
	return "", false
}

// Prefix returns the simulator path matched to the generator top.
func (r *Remap) Prefix() string { return r.nodePath }
