package symtab

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeTable serializes the dual-core fixture table to a file and
// returns its path and byte size.
func writeTable(t *testing.T, dir, name string) (string, int) {
	t.Helper()
	comp, _ := buildDualCore(t)
	table, err := Build(comp)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Len()
}

func TestCacheSharesByContent(t *testing.T) {
	dir := t.TempDir()
	pathA, _ := writeTable(t, dir, "a.db")
	// Distinct path, identical content: a byte copy, because the store's
	// serialization is not deterministic across independent builds.
	raw, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(dir, "b.db")
	if err := os.WriteFile(pathB, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewCache(0)
	ta, relA, hitA, err := c.Acquire(pathA)
	if err != nil {
		t.Fatalf("acquire a: %v", err)
	}
	tb, relB, hitB, err := c.Acquire(pathB)
	if err != nil {
		t.Fatalf("acquire b: %v", err)
	}
	if ta != tb {
		t.Fatal("identical content did not share one table")
	}
	if hitA || !hitB {
		t.Fatalf("hit flags = %v, %v (want first miss, second hit)", hitA, hitB)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Live != 1 {
		t.Fatalf("stats after shared acquire = %+v", st)
	}
	if len(ta.AllBreakpoints()) == 0 {
		t.Fatal("shared table unusable")
	}

	// Releasing one holder keeps the table live; releasing the last
	// parks it idle, and a re-acquire pulls it back without a reload.
	relA()
	if st := c.Stats(); st.Live != 1 || st.Idle != 0 {
		t.Fatalf("stats after partial release = %+v", st)
	}
	relB()
	if st := c.Stats(); st.Live != 0 || st.Idle != 1 {
		t.Fatalf("stats after full release = %+v", st)
	}
	tc, relC, hitC, err := c.Acquire(pathA)
	if err != nil {
		t.Fatal(err)
	}
	defer relC()
	if tc != ta {
		t.Fatal("idle table was reloaded instead of revived")
	}
	if !hitC {
		t.Fatal("revival not reported as a hit")
	}
	if st := c.Stats(); st.Hits != 2 || st.Misses != 1 || st.Live != 1 || st.Idle != 0 {
		t.Fatalf("stats after revival = %+v", st)
	}
}

func TestCacheDistinctContent(t *testing.T) {
	dir := t.TempDir()
	path, raw := writeTable(t, dir, "a.db")
	// Perturb a copy so its content key differs.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_ = raw
	other := filepath.Join(dir, "b.db")
	if err := os.WriteFile(other, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewCache(0)
	ta, relA, _, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	defer relA()
	tb, relB, hitB, errB := c.Acquire(other)
	if errB == nil {
		defer relB()
		if ta == tb {
			t.Fatal("different content shared a table")
		}
	}
	if hitB {
		t.Fatal("perturbed content reported as hit")
	}
	// Whether the perturbed file parses or not, it must not have been
	// served from cache.
	if st := c.Stats(); st.Hits != 0 {
		t.Fatalf("perturbed file counted as hit: %+v", st)
	}
}

func TestCacheBudgetEvictsIdle(t *testing.T) {
	dir := t.TempDir()
	path, size := writeTable(t, dir, "a.db")

	// Budget below one table: the entry is evicted the moment it goes
	// idle, so the next acquire is a miss.
	c := NewCache(size / 2)
	ta, rel, _, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if st := c.Stats(); st.Live != 0 || st.Idle != 0 || st.IdleBytes != 0 {
		t.Fatalf("over-budget idle entry survived: %+v", st)
	}
	tb, rel2, hit2, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if ta == tb {
		t.Fatal("evicted table returned again")
	}
	if hit2 {
		t.Fatal("acquire after eviction reported as hit")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("re-acquire after eviction not a miss: %+v", st)
	}
}

func TestCacheReleaseIdempotent(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTable(t, dir, "a.db")
	c := NewCache(0)
	_, relA, _, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	_, relB, _, err := c.Acquire(path)
	if err != nil {
		t.Fatal(err)
	}
	relA()
	relA() // double release of the same acquisition must not steal B's ref
	if st := c.Stats(); st.Live != 1 || st.Idle != 0 {
		t.Fatalf("double release corrupted refcount: %+v", st)
	}
	relB()
	if st := c.Stats(); st.Live != 0 || st.Idle != 1 {
		t.Fatalf("final release: %+v", st)
	}
}

func TestCacheConcurrentAcquire(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeTable(t, dir, "a.db")
	c := NewCache(0)

	const n = 16
	tables := make([]*Table, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tbl, rel, _, err := c.Acquire(path)
			if err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			tables[i] = tbl
			// Exercise the shared read path under the race detector.
			_ = tbl.AllBreakpoints()
			_ = tbl.Files()
			rel()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if tables[i] != nil && tables[0] != nil && tables[i] != tables[0] {
			// Concurrent first loads may briefly produce a dropped loser,
			// but everyone must converge on a winner; with one path and a
			// sequential-ish start it should be one table. Allow at most
			// the entries map to say one survivor remains.
			st := c.Stats()
			if st.Live+st.Idle != 1 {
				t.Fatalf("cache kept %d tables resident", st.Live+st.Idle)
			}
		}
	}
	if st := c.Stats(); st.Hits+st.Misses != n {
		t.Fatalf("accounting lost acquisitions: %+v", st)
	}
}
