package symtab

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
)

// Cache is a shared, read-only symbol-table cache. A hub serving N
// replay runtimes of the same design would otherwise parse and index
// the same symbol table N times and hold N copies resident; the cache
// loads identical content once and hands every runtime the same
// *Table (safe: a loaded table is immutable — the embedded store
// builds its indexes at load and every query afterwards is a pure
// read).
//
// Entries are content-keyed (SHA-256 of the file bytes), so two paths
// holding the same table — or the same path re-written identically —
// share one entry, and a file that changed on disk gets a fresh one.
// Entries are refcounted: Acquire returns a release closure, and an
// entry stays resident while any runtime holds it. Released entries
// are not discarded immediately — they park on an idle LRU whose
// total serialized size is budgeted, so launch/evict churn over a
// small set of designs keeps hitting memory while a large history
// cannot grow without bound.
type Cache struct {
	mu sync.Mutex
	// entries holds every resident table by content key, referenced or
	// idle.
	entries map[string]*cacheEntry
	// idle is the LRU order of zero-ref entries (front = oldest);
	// idleBytes sums their sizes against budget.
	idle      []*cacheEntry
	idleBytes int
	budget    int

	hits, misses uint64
}

type cacheEntry struct {
	key   string
	table *Table
	size  int // serialized byte size, the LRU budget unit
	refs  int
}

// DefaultCacheBudget bounds idle (released, unreferenced) cached
// tables; referenced tables are never evicted regardless.
const DefaultCacheBudget = 64 << 20

// NewCache creates a shared symbol-table cache whose idle entries are
// bounded to budget bytes of serialized table content (<= 0 selects
// DefaultCacheBudget).
func NewCache(budget int) *Cache {
	if budget <= 0 {
		budget = DefaultCacheBudget
	}
	return &Cache{entries: map[string]*cacheEntry{}, budget: budget}
}

// Acquire loads the symbol table at path through the cache. The
// returned release closure must be called exactly once when the
// runtime holding the table is done with it; the table itself must be
// treated as read-only (it may be shared with other runtimes). hit
// reports whether the table was already resident — identical content
// had been loaded by an earlier (or concurrent) acquisition.
func (c *Cache) Acquire(path string) (table *Table, release func(), hit bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, fmt.Errorf("symtab: cache read %s: %w", path, err)
	}
	sum := sha256.Sum256(raw)
	key := string(sum[:])

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.refs == 0 {
			c.removeIdleLocked(e)
		}
		e.refs++
		c.mu.Unlock()
		return e.table, c.releaseFunc(e), true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: a slow load (multi-MB table) must not
	// stall unrelated hits. Two concurrent first-loads of the same
	// content may both parse; the loser's copy is dropped below.
	table, err = Load(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, false, err
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		// Lost the parse race: share the winner's table.
		c.hits++
		if e.refs == 0 {
			c.removeIdleLocked(e)
		}
		e.refs++
		c.mu.Unlock()
		return e.table, c.releaseFunc(e), true, nil
	}
	e := &cacheEntry{key: key, table: table, size: len(raw), refs: 1}
	c.entries[key] = e
	c.mu.Unlock()
	return e.table, c.releaseFunc(e), false, nil
}

// releaseFunc builds the once-only release closure for one acquisition
// of e.
func (c *Cache) releaseFunc(e *cacheEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			e.refs--
			if e.refs == 0 {
				c.pushIdleLocked(e)
				c.evictLocked()
			}
			c.mu.Unlock()
		})
	}
}

// pushIdleLocked parks a zero-ref entry at the LRU tail (newest).
func (c *Cache) pushIdleLocked(e *cacheEntry) {
	c.idle = append(c.idle, e)
	c.idleBytes += e.size
}

// removeIdleLocked takes an entry off the idle list (it is being
// re-referenced).
func (c *Cache) removeIdleLocked(e *cacheEntry) {
	for i, o := range c.idle {
		if o == e {
			c.idle = append(c.idle[:i], c.idle[i+1:]...)
			c.idleBytes -= e.size
			return
		}
	}
}

// evictLocked discards oldest idle entries until the idle set fits the
// budget. A single entry larger than the whole budget is evicted the
// moment it goes idle.
func (c *Cache) evictLocked() {
	for c.idleBytes > c.budget && len(c.idle) > 0 {
		e := c.idle[0]
		c.idle = c.idle[1:]
		c.idleBytes -= e.size
		delete(c.entries, e.key)
	}
}

// CacheStats is a snapshot of the cache's accounting.
type CacheStats struct {
	// Hits counts acquisitions served by an already-resident table
	// (including parse races lost to a concurrent first load); Misses
	// counts content keys that had to be parsed.
	Hits, Misses uint64
	// Live is the number of resident tables currently referenced by at
	// least one runtime; Idle the number parked on the LRU, whose
	// serialized sizes sum to IdleBytes.
	Live, Idle int
	IdleBytes  int
}

// Stats returns a snapshot of hit/miss and residency accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Live:      len(c.entries) - len(c.idle),
		Idle:      len(c.idle),
		IdleBytes: c.idleBytes,
	}
}
