// Package symtab implements the hgdb symbol table: the Figure 3
// relational schema (Instance, Breakpoint, Scope Variable, Generator
// Variable, Variable) stored in the embedded relational store, the four
// query primitives of §3.4, persistence, and the instance-name matching
// that locates the generated IP inside a larger testbench hierarchy.
package symtab

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/db"
	"repro/internal/ir"
	"repro/internal/passes"
)

// Breakpoint is one emulated breakpoint row joined with its instance.
type Breakpoint struct {
	ID int64
	// Filename/Line/Col locate the generator source statement.
	Filename string
	Line     int
	Col      int
	// Order is the lexical scheduling order within the instance.
	Order int
	// Enable is the infix enable-condition over instance-local RTL
	// names; empty means always enabled.
	Enable string
	// EnableSrc is the human-readable source-level condition.
	EnableSrc string
	// Instance is the owning instance id.
	Instance int64
	// InstanceName is the hierarchical instance path relative to the
	// generator top (e.g. "Top.u0").
	InstanceName string
}

// VarBinding maps one source-level variable to an RTL signal.
type VarBinding struct {
	// Name is the source-level (dotted) variable name.
	Name string
	// RTL is the instance-local RTL signal name.
	RTL string
}

// Table is a loaded symbol table.
type Table struct {
	db *db.DB
	// top is the generator's top module name; instance paths are rooted
	// here.
	top string
}

// Schema names.
const (
	tblInstance     = "instance"
	tblBreakpoint   = "breakpoint"
	tblVariable     = "variable"
	tblScopeVar     = "scope_variable"
	tblGeneratorVar = "generator_variable"
	tblMeta         = "metadata"
)

func createSchema(d *db.DB) error {
	specs := []db.Schema{
		{Name: tblInstance, Columns: []db.Column{
			{Name: "id", Type: db.Integer, PrimaryKey: true},
			{Name: "name", Type: db.Text},
		}},
		{Name: tblBreakpoint, Columns: []db.Column{
			{Name: "id", Type: db.Integer, PrimaryKey: true},
			{Name: "filename", Type: db.Text},
			{Name: "line_num", Type: db.Integer},
			{Name: "column_num", Type: db.Integer},
			{Name: "ordinal", Type: db.Integer},
			{Name: "enable", Type: db.Text},
			{Name: "enable_src", Type: db.Text},
			{Name: "instance", Type: db.Integer, References: tblInstance},
		}},
		{Name: tblVariable, Columns: []db.Column{
			{Name: "id", Type: db.Integer, PrimaryKey: true},
			{Name: "value", Type: db.Text},
		}},
		{Name: tblScopeVar, Columns: []db.Column{
			{Name: "id", Type: db.Integer, PrimaryKey: true},
			{Name: "breakpoint", Type: db.Integer, References: tblBreakpoint},
			{Name: "name", Type: db.Text},
			{Name: "variable", Type: db.Integer, References: tblVariable},
		}},
		{Name: tblGeneratorVar, Columns: []db.Column{
			{Name: "id", Type: db.Integer, PrimaryKey: true},
			{Name: "instance", Type: db.Integer, References: tblInstance},
			{Name: "name", Type: db.Text},
			{Name: "kind", Type: db.Text},
			{Name: "variable", Type: db.Integer, References: tblVariable},
		}},
		{Name: tblMeta, Columns: []db.Column{
			{Name: "id", Type: db.Integer, PrimaryKey: true},
			{Name: "key", Type: db.Text},
			{Name: "value", Type: db.Text},
		}},
	}
	for _, s := range specs {
		if _, err := d.CreateTable(s); err != nil {
			return err
		}
	}
	return nil
}

func buildIndexes(d *db.DB) {
	if t, ok := d.Table(tblBreakpoint); ok {
		t.CreateIndex("filename")
		t.CreateIndex("instance")
	}
	if t, ok := d.Table(tblScopeVar); ok {
		t.CreateIndex("breakpoint")
	}
	if t, ok := d.Table(tblGeneratorVar); ok {
		t.CreateIndex("instance")
	}
	if t, ok := d.Table(tblInstance); ok {
		t.CreateIndex("name")
	}
}

// Build converts a compilation into a symbol table: each module-level
// SymbolEntry expands into one breakpoint per *instance* of the module,
// which is how a single source line later presents multiple concurrent
// "threads" (paper Fig. 4 B).
func Build(comp *passes.Compilation) (*Table, error) {
	d := db.New()
	if err := createSchema(d); err != nil {
		return nil, err
	}
	circ := comp.Circuit
	top := circ.Main

	// Enumerate instance paths per module by walking the instance graph.
	paths := map[string][]string{} // module -> instance paths
	var walk func(module, path string)
	walk = func(module, path string) {
		paths[module] = append(paths[module], path)
		for _, edge := range circ.InstanceGraph()[module] {
			walk(edge.Module, path+"."+edge.Instance)
		}
	}
	walk(top, top)

	instanceID := map[string]int64{}
	for _, module := range circ.SortedModuleNames() {
		for _, p := range paths[module] {
			id, err := d.Insert(tblInstance, db.Row{"name": p})
			if err != nil {
				return nil, err
			}
			instanceID[p] = id
		}
	}

	// Variables are deduplicated per (instance, RTL name).
	varID := map[string]int64{}
	getVar := func(rtl string) (int64, error) {
		if id, ok := varID[rtl]; ok {
			return id, nil
		}
		id, err := d.Insert(tblVariable, db.Row{"value": rtl})
		if err != nil {
			return 0, err
		}
		varID[rtl] = id
		return id, nil
	}

	for _, entry := range comp.Symbols {
		enable := ""
		if entry.Enable != nil {
			enable = ir.RenderInfix(entry.Enable)
		}
		for _, instPath := range paths[entry.Module] {
			bpID, err := d.Insert(tblBreakpoint, db.Row{
				"filename":   entry.File,
				"line_num":   entry.Line,
				"column_num": entry.Col,
				"ordinal":    entry.Order,
				"enable":     enable,
				"enable_src": entry.EnableSrc,
				"instance":   instanceID[instPath],
			})
			if err != nil {
				return nil, err
			}
			for src, rtl := range entry.Vars {
				vid, err := getVar(rtl)
				if err != nil {
					return nil, err
				}
				if _, err := d.Insert(tblScopeVar, db.Row{
					"breakpoint": bpID,
					"name":       src,
					"variable":   vid,
				}); err != nil {
					return nil, err
				}
			}
		}
	}

	for module, gvs := range comp.GenVars {
		for _, instPath := range paths[module] {
			for _, gv := range gvs {
				vid, err := getVar(gv.RTL)
				if err != nil {
					return nil, err
				}
				if _, err := d.Insert(tblGeneratorVar, db.Row{
					"instance": instanceID[instPath],
					"name":     gv.Name,
					"kind":     gv.Kind,
					"variable": vid,
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	if _, err := d.Insert(tblMeta, db.Row{"key": "top", "value": top}); err != nil {
		return nil, err
	}
	mode := "optimized"
	if comp.Debug {
		mode = "debug"
	}
	if _, err := d.Insert(tblMeta, db.Row{"key": "mode", "value": mode}); err != nil {
		return nil, err
	}
	buildIndexes(d)
	return &Table{db: d, top: top}, nil
}

// Top returns the generator top module name.
func (t *Table) Top() string { return t.top }

// Mode returns "optimized" or "debug".
func (t *Table) Mode() string {
	meta, _ := t.db.Table(tblMeta)
	for _, row := range meta.All() {
		if row["key"] == "mode" {
			return row["value"].(string)
		}
	}
	return "optimized"
}

// Save writes the table as JSON.
func (t *Table) Save(w io.Writer) error { return t.db.Save(w) }

// Load reads a table written by Save.
func Load(r io.Reader) (*Table, error) {
	d, err := db.Load(r)
	if err != nil {
		return nil, err
	}
	meta, ok := d.Table(tblMeta)
	if !ok {
		return nil, fmt.Errorf("symtab: missing metadata table")
	}
	top := ""
	for _, row := range meta.All() {
		if row["key"] == "top" {
			top = row["value"].(string)
		}
	}
	if top == "" {
		return nil, fmt.Errorf("symtab: metadata missing top module")
	}
	buildIndexes(d)
	return &Table{db: d, top: top}, nil
}

func (t *Table) breakpointFromRow(row db.Row) Breakpoint {
	instRow, _ := mustTable(t.db, tblInstance).Get(row["instance"].(int64))
	return Breakpoint{
		ID:           row["id"].(int64),
		Filename:     row["filename"].(string),
		Line:         int(row["line_num"].(int64)),
		Col:          int(row["column_num"].(int64)),
		Order:        int(row["ordinal"].(int64)),
		Enable:       row["enable"].(string),
		EnableSrc:    row["enable_src"].(string),
		Instance:     row["instance"].(int64),
		InstanceName: instRow["name"].(string),
	}
}

func mustTable(d *db.DB, name string) *db.Table {
	t, ok := d.Table(name)
	if !ok {
		panic("symtab: missing table " + name)
	}
	return t
}

// BreakpointsAt implements the first §3.4 primitive: translate a source
// location into the emulated breakpoints (one per matching statement
// per instance). line <= 0 matches any line in the file.
func (t *Table) BreakpointsAt(filename string, line int) []Breakpoint {
	bp := mustTable(t.db, tblBreakpoint)
	rows := bp.SelectEq("filename", filename)
	var out []Breakpoint
	for _, row := range rows {
		if line > 0 && int(row["line_num"].(int64)) != line {
			continue
		}
		out = append(out, t.breakpointFromRow(row))
	}
	sortBreakpoints(out)
	return out
}

// AllBreakpoints returns every breakpoint in scheduling order.
func (t *Table) AllBreakpoints() []Breakpoint {
	bp := mustTable(t.db, tblBreakpoint)
	var out []Breakpoint
	for _, row := range bp.All() {
		out = append(out, t.breakpointFromRow(row))
	}
	sortBreakpoints(out)
	return out
}

// sortBreakpoints orders by (file, order, instance) — the pre-computed
// absolute ordering §3.2 requires.
func sortBreakpoints(bps []Breakpoint) {
	sort.SliceStable(bps, func(i, j int) bool {
		a, b := bps[i], bps[j]
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.InstanceName < b.InstanceName
	})
}

// Breakpoint returns one breakpoint by id.
func (t *Table) Breakpoint(id int64) (Breakpoint, bool) {
	row, ok := mustTable(t.db, tblBreakpoint).Get(id)
	if !ok {
		return Breakpoint{}, false
	}
	return t.breakpointFromRow(row), true
}

// ScopeVars implements the second §3.4 primitive: the variable bindings
// visible at a breakpoint, sorted by name.
func (t *Table) ScopeVars(breakpointID int64) []VarBinding {
	sv := mustTable(t.db, tblScopeVar)
	vt := mustTable(t.db, tblVariable)
	var out []VarBinding
	for _, row := range sv.SelectEq("breakpoint", breakpointID) {
		vRow, ok := vt.Get(row["variable"].(int64))
		if !ok {
			continue
		}
		out = append(out, VarBinding{Name: row["name"].(string), RTL: vRow["value"].(string)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResolveScopedVar implements the third §3.4 primitive: translate a
// source-level variable at a breakpoint into the full hierarchical RTL
// name (relative to the generator top; callers apply the testbench
// prefix from Remap).
func (t *Table) ResolveScopedVar(breakpointID int64, name string) (string, error) {
	bp, ok := t.Breakpoint(breakpointID)
	if !ok {
		return "", fmt.Errorf("symtab: unknown breakpoint %d", breakpointID)
	}
	for _, b := range t.ScopeVars(breakpointID) {
		if b.Name == name {
			return bp.InstanceName + "." + b.RTL, nil
		}
	}
	return "", fmt.Errorf("symtab: no variable %q at breakpoint %d", name, breakpointID)
}

// GeneratorVars returns the module-level named objects of an instance,
// sorted by name.
func (t *Table) GeneratorVars(instanceID int64) []VarBinding {
	gv := mustTable(t.db, tblGeneratorVar)
	vt := mustTable(t.db, tblVariable)
	var out []VarBinding
	for _, row := range gv.SelectEq("instance", instanceID) {
		vRow, ok := vt.Get(row["variable"].(int64))
		if !ok {
			continue
		}
		out = append(out, VarBinding{Name: row["name"].(string), RTL: vRow["value"].(string)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResolveInstanceVar implements the fourth §3.4 primitive: translate an
// instance-level variable name into the full hierarchical RTL name.
func (t *Table) ResolveInstanceVar(instancePath, name string) (string, error) {
	inst := mustTable(t.db, tblInstance)
	rows := inst.SelectEq("name", instancePath)
	if len(rows) == 0 {
		return "", fmt.Errorf("symtab: unknown instance %q", instancePath)
	}
	id := rows[0]["id"].(int64)
	for _, b := range t.GeneratorVars(id) {
		if b.Name == name {
			return instancePath + "." + b.RTL, nil
		}
	}
	return "", fmt.Errorf("symtab: instance %q has no variable %q", instancePath, name)
}

// Instances returns all instance paths, sorted.
func (t *Table) Instances() []string {
	inst := mustTable(t.db, tblInstance)
	var out []string
	for _, row := range inst.All() {
		out = append(out, row["name"].(string))
	}
	sort.Strings(out)
	return out
}

// InstanceIDByName returns the id of an instance path.
func (t *Table) InstanceIDByName(path string) (int64, bool) {
	rows := mustTable(t.db, tblInstance).SelectEq("name", path)
	if len(rows) == 0 {
		return 0, false
	}
	return rows[0]["id"].(int64), true
}

// Files lists the generator source files that have breakpoints.
func (t *Table) Files() []string {
	bp := mustTable(t.db, tblBreakpoint)
	seen := map[string]bool{}
	for _, row := range bp.All() {
		seen[row["filename"].(string)] = true
	}
	var out []string
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Lines lists the breakable line numbers of a file.
func (t *Table) Lines(filename string) []int {
	bp := mustTable(t.db, tblBreakpoint)
	seen := map[int]bool{}
	for _, row := range bp.SelectEq("filename", filename) {
		seen[int(row["line_num"].(int64))] = true
	}
	var out []int
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// NumRows returns total row counts (used by the §4.1 symbol-table-size
// experiment).
func (t *Table) NumRows() map[string]int {
	out := map[string]int{}
	for _, name := range t.db.TableNames() {
		tb, _ := t.db.Table(name)
		out[name] = tb.Len()
	}
	return out
}

// TotalRows sums all table rows.
func (t *Table) TotalRows() int {
	n := 0
	for _, v := range t.NumRows() {
		n += v
	}
	return n
}

// Stats renders row counts.
func (t *Table) Stats() string {
	return strings.TrimSpace(t.db.Stats())
}
