package symtab

import "runtime"

func runtimeCallers(skip int, pcs []uintptr) int {
	return runtime.Callers(skip+1, pcs)
}

func pcLine(pc uintptr) int {
	frames := runtime.CallersFrames([]uintptr{pc})
	frame, _ := frames.Next()
	return frame.Line
}
