package client

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/proto"
)

// HubClient is a control session on a hub endpoint: it lists, launches
// and evicts registry runtimes, and hands out per-runtime debugger
// sessions (plain Clients routed through the same endpoint).
type HubClient struct {
	c    *Client
	addr string
}

// DialHub opens a control session on a hub at ws://addr and waits for
// its hub-welcome greeting — which doubles as proof the endpoint is a
// hub and not a standalone runtime (those greet with "welcome").
func DialHub(addr string) (*HubClient, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	if _, err := c.WaitEvent("hub-welcome", 5*time.Second); err != nil {
		c.Close()
		return nil, fmt.Errorf("hgdb: %s is not a hub endpoint: %w", addr, err)
	}
	return &HubClient{c: c, addr: addr}, nil
}

// Close detaches the control session. Runtime sessions handed out by
// Attach live on their own connections and are unaffected.
func (h *HubClient) Close() error { return h.c.Close() }

// Runtimes lists the registry in registration order.
func (h *HubClient) Runtimes() ([]proto.RuntimeInfo, error) {
	resp, err := h.c.roundTrip(&proto.Request{Type: "runtimes", Action: "list"})
	if err != nil {
		return nil, err
	}
	var infos []proto.RuntimeInfo
	if len(resp.Data) > 0 {
		if err := json.Unmarshal(resp.Data, &infos); err != nil {
			return nil, err
		}
	}
	return infos, nil
}

// Launch registers and starts a runtime from spec, returning its
// listing entry (which carries the assigned id when spec.Name was
// empty).
func (h *HubClient) Launch(spec proto.RuntimeSpec) (proto.RuntimeInfo, error) {
	resp, err := h.c.roundTrip(&proto.Request{
		Type: "runtimes", Action: "launch", Spec: &spec,
	})
	if err != nil {
		return proto.RuntimeInfo{}, err
	}
	var info proto.RuntimeInfo
	if err := json.Unmarshal(resp.Data, &info); err != nil {
		return proto.RuntimeInfo{}, err
	}
	return info, nil
}

// Evict drains a runtime's sessions and removes it from the registry.
func (h *HubClient) Evict(id string) error {
	_, err := h.c.roundTrip(&proto.Request{Type: "runtimes", Action: "evict", Runtime: id})
	return err
}

// Attach opens a debugger session on one registry runtime — a regular
// Client, identical to one dialed at a standalone server.
func (h *HubClient) Attach(id string) (*Client, error) {
	return h.AttachOpts(id, Options{})
}

// AttachOpts is Attach with wire options (binary encoding, delta
// frames); opts.Runtime is overwritten with id.
func (h *HubClient) AttachOpts(id string, opts Options) (*Client, error) {
	opts.Runtime = id
	return DialOpts(h.addr, opts)
}
