// Package client is the Go client for the hgdb debugging protocol,
// used by the gdb-like CLI (cmd/hgdb) and by integration tests. It
// demultiplexes the WebSocket stream into request/response pairs and
// unsolicited stop events.
package client

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/ws"
)

// Client is one attached debugger.
type Client struct {
	conn *ws.Conn

	mu      sync.Mutex
	nextTok int
	waiting map[string]chan *proto.Response

	// Events delivers stop and welcome events; closed when the
	// connection dies.
	Events chan *proto.Event

	closed chan struct{}
}

// Dial attaches to a runtime at ws://addr.
func Dial(addr string) (*Client, error) {
	conn, err := ws.Dial("ws://" + addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		waiting: map[string]chan *proto.Response{},
		Events:  make(chan *proto.Event, 16),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close detaches.
func (c *Client) Close() error {
	return c.conn.Close()
}

func (c *Client) readLoop() {
	defer close(c.closed)
	defer close(c.Events)
	for {
		raw, err := c.conn.ReadText()
		if err != nil {
			return
		}
		// Peek at the type.
		var head struct {
			Type  string `json:"type"`
			Token string `json:"token"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			continue
		}
		if head.Type == "response" {
			var resp proto.Response
			if err := json.Unmarshal(raw, &resp); err != nil {
				continue
			}
			c.mu.Lock()
			ch := c.waiting[resp.Token]
			delete(c.waiting, resp.Token)
			c.mu.Unlock()
			if ch != nil {
				ch <- &resp
			}
			continue
		}
		var ev proto.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue
		}
		select {
		case c.Events <- &ev:
		default:
			// Drop events if the consumer is not keeping up; the
			// simulator stays paused until a command arrives anyway.
		}
	}
}

// roundTrip sends a request and waits for its response.
func (c *Client) roundTrip(req *proto.Request) (*proto.Response, error) {
	c.mu.Lock()
	c.nextTok++
	req.Token = strconv.Itoa(c.nextTok)
	ch := make(chan *proto.Response, 1)
	c.waiting[req.Token] = ch
	c.mu.Unlock()

	msg, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := c.conn.WriteText(msg); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Status != "ok" {
			return resp, fmt.Errorf("hgdb: %s", resp.Reason)
		}
		return resp, nil
	case <-c.closed:
		return nil, fmt.Errorf("hgdb: connection closed")
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("hgdb: request timed out")
	}
}

// AddBreakpoint arms breakpoints at file:line with an optional
// condition and returns the armed ids.
func (c *Client) AddBreakpoint(file string, line int, cond string) ([]int64, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "breakpoint", Action: "add",
		Filename: file, Line: line, Condition: cond,
	})
	if err != nil {
		return nil, err
	}
	var data struct {
		IDs []int64 `json:"ids"`
	}
	if err := json.Unmarshal(resp.Data, &data); err != nil {
		return nil, err
	}
	return data.IDs, nil
}

// RemoveBreakpoint disarms breakpoints at file:line.
func (c *Client) RemoveBreakpoint(file string, line int) (int, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "breakpoint", Action: "remove", Filename: file, Line: line,
	})
	if err != nil {
		return 0, err
	}
	var data struct {
		Removed int `json:"removed"`
	}
	if err := json.Unmarshal(resp.Data, &data); err != nil {
		return 0, err
	}
	return data.Removed, nil
}

// ListBreakpoints returns the armed breakpoints.
func (c *Client) ListBreakpoints() ([]proto.BreakpointInfo, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "breakpoint", Action: "list"})
	if err != nil {
		return nil, err
	}
	var infos []proto.BreakpointInfo
	if len(resp.Data) > 0 {
		if err := json.Unmarshal(resp.Data, &infos); err != nil {
			return nil, err
		}
	}
	return infos, nil
}

// ClearBreakpoints disarms everything.
func (c *Client) ClearBreakpoints() error {
	_, err := c.roundTrip(&proto.Request{Type: "breakpoint", Action: "clear"})
	return err
}

// Command resumes a stopped simulation: continue, step, reverse-step,
// detach, pause.
func (c *Client) Command(cmd string) error {
	_, err := c.roundTrip(&proto.Request{Type: "command", Command: cmd})
	return err
}

// Evaluate computes a watch expression in an instance context.
func (c *Client) Evaluate(instance, expression string) (proto.ValueInfo, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "evaluate", Instance: instance, Expression: expression,
	})
	if err != nil {
		return proto.ValueInfo{}, err
	}
	var v proto.ValueInfo
	if err := json.Unmarshal(resp.Data, &v); err != nil {
		return proto.ValueInfo{}, err
	}
	return v, nil
}

// GetValue fetches a signal by full or symtab-relative path.
func (c *Client) GetValue(path string) (proto.ValueInfo, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "get-value", Path: path})
	if err != nil {
		return proto.ValueInfo{}, err
	}
	var v proto.ValueInfo
	if err := json.Unmarshal(resp.Data, &v); err != nil {
		return proto.ValueInfo{}, err
	}
	return v, nil
}

// SetValue deposits a value into the design.
func (c *Client) SetValue(path string, v uint64) error {
	_, err := c.roundTrip(&proto.Request{Type: "set-value", Path: path, Value: v})
	return err
}

// Info queries runtime metadata; topic is files | lines | instances |
// status.
func (c *Client) Info(topic, filename string) (json.RawMessage, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "info", Topic: topic, Filename: filename})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// AddWatch sets a data watchpoint on an expression in an instance
// context; stops fire whenever the value changes.
func (c *Client) AddWatch(instance, expression string) (int, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "watch", Action: "add", Instance: instance, Expression: expression,
	})
	if err != nil {
		return 0, err
	}
	var data struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(resp.Data, &data); err != nil {
		return 0, err
	}
	return data.ID, nil
}

// RemoveWatch deletes a watchpoint by id.
func (c *Client) RemoveWatch(id int) error {
	_, err := c.roundTrip(&proto.Request{Type: "watch", Action: "remove", WatchID: id})
	return err
}

// WaitStop blocks until the next stop event or timeout.
func (c *Client) WaitStop(timeout time.Duration) (*core.StopEvent, error) {
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-c.Events:
			if !ok {
				return nil, fmt.Errorf("hgdb: connection closed")
			}
			if ev.Type == "stop" && ev.Stop != nil {
				return ev.Stop, nil
			}
		case <-deadline:
			return nil, fmt.Errorf("hgdb: no stop within %s", timeout)
		}
	}
}
