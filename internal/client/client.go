// Package client is the Go client for the hgdb debugging protocol,
// used by the gdb-like CLI (cmd/hgdb) and by integration tests. It
// demultiplexes the WebSocket stream into request/response pairs and
// unsolicited events, tracks this session's id and role as the server
// broadcasts control transfers, and can reconnect to the same
// endpoint after a connection loss.
package client

import (
	"encoding/json"
	"fmt"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/ws"
)

// typedQueueDepth is the buffer of each per-type event queue behind
// WaitEvent/WaitStop. Queues are created at delivery time (so an event
// arriving before its first WaitEvent call is never lost), which means
// an Events-only consumer pays this buffer per event type seen — keep
// it as small as the legacy Events buffer.
const typedQueueDepth = 16

// stopCacheDepth is how many applied stop snapshots the client retains
// as delta bases. The server only delta-encodes against seqs this
// client acknowledged, and acks flow in order, so the window just has
// to cover frames in flight — far fewer than this.
const stopCacheDepth = 32

// Options selects the wire features negotiated at attach.
type Options struct {
	// Binary asks the server for the length-prefixed binary event
	// encoding instead of JSON text (requests and responses stay JSON).
	Binary bool
	// Delta opts into delta-encoded stop frames: the client
	// acknowledges each stop it applies and the server encodes later
	// stops against the acknowledged snapshot, falling back to full
	// frames on any ack gap.
	Delta bool
	// Runtime routes the attach through a hub endpoint to the runtime
	// with this registry id (?runtime=<id> on the upgrade URL). Empty
	// attaches directly — a standalone server, or a hub control session.
	Runtime string
}

// Client is one attached debugger session.
type Client struct {
	addr string
	opts Options

	mu      sync.Mutex
	conn    *ws.Conn
	closed  chan struct{} // closed when the current conn's read loop exits
	nextTok int
	waiting map[string]chan *proto.Response

	// session state, maintained from welcome/control/goodbye events
	sessionID  int64
	role       string
	controller int64

	// Delta reconstruction state (Options.Delta): recently applied stop
	// snapshots by broadcast seq, evicted FIFO past stopCacheDepth.
	stopCache map[uint64]*core.StopEvent
	stopRing  []uint64
	resyncs   uint64

	// Event demultiplexing. Every inbound event is delivered to three
	// kinds of consumer: the legacy catch-all Events channel, a
	// per-type queue (auto-created at delivery, so an event arriving
	// before its first WaitEvent call is never lost), and every
	// matching Subscription. Waiting for one event type therefore no
	// longer consumes — and silently drops — interleaved events of
	// other types.
	subs    map[int]*Subscription
	nextSub int
	typed   map[string]*Subscription

	// Events delivers stop, welcome, attach, goodbye and control
	// events. When the connection dies the client synthesizes a final
	// {Type: "disconnect"} event; the channel itself stays open so the
	// client can Reconnect.
	Events chan *proto.Event
}

// New creates a client without connecting, so consumers can Subscribe
// before the first byte arrives (an event delivered during the welcome
// exchange — e.g. the stop replay a late attacher receives — is then
// never missed). Call Connect to attach.
func New(addr string) *Client {
	return NewOpts(addr, Options{})
}

// NewOpts is New with wire options (binary encoding, delta frames).
func NewOpts(addr string, opts Options) *Client {
	return &Client{
		addr:    addr,
		opts:    opts,
		waiting: map[string]chan *proto.Response{},
		subs:    map[int]*Subscription{},
		typed:   map[string]*Subscription{},
		Events:  make(chan *proto.Event, 16),
	}
}

// Dial attaches to a runtime at ws://addr.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, Options{})
}

// DialOpts is Dial with wire options (binary encoding, delta frames).
func DialOpts(addr string, opts Options) (*Client, error) {
	c := NewOpts(addr, opts)
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// Connect attaches a client created by New. Use Reconnect after a
// connection loss.
func (c *Client) Connect() error { return c.connect() }

// Subscription is one demultiplexed view of the client's event stream,
// created by Subscribe. C stays open across disconnects (a synthesized
// {Type: "disconnect"} event arrives instead — delivered to every
// subscription regardless of its type filter, so filtered consumers
// still observe termination — and the subscription keeps working after
// Reconnect). C closes only on Close.
type Subscription struct {
	// C delivers matching events in arrival order. When the consumer
	// falls behind, normal events are dropped at the full buffer; the
	// disconnect sentinel instead evicts the oldest queued event, so it
	// is never lost.
	C chan *proto.Event

	c     *Client
	id    int
	types map[string]bool // nil = every type
}

// Subscribe registers an event consumer for the given types (none =
// every type). buffer <= 0 selects a default.
func (c *Client) Subscribe(buffer int, types ...string) *Subscription {
	if buffer <= 0 {
		buffer = 16
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sub := &Subscription{C: make(chan *proto.Event, buffer), c: c, id: c.nextSub}
	c.nextSub++
	if len(types) > 0 {
		sub.types = make(map[string]bool, len(types))
		for _, t := range types {
			sub.types[t] = true
		}
	}
	c.subs[sub.id] = sub
	return sub
}

// Close removes the subscription and closes C.
func (s *Subscription) Close() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if _, ok := s.c.subs[s.id]; !ok {
		return
	}
	delete(s.c.subs, s.id)
	close(s.C)
}

// typedLocked returns (creating on demand) the internal per-type queue
// feeding WaitEvent/WaitStop. Callers hold c.mu.
func (c *Client) typedLocked(typ string) *Subscription {
	sub, ok := c.typed[typ]
	if !ok {
		sub = &Subscription{C: make(chan *proto.Event, typedQueueDepth), c: c}
		c.typed[typ] = sub
	}
	return sub
}

// deliverLocked routes one event to every consumer. Callers hold c.mu
// — the single-producer guarantee that makes the eviction path below
// reliable. Normal events are dropped at a full consumer (the server
// already coalesces under backpressure and the simulator stays paused
// until a command arrives); the disconnect sentinel is the one event
// no consumer may miss, so it evicts the oldest queued event instead.
func (c *Client) deliverLocked(ev *proto.Event) {
	mustDeliver := ev.Type == "disconnect"
	push := func(ch chan *proto.Event) {
		select {
		case ch <- ev:
			return
		default:
		}
		if !mustDeliver {
			return
		}
		select {
		case <-ch:
		default:
		}
		select {
		case ch <- ev:
		default:
		}
	}
	push(c.Events)
	push(c.typedLocked(ev.Type).C)
	for _, sub := range c.subs {
		// The sentinel bypasses type filters: every subscription is
		// promised a termination signal, or a consumer ranging over a
		// filtered sub.C would hang forever after a connection loss.
		if mustDeliver || sub.types == nil || sub.types[ev.Type] {
			push(sub.C)
		}
	}
}

// connect dials and starts a read loop for one connection generation.
// The wire negotiation rides the upgrade URL's query string.
func (c *Client) connect() error {
	q := url.Values{}
	if c.opts.Binary {
		q.Set("enc", "binary")
	}
	if c.opts.Delta {
		q.Set("delta", "1")
	}
	if c.opts.Runtime != "" {
		q.Set("runtime", c.opts.Runtime)
	}
	target := "ws://" + c.addr + "/"
	if enc := q.Encode(); enc != "" {
		target += "?" + enc
	}
	conn, err := ws.Dial(target)
	if err != nil {
		return err
	}
	// Bound every frame write (and the close handshake) so a wedged
	// server fails requests instead of blocking roundTrip forever
	// before its 30s timer even starts.
	conn.SetWriteTimeout(10 * time.Second)
	conn.SetCloseTimeout(2 * time.Second)
	closed := make(chan struct{})
	c.mu.Lock()
	c.conn = conn
	c.closed = closed
	c.mu.Unlock()
	go c.readLoop(conn, closed)
	return nil
}

// Reconnect re-attaches to the same endpoint after a connection loss.
// The server assigns a fresh session id and role (broadcast state such
// as armed breakpoints lives in the runtime and survives). Safe to
// call after the Events channel delivered a "disconnect" event.
func (c *Client) Reconnect() error {
	// Detach the old connection first: once c.conn no longer points at
	// it, its read loop's teardown knows it is stale and will neither
	// wipe the new generation's waiters nor emit a disconnect event.
	c.mu.Lock()
	old := c.conn
	c.conn = nil
	c.sessionID, c.role, c.controller = 0, "", 0
	// Abandon the old generation's in-flight requests: their reply
	// tokens belong to the dead connection.
	c.waiting = map[string]chan *proto.Response{}
	// Delta bases are per-session: the new session starts on full
	// frames (its lastAck is 0 server-side) and refills the cache.
	c.stopCache, c.stopRing = nil, nil
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	// Everything queued for consumers belongs to the dead generation —
	// including a possible disconnect sentinel that would otherwise be
	// mistaken for the new connection failing. Drop it all, under the
	// same lock the sentinel push takes, so a teardown racing this
	// reconnect can never land its sentinel after the drain.
	c.mu.Lock()
	drainChan(c.Events)
	for _, sub := range c.typed {
		drainChan(sub.C)
	}
	for _, sub := range c.subs {
		drainChan(sub.C)
	}
	c.mu.Unlock()
	return c.connect()
}

// Close detaches.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// SessionID returns this session's server-assigned id (0 before the
// welcome event arrives).
func (c *Client) SessionID() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// Role returns this session's current role ("controller" or
// "observer"), tracked across control-transfer broadcasts.
func (c *Client) Role() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Controller returns the session id currently holding control (0 =
// vacant or unknown).
func (c *Client) Controller() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.controller
}

// observeEvent updates session state from an unsolicited event before
// it is handed to the consumer.
func (c *Client) observeEvent(ev *proto.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Type {
	case "welcome":
		c.sessionID = ev.SessionID
		c.role = ev.Role
		c.controller = ev.Controller
	case "attach", "goodbye":
		if ev.Controller != 0 || ev.Type == "goodbye" {
			c.setControllerLocked(ev.Controller)
		}
	case "control":
		c.setControllerLocked(ev.Controller)
	}
}

func (c *Client) setControllerLocked(controller int64) {
	c.controller = controller
	if c.sessionID != 0 {
		if controller == c.sessionID {
			c.role = proto.RoleController
		} else {
			c.role = proto.RoleObserver
		}
	}
}

func drainChan(ch chan *proto.Event) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

func (c *Client) readLoop(conn *ws.Conn, closed chan struct{}) {
	defer func() {
		// Tear down only if this is still the live generation — a
		// Reconnect may have already swapped in a fresh connection,
		// and wiping its waiters or announcing a stale disconnect
		// would sabotage it. The staleness check, the waiter wipe and
		// the sentinel delivery share one critical section with
		// Reconnect's drain, so a racing reconnect can never be
		// poisoned by a sentinel landing after its drain. The sentinel
		// is delivered BEFORE closed is closed: a waiter that observes
		// the closed generation is then guaranteed to find the
		// sentinel already queued.
		c.mu.Lock()
		if c.conn == conn {
			c.waiting = map[string]chan *proto.Response{}
			c.deliverLocked(&proto.Event{Type: "disconnect"})
		}
		c.mu.Unlock()
		close(closed)
	}()
	for {
		op, raw, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var ev proto.Event
		if op == ws.BinaryMessage {
			// Events on a binary-negotiated session; responses stay
			// JSON text and never arrive as binary frames.
			pev, err := proto.DecodeBinaryFrame(raw)
			if err != nil {
				continue
			}
			ev = *pev
		} else {
			// Peek at the type.
			var head struct {
				Type  string `json:"type"`
				Token string `json:"token"`
			}
			if err := json.Unmarshal(raw, &head); err != nil {
				continue
			}
			if head.Type == "response" {
				var resp proto.Response
				if err := json.Unmarshal(raw, &resp); err != nil {
					continue
				}
				c.mu.Lock()
				ch := c.waiting[resp.Token]
				delete(c.waiting, resp.Token)
				c.mu.Unlock()
				if ch != nil {
					ch <- &resp
				}
				continue
			}
			if err := json.Unmarshal(raw, &ev); err != nil {
				continue
			}
		}
		if ev.Type == "stop" && c.opts.Delta {
			if !c.resolveStop(conn, &ev) {
				continue
			}
		}
		c.observeEvent(&ev)
		c.mu.Lock()
		if c.conn == conn {
			c.deliverLocked(&ev)
		}
		c.mu.Unlock()
	}
}

// resolveStop reconstructs a delta-encoded stop against the cached
// base snapshot, remembers the result as a future base, and
// acknowledges it to the server (which unlocks delta encoding for the
// next stop). A delta whose base is no longer cached — possible only
// when more frames were in flight than the cache holds — requests a
// full-frame resync with ack 0; that stop is lost to this session,
// exactly like a coalesced-away one. Returns whether the event now
// carries a full Stop payload to deliver.
func (c *Client) resolveStop(conn *ws.Conn, ev *proto.Event) bool {
	if ev.Delta != nil {
		c.mu.Lock()
		base := c.stopCache[ev.Delta.BaseSeq]
		c.mu.Unlock()
		var st *core.StopEvent
		var err error
		if base != nil {
			st, err = proto.ApplyStop(base, ev.Delta)
		}
		if base == nil || err != nil {
			c.mu.Lock()
			c.resyncs++
			c.stopCache, c.stopRing = nil, nil
			c.mu.Unlock()
			c.sendAck(conn, 0)
			return false
		}
		ev.Stop, ev.Delta = st, nil
	}
	if ev.Stop == nil {
		return false
	}
	if ev.Seq != 0 {
		c.mu.Lock()
		if c.stopCache == nil {
			c.stopCache = map[uint64]*core.StopEvent{}
		}
		c.stopCache[ev.Seq] = ev.Stop
		c.stopRing = append(c.stopRing, ev.Seq)
		if len(c.stopRing) > stopCacheDepth {
			delete(c.stopCache, c.stopRing[0])
			c.stopRing = c.stopRing[1:]
		}
		c.mu.Unlock()
		c.sendAck(conn, ev.Seq)
	}
	return true
}

// sendAck emits the fire-and-forget stop acknowledgement (no token, no
// response). Runs on the reader goroutine; the ws layer serializes
// writes against concurrent requests.
func (c *Client) sendAck(conn *ws.Conn, seq uint64) {
	msg, err := json.Marshal(&proto.Request{Type: "ack", AckSeq: seq})
	if err != nil {
		return
	}
	conn.WriteText(msg)
}

// Resyncs reports how many times this session fell back to a
// full-frame resync because a delta's base was no longer cached.
func (c *Client) Resyncs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resyncs
}

// roundTrip sends a request and waits for its response.
func (c *Client) roundTrip(req *proto.Request) (*proto.Response, error) {
	c.mu.Lock()
	conn, closed := c.conn, c.closed
	if conn == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("hgdb: not connected")
	}
	c.nextTok++
	req.Token = strconv.Itoa(c.nextTok)
	ch := make(chan *proto.Response, 1)
	c.waiting[req.Token] = ch
	c.mu.Unlock()

	// Any exit that is not a delivered response must retire the waiter,
	// or timed-out/failed requests leak map entries for the life of
	// the connection.
	abandon := func() {
		c.mu.Lock()
		delete(c.waiting, req.Token)
		c.mu.Unlock()
	}
	msg, err := json.Marshal(req)
	if err != nil {
		abandon()
		return nil, err
	}
	if err := conn.WriteText(msg); err != nil {
		abandon()
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Status != "ok" {
			return resp, fmt.Errorf("hgdb: %s", resp.Reason)
		}
		return resp, nil
	case <-closed:
		abandon()
		return nil, fmt.Errorf("hgdb: connection closed")
	case <-time.After(30 * time.Second):
		abandon()
		return nil, fmt.Errorf("hgdb: request timed out")
	}
}

// AddBreakpoint arms breakpoints at file:line with an optional
// condition and returns the armed ids.
func (c *Client) AddBreakpoint(file string, line int, cond string) ([]int64, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "breakpoint", Action: "add",
		Filename: file, Line: line, Condition: cond,
	})
	if err != nil {
		return nil, err
	}
	var data struct {
		IDs []int64 `json:"ids"`
	}
	if err := json.Unmarshal(resp.Data, &data); err != nil {
		return nil, err
	}
	return data.IDs, nil
}

// RemoveBreakpoint disarms breakpoints at file:line.
func (c *Client) RemoveBreakpoint(file string, line int) (int, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "breakpoint", Action: "remove", Filename: file, Line: line,
	})
	if err != nil {
		return 0, err
	}
	var data struct {
		Removed int `json:"removed"`
	}
	if err := json.Unmarshal(resp.Data, &data); err != nil {
		return 0, err
	}
	return data.Removed, nil
}

// ListBreakpoints returns the armed breakpoints.
func (c *Client) ListBreakpoints() ([]proto.BreakpointInfo, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "breakpoint", Action: "list"})
	if err != nil {
		return nil, err
	}
	var infos []proto.BreakpointInfo
	if len(resp.Data) > 0 {
		if err := json.Unmarshal(resp.Data, &infos); err != nil {
			return nil, err
		}
	}
	return infos, nil
}

// ClearBreakpoints disarms everything.
func (c *Client) ClearBreakpoints() error {
	_, err := c.roundTrip(&proto.Request{Type: "breakpoint", Action: "clear"})
	return err
}

// Command resumes a stopped simulation: continue, step, reverse-step,
// detach, pause. Requires control.
func (c *Client) Command(cmd string) error {
	_, err := c.roundTrip(&proto.Request{Type: "command", Command: cmd})
	return err
}

// Evaluate computes a watch expression in an instance context.
// Observers may evaluate while the simulation is running; the value
// is captured at a clock edge.
func (c *Client) Evaluate(instance, expression string) (proto.ValueInfo, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "evaluate", Instance: instance, Expression: expression,
	})
	if err != nil {
		return proto.ValueInfo{}, err
	}
	var v proto.ValueInfo
	if err := json.Unmarshal(resp.Data, &v); err != nil {
		return proto.ValueInfo{}, err
	}
	return v, nil
}

// GetValue fetches a signal by full or symtab-relative path. Works
// for observers mid-run (edge-captured, see Evaluate).
func (c *Client) GetValue(path string) (proto.ValueInfo, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "get-value", Path: path})
	if err != nil {
		return proto.ValueInfo{}, err
	}
	var v proto.ValueInfo
	if err := json.Unmarshal(resp.Data, &v); err != nil {
		return proto.ValueInfo{}, err
	}
	return v, nil
}

// SetValue deposits a value into the design. Requires control.
func (c *Client) SetValue(path string, v uint64) error {
	_, err := c.roundTrip(&proto.Request{Type: "set-value", Path: path, Value: v})
	return err
}

// Info queries runtime metadata; topic is files | lines | instances |
// status.
func (c *Client) Info(topic, filename string) (json.RawMessage, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "info", Topic: topic, Filename: filename})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Sessions lists every attached session with its role and dropped
// event count.
func (c *Client) Sessions() ([]proto.SessionInfo, error) {
	resp, err := c.roundTrip(&proto.Request{Type: "session", Action: "list"})
	if err != nil {
		return nil, err
	}
	var infos []proto.SessionInfo
	if len(resp.Data) > 0 {
		if err := json.Unmarshal(resp.Data, &infos); err != nil {
			return nil, err
		}
	}
	return infos, nil
}

// Release hands control to the oldest observer (or leaves it vacant
// when this is the only session). Requires control.
func (c *Client) Release() error {
	_, err := c.roundTrip(&proto.Request{Type: "session", Action: "release"})
	return err
}

// Claim takes control when it is vacant.
func (c *Client) Claim() error {
	_, err := c.roundTrip(&proto.Request{Type: "session", Action: "claim"})
	return err
}

// AddWatch sets a data watchpoint on an expression in an instance
// context; stops fire whenever the value changes. Requires control.
func (c *Client) AddWatch(instance, expression string) (int, error) {
	resp, err := c.roundTrip(&proto.Request{
		Type: "watch", Action: "add", Instance: instance, Expression: expression,
	})
	if err != nil {
		return 0, err
	}
	var data struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(resp.Data, &data); err != nil {
		return 0, err
	}
	return data.ID, nil
}

// RemoveWatch deletes a watchpoint by id. Requires control.
func (c *Client) RemoveWatch(id int) error {
	_, err := c.roundTrip(&proto.Request{Type: "watch", Action: "remove", WatchID: id})
	return err
}

// WaitStop blocks until the next stop event or timeout. Unlike the
// pre-demux implementation it does not consume events of other types —
// they stay queued for their own waiters and subscriptions.
func (c *Client) WaitStop(timeout time.Duration) (*core.StopEvent, error) {
	ev, err := c.WaitEvent("stop", timeout)
	if err != nil {
		return nil, err
	}
	if ev.Stop == nil {
		return nil, fmt.Errorf("hgdb: malformed stop event")
	}
	return ev.Stop, nil
}

// WaitEvent blocks until the next event of the given type or timeout.
// It reads the client's per-type queue, so events of other types are
// neither consumed nor dropped while waiting; an event of the wanted
// type that arrived before this call is returned immediately.
func (c *Client) WaitEvent(typ string, timeout time.Duration) (*proto.Event, error) {
	c.mu.Lock()
	sub := c.typedLocked(typ)
	closed := c.closed // nil before the first connect: blocks in select
	c.mu.Unlock()
	// Fast path: already queued (delivered before this call, possibly
	// right before a disconnect).
	select {
	case ev := <-sub.C:
		return ev, nil
	default:
	}
	select {
	case ev := <-sub.C:
		return ev, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("hgdb: no %s event within %s", typ, timeout)
	case <-closed:
		// The connection died. Anything delivered before the teardown
		// — including the disconnect sentinel itself — is still
		// queued, because the sentinel lands before closed closes.
		select {
		case ev := <-sub.C:
			return ev, nil
		default:
		}
		return nil, fmt.Errorf("hgdb: connection closed")
	}
}
