package riscv

import (
	"repro/internal/generator"
	"repro/internal/ir"
)

// Memory geometry (words).
const (
	// IMemWords is the instruction memory depth (64 KiB).
	IMemWords = 16384
	// DMemWords is the data memory depth (128 KiB).
	DMemWords = 32768
)

// BuildCore generates a single-cycle RV32IM core with the repo's HGF.
// The control logic deliberately uses wires with default-then-override
// `When` chains: that is the style hgdb's SSA breakpoints are designed
// for, so every decode arm below is a breakpointable source line with
// an enable condition.
//
// Ports: hartid (in, 32), halted (out, 1), retired (out, 32),
// pc_out (out, 32). Memories: imem, dmem, regs (x0 is never written, so
// it reads as zero).
//
// ISA notes: MULHSU executes as MULH (none of the bundled kernels use
// it); FENCE is a no-op; ECALL halts the core; CSRRS reads mhartid
// (0xF14) and cycle (0xC00) only.
func BuildCore(c *generator.Circuit, name string) *generator.ModuleBuilder {
	m := c.NewModule(name)
	u32 := ir.UIntType(32)

	hartid := m.Input("hartid", u32)
	haltedOut := m.Output("halted", ir.UIntType(1))
	retiredOut := m.Output("retired", u32)
	pcOut := m.Output("pc_out", u32)

	imem := m.Mem("imem", ir.UIntType(32), IMemWords)
	dmem := m.Mem("dmem", ir.UIntType(32), DMemWords)
	regs := m.Mem("regs", ir.UIntType(32), 32)

	pc := m.RegInit("pc", u32, m.Lit(0, 32))
	halted := m.RegInit("halted_r", ir.UIntType(1), m.Lit(0, 1))
	retired := m.RegInit("retired_r", u32, m.Lit(0, 32))
	cycle := m.RegInit("cycle_r", u32, m.Lit(0, 32))
	cycle.Set(cycle.AddMod(m.Lit(1, 32)))

	// Fetch.
	instr := m.Node("instr", imem.Read(pc.Bits(31, 2)))

	// Decode fields.
	opcode := m.Node("opcode", instr.Bits(6, 0))
	rd := m.Node("rd", instr.Bits(11, 7))
	funct3 := m.Node("funct3", instr.Bits(14, 12))
	rs1 := m.Node("rs1", instr.Bits(19, 15))
	rs2 := m.Node("rs2", instr.Bits(24, 20))
	funct7 := m.Node("funct7", instr.Bits(31, 25))

	// Immediates.
	immI := m.Node("immI", instr.Bits(31, 20).SignExtend(32))
	immS := m.Node("immS", instr.Bits(31, 25).Cat(instr.Bits(11, 7)).SignExtend(32))
	immB := m.Node("immB",
		instr.Bit(31).Cat(instr.Bit(7)).Cat(instr.Bits(30, 25)).Cat(instr.Bits(11, 8)).
			Cat(m.Lit(0, 1)).SignExtend(32))
	immU := m.Node("immU", instr.Bits(31, 12).Cat(m.Lit(0, 12)))
	immJ := m.Node("immJ",
		instr.Bit(31).Cat(instr.Bits(19, 12)).Cat(instr.Bit(20)).Cat(instr.Bits(30, 21)).
			Cat(m.Lit(0, 1)).SignExtend(32))

	// Register file reads (x0 reads zero because it is never written).
	rv1 := m.Node("rv1", regs.Read(rs1))
	rv2 := m.Node("rv2", regs.Read(rs2))

	// Opcode classes.
	op := func(v uint64) *generator.Signal { return opcode.Eq(m.Lit(v, 7)) }
	isLui := m.Node("isLui", op(0x37))
	isAuipc := m.Node("isAuipc", op(0x17))
	isJal := m.Node("isJal", op(0x6F))
	isJalr := m.Node("isJalr", op(0x67))
	isBranch := m.Node("isBranch", op(0x63))
	isLoad := m.Node("isLoad", op(0x03))
	isStore := m.Node("isStore", op(0x23))
	isOpImm := m.Node("isOpImm", op(0x13))
	isOp := m.Node("isOp", op(0x33))
	isSystem := m.Node("isSystem", op(0x73))
	isEcall := m.Node("isEcall",
		isSystem.And(funct3.Eq(m.Lit(0, 3))).And(instr.Bits(31, 20).Eq(m.Lit(0, 12))))
	isCsr := m.Node("isCsr", isSystem.And(funct3.Eq(m.Lit(2, 3))))
	isMul := m.Node("isMul", isOp.And(funct7.Eq(m.Lit(1, 7))))

	// CSR read data.
	csrAddr := m.Node("csrAddr", instr.Bits(31, 20))
	csrVal := m.Wire("csrVal", u32)
	csrVal.Set(m.Lit(0, 32))
	m.When(csrAddr.Eq(m.Lit(0xF14, 12)), func() { // mhartid
		csrVal.Set(hartid)
	})
	m.When(csrAddr.Eq(m.Lit(0xC00, 12)), func() { // cycle
		csrVal.Set(cycle)
	})

	// ALU.
	useImm := m.Node("useImm", isOpImm)
	aluB := m.Node("aluB", immI.Mux(useImm, rv2))
	shamt := m.Node("shamt", aluB.Bits(4, 0))
	aluOut := m.Wire("aluOut", u32)
	aluOut.Set(rv1.AddMod(aluB)) // default: ADD/ADDI

	subSra := funct7.Eq(m.Lit(0x20, 7))
	m.When(isMul.Not(), func() {
		m.When(funct3.Eq(m.Lit(0, 3)).And(isOp).And(subSra), func() {
			aluOut.Set(rv1.SubMod(aluB)) // SUB
		})
		m.When(funct3.Eq(m.Lit(1, 3)), func() { // SLL
			aluOut.Set(rv1.Dshl(shamt).Bits(31, 0))
		})
		m.When(funct3.Eq(m.Lit(2, 3)), func() { // SLT
			aluOut.Set(rv1.AsSInt().Lt(aluB.AsSInt()).Pad(32))
		})
		m.When(funct3.Eq(m.Lit(3, 3)), func() { // SLTU
			aluOut.Set(rv1.Lt(aluB).Pad(32))
		})
		m.When(funct3.Eq(m.Lit(4, 3)), func() { // XOR
			aluOut.Set(rv1.Xor(aluB))
		})
		m.When(funct3.Eq(m.Lit(5, 3)), func() { // SRL / SRA
			m.When(subSra, func() {
				aluOut.Set(rv1.AsSInt().Dshr(shamt).AsUInt())
			}).Otherwise(func() {
				aluOut.Set(rv1.Dshr(shamt))
			})
		})
		m.When(funct3.Eq(m.Lit(6, 3)), func() { // OR
			aluOut.Set(rv1.Or(aluB))
		})
		m.When(funct3.Eq(m.Lit(7, 3)), func() { // AND
			aluOut.Set(rv1.And(aluB))
		})
	})

	// M extension.
	rv2Zero := m.Node("rv2Zero", rv2.Eq(m.Lit(0, 32)))
	m.When(isMul, func() {
		m.When(funct3.Eq(m.Lit(0, 3)), func() { // MUL
			aluOut.Set(rv1.Mul(rv2).Bits(31, 0))
		})
		m.When(funct3.Eq(m.Lit(1, 3)).Or(funct3.Eq(m.Lit(2, 3))), func() { // MULH (and MULHSU alias)
			aluOut.Set(rv1.AsSInt().Mul(rv2.AsSInt()).AsUInt().Bits(63, 32))
		})
		m.When(funct3.Eq(m.Lit(3, 3)), func() { // MULHU
			aluOut.Set(rv1.Mul(rv2).Bits(63, 32))
		})
		m.When(funct3.Eq(m.Lit(4, 3)), func() { // DIV
			m.When(rv2Zero, func() {
				aluOut.Set(m.Lit(0xFFFFFFFF, 32))
			}).Otherwise(func() {
				aluOut.Set(rv1.AsSInt().Div(rv2.AsSInt()).AsUInt().Bits(31, 0))
			})
		})
		m.When(funct3.Eq(m.Lit(5, 3)), func() { // DIVU
			m.When(rv2Zero, func() {
				aluOut.Set(m.Lit(0xFFFFFFFF, 32))
			}).Otherwise(func() {
				aluOut.Set(rv1.Div(rv2))
			})
		})
		m.When(funct3.Eq(m.Lit(6, 3)), func() { // REM
			m.When(rv2Zero, func() {
				aluOut.Set(rv1)
			}).Otherwise(func() {
				aluOut.Set(rv1.AsSInt().Rem(rv2.AsSInt()).AsUInt())
			})
		})
		m.When(funct3.Eq(m.Lit(7, 3)), func() { // REMU
			m.When(rv2Zero, func() {
				aluOut.Set(rv1)
			}).Otherwise(func() {
				aluOut.Set(rv1.Rem(rv2))
			})
		})
	})

	// Branch resolution.
	brEq := m.Node("brEq", rv1.Eq(rv2))
	brLt := m.Node("brLt", rv1.AsSInt().Lt(rv2.AsSInt()))
	brLtu := m.Node("brLtu", rv1.Lt(rv2))
	taken := m.Wire("taken", ir.UIntType(1))
	taken.Set(m.Lit(0, 1))
	m.When(isBranch, func() {
		m.When(funct3.Eq(m.Lit(0, 3)), func() { taken.Set(brEq) })
		m.When(funct3.Eq(m.Lit(1, 3)), func() { taken.Set(brEq.Not()) })
		m.When(funct3.Eq(m.Lit(4, 3)), func() { taken.Set(brLt) })
		m.When(funct3.Eq(m.Lit(5, 3)), func() { taken.Set(brLt.Not()) })
		m.When(funct3.Eq(m.Lit(6, 3)), func() { taken.Set(brLtu) })
		m.When(funct3.Eq(m.Lit(7, 3)), func() { taken.Set(brLtu.Not()) })
	})

	// Data memory access.
	memImm := m.Node("memImm", immS.Mux(isStore, immI))
	addr := m.Node("addr", rv1.AddMod(memImm))
	wordAddr := m.Node("wordAddr", addr.Bits(31, 2))
	byteOff := m.Node("byteOff", addr.Bits(1, 0))
	shiftBits := m.Node("shiftBits", byteOff.Cat(m.Lit(0, 3))) // byteOff * 8
	loadWord := m.Node("loadWord", dmem.Read(wordAddr))
	loadShifted := m.Node("loadShifted", loadWord.Dshr(shiftBits))

	loadVal := m.Wire("loadVal", u32)
	loadVal.Set(loadWord)                   // LW default
	m.When(funct3.Eq(m.Lit(0, 3)), func() { // LB
		loadVal.Set(loadShifted.Bits(7, 0).SignExtend(32))
	})
	m.When(funct3.Eq(m.Lit(1, 3)), func() { // LH
		loadVal.Set(loadShifted.Bits(15, 0).SignExtend(32))
	})
	m.When(funct3.Eq(m.Lit(4, 3)), func() { // LBU
		loadVal.Set(loadShifted.Bits(7, 0).Pad(32))
	})
	m.When(funct3.Eq(m.Lit(5, 3)), func() { // LHU
		loadVal.Set(loadShifted.Bits(15, 0).Pad(32))
	})

	// Store data: read-modify-write for sub-word stores.
	storeData := m.Wire("storeData", u32)
	storeData.Set(rv2) // SW default
	byteMask := m.Node("byteMask", m.Lit(0xFF, 32).Dshl(shiftBits).Bits(31, 0))
	byteData := m.Node("byteData", rv2.Bits(7, 0).Pad(32).Dshl(shiftBits).Bits(31, 0))
	halfMask := m.Node("halfMask", m.Lit(0xFFFF, 32).Dshl(shiftBits).Bits(31, 0))
	halfData := m.Node("halfData", rv2.Bits(15, 0).Pad(32).Dshl(shiftBits).Bits(31, 0))
	m.When(funct3.Eq(m.Lit(0, 3)), func() { // SB
		storeData.Set(loadWord.And(byteMask.Not()).Or(byteData))
	})
	m.When(funct3.Eq(m.Lit(1, 3)), func() { // SH
		storeData.Set(loadWord.And(halfMask.Not()).Or(halfData))
	})
	dmem.Write(wordAddr, storeData, isStore.And(halted.Not()))

	// Register write-back.
	rdVal := m.Wire("rdVal", u32)
	rdVal.Set(aluOut)
	m.When(isLui, func() { rdVal.Set(immU) })
	m.When(isAuipc, func() { rdVal.Set(pc.AddMod(immU)) })
	m.When(isJal.Or(isJalr), func() { rdVal.Set(pc.AddMod(m.Lit(4, 32))) })
	m.When(isLoad, func() { rdVal.Set(loadVal) })
	m.When(isCsr, func() { rdVal.Set(csrVal) })

	writesRd := m.Node("writesRd",
		isOp.Or(isOpImm).Or(isLui).Or(isAuipc).Or(isJal).Or(isJalr).Or(isLoad).Or(isCsr))
	wen := m.Node("wen", writesRd.And(rd.Neq(m.Lit(0, 5))).And(halted.Not()))
	regs.Write(rd, rdVal, wen)

	// Next PC.
	nextPC := m.Wire("nextPC", u32)
	nextPC.Set(pc.AddMod(m.Lit(4, 32)))
	m.When(isJal, func() { nextPC.Set(pc.AddMod(immJ)) })
	m.When(isJalr, func() {
		nextPC.Set(rv1.AddMod(immI).And(m.Lit(0xFFFFFFFE, 32)))
	})
	m.When(isBranch.And(taken), func() { nextPC.Set(pc.AddMod(immB)) })

	m.When(halted.Not(), func() {
		pc.Set(nextPC)
		retired.Set(retired.AddMod(m.Lit(1, 32)))
		m.When(isEcall, func() {
			halted.Set(m.Lit(1, 1))
		})
	})

	haltedOut.Set(halted)
	retiredOut.Set(retired)
	pcOut.Set(pc)
	return m
}

// BuildSoC generates the top level: nCores instances of the core (named
// core0, core1, …) each with a distinct hartid — the paper's mt-*
// workloads run on the two-core build, and the concurrent instances are
// exactly the "threads" of Fig. 4 B.
func BuildSoC(nCores int, coreName, topName string) (*ir.Circuit, error) {
	c := generator.NewCircuit(topName)
	coreMod := BuildCore(c, coreName)
	top := c.NewModule(topName)
	allHalted := top.Bool(true)
	for i := 0; i < nCores; i++ {
		inst := top.Instance("core"+itoa(i), coreMod)
		inst.IO("hartid").Set(top.Lit(uint64(i), 32))
		allHalted = allHalted.And(inst.IO("halted"))
		out := top.Output("retired"+itoa(i), ir.UIntType(32))
		out.Set(inst.IO("retired"))
	}
	haltedOut := top.Output("all_halted", ir.UIntType(1))
	haltedOut.Set(allHalted)
	return c.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
