package riscv

import (
	"testing"
)

func TestAssemblerBasicEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"add x1, x2, x3", 0x003100B3},
		{"sub x1, x2, x3", 0x403100B3},
		{"addi x1, x2, -1", 0xFFF10093},
		{"lw a0, 4(sp)", 0x00412503},
		{"sw a0, 8(sp)", 0x00A12423},
		{"lui t0, 0x12345", 0x123452B7},
		{"jalr x0, 0(ra)", 0x00008067},
		{"ecall", 0x00000073},
		{"mul a0, a1, a2", 0x02C58533},
		{"divu a0, a1, a2", 0x02C5D533},
		{"slli a0, a1, 3", 0x00359513},
		{"srai a0, a1, 3", 0x4035D513},
	}
	for _, c := range cases {
		p, err := Assemble(c.src)
		if err != nil {
			t.Fatalf("assemble %q: %v", c.src, err)
		}
		if len(p.Text) != 1 || p.Text[0] != c.want {
			t.Errorf("%q = %#08x, want %#08x", c.src, p.Text[0], c.want)
		}
	}
}

func TestAssemblerBranchesAndLabels(t *testing.T) {
	src := `
start:
    addi x1, x0, 5
loop:
    addi x1, x1, -1
    bnez x1, loop
    j start
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 4 {
		t.Fatalf("words = %d", len(p.Text))
	}
	if p.Symbols["start"] != 0 || p.Symbols["loop"] != 4 {
		t.Fatalf("symbols = %v", p.Symbols)
	}
	// bnez at pc=8 targets loop (4): offset -4.
	// beq encoding check: bne x1, x0, -4
	if p.Text[2] != 0xFE009EE3 {
		t.Fatalf("bnez = %#08x", p.Text[2])
	}
}

func TestAssemblerPseudoExpansion(t *testing.T) {
	p, err := Assemble("li a0, 0x12345678")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 2 {
		t.Fatalf("li expands to %d words", len(p.Text))
	}
	// lui must compensate for the sign of the low part.
	// 0x12345678: lo = 0x678, hi = 0x12345.
	if p.Text[0] != 0x12345537 {
		t.Fatalf("lui = %#08x", p.Text[0])
	}
	if p.Text[1] != 0x67850513 {
		t.Fatalf("addi = %#08x", p.Text[1])
	}
	// li with a low part that sign-extends negative.
	p2, err := Assemble("li a0, 0x12345FFF")
	if err != nil {
		t.Fatal(err)
	}
	// hi must round up to 0x12346, lo = -1.
	if p2.Text[0] != 0x12346537 {
		t.Fatalf("rounded lui = %#08x", p2.Text[0])
	}
}

func TestAssemblerData(t *testing.T) {
	src := `
.data
tbl: .word 1, 2, 3
buf: .space 8
end: .word 0xdeadbeef
.text
    la t0, tbl
    la t1, end
    ecall
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 6 {
		t.Fatalf("data words = %d", len(p.Data))
	}
	if p.Data[5] != 0xdeadbeef {
		t.Fatalf("data = %#x", p.Data)
	}
	if p.Symbols["tbl"] != 0 || p.Symbols["buf"] != 12 || p.Symbols["end"] != 20 {
		t.Fatalf("symbols = %v", p.Symbols)
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate x1, x2",
		"add x1, x2",         // wrong arity
		"addi x1, x2, 99999", // imm out of range
		"lw a0, nope",        // bad mem operand
		"add q9, x1, x2",     // bad register
		"beq x1, x2, faraway_undefined",
		"dup: nop\ndup: nop", // duplicate label
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// runWorkload executes a workload on a fresh machine and validates the
// checksum against the Go reference model.
func runWorkload(t *testing.T, w *Workload, debug bool) *RunResult {
	t.Helper()
	nCores := 1
	if w.MT {
		nCores = 2
	}
	m, err := NewMachine(nCores, debug)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	res, err := m.RunProgram(w.Prog, w.MaxCycles)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Halted {
		pc0, _ := m.PC(0)
		t.Fatalf("%s did not halt in %d cycles (pc=%#x)", w.Name, w.MaxCycles, pc0)
	}
	addr, err := w.ResultAddr()
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < nCores; core++ {
		got, err := m.ReadWord(core, addr)
		if err != nil {
			t.Fatal(err)
		}
		want := w.Expected(core)
		if got != want {
			t.Errorf("%s core %d: result = %d, want %d", w.Name, core, got, want)
		}
	}
	return res
}

func TestAllWorkloadsProduceCorrectResults(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := runWorkload(t, w, false)
			if res.Retired[0] == 0 {
				t.Fatal("no instructions retired")
			}
			// Single-cycle core: CPI is exactly 1 during execution, so
			// cycles ≈ retired + reset/halt padding.
			if res.Cycles < res.Retired[0] {
				t.Fatalf("cycles %d < retired %d", res.Cycles, res.Retired[0])
			}
		})
	}
}

func TestDebugBuildMatchesOptimized(t *testing.T) {
	// The debug (unoptimized) build must produce identical results —
	// the same guarantee -O0 gives software.
	w := buildVVAdd()
	opt := runWorkload(t, w, false)
	dbg := runWorkload(t, w, true)
	if opt.Retired[0] != dbg.Retired[0] {
		t.Fatalf("retired differs: %d vs %d", opt.Retired[0], dbg.Retired[0])
	}
	if opt.Cycles != dbg.Cycles {
		t.Fatalf("cycles differ: %d vs %d", opt.Cycles, dbg.Cycles)
	}
}

func TestMTWorkloadsUseBothCores(t *testing.T) {
	for _, w := range Workloads() {
		if !w.MT {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res := runWorkload(t, w, false)
			if len(res.Retired) != 2 {
				t.Fatalf("cores = %d", len(res.Retired))
			}
			if res.Retired[0] == 0 || res.Retired[1] == 0 {
				t.Fatalf("idle core: retired = %v", res.Retired)
			}
		})
	}
}

func TestISABasics(t *testing.T) {
	// Direct ISA sanity: small programs with architectural checks.
	cases := []struct {
		name string
		src  string
		reg  uint32 // register to check (a0 = 10)
		want uint32
	}{
		{"addi", "li a0, 41\naddi a0, a0, 1\necall", 10, 42},
		{"sub", "li a0, 10\nli a1, 3\nsub a0, a0, a1\necall", 10, 7},
		{"slt-true", "li a1, -5\nli a2, 3\nslt a0, a1, a2\necall", 10, 1},
		{"sltu-false", "li a1, -5\nli a2, 3\nsltu a0, a1, a2\necall", 10, 0},
		{"xor", "li a0, 0b1100\nxori a0, a0, 0b1010\necall", 10, 0b0110},
		{"sll", "li a0, 1\nslli a0, a0, 31\nsrli a0, a0, 28\necall", 10, 8},
		{"sra", "li a0, -16\nsrai a0, a0, 2\necall", 10, 0xFFFFFFFC},
		{"mul", "li a1, 1000\nli a2, 1000\nmul a0, a1, a2\necall", 10, 1000000},
		{"mulhu", "li a1, 0x10000\nli a2, 0x10000\nmulhu a0, a1, a2\necall", 10, 1},
		{"div", "li a1, -100\nli a2, 7\ndiv a0, a1, a2\necall", 10, 0xFFFFFFF2}, // -14
		{"div0", "li a1, 5\nli a2, 0\ndiv a0, a1, a2\necall", 10, 0xFFFFFFFF},
		{"rem", "li a1, -100\nli a2, 7\nrem a0, a1, a2\necall", 10, 0xFFFFFFFE}, // -2
		{"remu0", "li a1, 5\nli a2, 0\nremu a0, a1, a2\necall", 10, 5},
		{"lui-auipc", "lui a0, 1\nsrli a0, a0, 12\necall", 10, 1},
		{"jal-link", "jal ra, 8\nnop\nmv a0, ra\necall", 10, 4},
		{"x0-immutable", "li x0, 99\nmv a0, x0\necall", 10, 0},
		{"byte-store", "li sp, 0x10000\nli a1, 0x11223344\nsw a1, 0(sp)\nli a2, 0xAA\nsb a2, 1(sp)\nlw a0, 0(sp)\necall", 10, 0x1122AA44},
		{"half-load", "li sp, 0x10000\nli a1, 0x8000FFFF\nsw a1, 0(sp)\nlh a0, 2(sp)\necall", 10, 0xFFFF8000},
		{"lbu", "li sp, 0x10000\nli a1, 0xFF\nsw a1, 0(sp)\nlbu a0, 0(sp)\necall", 10, 0xFF},
		{"lb-signext", "li sp, 0x10000\nli a1, 0x80\nsw a1, 0(sp)\nlb a0, 0(sp)\necall", 10, 0xFFFFFF80},
		{"csr-hartid", "csrrs a0, 0xF14, x0\naddi a0, a0, 7\necall", 10, 7},
		{"branch-taken", "li a0, 0\nli a1, 1\nbeq a1, a1, over\nli a0, 99\nover: addi a0, a0, 1\necall", 10, 1},
	}
	m, err := NewMachine(1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			prog, err := Assemble(c.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			// Fresh state: reload zeroed memories by zero-filling regs.
			for r := uint32(1); r < 32; r++ {
				m.Sim.WriteMem(m.Cores[0]+".regs", uint64(r), 0)
			}
			for i := 0; i < IMemWords; i++ {
				if i < len(prog.Text) {
					m.Sim.WriteMem(m.Cores[0]+".imem", uint64(i), uint64(prog.Text[i]))
				} else if i < 64 {
					m.Sim.WriteMem(m.Cores[0]+".imem", uint64(i), 0)
				} else {
					break
				}
			}
			for i, w := range prog.Data {
				m.Sim.WriteMem(m.Cores[0]+".dmem", uint64(i), uint64(w))
			}
			if err := m.Reset(); err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(500)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted {
				pc, _ := m.PC(0)
				t.Fatalf("did not halt (pc=%#x)", pc)
			}
			got, err := m.ReadReg(0, c.reg)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Fatalf("reg = %#x, want %#x", got, c.want)
			}
		})
	}
}
