package riscv

import (
	"fmt"
	"strings"
)

// Workload is one Figure 5 benchmark: an assembly kernel plus a Go
// reference model that predicts the checksum the kernel stores at its
// `result` label before halting.
type Workload struct {
	Name string
	// MT marks the dual-core workloads (mt-vvadd, mt-matmul).
	MT bool
	// Prog is the assembled kernel (shared by all cores; cores pick
	// their slice of work via mhartid).
	Prog *Program
	// Expected returns the reference checksum for a given hart.
	Expected func(hart int) uint32
	// MaxCycles bounds the simulation.
	MaxCycles int
}

// lcg is the deterministic data generator shared by kernels and
// reference models.
func lcg(seed uint32) func() uint32 {
	state := seed
	return func() uint32 {
		state = state*1664525 + 1013904223
		return state
	}
}

func words(vals []uint32) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return ".word " + strings.Join(parts, ", ")
}

func genData(seed uint32, n int, mod uint32) []uint32 {
	g := lcg(seed)
	out := make([]uint32, n)
	for i := range out {
		out[i] = g() % mod
	}
	return out
}

const prologue = `
    li sp, 0x20000
`

const epilogue = `
    la t0, result
    sw a0, 0(t0)
    ecall
`

// --- vvadd -----------------------------------------------------------

const vvaddN = 256

func buildVVAdd() *Workload {
	a := genData(1, vvaddN, 1000)
	b := genData(2, vvaddN, 1000)
	src := `
.data
va: ` + words(a) + `
vb: ` + words(b) + `
vc: .space ` + fmt.Sprintf("%d", vvaddN*4) + `
result: .word 0
.text
` + prologue + `
    la t0, va
    la t1, vb
    la t2, vc
    li t3, ` + fmt.Sprintf("%d", vvaddN) + `
    li t4, 0
loop:
    slli t5, t4, 2
    add a4, t0, t5
    lw a1, 0(a4)
    add a4, t1, t5
    lw a2, 0(a4)
    add a3, a1, a2
    add a4, t2, t5
    sw a3, 0(a4)
    addi t4, t4, 1
    blt t4, t3, loop
    li t4, 0
    li a0, 0
sum:
    slli t5, t4, 2
    add a4, t2, t5
    lw a1, 0(a4)
    add a0, a0, a1
    addi t4, t4, 1
    blt t4, t3, sum
` + epilogue
	expect := uint32(0)
	for i := 0; i < vvaddN; i++ {
		expect += a[i] + b[i]
	}
	return &Workload{
		Name:      "vvadd",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// --- mt-vvadd: each hart sums its half -------------------------------

func buildMTVVAdd() *Workload {
	a := genData(3, vvaddN, 1000)
	b := genData(4, vvaddN, 1000)
	half := vvaddN / 2
	src := `
.data
va: ` + words(a) + `
vb: ` + words(b) + `
vc: .space ` + fmt.Sprintf("%d", vvaddN*4) + `
result: .word 0
.text
` + prologue + `
    csrrs s1, 0xF14, x0      # hartid
    li t3, ` + fmt.Sprintf("%d", half) + `
    mul t4, s1, t3           # start = hart*half
    add t3, t4, t3           # end = start+half
    la t0, va
    la t1, vb
    la t2, vc
loop:
    slli t5, t4, 2
    add a4, t0, t5
    lw a1, 0(a4)
    add a4, t1, t5
    lw a2, 0(a4)
    add a3, a1, a2
    add a4, t2, t5
    sw a3, 0(a4)
    addi t4, t4, 1
    blt t4, t3, loop
    # checksum own half
    li t4, ` + fmt.Sprintf("%d", half) + `
    mul t4, s1, t4
    li a0, 0
    li t5, 0
sum:
    slli a4, t4, 2
    add a4, t2, a4
    lw a1, 0(a4)
    add a0, a0, a1
    addi t4, t4, 1
    addi t5, t5, 1
    li a4, ` + fmt.Sprintf("%d", half) + `
    blt t5, a4, sum
` + epilogue
	expect := func(hart int) uint32 {
		s := uint32(0)
		for i := hart * half; i < (hart+1)*half; i++ {
			s += a[i] + b[i]
		}
		return s
	}
	return &Workload{
		Name:      "mt-vvadd",
		MT:        true,
		Prog:      MustAssemble(src),
		Expected:  expect,
		MaxCycles: 80000,
	}
}

// --- mt-idle: clock-gated idle core ----------------------------------
//
// The low-activity Figure 5 scenario: hart 1 writes its checksum and
// halts within a handful of instructions — a halted core's registers
// are clock-gated (`halted_r` guards every architectural update), so
// its signals freeze for the rest of the run — while hart 0 spins
// through a long register-only loop. Most of the design is idle for
// most of the simulation, which is exactly the regime activity-driven
// breakpoint scheduling exploits: conditions armed on the idle core
// cost near zero per edge once its dependency signals stop changing.

const idleSpinN = 2000

func buildIdle() *Workload {
	src := `
.data
result: .word 0
.text
` + prologue + `
    csrrs t0, 0xF14, x0      # hartid
    bnez t0, park
    # hart 0: long register-only spin, the busy half of the scenario
    li t1, ` + fmt.Sprintf("%d", idleSpinN) + `
    li a0, 0
spin:
    addi a0, a0, 3
    addi t1, t1, -1
    bnez t1, spin
    j done
park:
    # hart 1: immediate result + halt; its clock effectively gates off
    li a0, 42
done:
` + epilogue
	return &Workload{
		Name: "mt-idle",
		MT:   true,
		Prog: MustAssemble(src),
		Expected: func(hart int) uint32 {
			if hart == 0 {
				return uint32(3 * idleSpinN)
			}
			return 42
		},
		MaxCycles: 60000,
	}
}

// --- multiply: software shift-add multiply vs hardware results -------

const multiplyN = 96

func buildMultiply() *Workload {
	a := genData(5, multiplyN, 1<<12)
	b := genData(6, multiplyN, 1<<12)
	src := `
.data
ma: ` + words(a) + `
mb: ` + words(b) + `
result: .word 0
.text
` + prologue + `
    la s0, ma
    la s1, mb
    li s2, ` + fmt.Sprintf("%d", multiplyN) + `
    li s3, 0                 # i
    li a0, 0                 # acc
outer:
    slli t5, s3, 2
    add t6, s0, t5
    lw a1, 0(t6)             # x
    add t6, s1, t5
    lw a2, 0(t6)             # y
    li a3, 0                 # product
    li t0, 32                # bit counter
mulbit:
    andi t1, a2, 1
    beqz t1, skip
    add a3, a3, a1
skip:
    slli a1, a1, 1
    srli a2, a2, 1
    addi t0, t0, -1
    bnez a2, mulbit          # early out when multiplier exhausted
    add a0, a0, a3
    addi s3, s3, 1
    blt s3, s2, outer
` + epilogue
	expect := uint32(0)
	for i := 0; i < multiplyN; i++ {
		expect += a[i] * b[i]
	}
	return &Workload{
		Name:      "multiply",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// --- mm: dense matrix multiply ---------------------------------------

const mmN = 10

func buildMM() *Workload {
	a := genData(7, mmN*mmN, 100)
	b := genData(8, mmN*mmN, 100)
	src := `
.data
mma: ` + words(a) + `
mmb: ` + words(b) + `
mmc: .space ` + fmt.Sprintf("%d", mmN*mmN*4) + `
result: .word 0
.text
` + prologue + `
    la s0, mma
    la s1, mmb
    la s2, mmc
    li s3, ` + fmt.Sprintf("%d", mmN) + `
    li t0, 0                 # i
iloop:
    li t1, 0                 # j
jloop:
    li t2, 0                 # k
    li a3, 0                 # acc
kloop:
    mul t3, t0, s3
    add t3, t3, t2           # i*N+k
    slli t3, t3, 2
    add t3, s0, t3
    lw a1, 0(t3)
    mul t3, t2, s3
    add t3, t3, t1           # k*N+j
    slli t3, t3, 2
    add t3, s1, t3
    lw a2, 0(t3)
    mul a4, a1, a2
    add a3, a3, a4
    addi t2, t2, 1
    blt t2, s3, kloop
    mul t3, t0, s3
    add t3, t3, t1
    slli t3, t3, 2
    add t3, s2, t3
    sw a3, 0(t3)
    addi t1, t1, 1
    blt t1, s3, jloop
    addi t0, t0, 1
    blt t0, s3, iloop
    # checksum C
    li t0, 0
    li a0, 0
csum:
    slli t3, t0, 2
    add t3, s2, t3
    lw a1, 0(t3)
    add a0, a0, a1
    addi t0, t0, 1
    li t4, ` + fmt.Sprintf("%d", mmN*mmN) + `
    blt t0, t4, csum
` + epilogue
	expect := uint32(0)
	for i := 0; i < mmN; i++ {
		for j := 0; j < mmN; j++ {
			acc := uint32(0)
			for k := 0; k < mmN; k++ {
				acc += a[i*mmN+k] * b[k*mmN+j]
			}
			expect += acc
		}
	}
	return &Workload{
		Name:      "mm",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// --- mt-matmul: rows split across harts ------------------------------

func buildMTMatmul() *Workload {
	a := genData(9, mmN*mmN, 100)
	b := genData(10, mmN*mmN, 100)
	rows := mmN / 2
	src := `
.data
mma: ` + words(a) + `
mmb: ` + words(b) + `
mmc: .space ` + fmt.Sprintf("%d", mmN*mmN*4) + `
result: .word 0
.text
` + prologue + `
    csrrs s5, 0xF14, x0      # hartid
    li t0, ` + fmt.Sprintf("%d", rows) + `
    mul s6, s5, t0           # start row
    add s7, s6, t0           # end row
    la s0, mma
    la s1, mmb
    la s2, mmc
    li s3, ` + fmt.Sprintf("%d", mmN) + `
    mv t0, s6
iloop:
    li t1, 0
jloop:
    li t2, 0
    li a3, 0
kloop:
    mul t3, t0, s3
    add t3, t3, t2
    slli t3, t3, 2
    add t3, s0, t3
    lw a1, 0(t3)
    mul t3, t2, s3
    add t3, t3, t1
    slli t3, t3, 2
    add t3, s1, t3
    lw a2, 0(t3)
    mul a4, a1, a2
    add a3, a3, a4
    addi t2, t2, 1
    blt t2, s3, kloop
    mul t3, t0, s3
    add t3, t3, t1
    slli t3, t3, 2
    add t3, s2, t3
    sw a3, 0(t3)
    addi t1, t1, 1
    blt t1, s3, jloop
    addi t0, t0, 1
    blt t0, s7, iloop
    # checksum own rows
    mul t0, s6, s3
    mul t4, s7, s3
    li a0, 0
csum:
    slli t3, t0, 2
    add t3, s2, t3
    lw a1, 0(t3)
    add a0, a0, a1
    addi t0, t0, 1
    blt t0, t4, csum
` + epilogue
	expect := func(hart int) uint32 {
		s := uint32(0)
		for i := hart * rows; i < (hart+1)*rows; i++ {
			for j := 0; j < mmN; j++ {
				acc := uint32(0)
				for k := 0; k < mmN; k++ {
					acc += a[i*mmN+k] * b[k*mmN+j]
				}
				s += acc
			}
		}
		return s
	}
	return &Workload{
		Name:      "mt-matmul",
		MT:        true,
		Prog:      MustAssemble(src),
		Expected:  expect,
		MaxCycles: 80000,
	}
}

// --- qsort (sorting workload; selection sort kernel) ------------------

const qsortN = 48

func buildQsort() *Workload {
	data := genData(11, qsortN, 10000)
	src := `
.data
arr: ` + words(data) + `
result: .word 0
.text
` + prologue + `
    la s0, arr
    li s1, ` + fmt.Sprintf("%d", qsortN) + `
    li t0, 0                 # i
oloop:
    addi t4, s1, -1
    bge t0, t4, sorted
    mv t1, t0                # min index
    addi t2, t0, 1           # j
sloop:
    slli t3, t2, 2
    add t3, s0, t3
    lw a1, 0(t3)
    slli t3, t1, 2
    add t3, s0, t3
    lw a2, 0(t3)
    bgeu a1, a2, noswapidx
    mv t1, t2
noswapidx:
    addi t2, t2, 1
    blt t2, s1, sloop
    # swap arr[i], arr[min]
    slli t3, t0, 2
    add t3, s0, t3
    lw a1, 0(t3)
    slli t4, t1, 2
    add t4, s0, t4
    lw a2, 0(t4)
    sw a2, 0(t3)
    sw a1, 0(t4)
    addi t0, t0, 1
    j oloop
sorted:
    # checksum: sum of arr[i] * (i+1) proves ordering matters
    li t0, 0
    li a0, 0
wsum:
    slli t3, t0, 2
    add t3, s0, t3
    lw a1, 0(t3)
    addi t4, t0, 1
    mul a1, a1, t4
    add a0, a0, a1
    addi t0, t0, 1
    blt t0, s1, wsum
` + epilogue
	sorted := append([]uint32(nil), data...)
	for i := 0; i < len(sorted); i++ {
		min := i
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[min] {
				min = j
			}
		}
		sorted[i], sorted[min] = sorted[min], sorted[i]
	}
	expect := uint32(0)
	for i, v := range sorted {
		expect += v * uint32(i+1)
	}
	return &Workload{
		Name:      "qsort",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// --- dhrystone: synthetic integer mix --------------------------------

const dhryIters = 300

func buildDhrystone() *Workload {
	src := `
.data
scratch: .space 32
result: .word 0
.text
` + prologue + `
    la s0, scratch
    li s1, ` + fmt.Sprintf("%d", dhryIters) + `
    li t0, 0                 # i
    li a1, 12345             # x
    li a0, 0                 # y
dloop:
    li t2, 13
    mul a1, a1, t2
    addi a1, a1, 7
    li t2, 1000
    remu a1, a1, t2
    andi t3, t0, 7
    slli t3, t3, 2
    add t3, s0, t3
    sw a1, 0(t3)
    addi t4, t0, 3
    andi t4, t4, 7
    slli t4, t4, 2
    add t4, s0, t4
    lw a2, 0(t4)
    xor a2, a2, a1
    add a0, a0, a2
    andi t5, t0, 1
    beqz t5, even
    sub a0, a0, t0
    j postbr
even:
    add a0, a0, t0
postbr:
    addi t0, t0, 1
    blt t0, s1, dloop
` + epilogue
	// Reference model.
	expect := func(int) uint32 {
		scratch := make([]uint32, 8)
		x := uint32(12345)
		y := uint32(0)
		for i := uint32(0); i < dhryIters; i++ {
			x = (x*13 + 7) % 1000
			scratch[i&7] = x
			v := scratch[(i+3)&7] ^ x
			y += v
			if i&1 == 1 {
				y -= i
			} else {
				y += i
			}
		}
		return y
	}
	return &Workload{
		Name:      "dhrystone",
		Prog:      MustAssemble(src),
		Expected:  expect,
		MaxCycles: 80000,
	}
}

// --- median: 3-point median filter -----------------------------------

const medianN = 256

func buildMedian() *Workload {
	data := genData(12, medianN, 256)
	src := `
.data
min: ` + words(data) + `
mout: .space ` + fmt.Sprintf("%d", medianN*4) + `
result: .word 0
.text
` + prologue + `
    la s0, min
    la s1, mout
    li s2, ` + fmt.Sprintf("%d", medianN-1) + `
    li t0, 1                 # i
mloop:
    slli t3, t0, 2
    add t4, s0, t3
    lw a1, -4(t4)            # lo candidate
    lw a2, 0(t4)
    lw a3, 4(t4)
    # median of a1,a2,a3 -> a4 (sort the three)
    bleu a1, a2, m1
    mv t5, a1
    mv a1, a2
    mv a2, t5
m1:
    bleu a2, a3, m2
    mv t5, a2
    mv a2, a3
    mv a3, t5
m2:
    bleu a1, a2, m3
    mv t5, a1
    mv a1, a2
    mv a2, t5
m3:
    add t4, s1, t3
    sw a2, 0(t4)
    addi t0, t0, 1
    blt t0, s2, mloop
    # checksum mout[1..N-2]
    li t0, 1
    li a0, 0
msum:
    slli t3, t0, 2
    add t4, s1, t3
    lw a1, 0(t4)
    add a0, a0, a1
    addi t0, t0, 1
    blt t0, s2, msum
` + epilogue
	expect := uint32(0)
	med3 := func(a, b, c uint32) uint32 {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			b = a
		}
		return b
	}
	for i := 1; i < medianN-1; i++ {
		expect += med3(data[i-1], data[i], data[i+1])
	}
	return &Workload{
		Name:      "median",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// --- towers: recursive Towers of Hanoi -------------------------------

const towersDisks = 9

func buildTowers() *Workload {
	// True double recursion: hanoi(n) = hanoi(n-1) + 1 + hanoi(n-1),
	// exercising call/return and stack traffic 2^n times.
	src := `
.data
result: .word 0
.text
` + prologue + `
    li a0, ` + fmt.Sprintf("%d", towersDisks) + `
    call hanoi
` + epilogue + `
hanoi:
    addi sp, sp, -12
    sw ra, 8(sp)
    sw s0, 4(sp)
    sw s1, 0(sp)
    mv s0, a0
    li t0, 2
    blt a0, t0, base
    addi a0, s0, -1
    call hanoi
    mv s1, a0
    addi a0, s0, -1
    call hanoi
    add a0, a0, s1
    addi a0, a0, 1
    j hdone
base:
    li a0, 1
hdone:
    lw s1, 0(sp)
    lw s0, 4(sp)
    lw ra, 8(sp)
    addi sp, sp, 12
    ret
`
	expect := uint32(1<<towersDisks) - 1 // 2^n - 1 moves
	return &Workload{
		Name:      "towers",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// --- spmv: sparse matrix-vector multiply (CSR) ------------------------

func buildSpmv() *Workload {
	const n = 64
	// Build a deterministic sparse matrix: ~5 nonzeros per row.
	g := lcg(13)
	var rowptr []uint32
	var colidx, vals []uint32
	rowptr = append(rowptr, 0)
	for i := 0; i < n; i++ {
		nnz := 4 + int(g()%3)
		for k := 0; k < nnz; k++ {
			colidx = append(colidx, g()%n)
			vals = append(vals, g()%50)
		}
		rowptr = append(rowptr, uint32(len(colidx)))
	}
	x := genData(14, n, 100)
	src := `
.data
rowptr: ` + words(rowptr) + `
colidx: ` + words(colidx) + `
vals: ` + words(vals) + `
vx: ` + words(x) + `
vy: .space ` + fmt.Sprintf("%d", n*4) + `
result: .word 0
.text
` + prologue + `
    la s0, rowptr
    la s1, colidx
    la s2, vals
    la s3, vx
    la s4, vy
    li s5, ` + fmt.Sprintf("%d", n) + `
    li t0, 0                 # row
rloop:
    slli t3, t0, 2
    add t4, s0, t3
    lw a1, 0(t4)             # start
    lw a2, 4(t4)             # end
    li a3, 0                 # acc
eloop:
    bge a1, a2, edone
    slli t4, a1, 2
    add t5, s1, t4
    lw a4, 0(t5)             # col
    add t5, s2, t4
    lw a5, 0(t5)             # val
    slli a4, a4, 2
    add a4, s3, a4
    lw a6, 0(a4)             # x[col]
    mul a5, a5, a6
    add a3, a3, a5
    addi a1, a1, 1
    j eloop
edone:
    add t4, s4, t3
    sw a3, 0(t4)
    addi t0, t0, 1
    blt t0, s5, rloop
    # checksum y
    li t0, 0
    li a0, 0
ysum:
    slli t3, t0, 2
    add t4, s4, t3
    lw a1, 0(t4)
    add a0, a0, a1
    addi t0, t0, 1
    blt t0, s5, ysum
` + epilogue
	expect := uint32(0)
	for i := 0; i < n; i++ {
		acc := uint32(0)
		for k := rowptr[i]; k < rowptr[i+1]; k++ {
			acc += vals[k] * x[colidx[k]]
		}
		expect += acc
	}
	return &Workload{
		Name:      "spmv",
		Prog:      MustAssemble(src),
		Expected:  func(int) uint32 { return expect },
		MaxCycles: 80000,
	}
}

// Workloads returns the ten Figure 5 benchmarks in the paper's order.
func Workloads() []*Workload {
	return []*Workload{
		buildMultiply(),
		buildMM(),
		buildMTMatmul(),
		buildVVAdd(),
		buildQsort(),
		buildDhrystone(),
		buildMedian(),
		buildTowers(),
		buildSpmv(),
		buildMTVVAdd(),
		buildIdle(),
	}
}

// ResultAddr returns the byte address of the workload's `result` word.
func (w *Workload) ResultAddr() (uint32, error) {
	addr, ok := w.Prog.Symbols["result"]
	if !ok {
		return 0, fmt.Errorf("riscv: workload %s has no result symbol", w.Name)
	}
	return addr, nil
}
