package riscv

import (
	"fmt"

	"repro/internal/passes"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
)

// Machine wraps a simulated SoC with program loading and result
// inspection for one or more cores.
type Machine struct {
	Sim   *sim.Simulator
	Top   string
	Cores []string // instance paths, e.g. "SoC.core0"
	// Table is the hgdb symbol table extracted during compilation.
	Table *symtab.Table
	// Comp is kept for inspection (symbol statistics etc.).
	Comp *passes.Compilation
}

// NewMachine compiles and elaborates an nCores SoC. debug selects the
// paper's unoptimized debug build.
func NewMachine(nCores int, debug bool) (*Machine, error) {
	circ, err := BuildSoC(nCores, "RV32Core", "SoC")
	if err != nil {
		return nil, err
	}
	comp, err := passes.Compile(circ, debug)
	if err != nil {
		return nil, err
	}
	table, err := symtab.Build(comp)
	if err != nil {
		return nil, err
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Sim:   sim.New(nl),
		Top:   "SoC",
		Table: table,
		Comp:  comp,
	}
	for i := 0; i < nCores; i++ {
		m.Cores = append(m.Cores, fmt.Sprintf("SoC.core%d", i))
	}
	return m, nil
}

// Load writes a program image into a core's instruction and data
// memories and zeroes its architectural state trackers.
func (m *Machine) Load(core int, prog *Program) error {
	if core < 0 || core >= len(m.Cores) {
		return fmt.Errorf("riscv: no core %d", core)
	}
	path := m.Cores[core]
	if len(prog.Text) > IMemWords {
		return fmt.Errorf("riscv: program text (%d words) exceeds imem", len(prog.Text))
	}
	if len(prog.Data) > DMemWords {
		return fmt.Errorf("riscv: program data (%d words) exceeds dmem", len(prog.Data))
	}
	for i, w := range prog.Text {
		if err := m.Sim.WriteMem(path+".imem", uint64(i), uint64(w)); err != nil {
			return err
		}
	}
	for i, w := range prog.Data {
		if err := m.Sim.WriteMem(path+".dmem", uint64(i), uint64(w)); err != nil {
			return err
		}
	}
	return nil
}

// Reset pulses reset for two cycles.
func (m *Machine) Reset() error {
	return m.Sim.Reset(m.Top+".reset", 2)
}

// RunResult summarizes one program execution.
type RunResult struct {
	Cycles   uint64
	Retired  []uint64 // per core
	Halted   bool
	CPIMilli []uint64 // CPI per core ×1000 (integer-friendly)
}

// Run steps until all cores halt or maxCycles elapse.
func (m *Machine) Run(maxCycles int) (*RunResult, error) {
	start := m.Sim.Time()
	haltSig := m.Top + ".all_halted"
	for i := 0; i < maxCycles; i++ {
		m.Sim.Step()
		v, err := m.Sim.Peek(haltSig)
		if err != nil {
			return nil, err
		}
		if v.IsTrue() {
			break
		}
	}
	m.Sim.Settle()
	res := &RunResult{Cycles: m.Sim.Time() - start}
	halted, err := m.Sim.Peek(haltSig)
	if err != nil {
		return nil, err
	}
	res.Halted = halted.IsTrue()
	for i := range m.Cores {
		r, err := m.Sim.Peek(fmt.Sprintf("%s.retired%d", m.Top, i))
		if err != nil {
			return nil, err
		}
		res.Retired = append(res.Retired, r.Bits)
		cpi := uint64(0)
		if r.Bits > 0 {
			cpi = res.Cycles * 1000 / r.Bits
		}
		res.CPIMilli = append(res.CPIMilli, cpi)
	}
	return res, nil
}

// ReadWord reads a word from a core's data memory by byte address.
func (m *Machine) ReadWord(core int, byteAddr uint32) (uint32, error) {
	v, err := m.Sim.ReadMem(m.Cores[core]+".dmem", uint64(byteAddr/4))
	return uint32(v), err
}

// WriteWord writes a word into a core's data memory by byte address.
func (m *Machine) WriteWord(core int, byteAddr uint32, v uint32) error {
	return m.Sim.WriteMem(m.Cores[core]+".dmem", uint64(byteAddr/4), uint64(v))
}

// ReadReg reads an architectural register.
func (m *Machine) ReadReg(core int, reg uint32) (uint32, error) {
	v, err := m.Sim.ReadMem(m.Cores[core]+".regs", uint64(reg))
	return uint32(v), err
}

// PC returns a core's current program counter.
func (m *Machine) PC(core int) (uint32, error) {
	v, err := m.Sim.Peek(m.Cores[core] + ".pc")
	return uint32(v.Bits), err
}

// RunProgram is the one-shot helper: load on every core, reset, run.
func (m *Machine) RunProgram(prog *Program, maxCycles int) (*RunResult, error) {
	for i := range m.Cores {
		if err := m.Load(i, prog); err != nil {
			return nil, err
		}
	}
	if err := m.Reset(); err != nil {
		return nil, err
	}
	return m.Run(maxCycles)
}
