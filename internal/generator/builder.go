// Package generator is a Chisel-like hardware construction eDSL embedded
// in Go. It plays the role Chisel/Scala plays in the paper: designs are
// described with host-language control flow (Go loops unroll, Go
// conditionals specialize), and every emitted IR statement carries a
// source locator pointing at the *generator* source line that produced
// it, captured via runtime.Caller. Those locators are what hgdb later
// turns into source-level breakpoints.
package generator

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Circuit accumulates generated modules and produces the High-form IR.
type Circuit struct {
	name    string
	modules []*ModuleBuilder
}

// NewCircuit creates a circuit whose top-level module has the given name.
// The module itself must still be defined with NewModule.
func NewCircuit(main string) *Circuit {
	return &Circuit{name: main}
}

// NewModule starts the definition of a module. Modules implicitly get
// `clock` and `reset` input ports, mirroring Chisel's implicit clock and
// reset.
func (c *Circuit) NewModule(name string) *ModuleBuilder {
	mb := &ModuleBuilder{
		circuit: c,
		mod: &ir.Module{
			Name: name,
			Ports: []ir.Port{
				{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
				{Name: "reset", Dir: ir.Input, Tpe: ir.ResetType()},
			},
			Attrs: map[string]string{},
		},
		names: map[string]int{"clock": 1, "reset": 1},
	}
	mb.scopes = []*[]ir.Stmt{&mb.mod.Body}
	c.modules = append(c.modules, mb)
	return mb
}

// Build finalizes the circuit and returns the High-form IR. It returns
// an error when the design is structurally invalid.
func (c *Circuit) Build() (*ir.Circuit, error) {
	out := &ir.Circuit{Main: c.name}
	for _, mb := range c.modules {
		if len(mb.scopes) != 1 {
			return nil, fmt.Errorf("generator: module %s has an unclosed When scope", mb.mod.Name)
		}
		out.AddModule(mb.mod)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// MustBuild is Build, panicking on error; intended for tests and
// examples where the design is statically known to be valid.
func (c *Circuit) MustBuild() *ir.Circuit {
	out, err := c.Build()
	if err != nil {
		panic(err)
	}
	return out
}

// ModuleBuilder constructs one module. It is not safe for concurrent
// use; hardware generation is single-threaded, like Chisel elaboration.
type ModuleBuilder struct {
	circuit *Circuit
	mod     *ir.Module
	scopes  []*[]ir.Stmt
	conds   []ir.Expr // active When condition stack
	names   map[string]int
}

// Name returns the module name.
func (mb *ModuleBuilder) Name() string { return mb.mod.Name }

// emit appends a statement to the innermost open scope.
func (mb *ModuleBuilder) emit(s ir.Stmt) {
	scope := mb.scopes[len(mb.scopes)-1]
	*scope = append(*scope, s)
}

// unique reserves a fresh name derived from base.
func (mb *ModuleBuilder) unique(base string) string {
	if base == "" {
		base = "_T"
	}
	n, used := mb.names[base]
	if !used {
		mb.names[base] = 1
		return base
	}
	for {
		candidate := fmt.Sprintf("%s_%d", base, n)
		n++
		if _, clash := mb.names[candidate]; !clash {
			mb.names[base] = n
			mb.names[candidate] = 1
			return candidate
		}
	}
}

// Input declares an input port.
func (mb *ModuleBuilder) Input(name string, t ir.Type) *Signal {
	info := callerInfo()
	name = mb.unique(name)
	mb.mod.Ports = append(mb.mod.Ports, ir.Port{Name: name, Dir: ir.Input, Tpe: t, Info: info})
	return &Signal{mb: mb, expr: ir.Ref{Name: name}, tpe: t, readOnly: true}
}

// Output declares an output port.
func (mb *ModuleBuilder) Output(name string, t ir.Type) *Signal {
	info := callerInfo()
	name = mb.unique(name)
	mb.mod.Ports = append(mb.mod.Ports, ir.Port{Name: name, Dir: ir.Output, Tpe: t, Info: info})
	return &Signal{mb: mb, expr: ir.Ref{Name: name}, tpe: t}
}

// Wire declares a named wire. Wires have software-like sequential
// assignment semantics: a read observes the most recent (possibly
// conditional) assignment, which the SSA pass resolves exactly as the
// paper's Listing 1 → Listing 2 transformation.
func (mb *ModuleBuilder) Wire(name string, t ir.Type) *Signal {
	info := callerInfo()
	name = mb.unique(name)
	mb.emit(&ir.DefWire{Name: name, Tpe: t, Info: info})
	return &Signal{mb: mb, expr: ir.Ref{Name: name}, tpe: t}
}

// Reg declares a clocked register without a reset value.
func (mb *ModuleBuilder) Reg(name string, t ir.Type) *Signal {
	info := callerInfo()
	name = mb.unique(name)
	mb.emit(&ir.DefReg{Name: name, Tpe: t, Info: info})
	return &Signal{mb: mb, expr: ir.Ref{Name: name}, tpe: t, isReg: true}
}

// RegInit declares a register reset synchronously to init.
func (mb *ModuleBuilder) RegInit(name string, t ir.Type, init *Signal) *Signal {
	info := callerInfo()
	name = mb.unique(name)
	mb.emit(&ir.DefReg{Name: name, Tpe: t, Init: init.expr, Info: info})
	return &Signal{mb: mb, expr: ir.Ref{Name: name}, tpe: t, isReg: true}
}

// Node binds a name to an expression value, producing a named
// intermediate that appears in debugger frames.
func (mb *ModuleBuilder) Node(name string, value *Signal) *Signal {
	info := callerInfo()
	name = mb.unique(name)
	mb.emit(&ir.DefNode{Name: name, Value: value.expr, Info: info})
	return &Signal{mb: mb, expr: ir.Ref{Name: name}, tpe: value.tpe, readOnly: true}
}

// Lit returns an unsigned literal signal.
func (mb *ModuleBuilder) Lit(v uint64, width int) *Signal {
	return &Signal{mb: mb, expr: ir.ConstUInt(v, width), tpe: ir.UIntType(width), readOnly: true}
}

// LitS returns a signed literal signal. v is the raw two's-complement
// bit pattern truncated to width.
func (mb *ModuleBuilder) LitS(v int64, width int) *Signal {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	return &Signal{
		mb:       mb,
		expr:     ir.Const{Value: uint64(v) & mask, Width: width, Signed: true},
		tpe:      ir.SIntType(width),
		readOnly: true,
	}
}

// Bool returns a 1-bit literal.
func (mb *ModuleBuilder) Bool(v bool) *Signal {
	return &Signal{mb: mb, expr: ir.ConstBool(v), tpe: ir.UIntType(1), readOnly: true}
}

// When opens a conditional scope; body runs immediately to record the
// statements it generates. The returned context chains ElseWhen and
// Otherwise.
func (mb *ModuleBuilder) When(cond *Signal, body func()) *WhenCtx {
	info := callerInfoSkip(0)
	w := &ir.When{Cond: cond.expr, Info: info}
	mb.emit(w)
	mb.pushScope(&w.Then, cond.expr)
	body()
	mb.popScope()
	return &WhenCtx{mb: mb, when: w}
}

func (mb *ModuleBuilder) pushScope(target *[]ir.Stmt, cond ir.Expr) {
	mb.scopes = append(mb.scopes, target)
	mb.conds = append(mb.conds, cond)
}

func (mb *ModuleBuilder) popScope() {
	mb.scopes = mb.scopes[:len(mb.scopes)-1]
	mb.conds = mb.conds[:len(mb.conds)-1]
}

// WhenCtx allows chaining Otherwise / ElseWhen onto a When.
type WhenCtx struct {
	mb   *ModuleBuilder
	when *ir.When
}

// Otherwise attaches the else branch.
func (w *WhenCtx) Otherwise(body func()) {
	w.mb.pushScope(&w.when.Else, ir.NewPrim(ir.OpNot, w.when.Cond))
	body()
	w.mb.popScope()
}

// ElseWhen attaches a nested conditional in the else branch and returns
// its context for further chaining.
func (w *WhenCtx) ElseWhen(cond *Signal, body func()) *WhenCtx {
	info := callerInfoSkip(0)
	nested := &ir.When{Cond: cond.expr, Info: info}
	w.when.Else = append(w.when.Else, nested)
	w.mb.pushScope(&nested.Then, cond.expr)
	body()
	w.mb.popScope()
	return &WhenCtx{mb: w.mb, when: nested}
}

// Instance instantiates a previously defined module and returns a handle
// for connecting its ports.
func (mb *ModuleBuilder) Instance(name string, child *ModuleBuilder) *Instance {
	info := callerInfo()
	name = mb.unique(name)
	mb.emit(&ir.DefInstance{Name: name, Module: child.mod.Name, Info: info})
	inst := &Instance{mb: mb, name: name, child: child.mod}
	// Implicit clock/reset hookup, as Chisel does.
	mb.emit(&ir.Connect{
		Loc:   ir.SubField{E: ir.Ref{Name: name}, Name: "clock"},
		Value: ir.Ref{Name: "clock"},
		Info:  info,
	})
	mb.emit(&ir.Connect{
		Loc:   ir.SubField{E: ir.Ref{Name: name}, Name: "reset"},
		Value: ir.Ref{Name: "reset"},
		Info:  info,
	})
	return inst
}

// Mem declares a memory with combinational read and synchronous write.
func (mb *ModuleBuilder) Mem(name string, elem ir.Ground, depth int) *Mem {
	info := callerInfo()
	name = mb.unique(name)
	mb.emit(&ir.DefMem{Name: name, Tpe: elem, Depth: depth, Info: info})
	return &Mem{mb: mb, name: name, elem: elem, depth: depth}
}

// Instance is a handle to an instantiated child module.
type Instance struct {
	mb    *ModuleBuilder
	name  string
	child *ir.Module
}

// Name returns the instance name in the parent module.
func (i *Instance) Name() string { return i.name }

// IO returns the signal for a child port. Input ports of the child are
// assignable from the parent; output ports are read-only.
func (i *Instance) IO(port string) *Signal {
	p, ok := i.child.PortByName(port)
	if !ok {
		panic(fmt.Sprintf("generator: module %s has no port %q", i.child.Name, port))
	}
	return &Signal{
		mb:       i.mb,
		expr:     ir.SubField{E: ir.Ref{Name: i.name}, Name: port},
		tpe:      p.Tpe,
		readOnly: p.Dir == ir.Output,
	}
}

// Ports returns the child's port names in declaration order, excluding
// the implicit clock/reset; useful for reflective wiring in tests.
func (i *Instance) Ports() []string {
	var out []string
	for _, p := range i.child.Ports {
		if p.Name == "clock" || p.Name == "reset" {
			continue
		}
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

// Mem is a handle to a declared memory.
type Mem struct {
	mb    *ModuleBuilder
	name  string
	elem  ir.Ground
	depth int
}

// Name returns the memory's declared name.
func (m *Mem) Name() string { return m.name }

// Read returns the combinational read of the memory at addr.
func (m *Mem) Read(addr *Signal) *Signal {
	return &Signal{
		mb:       m.mb,
		expr:     ir.MemRead{Mem: m.name, Addr: addr.expr},
		tpe:      m.elem,
		readOnly: true,
	}
}

// Write performs a synchronous write of data at addr when en is high.
// The write enable is additionally qualified by the enclosing When
// conditions, so writes inside When blocks behave as expected.
func (m *Mem) Write(addr, data, en *Signal) {
	info := callerInfo()
	cond := en.expr
	for _, c := range m.mb.conds {
		cond = ir.NewPrim(ir.OpAnd, c, cond)
	}
	m.mb.emit(&ir.MemWrite{Mem: m.name, Addr: addr.expr, Data: data.expr, En: cond, Info: info})
}
