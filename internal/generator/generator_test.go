package generator

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestCounterModule(t *testing.T) {
	c := NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)

	circ, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mod := circ.MainModule()
	if mod == nil {
		t.Fatal("no main module")
	}
	// Implicit clock/reset + declared ports.
	if len(mod.Ports) != 4 {
		t.Fatalf("ports = %d, want 4", len(mod.Ports))
	}
	s := ir.CircuitString(circ)
	for _, want := range []string{"reg count", "when en :", "out <= count"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestSourceLocatorsPointAtUserCode(t *testing.T) {
	c := NewCircuit("Loc")
	m := c.NewModule("Loc")
	a := m.Input("a", ir.UIntType(4))
	o := m.Output("o", ir.UIntType(4))
	o.Set(a) // the locator must point at THIS line, in THIS file
	circ := c.MustBuild()
	var conn *ir.Connect
	ir.WalkStmts(circ.MainModule().Body, func(s ir.Stmt) {
		if cn, ok := s.(*ir.Connect); ok {
			conn = cn
		}
	})
	if conn == nil {
		t.Fatal("no connect recorded")
	}
	if conn.Info.File != "generator_test.go" {
		t.Fatalf("locator file = %q, want generator_test.go", conn.Info.File)
	}
	if conn.Info.Line == 0 {
		t.Fatal("locator line not captured")
	}
}

func TestWhenLocator(t *testing.T) {
	c := NewCircuit("W")
	m := c.NewModule("W")
	a := m.Input("a", ir.UIntType(1))
	w := m.Wire("w", ir.UIntType(1))
	w.Set(m.Lit(0, 1))
	m.When(a, func() {
		w.Set(m.Lit(1, 1))
	})
	circ := c.MustBuild()
	var when *ir.When
	ir.WalkStmts(circ.MainModule().Body, func(s ir.Stmt) {
		if ws, ok := s.(*ir.When); ok {
			when = ws
		}
	})
	if when == nil {
		t.Fatal("no when recorded")
	}
	if when.Info.File != "generator_test.go" {
		t.Fatalf("when locator = %v", when.Info)
	}
	if len(when.Then) != 1 {
		t.Fatalf("then body = %d stmts", len(when.Then))
	}
}

// The paper's Listing 1: a for loop accumulating into sum under a
// condition. Go host-language loops unroll at generation time, so the
// IR carries two conditional connects to `sum` at the same source line.
func TestListing1Accumulator(t *testing.T) {
	c := NewCircuit("Acc")
	m := c.NewModule("Acc")
	data := []*Signal{m.Input("data_0", ir.UIntType(8)), m.Input("data_1", ir.UIntType(8))}
	out := m.Output("out", ir.UIntType(8))
	sum := m.Wire("sum", ir.UIntType(8))
	sum.Set(m.Lit(0, 8))
	for i := 0; i < 2; i++ {
		odd := data[i].Bit(0)
		m.When(odd, func() {
			sum.Set(sum.AddMod(data[i])) // one source line, two unrolled connects
		})
	}
	out.Set(sum)
	circ := c.MustBuild()

	var connectsToSum []*ir.Connect
	ir.WalkStmts(circ.MainModule().Body, func(s ir.Stmt) {
		if cn, ok := s.(*ir.Connect); ok {
			if ref, isRef := cn.Loc.(ir.Ref); isRef && ref.Name == "sum" {
				connectsToSum = append(connectsToSum, cn)
			}
		}
	})
	if len(connectsToSum) != 3 { // initial + 2 unrolled
		t.Fatalf("connects to sum = %d, want 3", len(connectsToSum))
	}
	// The two unrolled connects share a source line (the paper's
	// multiple line-mapping situation).
	if connectsToSum[1].Info.Line != connectsToSum[2].Info.Line {
		t.Fatalf("unrolled connects on different lines: %v vs %v",
			connectsToSum[1].Info, connectsToSum[2].Info)
	}
}

func TestUniqueNames(t *testing.T) {
	c := NewCircuit("U")
	m := c.NewModule("U")
	w1 := m.Wire("w", ir.UIntType(1))
	w2 := m.Wire("w", ir.UIntType(1))
	n1 := w1.Expr().(ir.Ref).Name
	n2 := w2.Expr().(ir.Ref).Name
	if n1 == n2 {
		t.Fatalf("duplicate wire names: %s", n1)
	}
	if m.unique("clock") == "clock" {
		t.Fatal("implicit port name not reserved")
	}
}

func TestInstanceWiring(t *testing.T) {
	c := NewCircuit("Top")
	child := c.NewModule("Child")
	ci := child.Input("in", ir.UIntType(8))
	co := child.Output("out", ir.UIntType(8))
	co.Set(ci.AddMod(child.Lit(1, 8)))

	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	u := top.Instance("u0", child)
	u.IO("in").Set(x)
	y.Set(u.IO("out"))

	circ, err := c.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := ir.CircuitString(circ)
	for _, want := range []string{"inst u0 of Child", "u0.clock <= clock", "u0.in <= x", "y <= u0.out"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	// Child outputs are read-only from the parent.
	defer func() {
		if recover() == nil {
			t.Fatal("assignment to child output did not panic")
		}
	}()
	u.IO("out").Set(x)
}

func TestBundleFlipDirections(t *testing.T) {
	c := NewCircuit("B")
	m := c.NewModule("B")
	bundleT := ir.Bundle{Fields: []ir.Field{
		{Name: "bits", Type: ir.UIntType(8)},
		{Name: "valid", Type: ir.UIntType(1)},
		{Name: "ready", Flip: true, Type: ir.UIntType(1)},
	}}
	out := m.Output("io", bundleT)
	out.Field("bits").Set(m.Lit(5, 8))
	out.Field("valid").Set(m.Lit(1, 1))
	// ready is flipped: read-only from inside, so Set must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("assignment to flipped field did not panic")
		}
	}()
	out.Field("ready").Set(m.Lit(1, 1))
}

func TestMemReadWrite(t *testing.T) {
	c := NewCircuit("M")
	m := c.NewModule("M")
	addr := m.Input("addr", ir.UIntType(5))
	wdata := m.Input("wdata", ir.UIntType(32))
	wen := m.Input("wen", ir.UIntType(1))
	rdata := m.Output("rdata", ir.UIntType(32))
	mem := m.Mem("regs", ir.UIntType(32), 32)
	rdata.Set(mem.Read(addr))
	m.When(wen, func() {
		mem.Write(addr, wdata, m.Bool(true))
	})
	circ := c.MustBuild()
	var mw *ir.MemWrite
	ir.WalkStmts(circ.MainModule().Body, func(s ir.Stmt) {
		if w, ok := s.(*ir.MemWrite); ok {
			mw = w
		}
	})
	if mw == nil {
		t.Fatal("no memwrite recorded")
	}
	// Enable must be qualified by the surrounding when condition.
	if !strings.Contains(mw.En.String(), "wen") {
		t.Fatalf("write enable %s not qualified by when cond", mw.En)
	}
}

func TestSignalOps(t *testing.T) {
	c := NewCircuit("Ops")
	m := c.NewModule("Ops")
	a := m.Input("a", ir.UIntType(8))
	b := m.Input("b", ir.UIntType(8))
	checks := []struct {
		sig   *Signal
		width int
	}{
		{a.Add(b), 9},
		{a.AddMod(b), 8},
		{a.Sub(b), 9},
		{a.SubMod(b), 8},
		{a.Mul(b), 16},
		{a.Div(b), 8},
		{a.Rem(b), 8},
		{a.Eq(b), 1},
		{a.Lt(b), 1},
		{a.And(b), 8},
		{a.Not(), 8},
		{a.Shl(4), 12},
		{a.Shr(4), 4},
		{a.Cat(b), 16},
		{a.Bits(3, 0), 4},
		{a.Bit(7), 1},
		{a.OrR(), 1},
		{a.Pad(16), 16},
		{a.AsSInt(), 8},
		{a.SignExtend(16), 16},
		{a.Mux(a.Bit(0), b), 8},
		{MuxOf(a.Bit(0), a, b), 8},
		{a.Dshl(b.Bits(2, 0)), 15},
		{a.Dshr(b), 8},
		{a.Neg(), 9},
		{a.XorR(), 1},
		{a.AndR(), 1},
		{a.Xor(b), 8},
		{a.Or(b), 8},
		{a.Leq(b), 1},
		{a.Geq(b), 1},
		{a.Gt(b), 1},
		{a.Neq(b), 1},
	}
	for i, chk := range checks {
		if chk.sig.Width() != chk.width {
			t.Errorf("check %d (%s): width %d, want %d", i, chk.sig.Expr(), chk.sig.Width(), chk.width)
		}
	}
	// Derived values are read-only.
	defer func() {
		if recover() == nil {
			t.Fatal("assignment to derived value did not panic")
		}
	}()
	a.Add(b).Set(a)
}

func TestElseWhenChain(t *testing.T) {
	c := NewCircuit("EW")
	m := c.NewModule("EW")
	sel := m.Input("sel", ir.UIntType(2))
	out := m.Output("out", ir.UIntType(4))
	out.Set(m.Lit(0, 4))
	m.When(sel.Eq(m.Lit(0, 2)), func() {
		out.Set(m.Lit(1, 4))
	}).ElseWhen(sel.Eq(m.Lit(1, 2)), func() {
		out.Set(m.Lit(2, 4))
	}).Otherwise(func() {
		out.Set(m.Lit(3, 4))
	})
	circ := c.MustBuild()
	s := ir.CircuitString(circ)
	if strings.Count(s, "when ") != 2 {
		t.Fatalf("expected 2 when statements:\n%s", s)
	}
	if !strings.Contains(s, "else :") {
		t.Fatalf("missing else branch:\n%s", s)
	}
}

func TestLitS(t *testing.T) {
	c := NewCircuit("L")
	m := c.NewModule("L")
	neg := m.LitS(-1, 8)
	cst := neg.Expr().(ir.Const)
	if cst.Value != 0xFF || !cst.Signed {
		t.Fatalf("LitS(-1, 8) = %+v", cst)
	}
	if m.LitS(5, 8).Expr().(ir.Const).Value != 5 {
		t.Fatal("LitS(5) wrong")
	}
}

func TestUnclosedWhenDetected(t *testing.T) {
	c := NewCircuit("Bad")
	m := c.NewModule("Bad")
	// Simulate a corrupted scope stack.
	m.scopes = append(m.scopes, &[]ir.Stmt{})
	if _, err := c.Build(); err == nil {
		t.Fatal("unclosed when not detected")
	}
}

func TestInstancePortsList(t *testing.T) {
	c := NewCircuit("T")
	child := c.NewModule("C")
	child.Input("a", ir.UIntType(1))
	child.Output("z", ir.UIntType(1))
	top := c.NewModule("T")
	u := top.Instance("u", child)
	ports := u.Ports()
	if len(ports) != 2 || ports[0] != "a" || ports[1] != "z" {
		t.Fatalf("ports = %v", ports)
	}
	if u.Name() != "u" {
		t.Fatalf("instance name = %s", u.Name())
	}
}
