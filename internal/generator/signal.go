package generator

import (
	"fmt"

	"repro/internal/ir"
)

// Signal is a handle to an IR expression plus its type; the value type
// of the eDSL. Operator methods build expression trees; Set records a
// connection carrying the caller's source locator.
type Signal struct {
	mb       *ModuleBuilder
	expr     ir.Expr
	tpe      ir.Type
	readOnly bool
	isReg    bool
}

// Expr exposes the underlying IR expression (used by tests and passes).
func (s *Signal) Expr() ir.Expr { return s.expr }

// Type returns the signal's IR type.
func (s *Signal) Type() ir.Type { return s.tpe }

// Width returns the bit width of a ground-typed signal.
func (s *Signal) Width() int { return s.tpe.BitWidth() }

func (s *Signal) ground() ir.Ground {
	g, ok := s.tpe.(ir.Ground)
	if !ok {
		panic(fmt.Sprintf("generator: %s is aggregate-typed (%s); select a field first", s.expr, s.tpe))
	}
	return g
}

func (s *Signal) derive(e ir.Expr, t ir.Type) *Signal {
	return &Signal{mb: s.mb, expr: e, tpe: t, readOnly: true}
}

// Set connects value to this signal, recording the generator source line
// (the statement hgdb will map a breakpoint onto).
func (s *Signal) Set(value *Signal) {
	if s.readOnly {
		panic(fmt.Sprintf("generator: cannot assign to read-only signal %s", s.expr))
	}
	info := callerInfo()
	s.mb.emit(&ir.Connect{Loc: s.expr, Value: value.expr, Info: info})
}

// Field selects a bundle field.
func (s *Signal) Field(name string) *Signal {
	b, ok := s.tpe.(ir.Bundle)
	if !ok {
		panic(fmt.Sprintf("generator: .%s on non-bundle %s", name, s.tpe))
	}
	f, ok := b.FieldByName(name)
	if !ok {
		panic(fmt.Sprintf("generator: bundle %s has no field %q", s.tpe, name))
	}
	out := &Signal{mb: s.mb, expr: ir.SubField{E: s.expr, Name: name}, tpe: f.Type}
	// A flipped field reverses assignability relative to its parent.
	if f.Flip {
		out.readOnly = !s.readOnly
	} else {
		out.readOnly = s.readOnly
	}
	return out
}

// Idx selects a statically indexed vector element.
func (s *Signal) Idx(i int) *Signal {
	v, ok := s.tpe.(ir.Vec)
	if !ok {
		panic(fmt.Sprintf("generator: [%d] on non-vec %s", i, s.tpe))
	}
	if i < 0 || i >= v.Len {
		panic(fmt.Sprintf("generator: index %d out of range for %s", i, v))
	}
	return &Signal{mb: s.mb, expr: ir.SubIndex{E: s.expr, Index: i}, tpe: v.Elem, readOnly: s.readOnly}
}

// IdxDyn selects a dynamically indexed vector element.
func (s *Signal) IdxDyn(idx *Signal) *Signal {
	v, ok := s.tpe.(ir.Vec)
	if !ok {
		panic(fmt.Sprintf("generator: dynamic index on non-vec %s", s.tpe))
	}
	return &Signal{mb: s.mb, expr: ir.SubAccess{E: s.expr, Index: idx.expr}, tpe: v.Elem, readOnly: s.readOnly}
}

func (s *Signal) binop(op ir.PrimOp, o *Signal, t ir.Type) *Signal {
	return s.derive(ir.NewPrim(op, s.expr, o.expr), t)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Add returns s + o with full carry width.
func (s *Signal) Add(o *Signal) *Signal {
	g := s.ground()
	return s.binop(ir.OpAdd, o, ir.Ground{Kind: g.Kind, Width: maxInt(g.Width, o.ground().Width) + 1})
}

// AddMod returns (s + o) truncated to s's width (modular arithmetic, the
// common case for datapaths).
func (s *Signal) AddMod(o *Signal) *Signal {
	return s.Add(o).Bits(s.ground().Width-1, 0)
}

// Sub returns s - o with full borrow width.
func (s *Signal) Sub(o *Signal) *Signal {
	g := s.ground()
	return s.binop(ir.OpSub, o, ir.Ground{Kind: g.Kind, Width: maxInt(g.Width, o.ground().Width) + 1})
}

// SubMod returns (s - o) truncated to s's width.
func (s *Signal) SubMod(o *Signal) *Signal {
	return s.Sub(o).Bits(s.ground().Width-1, 0)
}

// Mul returns the full-width product.
func (s *Signal) Mul(o *Signal) *Signal {
	g := s.ground()
	return s.binop(ir.OpMul, o, ir.Ground{Kind: g.Kind, Width: g.Width + o.ground().Width})
}

// Div returns the quotient.
func (s *Signal) Div(o *Signal) *Signal {
	g := s.ground()
	w := g.Width
	if g.Kind == ir.SInt {
		w++
	}
	return s.binop(ir.OpDiv, o, ir.Ground{Kind: g.Kind, Width: w})
}

// Rem returns the remainder.
func (s *Signal) Rem(o *Signal) *Signal {
	g, og := s.ground(), o.ground()
	w := g.Width
	if og.Width < w {
		w = og.Width
	}
	return s.binop(ir.OpRem, o, ir.Ground{Kind: g.Kind, Width: w})
}

// Comparison operators; all return UInt<1>.

func (s *Signal) Eq(o *Signal) *Signal  { return s.binop(ir.OpEq, o, ir.UIntType(1)) }
func (s *Signal) Neq(o *Signal) *Signal { return s.binop(ir.OpNeq, o, ir.UIntType(1)) }
func (s *Signal) Lt(o *Signal) *Signal  { return s.binop(ir.OpLt, o, ir.UIntType(1)) }
func (s *Signal) Leq(o *Signal) *Signal { return s.binop(ir.OpLeq, o, ir.UIntType(1)) }
func (s *Signal) Gt(o *Signal) *Signal  { return s.binop(ir.OpGt, o, ir.UIntType(1)) }
func (s *Signal) Geq(o *Signal) *Signal { return s.binop(ir.OpGeq, o, ir.UIntType(1)) }

// Bitwise operators.

func (s *Signal) And(o *Signal) *Signal {
	return s.binop(ir.OpAnd, o, ir.UIntType(maxInt(s.ground().Width, o.ground().Width)))
}

func (s *Signal) Or(o *Signal) *Signal {
	return s.binop(ir.OpOr, o, ir.UIntType(maxInt(s.ground().Width, o.ground().Width)))
}

func (s *Signal) Xor(o *Signal) *Signal {
	return s.binop(ir.OpXor, o, ir.UIntType(maxInt(s.ground().Width, o.ground().Width)))
}

// Not returns the bitwise complement.
func (s *Signal) Not() *Signal {
	return s.derive(ir.NewPrim(ir.OpNot, s.expr), ir.UIntType(s.ground().Width))
}

// Neg returns the arithmetic negation as a signed value.
func (s *Signal) Neg() *Signal {
	return s.derive(ir.NewPrim(ir.OpNeg, s.expr), ir.SIntType(s.ground().Width+1))
}

// Shl shifts left by a static amount, widening.
func (s *Signal) Shl(n int) *Signal {
	g := s.ground()
	return s.derive(ir.NewPrimP(ir.OpShl, []int{n}, s.expr), ir.Ground{Kind: g.Kind, Width: g.Width + n})
}

// Shr shifts right by a static amount, narrowing (min width 1).
func (s *Signal) Shr(n int) *Signal {
	g := s.ground()
	w := g.Width - n
	if w < 1 {
		w = 1
	}
	return s.derive(ir.NewPrimP(ir.OpShr, []int{n}, s.expr), ir.Ground{Kind: g.Kind, Width: w})
}

// Dshl shifts left by a dynamic amount, clamped to 64 result bits.
func (s *Signal) Dshl(o *Signal) *Signal {
	g := s.ground()
	w := g.Width + (1 << uint(o.ground().Width)) - 1
	if w > 64 {
		w = 64
	}
	return s.binop(ir.OpDshl, o, ir.Ground{Kind: g.Kind, Width: w})
}

// Dshr shifts right by a dynamic amount. For SInt the shift is
// arithmetic.
func (s *Signal) Dshr(o *Signal) *Signal {
	return s.binop(ir.OpDshr, o, s.ground())
}

// Cat concatenates s (high bits) with o (low bits).
func (s *Signal) Cat(o *Signal) *Signal {
	return s.binop(ir.OpCat, o, ir.UIntType(s.ground().Width+o.ground().Width))
}

// Bits extracts the inclusive bit range [hi:lo].
func (s *Signal) Bits(hi, lo int) *Signal {
	if lo < 0 || hi < lo || hi >= s.ground().Width {
		panic(fmt.Sprintf("generator: bits(%d, %d) out of range for width %d", hi, lo, s.ground().Width))
	}
	return s.derive(ir.NewPrimP(ir.OpBits, []int{hi, lo}, s.expr), ir.UIntType(hi-lo+1))
}

// Bit extracts a single bit.
func (s *Signal) Bit(i int) *Signal { return s.Bits(i, i) }

// Reduction operators; all return UInt<1>.

func (s *Signal) AndR() *Signal { return s.derive(ir.NewPrim(ir.OpAndR, s.expr), ir.UIntType(1)) }
func (s *Signal) OrR() *Signal  { return s.derive(ir.NewPrim(ir.OpOrR, s.expr), ir.UIntType(1)) }
func (s *Signal) XorR() *Signal { return s.derive(ir.NewPrim(ir.OpXorR, s.expr), ir.UIntType(1)) }

// Pad zero-extends (or sign-extends, for SInt) to at least width n.
func (s *Signal) Pad(n int) *Signal {
	g := s.ground()
	w := g.Width
	if n > w {
		w = n
	}
	return s.derive(ir.NewPrimP(ir.OpPad, []int{n}, s.expr), ir.Ground{Kind: g.Kind, Width: w})
}

// AsSInt reinterprets the bits as signed.
func (s *Signal) AsSInt() *Signal {
	return s.derive(ir.NewPrim(ir.OpAsSInt, s.expr), ir.SIntType(s.ground().Width))
}

// AsUInt reinterprets the bits as unsigned.
func (s *Signal) AsUInt() *Signal {
	return s.derive(ir.NewPrim(ir.OpAsUInt, s.expr), ir.UIntType(s.ground().Width))
}

// SignExtend sign-extends a UInt as if it were signed, returning a UInt
// of width n.
func (s *Signal) SignExtend(n int) *Signal {
	return s.AsSInt().Pad(n).AsUInt()
}

// Mux returns sel ? s : o.
func (s *Signal) Mux(sel, o *Signal) *Signal {
	g := s.ground()
	w := maxInt(g.Width, o.ground().Width)
	return s.derive(ir.Mux{Cond: sel.expr, T: s.expr, F: o.expr}, ir.Ground{Kind: g.Kind, Width: w})
}

// MuxOf is the free-function form: MuxOf(sel, t, f).
func MuxOf(sel, t, f *Signal) *Signal { return t.Mux(sel, f) }
