package generator

import (
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/ir"
)

// callerInfo returns the source locator of the first stack frame outside
// this package, i.e. the line of *generator user code* that invoked the
// eDSL. This is the Go analog of Chisel capturing Scala source locators
// for FIRRTL nodes.
func callerInfo() ir.Info { return callerInfoSkip(1) }

// callerInfoSkip behaves like callerInfo but ignores `extra` additional
// in-package frames (used by When, whose closure adds a frame).
func callerInfoSkip(extra int) ir.Info {
	var pcs [16]uintptr
	n := runtime.Callers(2+extra, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		frame, more := frames.Next()
		if frame.File == "" {
			break
		}
		slash := filepath.ToSlash(frame.File)
		if !strings.Contains(slash, "internal/generator/") || strings.HasSuffix(slash, "_test.go") {
			return ir.Info{File: filepath.Base(frame.File), Line: frame.Line}
		}
		if !more {
			break
		}
	}
	return ir.NoInfo
}
