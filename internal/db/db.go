// Package db is a small embedded relational store standing in for the
// SQLite database the paper uses for its native symbol table backend
// (§3.1, Figure 3). It supports typed schemas, primary keys, secondary
// indexes, foreign key integrity, predicate and indexed selects, and
// JSON persistence — the subset of SQL the Figure 3 breakpoint/variable
// schema and the debugger's lookup queries require.
package db

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ColumnType enumerates supported column types.
type ColumnType int

const (
	// Integer columns hold int64 values.
	Integer ColumnType = iota
	// Text columns hold string values.
	Text
)

func (t ColumnType) String() string {
	if t == Integer {
		return "INTEGER"
	}
	return "TEXT"
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColumnType
	// PrimaryKey marks the (single) integer primary key column.
	PrimaryKey bool
	// References names a table whose primary key this column must
	// match (foreign key). Empty means no constraint.
	References string
}

// Schema describes a table.
type Schema struct {
	Name    string
	Columns []Column
}

// Row is one record, keyed by column name. Integer columns hold int64,
// text columns hold string.
type Row map[string]any

// Table is one relation with its indexes.
type Table struct {
	schema  Schema
	rows    []Row
	pkCol   string
	pkIdx   map[int64]int        // pk value -> row position
	indexes map[string]indexData // column -> value -> row positions
	nextID  int64
}

type indexData map[any][]int

// DB is a set of tables.
type DB struct {
	tables map[string]*Table
	order  []string
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: map[string]*Table{}}
}

// CreateTable registers a table. At most one column may be the primary
// key, and it must be an Integer.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	if _, exists := db.tables[schema.Name]; exists {
		return nil, fmt.Errorf("db: table %q already exists", schema.Name)
	}
	t := &Table{
		schema:  schema,
		pkIdx:   map[int64]int{},
		indexes: map[string]indexData{},
		nextID:  1,
	}
	for _, c := range schema.Columns {
		if c.PrimaryKey {
			if t.pkCol != "" {
				return nil, fmt.Errorf("db: table %q has multiple primary keys", schema.Name)
			}
			if c.Type != Integer {
				return nil, fmt.Errorf("db: primary key %q must be INTEGER", c.Name)
			}
			t.pkCol = c.Name
		}
		if c.References != "" {
			if _, ok := db.tables[c.References]; !ok {
				return nil, fmt.Errorf("db: table %q references unknown table %q", schema.Name, c.References)
			}
		}
	}
	db.tables[schema.Name] = t
	db.order = append(db.order, schema.Name)
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// TableNames lists tables in creation order.
func (db *DB) TableNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// column returns the column definition.
func (t *Table) column(name string) (Column, bool) {
	for _, c := range t.schema.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return Column{}, false
}

// normalize coerces Go integer kinds to int64 and validates types.
func normalize(c Column, v any) (any, error) {
	switch c.Type {
	case Integer:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case uint64:
			return int64(x), nil
		case float64: // JSON round-trip
			return int64(x), nil
		}
		return nil, fmt.Errorf("db: column %q expects INTEGER, got %T", c.Name, v)
	case Text:
		if s, ok := v.(string); ok {
			return s, nil
		}
		return nil, fmt.Errorf("db: column %q expects TEXT, got %T", c.Name, v)
	}
	return nil, fmt.Errorf("db: unknown column type")
}

// Insert adds a row, auto-assigning the primary key when absent.
// Foreign keys are checked against the referenced tables.
func (db *DB) Insert(table string, row Row) (int64, error) {
	t, ok := db.tables[table]
	if !ok {
		return 0, fmt.Errorf("db: unknown table %q", table)
	}
	clean := Row{}
	for _, c := range t.schema.Columns {
		v, present := row[c.Name]
		if !present {
			if c.PrimaryKey {
				v = t.nextID
			} else {
				return 0, fmt.Errorf("db: %s: missing column %q", table, c.Name)
			}
		}
		nv, err := normalize(c, v)
		if err != nil {
			return 0, fmt.Errorf("db: %s: %w", table, err)
		}
		if c.References != "" {
			ref := db.tables[c.References]
			if _, ok := ref.pkIdx[nv.(int64)]; !ok {
				return 0, fmt.Errorf("db: %s.%s: foreign key %d not found in %s", table, c.Name, nv, c.References)
			}
		}
		clean[c.Name] = nv
	}
	for name := range row {
		if _, ok := t.column(name); !ok {
			return 0, fmt.Errorf("db: %s: unknown column %q", table, name)
		}
	}
	var pk int64
	if t.pkCol != "" {
		pk = clean[t.pkCol].(int64)
		if _, dup := t.pkIdx[pk]; dup {
			return 0, fmt.Errorf("db: %s: duplicate primary key %d", table, pk)
		}
		if pk >= t.nextID {
			t.nextID = pk + 1
		}
		t.pkIdx[pk] = len(t.rows)
	}
	pos := len(t.rows)
	t.rows = append(t.rows, clean)
	for col, idx := range t.indexes {
		idx[clean[col]] = append(idx[clean[col]], pos)
	}
	return pk, nil
}

// CreateIndex builds a secondary index over a column.
func (t *Table) CreateIndex(col string) error {
	if _, ok := t.column(col); !ok {
		return fmt.Errorf("db: unknown column %q", col)
	}
	idx := indexData{}
	for pos, row := range t.rows {
		idx[row[col]] = append(idx[row[col]], pos)
	}
	t.indexes[col] = idx
	return nil
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk int64) (Row, bool) {
	pos, ok := t.pkIdx[pk]
	if !ok {
		return nil, false
	}
	return t.rows[pos], true
}

// SelectEq returns rows where col equals v, using an index when one
// exists. Integer arguments may be int, int64, or uint64.
func (t *Table) SelectEq(col string, v any) []Row {
	c, ok := t.column(col)
	if !ok {
		return nil
	}
	nv, err := normalize(c, v)
	if err != nil {
		return nil
	}
	if idx, ok := t.indexes[col]; ok {
		positions := idx[nv]
		out := make([]Row, 0, len(positions))
		for _, p := range positions {
			out = append(out, t.rows[p])
		}
		return out
	}
	var out []Row
	for _, row := range t.rows {
		if row[col] == nv {
			out = append(out, row)
		}
	}
	return out
}

// Select returns rows matching an arbitrary predicate.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	for _, row := range t.rows {
		if pred(row) {
			out = append(out, row)
		}
	}
	return out
}

// All returns every row in insertion order.
func (t *Table) All() []Row {
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	return out
}

// jsonDB is the persistence shape.
type jsonDB struct {
	Tables []jsonTable `json:"tables"`
}

type jsonTable struct {
	Schema Schema `json:"schema"`
	Rows   []Row  `json:"rows"`
}

// Save serializes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	var out jsonDB
	for _, name := range db.order {
		t := db.tables[name]
		out.Tables = append(out.Tables, jsonTable{Schema: t.schema, Rows: t.rows})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a database previously written by Save. Indexes must be
// re-created by the caller.
func Load(r io.Reader) (*DB, error) {
	var in jsonDB
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	db := New()
	for _, jt := range in.Tables {
		t, err := db.CreateTable(jt.Schema)
		if err != nil {
			return nil, err
		}
		for _, row := range jt.Rows {
			if _, err := db.Insert(jt.Schema.Name, row); err != nil {
				return nil, err
			}
		}
		_ = t
	}
	return db, nil
}

// Stats renders row counts per table (sorted by name) for diagnostics.
func (db *DB) Stats() string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%d ", n, db.tables[n].Len())
	}
	return s
}
