package db

import (
	"bytes"
	"testing"
	"testing/quick"
)

func personSchema() Schema {
	return Schema{Name: "person", Columns: []Column{
		{Name: "id", Type: Integer, PrimaryKey: true},
		{Name: "name", Type: Text},
		{Name: "age", Type: Integer},
	}}
}

func TestInsertAndGet(t *testing.T) {
	d := New()
	if _, err := d.CreateTable(personSchema()); err != nil {
		t.Fatal(err)
	}
	id, err := d.Insert("person", Row{"name": "ada", "age": 36})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("auto pk = %d", id)
	}
	tbl, _ := d.Table("person")
	row, ok := tbl.Get(id)
	if !ok || row["name"] != "ada" || row["age"] != int64(36) {
		t.Fatalf("row = %v", row)
	}
	// Explicit primary key.
	id2, err := d.Insert("person", Row{"id": 10, "name": "grace", "age": 47})
	if err != nil || id2 != 10 {
		t.Fatalf("explicit pk: %d, %v", id2, err)
	}
	// Next auto id skips past.
	id3, _ := d.Insert("person", Row{"name": "edsger", "age": 72})
	if id3 != 11 {
		t.Fatalf("auto pk after explicit = %d", id3)
	}
}

func TestConstraints(t *testing.T) {
	d := New()
	d.CreateTable(personSchema())
	if _, err := d.Insert("person", Row{"name": "x"}); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := d.Insert("person", Row{"name": 5, "age": 1}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := d.Insert("person", Row{"name": "x", "age": 1, "ghost": 2}); err == nil {
		t.Fatal("unknown column accepted")
	}
	d.Insert("person", Row{"id": 1, "name": "a", "age": 1})
	if _, err := d.Insert("person", Row{"id": 1, "name": "b", "age": 2}); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	if _, err := d.Insert("ghost", Row{}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestForeignKeys(t *testing.T) {
	d := New()
	d.CreateTable(personSchema())
	_, err := d.CreateTable(Schema{Name: "pet", Columns: []Column{
		{Name: "id", Type: Integer, PrimaryKey: true},
		{Name: "owner", Type: Integer, References: "person"},
		{Name: "name", Type: Text},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("pet", Row{"owner": 1, "name": "rex"}); err == nil {
		t.Fatal("dangling foreign key accepted")
	}
	ownerID, _ := d.Insert("person", Row{"name": "ada", "age": 36})
	if _, err := d.Insert("pet", Row{"owner": ownerID, "name": "rex"}); err != nil {
		t.Fatalf("valid fk rejected: %v", err)
	}
	// FK to unknown table rejected at create time.
	if _, err := d.CreateTable(Schema{Name: "bad", Columns: []Column{
		{Name: "x", Type: Integer, References: "nope"},
	}}); err == nil {
		t.Fatal("reference to unknown table accepted")
	}
}

func TestSelects(t *testing.T) {
	d := New()
	d.CreateTable(personSchema())
	for i, name := range []string{"a", "b", "a", "c"} {
		d.Insert("person", Row{"name": name, "age": i * 10})
	}
	tbl, _ := d.Table("person")
	// Unindexed SelectEq.
	if got := tbl.SelectEq("name", "a"); len(got) != 2 {
		t.Fatalf("SelectEq(a) = %d rows", len(got))
	}
	// Indexed path produces the same result.
	tbl.CreateIndex("name")
	if got := tbl.SelectEq("name", "a"); len(got) != 2 {
		t.Fatalf("indexed SelectEq(a) = %d rows", len(got))
	}
	// Index stays consistent with later inserts.
	d.Insert("person", Row{"name": "a", "age": 99})
	if got := tbl.SelectEq("name", "a"); len(got) != 3 {
		t.Fatalf("post-insert indexed SelectEq = %d rows", len(got))
	}
	// Integer select with int argument.
	if got := tbl.SelectEq("age", 10); len(got) != 1 {
		t.Fatalf("SelectEq(age, 10) = %d rows", len(got))
	}
	// Predicate select.
	got := tbl.Select(func(r Row) bool { return r["age"].(int64) >= 20 })
	if len(got) != 3 {
		t.Fatalf("predicate select = %d rows", len(got))
	}
	if tbl.Len() != 5 || len(tbl.All()) != 5 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Bad index column.
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New()
	d.CreateTable(personSchema())
	d.CreateTable(Schema{Name: "pet", Columns: []Column{
		{Name: "id", Type: Integer, PrimaryKey: true},
		{Name: "owner", Type: Integer, References: "person"},
		{Name: "name", Type: Text},
	}})
	ada, _ := d.Insert("person", Row{"name": "ada", "age": 36})
	d.Insert("pet", Row{"owner": ada, "name": "rex"})

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := d2.Table("person")
	if !ok {
		t.Fatal("person table lost")
	}
	row, ok := tbl.Get(ada)
	if !ok || row["name"] != "ada" || row["age"] != int64(36) {
		t.Fatalf("row after round trip = %v", row)
	}
	pets, _ := d2.Table("pet")
	if pets.Len() != 1 {
		t.Fatalf("pets = %d", pets.Len())
	}
	if len(d2.TableNames()) != 2 {
		t.Fatalf("tables = %v", d2.TableNames())
	}
}

func TestMultiplePrimaryKeysRejected(t *testing.T) {
	d := New()
	_, err := d.CreateTable(Schema{Name: "bad", Columns: []Column{
		{Name: "a", Type: Integer, PrimaryKey: true},
		{Name: "b", Type: Integer, PrimaryKey: true},
	}})
	if err == nil {
		t.Fatal("two primary keys accepted")
	}
	_, err = d.CreateTable(Schema{Name: "bad2", Columns: []Column{
		{Name: "a", Type: Text, PrimaryKey: true},
	}})
	if err == nil {
		t.Fatal("text primary key accepted")
	}
	d.CreateTable(personSchema())
	if _, err := d.CreateTable(personSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

// Property: every inserted row is retrievable by its primary key and by
// an indexed equality select on its text column.
func TestInsertRetrieveProperty(t *testing.T) {
	d := New()
	d.CreateTable(personSchema())
	tbl, _ := d.Table("person")
	tbl.CreateIndex("name")
	f := func(name string, age uint16) bool {
		id, err := d.Insert("person", Row{"name": name, "age": int(age)})
		if err != nil {
			return false
		}
		row, ok := tbl.Get(id)
		if !ok || row["name"] != name || row["age"] != int64(age) {
			return false
		}
		for _, r := range tbl.SelectEq("name", name) {
			if r["name"] == name && r["id"] == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	d := New()
	d.CreateTable(personSchema())
	d.Insert("person", Row{"name": "a", "age": 1})
	if d.Stats() != "person=1 " {
		t.Fatalf("stats = %q", d.Stats())
	}
}
