package rtl

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ir"
)

// EmitVerilog renders a Low-form circuit as Verilog-2001-style text.
// It exists to demonstrate the paper's Listing 3/Listing 4 gap: the
// generated RTL (with its _T_n and _GEN_n temporaries) no longer
// conveys the generator source's intent, which is exactly why hgdb maps
// simulation state back to source-level variables instead of making
// users read this output.
func EmitVerilog(w io.Writer, c *ir.Circuit) error {
	for i, m := range c.Modules {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := emitModule(w, c, m); err != nil {
			return err
		}
	}
	return nil
}

// VerilogString renders the whole circuit to a string.
func VerilogString(c *ir.Circuit) (string, error) {
	var sb strings.Builder
	if err := EmitVerilog(&sb, c); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func vrange(width int) string {
	if width <= 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", width-1)
}

// sanitize makes a Low-form name a legal Verilog identifier (instance
// port nets use dots internally).
func sanitize(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}

func emitModule(w io.Writer, c *ir.Circuit, m *ir.Module) error {
	env := ir.NewTypeEnv(c, m)
	var portNames []string
	for _, p := range m.Ports {
		portNames = append(portNames, p.Name)
	}
	fmt.Fprintf(w, "module %s(\n", m.Name)
	for i, p := range m.Ports {
		comma := ","
		if i == len(m.Ports)-1 {
			comma = ""
		}
		g := ir.GroundOf(p.Tpe)
		fmt.Fprintf(w, "  %s %s%s%s\n", p.Dir, vrange(g.Width), p.Name, comma)
	}
	fmt.Fprintf(w, ");\n")

	regNames := map[string]bool{}
	var regNext []*ir.Connect
	for _, s := range m.Body {
		switch d := s.(type) {
		case *ir.DefReg:
			g := ir.GroundOf(d.Tpe)
			fmt.Fprintf(w, "  reg %s%s;\n", vrange(g.Width), d.Name)
			regNames[d.Name] = true
		case *ir.DefMem:
			fmt.Fprintf(w, "  reg %s%s [0:%d];\n", vrange(d.Tpe.Width), d.Name, d.Depth-1)
		}
	}
	for _, s := range m.Body {
		switch d := s.(type) {
		case *ir.DefNode:
			width, err := env.WidthOf(ir.Ref{Name: d.Name})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  wire %s%s = %s;\n", vrange(width), sanitize(d.Name), vexpr(d.Value))
		case *ir.DefInstance:
			child := c.Module(d.Module)
			fmt.Fprintf(w, "  %s %s(", d.Module, d.Name)
			var conns []string
			for _, p := range child.Ports {
				conns = append(conns, fmt.Sprintf(".%s(%s)", p.Name, sanitize(d.Name+"."+p.Name)))
			}
			fmt.Fprintf(w, "%s);\n", strings.Join(conns, ", "))
			// Declare the port nets.
			for _, p := range child.Ports {
				g := ir.GroundOf(p.Tpe)
				fmt.Fprintf(w, "  wire %s%s;\n", vrange(g.Width), sanitize(d.Name+"."+p.Name))
			}
		case *ir.Connect:
			switch loc := d.Loc.(type) {
			case ir.Ref:
				if regNames[loc.Name] {
					regNext = append(regNext, d)
					continue
				}
				fmt.Fprintf(w, "  assign %s = %s;\n", loc.Name, vexpr(d.Value))
			case ir.SubField:
				ref := loc.E.(ir.Ref)
				fmt.Fprintf(w, "  assign %s = %s;\n", sanitize(ref.Name+"."+loc.Name), vexpr(d.Value))
			}
		}
	}
	if len(regNext) > 0 || hasMemWrite(m) {
		fmt.Fprintf(w, "  always @(posedge clock) begin\n")
		for _, d := range regNext {
			fmt.Fprintf(w, "    %s <= %s;\n", d.Loc.(ir.Ref).Name, vexpr(d.Value))
		}
		for _, s := range m.Body {
			if mw, ok := s.(*ir.MemWrite); ok {
				fmt.Fprintf(w, "    if (%s) %s[%s] <= %s;\n", vexpr(mw.En), mw.Mem, vexpr(mw.Addr), vexpr(mw.Data))
			}
		}
		fmt.Fprintf(w, "  end\n")
	}
	fmt.Fprintf(w, "endmodule // %s\n", m.Name)
	_ = portNames
	return nil
}

func hasMemWrite(m *ir.Module) bool {
	for _, s := range m.Body {
		if _, ok := s.(*ir.MemWrite); ok {
			return true
		}
	}
	return false
}

// vexpr renders a Low-form expression as Verilog.
func vexpr(e ir.Expr) string {
	switch x := e.(type) {
	case ir.Ref:
		return sanitize(x.Name)
	case ir.Const:
		if x.Signed {
			return fmt.Sprintf("%d'sh%x", x.Width, x.Value)
		}
		return fmt.Sprintf("%d'h%x", x.Width, x.Value)
	case ir.SubField:
		if ref, ok := x.E.(ir.Ref); ok {
			return sanitize(ref.Name + "." + x.Name)
		}
		return sanitize(x.String())
	case ir.Mux:
		return fmt.Sprintf("(%s ? %s : %s)", vexpr(x.Cond), vexpr(x.T), vexpr(x.F))
	case ir.MemRead:
		return fmt.Sprintf("%s[%s]", x.Mem, vexpr(x.Addr))
	case ir.Prim:
		return vprim(x)
	}
	return e.String()
}

func vprim(p ir.Prim) string {
	if sym, ok := infixVerilog[p.Op]; ok && len(p.Args) == 2 {
		return fmt.Sprintf("(%s %s %s)", vexpr(p.Args[0]), sym, vexpr(p.Args[1]))
	}
	switch p.Op {
	case ir.OpNot:
		return "(~" + vexpr(p.Args[0]) + ")"
	case ir.OpNeg:
		return "(-" + vexpr(p.Args[0]) + ")"
	case ir.OpAndR:
		return "(&" + vexpr(p.Args[0]) + ")"
	case ir.OpOrR:
		return "(|" + vexpr(p.Args[0]) + ")"
	case ir.OpXorR:
		return "(^" + vexpr(p.Args[0]) + ")"
	case ir.OpShl:
		return fmt.Sprintf("(%s << %d)", vexpr(p.Args[0]), p.Params[0])
	case ir.OpShr:
		return fmt.Sprintf("(%s >> %d)", vexpr(p.Args[0]), p.Params[0])
	case ir.OpBits:
		if p.Params[0] == p.Params[1] {
			return fmt.Sprintf("%s[%d]", vexpr(p.Args[0]), p.Params[0])
		}
		return fmt.Sprintf("%s[%d:%d]", vexpr(p.Args[0]), p.Params[0], p.Params[1])
	case ir.OpCat:
		return fmt.Sprintf("{%s, %s}", vexpr(p.Args[0]), vexpr(p.Args[1]))
	case ir.OpPad:
		return vexpr(p.Args[0]) // widths are implicit in Verilog context
	case ir.OpAsUInt, ir.OpAsSInt:
		return fmt.Sprintf("$%s(%s)", map[ir.PrimOp]string{ir.OpAsUInt: "unsigned", ir.OpAsSInt: "signed"}[p.Op], vexpr(p.Args[0]))
	case ir.OpHead:
		return fmt.Sprintf("%s[+:%d]", vexpr(p.Args[0]), p.Params[0])
	case ir.OpTail:
		return fmt.Sprintf("%s[%d:0]", vexpr(p.Args[0]), p.Params[0])
	}
	return p.String()
}

var infixVerilog = map[ir.PrimOp]string{
	ir.OpAdd: "+", ir.OpSub: "-", ir.OpMul: "*", ir.OpDiv: "/", ir.OpRem: "%",
	ir.OpLt: "<", ir.OpLeq: "<=", ir.OpGt: ">", ir.OpGeq: ">=",
	ir.OpEq: "==", ir.OpNeq: "!=",
	ir.OpAnd: "&", ir.OpOr: "|", ir.OpXor: "^",
	ir.OpDshl: "<<", ir.OpDshr: ">>",
}
