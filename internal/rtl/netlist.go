// Package rtl turns Low-form IR into a flattened, simulatable netlist.
// The hierarchy is inlined (instance signals get dot-separated path
// prefixes, e.g. Top.cpu0.alu._T_3) while an instance tree is kept as
// metadata so the VPI-style interface can answer hierarchy queries —
// the paper's design point 3.4: flat simulation, hierarchical names.
package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// SignalKind classifies netlist signals.
type SignalKind int

const (
	// KindInput is a top-level input, settable by the testbench.
	KindInput SignalKind = iota
	// KindNode is a combinationally assigned signal.
	KindNode
	// KindReg is a clocked register.
	KindReg
)

func (k SignalKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindNode:
		return "node"
	case KindReg:
		return "reg"
	}
	return "?"
}

// Signal is one flattened net.
type Signal struct {
	// Name is the full hierarchical name, dot separated, rooted at the
	// top module name.
	Name   string
	Width  int
	Signed bool
	Kind   SignalKind
	// Index is the dense index into the simulator's value array.
	Index int
}

// RegSpec couples a register signal with its compiled next-value
// expression (reset behavior is already folded into Next by the SSA
// pass).
type RegSpec struct {
	Sig  *Signal
	Next Compiled
}

// MemWritePort is one synchronous write port of a memory.
type MemWritePort struct {
	Addr Compiled
	Data Compiled
	En   Compiled
}

// MemSpec is one behavioral memory.
type MemSpec struct {
	Name   string
	Width  int
	Depth  int
	Writes []MemWritePort
}

// Assign is one combinational assignment, stored in topological order.
type Assign struct {
	Dst  *Signal
	Expr Compiled
}

// InstanceNode is one node of the preserved design hierarchy.
type InstanceNode struct {
	// Name is the instance name ("cpu0"); the root uses the top module
	// name.
	Name string
	// Module is the defining module name.
	Module string
	// Path is the full dot-separated path of this instance.
	Path     string
	Children []*InstanceNode
	// Signals lists the local signal names (not full paths) visible in
	// this instance.
	Signals []string
}

// FindChild returns the named child instance, or nil.
func (n *InstanceNode) FindChild(name string) *InstanceNode {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Walk visits the instance tree depth-first, parents first.
func (n *InstanceNode) Walk(fn func(*InstanceNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Netlist is the flattened design.
type Netlist struct {
	Top     string
	Signals []*Signal
	byName  map[string]*Signal
	// Inputs lists top-level inputs (including clock and reset).
	Inputs []*Signal
	// Outputs lists top-level outputs.
	Outputs []*Signal
	// Assigns are combinational assignments in topological order.
	Assigns []Assign
	Regs    []RegSpec
	Mems    []*MemSpec
	// Hierarchy is the preserved instance tree rooted at the top module.
	Hierarchy *InstanceNode
}

// Signal returns the signal with the given full hierarchical name.
func (nl *Netlist) Signal(name string) (*Signal, bool) {
	s, ok := nl.byName[name]
	return s, ok
}

// SignalNames returns all signal names in sorted order.
func (nl *Netlist) SignalNames() []string {
	names := make([]string, 0, len(nl.Signals))
	for _, s := range nl.Signals {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// NumSignals returns the total signal count.
func (nl *Netlist) NumSignals() int { return len(nl.Signals) }

// Stats summarizes the netlist for reports.
func (nl *Netlist) Stats() string {
	return fmt.Sprintf("signals=%d assigns=%d regs=%d mems=%d",
		len(nl.Signals), len(nl.Assigns), len(nl.Regs), len(nl.Mems))
}

func (nl *Netlist) addSignal(name string, width int, signed bool, kind SignalKind) *Signal {
	s := &Signal{Name: name, Width: width, Signed: signed, Kind: kind, Index: len(nl.Signals)}
	nl.Signals = append(nl.Signals, s)
	nl.byName[name] = s
	return s
}

// localName strips the instance path prefix from a full signal name.
func localName(full string) string {
	if i := strings.LastIndexByte(full, '.'); i >= 0 {
		return full[i+1:]
	}
	return full
}
