package rtl

import (
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
)

func compileCounter(t *testing.T) *ir.Circuit {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return comp.Circuit
}

func TestElaborateCounter(t *testing.T) {
	nl, err := Elaborate(compileCounter(t))
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	if nl.Top != "Counter" {
		t.Fatalf("top = %s", nl.Top)
	}
	if _, ok := nl.Signal("Counter.count"); !ok {
		t.Fatalf("missing register signal; have %v", nl.SignalNames())
	}
	if len(nl.Regs) != 1 {
		t.Fatalf("regs = %d", len(nl.Regs))
	}
	if len(nl.Inputs) != 3 { // clock, reset, en
		t.Fatalf("inputs = %d", len(nl.Inputs))
	}
	sig, _ := nl.Signal("Counter.count")
	if sig.Kind != KindReg || sig.Width != 8 {
		t.Fatalf("count signal = %+v", sig)
	}
}

func TestElaborateHierarchy(t *testing.T) {
	c := generator.NewCircuit("Top")
	child := c.NewModule("Child")
	ci := child.Input("in", ir.UIntType(8))
	co := child.Output("out", ir.UIntType(8))
	co.Set(ci.AddMod(child.Lit(1, 8)))

	top := c.NewModule("Top")
	x := top.Input("x", ir.UIntType(8))
	y := top.Output("y", ir.UIntType(8))
	u0 := top.Instance("u0", child)
	u1 := top.Instance("u1", child)
	u0.IO("in").Set(x)
	u1.IO("in").Set(u0.IO("out"))
	y.Set(u1.IO("out"))

	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Elaborate(comp.Circuit)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	// Hierarchy tree preserved.
	if nl.Hierarchy.Path != "Top" || len(nl.Hierarchy.Children) != 2 {
		t.Fatalf("hierarchy = %+v", nl.Hierarchy)
	}
	if nl.Hierarchy.FindChild("u0") == nil || nl.Hierarchy.FindChild("u1") == nil {
		t.Fatal("children missing")
	}
	if nl.Hierarchy.FindChild("u0").Module != "Child" {
		t.Fatalf("child module = %s", nl.Hierarchy.FindChild("u0").Module)
	}
	if nl.Hierarchy.FindChild("ghost") != nil {
		t.Fatal("found nonexistent child")
	}
	// Child signals exist with full paths.
	for _, name := range []string{"Top.u0.in", "Top.u0.out", "Top.u1.in", "Top.u1.out"} {
		if _, ok := nl.Signal(name); !ok {
			t.Fatalf("missing %s; have %v", name, nl.SignalNames())
		}
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	circ := &ir.Circuit{Main: "Loop", Modules: []*ir.Module{{
		Name: "Loop",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(1)},
		},
		Body: []ir.Stmt{
			&ir.DefNode{Name: "a", Value: ir.NewPrim(ir.OpNot, ir.Ref{Name: "b"})},
			&ir.DefNode{Name: "b", Value: ir.NewPrim(ir.OpNot, ir.Ref{Name: "a"})},
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.Ref{Name: "a"}},
		},
	}}}
	if _, err := Elaborate(circ); err == nil {
		t.Fatal("combinational loop accepted")
	} else if !strings.Contains(err.Error(), "loop") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDoubleAssignDetected(t *testing.T) {
	circ := &ir.Circuit{Main: "D", Modules: []*ir.Module{{
		Name: "D",
		Ports: []ir.Port{
			{Name: "clock", Dir: ir.Input, Tpe: ir.ClockType()},
			{Name: "out", Dir: ir.Output, Tpe: ir.UIntType(1)},
		},
		Body: []ir.Stmt{
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.ConstUInt(0, 1)},
			&ir.Connect{Loc: ir.Ref{Name: "out"}, Value: ir.ConstUInt(1, 1)},
		},
	}}}
	if _, err := Elaborate(circ); err == nil {
		t.Fatal("double assignment accepted")
	}
}

func TestVerilogEmission(t *testing.T) {
	circ := compileCounter(t)
	v, err := VerilogString(circ)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	for _, want := range []string{
		"module Counter(",
		"input clock",
		"reg [7:0] count;",
		"always @(posedge clock)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
	// The generated RTL contains compiler temporaries — the Listing 4
	// "design intent is gone" property.
	if !strings.Contains(v, "_GEN_") && !strings.Contains(v, "count_0") {
		t.Fatalf("expected generated temporaries in:\n%s", v)
	}
}

func TestWalkHierarchy(t *testing.T) {
	nl, err := Elaborate(compileCounter(t))
	if err != nil {
		t.Fatal(err)
	}
	visited := 0
	nl.Hierarchy.Walk(func(n *InstanceNode) { visited++ })
	if visited != 1 {
		t.Fatalf("visited = %d", visited)
	}
	if len(nl.Hierarchy.Signals) == 0 {
		t.Fatal("no signals recorded on hierarchy node")
	}
	if nl.Stats() == "" {
		t.Fatal("empty stats")
	}
}
