package rtl

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Elaborate flattens a Low-form circuit into a Netlist: instances are
// inlined with dot-separated path prefixes, combinational assignments
// are topologically sorted (combinational loops are reported as
// errors), and all expressions are compiled against dense signal
// indices.
func Elaborate(c *ir.Circuit) (*Netlist, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nl := &Netlist{Top: c.Main, byName: map[string]*Signal{}}
	el := &elaborator{c: c, nl: nl, typeEnvs: map[string]*ir.TypeEnv{}}

	root := &InstanceNode{Name: c.Main, Module: c.Main, Path: c.Main}
	nl.Hierarchy = root
	if err := el.instantiate(c.Main+".", c.MainModule(), root, true); err != nil {
		return nil, err
	}
	if err := el.finish(); err != nil {
		return nil, err
	}
	return nl, nil
}

type pendingAssign struct {
	dst    string // full signal name
	expr   ir.Expr
	prefix string // expression name scope
	isReg  bool
}

type elaborator struct {
	c        *ir.Circuit
	nl       *Netlist
	typeEnvs map[string]*ir.TypeEnv
	assigns  []pendingAssign
	memWr    []pendingMemWrite
}

type pendingMemWrite struct {
	mem    string // full memory name
	w      *ir.MemWrite
	prefix string
}

func (el *elaborator) typeEnv(m *ir.Module) *ir.TypeEnv {
	env, ok := el.typeEnvs[m.Name]
	if !ok {
		env = ir.NewTypeEnv(el.c, m)
		el.typeEnvs[m.Name] = env
	}
	return env
}

func (el *elaborator) instantiate(prefix string, m *ir.Module, node *InstanceNode, isTop bool) error {
	env := el.typeEnv(m)
	// Ports first.
	for _, p := range m.Ports {
		g, ok := p.Tpe.(ir.Ground)
		if !ok {
			return fmt.Errorf("rtl: aggregate port %s.%s reached elaboration", m.Name, p.Name)
		}
		kind := KindNode
		if isTop && p.Dir == ir.Input {
			kind = KindInput
		}
		sig := el.nl.addSignal(prefix+p.Name, g.Width, g.Signed(), kind)
		node.Signals = append(node.Signals, p.Name)
		if isTop {
			if p.Dir == ir.Input {
				el.nl.Inputs = append(el.nl.Inputs, sig)
			} else {
				el.nl.Outputs = append(el.nl.Outputs, sig)
			}
		}
	}
	regNames := map[string]bool{}
	for _, s := range m.Body {
		switch d := s.(type) {
		case *ir.DefNode:
			t, err := env.TypeOf(d.Value)
			if err != nil {
				return fmt.Errorf("rtl: %s: node %s cannot be typed (combinational loop or undeclared reference): %w", m.Name, d.Name, err)
			}
			g := ir.GroundOf(t)
			el.nl.addSignal(prefix+d.Name, g.Width, g.Signed(), KindNode)
			node.Signals = append(node.Signals, d.Name)
			el.assigns = append(el.assigns, pendingAssign{dst: prefix + d.Name, expr: d.Value, prefix: prefix})
		case *ir.DefReg:
			g := ir.GroundOf(d.Tpe)
			el.nl.addSignal(prefix+d.Name, g.Width, g.Signed(), KindReg)
			node.Signals = append(node.Signals, d.Name)
			regNames[d.Name] = true
		case *ir.DefMem:
			el.nl.Mems = append(el.nl.Mems, &MemSpec{
				Name:  prefix + d.Name,
				Width: d.Tpe.Width,
				Depth: d.Depth,
			})
		case *ir.MemWrite:
			el.memWr = append(el.memWr, pendingMemWrite{mem: prefix + d.Mem, w: d, prefix: prefix})
		case *ir.DefInstance:
			child := el.c.Module(d.Module)
			childNode := &InstanceNode{Name: d.Name, Module: d.Module, Path: prefix + d.Name}
			node.Children = append(node.Children, childNode)
			if err := el.instantiate(prefix+d.Name+".", child, childNode, false); err != nil {
				return err
			}
		case *ir.Connect:
			switch loc := d.Loc.(type) {
			case ir.Ref:
				el.assigns = append(el.assigns, pendingAssign{
					dst:    prefix + loc.Name,
					expr:   d.Value,
					prefix: prefix,
					isReg:  regNames[loc.Name],
				})
			case ir.SubField:
				ref, ok := loc.E.(ir.Ref)
				if !ok {
					return fmt.Errorf("rtl: unsupported connect target %s", d.Loc)
				}
				el.assigns = append(el.assigns, pendingAssign{
					dst:    prefix + ref.Name + "." + loc.Name,
					expr:   d.Value,
					prefix: prefix,
				})
			default:
				return fmt.Errorf("rtl: unsupported connect target %s", d.Loc)
			}
		default:
			return fmt.Errorf("rtl: unexpected statement %T in Low form module %s", s, m.Name)
		}
	}
	return nil
}

// finish topologically sorts the combinational assignments, compiles
// all expressions, and wires memory write ports.
func (el *elaborator) finish() error {
	// Split reg-next assigns from combinational assigns.
	combByDst := map[string]*pendingAssign{}
	var combOrder []string
	for i := range el.assigns {
		pa := &el.assigns[i]
		if pa.isReg {
			continue
		}
		if prev, dup := combByDst[pa.dst]; dup {
			return fmt.Errorf("rtl: signal %q assigned twice (%s and %s)", pa.dst, prev.expr, pa.expr)
		}
		combByDst[pa.dst] = pa
		combOrder = append(combOrder, pa.dst)
	}

	// Topological sort with cycle detection (white/grey/black DFS).
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var sorted []string
	var visit func(name string, stack []string) error
	visit = func(name string, stack []string) error {
		switch color[name] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("rtl: combinational loop through %q (path: %v)", name, stack)
		}
		color[name] = grey
		pa, isComb := combByDst[name]
		if isComb {
			for _, dep := range collectRefs(pa.prefix, pa.expr) {
				if _, combDep := combByDst[dep]; combDep {
					if err := visit(dep, append(stack, name)); err != nil {
						return err
					}
				}
			}
		}
		color[name] = black
		if isComb {
			sorted = append(sorted, name)
		}
		return nil
	}
	for _, dst := range combOrder {
		if err := visit(dst, nil); err != nil {
			return err
		}
	}

	for _, dst := range sorted {
		pa := combByDst[dst]
		sig, ok := el.nl.byName[dst]
		if !ok {
			return fmt.Errorf("rtl: assignment to unknown signal %q", dst)
		}
		ec := &exprCompiler{nl: el.nl, prefix: pa.prefix}
		compiled, err := ec.compile(pa.expr)
		if err != nil {
			return err
		}
		el.nl.Assigns = append(el.nl.Assigns, Assign{Dst: sig, Expr: compiled})
	}

	// Register next-values.
	for i := range el.assigns {
		pa := &el.assigns[i]
		if !pa.isReg {
			continue
		}
		sig, ok := el.nl.byName[pa.dst]
		if !ok {
			return fmt.Errorf("rtl: next-value for unknown register %q", pa.dst)
		}
		ec := &exprCompiler{nl: el.nl, prefix: pa.prefix}
		compiled, err := ec.compile(pa.expr)
		if err != nil {
			return err
		}
		el.nl.Regs = append(el.nl.Regs, RegSpec{Sig: sig, Next: compiled})
	}
	sort.Slice(el.nl.Regs, func(i, j int) bool { return el.nl.Regs[i].Sig.Name < el.nl.Regs[j].Sig.Name })

	// Memory write ports.
	memByName := map[string]*MemSpec{}
	for _, mem := range el.nl.Mems {
		memByName[mem.Name] = mem
	}
	for _, pw := range el.memWr {
		mem, ok := memByName[pw.mem]
		if !ok {
			return fmt.Errorf("rtl: write to unknown memory %q", pw.mem)
		}
		ec := &exprCompiler{nl: el.nl, prefix: pw.prefix}
		addr, err := ec.compile(pw.w.Addr)
		if err != nil {
			return err
		}
		data, err := ec.compile(pw.w.Data)
		if err != nil {
			return err
		}
		en, err := ec.compile(pw.w.En)
		if err != nil {
			return err
		}
		mem.Writes = append(mem.Writes, MemWritePort{Addr: addr, Data: data, En: en})
	}
	return nil
}
