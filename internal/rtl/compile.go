package rtl

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/ir"
)

// Compiled is a pre-resolved expression: signal references are bound to
// dense value-array indices so evaluation performs no name lookups.
type Compiled interface {
	Eval(st *EvalState) eval.Value
}

// EvalState is the mutable simulation state a compiled expression reads.
type EvalState struct {
	// Values is indexed by Signal.Index.
	Values []eval.Value
	// MemData maps memory names to their backing storage.
	MemData map[string][]uint64
	// MemWidth caches element widths for reads.
	MemWidth map[string]int
}

type cRef struct {
	idx int
}

func (c cRef) Eval(st *EvalState) eval.Value { return st.Values[c.idx] }

type cConst struct {
	v eval.Value
}

func (c cConst) Eval(*EvalState) eval.Value { return c.v }

type cPrim struct {
	op     ir.PrimOp
	params []int
	args   []Compiled
	// buf is reused across evaluations; compiled expressions are only
	// ever evaluated by the single simulation goroutine.
	buf []eval.Value
}

func (c *cPrim) Eval(st *EvalState) eval.Value {
	for i, a := range c.args {
		c.buf[i] = a.Eval(st)
	}
	v, err := eval.Prim(c.op, c.params, c.buf)
	if err != nil {
		// Compilation type-checked the expression; a runtime failure
		// here is a simulator bug worth crashing on.
		panic(fmt.Sprintf("rtl: eval %s: %v", c.op, err))
	}
	return v
}

// cPrim2 specializes the dominant two-argument case to avoid the
// argument slice allocation on the hot path.
type cPrim2 struct {
	op   ir.PrimOp
	a, b Compiled
}

func (c cPrim2) Eval(st *EvalState) eval.Value {
	var args [2]eval.Value
	args[0] = c.a.Eval(st)
	args[1] = c.b.Eval(st)
	v, err := eval.Prim(c.op, nil, args[:])
	if err != nil {
		panic(fmt.Sprintf("rtl: eval %s: %v", c.op, err))
	}
	return v
}

type cMux struct {
	cond, t, f Compiled
}

func (c cMux) Eval(st *EvalState) eval.Value {
	// Both branches are evaluated (they are pure) so the result width
	// matches the static max-width rule regardless of the selection.
	return eval.Mux(c.cond.Eval(st), c.t.Eval(st), c.f.Eval(st))
}

type cMemRead struct {
	mem  string
	addr Compiled
}

func (c cMemRead) Eval(st *EvalState) eval.Value {
	data := st.MemData[c.mem]
	w := st.MemWidth[c.mem]
	a := c.addr.Eval(st).Bits
	if a >= uint64(len(data)) {
		return eval.Make(0, w, false)
	}
	return eval.Make(data[a], w, false)
}

// exprCompiler binds names to signals within one instance scope.
type exprCompiler struct {
	nl     *Netlist
	prefix string // instance path prefix ("Top.cpu0."), "" only for root
}

func (ec *exprCompiler) compile(e ir.Expr) (Compiled, error) {
	switch x := e.(type) {
	case ir.Ref:
		sig, ok := ec.nl.byName[ec.prefix+x.Name]
		if !ok {
			return nil, fmt.Errorf("rtl: unresolved signal %q", ec.prefix+x.Name)
		}
		return cRef{idx: sig.Index}, nil
	case ir.Const:
		return cConst{v: eval.FromConst(x)}, nil
	case ir.SubField:
		// Instance port reference: inst.port.
		ref, ok := x.E.(ir.Ref)
		if !ok {
			return nil, fmt.Errorf("rtl: unexpected subfield %s in Low form", e)
		}
		full := ec.prefix + ref.Name + "." + x.Name
		sig, found := ec.nl.byName[full]
		if !found {
			return nil, fmt.Errorf("rtl: unresolved instance port %q", full)
		}
		return cRef{idx: sig.Index}, nil
	case ir.Prim:
		args := make([]Compiled, len(x.Args))
		for i, a := range x.Args {
			c, err := ec.compile(a)
			if err != nil {
				return nil, err
			}
			args[i] = c
		}
		if len(args) == 2 && len(x.Params) == 0 {
			return cPrim2{op: x.Op, a: args[0], b: args[1]}, nil
		}
		return &cPrim{op: x.Op, params: x.Params, args: args, buf: make([]eval.Value, len(args))}, nil
	case ir.Mux:
		cond, err := ec.compile(x.Cond)
		if err != nil {
			return nil, err
		}
		t, err := ec.compile(x.T)
		if err != nil {
			return nil, err
		}
		f, err := ec.compile(x.F)
		if err != nil {
			return nil, err
		}
		return cMux{cond: cond, t: t, f: f}, nil
	case ir.MemRead:
		addr, err := ec.compile(x.Addr)
		if err != nil {
			return nil, err
		}
		return cMemRead{mem: ec.prefix + x.Mem, addr: addr}, nil
	}
	return nil, fmt.Errorf("rtl: cannot compile %T (%s) — not Low form", e, e)
}

// collectRefs returns the full signal names an expression references
// (used for topological sorting). Instance port references contribute
// the dotted port net, not the bare instance name.
func collectRefs(prefix string, e ir.Expr) []string {
	var out []string
	var visit func(ir.Expr)
	visit = func(sub ir.Expr) {
		switch x := sub.(type) {
		case ir.Ref:
			out = append(out, prefix+x.Name)
		case ir.SubField:
			if ref, ok := x.E.(ir.Ref); ok {
				out = append(out, prefix+ref.Name+"."+x.Name)
				return
			}
			visit(x.E)
		case ir.SubIndex:
			visit(x.E)
		case ir.SubAccess:
			visit(x.E)
			visit(x.Index)
		case ir.Prim:
			for _, a := range x.Args {
				visit(a)
			}
		case ir.Mux:
			visit(x.Cond)
			visit(x.T)
			visit(x.F)
		case ir.MemRead:
			visit(x.Addr)
		}
	}
	visit(e)
	return out
}
