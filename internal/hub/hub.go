// Package hub is a runtime registry serving a farm of simulations
// behind one endpoint. Where cmd/hgdb-sim and cmd/hgdb-replay each
// bind one runtime to one listener, the hub launches, lists, and
// evicts many runtimes — live simulations and trace replays side by
// side — and routes every debugger connection to the runtime the URL
// names. Each registered runtime is wrapped in its own server.Server,
// so the per-runtime machinery (controller arbitration, coalescing
// fan-out, the clock-edge query queue) is exactly the standalone
// code path; the hub only adds the registry and the routing in front.
//
// Wire surface: a WebSocket upgrade with ?runtime=<id> attaches to
// that runtime, indistinguishable from dialing a standalone server. An
// upgrade without the parameter opens a hub control session — greeted
// with a "hub-welcome" event — that speaks the "runtimes"
// list/launch/evict request family.
//
// Replay runtimes load their symbol tables through a shared
// content-keyed cache (symtab.Cache): N replays of the same design
// parse and index the table once and share the immutable result.
package hub

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/symtab"
	"repro/internal/ws"
)

// evictDrainTimeout bounds the session drain of one eviction requested
// over a control session (Evict callers pass their own context).
var evictDrainTimeout = 10 * time.Second

// Options configures a hub.
type Options struct {
	// SymtabBudget bounds idle entries in the shared symbol-table cache
	// (bytes of serialized table content; <= 0 selects the default).
	SymtabBudget int
	// Log receives registry lifecycle messages and is handed to every
	// launched runtime's server. Nil silences both.
	Log *log.Logger
}

// Hub is the registry and the endpoint.
type Hub struct {
	mu       sync.Mutex
	runtimes map[string]*entry
	order    []string // registration order, for stable listings
	nextID   int
	closing  bool

	symCache *symtab.Cache
	ln       net.Listener
	httpSrv  *http.Server
	log      *log.Logger
}

// entry is one registered runtime. state is guarded by the hub mutex;
// the remaining fields are written once during launch (before the
// entry reaches the serving state) and read-only afterwards.
type entry struct {
	id     string
	kind   string // "sim" | "replay"
	source string
	state  string // proto.Runtime* lifecycle
	since  time.Time

	rt      *core.Runtime
	server  *server.Server
	reverse bool
	shared  bool // symbol table came out of the cache as a hit

	cancel    context.CancelFunc // stops the drive goroutine
	driveDone chan struct{}
	cleanup   func() // backend teardown: store close, symtab release
}

// New creates an empty hub.
func New(opts Options) *Hub {
	return &Hub{
		runtimes: map[string]*entry{},
		symCache: symtab.NewCache(opts.SymtabBudget),
		log:      opts.Log,
	}
}

func (h *Hub) logf(format string, args ...any) {
	if h.log != nil {
		h.log.Printf(format, args...)
	}
}

// Listen starts serving the hub endpoint on addr (host:port),
// returning the bound address (useful with ":0").
func (h *Hub) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h.ln = ln
	h.httpSrv = &http.Server{Handler: h}
	go h.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// SymtabStats exposes the shared symbol-table cache accounting
// (hit/miss counters pin the "load once, share N ways" behaviour).
func (h *Hub) SymtabStats() symtab.CacheStats { return h.symCache.Stats() }

// Launch registers and starts one runtime from spec, returning its
// listing entry. The registration is visible (state "launching")
// before the backend build begins, so concurrent listings observe the
// full lifecycle and duplicate names are rejected atomically.
func (h *Hub) Launch(spec proto.RuntimeSpec) (proto.RuntimeInfo, error) {
	if spec.Kind != "sim" && spec.Kind != "replay" {
		return proto.RuntimeInfo{}, fmt.Errorf("hub: unknown runtime kind %q (want sim or replay)", spec.Kind)
	}

	h.mu.Lock()
	if h.closing {
		h.mu.Unlock()
		return proto.RuntimeInfo{}, fmt.Errorf("hub: shutting down")
	}
	id := spec.Name
	if id == "" {
		for {
			h.nextID++
			id = fmt.Sprintf("rt-%d", h.nextID)
			if _, taken := h.runtimes[id]; !taken {
				break
			}
		}
	} else if _, taken := h.runtimes[id]; taken {
		h.mu.Unlock()
		return proto.RuntimeInfo{}, fmt.Errorf("hub: runtime %q already registered", id)
	}
	e := &entry{id: id, kind: spec.Kind, state: proto.RuntimeLaunching, since: time.Now()}
	h.runtimes[id] = e
	h.order = append(h.order, id)
	h.mu.Unlock()

	// The backend build (compile+elaborate for sims, trace parse for
	// replays) runs outside the lock: launching one runtime must not
	// stall listings or attaches to its siblings.
	b, err := buildRuntime(spec, h.symCache)
	if err != nil {
		h.remove(id)
		return proto.RuntimeInfo{}, err
	}

	srv := server.New(b.rt, h.log)
	srv.SetRuntimeID(id)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})

	h.mu.Lock()
	e.rt = b.rt
	e.server = srv
	e.source = b.source
	e.shared = b.shared
	e.reverse = b.reverse
	e.cancel = cancel
	e.driveDone = done
	e.cleanup = b.cleanup
	e.state = proto.RuntimeServing
	info := h.infoLocked(e)
	h.mu.Unlock()

	go func() {
		defer close(done)
		b.drive(ctx)
	}()
	h.logf("hub: launched %s (%s %s)", id, spec.Kind, b.source)
	return info, nil
}

// remove deletes a registry entry (failed launch or completed evict).
func (h *Hub) remove(id string) {
	h.mu.Lock()
	delete(h.runtimes, id)
	for i, oid := range h.order {
		if oid == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

// Evict drains one runtime and releases its resources: new attaches
// stop routing to it the moment it enters the draining state, its
// drive goroutine is cancelled, its sessions get goodbyes through the
// server's graceful Shutdown (a simulation parked at a stop is
// auto-continued so it can observe the cancellation), and its backend
// teardown — trace store close, shared symbol-table release — runs
// once the simulation goroutine has exited. Siblings are untouched.
func (h *Hub) Evict(ctx context.Context, id string) error {
	h.mu.Lock()
	e, ok := h.runtimes[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("hub: no runtime %q", id)
	}
	if e.state != proto.RuntimeServing {
		state := e.state
		h.mu.Unlock()
		return fmt.Errorf("hub: runtime %q is %s", id, state)
	}
	e.state = proto.RuntimeDraining
	h.mu.Unlock()

	e.cancel()
	err := e.server.Shutdown(ctx)
	select {
	case <-e.driveDone:
	case <-ctx.Done():
		// The drive goroutine will still exit (its context is cancelled
		// and the parked stop, if any, was resumed); the caller just
		// stopped waiting. Leave the entry draining so it cannot be
		// relaunched under the same id, and finish teardown when the
		// goroutine lands.
		go func() {
			<-e.driveDone
			h.finishEvict(e)
		}()
		if err == nil {
			err = ctx.Err()
		}
		return err
	}
	h.finishEvict(e)
	return err
}

func (h *Hub) finishEvict(e *entry) {
	if e.cleanup != nil {
		e.cleanup()
	}
	h.mu.Lock()
	e.state = proto.RuntimeDead
	h.mu.Unlock()
	h.remove(e.id)
	h.logf("hub: evicted %s", e.id)
}

// List snapshots the registry in registration order.
func (h *Hub) List() []proto.RuntimeInfo {
	h.mu.Lock()
	entries := make([]*entry, 0, len(h.order))
	for _, id := range h.order {
		entries = append(entries, h.runtimes[id])
	}
	infos := make([]proto.RuntimeInfo, len(entries))
	for i, e := range entries {
		infos[i] = h.infoLocked(e)
	}
	h.mu.Unlock()
	return infos
}

// infoLocked renders one entry for the wire. Callers hold h.mu; the
// session-count and controller reads take the server's own lock, which
// is safe (the server never calls back into the hub).
func (h *Hub) infoLocked(e *entry) proto.RuntimeInfo {
	info := proto.RuntimeInfo{
		ID:        e.id,
		Kind:      e.kind,
		State:     e.state,
		Source:    e.source,
		UptimeSec: time.Since(e.since).Seconds(),
	}
	if e.rt != nil {
		info.Top = e.rt.Table().Top()
		info.Mode = e.rt.Table().Mode()
		info.Reverse = e.reverse
		info.SymtabShared = e.shared
	}
	if e.server != nil {
		info.Sessions = e.server.SessionCount()
		info.Controller = e.server.Controller()
	}
	return info
}

// Close evicts every runtime and shuts the endpoint down.
func (h *Hub) Close() error {
	h.mu.Lock()
	h.closing = true
	ids := make([]string, len(h.order))
	copy(ids, h.order)
	h.mu.Unlock()
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), evictDrainTimeout)
		h.Evict(ctx, id)
		cancel()
	}
	if h.httpSrv != nil {
		return h.httpSrv.Close()
	}
	return nil
}

// ServeHTTP routes one WebSocket upgrade: ?runtime=<id> goes to that
// runtime's server (byte-for-byte the standalone attach path,
// including the ?enc/?delta wire negotiation the server reads from the
// same URL); no parameter opens a hub control session.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("runtime")
	if id == "" {
		h.serveControl(w, r)
		return
	}
	h.mu.Lock()
	var srv *server.Server
	if e, ok := h.runtimes[id]; ok && e.state == proto.RuntimeServing {
		srv = e.server
	}
	h.mu.Unlock()
	if srv == nil {
		// Refusing the upgrade fails the client's dial immediately — the
		// routing-isolation contract: an attach can reach exactly the
		// runtime it names, never a sibling and never a draining one.
		http.Error(w, fmt.Sprintf("no runtime %q", id), http.StatusNotFound)
		return
	}
	srv.ServeHTTP(w, r)
}

// serveControl runs one hub control session: greet with hub-welcome,
// then answer "runtimes" requests until the connection dies. Control
// sessions are plain JSON (they carry registry metadata, not broadcast
// fan-out) and each runs on its own goroutine with no shared queueing.
func (h *Hub) serveControl(w http.ResponseWriter, r *http.Request) {
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	conn.SetWriteTimeout(5 * time.Second)
	defer conn.Close()

	h.mu.Lock()
	n := len(h.runtimes)
	h.mu.Unlock()
	if !h.writeJSON(conn, &proto.Event{Type: "hub-welcome", Runtimes: n}) {
		return
	}

	for {
		raw, err := conn.ReadText()
		if err != nil {
			return
		}
		req, err := proto.DecodeRequest(raw)
		if err != nil {
			var head struct {
				Token string `json:"token"`
			}
			json.Unmarshal(raw, &head)
			h.writeJSON(conn, proto.Error(head.Token, "%v", err))
			continue
		}
		if !h.writeJSON(conn, h.dispatchControl(req)) {
			return
		}
	}
}

func (h *Hub) writeJSON(conn *ws.Conn, v any) bool {
	msg, err := json.Marshal(v)
	if err != nil {
		return false
	}
	return conn.WriteText(msg) == nil
}

// dispatchControl executes one control request. Only the "runtimes"
// family is valid here — everything else belongs to a runtime session
// and the error says how to get one.
func (h *Hub) dispatchControl(req *proto.Request) *proto.Response {
	if req.Type != "runtimes" {
		return proto.Error(req.Token,
			"hub control sessions accept only \"runtimes\" requests; attach to a runtime with ?runtime=<id> for %q", req.Type)
	}
	switch req.Action {
	case "list":
		resp, err := proto.OK(req.Token, h.List())
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		return resp
	case "launch":
		if req.Spec == nil {
			return proto.Error(req.Token, "launch requires a spec")
		}
		info, err := h.Launch(*req.Spec)
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, _ := proto.OK(req.Token, info)
		return resp
	case "evict":
		if req.Runtime == "" {
			return proto.Error(req.Token, "evict requires a runtime id")
		}
		ctx, cancel := context.WithTimeout(context.Background(), evictDrainTimeout)
		err := h.Evict(ctx, req.Runtime)
		cancel()
		if err != nil {
			return proto.Error(req.Token, "%v", err)
		}
		resp, _ := proto.OK(req.Token, map[string]any{"evicted": req.Runtime})
		return resp
	}
	return proto.Error(req.Token, "unknown runtimes action %q", req.Action)
}

// Server returns the session manager of a serving runtime (nil when
// the id is unknown or the runtime is not serving). Test hook.
func (h *Hub) Server(id string) *server.Server {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.runtimes[id]; ok && e.state == proto.RuntimeServing {
		return e.server
	}
	return nil
}
