package hub

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/proto"
	"repro/internal/rtl"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
)

// startHub serves an empty hub on a loopback port.
func startHub(t *testing.T) (*Hub, string) {
	t.Helper()
	h := New(Options{})
	addr, err := h.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h, addr
}

// replayFixture records a short counter-design trace and writes it and
// its symbol table to dir, returning both paths. Every replay runtime
// in these tests shares this one fixture — which is exactly what the
// shared symtab cache is for.
func replayFixture(t testing.TB, dir string) (vcdPath, symtabPath string) {
	t.Helper()
	c := generator.NewCircuit("Counter")
	m := c.NewModule("Counter")
	en := m.Input("en", ir.UIntType(1))
	out := m.Output("out", ir.UIntType(8))
	count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
	m.When(en, func() {
		count.Set(count.AddMod(m.Lit(1, 8)))
	})
	out.Set(count)
	comp, err := passes.Compile(c.MustBuild(), false)
	if err != nil {
		t.Fatal(err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl)

	vcdPath = filepath.Join(dir, "counter.vcd")
	vf, err := os.Create(vcdPath)
	if err != nil {
		t.Fatal(err)
	}
	rec := vcd.NewRecorder(s, vf)
	s.Reset("Counter.reset", 2)
	s.Poke("Counter.en", 1)
	s.Run(64)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	vf.Close()

	symtabPath = filepath.Join(dir, "counter.symtab")
	sf, err := os.Create(symtabPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Save(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	return vcdPath, symtabPath
}

// discoverLine asks a runtime session for any breakpointable
// file:line via the info surface — the generic way to arm a
// breakpoint on a design the test did not build itself.
func discoverLine(t testing.TB, cl *client.Client) (string, int) {
	t.Helper()
	raw, err := cl.Info("files", "")
	if err != nil {
		t.Fatalf("info files: %v", err)
	}
	var files []string
	if err := json.Unmarshal(raw, &files); err != nil || len(files) == 0 {
		t.Fatalf("no breakpointable files: %v (%s)", err, raw)
	}
	raw, err = cl.Info("lines", files[0])
	if err != nil {
		t.Fatalf("info lines: %v", err)
	}
	var lines []int
	if err := json.Unmarshal(raw, &lines); err != nil || len(lines) == 0 {
		t.Fatalf("no lines in %s: %v (%s)", files[0], err, raw)
	}
	return files[0], lines[0]
}

func TestHubLaunchAttachEvict(t *testing.T) {
	_, addr := startHub(t)
	hc, err := client.DialHub(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	info, err := hc.Launch(proto.RuntimeSpec{Name: "c0", Kind: "sim", Design: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "c0" || info.State != proto.RuntimeServing || info.Top != "Counter" {
		t.Fatalf("launch info = %+v", info)
	}
	if info.Reverse {
		t.Fatal("live sim advertised reverse execution")
	}

	ctrl, err := hc.Attach("c0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ev, err := ctrl.WaitEvent("welcome", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Runtime != "c0" {
		t.Fatalf("welcome routed to runtime %q, want c0", ev.Runtime)
	}
	obs, err := hc.Attach("c0")
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	if _, err := obs.WaitEvent("welcome", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The runtime behaves exactly like a standalone server: breakpoint,
	// stop, evaluate, continue.
	file, line := discoverLine(t, ctrl)
	if _, err := ctrl.AddBreakpoint(file, line, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.WaitStop(10 * time.Second); err != nil {
		t.Fatalf("no stop from hub-driven sim: %v", err)
	}
	if _, err := obs.GetValue("Counter.count"); err != nil {
		t.Fatalf("observer read through hub: %v", err)
	}

	infos, err := hc.Runtimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Sessions != 2 {
		t.Fatalf("listing = %+v", infos)
	}

	// Evict while the sim is parked at the stop: both sessions must get
	// goodbyes naming the runtime, and the registry must empty.
	if err := hc.Evict("c0"); err != nil {
		t.Fatal(err)
	}
	for name, cl := range map[string]*client.Client{"controller": ctrl, "observer": obs} {
		gb, err := cl.WaitEvent("goodbye", 5*time.Second)
		if err != nil {
			t.Fatalf("%s: no goodbye: %v", name, err)
		}
		if gb.Reason != "shutdown" || gb.Runtime != "c0" {
			t.Fatalf("%s: goodbye = %+v", name, gb)
		}
	}
	if infos, _ := hc.Runtimes(); len(infos) != 0 {
		t.Fatalf("registry not empty after evict: %+v", infos)
	}

	// Attaching to the evicted id fails at the upgrade.
	if _, err := hc.Attach("c0"); err == nil {
		t.Fatal("attach to evicted runtime succeeded")
	}
	// Evicting it again errors cleanly.
	if err := hc.Evict("c0"); err == nil {
		t.Fatal("second evict succeeded")
	}
}

func TestHubReplayRuntimesShareSymtab(t *testing.T) {
	h, addr := startHub(t)
	vcdPath, symtabPath := replayFixture(t, t.TempDir())
	hc, err := client.DialHub(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	const n = 6
	for i := 0; i < n; i++ {
		info, err := hc.Launch(proto.RuntimeSpec{
			Name: fmt.Sprintf("r%d", i), Kind: "replay",
			VCD: vcdPath, Symtab: symtabPath,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !info.Reverse {
			t.Fatalf("replay runtime %s without reverse execution", info.ID)
		}
		if (i == 0) == info.SymtabShared {
			t.Fatalf("runtime %d symtab_shared = %v", i, info.SymtabShared)
		}
	}
	st := h.SymtabStats()
	if st.Misses != 1 || st.Hits != n-1 || st.Live != 1 {
		t.Fatalf("cache stats after %d replay launches = %+v", n, st)
	}

	// Reverse execution works through the hub: park at a stop, step
	// back, confirm the stop is marked reverse.
	ctrl, err := hc.Attach("r0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	file, line := discoverLine(t, ctrl)
	if _, err := ctrl.AddBreakpoint(file, line, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.WaitStop(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Command("reverse-step"); err != nil {
		t.Fatal(err)
	}
	stop, err := ctrl.WaitStop(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !stop.Reverse {
		t.Fatalf("reverse-step stop not marked reverse: %+v", stop)
	}

	// Evicting all but one keeps the table resident and referenced;
	// evicting the last parks it idle (still resident for relaunch).
	ctrl.Close()
	for i := 0; i < n; i++ {
		if err := hc.Evict(fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st = h.SymtabStats()
	if st.Live != 0 || st.Idle != 1 {
		t.Fatalf("cache stats after evicting all = %+v", st)
	}
	// A relaunch revives the idle table: still no second parse.
	if _, err := hc.Launch(proto.RuntimeSpec{
		Name: "r-again", Kind: "replay", VCD: vcdPath, Symtab: symtabPath,
	}); err != nil {
		t.Fatal(err)
	}
	if st = h.SymtabStats(); st.Misses != 1 {
		t.Fatalf("relaunch re-parsed the table: %+v", st)
	}
}

// TestHubFarmIsolation is the acceptance e2e: a farm of concurrent
// runtimes (mixed sim and replay), three clients each, all launched
// and exercised in parallel under -race. Each controller arms a
// breakpoint and commands its own runtime through stops while the
// observers read state; every event must carry the right runtime id,
// and runtimes without breakpoints must see no stops. Half the farm is
// then evicted concurrently while the surviving half keeps working.
func TestHubFarmIsolation(t *testing.T) {
	h, addr := startHub(t)
	vcdPath, symtabPath := replayFixture(t, t.TempDir())

	const nRuntimes = 24
	const nObservers = 2 // + 1 controller = 3 clients per runtime

	hc, err := client.DialHub(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	// Launch the whole farm concurrently: even-numbered runtimes are
	// live counter sims, odd-numbered are replays of the shared trace.
	var wg sync.WaitGroup
	errs := make(chan error, nRuntimes)
	for i := 0; i < nRuntimes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := proto.RuntimeSpec{Name: fmt.Sprintf("farm-%d", i), Kind: "sim", Design: "counter"}
			if i%2 == 1 {
				spec = proto.RuntimeSpec{
					Name: fmt.Sprintf("farm-%d", i), Kind: "replay",
					VCD: vcdPath, Symtab: symtabPath,
				}
			}
			if _, err := h.Launch(spec); err != nil {
				errs <- fmt.Errorf("launch farm-%d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if infos, err := hc.Runtimes(); err != nil || len(infos) != nRuntimes {
		t.Fatalf("listing after farm launch: %d runtimes, err %v", len(infos), err)
	}

	// Exercise every runtime concurrently. Runtimes whose index is
	// divisible by 3 stay breakpoint-free — their clients assert stop
	// silence, which is the isolation half of the check (a stop leaking
	// across runtimes would land exactly there).
	errs = make(chan error, nRuntimes*4)
	for i := 0; i < nRuntimes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("farm-%d", i)
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("%s: %s", id, fmt.Sprintf(format, args...))
			}
			ctrl, err := hc.Attach(id)
			if err != nil {
				fail("attach controller: %v", err)
				return
			}
			defer ctrl.Close()
			ev, err := ctrl.WaitEvent("welcome", 10*time.Second)
			if err != nil {
				fail("welcome: %v", err)
				return
			}
			if ev.Runtime != id {
				fail("controller routed to %q", ev.Runtime)
				return
			}
			var observers []*client.Client
			for o := 0; o < nObservers; o++ {
				obs, err := hc.Attach(id)
				if err != nil {
					fail("attach observer: %v", err)
					return
				}
				defer obs.Close()
				if ev, err := obs.WaitEvent("welcome", 10*time.Second); err != nil || ev.Runtime != id {
					fail("observer welcome (runtime %q): %v", ev.Runtime, err)
					return
				}
				observers = append(observers, obs)
			}

			if i%3 == 0 {
				// No breakpoints here: any stop is a cross-runtime leak.
				if _, err := ctrl.WaitStop(500 * time.Millisecond); err == nil {
					fail("received a stop with no breakpoints armed")
				}
				return
			}
			file, line := discoverLine(t, ctrl)
			if _, err := ctrl.AddBreakpoint(file, line, ""); err != nil {
				fail("add breakpoint: %v", err)
				return
			}
			for round := 0; round < 3; round++ {
				if _, err := ctrl.WaitStop(15 * time.Second); err != nil {
					fail("round %d stop: %v", round, err)
					return
				}
				for _, obs := range observers {
					if _, err := obs.GetValue("Counter.count"); err != nil {
						fail("round %d observer read: %v", round, err)
						return
					}
				}
				if err := ctrl.Command("continue"); err != nil {
					fail("round %d continue: %v", round, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Concurrent half-farm eviction: evict every even runtime while a
	// client on each odd runtime keeps round-tripping.
	survivors := make([]*client.Client, 0, nRuntimes/2)
	for i := 1; i < nRuntimes; i += 2 {
		cl, err := hc.Attach(fmt.Sprintf("farm-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		survivors = append(survivors, cl)
	}
	errs = make(chan error, nRuntimes)
	for i := 0; i < nRuntimes; i += 2 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := hc.Evict(fmt.Sprintf("farm-%d", i)); err != nil {
				errs <- err
			}
		}(i)
	}
	stopWatch := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			for _, cl := range survivors {
				if _, err := cl.ListBreakpoints(); err != nil {
					errs <- fmt.Errorf("survivor wobbled during eviction: %w", err)
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(stopWatch)
	<-watcherDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	infos, err := hc.Runtimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != nRuntimes/2 {
		t.Fatalf("%d runtimes after half-farm eviction, want %d", len(infos), nRuntimes/2)
	}
	for _, info := range infos {
		if info.State != proto.RuntimeServing {
			t.Fatalf("survivor %s in state %s", info.ID, info.State)
		}
	}
}

// TestHubChurn pounds launch/evict cycles from several goroutines —
// the registry must neither leak entries nor wedge, and the shared
// symtab cache must end balanced.
func TestHubChurn(t *testing.T) {
	h, addr := startHub(t)
	vcdPath, symtabPath := replayFixture(t, t.TempDir())
	hc, err := client.DialHub(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	const workers = 4
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("churn-%d-%d", w, r)
				spec := proto.RuntimeSpec{Name: id, Kind: "sim", Design: "counter"}
				if (w+r)%2 == 1 {
					spec = proto.RuntimeSpec{Name: id, Kind: "replay", VCD: vcdPath, Symtab: symtabPath}
				}
				if _, err := h.Launch(spec); err != nil {
					errs <- err
					return
				}
				cl, err := hc.Attach(id)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				if _, err := cl.WaitEvent("welcome", 10*time.Second); err != nil {
					cl.Close()
					errs <- fmt.Errorf("%s: %w", id, err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err = h.Evict(ctx, id)
				cancel()
				if err != nil {
					cl.Close()
					errs <- fmt.Errorf("evict %s: %w", id, err)
					return
				}
				if _, err := cl.WaitEvent("goodbye", 5*time.Second); err != nil {
					cl.Close()
					errs <- fmt.Errorf("%s goodbye: %w", id, err)
					return
				}
				cl.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if infos := h.List(); len(infos) != 0 {
		t.Fatalf("registry leaked %d entries after churn", len(infos))
	}
	if st := h.SymtabStats(); st.Live != 0 {
		t.Fatalf("symtab refs leaked after churn: %+v", st)
	}
}

func TestHubControlSessionErrors(t *testing.T) {
	_, addr := startHub(t)
	hc, err := client.DialHub(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	if _, err := hc.Launch(proto.RuntimeSpec{Kind: "warp"}); err == nil {
		t.Fatal("bogus kind launched")
	}
	if _, err := hc.Launch(proto.RuntimeSpec{Kind: "replay"}); err == nil {
		t.Fatal("replay without paths launched")
	}
	if _, err := hc.Launch(proto.RuntimeSpec{Kind: "sim", Design: "nonesuch"}); err == nil {
		t.Fatal("unknown design launched")
	}
	if err := hc.Evict("ghost"); err == nil {
		t.Fatal("evicted a runtime that never existed")
	}
	// Duplicate names are rejected, first wins.
	if _, err := hc.Launch(proto.RuntimeSpec{Name: "dup", Kind: "sim"}); err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Launch(proto.RuntimeSpec{Name: "dup", Kind: "sim"}); err == nil {
		t.Fatal("duplicate name launched")
	}
	// A hub control session rejects runtime-scoped requests with a hint.
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.ListBreakpoints(); err == nil {
		t.Fatal("runtime request served on a control session")
	}
	// Launching without a name generates one.
	info, err := hc.Launch(proto.RuntimeSpec{Kind: "sim", Design: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatal("generated id empty")
	}
}

// TestHubDialHubRefusesStandalone pins the handshake: a standalone
// runtime server greets with "welcome", so DialHub — which insists on
// "hub-welcome" — must refuse it.
func TestHubDialHubRefusesStandalone(t *testing.T) {
	b, err := buildSim(proto.RuntimeSpec{Kind: "sim", Design: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(b.rt, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if hc, err := client.DialHub(addr); err == nil {
		hc.Close()
		t.Fatal("DialHub accepted a standalone runtime server")
	}
}
