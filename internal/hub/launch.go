package hub

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fpu"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/passes"
	"repro/internal/proto"
	"repro/internal/replay"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/symtab"
	"repro/internal/vcd"
	"repro/internal/vpi"
)

// driveChunk and drivePause pace a hub-owned live simulation: the
// drive loop runs a chunk of cycles, then yields briefly, so a farm of
// idle runtimes does not saturate every core while still producing
// stops promptly once a debugger arms breakpoints.
const (
	driveChunk = 64
	drivePause = time.Millisecond
)

// built is everything a launcher hands back to the registry.
type built struct {
	rt *core.Runtime
	// drive runs the simulation (or replay) until ctx is cancelled. It
	// may block inside a breakpoint stop; eviction resumes parked stops
	// before waiting on it.
	drive func(context.Context)
	// cleanup releases backend resources (trace store, shared symbol
	// table) after the drive goroutine has exited. May be nil.
	cleanup func()
	source  string
	shared  bool // symbol table was a shared-cache hit
	reverse bool // backend supports SetTime (reverse execution)
}

// buildRuntime constructs the backend a RuntimeSpec describes.
func buildRuntime(spec proto.RuntimeSpec, cache *symtab.Cache) (*built, error) {
	if spec.Kind == "replay" {
		return buildReplay(spec, cache)
	}
	return buildSim(spec)
}

// buildSim compiles one of the packaged designs and wires a live
// simulator behind it — the in-process equivalent of cmd/hgdb-sim.
func buildSim(spec proto.RuntimeSpec) (*built, error) {
	circ, drive, err := buildDesign(spec.Design)
	if err != nil {
		return nil, err
	}
	comp, err := passes.Compile(circ, spec.Debug)
	if err != nil {
		return nil, fmt.Errorf("hub: compile %s: %w", spec.Design, err)
	}
	table, err := symtab.Build(comp)
	if err != nil {
		return nil, fmt.Errorf("hub: symtab %s: %w", spec.Design, err)
	}
	nl, err := rtl.Elaborate(comp.Circuit)
	if err != nil {
		return nil, fmt.Errorf("hub: elaborate %s: %w", spec.Design, err)
	}
	s := sim.New(nl)
	rt, err := core.New(vpi.NewSimBackend(s), table)
	if err != nil {
		return nil, fmt.Errorf("hub: runtime %s: %w", spec.Design, err)
	}
	return &built{
		rt:     rt,
		drive:  func(ctx context.Context) { drive(ctx, s) },
		source: spec.Design,
	}, nil
}

// buildReplay opens a recorded trace (pre-indexed store or raw VCD
// text) and loads its symbol table through the shared cache.
func buildReplay(spec proto.RuntimeSpec, cache *symtab.Cache) (*built, error) {
	if spec.VCD == "" || spec.Symtab == "" {
		return nil, fmt.Errorf("hub: replay runtimes need vcd and symtab paths")
	}
	store, err := vcd.OpenStoreFile(spec.VCD, vcd.OpenOptions{})
	if errors.Is(err, vcd.ErrNotStore) {
		f, ferr := os.Open(spec.VCD)
		if ferr != nil {
			return nil, fmt.Errorf("hub: %w", ferr)
		}
		store, err = vcd.ParseStore(f, vcd.StoreOptions{})
		f.Close()
	}
	if err != nil {
		return nil, fmt.Errorf("hub: open trace %s: %w", spec.VCD, err)
	}

	table, release, shared, err := cache.Acquire(spec.Symtab)
	if err != nil {
		store.Close()
		return nil, err
	}

	eng := replay.NewStore(store)
	rt, err := core.New(eng, table)
	if err != nil {
		store.Close()
		release()
		return nil, fmt.Errorf("hub: runtime %s: %w", spec.VCD, err)
	}
	return &built{
		rt: rt,
		drive: func(ctx context.Context) {
			// Roll the trace forward forever (wrapping at the end) so
			// armed breakpoints keep firing; a parked stop blocks inside
			// StepForward until the controller — or eviction — resumes it.
			for ctx.Err() == nil {
				if !eng.StepForward() {
					eng.SetTime(0)
				}
				time.Sleep(drivePause)
			}
		},
		cleanup: func() {
			store.Close()
			release()
		},
		source:  spec.VCD,
		shared:  shared,
		reverse: true,
	}, nil
}

// buildDesign returns the High-form circuit for a packaged design and
// its continuous drive loop. The designs mirror cmd/hgdb-sim's, but
// the drivers run until cancelled instead of for a cycle count — a hub
// runtime lives as long as the registry keeps it.
func buildDesign(name string) (*ir.Circuit, func(context.Context, *sim.Simulator), error) {
	switch name {
	case "", "counter":
		c := generator.NewCircuit("Counter")
		m := c.NewModule("Counter")
		en := m.Input("en", ir.UIntType(1))
		out := m.Output("out", ir.UIntType(8))
		count := m.RegInit("count", ir.UIntType(8), m.Lit(0, 8))
		m.When(en, func() {
			count.Set(count.AddMod(m.Lit(1, 8)))
		})
		out.Set(count)
		circ, err := c.Build()
		return circ, func(ctx context.Context, s *sim.Simulator) {
			s.Reset("Counter.reset", 2)
			s.Poke("Counter.en", 1)
			for ctx.Err() == nil {
				s.Run(driveChunk)
				time.Sleep(drivePause)
			}
		}, err
	case "fpu":
		circ, err := fpu.BuildCircuit(true) // carries the seeded §4.2 bug
		return circ, func(ctx context.Context, s *sim.Simulator) {
			vectors := []struct{ op, a, b uint64 }{
				{fpu.RmFLT, fpu.One, fpu.Two},
				{fpu.RmFEQ, fpu.One, fpu.One},
				{fpu.RmFEQ, fpu.QNaN, fpu.One}, // triggers the bug
				{fpu.RmFLE, fpu.NegOne, fpu.One},
			}
			s.Reset("FPToInt.reset", 2)
			for i := 0; ctx.Err() == nil; i++ {
				v := vectors[i%len(vectors)]
				s.Poke("FPToInt.io_rm", v.op)
				s.Poke("FPToInt.io_in1", v.a)
				s.Poke("FPToInt.io_in2", v.b)
				s.Poke("FPToInt.io_wflags", 1)
				s.Step()
				if i%driveChunk == driveChunk-1 {
					time.Sleep(drivePause)
				}
			}
		}, err
	}
	return nil, nil, fmt.Errorf("hub: unknown design %q (want counter or fpu)", name)
}
