package hub

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/symtab"
)

// BenchmarkHubSymtabShare pins the farm's memory case for the shared
// symbol-table cache: resolving one table for a 16-runtime replay farm
// through the content-keyed cache (one parse, 15 refcounted hits)
// against parsing the same file 16 times the way standalone servers
// do. The allocs/op and B/op split is the number DESIGN.md quotes —
// the unshared column grows linearly with the farm, the shared one
// stays at a single table plus handles.
func BenchmarkHubSymtabShare(b *testing.B) {
	dir := b.TempDir()
	_, symtabPath := replayFixture(b, dir)
	const farm = 16

	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache := symtab.NewCache(0)
			releases := make([]func(), 0, farm)
			for j := 0; j < farm; j++ {
				_, release, _, err := cache.Acquire(symtabPath)
				if err != nil {
					b.Fatal(err)
				}
				releases = append(releases, release)
			}
			stats := cache.Stats()
			if stats.Live != 1 || stats.Hits != farm-1 {
				b.Fatalf("cache stats = %+v, want 1 live table and %d hits", stats, farm-1)
			}
			for _, release := range releases {
				release()
			}
		}
	})

	b.Run("unshared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tables := make([]*symtab.Table, 0, farm)
			for j := 0; j < farm; j++ {
				raw, err := os.ReadFile(symtabPath)
				if err != nil {
					b.Fatal(err)
				}
				table, err := symtab.Load(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				tables = append(tables, table)
			}
			if len(tables) != farm {
				b.Fatal("short farm")
			}
		}
	})
}
