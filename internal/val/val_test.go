package val

import "testing"

func TestParseVCDNarrow(t *testing.T) {
	b, err := ParseVCD("1x0z", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "4'b1x0z" {
		t.Fatalf("String() = %q, want 4'b1x0z", got)
	}
	if !b.HasX() {
		t.Fatal("HasX() = false")
	}
	// bit 0 = z (v=1,x=1), bit 1 = 0, bit 2 = x, bit 3 = 1
	if v, x := b.Bit(0); !v || !x {
		t.Fatalf("bit 0 = (%v,%v), want z", v, x)
	}
	if v, x := b.Bit(3); !v || x {
		t.Fatalf("bit 3 = (%v,%v), want 1", v, x)
	}
}

func TestParseVCDExtension(t *testing.T) {
	// Leading 1 zero-extends; leading x x-extends; leading z z-extends.
	b, _ := ParseVCD("1", 4)
	if got := b.String(); got != "1" {
		t.Fatalf("zero-extend: %q", got)
	}
	b, _ = ParseVCD("x1", 4)
	if got := b.String(); got != "4'bxxx1" {
		t.Fatalf("x-extend: %q", got)
	}
	b, _ = ParseVCD("z0", 4)
	if got := b.String(); got != "4'bzzz0" {
		t.Fatalf("z-extend: %q", got)
	}
}

func TestParseVCDWide(t *testing.T) {
	lit := "1"
	for i := 0; i < 127; i++ {
		lit += "0"
	}
	b, err := ParseVCD(lit, 128) // bit 127 set
	if err != nil {
		t.Fatal(err)
	}
	if b.Width != 128 || b.Words() != 2 {
		t.Fatalf("width %d words %d", b.Width, b.Words())
	}
	if b.Word(1) != 1<<63 || b.Word(0) != 0 {
		t.Fatalf("words = %x,%x", b.Word(1), b.Word(0))
	}
	if got := b.String(); got != "128'h80000000000000000000000000000000" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAsUint64(t *testing.T) {
	if v, ok := FromUint64(42, 16).AsUint64(); !ok || v != 42 {
		t.Fatalf("AsUint64 = %d,%v", v, ok)
	}
	if _, ok := Unknown(8).AsUint64(); ok {
		t.Fatal("Unknown(8).AsUint64 ok")
	}
	wide := FromWords([]uint64{1, 1}, 128)
	if _, ok := wide.AsUint64(); ok {
		t.Fatal("wide overflow AsUint64 ok")
	}
	narrowWide := FromWords([]uint64{7, 0}, 128)
	if v, ok := narrowWide.AsUint64(); !ok || v != 7 {
		t.Fatalf("narrow wide AsUint64 = %d,%v", v, ok)
	}
}

func TestTruth(t *testing.T) {
	if got := FromUint64(0, 8).Truth(); got != False {
		t.Fatalf("0 truth = %v", got)
	}
	if got := FromUint64(4, 8).Truth(); got != True {
		t.Fatalf("4 truth = %v", got)
	}
	if got := Unknown(8).Truth(); got != Undef {
		t.Fatalf("x truth = %v", got)
	}
	// Known-1 alongside x bits is still true.
	b, _ := ParseVCD("1x", 2)
	if got := b.Truth(); got != True {
		t.Fatalf("1x truth = %v", got)
	}
}

func TestEqRefined(t *testing.T) {
	x1, _ := ParseVCD("1x", 2)
	if got := x1.Eq(FromUint64(0, 2)); got != False {
		t.Fatalf("1x == 00: %v, want False (known bit differs)", got)
	}
	if got := x1.Eq(FromUint64(2, 2)); got != Undef {
		t.Fatalf("1x == 10: %v, want Undef", got)
	}
	if got := FromUint64(5, 8).Eq(FromUint64(5, 4)); got != True {
		t.Fatalf("5 == 5 across widths: %v", got)
	}
}

func TestCaseEq(t *testing.T) {
	a, _ := ParseVCD("1x0z", 4)
	b, _ := ParseVCD("1x0z", 4)
	c, _ := ParseVCD("1x0x", 4)
	if !a.CaseEq(b) {
		t.Fatal("1x0z === 1x0z false")
	}
	if a.CaseEq(c) {
		t.Fatal("1x0z === 1x0x true (z and x must differ)")
	}
}

func TestBitwiseXRules(t *testing.T) {
	zero := FromUint64(0, 1)
	one := FromUint64(1, 1)
	x := Unknown(1)
	// 0 & x = 0; 1 & x = x.
	if got := zero.And(x).Truth(); got != False {
		t.Fatalf("0&x = %v", got)
	}
	if got := one.And(x).Truth(); got != Undef {
		t.Fatalf("1&x = %v", got)
	}
	// 1 | x = 1; 0 | x = x.
	if got := one.Or(x).Truth(); got != True {
		t.Fatalf("1|x = %v", got)
	}
	if got := zero.Or(x).Truth(); got != Undef {
		t.Fatalf("0|x = %v", got)
	}
	// ^ and ~ propagate x.
	if got := one.Xor(x).Truth(); got != Undef {
		t.Fatalf("1^x = %v", got)
	}
	if got := x.Not().Truth(); got != Undef {
		t.Fatalf("~x = %v", got)
	}
	if got := one.Not().Truth(); got != False {
		t.Fatalf("~1 at width 1 = %v", got)
	}
}

func TestAddSubWide(t *testing.T) {
	a := FromWords([]uint64{^uint64(0), 0}, 128)
	b := FromUint64(1, 128)
	sum := a.Add(b)
	if sum.Word(0) != 0 || sum.Word(1) != 1 {
		t.Fatalf("carry: words %x,%x", sum.Word(1), sum.Word(0))
	}
	diff := sum.Sub(b)
	if diff.Word(0) != ^uint64(0) || diff.Word(1) != 0 {
		t.Fatalf("borrow: words %x,%x", diff.Word(1), diff.Word(0))
	}
	if !FromUint64(1, 8).Add(Unknown(8)).HasX() {
		t.Fatal("1 + x should be all-x")
	}
}

func TestCmpWide(t *testing.T) {
	a := FromWords([]uint64{0, 2}, 128)
	b := FromWords([]uint64{^uint64(0), 1}, 128)
	if c, ok := a.Cmp(b); !ok || c != 1 {
		t.Fatalf("cmp = %d,%v", c, ok)
	}
	if _, ok := a.Cmp(Unknown(128)); ok {
		t.Fatal("cmp vs x should be unknown")
	}
}

func TestShifts(t *testing.T) {
	b := FromUint64(1, 128)
	if got := b.Shl(100); got.Word(1) != 1<<36 || got.Word(0) != 0 {
		t.Fatalf("shl 100: %x,%x", got.Word(1), got.Word(0))
	}
	if got := b.Shl(100).Shr(100); got.Word(0) != 1 || got.Word(1) != 0 {
		t.Fatalf("shl/shr round trip: %x,%x", got.Word(1), got.Word(0))
	}
	// X bits shift with the value.
	x, _ := ParseVCD("x1", 2)
	s := x.Resize(4).Shl(1)
	if got := s.String(); got != "4'bx10" {
		// Resize zero-extends, so x1 -> 00x1 -> shl1 -> 0x10.
		if got != "4'b0x10" {
			t.Fatalf("x shift: %q", got)
		}
	}
}

func TestSlice(t *testing.T) {
	b, _ := ParseVCD("1x0z", 4)
	if got := b.Slice(2, 1).String(); got != "2'bx0" {
		t.Fatalf("slice [2:1] = %q", got)
	}
	// Slice above width zero-extends.
	if got := FromUint64(3, 2).Slice(7, 0); got.Width != 8 || got.V0 != 3 {
		t.Fatalf("forgiving slice = %v", got)
	}
}

func TestMux(t *testing.T) {
	a := FromUint64(0b1100, 4)
	b := FromUint64(0b1010, 4)
	m := Mux(a, b)
	if got := m.String(); got != "4'b1xx0" {
		t.Fatalf("mux = %q", got)
	}
}

func TestReductions(t *testing.T) {
	if got := FromUint64(0xFF, 8).RedAnd(); got != True {
		t.Fatalf("&8'hFF = %v", got)
	}
	if got := FromUint64(0xFE, 8).RedAnd(); got != False {
		t.Fatalf("&8'hFE = %v", got)
	}
	b, _ := ParseVCD("1111111x", 8)
	if got := b.RedAnd(); got != Undef {
		t.Fatalf("&8'b1111111x = %v", got)
	}
	c, _ := ParseVCD("0x", 2)
	if got := c.RedOr(); got != Undef {
		t.Fatalf("|2'b0x = %v", got)
	}
	if got := FromUint64(7, 8).RedXor(); got != True {
		t.Fatalf("^7 = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	if got := FromUint64(255, 8).String(); got != "255" {
		t.Fatalf("known narrow = %q", got)
	}
	wide := FromWords([]uint64{0xdead, 0xbeef}, 128)
	if got := wide.String(); got != "128'hbeef000000000000dead" {
		t.Fatalf("known wide = %q", got)
	}
	x, _ := ParseVCD("1x0z", 4)
	if got := x.String(); got != "4'b1x0z" {
		t.Fatalf("four-state = %q", got)
	}
}

func TestResizeMasks(t *testing.T) {
	b := Unknown(128)
	n := b.Resize(8)
	if n.Width != 8 || n.X0 != 0xFF || n.VH != nil {
		t.Fatalf("resize down: %+v", n)
	}
	w := FromUint64(^uint64(0), 64).Resize(128)
	if w.Word(0) != ^uint64(0) || w.Word(1) != 0 || w.HasX() {
		t.Fatalf("resize up: %+v", w)
	}
}
