// Package val implements the four-state, arbitrary-width value plane
// shared by every layer of the value path: VCD parse and store, replay
// state, the VPI boundary, expression evaluation, and the wire.
//
// A value is two packed bit planes over a parameterized width. The X
// plane marks unknown bits; for an unknown bit the value-plane bit
// distinguishes Verilog x (0) from z (1), mirroring the VPI aval/bval
// encoding, so case equality (===) and rendering keep the x/z
// distinction while every arithmetic and logical operator treats both
// as "unknown". Values at or below 64 bits live entirely in two inline
// words (V0/X0) — constructing, copying, and comparing them allocates
// nothing, which is what lets the two-state fast path stay fast.
package val

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bits is a four-state value of Width bits. V0/X0 hold bits 0..63;
// VH/XH hold bits 64.. (word i of the full plane is word i-1 of the
// slice). Invariants maintained by every constructor and operator:
//
//   - Bits above Width are zero in both planes.
//   - Width > 64 ⇒ VH has len (Width+63)/64 - 1. XH is either the
//     same length or nil (a fully known wide value); use XWord, which
//     treats a nil XH as all-known. Aliased values (timelines hand
//     out sub-slices of their packed planes) rely on this, so plane
//     slices reachable through a Bits must never be mutated.
//   - A bit with X-plane 0 is known; X-plane 1 and value-plane 0 is x;
//     X-plane 1 and value-plane 1 is z.
//
// The zero Bits is a known 0 of width 0; Normalize widths it to 1.
type Bits struct {
	Width  int
	V0, X0 uint64
	VH, XH []uint64
}

// Words returns the number of 64-bit words each plane occupies.
func (b Bits) Words() int {
	if b.Width <= 64 {
		return 1
	}
	return (b.Width + 63) / 64
}

// Word returns word i of the value plane.
func (b Bits) Word(i int) uint64 {
	if i == 0 {
		return b.V0
	}
	if i-1 >= len(b.VH) {
		return 0
	}
	return b.VH[i-1]
}

// XWord returns word i of the X plane; a nil XH reads as all-known.
func (b Bits) XWord(i int) uint64 {
	if i == 0 {
		return b.X0
	}
	if i-1 >= len(b.XH) {
		return 0
	}
	return b.XH[i-1]
}

// topMask returns the valid-bit mask for the highest word.
func topMask(width int) uint64 {
	if r := width & 63; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// maskTo zeroes bits above width in both planes (in place on the
// header copy; high slices are assumed sized for width already).
func (b *Bits) maskTo() {
	m := topMask(b.Width)
	if b.Width <= 64 {
		if b.Width == 0 {
			b.Width = 1
			m = 1
		}
		b.V0 &= m
		b.X0 &= m
		b.VH, b.XH = nil, nil
		return
	}
	k := len(b.VH)
	b.VH[k-1] &= m
	b.XH[k-1] &= m
}

// make returns an all-zero known Bits of the given width with planes
// allocated.
func alloc(width int) Bits {
	if width < 1 {
		width = 1
	}
	b := Bits{Width: width}
	if width > 64 {
		k := (width+63)/64 - 1
		b.VH = make([]uint64, k)
		b.XH = make([]uint64, k)
	}
	return b
}

// FromUint64 returns a known value of the given width holding v's low
// width bits.
func FromUint64(v uint64, width int) Bits {
	b := alloc(width)
	b.V0 = v
	b.maskTo()
	return b
}

// FromWords returns a known value of the given width from value-plane
// words (word 0 first). Missing words are zero.
func FromWords(words []uint64, width int) Bits {
	b := alloc(width)
	if len(words) > 0 {
		b.V0 = words[0]
	}
	for i := 1; i < b.Words() && i < len(words); i++ {
		b.VH[i-1] = words[i]
	}
	b.maskTo()
	return b
}

// FromPlanes returns a value of the given width from raw value- and
// X-plane words (word 0 first). xwords may be nil for a known value.
func FromPlanes(vwords, xwords []uint64, width int) Bits {
	b := FromWords(vwords, width)
	if len(xwords) > 0 {
		b.X0 = xwords[0]
		for i := 1; i < b.Words() && i < len(xwords); i++ {
			b.XH[i-1] = xwords[i]
		}
		b.maskTo()
	}
	return b
}

// Unknown returns an all-x value of the given width.
func Unknown(width int) Bits {
	b := alloc(width)
	b.X0 = ^uint64(0)
	for i := range b.XH {
		b.XH[i] = ^uint64(0)
	}
	b.maskTo()
	return b
}

// HasX reports whether any bit is unknown (x or z).
func (b Bits) HasX() bool {
	if b.X0 != 0 {
		return true
	}
	for _, w := range b.XH {
		if w != 0 {
			return true
		}
	}
	return false
}

// IsWide reports whether the value needs more than one plane word.
func (b Bits) IsWide() bool { return b.Width > 64 }

// AsUint64 returns the value as a uint64 when it is fully known and
// its set bits fit in 64 bits; ok is false otherwise.
func (b Bits) AsUint64() (uint64, bool) {
	if b.HasX() {
		return 0, false
	}
	for _, w := range b.VH {
		if w != 0 {
			return 0, false
		}
	}
	return b.V0, true
}

// setBit sets bit i to the given state (in place; planes allocated).
func (b *Bits) setBit(i int, v, x bool) {
	var vp, xp *uint64
	if i < 64 {
		vp, xp = &b.V0, &b.X0
	} else {
		vp, xp = &b.VH[i/64-1], &b.XH[i/64-1]
	}
	m := uint64(1) << (i & 63)
	if v {
		*vp |= m
	}
	if x {
		*xp |= m
	}
}

// Bit returns bit i as (value, unknown).
func (b Bits) Bit(i int) (v, x bool) {
	if i < 0 || i >= b.Width {
		return false, false
	}
	w, m := i/64, uint64(1)<<(i&63)
	return b.Word(w)&m != 0, b.XWord(w)&m != 0
}

// ParseVCD parses a VCD binary vector literal (MSB-first characters
// from 01xXzZ) into a value of the given declared width. Verilog
// left-extension applies when the literal is narrower than width:
// x-extend when the leading character is x, z-extend for z, otherwise
// zero-extend. Literals wider than width keep their low width bits.
// width <= 0 uses the literal's own length.
func ParseVCD(lit string, width int) (Bits, error) {
	if lit == "" {
		return Bits{}, fmt.Errorf("val: empty vector literal")
	}
	if width <= 0 {
		width = len(lit)
	}
	b := alloc(width)
	// lit[0] is the MSB; bit i of the value is lit[len-1-i].
	n := len(lit)
	for i := 0; i < width && i < n; i++ {
		switch c := lit[n-1-i]; c {
		case '0':
		case '1':
			b.setBit(i, true, false)
		case 'x', 'X':
			b.setBit(i, false, true)
		case 'z', 'Z':
			b.setBit(i, true, true)
		default:
			return Bits{}, fmt.Errorf("val: bad vector digit %q", c)
		}
	}
	if n < width {
		switch lit[0] {
		case 'x', 'X':
			for i := n; i < width; i++ {
				b.setBit(i, false, true)
			}
		case 'z', 'Z':
			for i := n; i < width; i++ {
				b.setBit(i, true, true)
			}
		}
	}
	return b, nil
}

// Resize returns b at the given width: truncated to the low bits, or
// zero-extended (known 0s) when widening — VCD left-extension is the
// parser's job, not Resize's.
func (b Bits) Resize(width int) Bits {
	if width == b.Width {
		return b
	}
	r := alloc(width)
	k := r.Words()
	if b.Words() < k {
		k = b.Words()
	}
	r.V0, r.X0 = b.V0, b.X0
	for i := 1; i < k; i++ {
		r.VH[i-1] = b.Word(i)
		r.XH[i-1] = b.XWord(i)
	}
	r.maskTo()
	return r
}

// CaseEq is Verilog === : bit-for-bit identity over all four states,
// always a known 0/1 result.
func (b Bits) CaseEq(o Bits) bool {
	w := b.Width
	if o.Width > w {
		w = o.Width
	}
	a, c := b.Resize(w), o.Resize(w)
	for i := 0; i < a.Words(); i++ {
		if a.Word(i) != c.Word(i) || a.XWord(i) != c.XWord(i) {
			return false
		}
	}
	return true
}

// Tri is a three-valued truth result.
type Tri int8

// Three-valued logic results: an unknown verdict means some X bit
// kept the comparison from resolving.
const (
	False Tri = iota
	True
	Undef
)

// Truth is Verilog truthiness: true if any known-1 bit exists; false
// if fully known with no 1s; unknown otherwise.
func (b Bits) Truth() Tri {
	anyX := false
	for i := 0; i < b.Words(); i++ {
		if b.Word(i)&^b.XWord(i) != 0 {
			return True
		}
		if b.XWord(i) != 0 {
			anyX = true
		}
	}
	if anyX {
		return Undef
	}
	return False
}

// Eq is Verilog == : false when any bit known in both operands
// differs; otherwise unknown if any X is present; otherwise true.
func (b Bits) Eq(o Bits) Tri {
	w := b.Width
	if o.Width > w {
		w = o.Width
	}
	a, c := b.Resize(w), o.Resize(w)
	anyX := false
	for i := 0; i < a.Words(); i++ {
		known := ^(a.XWord(i) | c.XWord(i))
		if (a.Word(i)^c.Word(i))&known != 0 {
			return False
		}
		if a.XWord(i)|c.XWord(i) != 0 {
			anyX = true
		}
	}
	if anyX {
		return Undef
	}
	return True
}

// Cmp compares two values as unsigned integers: -1, 0, or +1, with
// known=false when any X bit is present.
func (b Bits) Cmp(o Bits) (int, bool) {
	if b.HasX() || o.HasX() {
		return 0, false
	}
	w := b.Width
	if o.Width > w {
		w = o.Width
	}
	a, c := b.Resize(w), o.Resize(w)
	for i := a.Words() - 1; i >= 0; i-- {
		aw, cw := a.Word(i), c.Word(i)
		if aw != cw {
			if aw < cw {
				return -1, true
			}
			return 1, true
		}
	}
	return 0, true
}

// binWide applies a per-word bitwise op with Verilog X rules. fn
// computes (value, x) planes for one word triplet-pair.
func binWide(a, c Bits, fn func(av, ax, cv, cx uint64) (uint64, uint64)) Bits {
	w := a.Width
	if c.Width > w {
		w = c.Width
	}
	a, c = a.Resize(w), c.Resize(w)
	r := alloc(w)
	for i := 0; i < r.Words(); i++ {
		v, x := fn(a.Word(i), a.XWord(i), c.Word(i), c.XWord(i))
		if i == 0 {
			r.V0, r.X0 = v, x
		} else {
			r.VH[i-1], r.XH[i-1] = v, x
		}
	}
	r.maskTo()
	return r
}

// And is per-bit &: a known 0 on either side dominates any X.
func (b Bits) And(o Bits) Bits {
	return binWide(b, o, func(av, ax, cv, cx uint64) (uint64, uint64) {
		// A bit is known iff both inputs known, or either is a known 0.
		zeroA := ^av & ^ax
		zeroC := ^cv & ^cx
		x := (ax | cx) &^ (zeroA | zeroC)
		v := (av &^ ax) & (cv &^ cx)
		return v, x
	})
}

// Or is per-bit |: a known 1 on either side dominates any X.
func (b Bits) Or(o Bits) Bits {
	return binWide(b, o, func(av, ax, cv, cx uint64) (uint64, uint64) {
		oneA := av &^ ax
		oneC := cv &^ cx
		x := (ax | cx) &^ (oneA | oneC)
		v := (oneA | oneC) &^ x
		return v, x
	})
}

// Xor is per-bit ^: any X input makes the bit x.
func (b Bits) Xor(o Bits) Bits {
	return binWide(b, o, func(av, ax, cv, cx uint64) (uint64, uint64) {
		x := ax | cx
		v := ((av &^ ax) ^ (cv &^ cx)) &^ x
		return v, x
	})
}

// Not is per-bit ~ at b's width; x bits stay x.
func (b Bits) Not() Bits {
	r := alloc(b.Width)
	for i := 0; i < r.Words(); i++ {
		x := b.XWord(i)
		v := ^b.Word(i) &^ x
		if i == 0 {
			r.V0, r.X0 = v, x
		} else {
			r.VH[i-1], r.XH[i-1] = v, x
		}
	}
	r.maskTo()
	return r
}

// Add returns b + o at width max(widths)+1, whole-result x if either
// operand has any unknown bit (Verilog arithmetic X-propagation).
func (b Bits) Add(o Bits) Bits {
	w := b.Width
	if o.Width > w {
		w = o.Width
	}
	if w < 64 {
		w++
	}
	if b.HasX() || o.HasX() {
		return Unknown(w)
	}
	a, c := b.Resize(w), o.Resize(w)
	r := alloc(w)
	var carry uint64
	for i := 0; i < r.Words(); i++ {
		v, cy := bits.Add64(a.Word(i), c.Word(i), carry)
		carry = cy
		if i == 0 {
			r.V0 = v
		} else {
			r.VH[i-1] = v
		}
	}
	r.maskTo()
	return r
}

// Sub returns b - o at width max(widths)+1 (two's-complement wrap),
// whole-result x on any unknown input bit.
func (b Bits) Sub(o Bits) Bits {
	w := b.Width
	if o.Width > w {
		w = o.Width
	}
	if w < 64 {
		w++
	}
	if b.HasX() || o.HasX() {
		return Unknown(w)
	}
	a, c := b.Resize(w), o.Resize(w)
	r := alloc(w)
	var borrow uint64
	for i := 0; i < r.Words(); i++ {
		v, bo := bits.Sub64(a.Word(i), c.Word(i), borrow)
		borrow = bo
		if i == 0 {
			r.V0 = v
		} else {
			r.VH[i-1] = v
		}
	}
	r.maskTo()
	return r
}

// Shl shifts left by a known amount at b's width (bits shifted past
// Width are dropped). An amount ≥ Width yields known 0.
func (b Bits) Shl(n int) Bits {
	r := alloc(b.Width)
	if n >= b.Width || n < 0 {
		return r
	}
	word, bit := n/64, uint(n&63)
	for i := r.Words() - 1; i >= word; i-- {
		v := b.Word(i-word) << bit
		x := b.XWord(i-word) << bit
		if bit != 0 && i-word > 0 {
			v |= b.Word(i-word-1) >> (64 - bit)
			x |= b.XWord(i-word-1) >> (64 - bit)
		}
		if i == 0 {
			r.V0, r.X0 = v, x
		} else {
			r.VH[i-1], r.XH[i-1] = v, x
		}
	}
	r.maskTo()
	return r
}

// Shr shifts right logically by a known amount at b's width.
func (b Bits) Shr(n int) Bits {
	r := alloc(b.Width)
	if n >= b.Width || n < 0 {
		return r
	}
	word, bit := n/64, uint(n&63)
	k := r.Words()
	for i := 0; i+word < k; i++ {
		v := b.Word(i+word) >> bit
		x := b.XWord(i+word) >> bit
		if bit != 0 && i+word+1 < k {
			v |= b.Word(i+word+1) << (64 - bit)
			x |= b.XWord(i+word+1) << (64 - bit)
		}
		if i == 0 {
			r.V0, r.X0 = v, x
		} else {
			r.VH[i-1], r.XH[i-1] = v, x
		}
	}
	r.maskTo()
	return r
}

// Slice returns bits [hi:lo] as a value of width hi-lo+1. Bits above
// b.Width read as known 0 (the forgiving zero-extension the expression
// layer's bit-select already applies).
func (b Bits) Slice(hi, lo int) Bits {
	if hi < lo || lo < 0 {
		return Bits{Width: 1}
	}
	return b.Shr(lo).Resize(hi - lo + 1)
}

// Mux merges two same-role values for an unknown ternary condition:
// bits where the arms agree (and are known) keep their value, all
// other bits are x. Result width is max(widths).
func Mux(a, c Bits) Bits {
	return binWide(a, c, func(av, ax, cv, cx uint64) (uint64, uint64) {
		x := ax | cx | (av ^ cv)
		return av &^ x, x
	})
}

// RedOr is the | reduction: 1 if any known-1 bit, 0 if fully known
// zero, x otherwise.
func (b Bits) RedOr() Tri { return b.Truth() }

// RedAnd is the & reduction: 0 if any known-0 bit, 1 if all bits are
// known 1, x otherwise.
func (b Bits) RedAnd() Tri {
	anyX := false
	for i := 0; i < b.Words(); i++ {
		valid := planeMask(b.Width, i)
		if valid == 0 {
			continue
		}
		if (^b.Word(i)&^b.XWord(i))&valid != 0 {
			return False
		}
		if b.XWord(i)&valid != 0 {
			anyX = true
		}
	}
	if anyX {
		return Undef
	}
	return True
}

// RedXor is the ^ reduction: x if any X bit, else parity.
func (b Bits) RedXor() Tri {
	if b.HasX() {
		return Undef
	}
	p := 0
	for i := 0; i < b.Words(); i++ {
		p ^= bits.OnesCount64(b.Word(i)) & 1
	}
	if p != 0 {
		return True
	}
	return False
}

// planeMask returns the valid-bit mask of plane word i for a value of
// the given width.
func planeMask(width, i int) uint64 {
	lo := i * 64
	if lo >= width {
		return 0
	}
	if width-lo >= 64 {
		return ^uint64(0)
	}
	return (1 << (width - lo)) - 1
}

// TriBits renders a Tri as a 1-bit Bits.
func TriBits(t Tri) Bits {
	switch t {
	case True:
		return Bits{Width: 1, V0: 1}
	case Undef:
		return Bits{Width: 1, X0: 1}
	}
	return Bits{Width: 1}
}

// String renders the value: fully known values at or below 64 bits as
// decimal, known wide values as W'h hex, and any value with unknown
// bits as W'b binary with x/z digits — the 8'b1x0z style the DAP
// variable pane shows.
func (b Bits) String() string {
	if !b.HasX() {
		if v, ok := b.AsUint64(); ok {
			return fmt.Sprintf("%d", v)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d'h", b.Width)
		started := false
		for i := b.Words() - 1; i >= 0; i-- {
			if !started {
				if w := b.Word(i); w != 0 || i == 0 {
					fmt.Fprintf(&sb, "%x", w)
					started = true
				}
				continue
			}
			fmt.Fprintf(&sb, "%016x", b.Word(i))
		}
		return sb.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'b", b.Width)
	for i := b.Width - 1; i >= 0; i-- {
		v, x := b.Bit(i)
		switch {
		case x && v:
			sb.WriteByte('z')
		case x:
			sb.WriteByte('x')
		case v:
			sb.WriteByte('1')
		default:
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
