package passes

import (
	"fmt"
	"strconv"

	"repro/internal/ir"
)

// LowerAggregates flattens bundle- and vec-typed ports, wires, and
// registers into ground-typed signals joined with underscores
// (io.out.bits → io_out_bits), expands aggregate connects field-wise
// (respecting flips), and rewrites dynamic vector accesses into mux
// trees (reads) or per-element conditional writes. It records the
// flattened-name → dotted-source-path map used later to reconstruct
// structured variables in debugger frames, exactly the facility §4.2 of
// the paper uses to show dcmp.io as a PortBundle.
type LowerAggregates struct{}

// Name implements Pass.
func (*LowerAggregates) Name() string { return "lower-aggregates" }

// Run implements Pass.
func (*LowerAggregates) Run(comp *Compilation) error {
	// Snapshot original modules so parents can resolve the pre-lowering
	// port types of their children while being rewritten themselves.
	originals := map[string]*ir.Module{}
	for _, m := range comp.Circuit.Modules {
		originals[m.Name] = m
	}
	origCircuit := &ir.Circuit{Main: comp.Circuit.Main}
	for _, m := range comp.Circuit.Modules {
		origCircuit.Modules = append(origCircuit.Modules, m)
	}

	lowered := make([]*ir.Module, 0, len(comp.Circuit.Modules))
	for _, m := range comp.Circuit.Modules {
		lm := &loweringCtx{
			comp:     comp,
			orig:     m,
			env:      ir.NewTypeEnv(origCircuit, m),
			origMods: originals,
			flatVar:  map[string]string{},
		}
		nm, err := lm.lowerModule()
		if err != nil {
			return err
		}
		comp.FlatVar[m.Name] = lm.flatVar
		lowered = append(lowered, nm)
	}
	comp.Circuit = &ir.Circuit{Main: comp.Circuit.Main, Modules: lowered}
	return nil
}

type loweringCtx struct {
	comp     *Compilation
	orig     *ir.Module
	env      *ir.TypeEnv
	origMods map[string]*ir.Module
	flatVar  map[string]string // flat name -> dotted source path
}

// flattenType expands an aggregate type into (suffix path, ground,
// flip) leaves. The suffix is "" for a ground type.
type leaf struct {
	suffix string // "_field_0" style; "" for ground
	dotted string // ".field[0]" style for presentation
	tpe    ir.Ground
	flip   bool
}

func flattenType(t ir.Type) []leaf {
	switch x := t.(type) {
	case ir.Ground:
		return []leaf{{tpe: x}}
	case ir.Bundle:
		var out []leaf
		for _, f := range x.Fields {
			for _, l := range flattenType(f.Type) {
				out = append(out, leaf{
					suffix: "_" + f.Name + l.suffix,
					dotted: "." + f.Name + l.dotted,
					tpe:    l.tpe,
					flip:   f.Flip != l.flip,
				})
			}
		}
		return out
	case ir.Vec:
		var out []leaf
		for i := 0; i < x.Len; i++ {
			for _, l := range flattenType(x.Elem) {
				out = append(out, leaf{
					suffix: "_" + strconv.Itoa(i) + l.suffix,
					dotted: "[" + strconv.Itoa(i) + "]" + l.dotted,
					tpe:    l.tpe,
					flip:   l.flip,
				})
			}
		}
		return out
	}
	panic(fmt.Sprintf("passes: unknown type %T", t))
}

func (lc *loweringCtx) lowerModule() (*ir.Module, error) {
	nm := &ir.Module{Name: lc.orig.Name, Attrs: lc.orig.Attrs}
	if nm.Attrs == nil {
		nm.Attrs = map[string]string{}
	}
	var genVars []GenVar
	for _, p := range lc.orig.Ports {
		for _, l := range flattenType(p.Tpe) {
			dir := p.Dir
			if l.flip {
				if dir == ir.Input {
					dir = ir.Output
				} else {
					dir = ir.Input
				}
			}
			flat := p.Name + l.suffix
			nm.Ports = append(nm.Ports, ir.Port{Name: flat, Dir: dir, Tpe: l.tpe, Info: p.Info})
			if l.suffix != "" {
				lc.flatVar[flat] = p.Name + l.dotted
			}
			if p.Name != "clock" && p.Name != "reset" {
				genVars = append(genVars, GenVar{Name: p.Name + l.dotted, RTL: flat, Kind: "port"})
			}
		}
	}
	body, gv, err := lc.lowerStmts(lc.orig.Body)
	if err != nil {
		return nil, fmt.Errorf("module %s: %w", lc.orig.Name, err)
	}
	genVars = append(genVars, gv...)
	nm.Body = body
	lc.comp.GenVars[lc.orig.Name] = genVars
	return nm, nil
}

func (lc *loweringCtx) lowerStmts(body []ir.Stmt) ([]ir.Stmt, []GenVar, error) {
	var out []ir.Stmt
	var genVars []GenVar
	for _, s := range body {
		switch d := s.(type) {
		case *ir.DefWire:
			for _, l := range flattenType(d.Tpe) {
				flat := d.Name + l.suffix
				out = append(out, &ir.DefWire{Name: flat, Tpe: l.tpe, Info: d.Info})
				if l.suffix != "" {
					lc.flatVar[flat] = d.Name + l.dotted
				}
				genVars = append(genVars, GenVar{Name: d.Name + l.dotted, RTL: flat, Kind: "wire"})
			}
		case *ir.DefReg:
			leaves := flattenType(d.Tpe)
			if d.Init != nil && len(leaves) > 1 {
				return nil, nil, fmt.Errorf("aggregate register %q cannot have a reset value", d.Name)
			}
			for _, l := range leaves {
				flat := d.Name + l.suffix
				var init ir.Expr
				if d.Init != nil {
					init = lc.lowerExpr(d.Init)
				}
				out = append(out, &ir.DefReg{Name: flat, Tpe: l.tpe, Init: init, Info: d.Info})
				if l.suffix != "" {
					lc.flatVar[flat] = d.Name + l.dotted
				}
				genVars = append(genVars, GenVar{Name: d.Name + l.dotted, RTL: flat, Kind: "reg"})
			}
		case *ir.DefNode:
			t, err := lc.env.TypeOf(d.Value)
			if err != nil {
				return nil, nil, err
			}
			if !ir.IsGround(t) {
				return nil, nil, fmt.Errorf("aggregate-typed node %q not supported; connect through a wire", d.Name)
			}
			out = append(out, &ir.DefNode{Name: d.Name, Value: lc.lowerExpr(d.Value), Info: d.Info})
			genVars = append(genVars, GenVar{Name: d.Name, RTL: d.Name, Kind: "node"})
		case *ir.DefMem:
			out = append(out, d)
			genVars = append(genVars, GenVar{Name: d.Name, RTL: d.Name, Kind: "mem"})
		case *ir.MemWrite:
			out = append(out, &ir.MemWrite{
				Mem:  d.Mem,
				Addr: lc.lowerExpr(d.Addr),
				Data: lc.lowerExpr(d.Data),
				En:   lc.lowerExpr(d.En),
				Info: d.Info,
			})
		case *ir.DefInstance:
			out = append(out, d)
			genVars = append(genVars, GenVar{Name: d.Name, RTL: d.Name, Kind: "instance"})
		case *ir.Connect:
			stmts, err := lc.lowerConnect(d)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, stmts...)
		case *ir.When:
			thenB, gv1, err := lc.lowerStmts(d.Then)
			if err != nil {
				return nil, nil, err
			}
			elseB, gv2, err := lc.lowerStmts(d.Else)
			if err != nil {
				return nil, nil, err
			}
			genVars = append(genVars, gv1...)
			genVars = append(genVars, gv2...)
			out = append(out, &ir.When{Cond: lc.lowerExpr(d.Cond), Then: thenB, Else: elseB, Info: d.Info})
		default:
			return nil, nil, fmt.Errorf("unsupported statement %T", s)
		}
	}
	return out, genVars, nil
}

// lowerConnect expands a (possibly aggregate) connect into ground
// connects, handling flips and dynamic-index writes.
func (lc *loweringCtx) lowerConnect(c *ir.Connect) ([]ir.Stmt, error) {
	t, err := lc.env.TypeOf(c.Loc)
	if err != nil {
		return nil, err
	}
	return lc.expandConnect(c.Loc, c.Value, t, c.Info)
}

func (lc *loweringCtx) expandConnect(loc, val ir.Expr, t ir.Type, info ir.Info) ([]ir.Stmt, error) {
	switch x := t.(type) {
	case ir.Ground:
		// A dynamic-index write becomes a per-element conditional write.
		if sa, ok := loc.(ir.SubAccess); ok {
			baseT, err := lc.env.TypeOf(sa.E)
			if err != nil {
				return nil, err
			}
			vec, ok := baseT.(ir.Vec)
			if !ok {
				return nil, fmt.Errorf("dynamic write to non-vec %s", sa.E)
			}
			idx := lc.lowerExpr(sa.Index)
			idxW := lc.indexWidth(vec.Len)
			var out []ir.Stmt
			for i := 0; i < vec.Len; i++ {
				elemConnects, err := lc.expandConnect(ir.SubIndex{E: sa.E, Index: i}, val, vec.Elem, info)
				if err != nil {
					return nil, err
				}
				cond := ir.NewPrim(ir.OpEq, idx, ir.ConstUInt(uint64(i), idxW))
				out = append(out, &ir.When{Cond: cond, Then: elemConnects, Info: info})
			}
			return out, nil
		}
		return []ir.Stmt{&ir.Connect{Loc: lc.lowerExpr(loc), Value: lc.lowerExpr(val), Info: info}}, nil
	case ir.Bundle:
		var out []ir.Stmt
		for _, f := range x.Fields {
			locF := ir.SubField{E: loc, Name: f.Name}
			valF := ir.SubField{E: val, Name: f.Name}
			var stmts []ir.Stmt
			var err error
			if f.Flip {
				stmts, err = lc.expandConnect(valF, locF, f.Type, info)
			} else {
				stmts, err = lc.expandConnect(locF, valF, f.Type, info)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
		}
		return out, nil
	case ir.Vec:
		var out []ir.Stmt
		for i := 0; i < x.Len; i++ {
			stmts, err := lc.expandConnect(ir.SubIndex{E: loc, Index: i}, ir.SubIndex{E: val, Index: i}, x.Elem, info)
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown type %T", t)
}

func (lc *loweringCtx) indexWidth(n int) int {
	w := 1
	for (1 << uint(w)) < n {
		w++
	}
	return w
}

// lowerExpr rewrites an expression to reference only flattened ground
// signals.
func (lc *loweringCtx) lowerExpr(e ir.Expr) ir.Expr {
	switch x := e.(type) {
	case ir.Ref, ir.Const:
		return e
	case ir.SubField, ir.SubIndex:
		if flat, ok := lc.flattenPath(e); ok {
			return flat
		}
		return e
	case ir.SubAccess:
		// Dynamic read: mux tree over the statically indexed elements.
		baseT, err := lc.env.TypeOf(x.E)
		if err != nil {
			return e
		}
		vec, ok := baseT.(ir.Vec)
		if !ok {
			return e
		}
		idx := lc.lowerExpr(x.Index)
		idxW := lc.indexWidth(vec.Len)
		result := lc.lowerExpr(ir.SubIndex{E: x.E, Index: vec.Len - 1})
		for i := vec.Len - 2; i >= 0; i-- {
			cond := ir.NewPrim(ir.OpEq, idx, ir.ConstUInt(uint64(i), idxW))
			result = ir.Mux{Cond: cond, T: lc.lowerExpr(ir.SubIndex{E: x.E, Index: i}), F: result}
		}
		return result
	case ir.Prim:
		args := make([]ir.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = lc.lowerExpr(a)
		}
		return ir.Prim{Op: x.Op, Args: args, Params: x.Params}
	case ir.Mux:
		return ir.Mux{Cond: lc.lowerExpr(x.Cond), T: lc.lowerExpr(x.T), F: lc.lowerExpr(x.F)}
	case ir.MemRead:
		return ir.MemRead{Mem: x.Mem, Addr: lc.lowerExpr(x.Addr)}
	}
	return e
}

// flattenPath converts a SubField/SubIndex chain rooted at a local
// aggregate or an instance into a flattened reference. Returns false
// when the chain involves dynamic accesses (handled elsewhere).
func (lc *loweringCtx) flattenPath(e ir.Expr) (ir.Expr, bool) {
	var suffix string
	cur := e
	for {
		switch x := cur.(type) {
		case ir.SubField:
			// Is the base an instance? Then the remaining suffix is a
			// child port name.
			if ref, ok := x.E.(ir.Ref); ok {
				if childMod := lc.instanceModule(ref.Name); childMod != nil {
					if _, isPort := childMod.PortByName(x.Name); isPort {
						return ir.SubField{E: ref, Name: x.Name + suffix}, true
					}
				}
			}
			suffix = "_" + x.Name + suffix
			cur = x.E
		case ir.SubIndex:
			suffix = "_" + strconv.Itoa(x.Index) + suffix
			cur = x.E
		case ir.Ref:
			return ir.Ref{Name: x.Name + suffix}, true
		default:
			return nil, false
		}
	}
}

// instanceModule resolves the original (pre-lowering) module definition
// of a named instance within the current module, or nil.
func (lc *loweringCtx) instanceModule(instName string) *ir.Module {
	var modName string
	ir.WalkStmts(lc.orig.Body, func(s ir.Stmt) {
		if inst, ok := s.(*ir.DefInstance); ok && inst.Name == instName {
			modName = inst.Module
		}
	})
	if modName == "" {
		return nil
	}
	return lc.origMods[modName]
}
