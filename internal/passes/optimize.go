package passes

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/ir"
)

// ConstProp folds constant sub-expressions and propagates constant and
// alias nodes into their uses, the FIRRTL-style optimization the paper
// names as one reason generated RTL is hard to debug. Renames caused by
// alias folding are recorded for the Collect pass.
type ConstProp struct{}

// Name implements Pass.
func (*ConstProp) Name() string { return "const-prop" }

// Run implements Pass.
func (p *ConstProp) Run(comp *Compilation) error {
	for _, m := range comp.Circuit.Modules {
		if err := p.runModule(comp, m); err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
	}
	return nil
}

func (p *ConstProp) runModule(comp *Compilation, m *ir.Module) error {
	env := ir.NewTypeEnv(comp.Circuit, m)
	// consts maps node name -> literal value; aliases maps node name ->
	// the name it is a pure copy of.
	consts := map[string]ir.Const{}
	aliases := map[string]string{}

	fold := func(e ir.Expr) ir.Expr {
		return ir.MapExpr(e, func(sub ir.Expr) ir.Expr {
			switch x := sub.(type) {
			case ir.Ref:
				if c, ok := consts[x.Name]; ok {
					return c
				}
				if a, ok := aliases[x.Name]; ok {
					return ir.Ref{Name: a}
				}
				return x
			case ir.Prim:
				return foldPrim(x, env)
			case ir.Mux:
				if c, ok := x.Cond.(ir.Const); ok {
					if c.Value != 0 {
						return x.T
					}
					return x.F
				}
				if exprEqual(x.T, x.F) {
					return x.T
				}
				return x
			default:
				return sub
			}
		})
	}

	var out []ir.Stmt
	for _, s := range m.Body {
		switch d := s.(type) {
		case *ir.DefNode:
			v := fold(d.Value)
			// Record constant and alias nodes for propagation, but keep
			// DontTouch-marked nodes addressable.
			if !comp.isDontTouch(m.Name, d.Name) {
				switch val := v.(type) {
				case ir.Const:
					// Normalize the constant to the node's declared width
					// so propagation does not change widths.
					if w, err := env.WidthOf(ir.Ref{Name: d.Name}); err == nil && w >= val.Width {
						val = ir.Const{Value: val.Value, Width: w, Signed: val.Signed}
					}
					consts[d.Name] = val
				case ir.Ref:
					target := val.Name
					if a, ok := aliases[target]; ok {
						target = a
					}
					aliases[d.Name] = target
					comp.recordRename(m.Name, d.Name, target)
				}
			}
			out = append(out, &ir.DefNode{Name: d.Name, Value: v, Info: d.Info})
		case *ir.Connect:
			out = append(out, &ir.Connect{Loc: d.Loc, Value: fold(d.Value), Info: d.Info})
		case *ir.MemWrite:
			out = append(out, &ir.MemWrite{Mem: d.Mem, Addr: fold(d.Addr), Data: fold(d.Data), En: fold(d.En), Info: d.Info})
		default:
			out = append(out, s)
		}
	}
	m.Body = out
	return nil
}

// foldPrim evaluates a primitive op when all arguments are literals.
// Sub-expressions were already folded (MapExpr is bottom-up).
func foldPrim(x ir.Prim, env *ir.TypeEnv) ir.Expr {
	args := make([]ir.Const, len(x.Args))
	for i, a := range x.Args {
		c, ok := a.(ir.Const)
		if !ok {
			return simplifyAlgebraic(x)
		}
		args[i] = c
	}
	vals := make([]eval.Value, len(args))
	for i, c := range args {
		vals[i] = eval.FromConst(c)
	}
	res, err := eval.Prim(x.Op, x.Params, vals)
	if err != nil {
		return x
	}
	return ir.Const{Value: res.Bits, Width: res.Width, Signed: res.Signed}
}

// simplifyAlgebraic applies width-preserving identities: x&0=0, x|0=x,
// x^0=x, x*1 and x+0 are left alone (they change widths in this IR).
func simplifyAlgebraic(x ir.Prim) ir.Expr {
	if len(x.Args) != 2 {
		return x
	}
	a, b := x.Args[0], x.Args[1]
	isZero := func(e ir.Expr) bool {
		c, ok := e.(ir.Const)
		return ok && c.Value == 0
	}
	switch x.Op {
	case ir.OpAnd:
		if isZero(a) || isZero(b) {
			w := 1
			if ca, ok := a.(ir.Const); ok && ca.Width > w {
				w = ca.Width
			}
			if cb, ok := b.(ir.Const); ok && cb.Width > w {
				w = cb.Width
			}
			return ir.Const{Value: 0, Width: w}
		}
	case ir.OpEq:
		if exprEqual(a, b) {
			return ir.ConstBool(true)
		}
	case ir.OpNeq:
		if exprEqual(a, b) {
			return ir.ConstBool(false)
		}
	}
	return x
}

// CSE eliminates duplicate node definitions: two nodes computing the
// same (rendered) expression fold onto the first, with the second
// recorded as a rename so symbol entries follow.
type CSE struct{}

// Name implements Pass.
func (*CSE) Name() string { return "cse" }

// Run implements Pass.
func (*CSE) Run(comp *Compilation) error {
	for _, m := range comp.Circuit.Modules {
		seen := map[string]string{} // expr string -> first node name
		rename := map[string]string{}
		subst := func(e ir.Expr) ir.Expr {
			return ir.MapExpr(e, func(sub ir.Expr) ir.Expr {
				if r, ok := sub.(ir.Ref); ok {
					if to, ok := rename[r.Name]; ok {
						return ir.Ref{Name: to}
					}
				}
				return sub
			})
		}
		var out []ir.Stmt
		for _, s := range m.Body {
			switch d := s.(type) {
			case *ir.DefNode:
				v := subst(d.Value)
				key := v.String()
				if first, dup := seen[key]; dup && !comp.isDontTouch(m.Name, d.Name) && !isTrivialExpr(v) {
					rename[d.Name] = first
					comp.recordRename(m.Name, d.Name, first)
					continue // drop the duplicate definition
				}
				if _, dup := seen[key]; !dup {
					seen[key] = d.Name
				}
				out = append(out, &ir.DefNode{Name: d.Name, Value: v, Info: d.Info})
			case *ir.Connect:
				out = append(out, &ir.Connect{Loc: d.Loc, Value: subst(d.Value), Info: d.Info})
			case *ir.MemWrite:
				out = append(out, &ir.MemWrite{Mem: d.Mem, Addr: subst(d.Addr), Data: subst(d.Data), En: subst(d.En), Info: d.Info})
			default:
				out = append(out, s)
			}
		}
		m.Body = out
	}
	return nil
}

// isTrivialExpr reports whether an expression is so cheap that CSE-ing
// it would only churn names (bare refs and literals).
func isTrivialExpr(e ir.Expr) bool {
	switch e.(type) {
	case ir.Ref, ir.Const:
		return true
	}
	return false
}

// DCE removes node definitions that nothing observes: not referenced by
// outputs, register next-values, memory writes, instance connections, or
// other live nodes. Removed names are recorded so Collect can drop
// symbol entries whose variables were optimized away — the behavior the
// paper notes is "consistent with software compilers".
type DCE struct{}

// Name implements Pass.
func (*DCE) Name() string { return "dce" }

// Run implements Pass.
func (*DCE) Run(comp *Compilation) error {
	for _, m := range comp.Circuit.Modules {
		live := map[string]bool{}
		var mark func(e ir.Expr)
		mark = func(e ir.Expr) {
			ir.WalkExpr(e, func(sub ir.Expr) {
				if r, ok := sub.(ir.Ref); ok {
					live[r.Name] = true
				}
			})
		}
		// Roots: everything except plain node definitions.
		nodeDefs := map[string]*ir.DefNode{}
		var order []string
		for _, s := range m.Body {
			switch d := s.(type) {
			case *ir.DefNode:
				nodeDefs[d.Name] = d
				order = append(order, d.Name)
				if comp.isDontTouch(m.Name, d.Name) {
					live[d.Name] = true
				}
			case *ir.Connect:
				mark(d.Value)
			case *ir.MemWrite:
				mark(d.Addr)
				mark(d.Data)
				mark(d.En)
			case *ir.DefReg:
				// reg declarations carry no expressions in Low form
			}
		}
		// Propagate liveness backwards through node definitions. Nodes
		// are in definition order, so a reverse sweep reaches a fixpoint
		// in one pass.
		for i := len(order) - 1; i >= 0; i-- {
			name := order[i]
			if live[name] {
				mark(nodeDefs[name].Value)
			}
		}
		var out []ir.Stmt
		removed := 0
		for _, s := range m.Body {
			if d, ok := s.(*ir.DefNode); ok && !live[d.Name] {
				comp.recordRemoved(m.Name, d.Name)
				removed++
				continue
			}
			out = append(out, s)
		}
		m.Body = out
	}
	return nil
}

// DontTouchAll protects every signal referenced by symbol entries from
// optimization — the paper's debug mode (DontTouchAnnotation, gcc -O0).
type DontTouchAll struct{}

// Name implements Pass.
func (*DontTouchAll) Name() string { return "dont-touch-all" }

// Run implements Pass.
func (*DontTouchAll) Run(comp *Compilation) error {
	for _, entry := range comp.Symbols {
		for _, rtl := range entry.Vars {
			comp.markDontTouch(entry.Module, rtl)
		}
		if entry.Enable != nil {
			for _, name := range ir.RefsIn(entry.Enable) {
				comp.markDontTouch(entry.Module, name)
			}
		}
	}
	return nil
}
